"""The complete Fig. 10 flow with a virtual measurement front end.

The paper's generator needs measured reference-device parameters; this
example shows the whole pipeline without a fab:

  virtual fab (hidden golden device)
    -> characterization bench (Gummel plot, C-V, fT sweep)      [measure]
    -> Getreu-style regional extraction                         [extract]
    -> generator calibration at the reference shape             [calibrate]
    -> model cards for arbitrary shapes from a schematic        [generate]
    -> SPICE run of the annotated schematic                     [simulate]

Run:  python examples/parameter_generation_flow.py
"""

from repro.geometry import (
    ModelParameterGenerator,
    ReferenceTransistor,
    TransistorShape,
    default_reference,
)
from repro.measurement import extract_parameters, measure_device
from repro.spice import Simulator, parse_deck

SCHEMATIC = """differential stage with shape-annotated transistors
{models}
VCC vcc 0 5
VB1 b1 0 2.0
VB2 b2 0 2.0
RC1 vcc c1 500
RC2 vcc c2 500
Q1 c1 b1 e {q1_model}
Q2 c2 b2 e {q2_model}
IT e 0 3m
.END
"""


def main() -> None:
    golden = default_reference()
    print("=== step 1: measure the reference device (virtual bench) ===")
    measurements = measure_device(golden.parameters, noise=0.01)
    gummel = measurements.gummel
    print(f"  Gummel plot: {len(gummel.vbe)} points, "
          f"Ic {gummel.ic[0]:.2e} .. {gummel.ic[-1]:.2e} A")
    print(f"  C-V: {len(measurements.cv_be.reverse_voltage)} points/junction;"
          f"  fT sweep: {len(measurements.ft_sweep.ic)} points")

    print("=== step 2: extract model parameters from the curves ===")
    report = extract_parameters(measurements)
    errors = report.compare(golden.parameters)
    for name in ("IS", "NF", "BF", "CJE", "CJC", "TF", "RB", "RE", "RC"):
        print(f"  {name:4s} extracted {getattr(report.parameters, name):10.4g}"
              f"   (error vs hidden golden: {errors[name] * 100:5.1f} %)")

    print("=== step 3: calibrate the generator with the extraction ===")
    generator = ModelParameterGenerator(
        reference=ReferenceTransistor(golden.shape, report.parameters)
    )
    print(f"  reference shape: {golden.shape.name}")

    print("=== step 4: generate models for the schematic's shapes ===")
    q1_shape, q2_shape = "N1.2-12D", "N1.2-12D"
    models = generator.model_library([q1_shape, q2_shape and "N1.2-6D"])
    deck_text = SCHEMATIC.format(
        models=models.strip(),
        q1_model="QN1P2_12D",
        q2_model="QN1P2_6D",
    )
    print("  emitted model cards:")
    for line in models.strip().splitlines()[1:]:
        print(f"    {line[:78]}...")

    print("=== step 5: simulate the annotated schematic ===")
    deck = parse_deck(deck_text)
    result = Simulator(deck.circuit).operating_point()
    print(f"  V(c1) = {result.voltage('c1'):.3f} V, "
          f"V(c2) = {result.voltage('c2'):.3f} V")
    print("  (unequal shapes on a 'matched' pair unbalance the stage -- ")
    print("   visible only because the models are geometry-aware)")


if __name__ == "__main__":
    main()

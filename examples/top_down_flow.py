"""The full top-down design flow of Section 2, closed by ``repro optimize``.

describe -> analyze -> derive specs -> re-use or size -> verify, on the
image-rejection tuner.  Where the old version of this example read the
phase budget off Fig. 5 by hand and hand-picked the reused cells, this
one runs the :mod:`repro.optimize` pipeline: the Fig. 5 sweep surface is
inverted into block specs, the cell database is queried against its
recorded simulation data, and the block nothing qualifies for (the
high-gain mixer) is sized by differential evolution down to a generated
Gummel-Poon model card.

Run:  python examples/top_down_flow.py
      python -m repro.cli optimize          # the same loop from the CLI
"""

import math

from repro.ahdl import ir_mixer_module
from repro.behavioral import Amplifier, BandpassFilter, Mixer, tone
from repro.celldb import seed_database
from repro.core import (
    Comparison,
    Design,
    DesignBlock,
    Specification,
    SpecificationSet,
    TopDownFlow,
)
from repro.optimize import run_optimize_flow
from repro.rfsystems import FrequencyPlan

RF = 400e6
PLAN = FrequencyPlan()


def build_flow(db) -> TopDownFlow:
    design = Design("catv_ir_tuner")
    system_specs = SpecificationSet("system", [
        Specification("image_rejection_db", 30.0, Comparison.AT_LEAST,
                      unit="dB"),
        Specification("conversion_gain_db", 0.0, Comparison.AT_LEAST,
                      unit="dB"),
    ])
    flow = TopDownFlow(design, system_specs, cell_database=db)

    # -- step 1: describe every block behaviorally (AHDL level) --------------
    flow.describe_block(
        DesignBlock(name="front_end",
                    behavioral=Amplifier("front_end", gain_db=15.0),
                    source_cell="RF-AGC-AMP"),
        inputs=["rf"], outputs=["rf_amp"],
    )
    flow.describe_block(
        DesignBlock(name="mix1",
                    behavioral=Mixer("mix1", PLAN.up_lo(RF),
                                     conversion_gain_db=-6.0),
                    source_cell="UPMIX-1300"),
        inputs=["rf_amp"], outputs=["if1_raw"],
    )
    flow.describe_block(
        DesignBlock(name="if1_bpf",
                    behavioral=BandpassFilter("if1_bpf", PLAN.first_if,
                                              60e6, 3),
                    source_cell="IF-BPF-1300"),
        inputs=["if1_raw"], outputs=["if1"],
    )
    flow.describe_block(
        DesignBlock(
            name="ir_mixer",
            behavioral=ir_mixer_module().instantiate(
                "ir_mixer", lo_freq=PLAN.down_lo,
                if_phase_err=2.0, gain_err=0.01,
            ),
            source_cell="DNMIX-45",
        ),
        inputs={"IF1": "if1"}, outputs={"IF2": "if2"},
    )
    return flow


def measure(flow: TopDownFlow):
    def run(_nets):
        system = flow.design.elaborate()
        wanted = system.run({"rf": tone(RF, 1e-3)})["if2"]
        image = system.run({"rf": tone(PLAN.rf_image(RF), 1e-3)})["if2"]
        wanted_amp = wanted.amplitude(PLAN.second_if)
        image_amp = image.amplitude(PLAN.second_if)
        return {
            "image_rejection_db": (
                math.inf if image_amp == 0
                else 20 * math.log10(wanted_amp / image_amp)
            ),
            "conversion_gain_db": 20 * math.log10(wanted_amp / 1e-3),
        }

    return run


def main() -> None:
    db = seed_database()
    flow = build_flow(db)

    # -- step 2: analyze the whole system at the behavioral level -----------
    measurements = flow.analyze({"rf": tone(RF, 1e-3)}, measure(flow))
    print("behavioral analysis:")
    for key, value in sorted(measurements.items()):
        print(f"  {key} = {value:.1f}")

    # -- steps 3+4: run the optimization loop --------------------------------
    # sweep -> derive specs -> spec-driven reuse lookup -> size what's
    # left -> regenerate the Gummel-Poon model for the sized geometry.
    report = run_optimize_flow(irr_target_db=30.0, gain_corner=0.01,
                               db=db, population=12, generations=25)
    print()
    print(report.summary())

    # The derived specs become the flow's budget, with the derivation
    # itself as the rationale (previously a hand read-off of Fig. 5).
    for spec in report.derivation.specs.to_specifications():
        flow.budget_spec(
            "ir_mixer", spec,
            rationale="derived by repro optimize from the Fig. 5 sweep",
        )

    # Implement the blocks from the loop's sourcing decisions.
    flow.implement_block("front_end", db.get("RF-AGC-AMP").schematic,
                         from_cell="RF-AGC-AMP")
    if report.mixer_reuse.reused:
        chosen = report.mixer_reuse.chosen.name
        flow.implement_block("ir_mixer", db.get(chosen).schematic,
                             from_cell=chosen)
    else:
        # Sized, not reused: the generated model card is the
        # transistor-level starting point.
        flow.implement_block(
            "ir_mixer",
            report.sizing.model_card + "\n* sized by repro optimize\n",
        )

    # -- step 5: verify ------------------------------------------------------
    verification = flow.verify({"rf": tone(RF, 1e-3)}, measure(flow))
    print("\nverification:")
    for check in verification.checks:
        print(f"  {check.describe()}")

    stats = flow.reuse_statistics()
    print(f"\nreuse rate: {stats.reuse_fraction * 100:.0f} % "
          f"({stats.reused_blocks}/{stats.total_blocks} blocks)")
    print()
    print(flow.format_log())


if __name__ == "__main__":
    main()

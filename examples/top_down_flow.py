"""The full top-down design flow of Section 2, driven programmatically.

describe -> analyze -> budget -> implement (re-use) -> verify, on the
image-rejection tuner, with the flow log printed at the end.

Run:  python examples/top_down_flow.py
"""

import math

from repro.ahdl import ir_mixer_module
from repro.behavioral import Amplifier, BandpassFilter, Mixer, tone
from repro.celldb import seed_database
from repro.core import (
    Comparison,
    Design,
    DesignBlock,
    Specification,
    SpecificationSet,
    TopDownFlow,
)
from repro.rfsystems import FrequencyPlan, required_matching

RF = 400e6
PLAN = FrequencyPlan()


def build_flow() -> TopDownFlow:
    design = Design("catv_ir_tuner")
    system_specs = SpecificationSet("system", [
        Specification("image_rejection_db", 30.0, Comparison.AT_LEAST,
                      unit="dB"),
        Specification("conversion_gain_db", 0.0, Comparison.AT_LEAST,
                      unit="dB"),
    ])
    flow = TopDownFlow(design, system_specs,
                       cell_database=seed_database())

    # -- step 1: describe every block behaviorally (AHDL level) --------------
    flow.describe_block(
        DesignBlock(name="front_end",
                    behavioral=Amplifier("front_end", gain_db=15.0),
                    source_cell="RF-AGC-AMP"),
        inputs=["rf"], outputs=["rf_amp"],
    )
    flow.describe_block(
        DesignBlock(name="mix1",
                    behavioral=Mixer("mix1", PLAN.up_lo(RF),
                                     conversion_gain_db=-6.0),
                    source_cell="UPMIX-1300"),
        inputs=["rf_amp"], outputs=["if1_raw"],
    )
    flow.describe_block(
        DesignBlock(name="if1_bpf",
                    behavioral=BandpassFilter("if1_bpf", PLAN.first_if,
                                              60e6, 3),
                    source_cell="IF-BPF-1300"),
        inputs=["if1_raw"], outputs=["if1"],
    )
    flow.describe_block(
        DesignBlock(
            name="ir_mixer",
            behavioral=ir_mixer_module().instantiate(
                "ir_mixer", lo_freq=PLAN.down_lo,
                if_phase_err=2.0, gain_err=0.01,
            ),
            source_cell="DNMIX-45",
        ),
        inputs={"IF1": "if1"}, outputs={"IF2": "if2"},
    )
    return flow


def measure(flow: TopDownFlow):
    def run(_nets):
        system = flow.design.elaborate()
        wanted = system.run({"rf": tone(RF, 1e-3)})["if2"]
        image = system.run({"rf": tone(PLAN.rf_image(RF), 1e-3)})["if2"]
        wanted_amp = wanted.amplitude(PLAN.second_if)
        image_amp = image.amplitude(PLAN.second_if)
        return {
            "image_rejection_db": (
                math.inf if image_amp == 0
                else 20 * math.log10(wanted_amp / image_amp)
            ),
            "conversion_gain_db": 20 * math.log10(wanted_amp / 1e-3),
        }

    return run


def main() -> None:
    flow = build_flow()

    # -- step 2: analyze the whole system at the behavioral level -----------
    measurements = flow.analyze({"rf": tone(RF, 1e-3)}, measure(flow))
    print("behavioral analysis:")
    for key, value in sorted(measurements.items()):
        print(f"  {key} = {value:.1f}")

    # -- step 3: budget block specs from the system requirement -------------
    phase_budget = required_matching(30.0, gain_error=0.01)
    flow.budget_spec(
        "ir_mixer",
        Specification("phase_error_deg", phase_budget, Comparison.AT_MOST,
                      unit="deg"),
        rationale="Fig. 5 read-off: 30 dB IRR at 1 % gain balance",
    )
    flow.budget_spec(
        "ir_mixer",
        Specification("gain_error", 0.01, Comparison.AT_MOST),
        rationale="chosen gain-balance point on Fig. 5",
    )

    # -- step 4: implement blocks at the transistor level (re-use) ----------
    db = flow.cell_database
    flow.implement_block("front_end", db.get("RF-AGC-AMP").schematic,
                         from_cell="RF-AGC-AMP")
    flow.implement_block("ir_mixer", db.get("DNMIX-45").schematic,
                         from_cell="DNMIX-45")

    # -- step 5: verify ------------------------------------------------------
    report = flow.verify({"rf": tone(RF, 1e-3)}, measure(flow))
    print("\nverification:")
    for check in report.checks:
        print(f"  {check.describe()}")

    stats = flow.reuse_statistics()
    print(f"\nreuse rate: {stats.reuse_fraction * 100:.0f} % "
          f"({stats.reused_blocks}/{stats.total_blocks} blocks)")
    print()
    print(flow.format_log())


if __name__ == "__main__":
    main()

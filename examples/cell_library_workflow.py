"""The analog cell-based design supporting system (paper Section 3).

Shows both faces of the paper's system: the registering designer and the
re-using designer, plus the WWW browse export and the reuse-rate audit
behind the paper's "above 70 % of the circuits can be re-used".

Run:  python examples/cell_library_workflow.py [output-dir]
"""

import sys
import tempfile
from pathlib import Path

from repro.celldb import (
    AnalogCellDatabase,
    Cell,
    CategoryPath,
    SimulationRecord,
    Symbol,
    export_site,
    seed_database,
)


def register_new_cell(db: AnalogCellDatabase) -> None:
    print("=== designer A: register a newly proven circuit ===")
    cell = Cell(
        name="GCA1",
        category=CategoryPath.parse("TV/Video/Gain control"),
        document=(
            "This circuit is used for TV Video. Input signal is IN1 and "
            "IN2. DC voltage is 5 to 8 V. Output impedance is very low, "
            "input impedance is 50 ohm. This circuit operates like a "
            "gain controlled amp."
        ),
        symbol=Symbol(("IN1", "IN2", "OUT1")),
        schematic="""* GCA1 gain controlled amplifier
V1 vcc 0 DC 5
RC1 vcc out1 1k
Q1 out1 in1 tail QGEN
Q2 nc in2 tail QGEN
RCN vcc nc 1k
I1 tail 0 DC 1m
.MODEL QGEN NPN(IS=4e-17 BF=90 RB=200 CJE=35f TF=10p)
.END
""",
        behavior="""
module gca1 (IN1, OUT1) (gain)
node [V, I] IN1, OUT1;
parameter real gain = 4;
{
  analog { V(OUT1) <- gain * V(IN1); }
}
""",
        keywords=("video", "gain control", "agc"),
        designer="designer-a",
        origin_ic="TA9999",
        simulations=[SimulationRecord("out1", "ac",
                                      {"gain_db": 12.0, "bw_mhz": 9.0})],
    )
    db.register(cell)  # validates the deck and the AHDL
    print(f"  registered {cell.name!r} under {cell.category} "
          "(schematic parsed, behavior compiled)")
    print()


def search_and_reuse(db: AnalogCellDatabase) -> None:
    print("=== designer B: search and copy circuits for a new tuner ===")
    needed = {
        "rf front end": "RF-AGC-AMP",
        "up-conversion mixer": "UPMIX-1300",
        "down mixers (x2)": "DNMIX-45",
        "vco phase splitter": "PHASE90-VCO",
        "if phase shifter": "PHASE90-IF",
        "combiner": "IF-ADDER",
    }
    for role, name in needed.items():
        hits = db.search(keyword=name.split("-")[0].lower())
        cell = db.copy_for_reuse(name)
        print(f"  {role:22s} -> {cell.name:14s} "
              f"(now re-used {cell.reuse_count}x)")
    print()

    print("=== reuse audit (the paper reports above 70 %) ===")
    design_blocks = {
        "rf_amp": "RF-AGC-AMP",
        "mix1": "UPMIX-1300",
        "if1_bpf": "IF-BPF-1300",
        "mix2_i": "DNMIX-45",
        "mix2_q": "DNMIX-45",
        "vco": "VCO-2ND",
        "ph90_vco": "PHASE90-VCO",
        "ph90_if": "PHASE90-IF",
        "combiner": "IF-ADDER",
        "pll": "PLL-SYNTH",
        "agc_detector": None,  # newly designed for this IC
        "if2_buffer": None,  # newly designed for this IC
    }
    stats = db.reuse_statistics(design_blocks)
    print(f"  {stats.reused_blocks}/{stats.total_blocks} blocks re-used "
          f"= {stats.reuse_fraction * 100:.0f} %")
    print()


def export_www(db: AnalogCellDatabase, directory: Path) -> None:
    print("=== WWW server export (quick inspection pages) ===")
    files = export_site(db, directory)
    print(f"  wrote {len(files)} pages to {directory}")
    print(f"  open {directory / 'index.html'} in a browser")


if __name__ == "__main__":
    database = seed_database()
    register_new_cell(database)
    search_and_reuse(database)
    if len(sys.argv) > 1:
        target = Path(sys.argv[1])
    else:
        target = Path(tempfile.mkdtemp(prefix="celldb_www_"))
    export_www(database, target)

"""The tuner's supporting blocks: PLL synthesizer and Gilbert mixer.

Exercises the two "infrastructure" blocks of Figs. 2/4 that the other
examples treat behaviorally:

1. program the 1st-LO charge-pump PLL for a channel on the 62.5 kHz
   CATV raster and inspect its loop dynamics and noise transfers,
2. build the transistor-level double-balanced (Gilbert) mixer with a
   geometry-generated device and *measure* its conversion gain by
   transient simulation + Fourier analysis, against the (2/pi)*gm*RL
   textbook anchor,
3. check the mixer still converts at 85 C junction temperature.

Run:  python examples/synthesizer_and_mixer.py
"""

import numpy as np

from repro.devices.temperature import celsius
from repro.geometry import ModelParameterGenerator, default_reference
from repro.rfsystems import (
    ChargePumpPLL,
    FrequencyPlan,
    GilbertMixerSpec,
    build_gilbert_mixer,
    ideal_conversion_gain,
    measure_conversion_gain,
    synthesizer_for_channel,
)
from repro.spice import Simulator, circuit_at_temperature


def pll_study() -> None:
    print("=== 1st-LO synthesizer (PLL block of Figs. 2/4) ===")
    plan = FrequencyPlan()
    rf = 400e6
    synth = synthesizer_for_channel(rf, plan)
    print(f"  channel {rf / 1e6:.1f} MHz -> Fup = "
          f"{synth.output_frequency / 1e6:.3f} MHz  (N = {synth.divider}, "
          f"raster {synth.reference_frequency / 1e3:.1f} kHz)")
    print(f"  loop: wn = {synth.natural_frequency:.0f} rad/s, "
          f"zeta = {synth.damping:.2f}, "
          f"bandwidth = {synth.loop_bandwidth / 1e3:.2f} kHz, "
          f"phase margin = {synth.phase_margin_deg():.1f} deg")
    print(f"  lock to 100 ppm in {synth.lock_time(1e-4) * 1e3:.2f} ms")
    for f in (100.0, synth.loop_bandwidth, 100e3):
        print(f"  noise transfer at {f / 1e3:8.2f} kHz: "
              f"reference x{synth.reference_noise_transfer(f):10.1f}, "
              f"VCO x{synth.vco_noise_transfer(f):6.3f}")
    print()


def mixer_study() -> None:
    print("=== transistor-level Gilbert mixer (DNMIX cell) ===")
    generator = ModelParameterGenerator(reference=default_reference())
    model = generator.generate("N1.2-12D")
    spec = GilbertMixerSpec()
    anchor = ideal_conversion_gain(model, spec)
    print(f"  textbook anchor (2/pi)*gm*RL = {anchor:.2f} "
          f"({20 * np.log10(anchor):.1f} dB)")
    measurement = measure_conversion_gain(model, 210e6, 200e6, spec)
    print(f"  measured by transient+Fourier: "
          f"{measurement.conversion_gain:.2f} "
          f"({measurement.conversion_gain_db:.1f} dB) at IF "
          f"{measurement.if_frequency / 1e6:.0f} MHz")
    print(f"  balance: RF feedthrough "
          f"{measurement.feedthrough_rf / measurement.if_amplitude * 100:.1f}"
          f" %, LO feedthrough "
          f"{measurement.feedthrough_lo / measurement.if_amplitude * 100:.1f}"
          " % of the IF product")
    print()

    print("=== the same mixer at 85 C junction temperature ===")
    circuit = build_gilbert_mixer(model, 210e6, 200e6, spec)
    hot = circuit_at_temperature(circuit, celsius(85.0))
    op_cold = Simulator(circuit).operating_point()
    op_hot = Simulator(hot).operating_point()
    headroom_cold = op_cold.voltage("tail")
    headroom_hot = op_hot.voltage("tail")
    print(f"  tail-node voltage: {headroom_cold:.3f} V at 27 C -> "
          f"{headroom_hot:.3f} V at 85 C "
          f"({(headroom_hot - headroom_cold) * 1e3:+.0f} mV)")
    print("  (two Vbe drops shrink with temperature; the recovered "
          "headroom — and the bias")
    print("   current chosen against package radiation — are the "
          "paper's thermal concerns)")


if __name__ == "__main__":
    pll_study()
    mixer_study()

"""Quickstart: the three contributions of the paper in ~60 lines each.

1. Describe an analog block in AHDL and simulate it (Section 2 / Fig. 1).
2. Look up a re-usable circuit in the cell database (Section 3 / Fig. 6).
3. Generate geometry-dependent SPICE model parameters for a transistor
   shape and simulate the result (Section 4 / Fig. 10).

Run:  python examples/quickstart.py
"""

from repro.ahdl import compile_module
from repro.behavioral import SystemModel, tone
from repro.celldb import seed_database
from repro.devices import peak_ft
from repro.geometry import ModelParameterGenerator, default_reference
from repro.spice import Simulator, parse_deck


def ahdl_demo() -> None:
    print("=== 1. AHDL top-down design (paper Fig. 1) ===")
    source = """
    module amp (IN, OUT) (gain)
    node [V, I] IN, OUT;
    parameter real gain = 1;
    {
      analog {
        V(OUT) <- gain * V(IN);
      }
    }
    """
    module = compile_module(source)
    system = SystemModel("quickstart")
    system.add(module.instantiate("a1", gain=4.0),
               inputs={"IN": "in"}, outputs={"OUT": "out"})
    nets = system.run({"in": tone(45e6, 0.25)})
    print(f"  amp(gain=4) driven with 0.25 V at 45 MHz -> "
          f"{nets['out'].amplitude(45e6):.3f} V")
    print()


def celldb_demo() -> None:
    print("=== 2. Circuit re-use database (paper Section 3) ===")
    db = seed_database()
    hits = db.search(keyword="image rejection")
    print(f"  search('image rejection') -> {[c.name for c in hits]}")
    cell = db.copy_for_reuse("DNMIX-45")
    print(f"  copied {cell.name!r} ({cell.category}) for re-use; "
          f"document: {cell.document.splitlines()[0][:60]}...")
    print()


def generator_demo() -> None:
    print("=== 3. Geometry-dependent model generation (paper Fig. 10) ===")
    generator = ModelParameterGenerator(reference=default_reference())
    for shape in ("N1.2-6D", "N1.2-12D"):
        model = generator.generate(shape)
        peak = peak_ft(model, 1e-4, 3e-2, 61)
        print(f"  {shape:10s} RB={model.RB:6.1f} ohm  "
              f"CJE={model.CJE * 1e15:5.1f} fF  "
              f"peak fT={peak.ft / 1e9:5.2f} GHz at "
              f"Ic={peak.ic * 1e3:.2f} mA")

    # Emit a SPICE deck with the generated model card and simulate it.
    deck_text = "quickstart generated stage\n"
    deck_text += generator.model_card("N1.2-12D") + "\n"
    deck_text += (
        "VCC vcc 0 5\nVB b 0 0.8\nRC vcc c 1k\nQ1 c b 0 QN1P2_12D\n.END\n"
    )
    deck = parse_deck(deck_text)
    result = Simulator(deck.circuit).operating_point()
    print(f"  generated deck solves: V(c) = {result.voltage('c'):.3f} V")
    print()


if __name__ == "__main__":
    ahdl_demo()
    celldb_demo()
    generator_demo()
    print("done.")

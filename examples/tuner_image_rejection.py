"""The double-super CATV tuner study (paper Section 2.2, Figs. 2-5).

Walks the exact path of the paper's worked example:

1. lay out the frequency plan and show why the second conversion has an
   in-band image only 90 MHz from the tuned channel (Fig. 3),
2. simulate the conventional tuner (Fig. 2) — the 1st-IF filter alone
   cannot reject that image strongly,
3. simulate the image-rejection tuner (Fig. 4) with gain/phase imbalance,
4. sweep the imbalance (Fig. 5) and derive the block specification that
   meets a 30 dB system requirement, as the paper's designer does.

Run:  python examples/tuner_image_rejection.py
"""

from repro.rfsystems import (
    FrequencyPlan,
    ImbalanceSpec,
    build_conventional_tuner,
    build_image_rejection_tuner,
    fig5_sweep,
    measure_tuner,
    required_matching,
)

RF_CHANNEL = 400e6


def show_frequency_plan(plan: FrequencyPlan) -> None:
    print("=== frequency plan (Figs. 2 and 3) ===")
    info = plan.describe(RF_CHANNEL)
    for key in ("rf", "up_lo", "first_if", "down_lo", "second_if",
                "first_if_image", "rf_image"):
        print(f"  {key:15s} {info[key] / 1e6:10.1f} MHz")
    print(f"  -> the image channel sits only "
          f"{plan.image_offset(RF_CHANNEL) / 1e6:.0f} MHz above the tuned "
          "channel: rejecting it at the 1.3 GHz 1st IF would need a very "
          "narrow filter (the paper's motivation).")
    print()


def compare_tuners(plan: FrequencyPlan) -> None:
    print("=== conventional vs image-rejection tuner ===")
    conventional = measure_tuner(build_conventional_tuner(RF_CHANNEL),
                                 RF_CHANNEL)
    print(f"  Fig. 2 tuner: gain {conventional.wanted_gain_db:5.1f} dB, "
          f"image rejection {conventional.image_rejection_db:5.1f} dB "
          "(filter only)")
    imbalance = ImbalanceSpec(lo_phase_error_deg=1.0,
                              if_phase_error_deg=1.5, gain_error=0.02)
    ir = measure_tuner(build_image_rejection_tuner(RF_CHANNEL, imbalance),
                       RF_CHANNEL)
    print(f"  Fig. 4 tuner: gain {ir.wanted_gain_db:5.1f} dB, "
          f"image rejection {ir.image_rejection_db:5.1f} dB "
          "(filter + quadrature cancellation)")
    print()


def fig5_study() -> None:
    print("=== Fig. 5: IRR vs phase error, gain balance as parameter ===")
    phase_errors = [0.0, 1.0, 2.0, 4.0, 6.0, 8.0, 10.0]
    curves = fig5_sweep(phase_errors)
    header = "  phase err " + "".join(
        f"  g={g * 100:3.0f}%" for g in sorted(curves)
    )
    print(header)
    for i, phase in enumerate(phase_errors):
        row = f"  {phase:7.1f}   "
        for gain in sorted(curves):
            row += f"  {curves[gain][i][1]:5.1f}"
        print(row + "   [dB]")
    print()

    print("=== spec derivation: 30 dB image rejection requested ===")
    for gain in (0.01, 0.03, 0.05, 0.07, 0.09):
        budget = required_matching(30.0, gain)
        if budget is None:
            print(f"  gain balance {gain * 100:.0f}%: IMPOSSIBLE "
                  "(gain error alone exceeds the budget)")
        else:
            print(f"  gain balance {gain * 100:.0f}%: phase error must "
                  f"stay below {budget:.2f} deg")
    print("  -> the designer picks a feasible (gain, phase) pair for the")
    print("     two 90-degree shifters, exactly as the paper describes.")


if __name__ == "__main__":
    plan = FrequencyPlan()
    show_frequency_plan(plan)
    compare_tuners(plan)
    fig5_study()

"""Transistor shape optimization for a ring oscillator (paper Section 4).

Reproduces the paper's design story end to end:

1. generate geometry-dependent model parameters for the Fig. 8 shapes,
2. plot (as text) the fT-vs-Ic family of Fig. 9,
3. run the Fig. 11 five-stage ring oscillator with each candidate shape
   on the differential pairs, at fixed topology and current, and pick
   the fastest — the paper's Table 1 experiment.

The full Table 1 sweep takes ~1 minute of transient simulation; pass
``--quick`` to run just two shapes.

Run:  python examples/transistor_shape_optimization.py [--quick]
"""

import sys
import time

import numpy as np

from repro.devices import ft_curve
from repro.geometry import (
    FIG9_SHAPES,
    TABLE1_SHAPES,
    ModelParameterGenerator,
    default_reference,
)
from repro.rfsystems import RingOscillatorSpec, run_ring_oscillator


def fig9_family(generator: ModelParameterGenerator) -> None:
    print("=== Fig. 9: fT vs Ic for various shapes ===")
    currents = np.geomspace(2e-4, 2e-2, 9)
    header = "  Ic [mA]   " + "".join(f"{n:>11s}" for n in FIG9_SHAPES)
    print(header)
    curves = {
        name: ft_curve(generator.generate(name), currents)
        for name in FIG9_SHAPES
    }
    for i, ic in enumerate(currents):
        row = f"  {ic * 1e3:7.2f}  "
        for name in FIG9_SHAPES:
            row += f"  {curves[name][i].ft / 1e9:7.2f}  "
        print(row)
    print("  [fT in GHz; note the peak moving right as the emitter grows]")
    print()


def table1_sweep(generator: ModelParameterGenerator, quick: bool) -> None:
    print("=== Table 1: ring-oscillator frequency vs diff-pair shape ===")
    spec = RingOscillatorSpec()
    print(f"  topology fixed: {spec.stages} stages, "
          f"RL={spec.load_resistance:.0f} ohm, "
          f"tail={spec.tail_current * 1e3:.1f} mA")
    follower = generator.generate("N1.2-6D")
    shapes = ("N1.2-6D", "N1.2-12D") if quick else TABLE1_SHAPES
    results = []
    for name in shapes:
        started = time.time()
        measurement = run_ring_oscillator(
            generator.generate(name), follower_model=follower, spec=spec,
            stop_time=10e-9,
        )
        results.append((name, measurement.frequency))
        print(f"  {name:10s} free-running {measurement.frequency / 1e9:6.3f}"
              f" GHz   (simulated in {time.time() - started:4.1f} s)")
    best = max(results, key=lambda item: item[1])
    print(f"  -> best shape: {best[0]} "
          "(the paper's conclusion was N1.2-12D)")


if __name__ == "__main__":
    quick = "--quick" in sys.argv
    generator = ModelParameterGenerator(reference=default_reference())
    fig9_family(generator)
    table1_sweep(generator, quick)

"""Execute the shipped demo decks through the deck runner.

The `examples/decks/` directory holds classic SPICE decks produced by
(and consumable with) this package — a geometry-generated CE stage with
.OP/.TF/.AC, a noise bench with the adjoint .NOISE analysis, and the
full Fig. 11 ring oscillator serialized from the programmatic builder.
Equivalent CLI:  python -m repro.cli run examples/decks/<name>.cir

Run:  python examples/run_shipped_decks.py [--with-ring]
"""

import sys
import time
from pathlib import Path

from repro.spice import parse_deck
from repro.spice.runner import run_deck

DECKS_DIR = Path(__file__).parent / "decks"
FAST_DECKS = ("ce_stage.cir", "noise_bench.cir")
SLOW_DECKS = ("ring_oscillator.cir",)


def run_one(name: str) -> None:
    path = DECKS_DIR / name
    print(f"=== {name} ===")
    started = time.time()
    run = run_deck(parse_deck(path.read_text()))
    print(run.summary())
    print(f"  ({time.time() - started:.1f} s)")
    print()


if __name__ == "__main__":
    names = list(FAST_DECKS)
    if "--with-ring" in sys.argv:
        names += list(SLOW_DECKS)
    for deck_name in names:
        run_one(deck_name)
    if "--with-ring" not in sys.argv:
        print("(pass --with-ring to also run the 10 ns Fig. 11 "
              "transient, ~30 s)")

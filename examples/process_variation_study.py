"""Process variation and yield study (paper Section 2.2).

"Now, IC circuit designers have to examine the performance of this
system taking IC process variations into account."  This example does
exactly that, both statistically and at the corners:

1. Monte-Carlo mismatch on the image-rejection mixer: IRR distribution
   and yield against the 30 dB spec for three matching qualities,
2. device-parameter spread of a geometry-generated transistor across
   process samples,
3. a worst-case corner check of the ring-oscillator frequency.

Run:  python examples/process_variation_study.py [--jobs N]

Both Monte-Carlo studies dispatch through the ``repro.sweep``
orchestration layer; ``--jobs N`` runs the samples on N worker
processes and — because every sample owns its own spawned
``SeedSequence`` stream — produces bit-identical populations either way.
"""

import argparse

import numpy as np

from repro.geometry import (
    MismatchSpec,
    ModelParameterGenerator,
    ProcessData,
    monte_carlo_image_rejection,
    monte_carlo_models,
)
from repro.rfsystems import RingOscillatorSpec, run_ring_oscillator


def yield_study(jobs: int | None = None) -> None:
    print("=== Monte-Carlo image-rejection yield (spec: 30 dB) ===")
    cases = (
        ("tight   (0.5 deg, 0.5 %)", MismatchSpec(0.5, 0.005)),
        ("typical (1.5 deg, 2 %)", MismatchSpec(1.5, 0.02)),
        ("loose   (3.0 deg, 4 %)", MismatchSpec(3.0, 0.04)),
    )
    for label, mismatch in cases:
        report = monte_carlo_image_rejection(1000, mismatch,
                                             irr_spec_db=30.0, jobs=jobs)
        print(f"  {label}: yield {report.yield_fraction * 100:5.1f} %  "
              f"IRR p5={report.percentile(5):5.1f}  "
              f"median={report.percentile(50):5.1f}  "
              f"p95={report.percentile(95):5.1f} dB")
    print("  -> matching specs ARE yield specs; Fig. 5's axes are the "
          "knobs.")
    print()


def device_spread_study(jobs: int | None = None) -> None:
    print("=== device-parameter spread through the geometry generator ===")
    population = monte_carlo_models("N1.2-6D", 100, seed=42, jobs=jobs)
    for name in ("IS", "BF", "RB", "RE", "CJE", "CJC", "TF", "IKF"):
        values = population.parameter_values(name)
        print(f"  {name:4s} mean {np.mean(values):11.4g}   "
              f"sigma/mean {population.spread(name) * 100:5.1f} %")
    print()


def corner_study() -> None:
    print("=== ring-oscillator frequency at process corners ===")
    spec = RingOscillatorSpec()
    # Explicit corner process files: nominal, slow (+caps, +tf, +RB
    # sheet), fast (-caps, -tf).
    nominal = ProcessData()
    from dataclasses import replace

    files = {
        "fast": replace(nominal, cje_area=nominal.cje_area * 0.9,
                        cjc_area=nominal.cjc_area * 0.9,
                        tf=nominal.tf * 0.92),
        "nominal": nominal,
        "slow": replace(nominal, cje_area=nominal.cje_area * 1.1,
                        cjc_area=nominal.cjc_area * 1.1,
                        tf=nominal.tf * 1.08,
                        rsb_intrinsic=nominal.rsb_intrinsic * 1.1),
    }
    for corner, process in files.items():
        generator = ModelParameterGenerator(process=process)
        model = generator.generate("N1.2-12D")
        follower = generator.generate("N1.2-6D")
        measurement = run_ring_oscillator(model, follower_model=follower,
                                          spec=spec, stop_time=8e-9)
        print(f"  {corner:8s} corner: "
              f"{measurement.frequency / 1e9:6.3f} GHz")
    print("  -> the spread a product spec must absorb.")


if __name__ == "__main__":
    cli = argparse.ArgumentParser(description=__doc__)
    cli.add_argument("--jobs", type=int, default=None, metavar="N",
                     help="Monte-Carlo worker processes")
    args = cli.parse_args()
    yield_study(jobs=args.jobs)
    device_spread_study(jobs=args.jobs)
    corner_study()

"""Legacy setup shim.

Exists so ``pip install -e . --no-build-isolation`` and
``python setup.py develop`` work in offline environments where the
``wheel`` package (needed for PEP 660 editable installs) is missing.
All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()

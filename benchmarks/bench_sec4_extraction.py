"""Section 4 extension — the measure->extract loop on the reference device.

The paper's generator consumes "reference transistor model parameters
which are based on actual measurements".  This bench runs the full
virtual loop — synthetic characterization curves with 1 % instrument
noise, Getreu-style regional extraction — and reports the per-parameter
recovery error against the hidden golden device.  The benchmark times
the extraction pipeline itself.
"""

from repro.measurement import extract_parameters, measure_device

from conftest import report

REPORTED = ("IS", "NF", "BF", "ISE", "NE", "IKF",
            "CJE", "VJE", "MJE", "CJC", "VJC", "MJC",
            "TF", "RE", "RB", "RC")


def bench_sec4_extraction(benchmark, reference):
    golden = reference.parameters
    measurements = measure_device(golden, noise=0.01)

    extraction = benchmark(extract_parameters, measurements)

    errors = extraction.compare(golden, names=REPORTED)
    rows = [
        "  parameter recovery from noisy synthetic measurements "
        "(1 % instrument noise)",
        "",
        "  param      golden        extracted     error    method",
    ]
    for name in REPORTED:
        rows.append(
            f"  {name:5s} {getattr(golden, name):13.5g} "
            f"{getattr(extraction.parameters, name):13.5g} "
            f"{errors[name] * 100:7.1f}%   "
            f"{extraction.notes.get(name, '')}"
        )
    report("sec4_extraction", "\n".join(rows))

    # -- pipeline quality gates ---------------------------------------------------
    assert errors["NF"] < 0.03
    assert errors["IS"] < 0.15
    assert errors["CJE"] < 0.05 and errors["CJC"] < 0.05
    assert errors["RE"] < 0.05 and errors["RB"] < 0.05
    assert errors["TF"] < 0.25
    # regional-method systematic bias on IKF stays within a factor 2
    assert 0.5 < extraction.parameters.IKF / golden.IKF < 2.0

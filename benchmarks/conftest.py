"""Shared fixtures and reporting helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper; the
regenerated rows/series are printed to stdout (run with ``-s`` to see
them live) and archived under ``benchmarks/out/`` so the numbers are
inspectable after a quiet run.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.geometry import (
    MaskDesignRules,
    ModelParameterGenerator,
    ProcessData,
    default_reference,
)
from repro.spice.engine import GLOBAL_STATS

OUTPUT_DIR = Path(__file__).parent / "out"

#: per-benchmark {name, wall_seconds, engine: <EngineStats delta>}
#: accumulated by the autouse fixture, dumped to BENCH_engine.json.
_ENGINE_RECORDS: list[dict] = []

#: sweep-throughput measurements pushed via :func:`record_sweep`,
#: dumped to BENCH_sweep.json alongside the engine counters.
_SWEEP_RECORDS: list[dict] = []

#: transient hot-path measurements pushed via :func:`record_transient`,
#: dumped to BENCH_transient.json alongside the other artifacts.
_TRANSIENT_RECORDS: list[dict] = []

#: optimization-flow measurements pushed via :func:`record_optimize`,
#: dumped to BENCH_optimize.json alongside the other artifacts.
_OPTIMIZE_RECORDS: list[dict] = []

#: dense-vs-sparse assembly crossover measurements pushed via
#: :func:`record_sparse`, dumped to BENCH_sparse.json.
_SPARSE_RECORDS: list[dict] = []

#: job-server load-test measurements pushed via :func:`record_service`,
#: dumped to BENCH_service.json (requests/s, p50/p99, cache hit rate).
_SERVICE_RECORDS: list[dict] = []

#: corner-qualification measurements pushed via :func:`record_verify`,
#: dumped to BENCH_verify.json (corners/s scalar vs blocked, overhead).
_VERIFY_RECORDS: list[dict] = []


def record_sweep(name: str, payload: dict) -> None:
    """Archive one sweep-throughput measurement into BENCH_sweep.json."""
    _SWEEP_RECORDS.append({"benchmark": name, **payload})


def record_transient(name: str, payload: dict) -> None:
    """Archive one hot-path measurement into BENCH_transient.json."""
    _TRANSIENT_RECORDS.append({"benchmark": name, **payload})


def record_optimize(name: str, payload: dict) -> None:
    """Archive one optimize-flow measurement into BENCH_optimize.json."""
    _OPTIMIZE_RECORDS.append({"benchmark": name, **payload})


def record_sparse(name: str, payload: dict) -> None:
    """Archive one sparse-crossover measurement into BENCH_sparse.json."""
    _SPARSE_RECORDS.append({"benchmark": name, **payload})


def record_service(name: str, payload: dict) -> None:
    """Archive one service load-test measurement into BENCH_service.json."""
    _SERVICE_RECORDS.append({"benchmark": name, **payload})


def record_verify(name: str, payload: dict) -> None:
    """Archive one corner-qualification measurement into BENCH_verify.json."""
    _VERIFY_RECORDS.append({"benchmark": name, **payload})


@pytest.fixture(autouse=True)
def _engine_counters(request):
    """Record wall time and engine work (solves, factorizations, element
    evaluations...) performed during each benchmark."""
    snapshot = GLOBAL_STATS.copy()
    t0 = time.perf_counter()
    yield
    wall = time.perf_counter() - t0
    delta = GLOBAL_STATS.since(snapshot)
    _ENGINE_RECORDS.append({
        "benchmark": request.node.name,
        "wall_seconds": round(wall, 6),
        "engine": delta.as_dict(),
    })


def pytest_sessionfinish(session, exitstatus):
    if _ENGINE_RECORDS:
        OUTPUT_DIR.mkdir(exist_ok=True)
        payload = {
            "schema": "bench-engine-v1",
            "benchmarks": _ENGINE_RECORDS,
        }
        (OUTPUT_DIR / "BENCH_engine.json").write_text(
            json.dumps(payload, indent=2) + "\n"
        )
    if _SWEEP_RECORDS:
        OUTPUT_DIR.mkdir(exist_ok=True)
        payload = {
            "schema": "bench-sweep-v1",
            # Speedups only mean anything relative to the cores the
            # runner actually had; record it with the numbers.
            "cpu_count": os.cpu_count(),
            "benchmarks": _SWEEP_RECORDS,
        }
        (OUTPUT_DIR / "BENCH_sweep.json").write_text(
            json.dumps(payload, indent=2) + "\n"
        )
    if _TRANSIENT_RECORDS:
        OUTPUT_DIR.mkdir(exist_ok=True)
        payload = {
            "schema": "bench-transient-v1",
            "benchmarks": _TRANSIENT_RECORDS,
        }
        (OUTPUT_DIR / "BENCH_transient.json").write_text(
            json.dumps(payload, indent=2) + "\n"
        )
    if _OPTIMIZE_RECORDS:
        OUTPUT_DIR.mkdir(exist_ok=True)
        payload = {
            "schema": "bench-optimize-v1",
            "cpu_count": os.cpu_count(),
            "benchmarks": _OPTIMIZE_RECORDS,
        }
        (OUTPUT_DIR / "BENCH_optimize.json").write_text(
            json.dumps(payload, indent=2) + "\n"
        )
    if _SPARSE_RECORDS:
        OUTPUT_DIR.mkdir(exist_ok=True)
        payload = {
            "schema": "bench-sparse-v1",
            "benchmarks": _SPARSE_RECORDS,
        }
        (OUTPUT_DIR / "BENCH_sparse.json").write_text(
            json.dumps(payload, indent=2) + "\n"
        )
    if _SERVICE_RECORDS:
        OUTPUT_DIR.mkdir(exist_ok=True)
        payload = {
            "schema": "bench-service-v1",
            "cpu_count": os.cpu_count(),
            "benchmarks": _SERVICE_RECORDS,
        }
        (OUTPUT_DIR / "BENCH_service.json").write_text(
            json.dumps(payload, indent=2) + "\n"
        )
    if _VERIFY_RECORDS:
        OUTPUT_DIR.mkdir(exist_ok=True)
        payload = {
            "schema": "bench-verify-v1",
            "cpu_count": os.cpu_count(),
            "benchmarks": _VERIFY_RECORDS,
        }
        (OUTPUT_DIR / "BENCH_verify.json").write_text(
            json.dumps(payload, indent=2) + "\n"
        )


def report(name: str, text: str) -> None:
    """Print a regenerated table and archive it under benchmarks/out/."""
    banner = f"\n===== {name} =====\n{text}\n"
    print(banner)
    OUTPUT_DIR.mkdir(exist_ok=True)
    (OUTPUT_DIR / f"{name}.txt").write_text(text + "\n")


@pytest.fixture(scope="session")
def process() -> ProcessData:
    return ProcessData()


@pytest.fixture(scope="session")
def rules() -> MaskDesignRules:
    return MaskDesignRules()


@pytest.fixture(scope="session")
def reference(process, rules):
    return default_reference(process, rules)


@pytest.fixture(scope="session")
def generator(process, rules, reference) -> ModelParameterGenerator:
    return ModelParameterGenerator(process, rules, reference)

"""Shared fixtures and reporting helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper; the
regenerated rows/series are printed to stdout (run with ``-s`` to see
them live) and archived under ``benchmarks/out/`` so the numbers are
inspectable after a quiet run.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.geometry import (
    MaskDesignRules,
    ModelParameterGenerator,
    ProcessData,
    default_reference,
)

OUTPUT_DIR = Path(__file__).parent / "out"


def report(name: str, text: str) -> None:
    """Print a regenerated table and archive it under benchmarks/out/."""
    banner = f"\n===== {name} =====\n{text}\n"
    print(banner)
    OUTPUT_DIR.mkdir(exist_ok=True)
    (OUTPUT_DIR / f"{name}.txt").write_text(text + "\n")


@pytest.fixture(scope="session")
def process() -> ProcessData:
    return ProcessData()


@pytest.fixture(scope="session")
def rules() -> MaskDesignRules:
    return MaskDesignRules()


@pytest.fixture(scope="session")
def reference(process, rules):
    return default_reference(process, rules)


@pytest.fixture(scope="session")
def generator(process, rules, reference) -> ModelParameterGenerator:
    return ModelParameterGenerator(process, rules, reference)

"""Dense-vs-sparse assembly crossover on the scaled ring oscillator.

The dense engine assembles every Newton iteration into an ``(n, n)``
matrix and pays an O(n^3) LAPACK factorization; the sparse assembly
path fills a flat nnz-length data array over the compiled symbolic
pattern and factorizes with sparse LU.  This benchmark times the Fig. 11
ring-oscillator transient under both backends while the topology scales
from the paper's 5 stages (87 unknowns) to 101 stages (1719 unknowns) —
past the dense O(n^2) scaling wall — and archives the crossover curve in
``BENCH_sparse.json``.

Gates (CI enforces them on the artifact as well):

* at the 101-stage point the sparse backend must be >= 3x faster;
* the sparse runs must report **zero** dense assemblies — the flat
  scatter path handles every stamp, including device bypass replay and
  the fused ``G + alpha*C`` transient Jacobian;
* the compiled symbolic pattern must actually be reused across
  factorizations (``pattern_reuses`` > 0), and both backends must land
  on the same waveform.
"""

import time

import numpy as np

from repro.geometry import ModelParameterGenerator, default_reference
from repro.rfsystems import RingOscillatorSpec, build_ring_oscillator
from repro.spice.engine import GLOBAL_STATS, get_engine
from repro.spice.transient import solve_transient

from conftest import record_sparse, report

#: Short window: enough accepted steps (~40) to amortize compile and DC,
#: small enough that the 101-stage dense arm stays CI-feasible.
STOP_TIME = 0.12e-9
MAX_STEP = 3e-12
#: Stage counts must be odd (ring logic); spans both sides of the
#: ~200-unknown cost-model crossover.
STAGES = (5, 25, 51, 101)
#: Best-of rounds per arm, relaxed for the big configurations.
ROUNDS = {5: 3, 25: 3, 51: 2, 101: 2}
PARITY_WINDOW = 0.1e-9


def _ring(stages):
    generator = ModelParameterGenerator(reference=default_reference())
    return build_ring_oscillator(
        generator.generate("N1.2-12D"),
        follower_model=generator.generate("N1.2-6D"),
        spec=RingOscillatorSpec(stages=stages),
    )


def _run(stages, backend):
    """One timed transient on a fresh circuit; returns result + counters."""
    circuit = _ring(stages)
    engine = get_engine(circuit, backend)
    snapshot = GLOBAL_STATS.copy()
    t0 = time.perf_counter()
    result = solve_transient(
        circuit, stop_time=STOP_TIME, max_step=MAX_STEP, engine=engine
    )
    wall = time.perf_counter() - t0
    delta = GLOBAL_STATS.since(snapshot)
    return result, wall, delta.as_dict(), engine


def _best_of(stages, backend):
    best = None
    for _ in range(ROUNDS[stages]):
        candidate = _run(stages, backend)
        if best is None or candidate[1] < best[1]:
            best = candidate
    return best


def _waveform_deviation(ref, got):
    t_end = min(PARITY_WINDOW, ref.times[-1], got.times[-1])
    grid = np.linspace(0.0, t_end, 100)
    worst = 0.0
    for col in range(len(ref.circuit.node_map)):
        a = np.interp(grid, ref.times, ref.states[:, col])
        b = np.interp(grid, got.times, got.states[:, col])
        worst = max(worst, float(np.max(np.abs(a - b))))
    return worst


def bench_sparse_scaling():
    lines = [
        f"{'stages':>6} {'n':>6} {'nnz':>7} {'dense_s':>9} {'sparse_s':>9} "
        f"{'speedup':>8} {'fill':>6} {'dev_V':>9}"
    ]
    headline = None
    for stages in STAGES:
        dense_res, t_dense, d_dense, _ = _best_of(stages, "dense")
        sparse_res, t_sparse, d_sparse, engine = _best_of(stages, "sparse")

        speedup = t_dense / t_sparse
        deviation = _waveform_deviation(dense_res, sparse_res)
        n = int(dense_res.states.shape[1])
        nnz = int(engine.pattern.nnz)
        fill = (d_sparse["factor_nnz"] / nnz) if nnz else 0.0

        # Observability contract: the sparse arm never touches a dense
        # (n, n) assembly, the dense arm never scatters, and the
        # symbolic pattern is reused instead of re-analyzed.
        assert d_sparse["dense_assemblies"] == 0
        assert d_sparse["sparse_assemblies"] > 0
        assert d_sparse["pattern_reuses"] > 0
        assert d_dense["sparse_assemblies"] == 0
        assert deviation < 0.2, (
            f"backends diverged at {stages} stages: {deviation:.3g} V"
        )

        record_sparse(f"ring_oscillator_{stages}_stage", {
            "stages": stages,
            "unknowns": n,
            "pattern_nnz": nnz,
            "factor_nnz": d_sparse["factor_nnz"],
            "fill_in": round(fill, 2),
            "stop_time": STOP_TIME,
            "max_step": MAX_STEP,
            "dense_seconds": round(t_dense, 6),
            "sparse_seconds": round(t_sparse, 6),
            "speedup": round(speedup, 3),
            "waveform_deviation_v": float(deviation),
            "sparse_counters": {
                key: d_sparse[key]
                for key in (
                    "sparse_assemblies", "dense_assemblies",
                    "pattern_reuses", "factorizations", "solves",
                )
            },
            "dense_factorizations": d_dense["factorizations"],
        })
        lines.append(
            f"{stages:>6} {n:>6} {nnz:>7} {t_dense:>9.3f} {t_sparse:>9.3f} "
            f"{speedup:>7.2f}x {fill:>5.1f}x {deviation:>9.2e}"
        )
        if stages == 101:
            headline = speedup

    report("BENCH_sparse_scaling", "\n".join(lines))
    # The acceptance gate: past the crossover the dense O(n^2) assembly
    # plus O(n^3) factorization must lose decisively.  Locally this
    # measures well above 3x at 1719 unknowns.
    assert headline is not None and headline >= 3.0, (
        f"sparse speedup at 101 stages was {headline:.2f}x (< 3x)"
    )

"""Fig. 8 — the transistor shape taxonomy and its layout consequences.

Regenerates the shape table of the paper's Fig. 8 captions (a)-(f) with
the geometry quantities each shape implies: emitter area/perimeter, the
base and collector junction geometry, and the decomposed base
resistance.  The benchmark times the full layout computation over the
taxonomy.
"""

from repro.geometry import FIG8_SHAPES, TransistorShape, layout_report

from conftest import report


def _table(reports) -> str:
    rows = [
        "  key  shape       AE[um2] PE[um]  A_BC[um2]  A_CS[um2]  "
        "RBi[ohm] RBx[ohm] RB[ohm]  XCJC",
    ]
    for key, geo in reports.items():
        shape = geo.shape
        rows.append(
            f"  ({key})  {shape.name:10s} {geo.emitter_area:6.1f} "
            f"{geo.emitter_perimeter:6.1f}  {geo.base_area:8.1f}  "
            f"{geo.collector_area:8.1f}  {geo.rb_intrinsic:7.1f} "
            f"{geo.rb_extrinsic + geo.rb_contact:7.1f} "
            f"{geo.rb_total:7.1f}  {geo.xcjc:5.2f}"
        )
    return "\n".join(rows)


def bench_fig8_shapes(benchmark, rules, process):
    def compute():
        return {
            key: layout_report(TransistorShape.from_name(name), rules,
                               process)
            for key, name in FIG8_SHAPES.items()
        }

    reports = benchmark(compute)

    # -- shape facts the paper's Fig. 8 captions state -------------------------
    # (a) and (d) share the emitter size; (b) is (a) with double base
    assert reports["a"].emitter_area == reports["d"].emitter_area
    assert reports["b"].emitter_area == reports["a"].emitter_area
    # double base drops RB hard; (c)'s wide emitter raises it again
    assert reports["b"].rb_total < reports["a"].rb_total / 2
    assert reports["c"].rb_total > reports["b"].rb_total
    # (e) doubles the emitter area of (b)
    assert reports["e"].emitter_area == 2 * reports["b"].emitter_area

    report("fig8_shapes", _table(reports))

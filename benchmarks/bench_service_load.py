"""Load test for the simulation job server (``repro serve``).

Drives a live :class:`~repro.service.SimulationService` — in-process and
through the stdlib HTTP front end — with concurrent clients issuing the
create_circuit → run → poll loop, and archives throughput, latency
percentiles and cache effectiveness into ``BENCH_service.json``:

* ``requests_per_second`` — completed jobs / wall,
* ``p50_seconds`` / ``p99_seconds`` — submit-to-finish latency,
* ``cache_hit_rate`` — tenant result-cache hits / lookups (repeated
  identical requests must be > 0),
* ``recompiles`` — engine compilations after circuit creation (the
  compile-once contract; must be 0).
"""

from __future__ import annotations

import json
import threading
import time
import urllib.request
from pathlib import Path

from conftest import record_service, report

from repro.service import SimulationService
from repro.service.http import ServiceHTTPServer

DECK = (Path(__file__).resolve().parents[1]
        / "examples" / "decks" / "ce_stage.cir").read_text()

CLIENTS = 6
REQUESTS_PER_CLIENT = 10


def _drive_clients(submit_and_wait, clients: int, per_client: int) -> float:
    """Fan `submit_and_wait(tid, i)` over client threads; returns wall s."""
    failures: list = []

    def client(tid: int) -> None:
        try:
            for i in range(per_client):
                submit_and_wait(tid, i)
        except BaseException as exc:  # noqa: BLE001 - surfaced below
            failures.append((tid, exc))

    threads = [threading.Thread(target=client, args=(t,))
               for t in range(clients)]
    t0 = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - t0
    assert not failures, failures
    return wall


def test_service_inprocess_load():
    """Concurrent clients against the in-process service API."""
    with SimulationService(workers=4, queue_limit=256) as service:
        created = service.create_circuit(DECK)
        assert created["status"] == "ok"
        cid = created["circuit_id"]

        def submit_and_wait(tid: int, i: int) -> None:
            # A mix of repeated (cacheable) DC points and distinct
            # sweeps, spread over a few tenants like real callers.
            tenant = f"tenant-{tid % 2}"
            if i % 3 == 0:
                payload = service.run_sweep(
                    cid, tenant=tenant, source="VB",
                    values=[0.75, 0.8, 0.85], output="c")
            else:
                payload = service.run_dc(cid, tenant=tenant)
            assert payload["status"] == "ok", payload
            polled = service.wait(payload["job_id"], timeout=120.0)
            assert polled["result" if polled["state"] == "done"
                          else "error"], polled
            assert polled["state"] == "done", polled

        wall = _drive_clients(submit_and_wait, CLIENTS, REQUESTS_PER_CLIENT)
        stats = service.stats_payload()["stats"]

    completed = stats["jobs"]["completed"]
    assert completed == CLIENTS * REQUESTS_PER_CLIENT
    assert stats["jobs"]["failed"] == 0
    # The acceptance bar: repeated identical requests hit the cache, and
    # no job ever recompiled the circuit the create call compiled.
    assert stats["cache"]["hit_rate"] > 0.0
    assert stats["circuits"]["recompiles"] == 0

    payload = {
        "mode": "in-process",
        "clients": CLIENTS,
        "requests": completed,
        "wall_seconds": round(wall, 4),
        "requests_per_second": round(completed / wall, 2),
        "p50_seconds": round(stats["latency"]["p50_seconds"], 6),
        "p99_seconds": round(stats["latency"]["p99_seconds"], 6),
        "cache_hit_rate": round(stats["cache"]["hit_rate"], 4),
        "recompiles": stats["circuits"]["recompiles"],
        "rejected": stats["jobs"]["rejected"],
    }
    record_service("service_inprocess_load", payload)
    report("service_inprocess_load", json.dumps(payload, indent=2))


def test_service_http_load():
    """The same loop through a live local HTTP server instance."""
    service = SimulationService(workers=4, queue_limit=256)
    server = ServiceHTTPServer(("127.0.0.1", 0), service)
    server_thread = threading.Thread(target=server.serve_forever,
                                     daemon=True)
    server_thread.start()
    base = f"http://127.0.0.1:{server.port}"

    def call(method: str, path: str, body: dict | None = None) -> dict:
        data = None if body is None else json.dumps(body).encode()
        request = urllib.request.Request(base + path, data=data,
                                         method=method)
        with urllib.request.urlopen(request, timeout=60) as response:
            return json.loads(response.read())

    try:
        created = call("POST", "/circuits", {"deck": DECK})
        assert created["status"] == "ok"
        cid = created["circuit_id"]

        def submit_and_wait(tid: int, i: int) -> None:
            submitted = call("POST", "/jobs", {
                "kind": "dc", "circuit_id": cid,
                "tenant": f"tenant-{tid % 2}",
            })
            assert submitted["status"] == "ok", submitted
            deadline = time.monotonic() + 120.0
            while time.monotonic() < deadline:
                polled = call("GET", f"/jobs/{submitted['job_id']}")
                if polled["state"] in ("done", "failed"):
                    assert polled["state"] == "done", polled
                    return
                time.sleep(0.002)
            raise AssertionError("job did not finish in time")

        wall = _drive_clients(submit_and_wait, CLIENTS, REQUESTS_PER_CLIENT)
        stats = call("GET", "/stats")["stats"]
    finally:
        server.shutdown()
        server.server_close()
        service.close()

    completed = stats["jobs"]["completed"]
    assert completed == CLIENTS * REQUESTS_PER_CLIENT
    assert stats["cache"]["hit_rate"] > 0.0
    assert stats["circuits"]["recompiles"] == 0

    payload = {
        "mode": "http",
        "clients": CLIENTS,
        "requests": completed,
        "wall_seconds": round(wall, 4),
        "requests_per_second": round(completed / wall, 2),
        "p50_seconds": round(stats["latency"]["p50_seconds"], 6),
        "p99_seconds": round(stats["latency"]["p99_seconds"], 6),
        "cache_hit_rate": round(stats["cache"]["hit_rate"], 4),
        "recompiles": stats["circuits"]["recompiles"],
        "rejected": stats["jobs"]["rejected"],
    }
    record_service("service_http_load", payload)
    report("service_http_load", json.dumps(payload, indent=2))

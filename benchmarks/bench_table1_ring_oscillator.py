"""Table 1 — free-running frequency of the Fig. 11 ring oscillator with
the differential-pair transistor shapes swept uniformly.

The paper's experiment: "the circuit topology and the current values
were fixed, and only the shapes of the transistors at differential pairs
were optimized... it was concluded that the best shape for the
transistors was N1.2-12D."

The six transient simulations are computed once at module scope (about a
minute of CPU); the pytest-benchmark timing target is a single short
transient of the best-shape oscillator (rounds=1 — this is a simulator-
throughput number, not a microbenchmark).
"""

import functools

from repro.geometry import (
    TABLE1_SHAPES,
    ModelParameterGenerator,
    default_reference,
)
from repro.rfsystems import (
    RingOscillatorSpec,
    build_ring_oscillator,
    estimate_frequency_from_delay,
    run_ring_oscillator,
)
from repro.spice import Simulator

from conftest import report

SPEC = RingOscillatorSpec()
FOLLOWER_SHAPE = "N1.2-6D"
STOP_TIME = 10e-9


@functools.lru_cache(maxsize=1)
def table1_results():
    generator = ModelParameterGenerator(reference=default_reference())
    follower = generator.generate(FOLLOWER_SHAPE)
    results = {}
    for name in TABLE1_SHAPES:
        model = generator.generate(name)
        measurement = run_ring_oscillator(
            model, follower_model=follower, spec=SPEC, stop_time=STOP_TIME
        )
        estimate = estimate_frequency_from_delay(model, SPEC)
        results[name] = (measurement, estimate)
    return results


def _table(results) -> str:
    rows = [
        "  Fig. 11 five-stage differential ring oscillator "
        f"(RL={SPEC.load_resistance:.0f} ohm, tail="
        f"{SPEC.tail_current * 1e3:.1f} mA, followers {FOLLOWER_SHAPE})",
        "",
        "  shape of Q1,Q2,...,Q18   free-running freq   RC-delay estimate",
    ]
    for name in TABLE1_SHAPES:
        measurement, estimate = results[name]
        rows.append(
            f"  {name:22s} {measurement.frequency / 1e9:9.3f} GHz      "
            f"{estimate / 1e9:9.3f} GHz"
        )
    best = max(TABLE1_SHAPES,
               key=lambda n: results[n][0].frequency)
    rows.append("")
    rows.append(f"  best shape: {best}   (paper's Table 1 conclusion: "
                "N1.2-12D)")
    return "\n".join(rows)


def bench_table1_ring_oscillator(benchmark, generator):
    results = table1_results()

    # -- Table 1 conclusions -----------------------------------------------------
    frequencies = {name: m.frequency for name, (m, _) in results.items()}
    assert all(m.oscillating for m, _ in results.values())
    # the paper's headline: N1.2-12D is the fastest shape
    assert max(frequencies, key=frequencies.get) == "N1.2-12D"
    # single-base variants are the slowest (their RB dominates)
    assert frequencies["N1.2-6S"] < frequencies["N1.2-6D"]
    assert frequencies["N1.2x2-6S"] < frequencies["N1.2x2-6T"]
    # the wide-emitter N2.4-6D trails its narrow sibling
    assert frequencies["N2.4-6D"] < frequencies["N1.2-6D"]
    # GHz range, as in the paper's table
    assert all(0.3e9 < f < 5e9 for f in frequencies.values())

    # benchmark target: one short best-shape transient (simulator speed)
    follower = generator.generate(FOLLOWER_SHAPE)
    model = generator.generate("N1.2-12D")
    circuit = build_ring_oscillator(model, follower, SPEC)

    def short_transient():
        return Simulator(circuit).transient(stop_time=2e-9,
                                            max_step=10e-12,
                                            initial_step=1e-12)

    benchmark.pedantic(short_transient, rounds=1, iterations=1)
    report("table1_ring_oscillator", _table(results))

"""Fig. 2/3 — the double-super frequency plan over the CATV band.

Regenerates the spectrum bookkeeping of the paper's Fig. 3 for channels
across the 90-770 MHz band: the up/down LO frequencies, the 1st-IF image
at Fdown - 45 MHz, and the antenna-referred image channel.  The
benchmark times the full-band plan computation.
"""

import numpy as np

from repro.rfsystems import FrequencyPlan

from conftest import report


def _plan_table() -> str:
    plan = FrequencyPlan()
    rows = ["  RF[MHz]   Fup[MHz]  IF1[MHz]  Fdown[MHz]  rf2[MHz]  "
            "RF_image[MHz]"]
    for rf in np.linspace(plan.rf_min, plan.rf_max, 8):
        info = plan.describe(float(rf))
        rows.append(
            f"  {info['rf'] / 1e6:7.1f}  {info['up_lo'] / 1e6:8.1f}  "
            f"{info['first_if'] / 1e6:8.1f}  {info['down_lo'] / 1e6:9.1f}  "
            f"{info['first_if_image'] / 1e6:8.1f}  "
            f"{info['rf_image'] / 1e6:10.1f}"
        )
    rows.append(
        f"  invariants: rf1-rf2 = {plan.image_spacing / 1e6:.0f} MHz "
        f"(= 2 x 2nd IF), rf2-Fdown = "
        f"{(plan.first_if_image - plan.down_lo) / 1e6:.0f} MHz"
    )
    return "\n".join(rows)


def bench_fig3_frequency_plan(benchmark):
    plan = FrequencyPlan()
    channels = np.linspace(plan.rf_min, plan.rf_max, 256)

    def full_band():
        return [plan.describe(float(rf)) for rf in channels]

    infos = benchmark(full_band)
    assert len(infos) == 256
    # every channel's image is exactly 90 MHz up
    assert all(
        abs((info["rf_image"] - info["rf"]) - 2 * plan.second_if) < 1e-3
        for info in infos
    )
    report("fig3_frequency_plan", _plan_table())

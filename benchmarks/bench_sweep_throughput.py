"""Sweep-orchestration throughput: parallel dispatch, caching, batching.

Measures the machinery PR'd around the paper's repeated-evaluation
workloads (Monte-Carlo yield, the Fig. 5 grid, AC sweeps):

* serial vs process-pool Monte Carlo — asserting bit-identical
  populations, recording the honest speedup for *this* runner's core
  count (archived in BENCH_sweep.json next to ``cpu_count``: on a
  single-core CI box the speedup is ~1x or below and that is the
  correct number to archive, not a fabricated one);
* content-hash cache reuse — a repeated sweep must re-evaluate nothing;
* batched vs per-frequency AC solves on the CE-stage example deck;
* 500-point Monte-Carlo DC operating points — the real per-point-cost
  workload the CI speedup gate runs on — serial scalar vs blocked
  (one stacked Newton per chunk) vs blocked + process pool;
* the ``--jobs auto`` dispatch cost model's per-size decisions (the
  "when does parallel win" table).

Timed parallel runs warm the persistent pool first: pool spin-up is a
once-per-process cost by design, and folding it into one sweep's wall
time would measure the old architecture, not this one.  Spin-up itself
is recorded separately (``pool_spinup_seconds``).
"""

import os
import time
from pathlib import Path

import numpy as np

from repro.geometry import MismatchSpec, monte_carlo_image_rejection
from repro.rfsystems import fig5_sweep
from repro.spice.ac import frequency_grid, solve_ac
from repro.spice.parser import parse_deck
from repro.sweep import (
    BlockedACSweep,
    BlockedDCSweep,
    ResultCache,
    ac_gain_db,
    node_voltage,
    run_sweep,
    shutdown_pools,
)

from conftest import record_sweep, report

DECKS = Path(__file__).resolve().parent.parent / "examples" / "decks"

MC_SAMPLES = 800
JOBS = 4
MC_DC_POINTS = 500
MC_AC_POINTS = 200
# The CI speedup gate compares against serial, so its worker count must
# not oversubscribe the runner: 4 workers on a 2-core box lose to serial
# through sheer contention, which says nothing about the dispatch layer.
DC_JOBS = max(2, min(JOBS, os.cpu_count() or 1))


def _timed(fn):
    t0 = time.perf_counter()
    value = fn()
    return value, time.perf_counter() - t0


def _warm_pool(jobs: int) -> float:
    """Spin the persistent pool up outside the timed region.

    Returns the measured spin-up seconds (0.0 if it was already warm).
    """
    from repro.sweep.executors import _get_pool

    state, reused = _get_pool(jobs)
    return 0.0 if reused else state.spinup_seconds


def bench_monte_carlo_parallel_dispatch():
    mismatch = MismatchSpec(1.5, 0.02)
    spinup = _warm_pool(JOBS)
    serial, t_serial = _timed(
        lambda: monte_carlo_image_rejection(MC_SAMPLES, mismatch, seed=7)
    )
    parallel, t_parallel = _timed(
        lambda: monte_carlo_image_rejection(MC_SAMPLES, mismatch, seed=7,
                                            jobs=JOBS)
    )
    # The contract under test: executors never change the numbers.
    assert parallel.values == serial.values
    assert parallel.passed == serial.passed

    speedup = t_serial / t_parallel if t_parallel > 0 else 0.0
    record_sweep("monte_carlo_irr", {
        "points": MC_SAMPLES,
        "jobs": JOBS,
        "serial_seconds": round(t_serial, 6),
        "parallel_seconds": round(t_parallel, 6),
        "speedup": round(speedup, 3),
        "serial_points_per_second": round(MC_SAMPLES / t_serial, 1),
        "pool_spinup_seconds": round(spinup, 6),
        "bit_identical": True,
    })
    report("sweep_monte_carlo", (
        f"samples {MC_SAMPLES}, jobs {JOBS}\n"
        f"serial   {t_serial * 1e3:8.2f} ms "
        f"({MC_SAMPLES / t_serial:8.0f} samples/s)\n"
        f"process  {t_parallel * 1e3:8.2f} ms (speedup {speedup:.2f}x)\n"
        f"populations bit-identical: True"
    ))


def bench_fig5_grid_parallel_dispatch():
    phases = [0.25 * k for k in range(1, 13)]
    gains = (0.01, 0.03, 0.05)
    _warm_pool(JOBS)
    serial, t_serial = _timed(lambda: fig5_sweep(phases, gains))
    parallel, t_parallel = _timed(
        lambda: fig5_sweep(phases, gains, jobs=JOBS)
    )
    assert parallel == serial
    points = len(phases) * len(gains)
    record_sweep("fig5_grid", {
        "points": points,
        "jobs": JOBS,
        "serial_seconds": round(t_serial, 6),
        "parallel_seconds": round(t_parallel, 6),
        "speedup": round(t_serial / t_parallel, 3),
        "bit_identical": True,
    })
    report("sweep_fig5_grid", (
        f"grid {len(gains)}x{len(phases)} = {points} simulated points\n"
        f"serial  {t_serial * 1e3:8.2f} ms\n"
        f"process {t_parallel * 1e3:8.2f} ms "
        f"(speedup {t_serial / t_parallel:.2f}x)"
    ))


def bench_cache_eliminates_reevaluation():
    phases = [0.5 * k for k in range(1, 9)]
    gains = (0.01, 0.05)
    cache = ResultCache()
    cold, t_cold = _timed(lambda: fig5_sweep(phases, gains, cache=cache))
    warm, t_warm = _timed(lambda: fig5_sweep(phases, gains, cache=cache))
    assert warm == cold
    points = len(phases) * len(gains)
    assert cache.hits >= points  # the whole second sweep was served
    record_sweep("fig5_cache_reuse", {
        "points": points,
        "cold_seconds": round(t_cold, 6),
        "cached_seconds": round(t_warm, 6),
        "cache_hits": cache.hits,
        "speedup": round(t_cold / t_warm, 1) if t_warm > 0 else None,
    })
    report("sweep_cache_reuse", (
        f"{points} points: cold {t_cold * 1e3:.2f} ms, "
        f"cached {t_warm * 1e3:.3f} ms "
        f"({cache.hits} hits, nothing re-simulated)"
    ))


def bench_batched_ac_throughput():
    deck = parse_deck((DECKS / "ce_stage.cir").read_text())
    freqs = frequency_grid(1e3, 1e10, 100, "dec")
    batched, t_batched = _timed(
        lambda: solve_ac(deck.circuit, freqs, batched=True)
    )
    loop, t_loop = _timed(
        lambda: solve_ac(deck.circuit, freqs, batched=False)
    )
    np.testing.assert_allclose(batched.solutions, loop.solutions,
                               rtol=1e-12, atol=1e-15)
    speedup = t_loop / t_batched if t_batched > 0 else 0.0
    record_sweep("batched_ac_ce_stage", {
        "frequencies": len(freqs),
        "unknowns": deck.circuit.num_unknowns,
        "batched_seconds": round(t_batched, 6),
        "loop_seconds": round(t_loop, 6),
        "speedup": round(speedup, 3),
    })
    report("sweep_batched_ac", (
        f"ce_stage.cir, {len(freqs)} frequencies, "
        f"{deck.circuit.num_unknowns} unknowns\n"
        f"per-frequency loop {t_loop * 1e3:8.2f} ms\n"
        f"batched blocks     {t_batched * 1e3:8.2f} ms "
        f"(speedup {speedup:.2f}x)"
    ))


def _mc_dc_points(count: int) -> list:
    # Deterministic "Monte Carlo" bias levels: seed-fixed draws, plain
    # param dicts (no per-point generators — the evaluator is a pure
    # function of the bias, so the blocked path stays eligible).
    rng = np.random.default_rng(42)
    return [{"VB": float(v)}
            for v in rng.uniform(0.60, 0.85, size=count)]


def bench_monte_carlo_dc_500():
    """The CI speedup-gate workload: 500 DC operating points.

    Per-point cost is a real Newton solve (~ms), which is what parallel
    dispatch needs to win.  Three configurations, all bit-identical:
    serial scalar (the old architecture's best case), serial blocked
    (one stacked Newton per chunk), and blocked + persistent process
    pool.  CI fails if the process configuration does not beat serial
    scalar (``speedup`` field) on a multi-core runner.
    """
    fn = BlockedDCSweep((DECKS / "ce_stage.cir").read_text(),
                        measure=node_voltage("c"))
    points = _mc_dc_points(MC_DC_POINTS)
    spinup = _warm_pool(DC_JOBS)

    scalar, t_scalar = _timed(
        lambda: run_sweep(fn, points, batch=False)
    )
    blocked, t_blocked = _timed(
        lambda: run_sweep(fn, points, batch="auto")
    )
    parallel, t_parallel = _timed(
        lambda: run_sweep(fn, points, executor="process", jobs=DC_JOBS,
                          batch="auto")
    )
    assert blocked.values == scalar.values
    assert parallel.values == scalar.values

    speedup = t_scalar / t_parallel if t_parallel > 0 else 0.0
    blocked_speedup = t_scalar / t_blocked if t_blocked > 0 else 0.0
    record_sweep("monte_carlo_dc_500", {
        "points": MC_DC_POINTS,
        "jobs": DC_JOBS,
        "serial_seconds": round(t_scalar, 6),
        "blocked_seconds": round(t_blocked, 6),
        "parallel_seconds": round(t_parallel, 6),
        "speedup": round(speedup, 3),
        "blocked_speedup": round(blocked_speedup, 3),
        "pool_spinup_seconds": round(spinup, 6),
        "dispatch_payload_bytes": parallel.stats.payload_bytes,
        "chunk_p50_seconds": round(parallel.stats.chunk_p50_seconds, 6),
        "chunk_p99_seconds": round(parallel.stats.chunk_p99_seconds, 6),
        "bit_identical": True,
    })
    report("sweep_monte_carlo_dc", (
        f"ce_stage.cir, {MC_DC_POINTS} DC operating points, "
        f"jobs {DC_JOBS}\n"
        f"serial scalar      {t_scalar * 1e3:8.2f} ms\n"
        f"serial blocked     {t_blocked * 1e3:8.2f} ms "
        f"(speedup {blocked_speedup:.2f}x)\n"
        f"blocked + process  {t_parallel * 1e3:8.2f} ms "
        f"(speedup {speedup:.2f}x)\n"
        f"values bit-identical: True"
    ))


def bench_monte_carlo_ac():
    """The blocked-AC gate workload: Monte-Carlo bias x 51 frequencies.

    Every point is a full AC sweep (bias solve + 51 complex systems) on
    the CE-stage deck's ``.AC DEC 10 1MEG 100G`` grid.  Three
    configurations, all bit-identical: serial scalar (one bias solve
    and a single-lane frequency sweep per point), serial blocked (one
    stacked Newton for the chunk, then ``lanes x freq_block`` stacked
    complex solves), and blocked + persistent process pool.  CI fails
    if blocked does not beat serial scalar — that comparison is
    algorithmic, so it must hold even on a single core.
    """
    fn = BlockedACSweep((DECKS / "ce_stage.cir").read_text(),
                        measure=ac_gain_db("c"))
    points = _mc_dc_points(MC_AC_POINTS)
    freq_count = len(fn.frequencies)
    spinup = _warm_pool(DC_JOBS)

    scalar, t_scalar = _timed(
        lambda: run_sweep(fn, points, batch=False)
    )
    blocked, t_blocked = _timed(
        lambda: run_sweep(fn, points, batch="auto")
    )
    parallel, t_parallel = _timed(
        lambda: run_sweep(fn, points, executor="process", jobs=DC_JOBS,
                          batch="auto")
    )
    for run in (blocked, parallel):
        assert len(run.values) == len(scalar.values)
        for got, want in zip(run.values, scalar.values):
            np.testing.assert_array_equal(got, want)

    speedup = t_scalar / t_parallel if t_parallel > 0 else 0.0
    blocked_speedup = t_scalar / t_blocked if t_blocked > 0 else 0.0
    record_sweep("monte_carlo_ac", {
        "points": MC_AC_POINTS,
        "frequencies": freq_count,
        "jobs": DC_JOBS,
        "serial_seconds": round(t_scalar, 6),
        "blocked_seconds": round(t_blocked, 6),
        "parallel_seconds": round(t_parallel, 6),
        "speedup": round(speedup, 3),
        "blocked_speedup": round(blocked_speedup, 3),
        "pool_spinup_seconds": round(spinup, 6),
        "bit_identical": True,
    })
    report("sweep_monte_carlo_ac", (
        f"ce_stage.cir, {MC_AC_POINTS} bias points x "
        f"{freq_count} frequencies\n"
        f"serial scalar      {t_scalar * 1e3:8.2f} ms\n"
        f"serial blocked     {t_blocked * 1e3:8.2f} ms "
        f"(speedup {blocked_speedup:.2f}x)\n"
        f"blocked + process  {t_parallel * 1e3:8.2f} ms "
        f"(speedup {speedup:.2f}x)\n"
        f"values bit-identical: True"
    ))


def bench_dispatch_cost_model_table():
    """The "when does parallel win" table: the auto executor's decision
    and outcome across sweep sizes, against a fixed serial baseline."""
    fn = BlockedDCSweep((DECKS / "ce_stage.cir").read_text(),
                        measure=node_voltage("c"))
    shutdown_pools()  # the table should show the cold-pool trade-off
    rows = []
    table = {}
    for count in (8, 64, MC_DC_POINTS):
        points = _mc_dc_points(count)
        serial, t_serial = _timed(
            lambda: run_sweep(fn, points, batch=False)
        )
        auto, t_auto = _timed(
            lambda: run_sweep(fn, points, executor="auto", batch="auto")
        )
        assert auto.values == serial.values
        rows.append(
            f"{count:5d} points: serial {t_serial * 1e3:8.2f} ms, "
            f"auto {t_auto * 1e3:8.2f} ms -> {auto.stats.executor} "
            f"x{auto.stats.workers}"
        )
        table[str(count)] = {
            "serial_seconds": round(t_serial, 6),
            "auto_seconds": round(t_auto, 6),
            "chosen_backend": auto.stats.executor,
            "workers": auto.stats.workers,
            "plan": auto.stats.plan,
        }
    record_sweep("dispatch_cost_model", table)
    report("sweep_dispatch_cost_model", "\n".join(rows))

"""Sweep-orchestration throughput: parallel dispatch, caching, batching.

Measures the machinery PR'd around the paper's repeated-evaluation
workloads (Monte-Carlo yield, the Fig. 5 grid, AC sweeps):

* serial vs process-pool Monte Carlo — asserting bit-identical
  populations, recording the honest speedup for *this* runner's core
  count (archived in BENCH_sweep.json next to ``cpu_count``: on a
  single-core CI box the speedup is ~1x or below and that is the
  correct number to archive, not a fabricated one);
* content-hash cache reuse — a repeated sweep must re-evaluate nothing;
* batched vs per-frequency AC solves on the CE-stage example deck.
"""

import time
from pathlib import Path

import numpy as np

from repro.geometry import MismatchSpec, monte_carlo_image_rejection
from repro.rfsystems import fig5_sweep
from repro.spice.ac import frequency_grid, solve_ac
from repro.spice.parser import parse_deck
from repro.sweep import ResultCache

from conftest import record_sweep, report

DECKS = Path(__file__).resolve().parent.parent / "examples" / "decks"

MC_SAMPLES = 800
JOBS = 4


def _timed(fn):
    t0 = time.perf_counter()
    value = fn()
    return value, time.perf_counter() - t0


def bench_monte_carlo_parallel_dispatch():
    mismatch = MismatchSpec(1.5, 0.02)
    serial, t_serial = _timed(
        lambda: monte_carlo_image_rejection(MC_SAMPLES, mismatch, seed=7)
    )
    parallel, t_parallel = _timed(
        lambda: monte_carlo_image_rejection(MC_SAMPLES, mismatch, seed=7,
                                            jobs=JOBS)
    )
    # The contract under test: executors never change the numbers.
    assert parallel.values == serial.values
    assert parallel.passed == serial.passed

    speedup = t_serial / t_parallel if t_parallel > 0 else 0.0
    record_sweep("monte_carlo_irr", {
        "points": MC_SAMPLES,
        "jobs": JOBS,
        "serial_seconds": round(t_serial, 6),
        "parallel_seconds": round(t_parallel, 6),
        "speedup": round(speedup, 3),
        "serial_points_per_second": round(MC_SAMPLES / t_serial, 1),
        "bit_identical": True,
    })
    report("sweep_monte_carlo", (
        f"samples {MC_SAMPLES}, jobs {JOBS}\n"
        f"serial   {t_serial * 1e3:8.2f} ms "
        f"({MC_SAMPLES / t_serial:8.0f} samples/s)\n"
        f"process  {t_parallel * 1e3:8.2f} ms (speedup {speedup:.2f}x)\n"
        f"populations bit-identical: True"
    ))


def bench_fig5_grid_parallel_dispatch():
    phases = [0.25 * k for k in range(1, 13)]
    gains = (0.01, 0.03, 0.05)
    serial, t_serial = _timed(lambda: fig5_sweep(phases, gains))
    parallel, t_parallel = _timed(
        lambda: fig5_sweep(phases, gains, jobs=JOBS)
    )
    assert parallel == serial
    points = len(phases) * len(gains)
    record_sweep("fig5_grid", {
        "points": points,
        "jobs": JOBS,
        "serial_seconds": round(t_serial, 6),
        "parallel_seconds": round(t_parallel, 6),
        "speedup": round(t_serial / t_parallel, 3),
        "bit_identical": True,
    })
    report("sweep_fig5_grid", (
        f"grid {len(gains)}x{len(phases)} = {points} simulated points\n"
        f"serial  {t_serial * 1e3:8.2f} ms\n"
        f"process {t_parallel * 1e3:8.2f} ms "
        f"(speedup {t_serial / t_parallel:.2f}x)"
    ))


def bench_cache_eliminates_reevaluation():
    phases = [0.5 * k for k in range(1, 9)]
    gains = (0.01, 0.05)
    cache = ResultCache()
    cold, t_cold = _timed(lambda: fig5_sweep(phases, gains, cache=cache))
    warm, t_warm = _timed(lambda: fig5_sweep(phases, gains, cache=cache))
    assert warm == cold
    points = len(phases) * len(gains)
    assert cache.hits >= points  # the whole second sweep was served
    record_sweep("fig5_cache_reuse", {
        "points": points,
        "cold_seconds": round(t_cold, 6),
        "cached_seconds": round(t_warm, 6),
        "cache_hits": cache.hits,
        "speedup": round(t_cold / t_warm, 1) if t_warm > 0 else None,
    })
    report("sweep_cache_reuse", (
        f"{points} points: cold {t_cold * 1e3:.2f} ms, "
        f"cached {t_warm * 1e3:.3f} ms "
        f"({cache.hits} hits, nothing re-simulated)"
    ))


def bench_batched_ac_throughput():
    deck = parse_deck((DECKS / "ce_stage.cir").read_text())
    freqs = frequency_grid(1e3, 1e10, 100, "dec")
    batched, t_batched = _timed(
        lambda: solve_ac(deck.circuit, freqs, batched=True)
    )
    loop, t_loop = _timed(
        lambda: solve_ac(deck.circuit, freqs, batched=False)
    )
    np.testing.assert_allclose(batched.solutions, loop.solutions,
                               rtol=1e-12, atol=1e-15)
    speedup = t_loop / t_batched if t_batched > 0 else 0.0
    record_sweep("batched_ac_ce_stage", {
        "frequencies": len(freqs),
        "unknowns": deck.circuit.num_unknowns,
        "batched_seconds": round(t_batched, 6),
        "loop_seconds": round(t_loop, 6),
        "speedup": round(speedup, 3),
    })
    report("sweep_batched_ac", (
        f"ce_stage.cir, {len(freqs)} frequencies, "
        f"{deck.circuit.num_unknowns} unknowns\n"
        f"per-frequency loop {t_loop * 1e3:8.2f} ms\n"
        f"batched blocks     {t_batched * 1e3:8.2f} ms "
        f"(speedup {speedup:.2f}x)"
    ))

"""Table 1 companion — the static shape selector vs the transient truth.

The paper's designers choose shapes from Fig. 9-style data before any
transient run.  :func:`repro.geometry.shape_for_current` encodes that
read-off (fT at the operating current plus the RB input-pole delay);
this bench checks the static ranking against the Table 1 transient
ordering measured by ``bench_table1_ring_oscillator`` — in seconds
instead of a minute of simulation.
"""

from repro.geometry import TABLE1_SHAPES, shape_for_current

from conftest import report

#: transient ordering measured by the full Table 1 run (fastest first);
#: N1.2-6S and N1.2x2-6S are a statistical tie at the bottom.
TRANSIENT_ORDER = ("N1.2-12D", "N1.2-6D", "N1.2x2-6T", "N2.4-6D",
                   "N1.2x2-6S", "N1.2-6S")
OPERATING_CURRENT = 4e-3  # the ring's tail current


def bench_table1_static_selector(benchmark, generator):
    selection = benchmark(
        shape_for_current, OPERATING_CURRENT, generator,
        TABLE1_SHAPES,
    )
    static_order = [score.name for score in selection.scores]

    lines = [selection.table(), ""]
    lines.append("  transient (Table 1) order: "
                 + " > ".join(TRANSIENT_ORDER))
    lines.append("  static selector order:     "
                 + " > ".join(static_order))

    # -- agreement checks -------------------------------------------------------
    # the winner matches the paper's conclusion
    assert static_order[0] == "N1.2-12D"
    # the double-base group outranks the single-base group, as measured
    single_base = {"N1.2-6S", "N1.2x2-6S"}
    assert set(static_order[-2:]) == single_base
    # pairwise agreement outside the bottom tie: count inversions
    comparable = [n for n in TRANSIENT_ORDER if n not in single_base]
    static_comparable = [n for n in static_order if n not in single_base]
    inversions = sum(
        1
        for i, a in enumerate(comparable)
        for b in comparable[i + 1:]
        if static_comparable.index(a) > static_comparable.index(b)
    )
    lines.append(f"  pairwise inversions vs transient (top group): "
                 f"{inversions}")
    assert inversions <= 1

    report("table1_static_selector", "\n".join(lines))

"""Fig. 10 — the model parameter generation program, end to end.

The paper's flow diagram: read schematic -> extract shapes -> read
reference parameters + process/mask data -> calculate parameters ->
SPICE analysis.  This bench runs every box, *including* the measurement
leg the paper takes as given (virtual bench + Getreu extraction), and
asserts the loop's invariants.  The benchmark times one full pass.
"""

import pytest

from repro.geometry import (
    MaskDesignRules,
    ModelParameterGenerator,
    ProcessData,
    ReferenceTransistor,
    default_reference,
)
from repro.measurement import extract_parameters, measure_device
from repro.spice import Simulator, parse_deck
from repro.spice.runner import run_deck

from conftest import report

SCHEMATIC_TEMPLATE = """shape-annotated differential pair (Fig. 10 input)
{models}
VCC vcc 0 5
VB1 b1 0 2.0
VB2 b2 0 2.0
RC1 vcc c1 500
RC2 vcc c2 500
Q1 c1 b1 e QN1P2_12D
Q2 c2 b2 e QN1P2_12D
IT e 0 3m
.OP
.END
"""


def full_flow():
    """One pass of the complete Fig. 10 pipeline."""
    # the silicon (hidden golden device) and its characterization
    golden = default_reference()
    measurements = measure_device(golden.parameters, noise=0.01)
    extraction = extract_parameters(measurements)
    # calibrate the generator with the *extracted* reference
    generator = ModelParameterGenerator(
        ProcessData(), MaskDesignRules(),
        ReferenceTransistor(golden.shape, extraction.parameters),
    )
    # generate model cards for the schematic's shapes and simulate
    deck_text = SCHEMATIC_TEMPLATE.format(
        models=generator.model_library(["N1.2-12D"]).strip()
    )
    run = run_deck(deck_text)
    return golden, extraction, generator, run


def bench_fig10_generation_flow(benchmark):
    golden, extraction, generator, run = benchmark(full_flow)

    from repro.spice.analysis import OperatingPointResult

    op = run.first(OperatingPointResult)
    dev = op.device_operating_point("Q1")

    lines = [
        "  Fig. 10 flow, every box executed:",
        "",
        "  [measure]   Gummel/C-V/fT curves from the virtual bench "
        "(1 % noise)",
        f"  [extract]   IS err "
        f"{abs(extraction.parameters.IS / golden.parameters.IS - 1) * 100:.1f} %,"
        f" CJE err "
        f"{abs(extraction.parameters.CJE / golden.parameters.CJE - 1) * 100:.1f} %",
        "  [calibrate] generator anchored at shape "
        f"{golden.shape.name}",
        "  [generate]  .MODEL card for N1.2-12D emitted and parsed",
        f"  [simulate]  .OP: Ic(Q1) = {dev.ic * 1e3:.3f} mA, "
        f"Vbe = {dev.vbe:.3f} V, fT at bias = "
        f"{dev.transition_frequency() / 1e9:.2f} GHz",
    ]

    # -- loop invariants ---------------------------------------------------------
    # the generated pair splits the tail current evenly
    assert dev.ic == pytest.approx(1.5e-3, rel=0.15)
    # extraction recovered the device well enough to keep fT in-family
    assert 3e9 < dev.transition_frequency() < 2e10
    # the regenerated reference reproduces the extraction exactly
    regenerated = generator.generate(golden.shape)
    assert regenerated.IS == pytest.approx(extraction.parameters.IS,
                                           rel=1e-9)

    report("fig10_generation_flow", "\n".join(lines))

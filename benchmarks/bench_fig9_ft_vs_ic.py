"""Fig. 9 — transition frequency vs collector current for npn shapes.

Regenerates the paper's Ic-fT characteristics for N1.2-6D, N1.2-12D,
N1.2-24D and N1.2-48D from geometry-generated model parameters, checking
the figure's message: each shape has a peaked fT(Ic) and "the collector
current which gives the peak ft changes depending on the shapes of the
transistors".  The benchmark times the four-curve generation + sweep.
"""

import numpy as np

from repro.devices import ft_curve, peak_ft
from repro.geometry import FIG9_SHAPES

from conftest import report

CURRENTS = np.geomspace(1e-4, 2e-2, 16)


def _table(curves, peaks) -> str:
    rows = ["  fT [GHz] vs Ic, geometry-generated models (VCE = 3 V)",
            "  Ic[mA]  " + "".join(f"{name:>11s}" for name in FIG9_SHAPES)]
    for i, ic in enumerate(CURRENTS):
        row = f"  {ic * 1e3:6.2f} "
        for name in FIG9_SHAPES:
            row += f"  {curves[name][i].ft / 1e9:8.2f} "
        rows.append(row)
    rows.append("")
    rows.append("  peaks:")
    for name in FIG9_SHAPES:
        peak = peaks[name]
        rows.append(f"    {name:10s} fT,max = {peak.ft / 1e9:5.2f} GHz at "
                    f"Ic = {peak.ic * 1e3:5.2f} mA")
    return "\n".join(rows)


def bench_fig9_ft_vs_ic(benchmark, generator):
    def sweep():
        curves = {}
        peaks = {}
        for name in FIG9_SHAPES:
            model = generator.generate(name)
            curves[name] = ft_curve(model, CURRENTS)
            peaks[name] = peak_ft(model, 1e-4, 2e-2, points=61)
        return curves, peaks

    curves, peaks = benchmark(sweep)

    # -- figure-shape checks ----------------------------------------------------
    peak_currents = [peaks[name].ic for name in FIG9_SHAPES]
    # peak current strictly ordered with emitter size (the paper's point)
    assert peak_currents == sorted(peak_currents)
    assert peak_currents[-1] > 4 * peak_currents[0]
    # every curve rises then falls inside the plotted window
    for name in FIG9_SHAPES:
        fts = [p.ft for p in curves[name]]
        peak_index = int(np.argmax(fts))
        assert 0 < peak_index < len(fts) - 1
    # peak fT similar across shapes (within ~10 %), as in the figure
    peak_fts = [peaks[name].ft for name in FIG9_SHAPES]
    assert max(peak_fts) / min(peak_fts) < 1.15
    # GHz range consistent with the paper's axis (5-10 GHz gridlines)
    assert 5e9 < max(peak_fts) < 20e9

    report("fig9_ft_vs_ic", _table(curves, peaks))

"""Section 2.2 extension — performance under IC process variations.

The paper: "IC circuit designers have to examine the performance of this
system taking IC process variations into account."  This bench runs the
statistical version of the Fig. 5 read-off: Monte-Carlo mismatch on the
two 90-degree shifters and the path gain, yield against the 30 dB image
rejection spec, plus the device-parameter spreads a varied process
produces through the geometry generator.
"""

import numpy as np

from repro.geometry import (
    MismatchSpec,
    monte_carlo_image_rejection,
    monte_carlo_models,
)

from conftest import report

SAMPLES = 800
SPEC_DB = 30.0


def bench_sec2_monte_carlo(benchmark):
    def run():
        yields = {}
        for label, mismatch in (
            ("tight (0.5deg, 0.5%)", MismatchSpec(0.5, 0.005)),
            ("typical (1.5deg, 2%)", MismatchSpec(1.5, 0.02)),
            ("loose (3deg, 4%)", MismatchSpec(3.0, 0.04)),
        ):
            yields[label] = monte_carlo_image_rejection(
                SAMPLES, mismatch, irr_spec_db=SPEC_DB
            )
        population = monte_carlo_models("N1.2-6D", 60)
        return yields, population

    yields, population = benchmark(run)

    lines = [f"  image-rejection yield vs matching quality "
             f"({SAMPLES} samples, spec {SPEC_DB:.0f} dB):",
             ""]
    for label, result in yields.items():
        lines.append(
            f"    {label:22s} yield {result.yield_fraction * 100:5.1f} %   "
            f"IRR p5/p50/p95 = {result.percentile(5):5.1f} / "
            f"{result.percentile(50):5.1f} / {result.percentile(95):5.1f} dB"
        )
    lines.append("")
    lines.append("  device-parameter spreads through the geometry "
                 "generator (N1.2-6D, 60 process samples):")
    for name in ("IS", "BF", "RB", "RE", "CJE", "CJC", "TF", "IKF"):
        lines.append(f"    {name:4s} sigma/mean = "
                     f"{population.spread(name) * 100:5.1f} %")

    # -- sanity assertions -----------------------------------------------------
    assert yields["tight (0.5deg, 0.5%)"].yield_fraction > 0.95
    assert (yields["loose (3deg, 4%)"].yield_fraction
            < yields["typical (1.5deg, 2%)"].yield_fraction)
    assert population.spread("RB") > 0.02

    report("sec2_monte_carlo", "\n".join(lines))

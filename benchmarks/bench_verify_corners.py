"""Corner-qualification throughput: blocked sweep fan-out vs scalar.

Qualifies two seeded cells — the UPMIX-1300 Gilbert mixer and the
PHASE90-IF phase shifter — across an 81-corner full-factorial set
(3 temperatures x 3 resistor scales x 3 supply levels x 3 input-bias
levels), with DC + AC measurements and device stress checks at every
corner.  The blocked ``executor="auto"`` path is asserted bit-identical
to the scalar serial reference before any number is recorded; CI gates
the blocked speedup >= 1.  Archived in BENCH_verify.json next to the
runner's core count.
"""

import time

from repro.celldb import seed_database
from repro.spice.dcop import solve_dc
from repro.spice.parser import parse_deck
from repro.verify import (
    DEFAULT_STRESS_RULES,
    CornerEvaluator,
    CornerSet,
    check_stress,
    default_measurements,
    device_quantities,
    qualify_deck,
    scale_axis,
    source_axis,
    temperature_axis,
)

from conftest import record_verify, report

JOBS = 2

#: cell -> the second (input-bias) source axis riding each corner deck.
CELLS = (
    ("UPMIX-1300", ("VRF", 0.85, 0.05)),
    ("PHASE90-IF", ("VB", 2.5, 0.05)),
)


def _corners(bias_axis) -> CornerSet:
    name, nominal, tol = bias_axis
    return CornerSet([
        temperature_axis((-20, 27, 85)),
        scale_axis("R", 0.1),
        source_axis("V1", 5.0, 0.1),
        source_axis(name, nominal, tol),
    ])


def _timed(fn):
    t0 = time.perf_counter()
    value = fn()
    return value, time.perf_counter() - t0


def _stress_seconds_per_corner(deck: str) -> float:
    """Direct cost of one corner's stress reduction (quantities + rules)."""
    circuit = parse_deck(deck).circuit
    circuit.assign_indices()
    x = solve_dc(circuit)
    reps = 50
    t0 = time.perf_counter()
    for _ in range(reps):
        quantities = device_quantities(circuit, x)
        check_stress(circuit, x, DEFAULT_STRESS_RULES,
                     quantities=quantities)
    return (time.perf_counter() - t0) / reps


def bench_corner_qualification():
    # Warm the persistent pool outside the timed region, as the other
    # parallel benches do: spin-up is a once-per-process cost.
    from repro.sweep.executors import _get_pool

    _get_pool(JOBS)
    db = seed_database()
    lines = []
    for cell_name, bias_axis in CELLS:
        deck = db.get(cell_name).schematic
        corners = _corners(bias_axis)
        measurements = default_measurements(deck)

        # Compile-once parity: both arms run on primed evaluators, so
        # the comparison is pure corner evaluation, not deck compiles.
        scalar_ev = CornerEvaluator(deck, corners, measurements)
        blocked_ev = CornerEvaluator(deck, corners, measurements)
        scalar_ev.prime()
        blocked_ev.prime()

        scalar, t_scalar = _timed(lambda: qualify_deck(
            deck, corners, measurements, name=cell_name,
            executor="serial", batch=False, evaluator=scalar_ev))
        blocked, t_blocked = _timed(lambda: qualify_deck(
            deck, corners, measurements, name=cell_name,
            executor="auto", jobs=JOBS, batch="auto",
            evaluator=blocked_ev))

        # The contract under test: the blocked fan-out changes the wall
        # clock, never a single corner outcome.
        assert [o.to_dict() for o in blocked.outcomes] == \
            [o.to_dict() for o in scalar.outcomes]
        assert blocked.passed() and scalar.passed()
        assert blocked.stats["failures"] == 0

        speedup = t_scalar / t_blocked if t_blocked > 0 else 0.0
        stress_corner = _stress_seconds_per_corner(deck)
        stress_fraction = (stress_corner * len(corners) / t_blocked
                           if t_blocked > 0 else 0.0)
        record_verify(f"qualify_{cell_name}", {
            "corners": len(corners),
            "measurements": len(measurements),
            "corner_decks": scalar_ev.prime(),
            "scalar_seconds": round(t_scalar, 6),
            "blocked_seconds": round(t_blocked, 6),
            "scalar_corners_per_second": round(
                len(corners) / t_scalar, 2),
            "blocked_corners_per_second": round(
                len(corners) / t_blocked, 2),
            "speedup": round(speedup, 3),
            "bit_identical": True,
            "executor": blocked.stats["executor"],
            "jobs": blocked.stats["workers"],
            "stress_seconds_per_corner": round(stress_corner, 8),
            "stress_overhead_fraction": round(stress_fraction, 4),
            "passed": blocked.passed(),
        })
        lines.append(
            f"{cell_name}: {len(corners)} corners x "
            f"{len(measurements)} measurements "
            f"({scalar_ev.prime()} corner decks)\n"
            f"  scalar serial {t_scalar * 1e3:7.1f} ms "
            f"({len(corners) / t_scalar:6.0f} corners/s)\n"
            f"  blocked {blocked.stats['executor']:7s} "
            f"{t_blocked * 1e3:7.1f} ms "
            f"({len(corners) / t_blocked:6.0f} corners/s, "
            f"speedup {speedup:.2f}x)\n"
            f"  stress checks {stress_fraction * 100:.1f} % of blocked "
            f"wall; outcomes bit-identical: True"
        )
    report("verify_corner_qualification", "\n".join(lines))

"""Section 3 — circuit re-use rate with the cell database.

The paper: "Investigating the re-use of IC design in the authors design
group revealed that above 70% of the circuits can be re-used."  This
bench builds the Section 2 tuner from the seeded library — the critical
quadrature blocks sourced through the spec-driven reuse lookup
(:mod:`repro.optimize.reuse`) against their recorded simulation data,
the rest by keyword search — audits the reuse fraction, and times the
search+judge+copy workflow a designer exercises.
"""

from repro.celldb import seed_database
from repro.optimize import (
    BoundKind,
    Spec,
    SpecSet,
    commit_reuse,
    find_reusable_cells,
)

from conftest import report

#: the new tuner's block list and where each came from (keyword path)
TUNER_DESIGN = {
    "rf_amp": "RF-AGC-AMP",
    "mix1": "UPMIX-1300",
    "if1_bpf": "IF-BPF-1300",
    "mix2_i": "DNMIX-45",
    "mix2_q": "DNMIX-45",
    "vco": "VCO-2ND",
    "combiner": "IF-ADDER",
    "pll": "PLL-SYNTH",
    "agc_detector": None,  # newly designed
    "if2_buffer": None,  # newly designed
}

#: quadrature blocks sourced via spec-driven lookup on recorded data:
#: {block: (search keyword, specs from the Fig. 5 derivation at
#: IRR >= 30 dB, 1 % gain balance)}
SPEC_SOURCED = {
    "ph90_vco": ("vco", SpecSet("lo_quadrature", [
        Spec("phase_error_deg", 2.0, BoundKind.UPPER, unit="deg"),
    ])),
    "ph90_if": ("image rejection", SpecSet("if_quadrature", [
        Spec("phase_error_deg", 3.6, BoundKind.UPPER, unit="deg"),
        Spec("gain_error", 0.01, BoundKind.UPPER, scale=0.01),
    ])),
}

SEARCHES = ("mixer", "phase shifter", "image rejection", "agc",
            "oscillator", "tuner")


def bench_sec3_reuse(benchmark):
    db = seed_database()

    def workflow():
        hits = {term: db.search(keyword=term) for term in SEARCHES}
        design = dict(TUNER_DESIGN)
        reports = {}
        for block, (keyword, specs) in SPEC_SOURCED.items():
            found = find_reusable_cells(db, specs, keyword=keyword,
                                        category2="Phase shifter")
            reports[block] = found
            if found.reused:
                commit_reuse(db, found)
                design[block] = found.chosen.name
            else:
                design[block] = None
        for block, source in TUNER_DESIGN.items():
            if source is not None and source in db:
                db.copy_for_reuse(source)
        return hits, reports, design, db.reuse_statistics(design)

    hits, reuse_reports, design, stats = benchmark(workflow)

    # The spec lookup must find the recorded-data qualifiers.
    assert design["ph90_vco"] == "PHASE90-VCO"
    assert design["ph90_if"] == "PHASE90-IF"

    # -- the paper's claim: above 70 % ----------------------------------------
    assert stats.reuse_fraction > 0.70

    lines = [
        f"  seeded library: {len(db)} cells in {len(db.libraries())} "
        "libraries",
        "",
        "  search results:",
    ]
    for term, cells in hits.items():
        lines.append(f"    {term!r:20s} -> "
                     f"{[c.name for c in cells]}")
    lines.append("")
    lines.append("  spec-driven sourcing (recorded simulation data):")
    for block, found in reuse_reports.items():
        for text_line in found.summary().splitlines():
            lines.append(f"    {block}: {text_line}")
    lines.append("")
    lines.append("  new tuner design block sourcing:")
    for block, source in design.items():
        lines.append(f"    {block:14s} <- {source or '(new design)'}")
    lines.append("")
    lines.append(
        f"  reuse rate: {stats.reused_blocks}/{stats.total_blocks} = "
        f"{stats.reuse_fraction * 100:.0f} %   "
        "(paper reports 'above 70%')"
    )
    report("sec3_reuse", "\n".join(lines))

"""Section 3 — circuit re-use rate with the cell database.

The paper: "Investigating the re-use of IC design in the authors design
group revealed that above 70% of the circuits can be re-used."  This
bench builds the Section 2 tuner from the seeded library, audits the
reuse fraction, and times the search+copy workflow a designer exercises.
"""

from repro.celldb import seed_database

from conftest import report

#: the new tuner's block list and where each came from
TUNER_DESIGN = {
    "rf_amp": "RF-AGC-AMP",
    "mix1": "UPMIX-1300",
    "if1_bpf": "IF-BPF-1300",
    "mix2_i": "DNMIX-45",
    "mix2_q": "DNMIX-45",
    "vco": "VCO-2ND",
    "ph90_vco": "PHASE90-VCO",
    "ph90_if": "PHASE90-IF",
    "combiner": "IF-ADDER",
    "pll": "PLL-SYNTH",
    "agc_detector": None,  # newly designed
    "if2_buffer": None,  # newly designed
}

SEARCHES = ("mixer", "phase shifter", "image rejection", "agc",
            "oscillator", "tuner")


def bench_sec3_reuse(benchmark):
    db = seed_database()

    def workflow():
        hits = {term: db.search(keyword=term) for term in SEARCHES}
        for source in TUNER_DESIGN.values():
            if source is not None and source in db:
                db.copy_for_reuse(source)
        return hits, db.reuse_statistics(TUNER_DESIGN)

    hits, stats = benchmark(workflow)

    # -- the paper's claim: above 70 % ----------------------------------------
    assert stats.reuse_fraction > 0.70

    lines = [
        f"  seeded library: {len(db)} cells in {len(db.libraries())} "
        "libraries",
        "",
        "  search results:",
    ]
    for term, cells in hits.items():
        lines.append(f"    {term!r:20s} -> "
                     f"{[c.name for c in cells]}")
    lines.append("")
    lines.append("  new tuner design block sourcing:")
    for block, source in TUNER_DESIGN.items():
        lines.append(f"    {block:14s} <- {source or '(new design)'}")
    lines.append("")
    lines.append(
        f"  reuse rate: {stats.reused_blocks}/{stats.total_blocks} = "
        f"{stats.reuse_fraction * 100:.0f} %   "
        "(paper reports 'above 70%')"
    )
    report("sec3_reuse", "\n".join(lines))

"""Ablation abl1 — SPICE area-factor scaling vs the geometry generator.

Section 4's complaint, quantified: "model parameters such as RB, RE, RC,
CJE, CJC and CJS ... are just scaled according to the area factor in
SPICE.  It is obvious that the computing method in SPICE is not
sufficiently accurate."  For every Table 1 shape this bench compares the
area-factor prediction against the geometry-aware one, parameter by
parameter, and shows the resulting fT-curve error.
"""

import numpy as np

from repro.devices import peak_ft
from repro.geometry import TABLE1_SHAPES, AreaFactorScaler

from conftest import report

COMPARED = ("RB", "RE", "RC", "CJE", "CJC", "CJS")


def _error(af_value: float, geo_value: float) -> float:
    return abs(af_value - geo_value) / abs(geo_value) * 100.0


def bench_ablation_area_factor(benchmark, generator, reference):
    scaler = AreaFactorScaler(reference=reference)

    def compare():
        table = {}
        for name in TABLE1_SHAPES:
            geo = generator.generate(name)
            af = scaler.generate(name)
            table[name] = (geo, af)
        return table

    table = benchmark(compare)

    rows = [
        "  parameter error of SPICE area-factor scaling vs the",
        "  geometry-aware generator (reference shape N1.2-6D)",
        "",
        "  shape        " + "".join(f"{p:>8s}" for p in COMPARED)
        + "   peak-Ic err",
    ]
    worst = {p: 0.0 for p in COMPARED}
    for name in TABLE1_SHAPES:
        geo, af = table[name]
        row = f"  {name:12s}"
        for parameter in COMPARED:
            err = _error(getattr(af, parameter), getattr(geo, parameter))
            worst[parameter] = max(worst[parameter], err)
            row += f"  {err:5.1f}%"
        pk_geo = peak_ft(geo, 1e-4, 3e-2, 41)
        pk_af = peak_ft(af, 1e-4, 3e-2, 41)
        ic_err = abs(pk_af.ic - pk_geo.ic) / pk_geo.ic * 100
        row += f"     {ic_err:5.1f}%"
        rows.append(row)
    rows.append("")
    rows.append("  worst-case errors: " + ", ".join(
        f"{p} {worst[p]:.0f}%" for p in COMPARED
    ))

    # -- the ablation's claims -----------------------------------------------------
    # the baseline reproduces the reference shape exactly...
    geo_ref, af_ref = table["N1.2-6D"]
    assert _error(af_ref.RB, geo_ref.RB) < 1e-6
    # ...but mispredicts RB badly for topology changes at equal area
    geo_s, af_s = table["N1.2-6S"]
    assert _error(af_s.RB, geo_s.RB) > 50.0
    geo_x2, af_x2 = table["N1.2x2-6S"]
    assert _error(af_x2.RB, geo_x2.RB) > 50.0
    # and CJC is overestimated whenever the emitter grows (base overheads
    # do not scale with emitter area)
    geo_12, af_12 = table["N1.2-12D"]
    assert af_12.CJC > geo_12.CJC

    report("ablation_area_factor", "\n".join(rows))

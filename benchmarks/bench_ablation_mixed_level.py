"""Ablation abl2 — behavioral vs transistor-level simulation cost.

Section 2.1's motivation: "It takes a very long time to analyze the
circuit at the transistor level... Practically, it can only be simulated
by using AHDL."  This bench measures both sides on the same machine:

* the behavioral (AHDL-level) tuner IRR analysis, and
* a transistor-level AC characterization of just *one* block
  (a single amplifier stage),

and reports the ratio — the speed argument behind the top-down method.
"""

import time

import numpy as np

from repro.core.mixed_level import characterize_linear
from repro.rfsystems import (
    ImbalanceSpec,
    build_image_rejection_tuner,
    measure_tuner,
)

from conftest import report

RF = 400e6

ONE_BLOCK_DECK = """single gain stage (one of >20 blocks on the IC)
.MODEL QA NPN(IS=4e-17 BF=100 RB=120 RE=3 RC=60 CJE=45f CJC=30f
+ CJS=70f TF=9p XTF=2 VTF=2 ITF=8m)
VCC vcc 0 5
VIN b 0 DC 0.78
RC vcc c 500
Q1 c b 0 QA
.END
"""


def _behavioral_run():
    system = build_image_rejection_tuner(
        RF, ImbalanceSpec(if_phase_error_deg=2.0, gain_error=0.02)
    )
    return measure_tuner(system, RF)


def _transistor_run():
    return characterize_linear(
        ONE_BLOCK_DECK, "VIN", "c", np.geomspace(1e6, 10e9, 80)
    )


def bench_behavioral_tuner(benchmark):
    """Times the whole-system behavioral analysis."""
    performance = benchmark(_behavioral_run)
    assert performance.image_rejection_db > 40.0


def bench_transistor_block(benchmark):
    """Times the transistor-level AC characterization of one block."""
    measured = benchmark(_transistor_run)
    assert abs(measured.interpolate(10e6)) > 1.0


def bench_ablation_mixed_level_summary(benchmark):
    """Reports the per-run cost ratio (whole system vs one block)."""

    def measure_both():
        t0 = time.perf_counter()
        _behavioral_run()
        behavioral = time.perf_counter() - t0
        t0 = time.perf_counter()
        _transistor_run()
        transistor = time.perf_counter() - t0
        return behavioral, transistor

    behavioral, transistor = benchmark.pedantic(measure_both, rounds=3,
                                                iterations=1)
    lines = [
        "  whole-system behavioral (AHDL-level) IRR analysis: "
        f"{behavioral * 1e3:7.2f} ms",
        "  transistor-level AC characterization of ONE block: "
        f"{transistor * 1e3:7.2f} ms",
        "",
        f"  one block at transistor level costs "
        f"{transistor / behavioral:.1f}x the whole behavioral system;",
        "  a >20-block IC at full transistor level is correspondingly "
        "worse — the",
        "  paper's argument for top-down AHDL simulation plus selective",
        "  mixed-level refinement.",
    ]
    report("ablation_mixed_level", "\n".join(lines))

"""Section 2.2 extension — the other two tuner concerns: noise and
distortion.

"In such CATV tuner systems, distortion, noise and image signal are main
concerns in circuit design."  The fig5 bench covers the image; this one
covers the remaining two on the same system:

* receiver noise budget: Friis cascade of the tuner chain, sensitivity,
  plus a transistor-level spot-noise-figure of the front-end stage on
  the SPICE engine (adjoint noise analysis),
* distortion budget: two-tone IM3 of the behavioral front end and the
  cascade IIP3.
"""

import numpy as np

from repro.behavioral import (
    CascadeStage,
    NonlinearAmplifier,
    cascade,
    iip3_from_two_tone,
    sensitivity_dbm,
    two_tone_test,
)
from repro.spice import Circuit, solve_noise
from repro.spice.elements import (
    BJT,
    Capacitor,
    CurrentSource,
    Resistor,
    VoltageSource,
)
from repro.devices import GummelPoonParameters

from conftest import report

TUNER_CHAIN = (
    CascadeStage("rf_agc_amp", gain_db=15.0, nf_db=3.5, iip3_dbm=-2.0),
    CascadeStage("upmix_1300", gain_db=-6.0, nf_db=9.0, iip3_dbm=8.0),
    CascadeStage("if1_bpf", gain_db=-2.0, nf_db=2.0),
    CascadeStage("ir_mixer", gain_db=0.0, nf_db=10.0, iip3_dbm=10.0),
    CascadeStage("if2_amp", gain_db=20.0, nf_db=8.0, iip3_dbm=5.0),
)


def _front_end_circuit():
    model = GummelPoonParameters(
        name="QFE", IS=4e-17, BF=100.0, RB=120.0, RE=3.0, RC=60.0,
        CJE=45e-15, CJC=30e-15, TF=10e-12, KF=1e-13, AF=1.0,
    )
    circuit = Circuit("front end noise")
    circuit.add(VoltageSource("VCC", ("vcc", "0"), dc=5.0))
    circuit.add(VoltageSource("VS", ("src", "0"), dc=0.0, ac_mag=1.0))
    circuit.add(Resistor("RS", ("src", "blk"), 75.0))  # CATV source
    circuit.add(Capacitor("CBLK", ("blk", "b"), 1e-6))
    circuit.add(CurrentSource("IBIAS", ("0", "b"), dc=4e-5))
    circuit.add(Resistor("RL", ("vcc", "c"), 500.0))
    circuit.add(BJT("Q1", ("c", "b", "0"), model))
    return circuit


def bench_sec2_noise_distortion(benchmark):
    def run():
        budget = cascade(TUNER_CHAIN)
        sensitivity = sensitivity_dbm(budget.nf_db, 6e6,
                                      snr_required_db=15.0)
        noise = solve_noise(_front_end_circuit(), "c",
                            np.geomspace(1e6, 1e9, 25),
                            input_source="VS")
        amp = NonlinearAmplifier("fe", gain_db=15.0, iip3_dbv=-10.0)
        probe = two_tone_test(amp, 400e6, 406e6, 3e-3)
        extracted = iip3_from_two_tone(amp, 400e6, 406e6, 3e-3)
        return budget, sensitivity, noise, probe, extracted

    budget, sensitivity, noise, probe, extracted = benchmark(run)

    nf_spot = noise.noise_figure_db("RS")
    mid = len(noise.frequencies) // 2
    top = noise.dominant_contributors(noise.frequencies[mid], count=4)
    lines = [
        "  receiver chain budget (Friis + IIP3 cascade):",
        f"    stages: {' -> '.join(budget.stage_names)}",
        f"    gain {budget.gain_db:5.1f} dB, NF {budget.nf_db:5.2f} dB, "
        f"IIP3 {budget.iip3_dbm:5.1f} dBm",
        f"    sensitivity (6 MHz channel, 15 dB SNR): "
        f"{sensitivity:6.1f} dBm",
        "",
        "  transistor-level front-end spot noise (adjoint analysis):",
        f"    NF @ {noise.frequencies[mid] / 1e6:.0f} MHz = "
        f"{nf_spot[mid]:.2f} dB",
        "    dominant contributors: "
        + ", ".join(f"{name} ({value:.2e})" for name, value in top),
        "",
        "  front-end two-tone distortion (400/406 MHz, 3 mV tones):",
        f"    IM3 = {probe['im3_dbc']:.1f} dBc, extracted IIP3 = "
        f"{extracted:.1f} dBV (configured -10.0 dBV)",
    ]

    # -- budget facts -------------------------------------------------------------
    assert 3.5 < budget.nf_db < 8.0  # front stage dominates per Friis
    assert budget.iip3_dbm < 8.0  # back-end limited
    assert 0.0 < nf_spot[mid] < 30.0
    assert abs(extracted - (-10.0)) < 0.2
    assert probe["im3_dbc"] < -30.0

    report("sec2_noise_distortion", "\n".join(lines))

"""Transient hot-path speedup: device bypass + chord-Newton reuse.

Times the Fig. 11 ring-oscillator transient twice — once with the hot
path pinned off (``bypass_tol=0, chord=False``, the seed-equivalent
reference) and once with the defaults on — at two sizes:

* the paper's 5-stage oscillator (Table 1 topology, 87 unknowns), and
* the same topology scaled to 25 stages (427 unknowns), the headline
  measurement: at this size the dense LU factorization dominates a
  reference step, which is exactly the cost chord-Newton amortizes,
  while the many quiescent followers/tails are what device bypass
  skips.

The step ceiling (3 ps against a ~100 ps stage delay) keeps the
waveform well resolved, the regime the mixed-level verification loops
run in: most accepted steps sit at ``max_step``, so the chord token
repeats and bypassed devices barely move between steps.

Each measurement is best-of-N wall clock; engine counters come from the
:data:`~repro.spice.engine.GLOBAL_STATS` delta of the *last* run of
each arm.  Results land in ``BENCH_transient.json`` via
:func:`conftest.record_transient`.
"""

import time

import numpy as np

from repro.geometry import ModelParameterGenerator, default_reference
from repro.rfsystems import RingOscillatorSpec, build_ring_oscillator
from repro.spice.engine import GLOBAL_STATS
from repro.spice.transient import solve_transient

from conftest import record_transient, report

STOP_TIME = 1.5e-9
MAX_STEP = 3e-12
ROUNDS = 3
#: Comparison window for the on-vs-off waveform deviation.  A free
#: running oscillator accumulates phase differences from tiny step-size
#: changes, so pointwise agreement is only meaningful over the first
#: few stage delays.
PARITY_WINDOW = 0.3e-9


def _ring(stages):
    generator = ModelParameterGenerator(reference=default_reference())
    return build_ring_oscillator(
        generator.generate("N1.2-12D"),
        follower_model=generator.generate("N1.2-6D"),
        spec=RingOscillatorSpec(stages=stages),
    )


def _run(stages, **kwargs):
    """One timed transient; returns (result, seconds, counter delta)."""
    circuit = _ring(stages)
    snapshot = GLOBAL_STATS.copy()
    t0 = time.perf_counter()
    result = solve_transient(
        circuit, stop_time=STOP_TIME, max_step=MAX_STEP, **kwargs
    )
    wall = time.perf_counter() - t0
    return result, wall, GLOBAL_STATS.since(snapshot).as_dict()


def _best_of(stages, **kwargs):
    best = None
    for _ in range(ROUNDS):
        result, wall, delta = _run(stages, **kwargs)
        if best is None or wall < best[1]:
            best = (result, wall, delta)
    return best


def _early_window_deviation(ref, hot):
    """Max node-voltage deviation over the shared early window."""
    t_end = min(PARITY_WINDOW, ref.times[-1], hot.times[-1])
    grid = np.linspace(0.0, t_end, 200)
    worst = 0.0
    num_nodes = len(ref.circuit.node_map)
    for col in range(num_nodes):
        a = np.interp(grid, ref.times, ref.states[:, col])
        b = np.interp(grid, hot.times, hot.states[:, col])
        worst = max(worst, float(np.max(np.abs(a - b))))
    return worst


def bench_transient_hotpath():
    lines = [
        f"{'stages':>6} {'ref_s':>8} {'hot_s':>8} {'speedup':>8} "
        f"{'bypassed':>9} {'reuses':>7} {'refacts':>8} {'dev_V':>9}"
    ]
    headline = None
    for stages in (5, 25):
        _run(stages, bypass_tol=0.0, chord=False)  # warm caches
        ref, t_ref, d_ref = _best_of(stages, bypass_tol=0.0, chord=False)
        hot, t_hot, d_hot = _best_of(stages)

        speedup = t_ref / t_hot
        deviation = _early_window_deviation(ref, hot)

        # The observability contract: the hot path must actually have
        # bypassed devices and reused factorizations, the reference
        # must have done neither, and the waveforms must agree.
        assert d_hot["bypassed_evals"] > 0
        assert d_hot["jacobian_reuses"] > 0
        assert d_ref["bypassed_evals"] == 0
        assert d_ref["jacobian_reuses"] == 0
        assert deviation < 0.2, f"waveforms diverged: {deviation:.3g} V"
        assert speedup > 1.0, f"hot path slower at {stages} stages"

        payload = {
            "stages": stages,
            "unknowns": int(ref.states.shape[1]),
            "stop_time": STOP_TIME,
            "max_step": MAX_STEP,
            "ref_seconds": round(t_ref, 6),
            "hot_seconds": round(t_hot, 6),
            "speedup": round(speedup, 3),
            "ref_points": int(len(ref.times)),
            "hot_points": int(len(hot.times)),
            "early_window_deviation_v": float(deviation),
            "hot_counters": {
                key: d_hot[key]
                for key in (
                    "bypassed_evals", "jacobian_reuses",
                    "refactorizations", "factorizations",
                    "assemblies", "element_evals",
                )
            },
            "ref_factorizations": d_ref["factorizations"],
        }
        record_transient(f"ring_oscillator_{stages}_stage", payload)
        lines.append(
            f"{stages:>6} {t_ref:>8.3f} {t_hot:>8.3f} {speedup:>7.2f}x "
            f"{d_hot['bypassed_evals']:>9} {d_hot['jacobian_reuses']:>7} "
            f"{d_hot['refactorizations']:>8} {deviation:>9.2e}"
        )
        if stages == 25:
            headline = speedup

    report("BENCH_transient_hotpath", "\n".join(lines))
    # Headline target (tracked by BENCH_transient.json): >=2x on the
    # LU-dominated ring.  Asserted with slack for noisy shared runners;
    # locally this measures ~2.8x.
    assert headline is not None and headline >= 1.5

"""Optimization-flow wall clock: Fig. 5 derivation + mixer sizing.

Times the ``repro optimize`` pipeline pieces — the system-sweep spec
derivation and the differential-evolution sizing stage — serial vs a
process-pool population, asserting the engine contract along the way:
a fixed seed gives bit-identical sizing on every executor, so the
parallel speedup is free of any numerical caveat.  Archived in
BENCH_optimize.json next to the runner's core count.
"""

import time

from repro.optimize import derive_image_rejection_specs, run_optimize_flow
from repro.rfsystems import fig5_sweep_result

from conftest import record_optimize, report

JOBS = 4
PHASES = tuple(0.25 * k for k in range(1, 17))
SIZING = dict(population=12, generations=20)


def _timed(fn):
    t0 = time.perf_counter()
    value = fn()
    return value, time.perf_counter() - t0


def bench_fig5_spec_derivation():
    sweep, t_sweep = _timed(lambda: fig5_sweep_result(PHASES))
    derivation, t_derive = _timed(
        lambda: derive_image_rejection_specs(sweep, 30.0, 0.01)
    )
    record_optimize("fig5_spec_derivation", {
        "sweep_points": len(sweep.points),
        "sweep_seconds": round(t_sweep, 6),
        "derive_seconds": round(t_derive, 6),
        "phase_allowance_deg": round(derivation.phase_allowance_deg, 4),
    })
    report("optimize_derivation", (
        f"Fig. 5 sweep: {len(sweep.points)} behavioral points in "
        f"{t_sweep * 1e3:.2f} ms\n"
        f"spec inversion: {t_derive * 1e3:.3f} ms -> phase error <= "
        f"{derivation.phase_allowance_deg:.2f} deg at 1 % gain balance"
    ))


def bench_sizing_serial_vs_parallel_population():
    # Warm the persistent pool outside the timed region: spin-up is a
    # once-per-process cost, not a per-flow one.
    from repro.sweep.executors import _get_pool

    _get_pool(JOBS)
    serial, t_serial = _timed(lambda: run_optimize_flow(**SIZING))
    parallel, t_parallel = _timed(
        lambda: run_optimize_flow(executor="process", jobs=JOBS, **SIZING)
    )

    # The contract under test: the process-pool population changes the
    # wall clock, never the sizing.
    assert serial.sizing is not None and parallel.sizing is not None
    assert parallel.sizing.result.best_params == \
        serial.sizing.result.best_params
    assert parallel.sizing.result.best_value == \
        serial.sizing.result.best_value
    assert serial.closed and parallel.closed

    result = serial.sizing.result
    speedup = t_serial / t_parallel if t_parallel > 0 else 0.0
    record_optimize("sizing_flow", {
        "population": SIZING["population"],
        "generations": SIZING["generations"],
        "evaluations": result.evaluations,
        "jobs": JOBS,
        "serial_seconds": round(t_serial, 6),
        "parallel_seconds": round(t_parallel, 6),
        "speedup": round(speedup, 3),
        "bit_identical": True,
        "specs_met": serial.sizing.specs_met,
        "reuse_fraction": round(serial.reuse_fraction, 3),
        "predicted_irr_db": round(serial.predicted_irr_db, 2),
    })
    report("optimize_sizing_flow", (
        f"full loop, DE population {SIZING['population']} x "
        f"{SIZING['generations']} generations "
        f"({result.evaluations} evaluations)\n"
        f"serial  {t_serial * 1e3:8.2f} ms\n"
        f"process {t_parallel * 1e3:8.2f} ms "
        f"(jobs {JOBS}, speedup {speedup:.2f}x)\n"
        f"sizing bit-identical across executors: True\n"
        f"loop closed at {serial.predicted_irr_db:.1f} dB predicted IRR "
        f"(target 30 dB)"
    ))

"""Ablation abl3 — transient integration method quality.

Validates the simulator substrate itself (everything Table 1 rests on):
on an LC tank with a known analytic solution, the trapezoidal rule
conserves oscillation amplitude while backward Euler artificially damps
it — the classic reason SPICE defaults to trap.  Reports amplitude decay
and frequency error per method, and times one fixed-accuracy run.
"""

import math

import numpy as np

from repro.spice import Circuit, solve_transient
from repro.spice.elements import Capacitor, Inductor, Resistor

from conftest import report

L, C = 1e-6, 1e-9
F0 = 1.0 / (2 * math.pi * math.sqrt(L * C))
PERIODS = 10


def _tank():
    circuit = Circuit("lc tank")
    circuit.add(Capacitor("C1", ("t", "0"), C))
    circuit.add(Inductor("L1", ("t", "0"), L))
    circuit.add(Resistor("RP", ("t", "0"), 1e9))
    circuit.assign_indices()
    x0 = np.zeros(circuit.num_unknowns)
    x0[circuit.node_index("t")] = 1.0
    return circuit, x0


def _run(method: str, steps_per_period: int = 100):
    circuit, x0 = _tank()
    period = 1.0 / F0
    result = solve_transient(
        circuit, stop_time=PERIODS * period,
        max_step=period / steps_per_period, x0=x0, method=method,
    )
    v = result.voltage("t")
    t = result.times
    late = np.abs(v[t > (PERIODS - 2) * period])
    amplitude = float(late.max())
    crossings = []
    for i in range(1, len(t)):
        if v[i - 1] < 0 <= v[i]:
            frac = -v[i - 1] / (v[i] - v[i - 1])
            crossings.append(t[i - 1] + frac * (t[i] - t[i - 1]))
    frequency = 1.0 / float(np.mean(np.diff(crossings)))
    return amplitude, frequency, len(t)


def bench_ablation_integration(benchmark):
    trap_amp, trap_freq, trap_points = _run("trap")
    be_amp, be_freq, be_points = _run("be")

    def timed_run():
        return _run("trap")

    benchmark(timed_run)

    lines = [
        f"  LC tank, f0 = {F0 / 1e6:.3f} MHz, {PERIODS} periods, "
        "~100 steps/period:",
        "",
        f"  method   final amplitude (start 1.000)   frequency error   "
        "points",
        f"  trap              {trap_amp:6.4f}              "
        f"{abs(trap_freq - F0) / F0 * 100:8.4f} %      {trap_points:6d}",
        f"  BE                {be_amp:6.4f}              "
        f"{abs(be_freq - F0) / F0 * 100:8.4f} %      {be_points:6d}",
        "",
        "  trapezoidal integration conserves the tank's energy; backward",
        "  Euler numerically damps it — why the Table 1 ring transients",
        "  run on trap.",
    ]

    # -- the ablation's claims ------------------------------------------------------
    assert trap_amp > 0.98  # trap conserves amplitude
    assert be_amp < 0.55  # BE visibly damps over 10 periods
    assert abs(trap_freq - F0) / F0 < 5e-3

    report("ablation_integration", "\n".join(lines))

"""Section 4 extension — device and circuit behaviour over temperature.

The paper fixes operating currents "considering the radiation from the
IC packages": junction temperature is a design input.  This bench sweeps
the geometry-generated reference device over the industrial range and
reports the quantities a designer budgets for: fT degradation, Vbe
shift, and beta drift — then checks a diode-connected sensor circuit's
tempco end to end on the simulator.
"""

from repro.devices import ft_at_ic, solve_vbe_for_ic
from repro.devices.temperature import at_temperature, celsius
from repro.spice import Circuit, Simulator, circuit_at_temperature
from repro.spice.elements import BJT, CurrentSource

from conftest import report

TEMPERATURES_C = (-40.0, 0.0, 27.0, 85.0, 125.0)
IC_BIAS = 2e-3


def bench_sec4_temperature(benchmark, generator):
    model = generator.generate("N1.2-12D")

    def sweep():
        rows = []
        for temp_c in TEMPERATURES_C:
            temp = celsius(temp_c)
            hot = at_temperature(model, temp)
            vbe = solve_vbe_for_ic(hot, IC_BIAS, 3.0, temp=temp)
            point = ft_at_ic(hot, IC_BIAS)
            rows.append((temp_c, vbe, point.ft, hot.BF, hot.CJE))
        return rows

    rows = benchmark(sweep)

    lines = [
        f"  N1.2-12D at Ic = {IC_BIAS * 1e3:.1f} mA, VCE = 3 V:",
        "",
        "  T [C]    Vbe [V]    fT [GHz]   CJE [fF]",
    ]
    for temp_c, vbe, ft, _bf, cje in rows:
        lines.append(f"  {temp_c:5.0f}   {vbe:8.4f}   {ft / 1e9:8.2f}"
                     f"   {cje * 1e15:8.2f}")

    # circuit-level: diode-connected sensor tempco
    sensor = Circuit("vbe sensor")
    sensor.add(CurrentSource("IB", ("0", "d"), dc=1e-4))
    sensor.add(BJT("Q1", ("d", "d", "0"), model))
    v27 = Simulator(circuit_at_temperature(sensor, celsius(27.0))
                    ).operating_point().voltage("d")
    v85 = Simulator(circuit_at_temperature(sensor, celsius(85.0))
                    ).operating_point().voltage("d")
    tempco = (v85 - v27) / (85.0 - 27.0)
    lines.append("")
    lines.append(f"  diode-connected sensor: {tempco * 1e3:.2f} mV/K "
                 "(classic silicon junction coefficient)")

    # -- physics checks -----------------------------------------------------------
    vbes = [row[1] for row in rows]
    fts = [row[2] for row in rows]
    cjes = [row[4] for row in rows]
    assert all(a > b for a, b in zip(vbes, vbes[1:]))  # Vbe falls with T
    assert fts[-1] < fts[0]  # fT degrades hot vs cold
    assert all(a < b for a, b in zip(cjes, cjes[1:]))  # CJE grows with T
    assert -2.6e-3 < tempco < -1.0e-3

    report("sec4_temperature", "\n".join(lines))

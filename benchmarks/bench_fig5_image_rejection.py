"""Fig. 5 — image rejection ratio vs phase error, gain balance parameter.

Regenerates the paper's AHDL simulation result: IRR of the Fig. 4
image-rejection mixer against the 90-degree shifters' phase error, with
the path gain balance swept 1 %..9 % — produced by the behavioral
simulation (not the closed form), like the paper's run.  Also prints the
designer's read-off: the phase budget meeting a 30 dB system spec.

The benchmark times one full five-curve sweep.
"""

import numpy as np

from repro.rfsystems import (
    fig5_sweep,
    image_rejection_ratio_db,
    required_matching,
)

from conftest import report

PHASE_ERRORS = list(np.linspace(0.0, 10.0, 11))
GAIN_ERRORS = (0.01, 0.03, 0.05, 0.07, 0.09)


def _format_table(curves) -> str:
    rows = ["  IRR [dB] from behavioral simulation of the Fig. 4 mixer",
            "  phase[deg]" + "".join(f"   g={g * 100:2.0f}%"
                                     for g in GAIN_ERRORS)]
    for i, phase in enumerate(PHASE_ERRORS):
        row = f"  {phase:8.1f}  "
        for gain in GAIN_ERRORS:
            row += f"  {curves[gain][i][1]:6.2f}"
        rows.append(row)
    rows.append("")
    rows.append("  spec derivation for a 30 dB requirement (paper text):")
    for gain in GAIN_ERRORS:
        budget = required_matching(30.0, gain)
        verdict = ("phase error <= %.2f deg" % budget if budget is not None
                   else "infeasible (gain error alone below 30 dB)")
        rows.append(f"    gain balance {gain * 100:3.0f}%: {verdict}")
    return "\n".join(rows)


def bench_fig5_image_rejection(benchmark):
    curves = benchmark(fig5_sweep, PHASE_ERRORS, GAIN_ERRORS)

    # -- shape checks against the paper's figure ------------------------------
    for gain in GAIN_ERRORS:
        irrs = [irr for _, irr in curves[gain]]
        # monotone decreasing in phase error
        assert all(a >= b for a, b in zip(irrs, irrs[1:]))
    # 1 % curve lies above the 9 % curve everywhere
    for (_, one), (_, nine) in zip(curves[0.01], curves[0.09]):
        assert one > nine
    # zero-phase intercepts: the classic 46 dB (1 %) and 27 dB (9 %)
    assert abs(curves[0.01][0][1] - 46.1) < 0.5
    assert abs(curves[0.09][0][1] - 27.3) < 0.5
    # behavioral simulation equals the closed form at a spot point
    assert abs(
        curves[0.05][4][1]
        - image_rejection_ratio_db(PHASE_ERRORS[4], 0.05)
    ) < 1e-6

    report("fig5_image_rejection", _format_table(curves))

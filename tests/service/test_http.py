"""Tests for the stdlib HTTP front end (:mod:`repro.service.http`)."""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.service import SimulationService
from repro.service.http import ServiceHTTPServer


@pytest.fixture()
def http_service(ce_deck):
    """A live server on a free port plus a tiny JSON client."""
    service = SimulationService(workers=2, queue_limit=8)
    server = ServiceHTTPServer(("127.0.0.1", 0), service)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    base = f"http://127.0.0.1:{server.port}"

    def call(method: str, path: str, body: dict | None = None,
             headers: dict | None = None):
        data = None if body is None else json.dumps(body).encode()
        request = urllib.request.Request(
            base + path, data=data, method=method,
            headers={"Content-Type": "application/json", **(headers or {})},
        )
        try:
            with urllib.request.urlopen(request, timeout=30) as response:
                return response.status, json.loads(response.read())
        except urllib.error.HTTPError as error:
            return error.code, json.loads(error.read())

    yield call
    server.shutdown()
    server.server_close()
    service.close()


def _wait_done(call, job_id: str, deadline_s: float = 30.0) -> dict:
    deadline = time.monotonic() + deadline_s
    while time.monotonic() < deadline:
        status, payload = call("GET", f"/jobs/{job_id}")
        assert status == 200
        if payload["state"] in ("done", "failed", "cancelled"):
            return payload
        time.sleep(0.01)
    raise AssertionError(f"job {job_id} did not finish")


class TestHTTPRoundTrip:
    def test_create_run_poll(self, http_service, ce_deck):
        status, created = http_service("POST", "/circuits",
                                       {"deck": ce_deck})
        assert status == 200
        assert created["status"] == "ok"
        cid = created["circuit_id"]

        status, submitted = http_service(
            "POST", "/jobs", {"kind": "dc", "circuit_id": cid})
        assert status == 200
        polled = _wait_done(http_service, submitted["job_id"])
        assert polled["state"] == "done"
        assert polled["result"]["nodes"]["v(vcc)"] == pytest.approx(5.0)

    def test_stats_and_healthz(self, http_service, ce_deck):
        status, health = http_service("GET", "/healthz")
        assert (status, health["status"]) == (200, "ok")
        http_service("POST", "/circuits", {"deck": ce_deck})
        status, stats = http_service("GET", "/stats")
        assert status == 200
        assert stats["stats"]["circuits"]["created"] == 1
        assert "p99_seconds" in stats["stats"]["latency"]

    def test_tenant_header_scopes_the_cache(self, http_service, ce_deck):
        _, created = http_service("POST", "/circuits", {"deck": ce_deck})
        cid = created["circuit_id"]
        job = {"kind": "dc", "circuit_id": cid}
        first = _wait_done(http_service, http_service(
            "POST", "/jobs", job, headers={"X-Repro-Tenant": "a"}
        )[1]["job_id"])
        again = _wait_done(http_service, http_service(
            "POST", "/jobs", job, headers={"X-Repro-Tenant": "a"}
        )[1]["job_id"])
        other = _wait_done(http_service, http_service(
            "POST", "/jobs", job, headers={"X-Repro-Tenant": "b"}
        )[1]["job_id"])
        assert again["result"]["cached"] is True
        assert "cached" not in other["result"]  # b computed its own
        assert first["result"]["nodes"] == other["result"]["nodes"]


class TestHTTPErrors:
    def test_unknown_routes_404(self, http_service):
        assert http_service("GET", "/nope")[0] == 404
        assert http_service("POST", "/nope", {})[0] == 404
        assert http_service("DELETE", "/nope")[0] == 404

    def test_malformed_json_400(self, http_service):
        status, payload = http_service("POST", "/circuits",
                                       {"deck": None})
        assert status == 400
        assert payload["status"] == "error"

    def test_unknown_job_404(self, http_service):
        status, payload = http_service("GET", "/jobs/job-junk")
        assert status == 404
        assert payload["error_type"] == "AnalysisError"

    def test_nonconvergent_deck_maps_to_422_forensics(
            self, http_service, nonconvergent_deck):
        _, created = http_service("POST", "/circuits",
                                  {"deck": nonconvergent_deck})
        cid = created["circuit_id"]
        _, submitted = http_service("POST", "/jobs",
                                    {"kind": "dc", "circuit_id": cid})
        polled = _wait_done(http_service, submitted["job_id"])
        assert polled["state"] == "failed"
        assert polled["error"]["code"] == 422
        assert polled["error"]["convergence_report"]["worst_name"] == "V(out)"


class TestHTTPBackpressureAndCancel:
    def test_queue_full_maps_to_503(self, ce_deck):
        # workers=0: nothing drains, so the limit is reached immediately.
        service = SimulationService(workers=0, queue_limit=2)
        server = ServiceHTTPServer(("127.0.0.1", 0), service)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        base = f"http://127.0.0.1:{server.port}"
        try:
            def post(path, body):
                request = urllib.request.Request(
                    base + path, data=json.dumps(body).encode(),
                    method="POST")
                try:
                    with urllib.request.urlopen(request, timeout=30) as r:
                        return r.status, json.loads(r.read()), dict(r.headers)
                except urllib.error.HTTPError as error:
                    return (error.code, json.loads(error.read()),
                            dict(error.headers))

            _, created, _ = post("/circuits", {"deck": ce_deck})
            cid = created["circuit_id"]
            job = {"kind": "dc", "circuit_id": cid}
            assert post("/jobs", job)[0] == 200
            assert post("/jobs", job)[0] == 200
            status, payload, headers = post("/jobs", job)
            assert status == 503
            assert payload["status"] == "rejected"
            assert payload["queue_limit"] == 2
            assert headers.get("Retry-After") == "1"
        finally:
            server.shutdown()
            server.server_close()
            service.close()

    def test_delete_cancels_a_queued_job(self, ce_deck):
        service = SimulationService(workers=0)
        server = ServiceHTTPServer(("127.0.0.1", 0), service)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        base = f"http://127.0.0.1:{server.port}"
        try:
            def call(method, path, body=None):
                data = None if body is None else json.dumps(body).encode()
                request = urllib.request.Request(base + path, data=data,
                                                 method=method)
                with urllib.request.urlopen(request, timeout=30) as r:
                    return r.status, json.loads(r.read())

            _, created = call("POST", "/circuits", {"deck": ce_deck})
            _, submitted = call("POST", "/jobs", {
                "kind": "dc", "circuit_id": created["circuit_id"]})
            status, cancelled = call("DELETE",
                                     f"/jobs/{submitted['job_id']}")
            assert status == 200
            assert cancelled["state"] == "cancelled"
            status, polled = call("GET", f"/jobs/{submitted['job_id']}")
            assert polled["state"] == "cancelled"
        finally:
            server.shutdown()
            server.server_close()
            service.close()

"""End-to-end tests for :class:`repro.service.SimulationService`.

Synchronous-mode (``workers=0``) tests drive the queue deterministically
with :meth:`step`; threaded tests exercise the real worker loop.
"""

from __future__ import annotations

import threading

import pytest

from repro.service import SimulationService, circuit_id_for
from repro.spice.engine import resolve_engine


@pytest.fixture()
def service():
    svc = SimulationService(workers=0, queue_limit=8)
    yield svc
    svc.close()


def _run(service: SimulationService, submit_payload: dict) -> dict:
    """Step the queue until the submitted job finishes; return its poll."""
    assert submit_payload["status"] == "ok", submit_payload
    while service.step():
        pass
    polled = service.poll(submit_payload["job_id"])
    assert polled["status"] == "ok", polled
    return polled


class TestCreateCircuit:
    def test_create_compiles_once_and_reuses_by_content(self, service,
                                                        ce_deck):
        first = service.create_circuit(ce_deck)
        assert first["status"] == "ok"
        assert first["circuit_id"] == circuit_id_for(ce_deck)
        assert first["reused"] is False
        second = service.create_circuit(ce_deck)
        assert second["circuit_id"] == first["circuit_id"]
        assert second["reused"] is True
        stats = service.stats_payload()["stats"]
        assert stats["circuits"]["created"] == 1
        assert stats["circuits"]["reused"] == 1

    def test_create_rejects_garbage(self, service):
        empty = service.create_circuit("   ")
        assert empty["status"] == "error"
        assert empty["code"] == 400
        not_a_deck = service.create_circuit("R1 a\n.END")
        assert not_a_deck["status"] == "error"
        assert "error_type" in not_a_deck

    def test_lint_failure_carries_issue_records(self, service):
        floating = "title\nV1 a 0 1\nR1 b c 1k\n.OP\n.END"
        payload = service.create_circuit(floating)
        assert payload["status"] == "error"
        assert payload["code"] == 422
        assert payload["error_type"] == "ConnectivityError"
        assert payload["lint_issues"], payload
        assert all({"code", "nodes", "message"} <= set(issue)
                   for issue in payload["lint_issues"])


class TestJobLifecycle:
    def test_dc_job_full_loop(self, service, ce_deck):
        cid = service.create_circuit(ce_deck)["circuit_id"]
        submitted = service.run_dc(cid)
        assert submitted["state"] == "queued"
        polled = _run(service, submitted)
        assert polled["state"] == "done"
        assert polled["result"]["nodes"]["v(vcc)"] == pytest.approx(5.0)
        assert polled["latency_seconds"] > 0.0

    def test_second_identical_dc_is_a_cache_hit(self, service, ce_deck):
        cid = service.create_circuit(ce_deck)["circuit_id"]
        first = _run(service, service.run_dc(cid))
        second = _run(service, service.run_dc(cid))
        assert "cached" not in first["result"]
        assert second["result"]["cached"] is True
        assert second["result"]["nodes"] == first["result"]["nodes"]
        stats = service.stats_payload()["stats"]
        assert stats["cache"]["hits"] >= 1
        assert stats["cache"]["hit_rate"] > 0.0

    def test_no_recompile_across_repeated_jobs(self, service, ce_deck):
        cid = service.create_circuit(ce_deck)["circuit_id"]
        entry = service._entry(cid)
        engine = resolve_engine(entry.deck.circuit, None)
        compiled_at_create = engine.stats.compilations
        _run(service, service.run_dc(cid))
        _run(service, service.run_ac(cid, start=1e6, stop=1e8, output="c"))
        _run(service, service.run_dc(cid, tenant="other"))  # cache miss
        assert engine.stats.compilations == compiled_at_create
        assert service.stats_payload()["stats"]["circuits"]["recompiles"] == 0

    def test_ac_and_transient_payloads(self, service, ce_deck):
        cid = service.create_circuit(ce_deck)["circuit_id"]
        ac = _run(service, service.run_ac(
            cid, start=1e6, stop=1e9, points_per_decade=5, output="c"))
        result = ac["result"]
        assert result["frequencies_hz"][0] == pytest.approx(1e6)
        assert len(result["frequencies_hz"]) == len(result["magnitude_db"])
        assert len(result["frequencies_hz"]) == len(result["phase_deg"])

        tran = _run(service, service.run_transient(
            cid, stop_time=1e-9, output="c"))
        result = tran["result"]
        assert result["points"] == len(result["times_s"])
        assert len(result["voltages"]) == result["points"]

    def test_transient_without_stop_time_fails_structured(self, service,
                                                          ce_deck):
        cid = service.create_circuit(ce_deck)["circuit_id"]
        polled = _run(service, service.run_transient(cid))
        assert polled["state"] == "failed"
        assert polled["error"]["error_type"] == "AnalysisError"
        assert "stop_time" in polled["error"]["error"]

    def test_unknown_circuit_and_kind_are_rejected_at_submit(self, service):
        missing = service.run_dc("deadbeef")
        assert missing["status"] == "error"
        assert missing["code"] == 404
        bogus = service.submit("noise", "deadbeef")
        assert bogus["status"] == "error"
        assert bogus["code"] == 400

    def test_poll_unknown_job(self, service):
        payload = service.poll("job-junk")
        assert payload["status"] == "error"
        assert payload["code"] == 404


class TestSweepAndOptimizeJobs:
    def test_sweep_job_reuses_results_via_tenant_cache(self, service,
                                                       ce_deck):
        cid = service.create_circuit(ce_deck)["circuit_id"]
        request = dict(source="VB", values=[0.75, 0.8, 0.85], output="c")
        first = _run(service, service.run_sweep(cid, **request))
        assert first["state"] == "done"
        stats = first["result"]["sweep_stats"]
        assert stats["points"] == 3
        assert stats["cache_hits"] == 0
        second = _run(service, service.run_sweep(cid, **request))
        assert second["result"]["values"] == first["result"]["values"]
        assert second["result"]["sweep_stats"]["cache_hits"] == 3
        assert second["result"]["sweep_stats"]["evaluated"] == 0

    def test_ac_sweep_job_payload_and_parity(self, service, ce_deck):
        cid = service.create_circuit(ce_deck)["circuit_id"]
        request = dict(source="VB", values=[0.75, 0.8], output="c",
                       analysis="ac", frequencies=[1e6, 1e8, 1e10])
        polled = _run(service, service.run_sweep(cid, **request))
        assert polled["state"] == "done"
        result = polled["result"]
        assert result["analysis"] == "ac"
        assert result["frequencies_hz"] == [1e6, 1e8, 1e10]
        assert len(result["values"]) == 2
        assert all(len(v) == 3 for v in result["values"])
        # The job result equals the library-level blocked evaluation.
        from repro.sweep import BlockedACSweep, ac_gain_db

        fn = BlockedACSweep(ce_deck, measure=ac_gain_db("c"),
                            frequencies=[1e6, 1e8, 1e10])
        expected = [[float(m) for m in fn({"VB": v})] for v in (0.75, 0.8)]
        assert result["values"] == expected

    def test_ac_sweep_job_grid_from_start_stop(self, service, ce_deck):
        cid = service.create_circuit(ce_deck)["circuit_id"]
        polled = _run(service, service.run_sweep(
            cid, source="VB", values=[0.8], output="c", analysis="ac",
            start=1e6, stop=1e8, points_per_decade=5))
        result = polled["result"]
        assert result["frequencies_hz"][0] == pytest.approx(1e6)
        assert result["frequencies_hz"][-1] == pytest.approx(1e8)
        assert len(result["frequencies_hz"]) == 11

    def test_repeated_ac_sweep_jobs_never_recompile(self, service, ce_deck):
        cid = service.create_circuit(ce_deck)["circuit_id"]
        request = dict(source="VB", values=[0.75, 0.8, 0.85], output="c",
                       analysis="ac", frequencies=[1e6, 1e8, 1e10])
        _run(service, service.run_sweep(cid, **request))
        entry = service._entry(cid)
        evaluator = entry.evaluators[("ac", "c", (1e6, 1e8, 1e10))]
        compiled = evaluator._engine.stats.compilations
        _run(service, service.run_sweep(cid, **request))
        _run(service, service.run_sweep(cid, tenant="other", **request))
        assert evaluator._engine.stats.compilations == compiled
        assert service.stats_payload()["stats"]["circuits"]["recompiles"] == 0
        # Second identical request on the same tenant was pure cache.
        second = _run(service, service.run_sweep(cid, **request))
        assert second["result"]["sweep_stats"]["cache_hits"] == 3
        assert second["result"]["sweep_stats"]["evaluated"] == 0

    def test_sweep_rejects_unknown_analysis(self, service, ce_deck):
        cid = service.create_circuit(ce_deck)["circuit_id"]
        polled = _run(service, service.run_sweep(
            cid, source="VB", values=[0.8], output="c", analysis="noise"))
        assert polled["state"] == "failed"
        assert polled["error"]["error_type"] == "AnalysisError"
        assert "'dc' or 'ac'" in polled["error"]["error"]

    def test_sweep_failures_carry_forensics(self, service, ce_deck):
        cid = service.create_circuit(ce_deck)["circuit_id"]
        polled = _run(service, service.run_sweep(
            cid, source="NOPE", values=[1.0], output="c"))
        assert polled["state"] == "failed"
        assert polled["error"]["error_type"] == "SweepError"

    def test_optimize_job_hits_the_target(self, service, ce_deck):
        cid = service.create_circuit(ce_deck)["circuit_id"]
        polled = _run(service, service.run_optimize(
            cid, output="c", target=3.0,
            parameters=[{"name": "VB", "lower": 0.7, "upper": 0.9}]))
        assert polled["state"] == "done"
        result = polled["result"]
        assert result["converged"] is True
        assert result["best_error"] < 1e-3
        assert 0.7 <= result["best_params"]["VB"] <= 0.9

    def test_optimize_rejects_missing_spec(self, service, ce_deck):
        cid = service.create_circuit(ce_deck)["circuit_id"]
        polled = _run(service, service.run_optimize(cid, output="c"))
        assert polled["state"] == "failed"
        assert polled["error"]["error_type"] == "AnalysisError"


class TestTenancy:
    def test_tenants_do_not_share_caches(self, service, ce_deck):
        cid = service.create_circuit(ce_deck)["circuit_id"]
        _run(service, service.run_dc(cid, tenant="alice"))
        bob = _run(service, service.run_dc(cid, tenant="bob"))
        # Bob's identical request was computed, not served from Alice's
        # cache: the result rows are tenant-scoped.
        assert "cached" not in bob["result"]
        alice_again = _run(service, service.run_dc(cid, tenant="alice"))
        assert alice_again["result"]["cached"] is True


class TestBackpressureAndCancellation:
    def test_queue_full_rejects_with_structured_503(self, service, ce_deck):
        cid = service.create_circuit(ce_deck)["circuit_id"]
        accepted = [service.run_dc(cid) for _ in range(8)]
        assert all(p["status"] == "ok" for p in accepted)
        rejected = service.run_dc(cid)
        assert rejected["status"] == "rejected"
        assert rejected["code"] == 503
        assert rejected["error_type"] == "QueueFullError"
        assert rejected["queue_depth"] == 8
        assert rejected["queue_limit"] == 8
        assert service.poll(accepted[0]["job_id"])["state"] == "queued"
        stats = service.stats_payload()["stats"]["jobs"]
        assert stats["rejected"] == 1
        assert stats["submitted"] == 8

    def test_rejected_job_frees_no_capacity_after_drain(self, service,
                                                        ce_deck):
        cid = service.create_circuit(ce_deck)["circuit_id"]
        for _ in range(8):
            service.run_dc(cid)
        while service.step():
            pass
        again = service.run_dc(cid)  # capacity is back after the drain
        assert again["status"] == "ok"

    def test_cancel_queued_job_never_runs(self, service, ce_deck):
        cid = service.create_circuit(ce_deck)["circuit_id"]
        keep = service.run_dc(cid)
        drop = service.run_dc(cid)
        cancelled = service.cancel_job(drop["job_id"])
        assert cancelled["state"] == "cancelled"
        while service.step():
            pass
        assert service.poll(keep["job_id"])["state"] == "done"
        assert service.poll(drop["job_id"])["state"] == "cancelled"
        stats = service.stats_payload()["stats"]["jobs"]
        assert stats["cancelled"] == 1
        assert stats["completed"] == 1

    def test_cancel_finished_job_is_a_noop(self, service, ce_deck):
        cid = service.create_circuit(ce_deck)["circuit_id"]
        done = _run(service, service.run_dc(cid))
        payload = service.cancel_job(done["job_id"])
        assert payload["state"] == "done"
        assert payload["cancelled"] is False

    def test_priority_orders_execution(self, service, ce_deck):
        cid = service.create_circuit(ce_deck)["circuit_id"]
        low = service.run_dc(cid, priority=0)
        high = service.run_sweep(cid, priority=5, source="VB",
                                 values=[0.8], output="c")
        service.step()
        assert service.poll(high["job_id"])["state"] == "done"
        assert service.poll(low["job_id"])["state"] == "queued"


class TestStructuredFailures:
    def test_nonconvergent_deck_failure_carries_report(self, service,
                                                       nonconvergent_deck):
        cid = service.create_circuit(nonconvergent_deck)["circuit_id"]
        polled = _run(service, service.run_dc(cid))
        assert polled["state"] == "failed"
        error = polled["error"]
        assert error["code"] == 422
        assert error["error_type"] == "ConvergenceError"
        report = error["convergence_report"]
        assert report["stage"] == "source_stepping"
        assert report["iterations"] > 0
        assert report["worst_name"] == "V(out)"
        assert report["history"]
        assert "summary" in report


class TestThreadedWorkers:
    def test_wait_blocks_until_done(self, ce_deck):
        with SimulationService(workers=2) as svc:
            cid = svc.create_circuit(ce_deck)["circuit_id"]
            submitted = [svc.run_dc(cid)] + [
                svc.run_sweep(cid, source="VB", values=[0.75 + i * 0.01],
                              output="c")
                for i in range(6)
            ]
            for payload in submitted:
                polled = svc.wait(payload["job_id"], timeout=60.0)
                assert polled["state"] == "done", polled
            stats = svc.stats_payload()["stats"]
            assert stats["jobs"]["completed"] == len(submitted)
            assert stats["circuits"]["recompiles"] == 0

    def test_concurrent_clients_against_one_service(self, ce_deck):
        """Many client threads x several worker threads, one circuit:
        every job completes, no result is lost or corrupted."""
        with SimulationService(workers=4, queue_limit=256) as svc:
            cid = svc.create_circuit(ce_deck)["circuit_id"]
            reference = svc.wait(svc.run_dc(cid)["job_id"], timeout=60.0)
            expected = reference["result"]["nodes"]
            failures: list = []

            def client(tid: int) -> None:
                try:
                    for _ in range(6):
                        payload = svc.run_dc(cid, tenant=f"t{tid % 3}")
                        polled = svc.wait(payload["job_id"], timeout=60.0)
                        assert polled["state"] == "done", polled
                        assert polled["result"]["nodes"] == expected
                except BaseException as exc:  # noqa: BLE001
                    failures.append((tid, exc))

            threads = [threading.Thread(target=client, args=(t,))
                       for t in range(8)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert not failures, failures
            stats = svc.stats_payload()["stats"]
            assert stats["jobs"]["completed"] == 1 + 8 * 6
            assert stats["jobs"]["failed"] == 0
            assert stats["circuits"]["recompiles"] == 0
            assert stats["cache"]["hit_rate"] > 0.0
            assert stats["latency"]["p99_seconds"] >= \
                stats["latency"]["p50_seconds"]

    def test_close_cancels_queued_jobs(self, ce_deck):
        svc = SimulationService(workers=0)
        cid = svc.create_circuit(ce_deck)["circuit_id"]
        queued = svc.run_dc(cid)
        svc.close()
        assert svc.poll(queued["job_id"])["state"] == "cancelled"

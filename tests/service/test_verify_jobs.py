"""Service-level qualification jobs: compile-once reuse, tenant caches."""

from __future__ import annotations

import pytest

from repro.service import SimulationService


@pytest.fixture()
def service():
    svc = SimulationService(workers=0, queue_limit=8)
    yield svc
    svc.close()


def _run(service: SimulationService, submit_payload: dict) -> dict:
    assert submit_payload["status"] == "ok", submit_payload
    while service.step():
        pass
    polled = service.poll(submit_payload["job_id"])
    assert polled["status"] == "ok", polled
    return polled


class TestVerifyJob:
    def test_verify_job_returns_a_qualification_report(self, service,
                                                       ce_deck):
        cid = service.create_circuit(ce_deck)["circuit_id"]
        polled = _run(service, service.run_verify(cid))
        assert polled["state"] == "done"
        result = polled["result"]
        assert result["schema"] == "repro-qualification-v1"
        assert result["corners"] == 27
        assert result["failed_corners"] == 0
        assert isinstance(result["passed"], bool)
        assert len(result["outcomes"]) == 27
        # The default measurement set covers the deck's DC nodes and,
        # since the deck carries an AC stimulus plus an .AC card, gain
        # and bandwidth of the first output.
        measured = result["outcomes"][0]["measurements"]
        assert "v_c" in measured
        assert any(name.startswith("gain_db_") for name in measured)
        assert result["envelope"]

    def test_repeat_is_cache_hit_with_zero_recompiles(self, service,
                                                      ce_deck):
        cid = service.create_circuit(ce_deck)["circuit_id"]
        first = _run(service, service.run_verify(cid))
        assert "cached" not in first["result"]
        entry = service._entry(cid)
        (evaluator,) = [v for k, v in entry.evaluators.items()
                        if k[0] == "verify"]
        compiled = evaluator.compilations()
        assert compiled > 0  # primed at first use

        second = _run(service, service.run_verify(cid))
        assert second["result"]["cached"] is True
        assert second["result"]["outcomes"] == first["result"]["outcomes"]
        # Different tenant: payload cache misses, but the compiled
        # corner decks are shared per circuit — still no recompiles.
        other = _run(service, service.run_verify(cid, tenant="other"))
        assert "cached" not in other["result"]
        assert other["result"]["outcomes"] == first["result"]["outcomes"]
        assert evaluator.compilations() == compiled
        stats = service.stats_payload()["stats"]
        assert stats["circuits"]["recompiles"] == 0

    def test_corner_config_params_reach_the_report(self, service,
                                                   ce_deck):
        cid = service.create_circuit(ce_deck)["circuit_id"]
        polled = _run(service, service.run_verify(
            cid, temps=[27.0], supply_tol=0.05, passive_tol=0.05))
        result = polled["result"]
        assert result["corners"] == 9  # 1 temp x 3 R x 3 supply
        temp_axis = next(a for a in result["axes"]
                         if a["kind"] == "temperature")
        assert [value for _, value in temp_axis["levels"]] == [27.0]
        # A different corner config is a different payload row AND a
        # different compiled evaluator.
        entry = service._entry(cid)
        verify_keys = [k for k in entry.evaluators if k[0] == "verify"]
        assert len(verify_keys) == 1
        _run(service, service.run_verify(cid))
        verify_keys = [k for k in entry.evaluators if k[0] == "verify"]
        assert len(verify_keys) == 2

    def test_custom_rules_are_applied(self, service, ce_deck):
        cid = service.create_circuit(ce_deck)["circuit_id"]
        rules = [{"name": "impossible", "device": "bjt",
                  "quantity": "ic_a", "limit": 1e-12}]
        polled = _run(service, service.run_verify(cid, rules=rules))
        result = polled["result"]
        assert result["passed"] is False
        assert result["stress_violations"] > 0
        assert result["rules"] == [
            {"name": "impossible", "device": "bjt", "quantity": "ic_a",
             "limit": 1e-12, "severity": "error", "match": "*",
             "derate": 1.0},
        ]

    def test_verify_unknown_circuit_is_an_error(self, service):
        payload = service.run_verify("circuit-junk")
        assert payload["status"] == "error"
        assert payload["code"] == 404

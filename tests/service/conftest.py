"""Shared fixtures for the service-layer tests."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.spice.solvercost import DEFAULT_SOLVER_COST_MODEL
from repro.sweep.costmodel import DEFAULT_COST_MODEL

DECKS = Path(__file__).resolve().parents[2] / "examples" / "decks"


@pytest.fixture(autouse=True)
def _restore_shared_cost_models():
    """Keep this package's solves from shifting the shared singletons.

    ``tests/service`` collects before ``tests/spice``; the engine
    calibrates :data:`DEFAULT_SOLVER_COST_MODEL` on every factorization,
    and the sparse auto-choice tests downstream assert against the
    seeded coefficients.
    """
    sweep_snapshot = (DEFAULT_COST_MODEL.spinup_seconds,
                      DEFAULT_COST_MODEL.chunk_seconds)
    solver_snapshot = (DEFAULT_SOLVER_COST_MODEL.dense_factor_ns3,
                       DEFAULT_SOLVER_COST_MODEL.sparse_factor_ns,
                       dict(DEFAULT_SOLVER_COST_MODEL.observations))
    yield
    (DEFAULT_COST_MODEL.spinup_seconds,
     DEFAULT_COST_MODEL.chunk_seconds) = sweep_snapshot
    (DEFAULT_SOLVER_COST_MODEL.dense_factor_ns3,
     DEFAULT_SOLVER_COST_MODEL.sparse_factor_ns) = solver_snapshot[:2]
    DEFAULT_SOLVER_COST_MODEL.observations = dict(solver_snapshot[2])


@pytest.fixture(scope="session")
def ce_deck() -> str:
    """A well-behaved deck: the common-emitter example stage."""
    return (DECKS / "ce_stage.cir").read_text()


@pytest.fixture(scope="session")
def nonconvergent_deck() -> str:
    """A deck whose DC solve always fails with full forensics."""
    return (DECKS / "nonconvergent.cir").read_text()

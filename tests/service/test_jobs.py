"""Unit tests for the job queue: priorities, backpressure, cancellation."""

from __future__ import annotations

import threading

import pytest

from repro.service.jobs import Job, JobQueue, QueueFullError


def _job(i: int, priority: int = 0) -> Job:
    return Job(id=f"j{i}", kind="dc", circuit_id="c", priority=priority)


class TestPriorityOrder:
    def test_higher_priority_pops_first(self):
        queue = JobQueue()
        queue.submit(_job(1, priority=0))
        queue.submit(_job(2, priority=5))
        queue.submit(_job(3, priority=1))
        assert queue.next_job(timeout=0).id == "j2"
        assert queue.next_job(timeout=0).id == "j3"
        assert queue.next_job(timeout=0).id == "j1"

    def test_fifo_within_a_priority_level(self):
        queue = JobQueue()
        for i in range(5):
            queue.submit(_job(i, priority=2))
        popped = [queue.next_job(timeout=0).id for _ in range(5)]
        assert popped == [f"j{i}" for i in range(5)]

    def test_popped_job_is_running(self):
        queue = JobQueue()
        queue.submit(_job(1))
        job = queue.next_job(timeout=0)
        assert job.status == "running"
        assert job.started_at is not None


class TestBackpressure:
    def test_submit_beyond_limit_raises(self):
        queue = JobQueue(limit=2)
        queue.submit(_job(1))
        queue.submit(_job(2))
        with pytest.raises(QueueFullError) as info:
            queue.submit(_job(3))
        assert info.value.depth == 2
        assert info.value.limit == 2

    def test_draining_frees_capacity(self):
        queue = JobQueue(limit=1)
        queue.submit(_job(1))
        queue.next_job(timeout=0)
        queue.submit(_job(2))  # running jobs do not count toward depth

    def test_concurrent_submitters_respect_the_limit(self):
        queue = JobQueue(limit=10)
        rejected: list = []
        barrier = threading.Barrier(8)

        def submitter(tid: int) -> None:
            barrier.wait()
            for i in range(5):
                try:
                    queue.submit(_job(tid * 10 + i))
                except QueueFullError:
                    rejected.append(tid)

        threads = [threading.Thread(target=submitter, args=(t,))
                   for t in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(queue) == 10  # the atomic check-and-push held the line
        assert len(rejected) == 8 * 5 - 10

    def test_limit_must_be_positive(self):
        with pytest.raises(ValueError):
            JobQueue(limit=0)


class TestCancellation:
    def test_cancel_queued_job(self):
        queue = JobQueue()
        job = _job(1)
        queue.submit(job)
        assert queue.cancel(job)
        assert job.status == "cancelled"
        assert job.finished
        assert job.done_event.is_set()
        assert queue.next_job(timeout=0) is None  # lazily dropped

    def test_cancel_running_job_is_refused(self):
        queue = JobQueue()
        job = _job(1)
        queue.submit(job)
        queue.next_job(timeout=0)
        assert not queue.cancel(job)
        assert job.status == "running"

    def test_close_wakes_blocked_worker(self):
        queue = JobQueue()
        got: list = []

        def worker() -> None:
            got.append(queue.next_job(timeout=None))

        thread = threading.Thread(target=worker)
        thread.start()
        queue.close()
        thread.join(timeout=5.0)
        assert not thread.is_alive()
        assert got == [None]


class TestJobDescribe:
    def test_describe_reports_lifecycle_fields(self):
        job = _job(1, priority=3)
        snapshot = job.describe()
        assert snapshot["job_id"] == "j1"
        assert snapshot["state"] == "queued"
        assert snapshot["priority"] == 3
        assert "result" not in snapshot
        job.status = "done"
        job.result = {"nodes": {}}
        job.finished_at = job.submitted_at + 0.5
        snapshot = job.describe()
        assert snapshot["result"] == {"nodes": {}}
        assert snapshot["latency_seconds"] == pytest.approx(0.5)

"""Tests of the Gummel-Poon equations against device physics."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.devices import (
    GummelPoonParameters,
    critical_voltage,
    depletion_charge,
    diode_current,
    evaluate,
    limited_exp,
    pnjlim,
    solve_vbe_for_ic,
    thermal_voltage,
)

VT = thermal_voltage()


class TestThermalVoltage:
    def test_room_temperature(self):
        assert thermal_voltage(300.15) == pytest.approx(0.025865, rel=1e-3)

    def test_scales_linearly(self):
        assert thermal_voltage(600.30) == pytest.approx(2 * VT)


class TestLimitedExp:
    def test_matches_exp_in_range(self):
        value, deriv = limited_exp(1.5)
        assert value == pytest.approx(math.exp(1.5))
        assert deriv == pytest.approx(math.exp(1.5))

    def test_linearizes_above_limit(self):
        value, deriv = limited_exp(200.0)
        assert math.isfinite(value)
        assert deriv == pytest.approx(math.exp(80.0))
        # continuous at the switch point
        v1, _ = limited_exp(80.0)
        v2, _ = limited_exp(80.0 + 1e-9)
        assert v2 == pytest.approx(v1, rel=1e-6)


class TestDiodeCurrent:
    def test_forward_law(self):
        i, g = diode_current(1e-14, 0.6, VT)
        assert i == pytest.approx(1e-14 * (math.exp(0.6 / VT) - 1), rel=1e-9)

    def test_conductance_is_derivative(self):
        h = 1e-7
        i1, _ = diode_current(1e-14, 0.6 - h, VT)
        i2, _ = diode_current(1e-14, 0.6 + h, VT)
        _, g = diode_current(1e-14, 0.6, VT)
        assert g == pytest.approx((i2 - i1) / (2 * h), rel=1e-5)

    def test_reverse_saturates(self):
        i, _ = diode_current(1e-14, -5.0, VT)
        assert i == pytest.approx(-1e-14, rel=1e-6)

    def test_zero_saturation_current(self):
        assert diode_current(0.0, 0.7, VT) == (0.0, 0.0)


class TestDepletionCharge:
    def test_zero_bias_capacitance(self):
        _, c = depletion_charge(0.0, 1e-12, 0.8, 0.33, 0.5)
        assert c == pytest.approx(1e-12)

    def test_reverse_bias_reduces_capacitance(self):
        _, c_rev = depletion_charge(-3.0, 1e-12, 0.8, 0.33, 0.5)
        assert c_rev < 1e-12

    def test_physical_law_below_fc(self):
        v, cj, vj, m = -2.0, 1e-12, 0.8, 0.33
        _, c = depletion_charge(v, cj, vj, m, 0.5)
        assert c == pytest.approx(cj * (1 - v / vj) ** (-m), rel=1e-9)

    def test_forward_bias_stays_finite(self):
        q, c = depletion_charge(0.79, 1e-12, 0.8, 0.33, 0.5)
        assert math.isfinite(q) and math.isfinite(c)
        assert c > 1e-12

    def test_charge_continuous_at_fc(self):
        cj, vj, m, fc = 1e-12, 0.8, 0.33, 0.5
        q1, c1 = depletion_charge(fc * vj - 1e-9, cj, vj, m, fc)
        q2, c2 = depletion_charge(fc * vj + 1e-9, cj, vj, m, fc)
        assert q2 == pytest.approx(q1, rel=1e-6)
        assert c2 == pytest.approx(c1, rel=1e-6)

    @given(st.floats(min_value=-5.0, max_value=0.7))
    def test_capacitance_is_charge_derivative(self, v):
        cj, vj, m, fc = 2e-13, 0.75, 0.4, 0.5
        h = 1e-6
        q1, _ = depletion_charge(v - h, cj, vj, m, fc)
        q2, _ = depletion_charge(v + h, cj, vj, m, fc)
        _, c = depletion_charge(v, cj, vj, m, fc)
        assert c == pytest.approx((q2 - q1) / (2 * h), rel=1e-3, abs=1e-20)

    def test_zero_cj_is_zero(self):
        assert depletion_charge(0.3, 0.0, 0.8, 0.33, 0.5) == (0.0, 0.0)


class TestPnjlim:
    def test_small_steps_pass_through(self):
        assert pnjlim(0.701, 0.70, VT, 0.6) == pytest.approx(0.701)

    def test_large_forward_step_is_limited(self):
        limited = pnjlim(5.0, 0.7, VT, 0.6)
        assert 0.7 < limited < 1.0

    def test_below_critical_untouched(self):
        assert pnjlim(0.3, 0.0, VT, 0.6) == 0.3

    def test_critical_voltage(self):
        vcrit = critical_voltage(1e-14, VT)
        assert 0.5 < vcrit < 1.0
        assert math.isinf(critical_voltage(0.0, VT))


class TestDCOperation:
    def test_ideal_forward_active(self, simple_npn):
        op = evaluate(simple_npn, 0.7, -2.0)
        expected_ic = 1e-16 * (math.exp(0.7 / VT) - 1)
        assert op.ic == pytest.approx(expected_ic, rel=1e-9)
        assert op.ib == pytest.approx(expected_ic / 100.0, rel=1e-9)
        assert op.beta_dc == pytest.approx(100.0, rel=1e-9)

    def test_cutoff(self, simple_npn):
        op = evaluate(simple_npn, -1.0, -3.0)
        assert abs(op.ic) < 1e-15
        assert abs(op.ib) < 1e-15

    def test_early_effect_raises_ic_with_vce(self):
        p = GummelPoonParameters(IS=1e-16, BF=100, VAF=50.0)
        op1 = evaluate(p, 0.7, 0.7 - 1.0)
        op2 = evaluate(p, 0.7, 0.7 - 5.0)
        assert op2.ic > op1.ic
        # Slope consistent with VAF: Ic ~ (1 + Vcb/VAF)
        ratio = op2.ic / op1.ic
        expected = (1 + (5.0 - 0.7) / 50.0) / (1 + (1.0 - 0.7) / 50.0)
        assert ratio == pytest.approx(expected, rel=0.02)

    def test_high_injection_halves_slope(self):
        p = GummelPoonParameters(IS=1e-16, BF=100, IKF=1e-3)
        # Far above IKF: Ic ~ sqrt(IS*IKF)*exp(vbe/2vt)
        vbe = 0.95
        op = evaluate(p, vbe, vbe - 3.0)
        ideal = 1e-16 * math.exp(vbe / VT)
        assert op.ic < ideal / 5.0
        expected = math.sqrt(1e-16 * 1e-3) * math.exp(vbe / (2 * VT))
        assert op.ic == pytest.approx(expected, rel=0.1)

    def test_reverse_operation_uses_br(self):
        p = GummelPoonParameters(IS=1e-16, BF=100, BR=2.0)
        op = evaluate(p, -2.0, 0.65)  # B-C forward, B-E reverse
        # Emitter current ~ transport; base ~ Ibc1/BR
        ibc1 = 1e-16 * (math.exp(0.65 / VT) - 1)
        assert op.ib == pytest.approx(ibc1 / 2.0, rel=1e-6)

    def test_leakage_dominates_at_low_bias(self):
        p = GummelPoonParameters(IS=1e-16, BF=100, ISE=1e-13, NE=2.0)
        op = evaluate(p, 0.3, -2.0)
        ideal_ib = op.ic / 100.0
        assert op.ib > 5 * ideal_ib

    def test_saturation_both_junctions_forward(self, hf_model):
        op = evaluate(hf_model, 0.75, 0.6)
        assert op.ic < evaluate(hf_model, 0.75, -1.0).ic
        assert op.ib > evaluate(hf_model, 0.75, -1.0).ib


class TestDerivativeConsistency:
    """Analytic Jacobian entries must match finite differences."""

    @settings(max_examples=60, deadline=None)
    @given(
        vbe=st.floats(min_value=0.3, max_value=0.85),
        vbc=st.floats(min_value=-4.0, max_value=0.3),
    )
    def test_current_derivatives(self, hf_model, vbe, vbc):
        h = 1e-7
        op = evaluate(hf_model, vbe, vbc)
        for attr, d_attr, var in (
            ("ic", "dic_dvbe", "vbe"), ("ic", "dic_dvbc", "vbc"),
            ("ib", "dib_dvbe", "vbe"), ("ib", "dib_dvbc", "vbc"),
        ):
            if var == "vbe":
                hi = evaluate(hf_model, vbe + h, vbc)
                lo = evaluate(hf_model, vbe - h, vbc)
            else:
                hi = evaluate(hf_model, vbe, vbc + h)
                lo = evaluate(hf_model, vbe, vbc - h)
            fd = (getattr(hi, attr) - getattr(lo, attr)) / (2 * h)
            analytic = getattr(op, d_attr)
            assert analytic == pytest.approx(fd, rel=2e-3, abs=1e-12), (
                f"{d_attr} mismatch at vbe={vbe}, vbc={vbc}"
            )

    @settings(max_examples=60, deadline=None)
    @given(
        vbe=st.floats(min_value=0.3, max_value=0.85),
        vbc=st.floats(min_value=-4.0, max_value=0.2),
    )
    def test_charge_derivatives(self, hf_model, vbe, vbc):
        h = 1e-7
        op = evaluate(hf_model, vbe, vbc)
        hi = evaluate(hf_model, vbe + h, vbc)
        lo = evaluate(hf_model, vbe - h, vbc)
        fd_qbe_vbe = (hi.qbe - lo.qbe) / (2 * h)
        assert op.dqbe_dvbe == pytest.approx(fd_qbe_vbe, rel=2e-3,
                                             abs=1e-20)
        hi = evaluate(hf_model, vbe, vbc + h)
        lo = evaluate(hf_model, vbe, vbc - h)
        fd_qbe_vbc = (hi.qbe - lo.qbe) / (2 * h)
        assert op.dqbe_dvbc == pytest.approx(fd_qbe_vbc, rel=2e-3,
                                             abs=1e-20)
        fd_qbc_vbc = (hi.qbc - lo.qbc) / (2 * h)
        assert op.dqbc_dvbc == pytest.approx(fd_qbc_vbc, rel=2e-3,
                                             abs=1e-20)
        fd_qbx_vbc = (hi.qbx - lo.qbx) / (2 * h)
        assert op.dqbx_dvbc == pytest.approx(fd_qbx_vbc, rel=2e-3,
                                             abs=1e-20)


class TestBiasSolve:
    @pytest.mark.parametrize("ic", [1e-5, 1e-4, 1e-3, 5e-3])
    def test_solves_target_current(self, hf_model, ic):
        vbe = solve_vbe_for_ic(hf_model, ic, 3.0)
        op = evaluate(hf_model, vbe, vbe - 3.0)
        assert op.ic == pytest.approx(ic, rel=1e-6)

    def test_monotone_in_current(self, hf_model):
        v1 = solve_vbe_for_ic(hf_model, 1e-4, 3.0)
        v2 = solve_vbe_for_ic(hf_model, 1e-3, 3.0)
        assert v2 > v1

    def test_rejects_nonpositive(self, hf_model):
        with pytest.raises(ValueError):
            solve_vbe_for_ic(hf_model, 0.0, 3.0)


class TestBaseResistanceModulation:
    def test_rbb_falls_with_injection(self):
        p = GummelPoonParameters(IS=1e-16, BF=100, IKF=1e-3,
                                 RB=200.0, RBM=50.0)
        low = evaluate(p, 0.6, -2.0)
        high = evaluate(p, 0.9, -2.0)
        assert low.rbb > high.rbb
        assert high.rbb >= 50.0

    def test_rbb_constant_when_rbm_equals_rb(self):
        p = GummelPoonParameters(IS=1e-16, BF=100, RB=200.0)
        low = evaluate(p, 0.5, -2.0)
        high = evaluate(p, 0.9, -2.0)
        assert low.rbb == pytest.approx(200.0)
        assert high.rbb == pytest.approx(200.0)


class TestChargeFreeFastPath:
    """evaluate(charges=False) must match the DC part of a full evaluate."""

    def test_dc_quantities_identical(self, hf_model):
        for vbe, vbc in ((0.8, -2.2), (0.65, 0.1), (-0.3, -0.5),
                         (1.0, -1.0), (0.0, 0.0)):
            full = evaluate(hf_model, vbe, vbc, gmin=1e-12)
            fast = evaluate(hf_model, vbe, vbc, gmin=1e-12, charges=False)
            for field in ("ic", "ib", "dic_dvbe", "dic_dvbc",
                          "dib_dvbe", "dib_dvbc", "qb", "rbb"):
                assert getattr(fast, field) == getattr(full, field), field

    def test_charges_zeroed(self, hf_model):
        fast = evaluate(hf_model, 0.8, -2.2, charges=False)
        assert fast.qbe == 0.0 and fast.qbc == 0.0 and fast.qbx == 0.0
        assert fast.dqbe_dvbe == 0.0 and fast.dqbc_dvbc == 0.0


class TestBiasWarmStart:
    def test_warm_start_reaches_same_solution(self, hf_model):
        import numpy as np

        for ic in np.geomspace(1e-5, 2e-2, 9):
            cold = solve_vbe_for_ic(hf_model, float(ic), 3.0)
            warm = solve_vbe_for_ic(hf_model, float(ic), 3.0,
                                    vbe0=cold + 0.05)
            assert warm == pytest.approx(cold, abs=1e-7)

    def test_out_of_range_guess_ignored(self, hf_model):
        cold = solve_vbe_for_ic(hf_model, 1e-3, 3.0)
        assert solve_vbe_for_ic(hf_model, 1e-3, 3.0,
                                vbe0=5.0) == pytest.approx(cold, abs=1e-7)
        assert solve_vbe_for_ic(hf_model, 1e-3, 3.0,
                                vbe0=-1.0) == pytest.approx(cold, abs=1e-7)

"""Tests for the Gummel-Poon parameter set."""

import math

import pytest

from repro.devices import GummelPoonParameters
from repro.errors import ModelError


class TestDefaults:
    def test_spice_defaults(self):
        p = GummelPoonParameters()
        assert p.IS == 1e-16
        assert p.BF == 100.0
        assert p.NF == 1.0
        assert p.BR == 1.0
        assert math.isinf(p.VAF)
        assert math.isinf(p.IKF)
        assert p.FC == 0.5
        assert p.XCJC == 1.0

    def test_rbm_defaults_to_rb(self):
        p = GummelPoonParameters(RB=150.0)
        assert p.RBM is None
        assert p.rbm_effective == 150.0

    def test_rbm_explicit(self):
        p = GummelPoonParameters(RB=150.0, RBM=40.0)
        assert p.rbm_effective == 40.0

    def test_polarity_sign(self):
        assert GummelPoonParameters(polarity="npn").sign == 1.0
        assert GummelPoonParameters(polarity="pnp").sign == -1.0


class TestValidation:
    @pytest.mark.parametrize("kwargs", [
        {"IS": 0.0},
        {"IS": -1e-16},
        {"BF": 0.0},
        {"NF": -1.0},
        {"RB": -10.0},
        {"CJE": -1e-15},
        {"FC": 0.0},
        {"FC": 1.0},
        {"XCJC": 1.5},
        {"MJE": 1.0},
        {"VAF": 0.0},
        {"polarity": "nmos"},
        {"TF": -1e-12},
    ])
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ModelError):
            GummelPoonParameters(**kwargs)

    def test_replace_revalidates(self):
        p = GummelPoonParameters()
        with pytest.raises(ModelError):
            p.replace(IS=-1.0)


class TestAreaScaling:
    def test_currents_scale_up(self, hf_model):
        scaled = hf_model.scaled_by_area(4.0)
        assert scaled.IS == pytest.approx(hf_model.IS * 4)
        assert scaled.ISE == pytest.approx(hf_model.ISE * 4)
        assert scaled.IKF == pytest.approx(hf_model.IKF * 4)
        assert scaled.ITF == pytest.approx(hf_model.ITF * 4)

    def test_capacitances_scale_up(self, hf_model):
        scaled = hf_model.scaled_by_area(4.0)
        assert scaled.CJE == pytest.approx(hf_model.CJE * 4)
        assert scaled.CJC == pytest.approx(hf_model.CJC * 4)
        assert scaled.CJS == pytest.approx(hf_model.CJS * 4)

    def test_resistances_scale_down(self, hf_model):
        scaled = hf_model.scaled_by_area(4.0)
        assert scaled.RB == pytest.approx(hf_model.RB / 4)
        assert scaled.RE == pytest.approx(hf_model.RE / 4)
        assert scaled.RC == pytest.approx(hf_model.RC / 4)

    def test_shape_independent_parameters_untouched(self, hf_model):
        scaled = hf_model.scaled_by_area(4.0)
        assert scaled.BF == hf_model.BF
        assert scaled.TF == hf_model.TF
        assert scaled.VJE == hf_model.VJE
        assert scaled.MJC == hf_model.MJC

    def test_unit_area_is_identity(self, hf_model):
        scaled = hf_model.scaled_by_area(1.0)
        assert scaled.IS == hf_model.IS
        assert scaled.RB == hf_model.RB

    def test_rejects_nonpositive_area(self, hf_model):
        with pytest.raises(ModelError):
            hf_model.scaled_by_area(0.0)
        with pytest.raises(ModelError):
            hf_model.scaled_by_area(-2.0)


class TestModelCard:
    def test_card_contains_non_defaults(self, hf_model):
        card = hf_model.to_model_card()
        assert card.startswith(".MODEL QHF NPN(")
        assert "IS=4e-17" in card
        assert "RB=120" in card

    def test_card_omits_defaults_and_infinities(self):
        card = GummelPoonParameters(name="QD").to_model_card()
        assert "VAF" not in card
        assert "IKF" not in card
        assert "NF" not in card

    def test_card_roundtrip_through_parser(self, hf_model):
        from repro.spice.parser import parse_deck

        deck_text = "roundtrip\n" + hf_model.to_model_card() + "\n.END\n"
        deck = parse_deck(deck_text)
        model = deck.models["QHF"]
        assert model.IS == pytest.approx(hf_model.IS, rel=1e-5)
        assert model.RB == pytest.approx(hf_model.RB, rel=1e-5)
        assert model.XTF == pytest.approx(hf_model.XTF, rel=1e-5)
        assert model.CJS == pytest.approx(hf_model.CJS, rel=1e-5)

    def test_pnp_card(self):
        card = GummelPoonParameters(name="QP", polarity="pnp").to_model_card()
        assert "PNP(" in card

    def test_from_card_params_rejects_unknown(self):
        with pytest.raises(ModelError):
            GummelPoonParameters.from_card_params("Q", "npn", {"WAT": 1.0})

"""Tests for the fT analysis (the physics behind the paper's Fig. 9)."""

import math

import numpy as np
import pytest

from repro.devices import (
    GummelPoonParameters,
    bias_at_ic,
    ft_at_ic,
    ft_curve,
    ft_from_h21,
    peak_ft,
    thermal_voltage,
)

VT = thermal_voltage()


class TestFTSinglePoint:
    def test_tf_only_limit(self):
        """Without depletion caps, fT -> 1/(2*pi*TF) at high current."""
        p = GummelPoonParameters(IS=1e-16, BF=100, TF=10e-12)
        point = ft_at_ic(p, 1e-2)
        assert point.ft == pytest.approx(1 / (2 * math.pi * 10e-12), rel=1e-3)

    def test_depletion_limited_at_low_current(self):
        p = GummelPoonParameters(IS=1e-16, BF=100, TF=10e-12,
                                 CJE=50e-15, CJC=30e-15)
        ic = 1e-5
        point = ft_at_ic(p, ic)
        # tau_total = TF + vt*(CJE'+CJC')/Ic dominates at small Ic
        assert point.ft < 1 / (2 * math.pi * 10e-12) / 5
        gm = ic / VT
        assert point.gm == pytest.approx(gm, rel=0.02)

    def test_ft_components_positive(self, hf_model):
        point = ft_at_ic(hf_model, 1e-3)
        assert point.gm > 0
        assert point.cpi > 0
        assert point.cmu > 0
        assert point.ft > 0


class TestFTCurve:
    def test_curve_rises_then_falls(self, hf_model):
        ics = np.geomspace(1e-5, 3e-2, 40)
        curve = ft_curve(hf_model, ics)
        fts = [p.ft for p in curve]
        peak_idx = int(np.argmax(fts))
        assert 0 < peak_idx < len(fts) - 1, "peak must be interior"
        # rising before, falling after
        assert fts[0] < fts[peak_idx]
        assert fts[-1] < fts[peak_idx]

    def test_peak_finder_matches_curve(self, hf_model):
        pk = peak_ft(hf_model, 1e-5, 3e-2, points=61)
        ics = np.geomspace(1e-5, 3e-2, 61)
        fts = [p.ft for p in ft_curve(hf_model, ics)]
        assert pk.ft == pytest.approx(max(fts), rel=1e-9)

    def test_area_scaling_moves_peak_current(self, hf_model):
        """The paper's point: larger emitters peak at larger Ic."""
        small = peak_ft(hf_model, 1e-5, 5e-2, points=81)
        big_model = hf_model.scaled_by_area(4.0)
        big = peak_ft(big_model, 1e-5, 5e-2, points=81)
        assert big.ic > 2.0 * small.ic
        # while the peak fT itself is nearly unchanged
        assert big.ft == pytest.approx(small.ft, rel=0.1)


class TestH21CrossCheck:
    @pytest.mark.parametrize("ic", [3e-4, 1e-3, 3e-3])
    def test_h21_extrapolation_agrees_with_hybrid_pi(self, hf_model, ic):
        direct = ft_at_ic(hf_model, ic).ft
        extrapolated = ft_from_h21(hf_model, ic)
        assert extrapolated == pytest.approx(direct, rel=0.05)

    def test_bias_point_hits_current(self, hf_model):
        op = bias_at_ic(hf_model, 2e-3)
        assert op.ic == pytest.approx(2e-3, rel=1e-6)

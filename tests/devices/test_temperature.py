"""Tests of the temperature model against junction physics."""

import math

import pytest

from repro.devices import GummelPoonParameters, solve_vbe_for_ic
from repro.devices.temperature import (
    at_temperature,
    bandgap_ev,
    celsius,
    vbe_temperature_coefficient,
)
from repro.errors import ModelError


class TestBandgap:
    def test_room_temperature_value(self):
        assert bandgap_ev(300.0) == pytest.approx(1.115, abs=0.01)

    def test_shrinks_when_hot(self):
        assert bandgap_ev(400.0) < bandgap_ev(300.0)

    def test_celsius_helper(self):
        assert celsius(27.0) == pytest.approx(300.15)


class TestParameterUpdate:
    def test_identity_at_tnom(self, hf_model):
        assert at_temperature(hf_model, hf_model.TNOM) is hf_model

    def test_is_grows_strongly_with_temperature(self, hf_model):
        hot = at_temperature(hf_model, celsius(100.0))
        # IS roughly doubles every ~5-8 K for silicon
        assert hot.IS > 100 * hf_model.IS

    def test_is_shrinks_when_cold(self, hf_model):
        cold = at_temperature(hf_model, celsius(-40.0))
        assert cold.IS < hf_model.IS / 100

    def test_beta_follows_xtb(self):
        p = GummelPoonParameters(IS=1e-16, BF=100.0, XTB=1.5)
        hot = at_temperature(p, p.TNOM * 1.2)
        assert hot.BF == pytest.approx(100.0 * 1.2 ** 1.5, rel=1e-9)

    def test_beta_constant_without_xtb(self, hf_model):
        hot = at_temperature(hf_model, celsius(100.0))
        assert hot.BF == hf_model.BF  # XTB defaults to 0

    def test_junction_potentials_drop_when_hot(self, hf_model):
        hot = at_temperature(hf_model, celsius(125.0))
        assert hot.VJE < hf_model.VJE
        assert hot.VJC < hf_model.VJC

    def test_junction_capacitance_grows_when_hot(self, hf_model):
        hot = at_temperature(hf_model, celsius(125.0))
        assert hot.CJE > hf_model.CJE
        assert hot.CJC > hf_model.CJC

    def test_tnom_updated(self, hf_model):
        hot = at_temperature(hf_model, 350.0)
        assert hot.TNOM == 350.0

    def test_rejects_nonpositive_temperature(self, hf_model):
        with pytest.raises(ModelError):
            at_temperature(hf_model, 0.0)

    def test_extreme_temperature_rejected(self, hf_model):
        """Far beyond validity the junction potential collapses."""
        with pytest.raises(ModelError):
            at_temperature(hf_model, 800.0)


class TestDCBehaviour:
    def test_vbe_tempco_in_physical_range(self, hf_model):
        """dVbe/dT = -(Eg/q + 3vt - Vbe)/T: about -1.3 mV/K at this
        current density, trending to -2 mV/K at low densities."""
        tempco = vbe_temperature_coefficient(hf_model, ic=1e-3)
        assert -2.6e-3 < tempco < -1.0e-3

    def test_vbe_falls_monotonically_with_temperature(self, hf_model):
        vbes = []
        for temp in (250.0, 300.15, 350.0):
            params = at_temperature(hf_model, temp)
            vbes.append(solve_vbe_for_ic(params, 1e-3, 3.0, temp=temp))
        assert vbes[0] > vbes[1] > vbes[2]

    def test_tempco_steeper_at_lower_current(self, hf_model):
        """|dVbe/dT| grows as the current density drops (textbook)."""
        low = vbe_temperature_coefficient(hf_model, ic=1e-5)
        high = vbe_temperature_coefficient(hf_model, ic=5e-3)
        assert low < high < 0

    def test_ft_degrades_when_hot(self, hf_model):
        from repro.devices import ft_at_ic

        cold = ft_at_ic(at_temperature(hf_model, 260.0), 2e-3)
        hot = ft_at_ic(at_temperature(hf_model, 380.0), 2e-3)
        # hotter junctions: larger depletion caps, lower gm/Ic
        assert hot.ft < cold.ft

    def test_leakage_update_consistent(self):
        p = GummelPoonParameters(IS=1e-16, BF=100.0, ISE=1e-14, NE=2.0,
                                 XTB=1.0)
        hot = at_temperature(p, p.TNOM + 60.0)
        assert hot.ISE > p.ISE  # leakage grows fast with temperature

"""Shared fixtures: models, references, generators used across the suite."""

from __future__ import annotations

import pytest

from repro.devices import GummelPoonParameters
from repro.geometry import (
    MaskDesignRules,
    ModelParameterGenerator,
    ProcessData,
    default_reference,
)


@pytest.fixture(scope="session")
def hf_model() -> GummelPoonParameters:
    """A representative high-frequency npn with every effect enabled."""
    return GummelPoonParameters(
        name="QHF",
        IS=4e-17, BF=100.0, NF=1.0, VAF=40.0, IKF=8e-3,
        ISE=5e-15, NE=2.0, BR=2.0, NR=1.0, VAR=4.0, IKR=1e-2,
        ISC=1e-14, NC=2.0,
        RB=120.0, RE=3.0, RC=60.0,
        CJE=45e-15, VJE=0.9, MJE=0.35,
        CJC=30e-15, VJC=0.7, MJC=0.33, XCJC=0.8,
        CJS=70e-15, VJS=0.6, MJS=0.4,
        TF=9e-12, XTF=2.0, VTF=2.0, ITF=8e-3, TR=1e-9,
    )


@pytest.fixture(scope="session")
def simple_npn() -> GummelPoonParameters:
    """A minimal npn (no parasitics) for closed-form comparisons."""
    return GummelPoonParameters(name="QSIMPLE", IS=1e-16, BF=100.0)


@pytest.fixture(scope="session")
def process() -> ProcessData:
    return ProcessData()


@pytest.fixture(scope="session")
def rules() -> MaskDesignRules:
    return MaskDesignRules()


@pytest.fixture(scope="session")
def reference(process, rules):
    return default_reference(process, rules)


@pytest.fixture(scope="session")
def generator(process, rules, reference) -> ModelParameterGenerator:
    return ModelParameterGenerator(process, rules, reference)


@pytest.fixture(scope="session")
def uncalibrated_generator(process, rules) -> ModelParameterGenerator:
    return ModelParameterGenerator(process, rules)

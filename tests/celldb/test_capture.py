"""Tests for capturing live design objects into cell records."""

import pytest

from repro.celldb import (
    AnalogCellDatabase,
    cell_from_ahdl,
    cell_from_circuit,
)
from repro.errors import CellDatabaseError
from repro.spice import Circuit, Simulator, parse_deck
from repro.spice.elements import Resistor, VoltageSource


def sample_circuit():
    ckt = Circuit("attenuator")
    ckt.add(VoltageSource("V1", ("in", "0"), dc=1.0))
    ckt.add(Resistor("R1", ("in", "out"), 1e3))
    ckt.add(Resistor("R2", ("out", "0"), 1e3))
    return ckt


AHDL_SOURCE = """
module buffer (IN, OUT) (gain)
node [V] IN, OUT;
parameter real gain = 1;
{ analog { V(OUT) <- gain * V(IN); } }
"""


class TestCellFromCircuit:
    def test_captured_cell_registers_and_validates(self):
        cell = cell_from_circuit(
            "ATT1", "TV/Video/Attenuator",
            "A 6 dB resistive attenuator used between video stages.",
            sample_circuit(), ports=("in", "out"),
            keywords=("attenuator",),
        )
        db = AnalogCellDatabase()
        db.register(cell)  # schematic must parse -> validation passes
        assert "ATT1" in db

    def test_captured_schematic_simulates_identically(self):
        cell = cell_from_circuit(
            "ATT1", "TV/Video/Attenuator",
            "A resistive attenuator.", sample_circuit(),
            ports=("in", "out"),
        )
        restored = parse_deck(cell.schematic).circuit
        v = Simulator(restored).operating_point().voltage("out")
        assert v == pytest.approx(0.5, rel=1e-6)

    def test_ports_must_be_nodes(self):
        with pytest.raises(CellDatabaseError):
            cell_from_circuit(
                "ATT1", "TV/Video/Attenuator", "doc.", sample_circuit(),
                ports=("in", "nonexistent"),
            )

    def test_ground_is_a_valid_port(self):
        cell = cell_from_circuit(
            "ATT1", "TV/Video/Attenuator", "doc.", sample_circuit(),
            ports=("in", "out", "0"),
        )
        assert cell.symbol.ports == ("in", "out", "0")


class TestCellFromAHDL:
    def test_behavioral_cell(self):
        cell = cell_from_ahdl(
            "BUF1", "TVR/Tuner/Buffer",
            "A unity-gain behavioral buffer.", AHDL_SOURCE,
        )
        assert cell.symbol.ports == ("IN", "OUT")
        db = AnalogCellDatabase()
        db.register(cell)

    def test_broken_source_rejected(self):
        with pytest.raises(Exception):
            cell_from_ahdl("BAD", "A/B/C", "doc.", "module broken (((")

    def test_multi_module_source_rejected(self):
        with pytest.raises(CellDatabaseError):
            cell_from_ahdl(
                "TWO", "A/B/C", "doc.",
                AHDL_SOURCE + AHDL_SOURCE.replace("buffer", "buffer2"),
            )

"""Tests for cell revisions and the database audit trail."""

import pytest

from repro.celldb import (
    AnalogCellDatabase,
    Cell,
    CategoryPath,
    Symbol,
)
from repro.errors import CellDatabaseError


def make_cell(document="An amplifier cell for revision testing."):
    return Cell(
        name="REV1",
        category=CategoryPath.parse("TV/Video/Amp"),
        document=document,
        symbol=Symbol(("IN", "OUT")),
    )


class TestRevisions:
    def test_initial_revision_is_one(self):
        db = AnalogCellDatabase()
        db.register(make_cell())
        assert db.get("REV1").revision == 1

    def test_update_bumps_revision(self):
        db = AnalogCellDatabase()
        db.register(make_cell())
        db.update_cell(make_cell(document="Improved description."))
        assert db.get("REV1").revision == 2
        assert "Improved" in db.get("REV1").document
        db.update_cell(make_cell(document="Third take."))
        assert db.get("REV1").revision == 3

    def test_update_preserves_reuse_count(self):
        db = AnalogCellDatabase()
        db.register(make_cell())
        db.copy_for_reuse("REV1")
        db.copy_for_reuse("REV1")
        db.update_cell(make_cell(document="New doc."))
        assert db.get("REV1").reuse_count == 2

    def test_update_unregistered_rejected(self):
        db = AnalogCellDatabase()
        with pytest.raises(CellDatabaseError):
            db.update_cell(make_cell())

    def test_update_validates(self):
        db = AnalogCellDatabase()
        db.register(make_cell())
        broken = make_cell()
        broken.schematic = "broken\nR1 a\n.END\n"
        with pytest.raises(CellDatabaseError):
            db.update_cell(broken)

    def test_revision_survives_persistence(self, tmp_path):
        db = AnalogCellDatabase()
        db.register(make_cell())
        db.update_cell(make_cell(document="v2 of the doc."))
        path = tmp_path / "db.json"
        db.save(path)
        restored = AnalogCellDatabase.load(path)
        assert restored.get("REV1").revision == 2


class TestAuditTrail:
    def test_actions_recorded_in_order(self):
        db = AnalogCellDatabase()
        db.register(make_cell())
        db.copy_for_reuse("REV1")
        db.update_cell(make_cell(document="Better."))
        db.unregister("REV1")
        actions = [e.action for e in db.history()]
        assert actions == ["register", "reuse", "update", "unregister"]
        sequences = [e.sequence for e in db.history()]
        assert sequences == [1, 2, 3, 4]

    def test_filter_by_cell(self):
        db = AnalogCellDatabase()
        db.register(make_cell())
        other = make_cell()
        other.name = "OTHER"
        db.register(other)
        db.copy_for_reuse("OTHER")
        assert len(db.history("REV1")) == 1
        assert len(db.history("other")) == 2

    def test_detail_text(self):
        db = AnalogCellDatabase()
        db.register(make_cell())
        db.update_cell(make_cell(document="Again."))
        update = db.history("REV1")[-1]
        assert "revision 1 -> 2" in update.detail

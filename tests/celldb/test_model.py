"""Tests for the cell data model."""

import pytest

from repro.celldb import Cell, CategoryPath, SimulationRecord, Symbol
from repro.errors import CellDatabaseError


def make_cell(**overrides):
    defaults = dict(
        name="ACC1",
        category=CategoryPath("TV", "Croma", "ACC"),
        document="A gain controlled amplifier for chroma AGC.",
        symbol=Symbol(("IN", "OUT")),
    )
    defaults.update(overrides)
    return Cell(**defaults)


class TestCategoryPath:
    def test_str_roundtrip(self):
        path = CategoryPath("TV", "Croma", "ACC")
        assert str(path) == "TV/Croma/ACC"
        assert CategoryPath.parse("TV/Croma/ACC") == path

    def test_parse_rejects_wrong_depth(self):
        with pytest.raises(CellDatabaseError):
            CategoryPath.parse("TV/Croma")
        with pytest.raises(CellDatabaseError):
            CategoryPath.parse("TV/Croma/ACC/extra")

    def test_rejects_empty_or_slashed_components(self):
        with pytest.raises(CellDatabaseError):
            CategoryPath("", "a", "b")
        with pytest.raises(CellDatabaseError):
            CategoryPath("a/b", "c", "d")


class TestSymbol:
    def test_needs_ports(self):
        with pytest.raises(CellDatabaseError):
            Symbol(())

    def test_rejects_duplicate_ports(self):
        with pytest.raises(CellDatabaseError):
            Symbol(("IN", "IN"))


class TestSimulationRecord:
    def test_valid_kinds(self):
        for kind in ("op", "dc", "ac", "tran", "behavioral"):
            SimulationRecord("r", kind)

    def test_rejects_unknown_kind(self):
        with pytest.raises(CellDatabaseError):
            SimulationRecord("r", "montecarlo")


class TestCell:
    def test_document_is_mandatory(self):
        with pytest.raises(CellDatabaseError):
            make_cell(document="   ")

    def test_name_is_mandatory(self):
        with pytest.raises(CellDatabaseError):
            make_cell(name="")

    def test_dict_roundtrip(self):
        cell = make_cell(
            keywords=("agc", "chroma"),
            schematic="deck\nR1 a 0 1k\n.END\n",
            behavior="",
            simulations=[SimulationRecord("gain", "ac",
                                          {"gain_db": 12.0})],
            designer="miyahara",
            origin_ic="TA8867",
            reuse_count=3,
        )
        restored = Cell.from_dict(cell.to_dict())
        assert restored.name == cell.name
        assert restored.category == cell.category
        assert restored.keywords == cell.keywords
        assert restored.simulations[0].summary == {"gain_db": 12.0}
        assert restored.reuse_count == 3
        assert restored.symbol.ports == cell.symbol.ports

    def test_from_dict_missing_field(self):
        with pytest.raises(CellDatabaseError):
            Cell.from_dict({"name": "X"})

    def test_keyword_matching(self):
        cell = make_cell(keywords=("AGC", "chroma"))
        assert cell.matches_keyword("agc")
        assert cell.matches_keyword("ACC1")  # name
        assert cell.matches_keyword("gain controlled")  # document
        assert not cell.matches_keyword("oscillator")

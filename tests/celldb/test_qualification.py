"""Cell qualification records: persistence and summary folding."""

import pytest

from repro.celldb import Cell, seed_database
from repro.verify import qualify_cell


@pytest.fixture(scope="module")
def report():
    return qualify_cell(seed_database().get("PHASE90-IF"),
                        executor="serial")


@pytest.fixture()
def cell():
    return seed_database().get("PHASE90-IF")


class TestRecordQualification:
    def test_stores_the_full_report_dict(self, cell, report):
        assert cell.qualification is None
        cell.record_qualification(report)
        assert cell.qualification == report.to_dict()
        assert cell.qualification["schema"] == "repro-qualification-v1"

    def test_accepts_a_plain_dict(self, cell, report):
        cell.record_qualification(report.to_dict())
        assert cell.qualification == report.to_dict()

    def test_folds_nominal_measurements_into_the_summary(self, cell,
                                                         report):
        before = cell.simulation_summary()
        assert "v_out" not in before
        cell.record_qualification(report)
        summary = cell.simulation_summary()
        nominal = report.nominal_measurements()
        assert summary["v_out"] == nominal["v_out"]
        assert summary["gain_db_out"] == nominal["gain_db_out"]
        # Pre-existing behavioral records survive the fold.
        assert summary["phase_error_deg"] == before["phase_error_deg"]

    def test_re_recording_replaces_the_previous_record(self, cell,
                                                       report):
        cell.record_qualification(report)
        cell.record_qualification(report)
        named = [s for s in cell.simulations
                 if s.name == "qualification"]
        assert len(named) == 1
        assert named[0].analysis == "dc"

    def test_round_trips_through_dict(self, cell, report):
        cell.record_qualification(report)
        rebuilt = Cell.from_dict(cell.to_dict())
        assert rebuilt.qualification == cell.qualification
        assert rebuilt.simulation_summary() == cell.simulation_summary()
        assert Cell.from_dict(rebuilt.to_dict()).to_dict() == \
            rebuilt.to_dict()

    def test_cell_without_qualification_round_trips_as_none(self, cell):
        assert Cell.from_dict(cell.to_dict()).qualification is None

"""Tests for the analog cell database."""

import pytest

from repro.celldb import (
    AnalogCellDatabase,
    Cell,
    CategoryPath,
    Symbol,
    seed_database,
)
from repro.errors import CellDatabaseError


def make_cell(name="AMP1", path="TVR/Tuner/Amp", schematic="", behavior=""):
    return Cell(
        name=name,
        category=CategoryPath.parse(path),
        document=f"{name} test amplifier circuit.",
        symbol=Symbol(("IN", "OUT")),
        schematic=schematic,
        behavior=behavior,
    )


GOOD_DECK = "test\nR1 a 0 1k\nV1 a 0 1\n.END\n"
BAD_DECK = "test\nR1 a 0\n.END\n"
GOOD_AHDL = """
module amp (IN, OUT) (g)
node [V] IN, OUT;
parameter real g = 1;
{ analog { V(OUT) <- g * V(IN); } }
"""


class TestRegistration:
    def test_register_and_get(self):
        db = AnalogCellDatabase()
        db.register(make_cell())
        assert "AMP1" in db
        assert db.get("amp1").name == "AMP1"

    def test_duplicate_rejected(self):
        db = AnalogCellDatabase()
        db.register(make_cell())
        with pytest.raises(CellDatabaseError):
            db.register(make_cell())

    def test_schematic_validated(self):
        db = AnalogCellDatabase()
        db.register(make_cell(name="OK", schematic=GOOD_DECK))
        with pytest.raises(CellDatabaseError):
            db.register(make_cell(name="BROKEN", schematic=BAD_DECK))

    def test_behavior_validated(self):
        db = AnalogCellDatabase()
        db.register(make_cell(name="OK", behavior=GOOD_AHDL))
        with pytest.raises(CellDatabaseError):
            db.register(make_cell(name="BROKEN",
                                  behavior="module broken ((("))

    def test_validation_can_be_skipped(self):
        db = AnalogCellDatabase()
        db.register(make_cell(schematic=BAD_DECK), validate=False)
        assert "AMP1" in db

    def test_unregister(self):
        db = AnalogCellDatabase()
        db.register(make_cell())
        db.unregister("AMP1")
        assert "AMP1" not in db
        with pytest.raises(CellDatabaseError):
            db.unregister("AMP1")

    def test_get_missing(self):
        with pytest.raises(CellDatabaseError):
            AnalogCellDatabase().get("NOPE")


class TestSearch:
    @pytest.fixture()
    def db(self):
        return seed_database()

    def test_keyword_search(self, db):
        hits = db.search(keyword="mixer")
        assert {c.name for c in hits} >= {"UPMIX-1300", "DNMIX-45"}

    def test_category_filters(self, db):
        hits = db.search(library="TVR", category1="Tuner",
                         category2="Phase shifter")
        assert {c.name for c in hits} == {"PHASE90-VCO", "PHASE90-IF"}

    def test_combined_filters(self, db):
        hits = db.search(keyword="90", library="TVR",
                         category2="Phase shifter")
        assert len(hits) == 2

    def test_in_category(self, db):
        cells = db.in_category("TV/Croma/ACC")
        assert [c.name for c in cells] == ["ACC1", "ACC2"]

    def test_libraries_and_categories(self, db):
        assert db.libraries() == ["TV", "TVR"]
        tree = db.categories("TV")
        assert "Croma" in tree
        assert "ACC" in tree["Croma"]

    def test_no_hits(self, db):
        assert db.search(keyword="nonexistent-thing") == []

    def test_keyword_is_case_insensitive(self, db):
        expected = {c.name for c in db.search(keyword="mixer")}
        assert expected  # guard: the lowercase query must match something
        for query in ("MIXER", "Mixer", "mIxEr"):
            assert {c.name for c in db.search(keyword=query)} == expected

    def test_category_filters_are_case_insensitive(self, db):
        reference = db.search(library="TVR", category1="Tuner",
                              category2="Phase shifter")
        relaxed = db.search(library="tvr", category1="TUNER",
                            category2="phase SHIFTER")
        assert [c.name for c in relaxed] == [c.name for c in reference]

    def test_spec_range_filtering(self, db):
        hits = db.search(category2="Phase shifter",
                         spec_ranges={"phase_error_deg": (None, 1.6)})
        assert {c.name for c in hits} == {"PHASE90-IF"}

    def test_spec_range_lower_bound(self, db):
        hits = db.search(keyword="mixer",
                         spec_ranges={"conversion_gain_db": (4.0, None)})
        assert {c.name for c in hits} == {"DNMIX-45"}

    def test_spec_range_excludes_cells_without_data(self, db):
        # IF-ADDER records no simulations at all; a constrained quantity
        # it has no data for must exclude it, not pass it.
        hits = db.search(library="TVR",
                         spec_ranges={"phase_error_deg": (None, 90.0)})
        assert all(c.name != "IF-ADDER" for c in hits)
        assert {c.name for c in hits} == {"PHASE90-VCO", "PHASE90-IF"}

    def test_meeting_specs_sugar(self, db):
        hits = db.meeting_specs({"gain_error": (None, 0.006)},
                                keyword="phase shifter")
        assert {c.name for c in hits} == {"PHASE90-VCO", "PHASE90-IF"}

    def test_bad_spec_range_rejected(self, db):
        with pytest.raises(CellDatabaseError):
            db.search(spec_ranges={"gain_db": 3.0})
        with pytest.raises(CellDatabaseError):
            db.search(spec_ranges={"gain_db": (1.0, 2.0, 3.0)})


class TestReuse:
    def test_copy_increments_counter(self):
        db = seed_database()
        before = db.get("DNMIX-45").reuse_count
        db.copy_for_reuse("DNMIX-45")
        db.copy_for_reuse("DNMIX-45")
        assert db.get("DNMIX-45").reuse_count == before + 2

    def test_reuse_statistics(self):
        db = seed_database()
        stats = db.reuse_statistics({
            "b1": "RF-AGC-AMP",
            "b2": "UPMIX-1300",
            "b3": "DNMIX-45",
            "b4": None,
            "b5": "NOT-IN-DB",
        })
        assert stats.total_blocks == 5
        assert stats.reused_blocks == 3
        assert stats.reuse_fraction == pytest.approx(0.6)

    def test_empty_design(self):
        stats = seed_database().reuse_statistics({})
        assert stats.reuse_fraction == 0.0


class TestPersistence:
    def test_save_load_roundtrip(self, tmp_path):
        db = seed_database()
        db.copy_for_reuse("ACC1")
        path = tmp_path / "cells.json"
        db.save(path)
        restored = AnalogCellDatabase.load(path)
        assert len(restored) == len(db)
        assert restored.get("ACC1").reuse_count == 1
        assert restored.get("UPMIX-1300").category == CategoryPath.parse(
            "TVR/Tuner/Mixer"
        )

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(CellDatabaseError):
            AnalogCellDatabase.load(tmp_path / "nope.json")

    def test_load_bad_format(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"format": 99, "cells": []}')
        with pytest.raises(CellDatabaseError):
            AnalogCellDatabase.load(path)


class TestSeedDatabase:
    def test_seed_is_valid(self):
        """Every seeded cell passes full validation (schematics parse,
        behaviors compile)."""
        db = seed_database()
        fresh = AnalogCellDatabase("check")
        for cell in db.cells():
            fresh.register(cell, validate=True)
        assert len(fresh) == len(db)

    def test_seed_covers_fig6_corner(self):
        db = seed_database()
        assert "ACC1" in db
        assert "ACC2" in db
        assert db.get("ACC1").category.library == "TV"

    def test_seed_covers_tuner_blocks(self):
        db = seed_database()
        for name in ("RF-AGC-AMP", "UPMIX-1300", "DNMIX-45",
                     "PHASE90-VCO", "PHASE90-IF", "IF-ADDER", "VCO-2ND"):
            assert name in db

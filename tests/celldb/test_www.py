"""Tests for the WWW (static HTML) export of the cell library."""

import pytest

from repro.celldb import export_site, render_cell, render_index, seed_database


@pytest.fixture(scope="module")
def db():
    return seed_database()


class TestRenderIndex:
    def test_contains_libraries_and_cells(self, db):
        html = render_index(db)
        assert "Library TV" in html
        assert "Library TVR" in html
        assert "ACC1" in html
        assert 'href="cell_acc1.html"' in html

    def test_shows_reuse_counters(self, db):
        html = render_index(db)
        assert "re-used" in html


class TestRenderCell:
    def test_all_facets_present(self, db):
        cell = db.get("RF-AGC-AMP")
        html = render_cell(cell)
        assert "Document" in html
        assert "Symbol" in html
        assert "SPICE deck" in html
        assert "AHDL" in html
        assert "RF AGC amplifier" in html or "AGC" in html

    def test_simulation_table(self, db):
        cell = db.get("ACC1")
        html = render_cell(cell)
        assert "Simulation data" in html
        assert "gain_db=12" in html

    def test_html_escaping(self, db):
        from repro.celldb import Cell, CategoryPath, Symbol

        cell = Cell(
            name="XSS<script>",
            category=CategoryPath("A", "B", "C"),
            document="contains <tags> & ampersands",
            symbol=Symbol(("IN",)),
        )
        html = render_cell(cell)
        assert "<script>" not in html
        assert "&lt;tags&gt;" in html


class TestExportSite:
    def test_writes_index_and_cell_pages(self, db, tmp_path):
        files = export_site(db, tmp_path / "www")
        names = {f.name for f in files}
        assert "index.html" in names
        assert len(files) == len(db) + 1
        index = (tmp_path / "www" / "index.html").read_text()
        assert "Analog cell library" in index

    def test_creates_directory(self, db, tmp_path):
        target = tmp_path / "deep" / "nested" / "www"
        export_site(db, target)
        assert (target / "index.html").exists()

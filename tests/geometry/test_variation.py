"""Tests for process variation and Monte-Carlo analysis."""

import numpy as np
import pytest

from repro.errors import GeometryError
from repro.geometry import (
    MismatchSpec,
    ProcessData,
    ProcessVariation,
    monte_carlo_image_rejection,
    monte_carlo_models,
)


class TestProcessSampling:
    def test_sample_changes_parameters(self):
        nominal = ProcessData()
        rng = np.random.default_rng(1)
        sample = ProcessVariation().sample_process(nominal, rng)
        assert sample.rsb_intrinsic != nominal.rsb_intrinsic
        assert sample.cje_area != nominal.cje_area
        # untouched: built-in potentials, emission coefficients
        assert sample.vje == nominal.vje
        assert sample.nf == nominal.nf

    def test_samples_stay_physical(self):
        nominal = ProcessData()
        rng = np.random.default_rng(2)
        variation = ProcessVariation()
        for _ in range(50):
            sample = variation.sample_process(nominal, rng)
            assert sample.rsb_intrinsic > 0
            assert sample.js_area > 0

    def test_zero_sigma_is_identity(self):
        nominal = ProcessData()
        rng = np.random.default_rng(3)
        frozen = ProcessVariation(sigma_js=0, sigma_jb=0, sigma_sheet=0,
                                  sigma_contact=0, sigma_cap=0, sigma_tf=0)
        sample = frozen.sample_process(nominal, rng)
        assert sample == nominal

    def test_spread_magnitude(self):
        """Sampled sheet resistance spread matches the requested sigma."""
        nominal = ProcessData()
        rng = np.random.default_rng(4)
        variation = ProcessVariation(sigma_sheet=0.10)
        values = [
            variation.sample_process(nominal, rng).rsb_intrinsic
            for _ in range(400)
        ]
        log_std = float(np.std(np.log(values)))
        assert log_std == pytest.approx(0.10, rel=0.2)


class TestMonteCarloModels:
    def test_population_size_and_reproducibility(self):
        a = monte_carlo_models("N1.2-6D", 10, seed=7)
        b = monte_carlo_models("N1.2-6D", 10, seed=7)
        assert len(a.models) == 10
        np.testing.assert_array_equal(a.parameter_values("IS"),
                                      b.parameter_values("IS"))

    def test_different_seeds_differ(self):
        a = monte_carlo_models("N1.2-6D", 5, seed=7)
        b = monte_carlo_models("N1.2-6D", 5, seed=8)
        assert not np.array_equal(a.parameter_values("IS"),
                                  b.parameter_values("IS"))

    def test_spreads_reflect_variation(self):
        population = monte_carlo_models("N1.2-6D", 120, seed=9)
        # sheet-resistance-driven RB spreads near sigma_sheet
        assert 0.03 < population.spread("RB") < 0.20
        # capacitances are tighter than currents
        assert population.spread("CJE") < population.spread("IS")

    def test_every_sample_is_simulatable(self):
        from repro.devices import ft_at_ic

        population = monte_carlo_models("N1.2-6D", 10, seed=10)
        for model in population.models:
            assert ft_at_ic(model, 1e-3).ft > 1e9

    def test_rejects_empty_population(self):
        with pytest.raises(GeometryError):
            monte_carlo_models("N1.2-6D", 0)


class TestImageRejectionYield:
    def test_tight_matching_high_yield(self):
        tight = MismatchSpec(phase_error_sigma_deg=0.3,
                             gain_error_sigma=0.003)
        report = monte_carlo_image_rejection(500, tight, irr_spec_db=30.0)
        assert report.yield_fraction > 0.95

    def test_loose_matching_low_yield(self):
        loose = MismatchSpec(phase_error_sigma_deg=4.0,
                             gain_error_sigma=0.06)
        report = monte_carlo_image_rejection(500, loose, irr_spec_db=30.0)
        assert report.yield_fraction < 0.6

    def test_yield_monotone_in_spec(self):
        mismatch = MismatchSpec()
        easy = monte_carlo_image_rejection(400, mismatch, irr_spec_db=20.0)
        hard = monte_carlo_image_rejection(400, mismatch, irr_spec_db=40.0)
        assert easy.yield_fraction >= hard.yield_fraction

    def test_report_statistics(self):
        report = monte_carlo_image_rejection(300, MismatchSpec(),
                                             irr_spec_db=30.0)
        assert report.samples == 300
        assert len(report.values) == 300
        assert report.percentile(5) <= report.percentile(95)
        assert report.std > 0.0

    def test_reproducible(self):
        a = monte_carlo_image_rejection(100, seed=5)
        b = monte_carlo_image_rejection(100, seed=5)
        assert a.values == b.values

    def test_rejects_empty(self):
        with pytest.raises(GeometryError):
            monte_carlo_image_rejection(0)

"""Tests for the model parameter generator (paper Fig. 10) and the
area-factor baseline it improves on."""

import pytest

from repro.devices import peak_ft
from repro.errors import GeometryError
from repro.geometry import (
    FIG9_SHAPES,
    AreaFactorScaler,
    ModelParameterGenerator,
    TransistorShape,
    model_name_for_shape,
)
from repro.spice import Circuit, parse_deck
from repro.spice.elements import BJT, Resistor, VoltageSource


class TestCalibration:
    def test_reference_shape_reproduced_exactly(self, generator, reference):
        """The anchor property: generating the reference shape returns the
        measured parameters."""
        generated = generator.generate(reference.shape)
        measured = reference.parameters
        for key in ("IS", "BF", "ISE", "IKF", "CJE", "CJC", "CJS",
                    "RB", "RE", "RC", "TF"):
            assert getattr(generated, key) == pytest.approx(
                getattr(measured, key), rel=1e-9
            ), key

    def test_nongeometric_parameters_copied(self, generator, reference):
        generated = generator.generate("N1.2-24D")
        for key in ("NF", "NE", "VJE", "MJE", "VJC", "MJC", "XTF", "PTF"):
            assert getattr(generated, key) == getattr(
                reference.parameters, key
            ), key

    def test_uncalibrated_generator_works(self, uncalibrated_generator):
        params = uncalibrated_generator.generate("N1.2-6D")
        assert params.IS > 0
        assert params.RB > 0


class TestGeometryScaling:
    def test_is_scales_superlinearly_for_strips(self, generator):
        """IS has a perimeter part: splitting one emitter into two strips
        of half length increases IS slightly (same area, more perimeter)."""
        single = generator.generate("N1.2-6S")
        split = generator.generate("N1.2x2-6S")
        assert split.IS > single.IS

    def test_rb_drops_with_second_base_stripe(self, generator):
        single = generator.generate("N1.2-6S")
        double = generator.generate("N1.2-6D")
        assert double.RB < single.RB / 2.0

    def test_doubling_length_halves_resistances(self, generator):
        d6 = generator.generate("N1.2-6D")
        d12 = generator.generate("N1.2-12D")
        assert d12.RB == pytest.approx(d6.RB / 2, rel=0.01)
        assert d12.RE == pytest.approx(d6.RE / 2, rel=0.01)

    def test_ikf_proportional_to_area(self, generator):
        d6 = generator.generate("N1.2-6D")
        d24 = generator.generate("N1.2-24D")
        assert d24.IKF == pytest.approx(4 * d6.IKF, rel=1e-6)

    def test_cjc_not_proportional_to_emitter_area(self, generator):
        """CJC follows the *base* geometry: doubling the emitter area
        does not double CJC (fixed overheads shrink relatively)."""
        d6 = generator.generate("N1.2-6D")
        d12 = generator.generate("N1.2-12D")
        assert d12.CJC < 2 * d6.CJC
        assert d12.CJC > d6.CJC

    def test_fig9_peak_current_ordering(self, generator):
        """The paper's Fig. 9 message: the collector current giving peak
        fT grows with emitter size."""
        peaks = [
            peak_ft(generator.generate(name), 1e-4, 5e-2, points=61).ic
            for name in FIG9_SHAPES
        ]
        assert peaks == sorted(peaks)
        assert peaks[-1] > 5 * peaks[0]


class TestAgainstAreaFactorBaseline:
    def test_same_result_for_pure_area_ratio_is_not_true(self, generator,
                                                         reference):
        """For N1.2-12D (area exactly 2x the reference) the baseline and
        the geometry generator agree on IKF but disagree on CJC and RB —
        the paper's Section 4 complaint, quantified."""
        scaler = AreaFactorScaler(reference=reference)
        geo = generator.generate("N1.2-12D")
        af = scaler.generate("N1.2-12D")
        assert scaler.area_factor("N1.2-12D") == pytest.approx(2.0)
        assert geo.IKF == pytest.approx(af.IKF, rel=0.01)
        assert geo.CJC < af.CJC * 0.95  # baseline overestimates CJC
        assert geo.CJE < af.CJE  # perimeter fraction shrinks

    def test_topology_change_invisible_to_baseline(self, generator,
                                                   reference):
        """N1.2-6S vs N1.2-6D have the same emitter area, so the baseline
        gives them identical parameters — but RB really differs by ~3x."""
        scaler = AreaFactorScaler(reference=reference)
        af_s = scaler.generate("N1.2-6S")
        af_d = scaler.generate("N1.2-6D")
        assert af_s.RB == pytest.approx(af_d.RB)
        geo_s = generator.generate("N1.2-6S")
        geo_d = generator.generate("N1.2-6D")
        assert geo_s.RB > 2.5 * geo_d.RB


class TestDeckEmission:
    def test_model_name_sanitized(self):
        shape = TransistorShape.from_name("N1.2x2-6D")
        name = model_name_for_shape(shape)
        assert name == "QN1P2X2_6D"

    def test_model_card_parses(self, generator):
        card = generator.model_card("N1.2-12D")
        deck = parse_deck("t\n" + card + "\nV1 a 0 1\nR1 a 0 1k\n.END\n")
        assert "QN1P2_12D" in deck.models

    def test_model_library(self, generator):
        library = generator.model_library(FIG9_SHAPES)
        assert library.count(".MODEL") == len(FIG9_SHAPES)

    def test_generated_model_simulates(self, generator):
        model = generator.generate("N1.2-12D")
        ckt = Circuit("gen")
        ckt.add(VoltageSource("VCC", ("vcc", "0"), dc=5.0))
        ckt.add(VoltageSource("VB", ("b", "0"), dc=0.8))
        ckt.add(Resistor("RC", ("vcc", "c"), 1e3))
        ckt.add(BJT("Q1", ("c", "b", "0"), model))
        from repro.spice import Simulator

        result = Simulator(ckt).operating_point()
        assert result.voltage("c") < 5.0


class TestApplyShapes:
    def test_apply_shapes_rebuilds_instances(self, generator, hf_model):
        ckt = Circuit("apply")
        ckt.add(VoltageSource("VB", ("b", "0"), dc=0.7))
        ckt.add(BJT("Q1", ("b", "b", "0"), hf_model))
        generator.apply_shapes(ckt, {"Q1": "N1.2-24D"})
        q = ckt.element("Q1")
        assert q.model.name == "QN1P2_24D"

    def test_apply_shapes_rejects_non_bjt(self, generator):
        ckt = Circuit("bad")
        ckt.add(VoltageSource("V1", ("a", "0"), dc=1.0))
        ckt.add(Resistor("R1", ("a", "0"), 1e3))
        with pytest.raises(GeometryError):
            generator.apply_shapes(ckt, {"R1": "N1.2-6D"})


class TestSiliconSpread:
    def test_reference_differs_from_nominal(self, reference,
                                            uncalibrated_generator):
        """The 'measured' reference is off the nominal process prediction
        (that's why calibration exists)."""
        nominal = uncalibrated_generator.generate(reference.shape)
        assert abs(reference.parameters.IS / nominal.IS - 1.0) > 1e-3
        assert abs(reference.parameters.RB / nominal.RB - 1.0) > 1e-3

"""Tests for transistor shapes and the paper's shape-name codec."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import GeometryError
from repro.geometry import (
    FIG8_SHAPES,
    FIG9_SHAPES,
    TABLE1_SHAPES,
    TransistorShape,
)


class TestPaperShapes:
    """The exact shapes of the paper's Fig. 8 captions."""

    def test_n1_2_6s(self):
        s = TransistorShape.from_name("N1.2-6S")
        assert s.emitter_width == 1.2
        assert s.emitter_length == 6.0
        assert s.emitter_strips == 1
        assert s.base_stripes == 1

    def test_n1_2_6d(self):
        s = TransistorShape.from_name("N1.2-6D")
        assert s.base_stripes == 2
        assert s.emitter_area == pytest.approx(7.2)

    def test_n2_4_6d(self):
        s = TransistorShape.from_name("N2.4-6D")
        assert s.emitter_width == 2.4
        assert s.emitter_area == pytest.approx(14.4)

    def test_double_emitter_keeps_total_area(self):
        """Fig. 8(d): 'Double emitter, single base (same emitter size as
        (a))' — total area equals the single-strip sibling."""
        single = TransistorShape.from_name("N1.2-6S")
        double = TransistorShape.from_name("N1.2x2-6S")
        assert double.emitter_strips == 2
        assert double.emitter_length == pytest.approx(3.0)
        assert double.emitter_area == pytest.approx(single.emitter_area)

    def test_n1_2_12d(self):
        s = TransistorShape.from_name("N1.2-12D")
        assert s.total_emitter_length == 12.0
        assert s.emitter_area == pytest.approx(14.4)

    def test_triple_base(self):
        s = TransistorShape.from_name("N1.2x2-6T")
        assert s.base_stripes == 3
        assert s.emitter_strips == 2

    def test_all_figure_sets_parse(self):
        for name in list(FIG8_SHAPES.values()) + list(FIG9_SHAPES) + list(
            TABLE1_SHAPES
        ):
            shape = TransistorShape.from_name(name)
            assert shape.emitter_area > 0


class TestCodec:
    @pytest.mark.parametrize("name", [
        "N1.2-6S", "N1.2-6D", "N2.4-6D", "N1.2x2-6S", "N1.2-12D",
        "N1.2x2-6T", "N1.2-48D", "N0.8x4-16Q",
    ])
    def test_roundtrip(self, name):
        shape = TransistorShape.from_name(name)
        assert shape.name.upper() == name.upper()
        assert TransistorShape.from_name(shape.name) == shape

    @given(
        width=st.sampled_from([0.8, 1.2, 1.6, 2.4]),
        strips=st.integers(min_value=1, max_value=4),
        length_per_strip=st.sampled_from([2.0, 3.0, 6.0, 12.0, 24.0]),
        stripes=st.integers(min_value=1, max_value=4),
    )
    def test_roundtrip_property(self, width, strips, length_per_strip,
                                stripes):
        if stripes > strips + 1:
            stripes = strips + 1
        shape = TransistorShape(width, length_per_strip, strips, stripes)
        assert TransistorShape.from_name(shape.name) == shape

    @pytest.mark.parametrize("bad", [
        "", "N-6D", "1.2-6D", "N1.2-6", "N1.2-6X", "N1.2x-6D", "Nx2-6D",
        "P1.2-6D", "N1.2-6DD",
    ])
    def test_rejects_malformed(self, bad):
        with pytest.raises(GeometryError):
            TransistorShape.from_name(bad)


class TestGeometryDerived:
    def test_area_and_perimeter(self):
        s = TransistorShape(1.2, 6.0)
        assert s.emitter_area == pytest.approx(7.2)
        assert s.emitter_perimeter == pytest.approx(2 * (1.2 + 6.0))

    def test_multi_strip_perimeter_exceeds_single(self):
        """Splitting the same area into strips raises P/A — the effect
        area-factor scaling cannot represent."""
        single = TransistorShape.from_name("N1.2-6S")
        double = TransistorShape.from_name("N1.2x2-6S")
        assert double.emitter_perimeter > single.emitter_perimeter
        assert double.perimeter_to_area > single.perimeter_to_area

    def test_double_base_sides(self):
        assert TransistorShape.from_name("N1.2-6S").double_base_sides() == 1
        assert TransistorShape.from_name("N1.2-6D").double_base_sides() == 2
        assert TransistorShape.from_name("N1.2x2-6S").double_base_sides() == 2
        assert TransistorShape.from_name("N1.2x2-6T").double_base_sides() == 4

    def test_scaled_length(self):
        s = TransistorShape(1.2, 6.0).scaled_length(2.0)
        assert s.emitter_length == 12.0
        with pytest.raises(GeometryError):
            s.scaled_length(0.0)


class TestValidation:
    @pytest.mark.parametrize("kwargs", [
        {"emitter_width": 0.0, "emitter_length": 6.0},
        {"emitter_width": 1.2, "emitter_length": -1.0},
        {"emitter_width": 1.2, "emitter_length": 6.0, "emitter_strips": 0},
        {"emitter_width": 1.2, "emitter_length": 6.0, "base_stripes": 0},
        # 4 base stripes cannot interleave a single emitter strip
        {"emitter_width": 1.2, "emitter_length": 6.0, "emitter_strips": 1,
         "base_stripes": 4},
    ])
    def test_rejects_bad_shapes(self, kwargs):
        with pytest.raises(GeometryError):
            TransistorShape(**kwargs)

    def test_immutability(self):
        s = TransistorShape(1.2, 6.0)
        with pytest.raises(Exception):
            s.emitter_width = 2.0

"""Tests of the layout arithmetic: resistances, areas, monotonicity."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import GeometryError
from repro.geometry import (
    MaskDesignRules,
    ProcessData,
    TransistorShape,
    base_contact_resistance,
    collector_resistance,
    emitter_resistance,
    extrinsic_base_resistance,
    intrinsic_base_resistance,
    layout_report,
    xcjc_fraction,
)


@pytest.fixture(scope="module")
def shapes():
    return {name: TransistorShape.from_name(name) for name in (
        "N1.2-6S", "N1.2-6D", "N2.4-6D", "N1.2x2-6S", "N1.2-12D",
        "N1.2-24D", "N1.2x2-6T",
    )}


class TestIntrinsicBaseResistance:
    def test_double_base_is_quarter_of_single(self, shapes, process):
        """One-sided W/3L vs two-sided W/12L: exactly 4x at equal shape."""
        single = intrinsic_base_resistance(shapes["N1.2-6S"], process)
        double = intrinsic_base_resistance(shapes["N1.2-6D"], process)
        assert single == pytest.approx(4 * double, rel=1e-9)

    def test_longer_emitter_lowers_rb(self, shapes, process):
        assert intrinsic_base_resistance(shapes["N1.2-12D"], process) < (
            intrinsic_base_resistance(shapes["N1.2-6D"], process)
        )

    def test_wider_emitter_raises_rb(self, shapes, process):
        assert intrinsic_base_resistance(shapes["N2.4-6D"], process) > (
            intrinsic_base_resistance(shapes["N1.2-6D"], process)
        )

    def test_closed_form(self, process):
        shape = TransistorShape(1.2, 6.0, 1, 2)
        expected = process.rsb_intrinsic * 1.2 / (12 * 6.0)
        assert intrinsic_base_resistance(shape, process) == pytest.approx(
            expected
        )

    @settings(max_examples=40, deadline=None)
    @given(factor=st.floats(min_value=1.1, max_value=8.0))
    def test_monotone_in_length(self, process, factor):
        base = TransistorShape(1.2, 4.0, 1, 2)
        longer = base.scaled_length(factor)
        assert intrinsic_base_resistance(longer, process) < (
            intrinsic_base_resistance(base, process)
        )


class TestOtherResistances:
    def test_re_inverse_in_area(self, shapes, process):
        re_small = emitter_resistance(shapes["N1.2-6D"], process)
        re_large = emitter_resistance(shapes["N1.2-12D"], process)
        assert re_small == pytest.approx(2 * re_large, rel=1e-9)

    def test_contact_resistance_parallel_in_stripes(self, shapes, process):
        single = base_contact_resistance(shapes["N1.2-6S"], process)
        double = base_contact_resistance(shapes["N1.2-6D"], process)
        assert single == pytest.approx(2 * double, rel=1e-9)

    def test_collector_resistance_falls_with_area(self, shapes, rules,
                                                  process):
        assert collector_resistance(shapes["N1.2-12D"], rules, process) < (
            collector_resistance(shapes["N1.2-6D"], rules, process)
        )

    def test_extrinsic_shared_over_flanks(self, shapes, rules, process):
        one_flank = extrinsic_base_resistance(shapes["N1.2-6S"], rules,
                                              process)
        two_flanks = extrinsic_base_resistance(shapes["N1.2-6D"], rules,
                                               process)
        assert one_flank == pytest.approx(2 * two_flanks, rel=1e-9)


class TestJunctionGeometry:
    def test_base_area_exceeds_emitter_area(self, shapes, rules):
        for shape in shapes.values():
            assert rules.base_area(shape) > shape.emitter_area

    def test_collector_area_exceeds_base_area(self, shapes, rules):
        for shape in shapes.values():
            assert rules.collector_area(shape) > rules.base_area(shape)

    def test_more_stripes_widen_base(self, shapes, rules):
        assert rules.base_width(shapes["N1.2-6D"]) > rules.base_width(
            shapes["N1.2-6S"]
        )

    def test_xcjc_in_unit_interval(self, shapes, rules):
        for shape in shapes.values():
            assert 0.0 < xcjc_fraction(shape, rules) < 1.0

    def test_xcjc_smaller_with_more_stripes(self, shapes, rules):
        """Extra contact stripes add extrinsic B-C area."""
        assert xcjc_fraction(shapes["N1.2-6D"], rules) < xcjc_fraction(
            shapes["N1.2-6S"], rules
        )


class TestLayoutReport:
    def test_report_consistency(self, shapes, rules, process):
        report = layout_report(shapes["N1.2-6D"], rules, process)
        assert report.emitter_area == pytest.approx(7.2)
        assert report.rb_total == pytest.approx(
            report.rb_intrinsic + report.rb_extrinsic + report.rb_contact
        )
        assert report.rb_minimum < report.rb_total
        assert report.rb_minimum == pytest.approx(
            report.rb_extrinsic + report.rb_contact
        )

    def test_defaults_used_when_omitted(self, shapes):
        report = layout_report(shapes["N1.2-6D"])
        assert report.rb_total > 0

    def test_min_feature_enforced(self, rules, process):
        tiny = TransistorShape(0.3, 6.0)
        with pytest.raises(GeometryError):
            layout_report(tiny, rules, process)


class TestDesignRuleValidation:
    def test_rejects_nonpositive_rules(self):
        with pytest.raises(GeometryError):
            MaskDesignRules(base_contact_width=0.0)

    def test_rejects_bad_process(self):
        with pytest.raises(GeometryError):
            ProcessData(rsb_intrinsic=-1.0)
        with pytest.raises(GeometryError):
            ProcessData(tf=0.0)

"""Tests for the operating-current-driven shape selector."""

import pytest

from repro.errors import GeometryError
from repro.geometry import (
    TABLE1_SHAPES,
    ShapeSelection,
    TransistorShape,
    current_for_shape,
    shape_for_current,
)


class TestShapeForCurrent:
    def test_table1_winner_reproduced(self, generator):
        """At the Table 1 ring's operating current the static selector
        agrees with the transient experiment: N1.2-12D wins among the
        Fig. 8 shapes."""
        selection = shape_for_current(4e-3, generator,
                                      candidates=TABLE1_SHAPES)
        assert selection.best.name == "N1.2-12D"

    def test_single_base_shapes_ranked_last(self, generator):
        selection = shape_for_current(4e-3, generator,
                                      candidates=TABLE1_SHAPES)
        names = [s.name for s in selection.scores]
        assert set(names[-2:]) == {"N1.2-6S", "N1.2x2-6S"}

    def test_small_current_prefers_small_device(self, generator):
        low = shape_for_current(0.3e-3, generator)
        high = shape_for_current(10e-3, generator)
        low_area = low.best.shape.emitter_area
        high_area = high.best.shape.emitter_area
        assert high_area > low_area

    def test_ft_only_mode(self, generator):
        """With loading_weight=0 the ranking is by raw fT at Ic."""
        selection = shape_for_current(4e-3, generator, loading_weight=0.0)
        fts = [s.ft for s in selection.scores]
        assert fts == sorted(fts, reverse=True)

    def test_scores_carry_consistent_fields(self, generator):
        selection = shape_for_current(2e-3, generator,
                                      candidates=("N1.2-6D", "N1.2-12D"))
        for score in selection.scores:
            assert score.total_delay == pytest.approx(
                1.0 / score.figure_of_merit
            )
            assert score.ft > 0 and score.rb_delay > 0

    def test_accepts_shape_objects(self, generator):
        shape = TransistorShape.from_name("N1.2-12D")
        selection = shape_for_current(2e-3, generator, candidates=(shape,))
        assert selection.best.shape == shape

    def test_table_rendering(self, generator):
        selection = shape_for_current(4e-3, generator,
                                      candidates=TABLE1_SHAPES)
        text = selection.table()
        assert "N1.2-12D" in text
        assert "rank" in text

    def test_validation(self, generator):
        with pytest.raises(GeometryError):
            shape_for_current(0.0, generator)
        with pytest.raises(GeometryError):
            shape_for_current(1e-3, generator, candidates=())
        with pytest.raises(GeometryError):
            shape_for_current(1e-3, generator, loading_weight=-1.0)


class TestCurrentForShape:
    def test_matches_peak_ft_current(self, generator):
        from repro.devices import peak_ft

        ic = current_for_shape("N1.2-12D", generator)
        expected = peak_ft(generator.generate("N1.2-12D"),
                           1e-5, 5e-2, points=81).ic
        assert ic == pytest.approx(expected, rel=1e-9)

    def test_scales_with_area(self, generator):
        small = current_for_shape("N1.2-6D", generator)
        large = current_for_shape("N1.2-24D", generator)
        assert large > 2.5 * small

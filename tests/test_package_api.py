"""Public-API hygiene: every exported name exists and is documented."""

import importlib
import inspect

import pytest

PUBLIC_PACKAGES = (
    "repro",
    "repro.spice",
    "repro.spice.elements",
    "repro.devices",
    "repro.geometry",
    "repro.measurement",
    "repro.ahdl",
    "repro.behavioral",
    "repro.rfsystems",
    "repro.celldb",
    "repro.core",
    "repro.sweep",
    "repro.optimize",
)


@pytest.mark.parametrize("package_name", PUBLIC_PACKAGES)
def test_all_names_resolve(package_name):
    package = importlib.import_module(package_name)
    exported = getattr(package, "__all__", None)
    assert exported, f"{package_name} must define __all__"
    for name in exported:
        assert hasattr(package, name), f"{package_name}.{name} missing"


@pytest.mark.parametrize("package_name", PUBLIC_PACKAGES)
def test_package_docstrings(package_name):
    package = importlib.import_module(package_name)
    assert package.__doc__ and package.__doc__.strip(), (
        f"{package_name} needs a module docstring"
    )


@pytest.mark.parametrize("package_name", PUBLIC_PACKAGES)
def test_public_callables_documented(package_name):
    """Every exported class and function carries a docstring."""
    package = importlib.import_module(package_name)
    undocumented = []
    for name in getattr(package, "__all__", ()):
        obj = getattr(package, name)
        if inspect.isclass(obj) or inspect.isfunction(obj):
            if not (obj.__doc__ and obj.__doc__.strip()):
                undocumented.append(name)
    assert not undocumented, (
        f"{package_name}: undocumented public items {undocumented}"
    )


def test_public_methods_documented_on_key_classes():
    """Spot-check the workhorse classes: public methods have docstrings."""
    from repro.behavioral import Spectrum, SystemModel
    from repro.celldb import AnalogCellDatabase
    from repro.geometry import ModelParameterGenerator
    from repro.spice import Circuit, Simulator

    for cls in (Circuit, Simulator, Spectrum, SystemModel,
                AnalogCellDatabase, ModelParameterGenerator):
        for name, member in inspect.getmembers(cls):
            if name.startswith("_"):
                continue
            if inspect.isfunction(member):
                assert member.__doc__ and member.__doc__.strip(), (
                    f"{cls.__name__}.{name} needs a docstring"
                )


def test_version_string():
    import repro

    assert repro.__version__.count(".") == 2

"""Tests for the top-down flow manager — the paper's Section 2 workflow
run end to end on the image-rejection tuner."""

import pytest

from repro.ahdl import ir_mixer_module
from repro.behavioral import Amplifier, BandpassFilter, Mixer, Spectrum, tone
from repro.celldb import seed_database
from repro.core import (
    Comparison,
    Design,
    DesignBlock,
    FlowPhase,
    Specification,
    SpecificationSet,
    TopDownFlow,
)
from repro.errors import DesignError
from repro.rfsystems import FrequencyPlan, required_matching

RF = 400e6
PLAN = FrequencyPlan()


def build_flow(with_db=True):
    """A three-block top-down tuner: front end, 1st-IF filter, IR mixer."""
    design = Design("ir_tuner")
    system_specs = SpecificationSet("system", [
        Specification("image_rejection_db", 30.0, Comparison.AT_LEAST,
                      unit="dB"),
    ])
    db = seed_database() if with_db else None
    flow = TopDownFlow(design, system_specs, cell_database=db)

    flow.describe_block(
        DesignBlock(
            name="front_end",
            behavioral=Amplifier("front_end", gain_db=15.0),
            source_cell="RF-AGC-AMP" if with_db else None,
        ),
        inputs=["rf"], outputs=["rf_amp"],
    )
    flow.describe_block(
        DesignBlock(name="mix1",
                    behavioral=Mixer("mix1", PLAN.up_lo(RF),
                                     conversion_gain_db=0.0)),
        inputs=["rf_amp"], outputs=["if1_raw"],
    )
    flow.describe_block(
        DesignBlock(name="if1_bpf",
                    behavioral=BandpassFilter("if1_bpf", PLAN.first_if,
                                              60e6, 3)),
        inputs=["if1_raw"], outputs=["if1"],
    )
    flow.describe_block(
        DesignBlock(
            name="ir_mixer",
            behavioral=ir_mixer_module().instantiate(
                "ir_mixer", lo_freq=PLAN.down_lo,
                if_phase_err=2.0, gain_err=0.01,
            ),
        ),
        inputs={"IF1": "if1"}, outputs={"IF2": "if2"},
    )
    return flow


def measure_irr(nets) -> dict:
    # caller runs wanted and image separately; here we run both-at-once
    # with distinguishable amplitudes instead
    raise NotImplementedError


def irr_measure_factory(flow):
    """Build a measure() that reruns the elaborated system for wanted and
    image channels and reports the ratio."""

    def measure(_nets):
        system = flow.design.elaborate()
        wanted = system.run({"rf": tone(RF, 1e-3)})["if2"]
        image = system.run(
            {"rf": tone(PLAN.rf_image(RF), 1e-3)}
        )["if2"]
        irr = 20.0
        wanted_amp = wanted.amplitude(PLAN.second_if)
        image_amp = image.amplitude(PLAN.second_if)
        import math

        irr = (math.inf if image_amp == 0
               else 20 * math.log10(wanted_amp / image_amp))
        return {"image_rejection_db": irr}

    return measure


class TestAnalyze:
    def test_behavioral_analysis_measures_irr(self):
        flow = build_flow()
        measurements = flow.analyze({"rf": tone(RF, 1e-3)},
                                    irr_measure_factory(flow))
        assert measurements["image_rejection_db"] > 30.0
        assert any(e.phase is FlowPhase.ANALYZE for e in flow.log)


class TestBudget:
    def test_budget_from_fig5(self):
        """Derive the phase spec from the 30 dB requirement, exactly as
        the paper describes reading Fig. 5."""
        flow = build_flow()
        phase_budget = required_matching(30.0, gain_error=0.01)
        spec = flow.budget_spec(
            "ir_mixer",
            Specification("phase_error_deg", phase_budget,
                          Comparison.AT_MOST, unit="deg"),
            rationale="Fig. 5: 30 dB IRR at 1% gain balance",
        )
        assert flow.design.block("ir_mixer").specs.get(
            "phase_error_deg"
        ) is spec
        assert any(e.phase is FlowPhase.BUDGET for e in flow.log)

    def test_budget_unknown_block(self):
        flow = build_flow()
        with pytest.raises(DesignError):
            flow.budget_spec("nope", Specification("x", 1.0), "because")


class TestImplement:
    def test_implement_from_cell_bumps_counter(self):
        flow = build_flow()
        deck = flow.cell_database.get("DNMIX-45").schematic
        before = flow.cell_database.get("DNMIX-45").reuse_count
        flow.implement_block("ir_mixer", deck, from_cell="DNMIX-45")
        assert flow.cell_database.get("DNMIX-45").reuse_count == before + 1
        assert flow.design.block("ir_mixer").is_reused
        assert flow.design.block("ir_mixer").has_transistor_view

    def test_implement_without_database(self):
        flow = build_flow(with_db=False)
        with pytest.raises(DesignError):
            flow.implement_block("ir_mixer", "deck", from_cell="DNMIX-45")
        flow.implement_block("ir_mixer", "x\nR1 a 0 1\nV1 a 0 1\n.END")
        assert flow.design.block("ir_mixer").has_transistor_view


class TestVerify:
    def test_behavioral_verification_passes(self):
        flow = build_flow()
        report = flow.verify({"rf": tone(RF, 1e-3)},
                             irr_measure_factory(flow))
        assert report.passed
        assert report.level_by_block["ir_mixer"] == "behavioral"

    def test_failing_spec_detected(self):
        flow = build_flow()
        flow.system_specs.add(
            Specification("impossible_db", 1000.0, Comparison.AT_LEAST)
        )
        report = flow.verify({"rf": tone(RF, 1e-3)},
                             irr_measure_factory(flow))
        assert not report.passed

    def test_levels_restored_after_verify(self):
        import numpy as np
        from repro.core import CharacterizedLinearBlock
        from repro.core.mixed_level import CharacterizationResult

        flow = build_flow()
        block = flow.design.block("front_end")
        block.characterized = CharacterizedLinearBlock(
            "front_end",
            CharacterizationResult(np.array([1e6]),
                                   np.array([5.0 + 0j])),
        )
        report = flow.verify({"rf": tone(RF, 1e-3)},
                             irr_measure_factory(flow),
                             transistor_blocks=["front_end"])
        assert report.level_by_block["front_end"] == "transistor"
        from repro.core import ViewLevel

        assert block.level is ViewLevel.BEHAVIORAL  # restored


class TestAudit:
    def test_reuse_statistics(self):
        flow = build_flow()
        stats = flow.reuse_statistics()
        assert stats.total_blocks == 4
        assert stats.reused_blocks == 1

    def test_reuse_without_database(self):
        flow = build_flow(with_db=False)
        with pytest.raises(DesignError):
            flow.reuse_statistics()

    def test_log_formatting(self):
        flow = build_flow()
        text = flow.format_log()
        assert "describe" in text
        assert "front_end" in text

"""Tests for the design hierarchy with selectable views."""

import pytest

from repro.behavioral import Amplifier, tone
from repro.core import Design, DesignBlock, ViewLevel
from repro.core.mixed_level import CharacterizedLinearBlock
from repro.errors import DesignError


def behavioral_amp(name, gain_db=10.0):
    return Amplifier(name, gain_db=gain_db)


def make_block(name="amp", **kwargs):
    return DesignBlock(name=name, behavioral=behavioral_amp(name), **kwargs)


class TestDesignBlock:
    def test_defaults(self):
        block = make_block()
        assert block.level is ViewLevel.BEHAVIORAL
        assert not block.is_reused
        assert not block.has_transistor_view
        assert block.specs.owner == "amp"

    def test_reuse_flag(self):
        block = make_block(source_cell="RF-AGC-AMP")
        assert block.is_reused

    def test_select_transistor_requires_characterization(self):
        block = make_block()
        with pytest.raises(DesignError):
            block.select(ViewLevel.TRANSISTOR)

    def test_active_block_switches(self):
        block = make_block()
        assert block.active_block() is block.behavioral
        from repro.core.mixed_level import CharacterizationResult
        import numpy as np

        block.characterized = CharacterizedLinearBlock(
            "amp", CharacterizationResult(
                np.array([1e6]), np.array([2.0 + 0j])
            )
        )
        block.select(ViewLevel.TRANSISTOR)
        assert block.active_block() is block.characterized


class TestDesign:
    def _design(self):
        design = Design("tuner")
        design.add_block(make_block("a", ), inputs=["in"], outputs=["mid"])
        design.add_block(make_block("b"), inputs=["mid"], outputs=["out"])
        return design

    def test_elaborate_and_run(self):
        design = self._design()
        system = design.elaborate()
        nets = system.run({"in": tone(1e6, 0.1)})
        assert nets["out"].amplitude(1e6) == pytest.approx(1.0)  # 20 dB

    def test_duplicate_block(self):
        design = self._design()
        with pytest.raises(DesignError):
            design.add_block(make_block("a"), inputs=["x"], outputs=["y"])

    def test_block_lookup(self):
        design = self._design()
        assert design.block("a").name == "a"
        with pytest.raises(DesignError):
            design.block("zz")

    def test_reuse_map(self):
        design = Design("d")
        design.add_block(make_block("new"), inputs=["a"], outputs=["b"])
        design.add_block(make_block("old", source_cell="ACC1"),
                         inputs=["b"], outputs=["c"])
        assert design.reuse_map() == {"new": None, "old": "ACC1"}

    def test_elaborate_respects_levels(self):
        import numpy as np
        from repro.core.mixed_level import CharacterizationResult

        design = self._design()
        # characterize block "a" as a flat x4 response
        design.block("a").characterized = CharacterizedLinearBlock(
            "a", CharacterizationResult(np.array([1e6]),
                                        np.array([4.0 + 0j]))
        )
        design.select_level("a", ViewLevel.TRANSISTOR)
        nets = design.elaborate().run({"in": tone(1e6, 0.1)})
        # 4x from the characterized view, 10 dB from block b
        expected = 0.1 * 4.0 * 10 ** 0.5
        assert nets["out"].amplitude(1e6) == pytest.approx(expected,
                                                           rel=1e-6)

"""Tests for specifications and spec sets."""

import math

import pytest

from repro.core import Comparison, Specification, SpecificationSet
from repro.errors import DesignError


class TestSpecification:
    def test_at_least(self):
        spec = Specification("irr", 30.0, Comparison.AT_LEAST, unit="dB")
        assert spec.satisfied_by(30.0)
        assert spec.satisfied_by(62.0)
        assert not spec.satisfied_by(29.9)

    def test_at_most(self):
        spec = Specification("nf", 6.0, Comparison.AT_MOST, unit="dB")
        assert spec.satisfied_by(5.0)
        assert not spec.satisfied_by(6.1)

    def test_within(self):
        spec = Specification("gain", 20.0, Comparison.WITHIN, tolerance=1.0)
        assert spec.satisfied_by(20.9)
        assert spec.satisfied_by(19.1)
        assert not spec.satisfied_by(21.5)

    def test_within_needs_tolerance(self):
        with pytest.raises(DesignError):
            Specification("g", 1.0, Comparison.WITHIN)

    def test_nan_fails(self):
        spec = Specification("x", 1.0)
        assert not spec.satisfied_by(math.nan)

    def test_describe(self):
        spec = Specification("irr", 30.0, Comparison.AT_LEAST, unit="dB")
        assert spec.describe() == "irr >= 30 dB"
        within = Specification("g", 2.0, Comparison.WITHIN, tolerance=0.5)
        assert "±" in within.describe()


class TestSpecificationSet:
    def test_add_and_iterate(self):
        specs = SpecificationSet("mixer")
        specs.add(Specification("gain", 0.0))
        specs.add(Specification("irr", 30.0))
        assert len(specs) == 2
        assert {s.name for s in specs} == {"gain", "irr"}

    def test_duplicate_rejected(self):
        specs = SpecificationSet("mixer")
        specs.add(Specification("gain", 0.0))
        with pytest.raises(DesignError):
            specs.add(Specification("gain", 1.0))

    def test_get(self):
        specs = SpecificationSet("mixer", [Specification("gain", 0.0)])
        assert specs.get("gain").target == 0.0
        with pytest.raises(DesignError):
            specs.get("missing")

    def test_check(self):
        specs = SpecificationSet("sys", [
            Specification("irr", 30.0),
            Specification("nf", 8.0, Comparison.AT_MOST),
        ])
        checks = specs.check({"irr": 35.0, "nf": 9.0})
        by_name = {c.spec.name: c for c in checks}
        assert by_name["irr"].passed
        assert not by_name["nf"].passed
        assert "PASS" in by_name["irr"].describe()
        assert "FAIL" in by_name["nf"].describe()

    def test_missing_measurement_fails(self):
        specs = SpecificationSet("sys", [Specification("irr", 30.0)])
        assert not specs.all_pass({})

    def test_all_pass(self):
        specs = SpecificationSet("sys", [Specification("irr", 30.0)])
        assert specs.all_pass({"irr": 31.0})

"""Tests for mixed-level (transistor-in-behavioral) simulation."""

import math

import numpy as np
import pytest

from repro.behavioral import SystemModel, tone
from repro.core import (
    CharacterizedLinearBlock,
    DesignBlock,
    characterize_block,
    characterize_linear,
)
from repro.behavioral import Amplifier
from repro.errors import DesignError

RC_DECK = """rc lowpass at 1.59 MHz
VIN in 0 DC 0
R1 in out 1k
C1 out 0 100p
.END
"""

CE_AMP_DECK = """one-transistor amplifier
.MODEL QA NPN(IS=4e-17 BF=100 RB=120 RE=3 RC=60 CJE=45f CJC=30f TF=9p)
VCC vcc 0 5
VIN b 0 DC 0.78
RC vcc c 1k
Q1 c b 0 QA
.END
"""


class TestCharacterizeLinear:
    def test_rc_response_matches_theory(self):
        freqs = np.geomspace(1e4, 1e8, 30)
        measured = characterize_linear(RC_DECK, "VIN", "out", freqs)
        rc = 1e3 * 100e-12
        for f in (1e5, 1 / (2 * math.pi * rc), 5e7):
            expected = 1 / (1 + 2j * math.pi * f * rc)
            got = measured.interpolate(f)
            assert abs(got) == pytest.approx(abs(expected), rel=0.05)

    def test_gain_and_phase_accessors(self):
        measured = characterize_linear(RC_DECK, "VIN", "out",
                                       np.geomspace(1e4, 1e8, 30))
        assert measured.gain_db_at(1e4) == pytest.approx(0.0, abs=0.1)
        assert measured.phase_deg_at(1 / (2 * math.pi * 1e3 * 100e-12)) == (
            pytest.approx(-45.0, abs=2.0)
        )

    def test_bjt_amplifier_characterizes(self):
        measured = characterize_linear(CE_AMP_DECK, "VIN", "c",
                                       np.geomspace(1e5, 1e10, 40))
        # inverting gain at low frequency, rolling off at GHz
        low = measured.interpolate(1e5)
        assert abs(low) > 5.0
        assert abs(measured.interpolate(1e10)) < abs(low)

    def test_rejects_non_source_input(self):
        with pytest.raises(DesignError):
            characterize_linear(RC_DECK, "R1", "out", [1e6])

    def test_rejects_empty_grid(self):
        with pytest.raises(DesignError):
            characterize_linear(RC_DECK, "VIN", "out", [])


class TestCharacterizedBlockInSystem:
    def test_block_replays_response(self):
        measured = characterize_linear(RC_DECK, "VIN", "out",
                                       np.geomspace(1e4, 1e8, 40))
        block = CharacterizedLinearBlock("rc", measured)
        system = SystemModel("mixed")
        system.add(block, inputs=["x"], outputs=["y"])
        f_pole = 1 / (2 * math.pi * 1e3 * 100e-12)
        nets = system.run({"x": tone(f_pole, 1.0)})
        assert nets["y"].amplitude(f_pole) == pytest.approx(
            1 / math.sqrt(2), rel=0.02
        )

    def test_characterize_block_installs_view(self):
        design_block = DesignBlock(
            name="rc",
            behavioral=Amplifier("rc", gain_db=0.0),
            transistor_deck=RC_DECK,
        )
        block = characterize_block(design_block, "VIN", "out",
                                   np.geomspace(1e4, 1e8, 20))
        assert design_block.characterized is block

    def test_characterize_block_requires_deck(self):
        design_block = DesignBlock(
            name="rc", behavioral=Amplifier("rc", gain_db=0.0)
        )
        with pytest.raises(DesignError):
            characterize_block(design_block, "VIN", "out", [1e6])


class TestBehavioralVsTransistorDelta:
    def test_ideal_vs_real_gain_difference(self):
        """The paper's motivation for mixed-level: the ideal behavioral
        block and its transistor implementation disagree, and the system
        shows by how much."""
        measured = characterize_linear(CE_AMP_DECK, "VIN", "c",
                                       np.geomspace(1e6, 1e9, 30))
        real_gain_db = measured.gain_db_at(10e6)
        ideal = Amplifier("amp", gain_db=30.0)  # the designer's wish
        # the realized stage falls short of the idealized 30 dB
        assert real_gain_db < 30.0
        assert real_gain_db > 10.0

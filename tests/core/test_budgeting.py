"""Tests for automatic spec allocation (budget step of the flow)."""

import math

import pytest

from repro.behavioral import cascade
from repro.core import (
    StagePlan,
    allocate_budget,
    allocate_iip3,
    allocate_noise_figure,
    hardest_stage,
)
from repro.errors import DesignError

TUNER_LINEUP = [
    StagePlan("rf_amp", gain_db=15.0, weight=1.0),
    StagePlan("mix1", gain_db=-6.0, weight=3.0),
    StagePlan("if1_bpf", gain_db=-2.0, weight=0.5),
    StagePlan("ir_mixer", gain_db=0.0, weight=3.0),
    StagePlan("if2_amp", gain_db=20.0, weight=2.0),
]


class TestNoiseAllocation:
    def test_roundtrip_meets_target_exactly(self):
        for target in (4.0, 6.0, 10.0):
            allocated = allocate_noise_figure(TUNER_LINEUP, target)
            achieved = cascade(allocated).nf_db
            assert achieved == pytest.approx(target, abs=1e-9)

    def test_first_stage_gets_the_tight_spec(self):
        allocated = allocate_noise_figure(TUNER_LINEUP, 6.0)
        by_name = {s.name: s for s in allocated}
        # equal weights would already favour the front; with the mixer
        # weighted heavier, the front stage must be cleanest of all
        assert hardest_stage(allocated).name == "rf_amp"
        assert by_name["rf_amp"].nf_db < by_name["ir_mixer"].nf_db

    def test_weights_steer_the_slack(self):
        light = [StagePlan("a", 10.0, weight=1.0),
                 StagePlan("b", 10.0, weight=1.0)]
        heavy_b = [StagePlan("a", 10.0, weight=1.0),
                   StagePlan("b", 10.0, weight=10.0)]
        nf_light = {s.name: s.nf_db
                    for s in allocate_noise_figure(light, 5.0)}
        nf_heavy = {s.name: s.nf_db
                    for s in allocate_noise_figure(heavy_b, 5.0)}
        assert nf_heavy["b"] > nf_light["b"]  # b got more slack
        assert nf_heavy["a"] < nf_light["a"]  # paid for by a

    def test_gain_ahead_loosens_later_stages(self):
        allocated = allocate_noise_figure(TUNER_LINEUP, 6.0)
        by_name = {s.name: s for s in allocated}
        # 27 dB of gain sits ahead of if2_amp: its NF may be huge
        assert by_name["if2_amp"].nf_db > by_name["rf_amp"].nf_db + 3

    def test_validation(self):
        with pytest.raises(DesignError):
            allocate_noise_figure([], 6.0)
        with pytest.raises(DesignError):
            allocate_noise_figure(TUNER_LINEUP, 0.0)
        with pytest.raises(DesignError):
            StagePlan("x", 0.0, weight=0.0)


class TestIP3Allocation:
    def test_roundtrip_meets_target_exactly(self):
        for target in (-15.0, -5.0, 5.0):
            allocated = allocate_iip3(TUNER_LINEUP, target)
            achieved = cascade(allocated).iip3_dbm
            assert achieved == pytest.approx(target, abs=1e-9)

    def test_back_end_needs_the_high_ip3(self):
        allocated = allocate_iip3(TUNER_LINEUP, -5.0)
        by_name = {s.name: s for s in allocated}
        # the stage behind the most gain carries the linearity burden
        assert by_name["if2_amp"].iip3_dbm > by_name["rf_amp"].iip3_dbm

    def test_validation(self):
        with pytest.raises(DesignError):
            allocate_iip3([], 0.0)


class TestJointAllocation:
    def test_both_targets_met(self):
        allocated, report = allocate_budget(TUNER_LINEUP, 6.0, -8.0)
        assert report.nf_db == pytest.approx(6.0, abs=1e-9)
        assert report.iip3_dbm == pytest.approx(-8.0, abs=1e-9)
        assert len(allocated) == len(TUNER_LINEUP)

    def test_gain_lineup_preserved(self):
        allocated, _ = allocate_budget(TUNER_LINEUP, 6.0, -8.0)
        for plan, stage in zip(TUNER_LINEUP, allocated):
            assert stage.gain_db == plan.gain_db
            assert stage.name == plan.name

    def test_hardest_stage_empty(self):
        with pytest.raises(DesignError):
            hardest_stage([])

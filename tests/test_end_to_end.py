"""End-to-end integration tests spanning the paper's three contributions.

Each test exercises a complete loop across several subsystems, e.g.
measure -> extract -> generate -> emit deck -> parse -> simulate.
"""

import math

import numpy as np
import pytest

from repro.ahdl import ir_mixer_module
from repro.celldb import seed_database
from repro.devices import ft_at_ic, peak_ft
from repro.geometry import (
    AreaFactorScaler,
    FIG9_SHAPES,
    ModelParameterGenerator,
    ReferenceTransistor,
    TransistorShape,
)
from repro.measurement import extract_parameters, measure_device
from repro.rfsystems import (
    FrequencyPlan,
    ImbalanceSpec,
    image_rejection_ratio_db,
    simulate_image_rejection_db,
)
from repro.spice import Simulator, parse_deck


class TestGeneratorToSimulatorLoop:
    """Fig. 10: shapes in, model cards out, SPICE run on the result."""

    def test_full_deck_from_generated_library(self, generator):
        deck_text = "generated CE stage\n"
        deck_text += generator.model_card("N1.2-12D") + "\n"
        deck_text += """VCC vcc 0 5
VB b 0 DC 0.8 AC 1
RC vcc c 1k
Q1 c b 0 QN1P2_12D
.OP
.AC DEC 10 1MEG 100G
.END
"""
        deck = parse_deck(deck_text)
        sim = Simulator(deck.circuit)
        op = sim.operating_point()
        dev = op.device_operating_point("Q1")
        assert dev.ic > 1e-4
        ac = sim.ac(1e6, 100e9, 5)
        gain = np.abs(ac.voltage("c"))
        assert gain[0] > 3.0
        assert gain[-1] < gain[0] / 10

    def test_circuit_level_ft_matches_device_level(self, generator):
        """fT from an AC sweep of the full circuit (with the BJT's
        internal parasitic network) is close to the hybrid-pi estimate."""
        from repro.spice import Circuit
        from repro.spice.elements import BJT, CurrentSource, VoltageSource

        model = generator.generate("N1.2-12D")
        ic_bias = 2e-3
        from repro.devices import evaluate, solve_vbe_for_ic

        vbe_int = solve_vbe_for_ic(model, ic_bias, 3.0)
        op_dev = evaluate(model, vbe_int, vbe_int - 3.0)

        # Base biased by a DC current source (the AC must not be shorted
        # by a stiff voltage source, as in a real h21 measurement).
        ckt = Circuit("ft")
        ckt.add(VoltageSource("VC", ("c", "0"), dc=3.0))
        ckt.add(BJT("Q1", ("c", "b", "0"), model))
        ckt.add(CurrentSource("IBIAS", ("0", "b"), dc=op_dev.ib))
        ckt.add(CurrentSource("IAC", ("0", "b"), ac_mag=1.0))
        sim = Simulator(ckt)
        op = sim.operating_point()
        assert -op.branch_current("VC") == pytest.approx(ic_bias, rel=0.1)
        # measure well above the beta corner (f >> gpi/(2*pi*Cpi)) so the
        # single-pole extrapolation fT = f*|h21| is valid
        f_test = 1e9
        ac = sim.ac(f_test, f_test, 1, sweep="lin")
        # |h21| = |ic/ib| with the collector AC-grounded by VC
        ic_ac = abs(ac.branch_current("VC")[0])
        ft_measured = f_test * ic_ac
        ft_expected = ft_at_ic(model, ic_bias).ft
        assert ft_measured == pytest.approx(ft_expected, rel=0.25)


class TestMeasureExtractGenerateLoop:
    """Measured curves -> extracted reference -> geometry generation."""

    def test_loop_preserves_ft_behaviour(self, reference, process, rules):
        report = extract_parameters(
            measure_device(reference.parameters, noise=0.0)
        )
        generator = ModelParameterGenerator(
            process, rules,
            ReferenceTransistor(reference.shape, report.parameters),
        )
        golden_peak = peak_ft(reference.parameters, 1e-4, 2e-2, 41)
        regenerated = generator.generate(reference.shape)
        # fT at the golden device's optimum current is preserved
        assert ft_at_ic(regenerated, golden_peak.ic).ft == pytest.approx(
            golden_peak.ft, rel=0.25
        )
        # and the regenerated peak fT over the same window is close
        regenerated_peak = peak_ft(regenerated, 1e-4, 2e-2, 41)
        assert regenerated_peak.ft == pytest.approx(golden_peak.ft, rel=0.25)


class TestFig9Pipeline:
    def test_ordering_and_shape(self, generator):
        curves = {}
        ics = np.geomspace(1e-4, 3e-2, 31)
        for name in FIG9_SHAPES:
            model = generator.generate(name)
            curves[name] = [ft_at_ic(model, float(ic)).ft for ic in ics]
        # at low current the big devices are *slower* (more capacitance)
        assert curves["N1.2-48D"][0] < curves["N1.2-6D"][0]
        # past its peak the small device loses a visible fraction of fT
        # while the big device is still near its own maximum there
        small = np.array(curves["N1.2-6D"])
        big = np.array(curves["N1.2-48D"])
        top_current_index = len(ics) - 1
        assert small[top_current_index] < 0.75 * small.max()
        assert big[top_current_index] > 0.60 * big.max()


class TestAHDLTunerLoop:
    """AHDL source -> compiled block -> tuner-level IRR, against theory."""

    def test_ahdl_fig5_point(self):
        plan = FrequencyPlan()
        module = ir_mixer_module()
        block = module.instantiate("u", lo_freq=plan.down_lo,
                                   if_phase_err=4.0, gain_err=0.05)
        from repro.behavioral import SystemModel, tone

        system = SystemModel("t")
        system.add(block, inputs={"IF1": "a"}, outputs={"IF2": "b"})
        wanted = system.run({"a": tone(plan.first_if_wanted)})["b"]
        image = system.run({"a": tone(plan.first_if_image)})["b"]
        irr = 20 * math.log10(
            wanted.amplitude(plan.second_if) / image.amplitude(plan.second_if)
        )
        assert irr == pytest.approx(image_rejection_ratio_db(4.0, 0.05),
                                    abs=0.01)

    def test_three_irr_routes_agree(self):
        """Closed form == behavioral blocks == AHDL compile, all three."""
        spec = ImbalanceSpec(if_phase_error_deg=2.0, gain_error=0.03)
        theory = image_rejection_ratio_db(2.0, 0.03)
        behavioral = simulate_image_rejection_db(spec)
        assert behavioral == pytest.approx(theory, abs=1e-6)


class TestCellDatabaseLoop:
    def test_reused_schematics_simulate(self):
        """Every seeded schematic parses AND solves a DC operating point."""
        db = seed_database()
        solved = 0
        for cell in db.cells():
            if not cell.schematic.strip():
                continue
            deck = parse_deck(cell.schematic)
            result = Simulator(deck.circuit).operating_point()
            assert result.x is not None
            solved += 1
        assert solved >= 10

    def test_reused_behaviors_instantiate(self):
        from repro.ahdl import compile_source
        from repro.behavioral import tone

        db = seed_database()
        compiled = 0
        for cell in db.cells():
            if not cell.behavior.strip():
                continue
            modules = compile_source(cell.behavior)
            for module in modules.values():
                block = module.instantiate()
                inputs = {port: tone(100e6, 1.0) for port in block.inputs}
                outputs = block.process(inputs)
                assert set(outputs) == set(block.outputs)
            compiled += 1
        assert compiled >= 5


class TestBaselineComparison:
    def test_area_factor_predicts_wrong_ring_relevant_parameters(
        self, generator, reference
    ):
        """The quantified Section 4 claim: for the Table 1 shape set the
        baseline mispredicts RB by large factors for topology changes."""
        scaler = AreaFactorScaler(reference=reference)
        worst = 0.0
        for name in ("N1.2-6S", "N2.4-6D", "N1.2x2-6S"):
            geo = generator.generate(name)
            af = scaler.generate(name)
            worst = max(worst, abs(af.RB - geo.RB) / geo.RB)
        assert worst > 0.5  # at least 50% error somewhere

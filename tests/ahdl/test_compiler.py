"""Tests for AHDL compilation and elaboration."""

import pytest

from repro.ahdl import compile_module, compile_source
from repro.behavioral import Spectrum, SystemModel, tone
from repro.errors import AHDLError

AMP = """
module amp (IN, OUT) (gain)
node [V, I] IN, OUT;
parameter real gain = 2;
{
  analog {
    V(OUT) <- gain * V(IN);
  }
}
"""


class TestCompile:
    def test_compile_module(self):
        module = compile_module(AMP)
        assert module.name == "amp"
        assert module.defaults == {"gain": 2.0}

    def test_compile_source_multi(self):
        modules = compile_source(AMP + AMP.replace("module amp",
                                                   "module amp2"))
        assert set(modules) == {"amp", "amp2"}

    def test_duplicate_module_rejected(self):
        with pytest.raises(AHDLError):
            compile_source(AMP + AMP)

    def test_compile_module_requires_single(self):
        with pytest.raises(AHDLError):
            compile_module(AMP + AMP.replace("module amp", "module b"))

    def test_unknown_function_is_compile_error(self):
        src = AMP.replace("gain * V(IN)", "warp(V(IN))")
        with pytest.raises(AHDLError):
            compile_module(src)

    def test_bad_arity_is_compile_error(self):
        src = AMP.replace("gain * V(IN)", "mix(V(IN))")
        with pytest.raises(AHDLError):
            compile_module(src)

    def test_unknown_name_is_compile_error(self):
        src = AMP.replace("gain * V(IN)", "notdefined * V(IN)")
        with pytest.raises(AHDLError):
            compile_module(src)


class TestInstantiate:
    def test_default_parameters(self):
        block = compile_module(AMP).instantiate("u1")
        out = block.process({"IN": tone(1e6, 1.0)})["OUT"]
        assert out.amplitude(1e6) == pytest.approx(2.0)

    def test_parameter_override(self):
        block = compile_module(AMP).instantiate("u1", gain=5.0)
        out = block.process({"IN": tone(1e6, 1.0)})["OUT"]
        assert out.amplitude(1e6) == pytest.approx(5.0)

    def test_unknown_parameter_rejected(self):
        with pytest.raises(AHDLError):
            compile_module(AMP).instantiate("u1", gian=5.0)

    def test_call_sugar(self):
        block = compile_module(AMP)(gain=3.0)
        out = block.process({"IN": tone(1e6, 1.0)})["OUT"]
        assert out.amplitude(1e6) == pytest.approx(3.0)

    def test_instances_are_independent(self):
        module = compile_module(AMP)
        a = module.instantiate("a", gain=2.0)
        b = module.instantiate("b", gain=10.0)
        out_a = a.process({"IN": tone(1e6, 1.0)})["OUT"]
        out_b = b.process({"IN": tone(1e6, 1.0)})["OUT"]
        assert out_a.amplitude(1e6) == pytest.approx(2.0)
        assert out_b.amplitude(1e6) == pytest.approx(10.0)


class TestSemantics:
    def _run(self, body, parameters="", stimulus=None, port="OUT"):
        src = f"""
module m (IN, OUT) ()
node [V] IN, OUT;
{parameters}
{{
  analog {{
{body}
  }}
}}
"""
        block = compile_module(src).instantiate("m")
        stimulus = stimulus if stimulus is not None else tone(100e6, 1.0)
        return block.process({"IN": stimulus})[port]

    def test_locals(self):
        out = self._run("x = 3; y = x + 1; V(OUT) <- y * V(IN);")
        assert out.amplitude(100e6) == pytest.approx(4.0)

    def test_contributions_accumulate(self):
        out = self._run("V(OUT) <- V(IN); V(OUT) <- V(IN);")
        assert out.amplitude(100e6) == pytest.approx(2.0)

    def test_mix_and_filter(self):
        out = self._run(
            "V(OUT) <- lowpass(mix(V(IN), 80MEG, 0), 40MEG);"
        )
        assert out.amplitude(20e6) == pytest.approx(0.5, rel=0.01)
        assert out.amplitude(180e6) < 0.01  # 3rd-order rolloff ~ (4.5)^3

    def test_phase_shift_fn(self):
        out = self._run("V(OUT) <- phase_shift(V(IN), 45);")
        assert out.phase_deg(100e6) == pytest.approx(45.0)

    def test_gain_db_fn(self):
        out = self._run("V(OUT) <- gain_db(V(IN), 20);")
        assert out.amplitude(100e6) == pytest.approx(10.0)

    def test_tone_source(self):
        out = self._run("V(OUT) <- tone(45MEG, 2, 30);",
                        stimulus=Spectrum.silence())
        assert out.amplitude(45e6) == pytest.approx(2.0)
        assert out.phase_deg(45e6) == pytest.approx(30.0)

    def test_scalar_math(self):
        out = self._run("g = pow(10, 6 / 20); V(OUT) <- g * V(IN);")
        assert out.amplitude(100e6) == pytest.approx(10 ** 0.3)

    def test_division(self):
        out = self._run("V(OUT) <- V(IN) / 2;")
        assert out.amplitude(100e6) == pytest.approx(0.5)

    def test_unary_minus_signal(self):
        out = self._run("V(OUT) <- -V(IN) + V(IN);")
        assert out.amplitude(100e6) == pytest.approx(0.0, abs=1e-12)

    def test_signal_plus_number_rejected_at_runtime(self):
        with pytest.raises(AHDLError):
            self._run("V(OUT) <- V(IN) + 3;")

    def test_signal_times_signal_rejected(self):
        with pytest.raises(AHDLError):
            self._run("V(OUT) <- V(IN) * V(IN);")

    def test_divide_by_signal_rejected(self):
        with pytest.raises(AHDLError):
            self._run("V(OUT) <- 3 / V(IN);")

    def test_scalar_contribution_rejected(self):
        with pytest.raises(AHDLError):
            self._run("V(OUT) <- 42;")


class TestSystemIntegration:
    def test_ahdl_block_in_system(self):
        module = compile_module(AMP)
        system = SystemModel("s")
        system.add(module.instantiate("a1", gain=4.0),
                   inputs={"IN": "x"}, outputs={"OUT": "y"})
        nets = system.run({"x": tone(1e6, 0.5)})
        assert nets["y"].amplitude(1e6) == pytest.approx(2.0)


HIERARCHICAL = """
module amp (IN, OUT) (gain)
node [V] IN, OUT;
parameter real gain = 2;
{ analog { V(OUT) <- gain * V(IN); } }

module shifter (IN, OUT) (deg)
node [V] IN, OUT;
parameter real deg = 90;
{ analog { V(OUT) <- phase_shift(V(IN), deg); } }

module chain (A, B) ()
node [V] A, B;
{
  analog {
    s1 = amp(V(A));
    s2 = amp(s1, 5);
    V(B) <- shifter(s2, 45);
  }
}
"""


class TestHierarchicalModules:
    def test_submodule_calls_compose(self):
        modules = compile_source(HIERARCHICAL)
        block = modules["chain"].instantiate("c")
        out = block.process({"A": tone(1e6, 1.0)})["B"]
        assert out.amplitude(1e6) == pytest.approx(10.0)
        assert out.phase_deg(1e6) == pytest.approx(45.0)

    def test_forward_reference_rejected(self):
        src = """
module chain (A, B) ()
node [V] A, B;
{ analog { V(B) <- amp(V(A)); } }

module amp (IN, OUT) (gain)
node [V] IN, OUT;
parameter real gain = 2;
{ analog { V(OUT) <- gain * V(IN); } }
"""
        with pytest.raises(AHDLError):
            compile_source(src)

    def test_too_many_call_args_rejected(self):
        src = HIERARCHICAL.replace("amp(s1, 5)", "amp(s1, 5, 7)")
        with pytest.raises(AHDLError):
            compile_source(src)

    def test_scalar_first_argument_rejected(self):
        src = HIERARCHICAL.replace("amp(V(A))", "amp(3)")
        modules = compile_source(src)
        with pytest.raises(AHDLError):
            modules["chain"].instantiate("c").process({"A": tone(1e6)})

    def test_module_name_stdlib_collision_rejected(self):
        src = """
module mix (IN, OUT) ()
node [V] IN, OUT;
{ analog { V(OUT) <- V(IN); } }
"""
        with pytest.raises(AHDLError):
            compile_source(src)

    def test_multi_port_module_not_callable(self):
        src = """
module splitter (IN, OUT1, OUT2) ()
node [V] IN, OUT1, OUT2;
{ analog { V(OUT1) <- V(IN); V(OUT2) <- V(IN); } }

module user (A, B) ()
node [V] A, B;
{ analog { V(B) <- splitter(V(A)); } }
"""
        with pytest.raises(AHDLError):
            compile_source(src)

    def test_apply_helper_directly(self):
        modules = compile_source(HIERARCHICAL)
        out = modules["amp"].apply(tone(1e6, 1.0), 7.0)
        assert out.amplitude(1e6) == pytest.approx(7.0)
        with pytest.raises(AHDLError):
            modules["amp"].apply(tone(1e6), 1.0, 2.0)

"""Tests for the AHDL parser."""

import pytest

from repro.ahdl import parse_source
from repro.ahdl import ast
from repro.errors import AHDLError

AMP = """
module amp (IN, OUT) (gain)
node [V, I] IN, OUT;
parameter real gain = 1;
{
  analog {
    V(OUT) <- gain * V(IN);
  }
}
"""


class TestModuleStructure:
    def test_paper_fig1_module(self):
        (module,) = parse_source(AMP)
        assert module.name == "amp"
        assert module.ports == ("IN", "OUT")
        assert module.nodes == ("IN", "OUT")
        assert [p.name for p in module.parameters] == ["gain"]
        assert module.output_ports() == ("OUT",)
        assert module.input_ports() == ("IN",)

    def test_multiple_modules(self):
        modules = parse_source(AMP + AMP.replace("amp", "amp2"))
        assert [m.name for m in modules] == ["amp", "amp2"]

    def test_module_without_parameter_list(self):
        src = """
module follow (A, B)
node [V] A, B;
{
  analog { V(B) <- V(A); }
}
"""
        (module,) = parse_source(src)
        assert module.parameters == ()

    def test_engineering_notation_defaults(self):
        src = """
module m (A, B) (f)
node [V] A, B;
parameter real f = 1255MEG;
{
  analog { V(B) <- mix(V(A), f, 0); }
}
"""
        (module,) = parse_source(src)
        default = module.parameters[0].default
        assert isinstance(default, ast.Number)
        assert default.value == pytest.approx(1.255e9)

    def test_statements_kinds(self):
        src = """
module m (A, B) ()
node [V] A, B;
{
  analog {
    x = 2 * 3;
    V(B) <- x * V(A);
  }
}
"""
        (module,) = parse_source(src)
        assert isinstance(module.statements[0], ast.Assign)
        assert isinstance(module.statements[1], ast.Contribution)


class TestExpressions:
    def _expr(self, text):
        src = f"""
module m (A, B) (p)
node [V] A, B;
parameter real p = 1;
{{
  analog {{ V(B) <- {text}; }}
}}
"""
        (module,) = parse_source(src)
        return module.statements[0].value

    def test_precedence(self):
        expr = self._expr("V(A) * 2 + V(A) * 3")
        assert isinstance(expr, ast.Binary)
        assert expr.op == "+"
        assert expr.left.op == "*"

    def test_parentheses(self):
        expr = self._expr("(1 + p) * V(A)")
        assert expr.op == "*"
        assert expr.left.op == "+"

    def test_unary_minus(self):
        expr = self._expr("-V(A)")
        assert isinstance(expr, ast.Unary)

    def test_nested_calls(self):
        expr = self._expr("phase_shift(mix(V(A), 100MEG), 90 + p)")
        assert isinstance(expr, ast.Call)
        assert expr.function == "phase_shift"
        assert isinstance(expr.args[0], ast.Call)


class TestValidation:
    def test_contribution_to_unknown_port(self):
        src = """
module m (A) ()
node [V] A;
{
  analog { V(NOPE) <- V(A); }
}
"""
        with pytest.raises(AHDLError):
            parse_source(src)

    def test_node_decl_must_name_ports(self):
        src = """
module m (A, B) ()
node [V] A, C;
{
  analog { V(B) <- V(A); }
}
"""
        with pytest.raises(AHDLError):
            parse_source(src)

    def test_module_needs_output(self):
        src = """
module m (A, B) ()
node [V] A, B;
{
  analog { x = V(A); }
}
"""
        with pytest.raises(AHDLError):
            parse_source(src)

    def test_duplicate_port(self):
        src = """
module m (A, A) ()
node [V] A;
{
  analog { V(A) <- V(A); }
}
"""
        with pytest.raises(AHDLError):
            parse_source(src)

    def test_header_parameter_must_be_declared(self):
        src = """
module m (A, B) (ghost)
node [V] A, B;
{
  analog { V(B) <- V(A); }
}
"""
        with pytest.raises(AHDLError):
            parse_source(src)

    def test_empty_source(self):
        with pytest.raises(AHDLError):
            parse_source("")

    def test_missing_semicolon(self):
        src = """
module m (A, B) ()
node [V] A, B;
{
  analog { V(B) <- V(A) }
}
"""
        with pytest.raises(AHDLError):
            parse_source(src)

    def test_error_carries_line_number(self):
        src = "module m (A, B) ()\nnode [V] A, B;\n{\n  analog {\n    V(B) <- * V(A);\n  }\n}\n"
        with pytest.raises(AHDLError) as excinfo:
            parse_source(src)
        assert "line" in str(excinfo.value)

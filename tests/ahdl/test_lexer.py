"""Tests for the AHDL tokenizer."""

import pytest

from repro.ahdl import tokenize
from repro.ahdl.lexer import EOF, IDENT, NUMBER, PUNCT
from repro.errors import AHDLError


class TestTokenize:
    def test_simple_module_header(self):
        tokens = tokenize("module amp (IN, OUT) (gain)")
        kinds = [t.kind for t in tokens]
        texts = [t.text for t in tokens]
        assert texts[:3] == ["module", "amp", "("]
        assert kinds[-1] == EOF

    def test_numbers_with_suffixes(self):
        tokens = tokenize("1255MEG 45MEG 1.2u 3e-12 90")
        numbers = [t for t in tokens if t.kind == NUMBER]
        assert [t.text for t in numbers] == [
            "1255MEG", "45MEG", "1.2u", "3e-12", "90",
        ]

    def test_contribution_operator(self):
        tokens = tokenize("V(OUT) <- x;")
        ops = [t for t in tokens if t.text == "<-"]
        assert len(ops) == 1
        assert ops[0].kind == PUNCT

    def test_line_comments_stripped(self):
        tokens = tokenize("a // comment with module keywords\nb")
        assert [t.text for t in tokens if t.kind == IDENT] == ["a", "b"]

    def test_block_comments_stripped(self):
        tokens = tokenize("a /* multi\nline\ncomment */ b")
        idents = [t for t in tokens if t.kind == IDENT]
        assert [t.text for t in idents] == ["a", "b"]
        # line numbers account for the comment's newlines
        assert idents[1].line == 3

    def test_line_numbers(self):
        tokens = tokenize("a\nb\n  c")
        idents = [t for t in tokens if t.kind == IDENT]
        assert [t.line for t in idents] == [1, 2, 3]

    def test_rejects_garbage(self):
        with pytest.raises(AHDLError):
            tokenize("module @ amp")

    def test_empty_source(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].kind == EOF

    def test_keyword_helpers(self):
        token = tokenize("module")[0]
        assert token.is_keyword("module")
        assert not token.is_keyword("node")
        assert not token.is_punct("(")

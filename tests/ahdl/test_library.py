"""Tests for the canonical AHDL library modules."""

import math

import pytest

from repro.ahdl import (
    amp_module,
    down_converter_module,
    ir_mixer_module,
)
from repro.behavioral import Spectrum, tone
from repro.rfsystems import FrequencyPlan, image_rejection_ratio_db


@pytest.fixture(scope="module")
def plan():
    return FrequencyPlan()


class TestAmpModule:
    def test_fig1_amp(self):
        block = amp_module().instantiate("a", gain=3.0)
        out = block.process({"IN": tone(1e6, 1.0)})["OUT"]
        assert out.amplitude(1e6) == pytest.approx(3.0)


class TestIRMixerModule:
    def _irr(self, plan, **params):
        block = ir_mixer_module().instantiate("u", **params)
        wanted = block.process(
            {"IF1": tone(plan.first_if_wanted, 1.0)}
        )["IF2"]
        image = block.process(
            {"IF1": tone(plan.first_if_image, 1.0)}
        )["IF2"]
        return 20 * math.log10(
            wanted.amplitude(plan.second_if) / image.amplitude(plan.second_if)
        )

    def test_perfect_matching_rejects_completely(self, plan):
        block = ir_mixer_module().instantiate("u")
        image = block.process(
            {"IF1": tone(plan.first_if_image, 1.0)}
        )["IF2"]
        assert image.amplitude(plan.second_if) == pytest.approx(0.0,
                                                                abs=1e-12)

    @pytest.mark.parametrize("phase_err,gain_err", [
        (1.0, 0.01), (3.0, 0.03), (5.0, 0.05), (8.0, 0.09),
    ])
    def test_matches_closed_form(self, plan, phase_err, gain_err):
        irr = self._irr(plan, if_phase_err=phase_err, gain_err=gain_err)
        assert irr == pytest.approx(
            image_rejection_ratio_db(phase_err, gain_err), abs=0.01
        )

    def test_lo_and_if_errors_add(self, plan):
        combined = self._irr(plan, lo_phase_err=2.0, if_phase_err=3.0)
        single = self._irr(plan, if_phase_err=5.0)
        assert combined == pytest.approx(single, abs=0.01)

    def test_wanted_gain_is_two_paths(self, plan):
        """The two quadrature paths add coherently for the wanted signal."""
        block = ir_mixer_module().instantiate("u")
        wanted = block.process(
            {"IF1": tone(plan.first_if_wanted, 1.0)}
        )["IF2"]
        assert wanted.amplitude(plan.second_if) == pytest.approx(1.0)


class TestDownConverterModule:
    def test_converts_and_filters(self, plan):
        block = down_converter_module().instantiate("u")
        out = block.process({"IF1": tone(plan.first_if_wanted, 1.0)})["IF2"]
        assert out.amplitude(plan.second_if) == pytest.approx(0.5, rel=0.05)
        assert out.amplitude(plan.first_if_wanted + plan.down_lo) < 1e-3

    def test_no_image_rejection(self, plan):
        """The conventional converter passes the image at full strength."""
        block = down_converter_module().instantiate("u")
        image = block.process({"IF1": tone(plan.first_if_image, 1.0)})["IF2"]
        assert image.amplitude(plan.second_if) == pytest.approx(0.5,
                                                                rel=0.05)

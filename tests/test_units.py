"""Tests for SPICE engineering-notation parsing and formatting."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.errors import UnitError
from repro.units import (
    db,
    db_voltage,
    format_value,
    from_db,
    from_db_voltage,
    parse_frequency,
    parse_value,
)


class TestParseValue:
    @pytest.mark.parametrize("text,expected", [
        ("1", 1.0),
        ("1.5", 1.5),
        ("-3.3", -3.3),
        ("+2", 2.0),
        ("1e-6", 1e-6),
        ("2.5E3", 2500.0),
        (".5", 0.5),
        ("1.2u", 1.2e-6),
        ("1.2U", 1.2e-6),
        ("100n", 100e-9),
        ("45MEG", 45e6),
        ("45meg", 45e6),
        ("1.3G", 1.3e9),
        ("4.7k", 4700.0),
        ("10p", 10e-12),
        ("3f", 3e-15),
        ("2T", 2e12),
        ("7m", 7e-3),
        ("5a", 5e-18),
    ])
    def test_scale_factors(self, text, expected):
        assert parse_value(text) == pytest.approx(expected, rel=1e-12)

    def test_spice_m_is_milli_not_mega(self):
        assert parse_value("1M") == pytest.approx(1e-3)
        assert parse_value("1MEG") == pytest.approx(1e6)

    @pytest.mark.parametrize("text,expected", [
        ("100nF", 100e-9),
        ("1.3GHz", 1.3e9),
        ("45MEGHz", 45e6),
        ("10pF", 10e-12),
        ("5Volts", 5.0),
        ("3Hz", 3.0),
    ])
    def test_trailing_unit_names(self, text, expected):
        assert parse_value(text) == pytest.approx(expected, rel=1e-12)

    def test_mil(self):
        assert parse_value("1mil") == pytest.approx(25.4e-6)

    def test_percent(self):
        assert parse_value("5%") == pytest.approx(0.05)

    def test_numeric_passthrough(self):
        assert parse_value(3.5) == 3.5
        assert parse_value(7) == 7.0
        assert isinstance(parse_value(7), float)

    @pytest.mark.parametrize("bad", ["", "abc", "--1", "1.2.3", "u1", "  "])
    def test_rejects_malformed(self, bad):
        with pytest.raises(UnitError):
            parse_value(bad)

    @given(st.floats(min_value=-1e12, max_value=1e12,
                     allow_nan=False, allow_infinity=False))
    def test_plain_float_string_roundtrip(self, value):
        assert parse_value(repr(value)) == pytest.approx(value, rel=1e-12,
                                                         abs=1e-300)


class TestFormatValue:
    @pytest.mark.parametrize("value,expected", [
        (0.0, "0"),
        (1.2e-6, "1.2U"),
        (4700.0, "4.7K"),
        (45e6, "45MEG"),
        (1.3e9, "1.3G"),
        (10e-12, "10P"),
    ])
    def test_known_values(self, value, expected):
        assert format_value(value) == expected

    def test_unit_suffix(self):
        assert format_value(45e6, "Hz") == "45MEGHz"

    def test_nonfinite(self):
        assert "inf" in format_value(math.inf)

    @given(st.floats(min_value=1e-15, max_value=1e14))
    def test_roundtrip_through_parse(self, value):
        text = format_value(value, digits=12)
        assert parse_value(text) == pytest.approx(value, rel=1e-9)

    @given(st.floats(min_value=1e-15, max_value=1e14))
    def test_negative_roundtrip(self, value):
        text = format_value(-value, digits=12)
        assert parse_value(text) == pytest.approx(-value, rel=1e-9)


class TestDecibels:
    def test_db_power(self):
        assert db(100.0) == pytest.approx(20.0)
        assert db(1.0) == pytest.approx(0.0)

    def test_db_voltage(self):
        assert db_voltage(10.0) == pytest.approx(20.0)

    def test_db_rejects_nonpositive(self):
        with pytest.raises(UnitError):
            db(0.0)
        with pytest.raises(UnitError):
            db_voltage(-1.0)

    @given(st.floats(min_value=-100, max_value=100))
    def test_db_inverse(self, decibels):
        assert db(from_db(decibels)) == pytest.approx(decibels, abs=1e-9)
        assert db_voltage(from_db_voltage(decibels)) == pytest.approx(
            decibels, abs=1e-9
        )


class TestParseFrequency:
    def test_basic(self):
        assert parse_frequency("45MEG") == 45e6

    def test_rejects_negative(self):
        with pytest.raises(UnitError):
            parse_frequency("-1k")

"""Tests for the virtual measurement bench."""

import numpy as np
import pytest

from repro.errors import ExtractionError
from repro.measurement import measure_device


@pytest.fixture(scope="module")
def golden(reference):
    return reference.parameters


@pytest.fixture(scope="module")
def clean(golden):
    return measure_device(golden, noise=0.0)


class TestGummelPlot:
    def test_monotone_currents(self, clean):
        assert np.all(np.diff(clean.gummel.ic) > 0)
        assert np.all(np.diff(clean.gummel.ib) > 0)

    def test_ideal_slope_in_mid_region(self, clean, golden):
        from repro.devices import thermal_voltage

        g = clean.gummel
        mask = (g.ic > 1e-9) & (g.ic < 1e-7)
        slope = np.polyfit(g.vbe[mask], np.log(g.ic[mask]), 1)[0]
        assert slope == pytest.approx(1 / thermal_voltage(), rel=0.02)

    def test_beta_in_plateau(self, clean, golden):
        g = clean.gummel
        mask = (g.ic > 1e-6) & (g.ic < 1e-4)
        beta = (g.ic / g.ib)[mask]
        assert beta.max() < golden.BF  # VAR/qb suppression keeps it below
        assert beta.max() > golden.BF * 0.6

    def test_ohmic_drop_bends_high_current_end(self, clean, golden):
        """At the top of the sweep the terminal-voltage curve falls below
        the ideal internal-voltage law."""
        from repro.devices import thermal_voltage

        g = clean.gummel
        ideal = golden.IS * np.exp(g.vbe / thermal_voltage())
        assert g.ic[-1] < ideal[-1] / 2


class TestCVCurves:
    def test_zero_bias_equals_cj0(self, clean, golden):
        assert clean.cv_be.capacitance[0] == pytest.approx(golden.CJE,
                                                           rel=1e-9)
        assert clean.cv_bc.capacitance[0] == pytest.approx(golden.CJC,
                                                           rel=1e-9)

    def test_monotone_decreasing_with_reverse_bias(self, clean):
        assert np.all(np.diff(clean.cv_be.capacitance) < 0)
        assert np.all(np.diff(clean.cv_bc.capacitance) < 0)


class TestFTSweep:
    def test_has_interior_peak(self, clean):
        fts = clean.ft_sweep.ft
        peak = int(np.argmax(fts))
        assert 0 < peak < len(fts) - 1

    def test_ghz_range(self, clean):
        assert 1e9 < clean.ft_sweep.ft.max() < 50e9


class TestNoise:
    def test_reproducible_with_seed(self, golden):
        a = measure_device(golden, noise=0.02, seed=7)
        b = measure_device(golden, noise=0.02, seed=7)
        np.testing.assert_array_equal(a.gummel.ic, b.gummel.ic)
        assert a.re_ohmic == b.re_ohmic

    def test_different_seeds_differ(self, golden):
        a = measure_device(golden, noise=0.02, seed=7)
        b = measure_device(golden, noise=0.02, seed=8)
        assert not np.array_equal(a.gummel.ic, b.gummel.ic)

    def test_noise_magnitude(self, golden):
        clean = measure_device(golden, noise=0.0)
        noisy = measure_device(golden, noise=0.05, seed=1)
        ratio = noisy.gummel.ic / clean.gummel.ic
        assert 0.5 < ratio.min() < ratio.max() < 2.0
        assert np.std(np.log(ratio)) == pytest.approx(0.05, rel=0.3)

    def test_rejects_negative_noise(self, golden):
        with pytest.raises(ExtractionError):
            measure_device(golden, noise=-0.1)

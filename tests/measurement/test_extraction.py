"""Tests for the Getreu-style extraction pipeline.

The pipeline only sees the measured curves; these tests bound its error
against the hidden golden parameters.  Regional extraction has known
systematic biases (the low reverse-Early voltage of this process bends
the Gummel plot), so tolerances differ per parameter.
"""

import math

import numpy as np
import pytest

from repro.measurement import (
    extract_parameters,
    fit_junction_cv,
    measure_device,
)
from repro.measurement.synthetic import CVCurve


@pytest.fixture(scope="module")
def golden(reference):
    return reference.parameters


@pytest.fixture(scope="module")
def report(golden):
    return extract_parameters(measure_device(golden, noise=0.01))


class TestAccuracy:
    #: parameter -> tolerated relative error for the full noisy pipeline
    TOLERANCES = {
        "IS": 0.15, "NF": 0.03, "BF": 0.25, "NE": 0.10, "ISE": 0.5,
        "CJE": 0.05, "MJE": 0.10, "CJC": 0.05, "VJC": 0.15, "MJC": 0.10,
        "TF": 0.25, "RE": 0.05, "RB": 0.05, "RC": 0.05,
    }

    @pytest.mark.parametrize("name", sorted(TOLERANCES))
    def test_parameter_within_tolerance(self, report, golden, name):
        truth = getattr(golden, name)
        got = getattr(report.parameters, name)
        assert got == pytest.approx(truth, rel=self.TOLERANCES[name]), name

    def test_ikf_within_factor_two(self, report, golden):
        """IKF via the half-point method is biased by the reverse-Early
        term; factor-2 is the honest bound for this device."""
        assert golden.IKF / 2 < report.parameters.IKF < golden.IKF * 2

    def test_extraction_is_noise_robust(self, golden):
        """More noise degrades but does not break the pipeline."""
        noisy = extract_parameters(measure_device(golden, noise=0.05,
                                                  seed=3))
        assert noisy.parameters.IS == pytest.approx(golden.IS, rel=0.4)
        assert noisy.parameters.CJE == pytest.approx(golden.CJE, rel=0.15)

    def test_clean_measurement_is_more_accurate(self, golden):
        clean = extract_parameters(measure_device(golden, noise=0.0))
        errors = clean.compare(golden, names=("IS", "NF", "CJE", "CJC"))
        assert all(err < 0.1 for err in errors.values())


class TestReport:
    def test_notes_cover_extracted_parameters(self, report):
        for name in ("IS", "BF", "CJE", "TF", "RE"):
            assert name in report.notes

    def test_compare_structure(self, report, golden):
        errors = report.compare(golden)
        assert set(errors) >= {"IS", "BF", "CJE", "TF"}
        assert all(v >= 0 for v in errors.values())

    def test_extracted_model_is_valid(self, report):
        """The extracted set passes model validation and can be used in
        a simulation directly."""
        from repro.devices import ft_at_ic

        point = ft_at_ic(report.parameters, 1e-3)
        assert point.ft > 1e9


class TestCVFit:
    def test_exact_data_recovered(self):
        vr = np.linspace(0.0, 5.0, 41)
        cj0, vj, m = 1e-13, 0.8, 0.4
        c = cj0 * (1 + vr / vj) ** (-m)
        fit = fit_junction_cv(CVCurve("be", vr, c))
        assert fit[0] == pytest.approx(cj0, rel=1e-4)
        assert fit[1] == pytest.approx(vj, rel=1e-3)
        assert fit[2] == pytest.approx(m, rel=1e-3)

    def test_rejects_nonpositive_curve(self):
        vr = np.linspace(0.0, 5.0, 5)
        from repro.errors import ExtractionError

        with pytest.raises(ExtractionError):
            fit_junction_cv(CVCurve("be", vr, np.zeros(5)))


class TestRoundTripThroughGenerator:
    def test_extract_then_generate(self, golden, reference, process, rules):
        """Close the full paper loop: measure -> extract -> calibrate the
        generator with the *extracted* reference -> generate shapes.
        The generated reference shape must match the extraction."""
        from repro.geometry import ModelParameterGenerator, ReferenceTransistor

        report = extract_parameters(measure_device(golden, noise=0.0))
        extracted_ref = ReferenceTransistor(
            shape=reference.shape, parameters=report.parameters
        )
        generator = ModelParameterGenerator(process, rules, extracted_ref)
        regenerated = generator.generate(reference.shape)
        assert regenerated.IS == pytest.approx(report.parameters.IS,
                                               rel=1e-9)
        # and a scaled shape inherits the extraction's calibration
        bigger = generator.generate("N1.2-12D")
        assert bigger.IS > regenerated.IS

"""Tests for the exception hierarchy contract."""

import pytest

from repro import errors


class TestHierarchy:
    @pytest.mark.parametrize("exc_class", [
        errors.UnitError,
        errors.NetlistError,
        errors.ParseError,
        errors.ConvergenceError,
        errors.AnalysisError,
        errors.ModelError,
        errors.GeometryError,
        errors.ExtractionError,
        errors.CellDatabaseError,
        errors.DesignError,
        errors.AHDLError,
    ])
    def test_everything_is_a_repro_error(self, exc_class):
        assert issubclass(exc_class, errors.ReproError)

    def test_unit_error_is_value_error(self):
        """Callers may catch plain ValueError around quantity parsing."""
        assert issubclass(errors.UnitError, ValueError)

    def test_ahdl_error_is_parse_error(self):
        assert issubclass(errors.AHDLError, errors.ParseError)

    def test_parse_error_line_prefix(self):
        exc = errors.ParseError("bad token", line=42)
        assert "line 42" in str(exc)
        assert exc.line == 42

    def test_parse_error_without_line(self):
        exc = errors.ParseError("bad token")
        assert exc.line is None
        assert str(exc) == "bad token"

    def test_one_catch_covers_all_subsystems(self):
        """The API-boundary pattern: catch ReproError once."""
        from repro.spice import parse_deck
        from repro.geometry import TransistorShape
        from repro.units import parse_value

        for trigger in (
            lambda: parse_deck(""),
            lambda: TransistorShape.from_name("bogus"),
            lambda: parse_value("not-a-number"),
        ):
            with pytest.raises(errors.ReproError):
                trigger()

"""Tests for repro.optimize."""

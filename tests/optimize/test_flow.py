"""Tests for the end-to-end optimization pipeline (repro.optimize.flow)."""

import pytest

from repro.celldb import seed_database
from repro.cli import main
from repro.optimize import mixer_sizing_specs, run_optimize_flow
from repro.rfsystems import image_rejection_ratio_db

FAST = dict(population=8, generations=10)


@pytest.fixture(scope="module")
def report():
    return run_optimize_flow(**FAST)


class TestRunOptimizeFlow:
    def test_loop_closes_at_default_target(self, report):
        assert report.closed
        assert report.predicted_irr_db >= report.irr_target_db

    def test_derivation_matches_closed_form(self, report):
        allowance = report.derivation.phase_allowance_deg
        irr = image_rejection_ratio_db(allowance, 0.01)
        assert irr == pytest.approx(30.0, abs=0.5)

    def test_phase_shifter_is_reused(self, report):
        assert report.shifter_reuse.reused
        assert report.shifter_reuse.chosen.name == "PHASE90-IF"

    def test_mixer_falls_through_to_sizing(self, report):
        # The seeded mixers record ~4 dB conversion gain; the 12 dB
        # requirement forces the design-new path.
        assert not report.mixer_reuse.reused
        assert report.sizing is not None
        assert report.sizing.specs_met

    def test_sized_mixer_meets_the_specs(self, report):
        sizing = report.sizing
        specs = mixer_sizing_specs(12.0, 4.0, 1.5)
        assert specs.satisfied_by(sizing.measurements)
        assert sizing.measurements["conversion_gain_db"] >= 12.0

    def test_model_card_regenerated_for_sized_shape(self, report):
        sizing = report.sizing
        assert sizing.model_card.startswith(".MODEL")
        assert sizing.shape.emitter_length == pytest.approx(
            sizing.result.best_params["emitter_length"])

    def test_reuse_audit_counts_committed_blocks(self, report):
        # Phase shifter reused, two mixer paths designed new -> 1/3.
        assert report.reuse_fraction == pytest.approx(1.0 / 3.0)

    def test_summary_tells_the_whole_story(self, report):
        text = report.summary()
        for fragment in ("derive", "reuse", "size", "regenerate",
                         "loop CLOSED"):
            assert fragment in text

    def test_seed_reproducible(self, report):
        again = run_optimize_flow(**FAST)
        assert again.sizing.result.best_params == \
            report.sizing.result.best_params
        assert again.sizing.result.best_value == \
            report.sizing.result.best_value

    def test_relaxed_gain_target_reuses_the_mixer(self):
        report = run_optimize_flow(conversion_gain_db=4.0, **FAST)
        assert report.mixer_reuse.reused
        assert report.mixer_reuse.chosen.name == "DNMIX-45"
        assert report.sizing is None
        assert report.reuse_fraction == pytest.approx(1.0)

    def test_caller_database_is_audited(self):
        db = seed_database()
        run_optimize_flow(db=db, **FAST)
        assert db.get("PHASE90-IF").reuse_count > 0


class TestCli:
    def test_repro_optimize_runs_the_pipeline(self, capsys):
        """Acceptance: the full pipeline runs from the CLI."""
        exit_code = main(["optimize", "--population", "8",
                          "--generations", "10"])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "loop CLOSED" in out
        assert ".MODEL" in out
        assert "re-use PHASE90-IF" in out

    def test_cli_parallel_matches_serial(self, capsys):
        main(["optimize", "--population", "8", "--generations", "10"])
        serial = capsys.readouterr().out
        main(["optimize", "--population", "8", "--generations", "10",
              "--jobs", "2"])
        parallel = capsys.readouterr().out
        # Identical sizing decision; only timing lines may differ.
        serial_tail = serial[serial.index("[derive]"):]
        parallel_tail = parallel[parallel.index("[derive]"):]
        assert serial_tail == parallel_tail

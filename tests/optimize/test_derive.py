"""Tests for spec derivation from system sweeps (repro.optimize.derive)."""

import pytest

from repro.errors import DesignError
from repro.optimize import (
    BoundKind,
    derive_image_rejection_specs,
    derive_phase_allowances,
    invert_threshold,
)
from repro.rfsystems import (
    fig5_sweep,
    fig5_sweep_result,
    image_rejection_ratio_db,
    required_matching,
)

PHASES = (0.25, 0.5, 1.0, 2.0, 3.0, 4.0, 6.0, 8.0, 12.0)


@pytest.fixture(scope="module")
def sweep():
    return fig5_sweep_result(PHASES)


class TestInvertThreshold:
    def test_interpolates_between_samples(self):
        x = [0.0, 1.0, 2.0, 3.0]
        y = [40.0, 30.0, 20.0, 10.0]
        assert invert_threshold(x, y, 25.0) == pytest.approx(1.5)

    def test_exact_sample_hit(self):
        assert invert_threshold([0, 1, 2], [40, 30, 20], 30.0) == \
            pytest.approx(1.0)

    def test_unreachable_target(self):
        assert invert_threshold([0, 1, 2], [25, 20, 15], 30.0) is None

    def test_never_crossed_returns_last(self):
        assert invert_threshold([0, 1, 2], [50, 45, 40], 30.0) == \
            pytest.approx(2.0)

    def test_infinite_first_sample(self):
        x = [0.0, 1.0, 2.0]
        y = [float("inf"), 30.0, 20.0]
        assert invert_threshold(x, y, 25.0) == pytest.approx(1.5)


class TestDeriveFromSweep:
    def test_allowances_follow_the_closed_form(self, sweep):
        """Acceptance: derived Fig. 5 allowances reproduce the analytic
        image-rejection law within 0.5 dB across 1-9 % gain balance."""
        allowances = derive_phase_allowances(sweep, 30.0)
        checked = 0
        for gain, allowance in allowances.items():
            if allowance is None:
                # The closed form must agree it is unreachable: even a
                # perfect phase cannot hit the target at this imbalance.
                assert image_rejection_ratio_db(0.0, gain) < 30.5
                continue
            irr = image_rejection_ratio_db(allowance, gain)
            assert irr == pytest.approx(30.0, abs=0.5)
            checked += 1
        assert checked >= 3

    def test_matches_required_matching_bisection(self, sweep):
        allowances = derive_phase_allowances(sweep, 30.0)
        analytic = required_matching(30.0, gain_error=0.01)
        assert allowances[0.01] == pytest.approx(analytic, abs=0.25)

    def test_spec_set_shape(self, sweep):
        derivation = derive_image_rejection_specs(sweep, 30.0, 0.01)
        spec = derivation.specs.get("phase_error_deg")
        assert spec.kind is BoundKind.UPPER
        assert spec.target == pytest.approx(
            derivation.phase_allowance_deg)
        gain = derivation.specs.get("gain_error")
        assert gain.kind is BoundKind.UPPER
        assert gain.target == pytest.approx(0.01)

    def test_margin_tightens_derived_spec(self, sweep):
        plain = derive_image_rejection_specs(sweep, 30.0, 0.01)
        tight = derive_image_rejection_specs(sweep, 30.0, 0.01,
                                             margin_deg=0.5)
        spec = tight.specs.get("phase_error_deg")
        assert spec.margin == pytest.approx(0.5)
        limit = plain.phase_allowance_deg
        assert not spec.satisfied_by(limit)
        assert spec.satisfied_by(limit - 0.6)

    def test_unreachable_corner_raises(self, sweep):
        with pytest.raises(DesignError):
            derive_image_rejection_specs(sweep, 30.0, 0.09)

    def test_accepts_fig5_dict_form(self):
        family = fig5_sweep(PHASES)
        derivation = derive_image_rejection_specs(family, 30.0, 0.01)
        assert derivation.phase_allowance_deg == pytest.approx(
            3.6, abs=0.2)

    def test_summary_mentions_target(self, sweep):
        text = derive_image_rejection_specs(sweep, 30.0, 0.01).summary()
        assert "30" in text and "deg" in text

"""Tests for the spec-driven reuse lookup (repro.optimize.reuse)."""

import math

import pytest

from repro.celldb import seed_database
from repro.errors import DesignError
from repro.optimize import (
    BoundKind,
    Spec,
    SpecSet,
    commit_reuse,
    find_reusable_cells,
    judge_cell,
)


def shifter_specs(phase_limit=3.6, gain_limit=0.01):
    return SpecSet("ir_mixer", [
        Spec("phase_error_deg", phase_limit, BoundKind.UPPER, unit="deg"),
        Spec("gain_error", gain_limit, BoundKind.UPPER, scale=0.01),
    ])


@pytest.fixture
def db():
    return seed_database()


class TestJudgeCell:
    def test_qualifying_cell(self, db):
        candidate = judge_cell(db.get("PHASE90-IF"), shifter_specs())
        assert candidate.satisfied
        assert candidate.penalty < 1e-6
        assert candidate.missing == ()

    def test_missing_data_is_infinite_penalty(self, db):
        candidate = judge_cell(db.get("IF-ADDER"), shifter_specs())
        assert not candidate.satisfied
        assert math.isinf(candidate.penalty)
        assert "phase_error_deg" in candidate.missing

    def test_failing_cell_has_finite_penalty(self, db):
        candidate = judge_cell(db.get("PHASE90-VCO"),
                               shifter_specs(phase_limit=1.0))
        assert not candidate.satisfied
        assert candidate.missing == ()
        assert 0 < candidate.penalty < math.inf


class TestFindReusableCells:
    def test_chooses_best_qualifier(self, db):
        report = find_reusable_cells(db, shifter_specs(),
                                     keyword="phase shifter")
        assert report.reused
        assert report.chosen.name == "PHASE90-IF"
        # Ranked qualifying-first, data-less cells last.
        names = [c.name for c in report.candidates]
        assert names.index("PHASE90-IF") < names.index("PHASE90-VCO")

    def test_no_qualifier_means_design_new(self, db):
        report = find_reusable_cells(
            db, shifter_specs(phase_limit=0.5), keyword="phase shifter")
        assert not report.reused
        assert report.chosen is None
        assert "design new" in report.summary()

    def test_empty_specs_rejected(self, db):
        with pytest.raises(DesignError):
            find_reusable_cells(db, SpecSet("empty"))

    def test_lookup_is_read_only(self, db):
        before = db.get("PHASE90-IF").reuse_count
        find_reusable_cells(db, shifter_specs(), keyword="phase shifter")
        assert db.get("PHASE90-IF").reuse_count == before


class TestCommitReuse:
    def test_commit_bumps_the_audit_counter(self, db):
        report = find_reusable_cells(db, shifter_specs(),
                                     keyword="phase shifter")
        before = db.get(report.chosen.name).reuse_count
        cell = commit_reuse(db, report)
        assert cell.reuse_count == before + 1

    def test_commit_without_chosen_raises(self, db):
        report = find_reusable_cells(
            db, shifter_specs(phase_limit=0.5), keyword="phase shifter")
        with pytest.raises(DesignError):
            commit_reuse(db, report)

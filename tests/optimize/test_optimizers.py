"""Tests for the derivative-free optimizers (repro.optimize.optimizers)."""

import math

import pytest

from repro.errors import ConvergenceError, DesignError
from repro.optimize import (
    BoundKind,
    DEFAULT_FAILURE_PENALTY,
    Parameter,
    Spec,
    SpecSet,
    coordinate_search,
    differential_evolution,
    nelder_mead,
    spec_objective,
)
from repro.sweep import ResultCache


def quadratic(params):
    """Smooth convex bowl with the optimum inside the box."""
    return (params["x"] - 0.7) ** 2 + (params["y"] + 0.3) ** 2


def flaky(params):
    """Diverges on half the domain — exercises failure tolerance."""
    if params["x"] > 0.5:
        raise ConvergenceError("solver diverged")
    return (params["x"] + 0.4) ** 2


def noisy(params, rng=None):
    """Stochastic objective: declares rng, gets a per-candidate stream."""
    return (params["x"] - 0.2) ** 2 + 1e-9 * rng.standard_normal()


BOX = [Parameter("x", -2.0, 2.0), Parameter("y", -2.0, 2.0)]


class TestParameter:
    def test_linear_decode_encode(self):
        p = Parameter("r", 100.0, 300.0)
        assert p.decode(0.0) == pytest.approx(100.0)
        assert p.decode(1.0) == pytest.approx(300.0)
        assert p.encode(p.decode(0.37)) == pytest.approx(0.37)

    def test_log_decode_is_geometric(self):
        p = Parameter("i", 1e-5, 1e-2, log=True)
        # Midpoint of a log axis is the geometric mean.
        mid = p.decode(0.5)
        assert mid == pytest.approx(math.sqrt(1e-5 * 1e-2))
        assert p.encode(mid) == pytest.approx(0.5)

    def test_decode_clips_to_bounds(self):
        p = Parameter("r", 1.0, 2.0)
        assert p.decode(-0.5) == pytest.approx(1.0)
        assert p.decode(1.5) == pytest.approx(2.0)

    def test_initial_unit(self):
        assert Parameter("x", 0.0, 10.0).initial_unit() == pytest.approx(0.5)
        assert Parameter("x", 0.0, 10.0, initial=2.5).initial_unit() == \
            pytest.approx(0.25)

    def test_validation(self):
        with pytest.raises(DesignError):
            Parameter("x", 2.0, 1.0)
        with pytest.raises(DesignError):
            Parameter("x", -1.0, 1.0, log=True)
        with pytest.raises(DesignError):
            Parameter("x", 0.0, 1.0, initial=2.0)


class TestOptimizersFindTheMinimum:
    def test_coordinate_search(self):
        result = coordinate_search(quadratic, BOX)
        assert result.best_value < 1e-3
        assert result.best_params["x"] == pytest.approx(0.7, abs=0.05)
        assert result.converged

    def test_nelder_mead(self):
        result = nelder_mead(quadratic, BOX)
        assert result.best_value < 1e-5
        assert result.best_params["y"] == pytest.approx(-0.3, abs=0.01)
        assert result.converged

    def test_differential_evolution(self):
        result = differential_evolution(quadratic, BOX, seed=7,
                                        population=12, generations=40)
        assert result.best_value < 1e-3
        assert result.best_params["x"] == pytest.approx(0.7, abs=0.05)

    def test_history_is_monotone_nonincreasing(self):
        result = differential_evolution(quadratic, BOX, seed=7,
                                        population=8, generations=15)
        assert all(b <= a + 1e-15
                   for a, b in zip(result.history, result.history[1:]))


class TestDeterminism:
    def test_de_bit_identical_across_executors(self):
        """Acceptance: fixed seed -> bit-identical DE results on the
        serial, thread and process executors."""
        runs = {
            name: differential_evolution(
                quadratic, BOX, seed=3, population=10, generations=20,
                executor=executor, jobs=jobs)
            for name, executor, jobs in (
                ("serial", None, None),
                ("thread", "thread", 4),
                ("process", "process", 2),
            )
        }
        reference = runs["serial"]
        for name, result in runs.items():
            assert result.best_value == reference.best_value, name
            assert result.best_params == reference.best_params, name
            assert result.history == reference.history, name

    def test_de_stochastic_objective_deterministic(self):
        serial = differential_evolution(noisy, [Parameter("x", -1, 1)],
                                        seed=5, population=8,
                                        generations=10)
        threaded = differential_evolution(noisy, [Parameter("x", -1, 1)],
                                          seed=5, population=8,
                                          generations=10,
                                          executor="thread", jobs=4)
        assert serial.best_value == threaded.best_value
        assert serial.best_params == threaded.best_params

    def test_different_seeds_differ(self):
        a = differential_evolution(quadratic, BOX, seed=1, population=8,
                                   generations=5)
        b = differential_evolution(quadratic, BOX, seed=2, population=8,
                                   generations=5)
        assert a.history != b.history


class TestFailureTolerance:
    def test_convergence_error_is_penalized_not_fatal(self):
        """Acceptance: a candidate raising ConvergenceError costs the
        failure penalty; the run continues and still finds the optimum
        in the feasible half."""
        result = differential_evolution(flaky, [Parameter("x", -1, 1)],
                                        seed=1, population=8,
                                        generations=15)
        assert result.failed_evaluations > 0
        assert result.best_value < 1e-2
        assert result.best_params["x"] == pytest.approx(-0.4, abs=0.05)

    def test_failure_penalty_value_charged(self):
        def always_fails(params):
            raise ConvergenceError("no dice")

        result = coordinate_search(always_fails, [Parameter("x", 0, 1)],
                                   max_iterations=3)
        assert result.best_value == DEFAULT_FAILURE_PENALTY
        assert result.failed_evaluations == result.evaluations


class TestCacheIntegration:
    def test_pattern_search_hits_the_cache(self):
        cache = ResultCache()
        first = coordinate_search(quadratic, BOX, cache=cache)
        again = coordinate_search(quadratic, BOX, cache=cache)
        assert again.cache_hits > 0
        assert again.best_value == first.best_value


class TestSpecObjective:
    def build(self):
        specs = SpecSet("amp", [
            Spec("gain", 5.0, BoundKind.LOWER),
            Spec("power", 2.0, BoundKind.UPPER),
        ])
        return spec_objective(specs, _measure_amp)

    def test_feasible_region_is_near_zero(self):
        objective = self.build()
        assert objective({"g": 8.0}) < 1e-6  # gain 8, power 0.8: both met

    def test_violations_cost(self):
        objective = self.build()
        assert objective({"g": 3.0}) > objective({"g": 8.0})

    def test_extra_cost_breaks_ties(self):
        specs = SpecSet("amp", [Spec("gain", 5.0, BoundKind.LOWER)])
        objective = spec_objective(specs, _measure_amp, _power_of)
        # Both feasible; the lower-power one must score lower.
        assert objective({"g": 6.0}) < objective({"g": 9.0})

    def test_optimizable(self):
        result = nelder_mead(self.build(), [Parameter("g", 0.0, 20.0)])
        measurements = _measure_amp(result.best_params)
        assert measurements["gain"] >= 5.0 - 1e-6
        assert measurements["power"] <= 2.0 + 1e-6


def _measure_amp(params):
    g = params["g"]
    return {"gain": g, "power": 0.1 * g}


def _power_of(params, measurements):
    return 0.05 * measurements["power"]


class TestValidation:
    def test_needs_parameters(self):
        with pytest.raises(DesignError):
            coordinate_search(quadratic, [])

    def test_duplicate_parameter_names(self):
        with pytest.raises(DesignError):
            nelder_mead(quadratic, [Parameter("x", 0, 1),
                                    Parameter("x", 0, 2)])

    def test_de_population_floor(self):
        with pytest.raises(DesignError):
            differential_evolution(quadratic, BOX, population=2)

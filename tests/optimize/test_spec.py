"""Tests for the spec model (repro.optimize.spec)."""

import math

import pytest

from repro.errors import DesignError
from repro.optimize import BoundKind, Spec, SpecSet


class TestSpec:
    def test_lower_bound_semantics(self):
        spec = Spec("gain_db", 12.0, BoundKind.LOWER)
        assert spec.satisfied_by(14.0)
        assert not spec.satisfied_by(10.0)
        assert spec.margin_of(14.0) == pytest.approx(2.0)
        assert spec.margin_of(10.0) == pytest.approx(-2.0)

    def test_upper_bound_semantics(self):
        spec = Spec("power_mw", 20.0, BoundKind.UPPER)
        assert spec.satisfied_by(15.0)
        assert not spec.satisfied_by(25.0)
        assert spec.margin_of(15.0) == pytest.approx(5.0)

    def test_equal_needs_margin(self):
        with pytest.raises(DesignError):
            Spec("vbe", 0.8, BoundKind.EQUAL)
        spec = Spec("vbe", 0.8, BoundKind.EQUAL, margin=0.05)
        assert spec.satisfied_by(0.82)
        assert not spec.satisfied_by(0.9)

    def test_margin_tightens_the_bound(self):
        spec = Spec("gain_db", 12.0, BoundKind.LOWER, margin=1.0)
        assert not spec.satisfied_by(12.5)
        assert spec.satisfied_by(12.5, with_margin=False)
        assert spec.satisfied_by(13.5)

    def test_penalty_zero_inside_smooth_outside(self):
        spec = Spec("gain_db", 12.0, BoundKind.LOWER)
        assert spec.penalty(15.0) == pytest.approx(0.0, abs=1e-6)
        # Deeper violations cost more, continuously.
        p1, p2 = spec.penalty(11.0), spec.penalty(9.0)
        assert 0 < p1 < p2

    def test_penalty_scales_with_weight(self):
        base = Spec("g", 10.0, BoundKind.LOWER)
        heavy = Spec("g", 10.0, BoundKind.LOWER, weight=5.0)
        assert heavy.penalty(8.0) == pytest.approx(5.0 * base.penalty(8.0))

    def test_nan_measurement_is_infinite_penalty(self):
        spec = Spec("g", 10.0, BoundKind.LOWER)
        assert math.isinf(spec.penalty(float("nan")))
        assert not spec.satisfied_by(float("nan"))

    def test_bound_range(self):
        lower = Spec("g", 10.0, BoundKind.LOWER, margin=1.0)
        upper = Spec("p", 5.0, BoundKind.UPPER)
        lo, hi = lower.bound_range()
        assert lo == pytest.approx(11.0) and hi is None
        lo, hi = upper.bound_range()
        assert lo is None and hi == pytest.approx(5.0)

    def test_validation(self):
        with pytest.raises(DesignError):
            Spec("", 1.0)
        with pytest.raises(DesignError):
            Spec("g", 1.0, weight=0.0)
        with pytest.raises(DesignError):
            Spec("g", 1.0, scale=-1.0)


class TestSpecSet:
    def build(self):
        return SpecSet("mixer", [
            Spec("gain_db", 12.0, BoundKind.LOWER, unit="dB"),
            Spec("power_mw", 20.0, BoundKind.UPPER, unit="mW"),
        ])

    def test_satisfied_and_penalty(self):
        specs = self.build()
        good = {"gain_db": 14.0, "power_mw": 10.0}
        bad = {"gain_db": 9.0, "power_mw": 30.0}
        assert specs.satisfied_by(good)
        assert not specs.satisfied_by(bad)
        assert specs.penalty(good) < 1e-9 < specs.penalty(bad)

    def test_missing_measurement_is_infinite(self):
        specs = self.build()
        assert math.isinf(specs.penalty({"gain_db": 14.0}))
        assert not specs.satisfied_by({"gain_db": 14.0})

    def test_duplicate_name_rejected(self):
        specs = self.build()
        with pytest.raises(DesignError):
            specs.add(Spec("gain_db", 15.0))

    def test_worst_names_the_binding_spec(self):
        specs = self.build()
        score = specs.worst({"gain_db": 9.0, "power_mw": 10.0})
        assert score.spec.name == "gain_db"

    def test_to_specifications_round_trip(self):
        converted = self.build().to_specifications()
        assert [s.name for s in converted] == ["gain_db", "power_mw"]
        gain, power = converted
        assert gain.satisfied_by(14.0) and not gain.satisfied_by(10.0)
        assert power.satisfied_by(10.0) and not power.satisfied_by(25.0)

    def test_describe_mentions_units(self):
        text = self.build().describe()
        assert "dB" in text and "mW" in text

"""Corner-aware reuse ranking: qualification records change the verdict.

The acceptance case for the verification subsystem: a cell that meets a
spec at its nominal operating point but not at its worst corner must be
judged differently once its qualification report is recorded.
"""

import pytest

from repro.celldb import Cell, seed_database
from repro.optimize import (
    BoundKind,
    Spec,
    SpecSet,
    find_reusable_cells,
    judge_cell,
)
from repro.verify import StressRule, qualify_cell


@pytest.fixture(scope="module")
def clean_report():
    return qualify_cell(seed_database().get("PHASE90-IF"),
                        executor="serial")


@pytest.fixture(scope="module")
def stressed_report():
    impossible = (StressRule("impossible", "bjt", "ic_a", limit=1e-12),)
    return qualify_cell(seed_database().get("PHASE90-IF"),
                        rules=impossible, executor="serial")


def shifter_specs(phase_limit=3.6, gain_limit=0.01):
    return SpecSet("ir_mixer", [
        Spec("phase_error_deg", phase_limit, BoundKind.UPPER, unit="deg"),
        Spec("gain_error", gain_limit, BoundKind.UPPER, scale=0.01),
    ])


class TestWorstCornerJudgment:
    def test_corner_ranking_differs_from_nominal(self, clean_report):
        """Nominal says yes, the qualified envelope says no."""
        cell = seed_database().get("PHASE90-IF")
        cell.record_qualification(clean_report)
        nominal_v = clean_report.nominal_measurements()["v_out"]
        worst_v = clean_report.envelope()["v_out"]["max"]
        assert nominal_v < worst_v
        # An upper bound sitting between the two: met at nominal,
        # violated at the worst corner.
        specs = SpecSet("dc_level", [
            Spec("v_out", (nominal_v + worst_v) / 2, BoundKind.UPPER),
        ])

        nominal_only = Cell.from_dict(
            {**cell.to_dict(), "qualification": None})
        assert judge_cell(nominal_only, specs).satisfied

        qualified = judge_cell(cell, specs)
        assert qualified.qualified
        assert not qualified.satisfied
        assert qualified.spec_misses == ("v_out",)
        assert qualified.measurements["v_out"] == worst_v
        assert qualified.worst_corners["v_out"] == \
            clean_report.envelope()["v_out"]["max_corner"]
        assert "worst corner" in qualified.describe()

    def test_worst_corner_headroom_ranks_qualifiers(self, clean_report):
        cell = seed_database().get("PHASE90-IF")
        cell.record_qualification(clean_report)
        # A bound the cell holds across the whole envelope: satisfied,
        # and the penalty reflects worst-corner (not nominal) headroom.
        specs = SpecSet("dc_level", [
            Spec("v_out", clean_report.envelope()["v_out"]["max"] + 0.1,
                 BoundKind.UPPER),
        ])
        candidate = judge_cell(cell, specs)
        assert candidate.satisfied
        assert candidate.stress_clean
        nominal_only = Cell.from_dict(
            {**cell.to_dict(), "qualification": None})
        assert candidate.penalty >= judge_cell(nominal_only,
                                               specs).penalty

    def test_stress_violations_disqualify(self, stressed_report):
        cell = seed_database().get("PHASE90-IF")
        cell.record_qualification(stressed_report)
        candidate = judge_cell(cell, shifter_specs())
        assert not candidate.satisfied
        assert not candidate.stress_clean
        assert candidate.stress_violations > 0
        assert "stress violation" in candidate.describe()

    def test_stressed_cell_loses_the_lookup(self, stressed_report):
        db = seed_database()
        clean_pick = find_reusable_cells(db, shifter_specs(),
                                         keyword="phase shifter")
        assert clean_pick.chosen.name == "PHASE90-IF"

        db.get("PHASE90-IF").record_qualification(stressed_report)
        flagged = find_reusable_cells(db, shifter_specs(),
                                      keyword="phase shifter")
        assert flagged.chosen.name == "PHASE90-VCO"
        names = [c.name for c in flagged.candidates]
        assert names.index("PHASE90-VCO") < names.index("PHASE90-IF")


class TestMissingQuantitiesListing:
    def test_gaps_reported_even_when_other_specs_disqualify(self):
        """Satellite regression: a failing spec must not short-circuit
        the missing-data listing for the other specs."""
        db = seed_database()
        specs = SpecSet("ir_mixer", [
            Spec("phase_error_deg", 1.0, BoundKind.UPPER),  # VCO fails
            Spec("v_out", 5.0, BoundKind.UPPER),  # VCO has no data
        ])
        candidate = judge_cell(db.get("PHASE90-VCO"), specs)
        assert candidate.spec_misses == ("phase_error_deg",)
        assert candidate.missing == ("v_out",)
        text = candidate.describe()
        assert "phase_error_deg" in text and "v_out" in text

        report = find_reusable_cells(db, specs, keyword="phase shifter")
        gaps = report.missing_quantities()
        assert "PHASE90-VCO" in gaps["v_out"]
        assert "missing quantities:" in report.summary()

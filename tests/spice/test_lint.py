"""Connectivity lint: structural defects diagnosed before Newton runs."""

from pathlib import Path

import pytest

from repro.errors import ConnectivityError
from repro.spice import check_circuit, lint_circuit, parse_deck, run_deck
from repro.spice.elements import (
    Capacitor,
    CurrentSource,
    Resistor,
    VoltageSource,
)
from repro.spice.netlist import Circuit

DECKS = sorted(
    (Path(__file__).resolve().parents[2] / "examples" / "decks").glob("*.cir")
)


def _circuit(*elements):
    ckt = Circuit("lint-test")
    for element in elements:
        ckt.add(element)
    return ckt


class TestFloatingNode:
    def test_single_connection_node_is_flagged(self):
        ckt = _circuit(
            VoltageSource("V1", ("in", "0"), dc=1.0),
            Resistor("R1", ("in", "0"), 1e3),
            Resistor("RD", ("in", "dangle"), 1e3),
        )
        issues = check_circuit(ckt)
        assert [i.code for i in issues] == ["floating-node"]
        assert issues[0].nodes == ("dangle",)
        assert "RD" in issues[0].message

    def test_voltage_defined_single_node_is_fine(self):
        # V2 pins node "tap" through its branch equation; no KCL issue.
        ckt = _circuit(
            VoltageSource("V1", ("in", "0"), dc=1.0),
            Resistor("R1", ("in", "0"), 1e3),
            VoltageSource("V2", ("tap", "0"), dc=2.0),
        )
        assert check_circuit(ckt) == []

    def test_dangling_current_source_is_flagged(self):
        ckt = _circuit(
            VoltageSource("V1", ("in", "0"), dc=1.0),
            Resistor("R1", ("in", "0"), 1e3),
            CurrentSource("I1", ("in", "sink"), dc=1e-3),
        )
        codes = {i.code for i in check_circuit(ckt)}
        assert "floating-node" in codes


class TestDCPath:
    def test_capacitor_only_node_is_flagged(self):
        ckt = _circuit(
            VoltageSource("V1", ("in", "0"), dc=1.0),
            Resistor("R1", ("in", "out"), 1e3),
            Resistor("R2", ("out", "0"), 1e3),
            Capacitor("C1", ("out", "mid"), 1e-12),
            Capacitor("C2", ("mid", "0"), 1e-12),
        )
        issues = check_circuit(ckt)
        assert [i.code for i in issues] == ["no-dc-path"]
        assert issues[0].nodes == ("mid",)

    def test_capacitor_bridged_by_resistor_is_fine(self):
        ckt = _circuit(
            VoltageSource("V1", ("in", "0"), dc=1.0),
            Resistor("R1", ("in", "out"), 1e3),
            Capacitor("C1", ("out", "0"), 1e-12),
            Resistor("R2", ("out", "0"), 1e6),
        )
        assert check_circuit(ckt) == []

    def test_current_source_does_not_provide_dc_path(self):
        # The bias current reaches "b" but cannot define its voltage.
        ckt = _circuit(
            VoltageSource("V1", ("in", "0"), dc=1.0),
            Resistor("R1", ("in", "0"), 1e3),
            CurrentSource("I1", ("0", "b"), dc=1e-3),
            Capacitor("C1", ("b", "0"), 1e-12),
        )
        codes = [i.code for i in check_circuit(ckt)]
        assert codes == ["no-dc-path"]


class TestIslands:
    def test_ungrounded_island_is_flagged(self):
        ckt = _circuit(
            VoltageSource("V1", ("in", "0"), dc=1.0),
            Resistor("R1", ("in", "0"), 1e3),
            Resistor("RA", ("a", "b"), 1e3),
            Resistor("RB", ("b", "a"), 2e3),
        )
        issues = check_circuit(ckt)
        assert [i.code for i in issues] == ["ungrounded-island"]
        assert issues[0].nodes == ("a", "b")

    def test_island_subsumes_no_dc_path(self):
        # Island members must not be double-reported as no-dc-path.
        ckt = _circuit(
            VoltageSource("V1", ("in", "0"), dc=1.0),
            Resistor("R1", ("in", "0"), 1e3),
            Capacitor("CA", ("a", "b"), 1e-12),
        )
        codes = [i.code for i in check_circuit(ckt)]
        assert codes.count("ungrounded-island") == 1
        assert "no-dc-path" not in codes


class TestRunDeckIntegration:
    @pytest.mark.parametrize("path", DECKS, ids=lambda p: p.stem)
    def test_example_decks_pass_lint(self, path):
        deck = parse_deck(path.read_text())
        assert check_circuit(deck.circuit) == []

    def test_run_deck_raises_before_solving(self):
        text = (
            "broken\n"
            "V1 in 0 5\n"
            "R1 in out 1k\n"
            "R2 out 0 1k\n"
            "C1 out mid 1p\n"
            "C2 mid 0 1p\n"
            ".OP\n.END\n"
        )
        with pytest.raises(ConnectivityError) as excinfo:
            run_deck(text)
        issue, = excinfo.value.issues
        assert issue.code == "no-dc-path"
        assert issue.nodes == ("mid",)
        assert "mid" in str(excinfo.value)

    def test_run_deck_lint_can_be_disabled(self):
        # The DIAG_GSHUNT regularization makes the deck solvable anyway;
        # lint=False restores the permissive pre-lint behavior.
        text = (
            "permissive\n"
            "V1 in 0 5\n"
            "R1 in out 1k\n"
            "R2 out 0 1k\n"
            "C1 out mid 1p\n"
            ".OP\n.END\n"
        )
        run = run_deck(text, lint=False)
        assert len(run.results) == 1

    def test_lint_circuit_raises_structured_error(self):
        ckt = _circuit(
            VoltageSource("V1", ("in", "0"), dc=1.0),
            Resistor("R1", ("in", "0"), 1e3),
            Resistor("RD", ("in", "x"), 1e3),
        )
        with pytest.raises(ConnectivityError) as excinfo:
            lint_circuit(ckt)
        assert excinfo.value.issues[0].code == "floating-node"

    def test_connectivity_error_pickles_with_issues(self):
        import pickle

        ckt = _circuit(
            VoltageSource("V1", ("in", "0"), dc=1.0),
            Resistor("R1", ("in", "0"), 1e3),
            Resistor("RD", ("in", "x"), 1e3),
        )
        try:
            lint_circuit(ckt)
        except ConnectivityError as err:
            clone = pickle.loads(pickle.dumps(err))
            assert clone.issues == err.issues

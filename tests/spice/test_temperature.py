"""Circuit-level temperature analysis tests."""

import pytest

from repro.devices.temperature import celsius
from repro.errors import AnalysisError
from repro.spice import (
    Circuit,
    Simulator,
    circuit_at_temperature,
    temperature_sweep,
)
from repro.spice.elements import (
    BJT,
    CurrentSource,
    Diode,
    DiodeModel,
    Resistor,
    VoltageSource,
)


def diode_circuit():
    ckt = Circuit("d")
    ckt.add(CurrentSource("IB", ("0", "a"), dc=1e-3))
    ckt.add(Diode("D1", ("a", "0"), DiodeModel(IS=1e-14)))
    return ckt


def bjt_circuit(model):
    ckt = Circuit("q")
    ckt.add(VoltageSource("VCC", ("vcc", "0"), dc=5.0))
    ckt.add(VoltageSource("VB", ("b", "0"), dc=0.75))
    ckt.add(Resistor("RC", ("vcc", "c"), 1e3))
    ckt.add(BJT("Q1", ("c", "b", "0"), model))
    return ckt


class TestRetargeting:
    def test_original_untouched(self, hf_model):
        original = bjt_circuit(hf_model)
        hot = circuit_at_temperature(original, celsius(125.0))
        assert original.element("Q1").model.TNOM == hf_model.TNOM
        assert hot.element("Q1").model.TNOM == pytest.approx(celsius(125.0))

    def test_linear_elements_shared(self, hf_model):
        original = bjt_circuit(hf_model)
        hot = circuit_at_temperature(original, celsius(125.0))
        assert hot.element("RC") is original.element("RC")

    def test_title_carries_temperature(self, hf_model):
        hot = circuit_at_temperature(bjt_circuit(hf_model), celsius(85.0))
        assert "85C" in hot.title

    def test_rejects_bad_temperature(self, hf_model):
        with pytest.raises(AnalysisError):
            circuit_at_temperature(bjt_circuit(hf_model), -10.0)


class TestPhysics:
    def test_diode_forward_voltage_falls_when_hot(self):
        cold_v = Simulator(
            circuit_at_temperature(diode_circuit(), celsius(-20.0))
        ).operating_point().voltage("a")
        hot_v = Simulator(
            circuit_at_temperature(diode_circuit(), celsius(100.0))
        ).operating_point().voltage("a")
        assert hot_v < cold_v - 0.1

    def test_diode_tempco_about_minus_2mv(self):
        results = temperature_sweep(
            diode_circuit(), [300.0, 310.0],
            lambda ckt: Simulator(ckt).operating_point().voltage("a"),
        )
        tempco = (results[1][1] - results[0][1]) / 10.0
        assert -2.6e-3 < tempco < -1.0e-3

    def test_bjt_collector_current_rises_when_hot(self, hf_model):
        """At fixed Vbe drive, Ic grows strongly with temperature."""
        def ic_at(temp):
            ckt = circuit_at_temperature(bjt_circuit(hf_model), temp)
            result = Simulator(ckt).operating_point()
            return (5.0 - result.voltage("c")) / 1e3

        assert ic_at(330.0) > 2.0 * ic_at(300.15)

    def test_sweep_result_structure(self, hf_model):
        results = temperature_sweep(
            bjt_circuit(hf_model), [280.0, 300.0, 320.0],
            lambda ckt: Simulator(ckt).operating_point().voltage("c"),
        )
        assert [t for t, _ in results] == [280.0, 300.0, 320.0]
        # vc falls monotonically as the device conducts harder
        voltages = [v for _, v in results]
        assert voltages[0] > voltages[1] > voltages[2]

    def test_empty_sweep_rejected(self, hf_model):
        with pytest.raises(AnalysisError):
            temperature_sweep(bjt_circuit(hf_model), [],
                              lambda ckt: None)

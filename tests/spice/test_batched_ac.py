"""Batched frequency-domain solves vs the per-frequency reference path.

The batched AC/noise sweeps assemble G and C once and solve each block
of frequencies as one stacked ``(block, n, n)`` system.  These tests pin
the batched results against (a) the ``batched=False`` per-frequency
loop on the same engine, and (b) the legacy engine, which has no
``solve_batched`` and always takes the fallback loop — on every example
deck that carries the relevant analysis card.
"""

from pathlib import Path

import numpy as np
import pytest

from repro.spice.ac import ac_block_size, frequency_grid, solve_ac
from repro.spice.engine import (
    DenseLUSolver,
    LegacyEngine,
    SparseLUSolver,
    resolve_engine,
)
from repro.spice.noise import solve_noise
from repro.spice.parser import parse_deck

DECKS = Path(__file__).resolve().parents[2] / "examples" / "decks"


def _deck(name):
    return parse_deck((DECKS / name).read_text())


def _card(deck, kind):
    for card in deck.analyses:
        if card.kind == kind:
            return card
    raise AssertionError(f"deck has no .{kind.upper()} card")


def _grid(card):
    return frequency_grid(card.args["start"], card.args["stop"],
                          card.args["points"], card.args["sweep"])


class TestBlockSizing:
    def test_small_systems_cap_at_512(self):
        assert ac_block_size(2) == 512
        assert ac_block_size(10) == 512

    def test_budget_shrinks_with_system_size(self):
        big = ac_block_size(500)
        assert 1 <= big < 512
        assert ac_block_size(1000) < big

    def test_never_below_one(self):
        assert ac_block_size(10 ** 6) == 1

    def test_explicit_limit(self):
        # 16 bytes/entry * n^2 = 6400 bytes/system at n=20.
        assert ac_block_size(20, limit=64_000) == 10


class TestBatchedSolver:
    def _stack(self, count, n, seed):
        rng = np.random.default_rng(seed)
        systems = (rng.standard_normal((count, n, n))
                   + 1j * rng.standard_normal((count, n, n))
                   + 4.0 * np.eye(n))
        return systems, rng

    @pytest.mark.parametrize("solver_cls", [DenseLUSolver, SparseLUSolver])
    def test_single_rhs_matches_per_system_solves(self, solver_cls):
        systems, rng = self._stack(5, 6, seed=0)
        rhs = rng.standard_normal(6) + 1j * rng.standard_normal(6)
        solver = solver_cls()
        batched = solver.solve_batched(systems, rhs)
        assert batched.shape == (5, 6)
        for k in range(5):
            np.testing.assert_allclose(
                batched[k], np.linalg.solve(systems[k], rhs),
                rtol=1e-10, atol=1e-12,
            )

    @pytest.mark.parametrize("solver_cls", [DenseLUSolver, SparseLUSolver])
    def test_multi_rhs(self, solver_cls):
        systems, rng = self._stack(4, 5, seed=1)
        rhs = (rng.standard_normal((4, 5, 3))
               + 1j * rng.standard_normal((4, 5, 3)))
        batched = solver_cls().solve_batched(systems, rhs)
        assert batched.shape == (4, 5, 3)
        for k in range(4):
            np.testing.assert_allclose(
                batched[k], np.linalg.solve(systems[k], rhs[k]),
                rtol=1e-10, atol=1e-12,
            )

    def test_batched_solves_are_counted(self):
        from repro.spice.engine import EngineStats

        systems, rng = self._stack(3, 4, seed=2)
        rhs = rng.standard_normal(4).astype(complex)
        solver = DenseLUSolver()
        sink = EngineStats()
        solver.bind(sink)
        solver.solve_batched(systems, rhs)
        assert sink.factorizations == 3
        assert sink.solves == 3

    def test_legacy_engine_has_no_batched_entry_point(self):
        deck = _deck("ce_stage.cir")
        legacy = resolve_engine(deck.circuit, "legacy")
        assert isinstance(legacy, LegacyEngine)
        assert getattr(legacy, "solve_batched", None) is None


class TestBatchedACRegression:
    @pytest.mark.parametrize("deck_name", ["ce_stage.cir",
                                           "noise_bench.cir"])
    def test_batched_equals_unbatched(self, deck_name):
        deck = _deck(deck_name)
        card = _card(deck, "ac" if deck_name == "ce_stage.cir"
                     else "noise")
        freqs = _grid(card)
        batched = solve_ac(deck.circuit, freqs, batched=True)
        loop = solve_ac(deck.circuit, freqs, batched=False)
        np.testing.assert_array_equal(batched.frequencies,
                                      loop.frequencies)
        np.testing.assert_allclose(batched.solutions, loop.solutions,
                                   rtol=1e-12, atol=1e-15)

    def test_batched_equals_legacy_engine(self):
        deck = _deck("ce_stage.cir")
        freqs = _grid(_card(deck, "ac"))
        batched = solve_ac(deck.circuit, freqs)
        legacy = solve_ac(deck.circuit, freqs, engine="legacy")
        np.testing.assert_allclose(batched.solutions, legacy.solutions,
                                   rtol=1e-9, atol=1e-12)

    def test_block_boundaries_are_seamless(self):
        # Force tiny blocks by monkeypatching would hide the real path;
        # instead sweep more frequencies than one block at a realistic
        # size and check against the loop.
        deck = _deck("ce_stage.cir")
        freqs = frequency_grid(1e3, 1e9, 200, "dec")
        batched = solve_ac(deck.circuit, freqs, batched=True)
        loop = solve_ac(deck.circuit, freqs, batched=False)
        np.testing.assert_allclose(batched.solutions, loop.solutions,
                                   rtol=1e-12, atol=1e-15)

    def test_single_frequency_uses_plain_solve(self):
        deck = _deck("ce_stage.cir")
        result = solve_ac(deck.circuit, [1e6], batched=True)
        assert result.solutions.shape[0] == 1


class TestBatchedNoiseRegression:
    def test_batched_equals_unbatched_on_noise_bench(self):
        deck = _deck("noise_bench.cir")
        card = _card(deck, "noise")
        freqs = _grid(card)
        kwargs = dict(input_source=card.args["source"])
        batched = solve_noise(deck.circuit, card.args["output"], freqs,
                              batched=True, **kwargs)
        loop = solve_noise(deck.circuit, card.args["output"], freqs,
                           batched=False, **kwargs)
        np.testing.assert_allclose(batched.output_density,
                                   loop.output_density,
                                   rtol=1e-12, atol=0.0)
        np.testing.assert_allclose(batched.gain_squared,
                                   loop.gain_squared,
                                   rtol=1e-12, atol=0.0)
        assert set(batched.contributions) == set(loop.contributions)
        for name, values in batched.contributions.items():
            np.testing.assert_allclose(values, loop.contributions[name],
                                       rtol=1e-9, atol=1e-30)

    def test_batched_equals_legacy_engine(self):
        deck = _deck("noise_bench.cir")
        card = _card(deck, "noise")
        freqs = _grid(card)
        batched = solve_noise(deck.circuit, card.args["output"], freqs,
                              input_source=card.args["source"])
        legacy = solve_noise(deck.circuit, card.args["output"], freqs,
                             input_source=card.args["source"],
                             engine="legacy")
        np.testing.assert_allclose(batched.output_density,
                                   legacy.output_density,
                                   rtol=1e-8)
        np.testing.assert_allclose(batched.gain_squared,
                                   legacy.gain_squared, rtol=1e-8)

    def test_batched_without_input_source(self):
        deck = _deck("noise_bench.cir")
        card = _card(deck, "noise")
        freqs = _grid(card)
        batched = solve_noise(deck.circuit, card.args["output"], freqs,
                              batched=True)
        loop = solve_noise(deck.circuit, card.args["output"], freqs,
                           batched=False)
        assert batched.gain_squared is None
        np.testing.assert_allclose(batched.output_density,
                                   loop.output_density, rtol=1e-12)

"""DC operating-point tests against closed-form circuit theory."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.devices import thermal_voltage
from repro.errors import ConvergenceError
from repro.spice import Circuit, Simulator, solve_dc
from repro.spice.dcop import Tolerances
from repro.spice.elements import (
    BJT,
    CCCS,
    CCVS,
    CurrentSource,
    Diode,
    DiodeModel,
    Resistor,
    VCCS,
    VCVS,
    VoltageSource,
)
from repro.spice.mna import load_circuit

VT = thermal_voltage()


def op(ckt):
    return Simulator(ckt).operating_point()


class TestLinearDC:
    def test_voltage_divider(self):
        ckt = Circuit("div")
        ckt.add(VoltageSource("V1", ("in", "0"), dc=10.0))
        ckt.add(Resistor("R1", ("in", "out"), 3e3))
        ckt.add(Resistor("R2", ("out", "0"), 1e3))
        result = op(ckt)
        assert result.voltage("out") == pytest.approx(2.5, rel=1e-6)
        assert result.branch_current("V1") == pytest.approx(-10.0 / 4e3,
                                                            rel=1e-6)

    def test_current_source_into_resistor(self):
        ckt = Circuit("ir")
        ckt.add(CurrentSource("I1", ("0", "a"), dc=1e-3))
        ckt.add(Resistor("R1", ("a", "0"), 2e3))
        assert op(ckt).voltage("a") == pytest.approx(2.0, rel=1e-6)

    def test_superposition(self):
        """V and I sources together follow superposition."""
        def build(v, i):
            ckt = Circuit("sup")
            ckt.add(VoltageSource("V1", ("a", "0"), dc=v))
            ckt.add(Resistor("R1", ("a", "b"), 1e3))
            ckt.add(Resistor("R2", ("b", "0"), 1e3))
            ckt.add(CurrentSource("I1", ("0", "b"), dc=i))
            return op(ckt).voltage("b")

        both = build(10.0, 2e-3)
        only_v = build(10.0, 0.0)
        only_i = build(0.0, 2e-3)
        assert both == pytest.approx(only_v + only_i, rel=1e-6)

    @given(st.floats(min_value=1.0, max_value=1e6),
           st.floats(min_value=1.0, max_value=1e6))
    @settings(max_examples=30, deadline=None)
    def test_divider_property(self, r1, r2):
        ckt = Circuit("div")
        ckt.add(VoltageSource("V1", ("in", "0"), dc=1.0))
        ckt.add(Resistor("R1", ("in", "out"), r1))
        ckt.add(Resistor("R2", ("out", "0"), r2))
        expected = r2 / (r1 + r2)
        assert op(ckt).voltage("out") == pytest.approx(expected, rel=1e-6)

    def test_resistor_ladder(self):
        """A 10-section R-2R ladder: closed-form binary weights."""
        ckt = Circuit("r2r")
        ckt.add(VoltageSource("V1", ("n0", "0"), dc=1.0))
        sections = 8
        for k in range(sections):
            ckt.add(Resistor(f"RS{k}", (f"n{k}", f"n{k+1}"), 1e3))
            ckt.add(Resistor(f"RP{k}", (f"n{k+1}", "0"),
                             2e3 if k < sections - 1 else 2e3))
        result = op(ckt)
        # each node halves the previous one (R-2R property)
        for k in range(1, sections):
            ratio = result.voltage(f"n{k+1}") / result.voltage(f"n{k}")
            assert 0.3 < ratio < 0.7

    def test_kcl_residual_at_solution(self):
        """Property: the loaded residual vanishes at the solution."""
        ckt = Circuit("kcl")
        ckt.add(VoltageSource("V1", ("a", "0"), dc=5.0))
        ckt.add(Resistor("R1", ("a", "b"), 1e3))
        ckt.add(Resistor("R2", ("b", "c"), 2e3))
        ckt.add(Resistor("R3", ("c", "0"), 3e3))
        ckt.add(CurrentSource("I1", ("0", "b"), dc=1e-3))
        x = solve_dc(ckt)
        ctx = load_circuit(ckt, x)
        assert np.max(np.abs(ctx.i_vec)) < 1e-9


class TestControlledSourcesDC:
    def test_vcvs(self):
        ckt = Circuit("vcvs")
        ckt.add(VoltageSource("V1", ("a", "0"), dc=2.0))
        ckt.add(Resistor("RL0", ("a", "0"), 1e6))
        ckt.add(VCVS("E1", ("b", "0", "a", "0"), gain=5.0))
        ckt.add(Resistor("RL", ("b", "0"), 1e3))
        assert op(ckt).voltage("b") == pytest.approx(10.0, rel=1e-6)

    def test_vccs(self):
        ckt = Circuit("vccs")
        ckt.add(VoltageSource("V1", ("a", "0"), dc=2.0))
        ckt.add(VCCS("G1", ("0", "b", "a", "0"), gm=1e-3))
        ckt.add(Resistor("RL", ("b", "0"), 1e3))
        # current 2mA pushed into b -> 2V
        assert op(ckt).voltage("b") == pytest.approx(2.0, rel=1e-6)

    def test_cccs(self):
        ckt = Circuit("cccs")
        control = ckt.add(VoltageSource("V1", ("a", "0"), dc=1.0))
        ckt.add(Resistor("R1", ("a", "0"), 1e3))  # i(V1) = -1mA
        ckt.add(CCCS("F1", ("0", "b"), control, 2.0))
        ckt.add(Resistor("RL", ("b", "0"), 1e3))
        # i(V1) = -1mA (SPICE convention), gain 2 -> -2mA from 0 to b
        assert op(ckt).voltage("b") == pytest.approx(-2.0, rel=1e-6)

    def test_ccvs(self):
        ckt = Circuit("ccvs")
        ckt.add(VoltageSource("V1", ("a", "0"), dc=1.0))
        ckt.add(Resistor("R1", ("a", "0"), 1e3))
        control = ckt.element("V1")
        ckt.add(CCVS("H1", ("b", "0"), control, 4e3))
        ckt.add(Resistor("RL", ("b", "0"), 1e3))
        assert op(ckt).voltage("b") == pytest.approx(-4.0, rel=1e-6)

    def test_op_amp_feedback_model(self):
        """Ideal inverting amplifier from a high-gain VCVS."""
        ckt = Circuit("inv")
        ckt.add(VoltageSource("VIN", ("in", "0"), dc=1.0))
        ckt.add(Resistor("R1", ("in", "minus"), 1e3))
        ckt.add(Resistor("R2", ("minus", "out"), 10e3))
        ckt.add(VCVS("EOP", ("out", "0", "0", "minus"), gain=1e6))
        assert op(ckt).voltage("out") == pytest.approx(-10.0, rel=1e-3)


class TestNonlinearDC:
    def test_diode_resistor(self):
        ckt = Circuit("dr")
        ckt.add(VoltageSource("V1", ("in", "0"), dc=5.0))
        ckt.add(Resistor("R1", ("in", "d"), 1e3))
        ckt.add(Diode("D1", ("d", "0"), DiodeModel(IS=1e-14)))
        result = op(ckt)
        vd = result.voltage("d")
        i_resistor = (5.0 - vd) / 1e3
        i_diode = 1e-14 * (math.exp(vd / VT) - 1)
        assert i_resistor == pytest.approx(i_diode, rel=1e-4)

    def test_diode_with_series_rs(self):
        model = DiodeModel(IS=1e-14, RS=10.0)
        ckt = Circuit("drs")
        ckt.add(VoltageSource("V1", ("in", "0"), dc=5.0))
        ckt.add(Resistor("R1", ("in", "d"), 1e3))
        ckt.add(Diode("D1", ("d", "0"), model))
        vd_with_rs = op(ckt).voltage("d")
        ckt2 = Circuit("drs0")
        ckt2.add(VoltageSource("V1", ("in", "0"), dc=5.0))
        ckt2.add(Resistor("R1", ("in", "d"), 1e3))
        ckt2.add(Diode("D1", ("d", "0"), DiodeModel(IS=1e-14)))
        vd_without = ckt2 and op(ckt2).voltage("d")
        assert vd_with_rs > vd_without  # RS adds drop

    def test_reverse_diode_blocks(self):
        ckt = Circuit("drev")
        ckt.add(VoltageSource("V1", ("in", "0"), dc=-5.0))
        ckt.add(Resistor("R1", ("in", "d"), 1e3))
        ckt.add(Diode("D1", ("d", "0"), DiodeModel(IS=1e-14)))
        # virtually no current -> full -5 V across the diode
        assert op(ckt).voltage("d") == pytest.approx(-5.0, abs=1e-3)

    def test_diode_stack_shares_voltage(self):
        ckt = Circuit("stack")
        ckt.add(VoltageSource("V1", ("in", "0"), dc=3.0))
        ckt.add(Resistor("R1", ("in", "a"), 1e3))
        ckt.add(Diode("D1", ("a", "b"), DiodeModel(IS=1e-14)))
        ckt.add(Diode("D2", ("b", "0"), DiodeModel(IS=1e-14)))
        result = op(ckt)
        va, vb = result.voltage("a"), result.voltage("b")
        assert (va - vb) == pytest.approx(vb, rel=1e-3)  # equal drops

    def test_bjt_forward_active(self, hf_model):
        ckt = Circuit("fa")
        ckt.add(VoltageSource("VCC", ("vcc", "0"), dc=5.0))
        ckt.add(VoltageSource("VB", ("b", "0"), dc=0.75))
        ckt.add(Resistor("RC", ("vcc", "c"), 1e3))
        ckt.add(BJT("Q1", ("c", "b", "0"), hf_model))
        result = op(ckt)
        dev = result.device_operating_point("Q1")
        assert dev.ic > 1e-5
        assert dev.beta_dc > 20
        # KCL at collector: resistor current equals device Ic
        assert (5.0 - result.voltage("c")) / 1e3 == pytest.approx(
            dev.ic, rel=1e-3
        )

    def test_bjt_saturation_region(self, hf_model):
        ckt = Circuit("sat")
        ckt.add(VoltageSource("VCC", ("vcc", "0"), dc=5.0))
        ckt.add(VoltageSource("VB", ("b", "0"), dc=0.9))
        ckt.add(Resistor("RC", ("vcc", "c"), 100e3))  # starves the collector
        ckt.add(BJT("Q1", ("c", "b", "0"), hf_model))
        vce = op(ckt).voltage("c")
        assert vce < 0.3  # deep saturation

    def test_pnp_mirror_image(self, hf_model):
        pnp = hf_model.replace(polarity="pnp", name="QP")
        ckt = Circuit("pnp")
        ckt.add(VoltageSource("VEE", ("vee", "0"), dc=5.0))
        ckt.add(VoltageSource("VB", ("b", "0"), dc=5.0 - 0.75))
        ckt.add(Resistor("RC", ("c", "0"), 1e3))
        ckt.add(BJT("Q1", ("c", "b", "vee"), pnp))
        result = op(ckt)
        vc = result.voltage("c")
        assert vc > 0.01  # collector pulled up by pnp current

    def test_current_mirror(self, hf_model):
        ckt = Circuit("mirror")
        ckt.add(VoltageSource("VCC", ("vcc", "0"), dc=5.0))
        ckt.add(CurrentSource("IREF", ("vcc", "b"), dc=1e-3))
        # diode-connected reference
        ckt.add(BJT("Q1", ("b", "b", "0"), hf_model))
        ckt.add(BJT("Q2", ("c", "b", "0"), hf_model))
        ckt.add(Resistor("RL", ("vcc", "c"), 1e3))
        result = op(ckt)
        i_out = (5.0 - result.voltage("c")) / 1e3
        assert i_out == pytest.approx(1e-3, rel=0.15)  # mirror ratio ~1

    def test_differential_pair_balance(self, hf_model):
        ckt = Circuit("diff")
        ckt.add(VoltageSource("VCC", ("vcc", "0"), dc=5.0))
        ckt.add(Resistor("RC1", ("vcc", "c1"), 500.0))
        ckt.add(Resistor("RC2", ("vcc", "c2"), 500.0))
        ckt.add(VoltageSource("VB1", ("b1", "0"), dc=2.0))
        ckt.add(VoltageSource("VB2", ("b2", "0"), dc=2.0))
        ckt.add(BJT("Q1", ("c1", "b1", "e"), hf_model))
        ckt.add(BJT("Q2", ("c2", "b2", "e"), hf_model))
        ckt.add(CurrentSource("IT", ("e", "0"), dc=2e-3))
        result = op(ckt)
        assert result.voltage("c1") == pytest.approx(result.voltage("c2"),
                                                     abs=1e-6)
        # each side carries half the tail current (alpha ~ 1)
        i1 = (5.0 - result.voltage("c1")) / 500.0
        assert i1 == pytest.approx(1e-3, rel=0.05)

    def test_differential_pair_full_steering(self, hf_model):
        ckt = Circuit("steer")
        ckt.add(VoltageSource("VCC", ("vcc", "0"), dc=5.0))
        ckt.add(Resistor("RC1", ("vcc", "c1"), 500.0))
        ckt.add(Resistor("RC2", ("vcc", "c2"), 500.0))
        ckt.add(VoltageSource("VB1", ("b1", "0"), dc=2.3))
        ckt.add(VoltageSource("VB2", ("b2", "0"), dc=2.0))
        ckt.add(BJT("Q1", ("c1", "b1", "e"), hf_model))
        ckt.add(BJT("Q2", ("c2", "b2", "e"), hf_model))
        ckt.add(CurrentSource("IT", ("e", "0"), dc=2e-3))
        result = op(ckt)
        # 300 mV >> vt fully steers the tail current into Q1
        i1 = (5.0 - result.voltage("c1")) / 500.0
        i2 = (5.0 - result.voltage("c2")) / 500.0
        assert i1 > 100 * i2


class TestHomotopies:
    def test_source_stepping_kicks_in(self, hf_model):
        """A deliberately hard start: many stacked junctions from 0V."""
        ckt = Circuit("hard")
        ckt.add(VoltageSource("VCC", ("n0", "0"), dc=12.0))
        for k in range(6):
            ckt.add(Diode(f"D{k}", (f"n{k}", f"n{k+1}"),
                          DiodeModel(IS=1e-16)))
        ckt.add(Resistor("RL", ("n6", "0"), 10.0))
        result = op(ckt)
        total_drop = 12.0 - result.voltage("n6")
        assert 3.0 < total_drop < 7.0  # ~6 junction drops

    def test_tolerances_respected(self):
        ckt = Circuit("tol")
        ckt.add(VoltageSource("V1", ("a", "0"), dc=1.0))
        ckt.add(Resistor("R1", ("a", "0"), 1e3))
        x = solve_dc(ckt, tolerances=Tolerances(reltol=1e-9, vntol=1e-12))
        assert x[ckt.node_index("a")] == pytest.approx(1.0, rel=1e-6)

    def test_warm_start_limits_dict(self, hf_model):
        ckt = Circuit("warm")
        ckt.add(VoltageSource("VB", ("b", "0"), dc=0.7))
        ckt.add(BJT("Q1", ("b", "b", "0"), hf_model))
        limits = {}
        solve_dc(ckt, limits=limits)
        assert "Q1" in limits


class TestWeightedMaxError:
    """The shared vectorized tolerance kernel (Newton + transient LTE)."""

    def test_mixed_node_branch_scaling(self):
        from repro.spice.dcop import weighted_max_error

        delta = np.array([1e-6, 2e-6, 1e-12])
        x = np.array([1.0, 0.0, 0.5])
        # 2 nodes (vntol=1e-6) then 1 branch (abstol=1e-12)
        err = weighted_max_error(delta, x, x + delta, 2,
                                 reltol=1e-3, atol_nodes=1e-6,
                                 atol_branches=1e-12)
        # branch entry: 1e-12 / (1e-3*0.5 + 1e-12) ~ 2e-9; node 1:
        # 1e-6/(1e-3+1e-6) ~ 1e-3; node 2 dominates: 2e-6/1e-6 = 2.
        assert err == pytest.approx(2.0, rel=1e-2)

    def test_matches_scalar_loop(self):
        from repro.spice.dcop import weighted_max_error

        rng = np.random.default_rng(17)
        num_nodes = 5
        delta = 1e-5 * rng.standard_normal(8)
        a = rng.standard_normal(8)
        b = a + delta
        reltol, vntol, abstol = 1e-3, 1e-6, 1e-12
        expected = 0.0
        for i in range(8):
            atol = vntol if i < num_nodes else abstol
            scale = reltol * max(abs(a[i]), abs(b[i])) + atol
            expected = max(expected, abs(delta[i]) / scale)
        got = weighted_max_error(delta, a, b, num_nodes,
                                 reltol, vntol, abstol)
        assert got == pytest.approx(expected, rel=1e-12)

    def test_converged_uses_both_tolerances(self):
        tol = Tolerances(reltol=1e-3, vntol=1e-6, abstol=1e-12)
        x = np.array([1.0, 1e-9])
        # node step within vntol, branch step within abstol -> converged
        assert tol.converged(np.array([5e-7, 5e-13]), x, 1)
        # branch step violating abstol alone -> not converged
        assert not tol.converged(np.array([5e-7, 5e-11]), x, 1)
        # node step violating vntol alone (small voltage, so the
        # absolute term dominates the scale) -> not converged
        small = np.array([1e-4, 1e-9])
        assert not tol.converged(np.array([5e-5, 5e-13]), small, 1)


class TestConvergenceForensics:
    """A failed solve must say where and why it died (the report that
    FailedPoint carries across process-pool boundaries)."""

    def _impossible(self):
        ckt = Circuit("stuck")
        ckt.add(VoltageSource("V1", ("in", "0"), dc=5.0))
        ckt.add(Resistor("R1", ("in", "out"), 1e3))
        ckt.add(Diode("D1", ("out", "0"), DiodeModel(IS=1e-14)))
        return ckt

    def _impossible_tolerances(self):
        # Unsatisfiable in double precision: every homotopy stage fails.
        return Tolerances(reltol=0.0, vntol=1e-30, abstol=1e-30,
                          max_iterations=25)

    def test_report_populated_on_failure(self):
        with pytest.raises(ConvergenceError) as excinfo:
            solve_dc(self._impossible(),
                     tolerances=self._impossible_tolerances())
        report = excinfo.value.report
        assert report is not None
        assert report.stage == "source_stepping"
        assert 1 <= report.iterations <= 25
        assert report.residual > 1.0
        assert report.worst_name in ("V(in)", "V(out)", "I(V1)")
        # The earlier homotopy stages left their trace.
        assert any("newton" in line for line in report.history)
        assert any("gmin" in line for line in report.history)
        summary = report.summary()
        assert "stage=source_stepping" in summary
        assert "worst=" in summary
        assert "source stepping" in str(excinfo.value)

    def test_report_survives_pickle(self):
        import pickle

        with pytest.raises(ConvergenceError) as excinfo:
            solve_dc(self._impossible(),
                     tolerances=self._impossible_tolerances())
        clone = pickle.loads(pickle.dumps(excinfo.value))
        assert clone.report is not None
        assert clone.report.summary() == excinfo.value.report.summary()

    def test_retry_perturbation_deterministic(self):
        from repro.spice.dcop import retry_perturbation

        x0 = np.zeros(4)
        assert np.array_equal(retry_perturbation(x0, 0), x0)
        first = retry_perturbation(x0, 1)
        again = retry_perturbation(x0, 1)
        assert np.array_equal(first, again)
        assert not np.array_equal(first, x0)
        assert not np.array_equal(retry_perturbation(x0, 2), first)

    def test_attempt_escalation_still_converges(self):
        ckt = self._impossible()
        x0 = solve_dc(ckt)
        ckt2 = self._impossible()
        x1 = solve_dc(ckt2, attempt=2)
        np.testing.assert_allclose(x1, x0, rtol=1e-6, atol=1e-9)

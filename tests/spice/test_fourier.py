"""Fourier/THD analysis tests."""

import math

import numpy as np
import pytest

from repro.errors import AnalysisError
from repro.spice import (
    Circuit,
    fourier_analysis,
    solve_transient,
    total_harmonic_distortion,
)
from repro.spice.transient import TransientResult
from repro.spice.elements import (
    Diode,
    DiodeModel,
    Resistor,
    Sine,
    VoltageSource,
)


def synthetic_result(values_fn, stop=1e-3, points=4001):
    """A TransientResult carrying an analytic waveform on node 'out'."""
    circuit = Circuit("synthetic")
    circuit.add(VoltageSource("V1", ("out", "0"), dc=0.0))
    circuit.add(Resistor("R1", ("out", "0"), 1.0))
    circuit.assign_indices()
    times = np.linspace(0.0, stop, points)
    states = np.zeros((points, circuit.num_unknowns))
    states[:, circuit.node_index("out")] = values_fn(times)
    return TransientResult(circuit, times, states)


class TestPureTone:
    def test_single_sine(self):
        f0 = 10e3
        result = synthetic_result(
            lambda t: 2.0 * np.sin(2 * np.pi * f0 * t)
        )
        fourier = fourier_analysis(result, "out", f0, harmonics=5)
        assert fourier.amplitude(1) == pytest.approx(2.0, rel=1e-4)
        for harmonic in (2, 3, 4, 5):
            assert fourier.amplitude(harmonic) < 1e-6
        assert fourier.thd() < 1e-6

    def test_dc_offset_recovered(self):
        f0 = 10e3
        result = synthetic_result(
            lambda t: 0.7 + np.sin(2 * np.pi * f0 * t)
        )
        fourier = fourier_analysis(result, "out", f0)
        assert fourier.dc == pytest.approx(0.7, abs=1e-6)

    def test_phase_recovered(self):
        f0 = 10e3
        result = synthetic_result(
            lambda t: np.cos(2 * np.pi * f0 * t)
        )
        fourier = fourier_analysis(result, "out", f0)
        assert fourier.components[0].phase_deg == pytest.approx(0.0,
                                                                abs=0.1)


class TestKnownDistortion:
    def test_two_harmonic_mix(self):
        f0 = 10e3
        result = synthetic_result(
            lambda t: (np.sin(2 * np.pi * f0 * t)
                       + 0.1 * np.sin(2 * np.pi * 2 * f0 * t)
                       + 0.05 * np.sin(2 * np.pi * 3 * f0 * t))
        )
        fourier = fourier_analysis(result, "out", f0, harmonics=5)
        assert fourier.amplitude(2) == pytest.approx(0.1, rel=1e-3)
        assert fourier.amplitude(3) == pytest.approx(0.05, rel=1e-3)
        expected_thd = math.sqrt(0.1 ** 2 + 0.05 ** 2)
        assert fourier.thd() == pytest.approx(expected_thd, rel=1e-3)

    def test_square_wave_harmonics(self):
        """Odd-harmonic 1/n ladder of a square wave."""
        f0 = 1e3
        result = synthetic_result(
            lambda t: np.sign(np.sin(2 * np.pi * f0 * t)), stop=10e-3,
            points=40001,
        )
        fourier = fourier_analysis(result, "out", f0, harmonics=7,
                                   periods=8)
        h1 = fourier.amplitude(1)
        assert h1 == pytest.approx(4 / math.pi, rel=0.01)
        assert fourier.amplitude(3) == pytest.approx(h1 / 3, rel=0.02)
        assert fourier.amplitude(5) == pytest.approx(h1 / 5, rel=0.03)
        assert fourier.amplitude(2) < 0.01 * h1


class TestCircuitDistortion:
    def test_diode_clipper_generates_harmonics(self):
        """A diode soft-clipper driven by a clean sine: visible THD."""
        f0 = 1e6
        ckt = Circuit("clip")
        ckt.add(VoltageSource("V1", ("in", "0"),
                              dc=Sine(0.0, 1.5, f0)))
        ckt.add(Resistor("R1", ("in", "out"), 1e3))
        ckt.add(Diode("D1", ("out", "0"), DiodeModel(IS=1e-14)))
        result = solve_transient(ckt, stop_time=6 / f0,
                                 max_step=1 / f0 / 200)
        thd = total_harmonic_distortion(result, "out", f0)
        assert thd > 0.05  # strongly clipped
        fourier = fourier_analysis(result, "out", f0)
        assert fourier.dc < 0.0  # asymmetric clipping shifts the mean down

    def test_linear_circuit_low_distortion(self):
        f0 = 1e6
        ckt = Circuit("lin")
        ckt.add(VoltageSource("V1", ("in", "0"), dc=Sine(0.0, 1.0, f0)))
        ckt.add(Resistor("R1", ("in", "out"), 1e3))
        ckt.add(Resistor("R2", ("out", "0"), 1e3))
        result = solve_transient(ckt, stop_time=6 / f0,
                                 max_step=1 / f0 / 100)
        assert total_harmonic_distortion(result, "out", f0) < 1e-3


class TestValidation:
    def test_record_too_short(self):
        result = synthetic_result(lambda t: np.sin(2 * np.pi * 1e3 * t),
                                  stop=1e-3)
        with pytest.raises(AnalysisError):
            fourier_analysis(result, "out", 1e3, periods=10)

    def test_rejects_bad_fundamental(self):
        result = synthetic_result(lambda t: t * 0)
        with pytest.raises(AnalysisError):
            fourier_analysis(result, "out", -1.0)

    def test_describe(self):
        f0 = 10e3
        result = synthetic_result(lambda t: np.sin(2 * np.pi * f0 * t))
        text = fourier_analysis(result, "out", f0).describe()
        assert "THD" in text
        assert "h1" in text

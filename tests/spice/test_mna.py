"""Direct tests of the MNA assembly layer (stamps and conservation)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.spice import Circuit, solve_dc
from repro.spice.mna import LoadContext, load_circuit
from repro.spice.elements import CurrentSource, Resistor, VoltageSource


class TestStampPrimitives:
    def _ctx(self, size=3, x=None):
        x = np.zeros(size) if x is None else np.asarray(x, dtype=float)
        return LoadContext(size, x, time=None, gmin=0.0)

    def test_conductance_stamp_pattern(self):
        ctx = self._ctx(x=[2.0, 0.5, 0.0])
        ctx.stamp_conductance(0, 1, 0.1)
        # Jacobian: classic +g/-g pattern
        assert ctx.g_mat[0, 0] == pytest.approx(0.1)
        assert ctx.g_mat[0, 1] == pytest.approx(-0.1)
        assert ctx.g_mat[1, 0] == pytest.approx(-0.1)
        assert ctx.g_mat[1, 1] == pytest.approx(0.1)
        # residual current consistent with the candidate solution
        assert ctx.i_vec[0] == pytest.approx(0.1 * 1.5)
        assert ctx.i_vec[1] == pytest.approx(-0.1 * 1.5)

    def test_ground_rows_are_skipped(self):
        ctx = self._ctx()
        ctx.stamp_conductance(-1, 0, 0.2)
        assert ctx.g_mat[0, 0] == pytest.approx(0.2)
        # nothing written anywhere else
        assert np.count_nonzero(ctx.g_mat) == 1

    def test_capacitance_stamp(self):
        ctx = self._ctx(x=[3.0, 1.0, 0.0])
        ctx.stamp_capacitance(0, 1, 1e-9)
        assert ctx.q_vec[0] == pytest.approx(2e-9)
        assert ctx.q_vec[1] == pytest.approx(-2e-9)
        assert ctx.c_mat[0, 0] == pytest.approx(1e-9)
        assert ctx.c_mat[1, 0] == pytest.approx(-1e-9)

    def test_current_source_stamp(self):
        ctx = self._ctx()
        ctx.stamp_current_source(0, 1, 1e-3)
        assert ctx.i_vec[0] == pytest.approx(1e-3)
        assert ctx.i_vec[1] == pytest.approx(-1e-3)

    def test_voltage_reads(self):
        ctx = self._ctx(x=[4.0, -2.0, 0.0])
        assert ctx.voltage(0) == 4.0
        assert ctx.voltage(-1) == 0.0


class TestConservationProperties:
    @settings(max_examples=40, deadline=None)
    @given(
        resistors=st.lists(
            st.tuples(st.integers(min_value=0, max_value=4),
                      st.integers(min_value=0, max_value=4),
                      st.floats(min_value=1.0, max_value=1e6)),
            min_size=4, max_size=12,
        ),
        drive=st.floats(min_value=-10.0, max_value=10.0),
    )
    def test_random_resistive_network_kcl(self, resistors, drive):
        """On any random connected resistive network, the converged
        solution satisfies KCL at every node (zero residual) and the
        source current balances the ground return."""
        ckt = Circuit("random")
        ckt.add(VoltageSource("V1", ("n0", "0"), dc=drive))
        added = 0
        for i, (a, b, r) in enumerate(resistors):
            if a == b:
                continue
            ckt.add(Resistor(f"R{i}", (f"n{a}", f"n{b}"), r))
            added += 1
        if added == 0:
            return
        # tie every island to ground so the system is well-posed
        for node_id in {a for a, _, _ in resistors} | {
            b for _, b, _ in resistors
        }:
            ckt.add(Resistor(f"RT{node_id}", (f"n{node_id}", "0"), 1e5))

        x = solve_dc(ckt)
        ctx = load_circuit(ckt, x)
        node_count = len(ckt.node_map)
        residual = ctx.i_vec[:node_count]
        assert np.max(np.abs(residual)) < 1e-6

    @settings(max_examples=25, deadline=None)
    @given(g1=st.floats(min_value=1e-6, max_value=1.0),
           g2=st.floats(min_value=1e-6, max_value=1.0),
           i_drive=st.floats(min_value=-1.0, max_value=1.0))
    def test_linear_system_matches_hand_nodal_analysis(self, g1, g2,
                                                       i_drive):
        """Two-node ladder: MNA answer equals the hand-derived nodal
        solution."""
        ckt = Circuit("ladder")
        ckt.add(CurrentSource("I1", ("0", "a"), dc=i_drive))
        ckt.add(Resistor("R1", ("a", "b"), 1.0 / g1))
        ckt.add(Resistor("R2", ("b", "0"), 1.0 / g2))
        x = solve_dc(ckt)
        # hand solution: series conductance
        g_series = g1 * g2 / (g1 + g2)
        va_expected = i_drive / g_series
        vb_expected = i_drive / g2
        assert x[ckt.node_index("a")] == pytest.approx(va_expected,
                                                       rel=1e-5)
        assert x[ckt.node_index("b")] == pytest.approx(vb_expected,
                                                       rel=1e-5)

    def test_jacobian_symmetry_for_reciprocal_network(self):
        """A purely resistive (reciprocal) network has a symmetric G."""
        ckt = Circuit("sym")
        ckt.add(CurrentSource("I1", ("0", "a"), dc=1e-3))
        ckt.add(Resistor("R1", ("a", "b"), 1e3))
        ckt.add(Resistor("R2", ("b", "c"), 2e3))
        ckt.add(Resistor("R3", ("c", "0"), 3e3))
        ckt.add(Resistor("R4", ("a", "c"), 4e3))
        size = ckt.assign_indices()
        ctx = load_circuit(ckt, np.zeros(size))
        node_count = len(ckt.node_map)
        g_nodes = ctx.g_mat[:node_count, :node_count]
        np.testing.assert_allclose(g_nodes, g_nodes.T, atol=1e-15)

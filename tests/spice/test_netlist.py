"""Tests for circuit construction and equation numbering."""

import pytest

from repro.errors import NetlistError
from repro.spice import Circuit
from repro.spice.elements import Capacitor, Inductor, Resistor, VoltageSource


def divider() -> Circuit:
    ckt = Circuit("divider")
    ckt.add(VoltageSource("V1", ("in", "0"), dc=10.0))
    ckt.add(Resistor("R1", ("in", "out"), 1e3))
    ckt.add(Resistor("R2", ("out", "0"), 1e3))
    return ckt


class TestConstruction:
    def test_add_and_lookup(self):
        ckt = divider()
        assert len(ckt) == 3
        assert ckt.element("r1").resistance == 1e3
        assert "R2" in ckt
        assert "R9" not in ckt

    def test_duplicate_name_rejected(self):
        ckt = divider()
        with pytest.raises(NetlistError):
            ckt.add(Resistor("r1", ("a", "0"), 1.0))

    def test_remove(self):
        ckt = divider()
        ckt.remove("R2")
        assert "R2" not in ckt
        with pytest.raises(NetlistError):
            ckt.remove("R2")

    def test_unknown_element_lookup(self):
        with pytest.raises(NetlistError):
            divider().element("RX")

    def test_ground_aliases(self):
        ckt = Circuit("gnd")
        ckt.add(VoltageSource("V1", ("a", "gnd"), dc=1.0))
        ckt.add(Resistor("R1", ("a", "GND"), 1.0))
        assert ckt.element("V1").nodes[1] == "0"
        assert ckt.element("R1").nodes[1] == "0"

    def test_extend(self):
        ckt = Circuit("ext")
        ckt.extend([
            VoltageSource("V1", ("a", "0"), dc=1.0),
            Resistor("R1", ("a", "0"), 1.0),
        ])
        assert len(ckt) == 2


class TestIndexing:
    def test_node_then_branch_numbering(self):
        ckt = divider()
        size = ckt.assign_indices()
        # two nodes (in, out) + one branch current (V1)
        assert size == 3
        assert set(ckt.node_map) == {"in", "out"}
        assert ckt.branch_index("V1") == 2

    def test_ground_index(self):
        ckt = divider()
        assert ckt.node_index("0") == -1
        assert ckt.node_index("gnd") == -1

    def test_unknown_node(self):
        with pytest.raises(NetlistError):
            divider().node_index("nowhere")

    def test_branch_index_for_branchless_element(self):
        with pytest.raises(NetlistError):
            divider().branch_index("R1")

    def test_inductor_gets_branch(self):
        ckt = Circuit("rl")
        ckt.add(VoltageSource("V1", ("a", "0"), dc=1.0))
        ckt.add(Inductor("L1", ("a", "0"), 1e-6))
        size = ckt.assign_indices()
        assert size == 3  # node a + V branch + L branch

    def test_reindex_after_change(self):
        ckt = divider()
        ckt.assign_indices()
        ckt.add(Capacitor("C1", ("out", "extra"), 1e-12))
        size = ckt.assign_indices()
        assert "extra" in ckt.node_map
        assert size == 4

    def test_nodes_listing_in_order(self):
        ckt = divider()
        assert ckt.nodes() == ["in", "out"]


class TestValidation:
    def test_empty_circuit_rejected(self):
        with pytest.raises(NetlistError):
            Circuit("empty").assign_indices()

    def test_floating_circuit_rejected(self):
        ckt = Circuit("floating")
        ckt.add(Resistor("R1", ("a", "b"), 1.0))
        with pytest.raises(NetlistError):
            ckt.assign_indices()

    def test_linearity_detection(self, hf_model):
        from repro.spice.elements import BJT

        ckt = divider()
        assert ckt.is_linear()
        ckt.add(BJT("Q1", ("in", "out", "0"), hf_model))
        assert not ckt.is_linear()
        assert len(ckt.nonlinear_elements()) == 1


class TestElementValidation:
    def test_resistor_rejects_nonpositive(self):
        with pytest.raises(NetlistError):
            Resistor("R1", ("a", "0"), 0.0)
        with pytest.raises(NetlistError):
            Resistor("R1", ("a", "0"), -5.0)

    def test_capacitor_rejects_negative(self):
        with pytest.raises(NetlistError):
            Capacitor("C1", ("a", "0"), -1e-12)

    def test_inductor_rejects_nonpositive(self):
        with pytest.raises(NetlistError):
            Inductor("L1", ("a", "0"), 0.0)

    def test_wrong_node_count(self):
        with pytest.raises(NetlistError):
            Resistor("R1", ("a", "b", "c"), 1.0)

"""Element-level tests: waveforms, BJT element stamps, diode element."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import NetlistError
from repro.spice import Circuit, Simulator, solve_dc
from repro.spice.elements import (
    BJT,
    Capacitor,
    CurrentSource,
    DC,
    Diode,
    DiodeModel,
    PWL,
    Pulse,
    Resistor,
    Sine,
    VoltageSource,
)
from repro.spice.mna import load_circuit


class TestWaveforms:
    def test_dc(self):
        assert DC(3.0).value(None) == 3.0
        assert DC(3.0).value(1.0) == 3.0

    def test_sine_values(self):
        s = Sine(offset=1.0, amplitude=2.0, frequency=1e3)
        assert s.value(None) == 1.0
        assert s.value(0.0) == pytest.approx(1.0)
        assert s.value(0.25e-3) == pytest.approx(3.0)
        assert s.value(0.75e-3) == pytest.approx(-1.0)

    def test_sine_delay_and_damping(self):
        s = Sine(0.0, 1.0, 1e3, delay=1e-3, damping=1000.0)
        assert s.value(0.5e-3) == pytest.approx(0.0)
        peak1 = s.value(1e-3 + 0.25e-3)
        peak2 = s.value(1e-3 + 1.25e-3)
        assert abs(peak2) < abs(peak1)

    def test_sine_rejects_bad_frequency(self):
        with pytest.raises(NetlistError):
            Sine(frequency=0.0)

    def test_pulse_phases(self):
        p = Pulse(0.0, 1.0, delay=1e-6, rise=1e-6, fall=1e-6,
                  width=3e-6, period=10e-6)
        assert p.value(None) == 0.0
        assert p.value(0.5e-6) == 0.0
        assert p.value(1.5e-6) == pytest.approx(0.5)  # mid-rise
        assert p.value(3e-6) == 1.0
        assert p.value(5.5e-6) == pytest.approx(0.5)  # mid-fall
        assert p.value(8e-6) == 0.0
        assert p.value(11.5e-6) == pytest.approx(0.5)  # next period

    def test_pulse_rejects_short_period(self):
        with pytest.raises(NetlistError):
            Pulse(0, 1, rise=1e-6, fall=1e-6, width=5e-6, period=2e-6)

    def test_pulse_breakpoints(self):
        p = Pulse(0, 1, delay=1e-6, rise=1e-6, fall=1e-6, width=2e-6,
                  period=10e-6)
        points = p.breakpoints(12e-6)

        def contains(value):
            return any(abs(point - value) < 1e-12 for point in points)

        assert contains(1e-6)
        assert contains(2e-6)
        assert contains(11e-6)

    def test_pwl_interpolation(self):
        w = PWL([(0, 0), (1e-3, 2.0), (2e-3, -1.0)])
        assert w.value(0.5e-3) == pytest.approx(1.0)
        assert w.value(1.5e-3) == pytest.approx(0.5)
        assert w.value(-1) == 0.0
        assert w.value(5e-3) == -1.0

    def test_pwl_needs_points(self):
        with pytest.raises(NetlistError):
            PWL([])


class TestSourceConventions:
    def test_voltage_source_current_sign(self):
        """A battery delivering power reports negative branch current."""
        ckt = Circuit("sign")
        ckt.add(VoltageSource("V1", ("a", "0"), dc=1.0))
        ckt.add(Resistor("R1", ("a", "0"), 1e3))
        result = Simulator(ckt).operating_point()
        assert result.branch_current("V1") == pytest.approx(-1e-3, rel=1e-6)

    def test_current_source_direction(self):
        """Positive I flows from node p through the source to node n."""
        ckt = Circuit("dir")
        ckt.add(CurrentSource("I1", ("a", "0"), dc=1e-3))
        ckt.add(Resistor("R1", ("a", "0"), 1e3))
        result = Simulator(ckt).operating_point()
        assert result.voltage("a") == pytest.approx(-1.0, rel=1e-6)


class TestDiodeElement:
    def test_area_scales_current(self):
        def vd_for_area(area):
            ckt = Circuit("area")
            ckt.add(VoltageSource("V1", ("in", "0"), dc=5.0))
            ckt.add(Resistor("R1", ("in", "d"), 1e3))
            ckt.add(Diode("D1", ("d", "0"), DiodeModel(IS=1e-14), area=area))
            return Simulator(ckt).operating_point().voltage("d")

        assert vd_for_area(10.0) < vd_for_area(1.0)

    def test_rejects_bad_area(self):
        with pytest.raises(NetlistError):
            Diode("D1", ("a", "0"), DiodeModel(), area=0.0)

    def test_junction_capacitance_slows_switching(self):
        from repro.spice import solve_transient

        def voltage_at_20ns(cjo):
            ckt = Circuit("cj")
            ckt.add(VoltageSource("V1", ("in", "0"),
                                  dc=Pulse(-2.0, 2.0, rise=1e-12,
                                           width=1e-6)))
            ckt.add(Resistor("R1", ("in", "d"), 10e3))
            ckt.add(Diode("D1", ("d", "0"),
                          DiodeModel(IS=1e-14, CJO=cjo)))
            result = solve_transient(ckt, stop_time=30e-9, max_step=0.25e-9)
            return result.sample("d", 20e-9)

        # a big junction capacitance keeps the node far behind
        assert voltage_at_20ns(10e-12) < voltage_at_20ns(0.1e-12) - 0.3


class TestBJTElement:
    def test_internal_nodes_allocated(self, hf_model):
        q = BJT("Q1", ("c", "b", "e"), hf_model)
        assert q.num_branches == 3  # RC, RB, RE all nonzero

    def test_no_internal_nodes_without_parasitics(self, simple_npn):
        q = BJT("Q1", ("c", "b", "e"), simple_npn)
        assert q.num_branches == 0

    def test_three_node_form_defaults_substrate_to_ground(self, hf_model):
        q = BJT("Q1", ("c", "b", "e"), hf_model)
        assert q.nodes == ("c", "b", "e", "0")

    def test_rejects_wrong_arity(self, hf_model):
        with pytest.raises(NetlistError):
            BJT("Q1", ("c", "b"), hf_model)
        with pytest.raises(NetlistError):
            BJT("Q1", ("c", "b", "e", "s", "x"), hf_model)

    def test_rejects_bad_area(self, hf_model):
        with pytest.raises(NetlistError):
            BJT("Q1", ("c", "b", "e"), hf_model, area=-1.0)

    def test_kcl_across_device(self, hf_model):
        """Terminal currents must sum to zero at the solution."""
        ckt = Circuit("kcl")
        ckt.add(VoltageSource("VC", ("c", "0"), dc=3.0))
        ckt.add(VoltageSource("VB", ("b", "0"), dc=0.75))
        ckt.add(VoltageSource("VE", ("e", "0"), dc=0.0))
        ckt.add(BJT("Q1", ("c", "b", "e"), hf_model))
        result = Simulator(ckt).operating_point()
        ic = -result.branch_current("VC")
        ib = -result.branch_current("VB")
        ie = -result.branch_current("VE")
        assert ic + ib + ie == pytest.approx(0.0, abs=1e-9)
        assert ic > 0 and ib > 0 and ie < 0  # npn conventions

    def test_npn_pnp_symmetry(self, hf_model):
        """A pnp biased mirror-image to an npn carries the same currents."""
        ckt_n = Circuit("npn")
        ckt_n.add(VoltageSource("VC", ("c", "0"), dc=3.0))
        ckt_n.add(VoltageSource("VB", ("b", "0"), dc=0.75))
        ckt_n.add(BJT("Q1", ("c", "b", "0"), hf_model))
        r_n = Simulator(ckt_n).operating_point()
        ic_n = -r_n.branch_current("VC")

        pnp = hf_model.replace(polarity="pnp", name="QP")
        ckt_p = Circuit("pnp")
        ckt_p.add(VoltageSource("VC", ("c", "0"), dc=-3.0))
        ckt_p.add(VoltageSource("VB", ("b", "0"), dc=-0.75))
        ckt_p.add(BJT("Q1", ("c", "b", "0"), pnp))
        r_p = Simulator(ckt_p).operating_point()
        ic_p = -r_p.branch_current("VC")
        assert ic_p == pytest.approx(-ic_n, rel=1e-6)

    def test_area_scaling_in_circuit(self, hf_model):
        def collector_current(area):
            ckt = Circuit("area")
            ckt.add(VoltageSource("VC", ("c", "0"), dc=3.0))
            ckt.add(VoltageSource("VB", ("b", "0"), dc=0.7))
            ckt.add(BJT("Q1", ("c", "b", "0"), hf_model, area=area))
            return -Simulator(ckt).operating_point().branch_current("VC")

        assert collector_current(4.0) == pytest.approx(
            4 * collector_current(1.0), rel=0.02
        )

    @settings(max_examples=15, deadline=None)
    @given(vb=st.floats(min_value=0.55, max_value=0.8))
    def test_stamp_jacobian_matches_fd(self, hf_model, vb):
        """Property: the stamped G matrix is the numerical Jacobian of the
        stamped I vector (internal-node rows included)."""
        ckt = Circuit("jac")
        ckt.add(VoltageSource("VC", ("c", "0"), dc=2.0))
        ckt.add(VoltageSource("VB", ("b", "0"), dc=vb))
        ckt.add(BJT("Q1", ("c", "b", "0"), hf_model))
        x = solve_dc(ckt)
        size = ckt.num_unknowns
        base = load_circuit(ckt, x, limits={})
        h = 1e-8
        for col in range(size):
            xp = x.copy(); xp[col] += h
            xm = x.copy(); xm[col] -= h
            # fresh limits each load so pnjlim cannot interfere near the
            # solution (steps are tiny, so limiting stays inactive)
            ip = load_circuit(ckt, xp, limits={}).i_vec
            im = load_circuit(ckt, xm, limits={}).i_vec
            fd = (ip - im) / (2 * h)
            np.testing.assert_allclose(
                base.g_mat[:, col], fd, rtol=5e-4, atol=1e-6,
            )

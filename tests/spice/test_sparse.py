"""Sparse-native assembly: pattern mechanics, cost model, golden parity.

The dense engine is the reference: every analysis run through the sparse
assembly backend must agree with the dense backend within Newton/solver
tolerances, with zero dense ``(n, n)`` work in the sparse hot loop
(asserted through the EngineStats counters).
"""

from pathlib import Path

import numpy as np
import pytest

from repro.errors import AnalysisError
from repro.spice import parse_deck, run_deck
from repro.spice.ac import ACResult, solve_ac
from repro.spice.analysis import OperatingPointResult, TransferFunction
from repro.spice.engine import (
    SPARSE_THRESHOLD,
    DenseLUSolver,
    SparseLUSolver,
    compile_circuit,
    get_engine,
    make_solver,
)
from repro.spice.noise import NoiseResult
from repro.spice.sparse import PatternMatrix, SparsityPattern
from repro.spice.solvercost import SolverCostModel
from repro.spice.transient import TransientResult

DECK_DIR = Path(__file__).resolve().parents[2] / "examples" / "decks"


# ---------------------------------------------------------------------------
# SparsityPattern / PatternMatrix mechanics
# ---------------------------------------------------------------------------


class TestSparsityPattern:
    def _pattern(self):
        # 3x3 with slots (0,0) (1,1) (2,2) (0,1) (2,1), one duplicate and
        # one dummy lane (row == size).
        rows = [0, 1, 2, 0, 2, 0, 3]
        cols = [0, 1, 2, 1, 1, 1, 1]
        return SparsityPattern(3, rows, cols)

    def test_dedup_and_csc_structure(self):
        pattern = self._pattern()
        assert pattern.nnz == 5
        dense = pattern.matrix().toarray()
        assert dense.shape == (3, 3)
        assert np.count_nonzero(dense) == 0  # fresh zeros

    def test_positions_roundtrip(self):
        pattern = self._pattern()
        m = pattern.matrix()
        m[0, 1] = 7.0
        m[2, 2] = 3.0
        dense = m.toarray()
        assert dense[0, 1] == 7.0 and dense[2, 2] == 3.0
        assert dense.sum() == 10.0

    def test_dummy_slot_goes_to_scratch(self):
        pattern = self._pattern()
        pos = pattern.positions(np.array([3]), np.array([1]))
        assert pos[0] == pattern.nnz  # trailing scratch slot
        m = pattern.matrix()
        m[3, 1] = 99.0  # swallowed, never visible in the matrix
        assert np.count_nonzero(m.toarray()) == 0

    def test_missing_slot_raises(self):
        pattern = self._pattern()
        with pytest.raises(AnalysisError, match="outside"):
            pattern.positions(np.array([2]), np.array([0]))

    def test_accumulating_scatter_matches_dense(self):
        rng = np.random.default_rng(7)
        size = 6
        rows = rng.integers(0, size, 40)
        cols = rng.integers(0, size, 40)
        vals = rng.normal(size=40)
        pattern = SparsityPattern(size, rows, cols)
        data = np.zeros(pattern.nnz + 1)
        np.add.at(data, pattern.positions(rows, cols), vals)
        dense = np.zeros((size, size))
        np.add.at(dense, (rows, cols), vals)
        np.testing.assert_allclose(
            pattern.matrix(data).toarray(), dense, rtol=0, atol=0
        )


class TestPatternMatrix:
    def _gm(self):
        pattern = SparsityPattern(2, [0, 1, 0], [0, 1, 1])
        g = pattern.matrix(np.array([1.0, 2.0, 3.0, 0.0]))
        c = pattern.matrix(np.array([0.5, 0.25, 0.0, 0.0]))
        return pattern, g, c

    def test_scalar_mul_and_iadd(self):
        _, g, c = self._gm()
        fused = g.copy()
        fused += 2.0 * c
        np.testing.assert_allclose(
            fused.toarray(), g.toarray() + 2.0 * c.toarray()
        )

    def test_complex_add_upcasts(self):
        _, g, c = self._gm()
        system = g + 1j * 2.0 * c
        assert system.dtype == complex
        np.testing.assert_allclose(
            system.toarray(), g.toarray() + 2.0j * c.toarray()
        )

    def test_cross_pattern_combination_rejected(self):
        _, g, _ = self._gm()
        other = SparsityPattern(2, [0, 1], [0, 1]).matrix()
        with pytest.raises(AnalysisError, match="different"):
            g.__iadd__(other)

    def test_matvec_and_transpose(self):
        _, g, _ = self._gm()
        x = np.array([2.0, -1.0])
        np.testing.assert_allclose(g.dot(x), g.toarray() @ x)
        np.testing.assert_allclose(g.T, g.toarray().T)

    def test_length_mismatch_rejected(self):
        pattern = SparsityPattern(2, [0, 1], [0, 1])
        with pytest.raises(AnalysisError, match="does not match"):
            PatternMatrix(pattern, np.zeros(5))


# ---------------------------------------------------------------------------
# cost model
# ---------------------------------------------------------------------------


class TestSolverCostModel:
    def test_small_systems_stay_dense(self):
        model = SolverCostModel()
        assert model.choose(50, nnz=200) == "dense"
        assert model.choose(model.min_size - 1, nnz=10) == "dense"

    def test_large_sparse_systems_go_sparse(self):
        model = SolverCostModel()
        assert model.choose(2000, nnz=8000) == "sparse"

    def test_dense_pattern_stays_dense(self):
        # A dense-ish pattern (nnz ~ n^2) never wins with sparse LU.
        model = SolverCostModel()
        n = 600
        assert model.choose(n, nnz=n * n) == "dense"

    def test_no_nnz_falls_back_to_threshold(self):
        model = SolverCostModel()
        assert model.choose(SPARSE_THRESHOLD - 1) == "dense"
        assert model.choose(SPARSE_THRESHOLD) == "sparse"

    def test_observe_recalibrates(self):
        model = SolverCostModel(calibration_weight=1.0)
        before = model.dense_cost(1000)
        # Report dense factorization 10x slower than the prior predicts.
        model.observe("dense", 1000, None, seconds=10 * before)
        assert model.dense_cost(1000) > before

    def test_crossover_reports_a_size(self):
        model = SolverCostModel()
        size = model.crossover()
        assert size is None or size >= model.min_size


class TestMakeSolver:
    def test_prefer_auto_small_is_dense(self):
        assert isinstance(make_solver(10, prefer="auto"), DenseLUSolver)

    def test_prefer_auto_large_sparse_pattern(self):
        solver = make_solver(2000, prefer="auto", nnz=8000)
        assert isinstance(solver, SparseLUSolver)

    def test_explicit_prefer_wins(self):
        assert isinstance(make_solver(10, prefer="sparse"), SparseLUSolver)
        assert isinstance(make_solver(5000, prefer="dense"), DenseLUSolver)


class TestPermcSpecAndFill:
    """Column-ordering selection and fill-in observation (satellite of
    the blocked-AC work: ordering shifts both the factorization cost
    and the dense/sparse crossover)."""

    LADDER = "ladder\n" + "V1 n0 0 DC 1\n" + "\n".join(
        f"R{k} n{k - 1} n{k} 1k" for k in range(1, 25)
    ) + "\nRL n24 0 1k\n.OPTIONS SOLVER=sparse\n.OP\n.END\n"

    def test_solver_validates_and_normalizes_spec(self):
        assert SparseLUSolver().permc_spec is None
        assert SparseLUSolver(permc_spec="natural").permc_spec == "NATURAL"
        with pytest.raises(AnalysisError, match="permc_spec"):
            SparseLUSolver(permc_spec="BOGUS")

    def test_make_solver_threads_the_spec(self):
        solver = make_solver(500, prefer="sparse", permc_spec="colamd")
        assert solver.permc_spec == "COLAMD"

    def test_options_card_reaches_the_engine(self):
        deck = parse_deck(self.LADDER.replace(
            "SOLVER=sparse", "SOLVER=sparse PERMC=NATURAL"))
        circuit = deck.circuit
        assert circuit._permc_spec == "NATURAL"
        circuit.assign_indices()
        engine = get_engine(circuit, mode="sparse")
        assert engine.solver.permc_spec == "NATURAL"

    def test_bad_permc_option_is_a_parse_error(self):
        from repro.errors import ParseError

        with pytest.raises(ParseError, match="PERMC must be"):
            parse_deck("t\n.OPTIONS PERMC=WRONG\nV1 a 0 DC 1\n"
                       "R1 a 0 1k\n.END\n")

    def test_orderings_agree_and_fill_is_gauged(self):
        results = {}
        for spec in (None, "NATURAL", "MMD_AT_PLUS_A"):
            text = self.LADDER if spec is None else self.LADDER.replace(
                "SOLVER=sparse", f"SOLVER=sparse PERMC={spec}")
            deck = parse_deck(text)
            circuit = deck.circuit
            circuit.assign_indices()
            engine = get_engine(circuit, mode="sparse")
            from repro.spice.dcop import solve_dc

            results[spec] = solve_dc(circuit, engine=engine)
            assert engine.stats.fill_ratio >= 1.0
        np.testing.assert_allclose(results["NATURAL"], results[None],
                                   rtol=1e-12, atol=1e-15)
        np.testing.assert_allclose(results["MMD_AT_PLUS_A"], results[None],
                                   rtol=1e-12, atol=1e-15)

    def test_cost_model_observes_fill(self):
        model = SolverCostModel(calibration_weight=1.0)
        model.observe("sparse", 1000, 5000, seconds=1e-3, fill=24.0)
        assert model.fill_ratio == 24.0
        # Doubled fill relative to the reference doubles the factor
        # term (hold the factor coefficient fixed to isolate the fill).
        after = model.sparse_cost(1000, 5000)
        model.fill_ratio = model.reference_fill
        assert after > model.sparse_cost(1000, 5000)

    def test_fill_scaling_moves_the_crossover(self):
        cheap = SolverCostModel(fill_ratio=2.0)
        costly = SolverCostModel(fill_ratio=60.0)
        assert cheap.sparse_cost(512, 2048) < costly.sparse_cost(512, 2048)

    def test_observe_without_fill_keeps_the_prior(self):
        model = SolverCostModel(calibration_weight=1.0)
        prior = model.fill_ratio
        model.observe("sparse", 1000, 5000, seconds=1e-3)
        assert model.fill_ratio == prior


# ---------------------------------------------------------------------------
# factorization-cache regression: anonymous solves must not clobber a
# token-cached factorization
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("solver_cls", [DenseLUSolver, SparseLUSolver])
def test_anonymous_solve_keeps_token_cache(solver_cls):
    rng = np.random.default_rng(3)
    a = rng.normal(size=(8, 8)) + 8 * np.eye(8)
    other = rng.normal(size=(8, 8)) + 8 * np.eye(8)
    b = rng.normal(size=8)

    solver = solver_cls()
    x_cached = solver.solve(a, b, token=("jac", 1))
    assert solver.has_factorization(("jac", 1))

    solver.solve(other, b)  # token=None: one-off, must not invalidate
    assert solver.has_factorization(("jac", 1))
    np.testing.assert_allclose(solver.solve_cached(b), x_cached)


def test_anonymous_batched_solve_keeps_token_cache():
    rng = np.random.default_rng(4)
    a = rng.normal(size=(8, 8)) + 8 * np.eye(8)
    systems = rng.normal(size=(3, 8, 8)) + 8 * np.eye(8)
    b = rng.normal(size=8)

    for solver in (DenseLUSolver(), SparseLUSolver()):
        solver.solve(a, b, token="dc")
        solver.solve_batched(systems, b)
        assert solver.has_factorization("dc")


# ---------------------------------------------------------------------------
# golden equivalence: dense is the reference, sparse must agree
# ---------------------------------------------------------------------------


def _run_backend(deck_text: str, backend: str, tran_stop=None):
    deck = parse_deck(deck_text)
    if tran_stop is not None:
        for card in deck.analyses:
            if card.kind == "tran":
                card.args["stop"] = tran_stop
    return run_deck(deck, engine=backend)


def _assert_runs_agree(dense_run, sparse_run):
    for ref, got in zip(dense_run.results, sparse_run.results):
        assert type(ref) is type(got)
        if isinstance(ref, OperatingPointResult):
            for node, value in ref.node_voltages().items():
                assert got.node_voltages()[node] == pytest.approx(
                    value, rel=1e-9, abs=1e-9
                )
        elif isinstance(ref, ACResult):
            np.testing.assert_allclose(
                got.solutions, ref.solutions, rtol=1e-8, atol=1e-12
            )
        elif isinstance(ref, TransferFunction):
            assert got.gain == pytest.approx(ref.gain, rel=1e-9)
            assert got.input_resistance == pytest.approx(
                ref.input_resistance, rel=1e-9
            )
        elif isinstance(ref, NoiseResult):
            np.testing.assert_allclose(
                got.output_density, ref.output_density, rtol=1e-6
            )
        elif isinstance(ref, TransientResult):
            # Adaptive stepping may take marginally different paths once
            # float noise differs; compare the common prefix of accepted
            # times and the final voltages loosely.
            n = min(len(ref.times), len(got.times))
            assert n > 10
            np.testing.assert_allclose(
                got.times[: n // 2], ref.times[: n // 2], rtol=1e-4
            )
            np.testing.assert_allclose(
                got.states[: n // 2], ref.states[: n // 2],
                rtol=1e-3, atol=1e-4,
            )


DECK_CASES = [
    ("ce_stage.cir", None),
    ("noise_bench.cir", None),
    ("ring_oscillator.cir", 0.5e-9),  # trimmed .TRAN for test runtime
]


@pytest.mark.parametrize("name,tran_stop", DECK_CASES,
                         ids=[c[0] for c in DECK_CASES])
def test_dense_sparse_golden_equivalence(name, tran_stop):
    text = (DECK_DIR / name).read_text()
    dense_run = _run_backend(text, "dense", tran_stop)
    sparse_run = _run_backend(text, "sparse", tran_stop)
    _assert_runs_agree(dense_run, sparse_run)


def test_options_solver_card_equivalent_to_engine_flag():
    text = (DECK_DIR / "ce_stage.cir").read_text()
    via_flag = _run_backend(text, "sparse")
    via_card = run_deck(text.replace(
        ".OP", ".OPTIONS SOLVER=sparse\n.OP"
    ))
    _assert_runs_agree(via_flag, via_card)


# ---------------------------------------------------------------------------
# counters: the sparse hot loop performs zero dense assemblies
# ---------------------------------------------------------------------------


class TestSparseEngineCounters:
    def _circuit(self):
        return parse_deck((DECK_DIR / "ce_stage.cir").read_text()).circuit

    def test_sparse_engine_reports_backend_and_nnz(self):
        engine = get_engine(self._circuit(), "sparse")
        assert engine.assembly == "sparse"
        assert engine.pattern is not None
        assert engine.stats.pattern_nnz == engine.pattern.nnz > 0
        assert "sparse" in engine.stats.summary()

    def test_no_dense_assemblies_in_sparse_mode(self):
        circuit = self._circuit()
        engine = get_engine(circuit, "sparse")
        snapshot = engine.stats.copy()
        solve_ac(circuit, np.geomspace(1e6, 1e9, 31), engine=engine)
        delta = engine.stats.since(snapshot)
        assert delta.dense_assemblies == 0
        assert delta.sparse_assemblies > 0
        assert delta.pattern_reuses > 0  # symbolic analysis amortized

    def test_dense_engine_reports_dense(self):
        circuit = self._circuit()
        engine = get_engine(circuit, "dense")
        snapshot = engine.stats.copy()
        solve_ac(circuit, np.geomspace(1e6, 1e9, 11), engine=engine)
        delta = engine.stats.since(snapshot)
        assert delta.sparse_assemblies == 0
        assert delta.dense_assemblies > 0

    def test_modes_are_cached_separately(self):
        circuit = self._circuit()
        sparse = get_engine(circuit, "sparse")
        dense = get_engine(circuit, "dense")
        assert sparse is not dense
        assert get_engine(circuit, "sparse") is sparse
        assert get_engine(circuit, "dense") is dense

    def test_sparse_mode_requires_sparse_solver(self):
        with pytest.raises(AnalysisError, match="SparseLUSolver"):
            compile_circuit(self._circuit(), solver=DenseLUSolver(),
                            mode="sparse")

    def test_unknown_mode_rejected(self):
        with pytest.raises(AnalysisError, match="assembly mode"):
            compile_circuit(self._circuit(), mode="banana")

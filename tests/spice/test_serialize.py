"""Round-trip tests for the netlist serializer."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import NetlistError
from repro.spice import Circuit, Simulator, circuit_to_deck, parse_deck
from repro.spice.elements import (
    BJT,
    CCCS,
    Capacitor,
    CurrentSource,
    Diode,
    DiodeModel,
    Inductor,
    PWL,
    Pulse,
    Resistor,
    Sine,
    VCCS,
    VCVS,
    VoltageSource,
)


def roundtrip(circuit: Circuit) -> Circuit:
    return parse_deck(circuit_to_deck(circuit)).circuit


class TestLinearRoundTrip:
    def test_divider(self):
        ckt = Circuit("divider")
        ckt.add(VoltageSource("V1", ("in", "0"), dc=10.0))
        ckt.add(Resistor("R1", ("in", "out"), 3e3))
        ckt.add(Resistor("R2", ("out", "0"), 1e3))
        restored = roundtrip(ckt)
        assert len(restored) == 3
        assert restored.element("R1").resistance == pytest.approx(3e3)
        result = Simulator(restored).operating_point()
        assert result.voltage("out") == pytest.approx(2.5, rel=1e-6)

    def test_reactive_elements_with_ic(self):
        ckt = Circuit("lc")
        ckt.add(VoltageSource("V1", ("a", "0"), dc=1.0))
        ckt.add(Capacitor("C1", ("a", "b"), 1e-9, ic=0.5))
        ckt.add(Inductor("L1", ("b", "0"), 1e-6, ic=1e-3))
        restored = roundtrip(ckt)
        assert restored.element("C1").ic == pytest.approx(0.5)
        assert restored.element("L1").ic == pytest.approx(1e-3)

    def test_controlled_sources(self):
        ckt = Circuit("ctl")
        control = ckt.add(VoltageSource("V1", ("a", "0"), dc=1.0))
        ckt.add(Resistor("R1", ("a", "0"), 1e3))
        ckt.add(VCVS("E1", ("b", "0", "a", "0"), gain=2.5))
        ckt.add(Resistor("RB", ("b", "0"), 1e3))
        ckt.add(VCCS("G1", ("0", "c", "a", "0"), gm=1e-3))
        ckt.add(Resistor("RCC", ("c", "0"), 1e3))
        ckt.add(CCCS("F1", ("0", "d"), control, 2.0))
        ckt.add(Resistor("RD", ("d", "0"), 1e3))
        restored = roundtrip(ckt)
        assert restored.element("E1").gain == pytest.approx(2.5)
        assert restored.element("G1").gm == pytest.approx(1e-3)
        assert restored.element("F1").control is restored.element("V1")


class TestWaveformRoundTrip:
    def test_sine(self):
        ckt = Circuit("sin")
        ckt.add(VoltageSource("V1", ("a", "0"),
                              dc=Sine(0.5, 2.0, 1e6, delay=1e-9,
                                      phase_deg=30.0)))
        ckt.add(Resistor("R1", ("a", "0"), 1e3))
        wave = roundtrip(ckt).element("V1").waveform
        assert isinstance(wave, Sine)
        assert wave.amplitude == pytest.approx(2.0)
        assert wave.phase_deg == pytest.approx(30.0)

    def test_pulse(self):
        ckt = Circuit("pulse")
        ckt.add(VoltageSource("V1", ("a", "0"),
                              dc=Pulse(0.0, 5.0, delay=1e-9, rise=2e-9,
                                       fall=3e-9, width=10e-9,
                                       period=30e-9)))
        ckt.add(Resistor("R1", ("a", "0"), 1e3))
        wave = roundtrip(ckt).element("V1").waveform
        assert isinstance(wave, Pulse)
        assert wave.period == pytest.approx(30e-9)
        assert wave.fall == pytest.approx(3e-9)

    def test_pwl(self):
        ckt = Circuit("pwl")
        ckt.add(CurrentSource("I1", ("a", "0"),
                              dc=PWL([(0.0, 0.0), (1e-6, 2e-3)])))
        ckt.add(Resistor("R1", ("a", "0"), 1e3))
        wave = roundtrip(ckt).element("I1").waveform
        assert wave.value(1e-6) == pytest.approx(2e-3)

    def test_ac_annotation(self):
        ckt = Circuit("ac")
        ckt.add(VoltageSource("V1", ("a", "0"), dc=1.0, ac_mag=0.5,
                              ac_phase_deg=45.0))
        ckt.add(Resistor("R1", ("a", "0"), 1e3))
        source = roundtrip(ckt).element("V1")
        assert source.ac_mag == pytest.approx(0.5)
        assert source.ac_phase_deg == pytest.approx(45.0)


class TestDeviceRoundTrip:
    def test_diode_with_model(self):
        ckt = Circuit("d")
        ckt.add(VoltageSource("V1", ("a", "0"), dc=1.0))
        ckt.add(Diode("D1", ("a", "0"),
                      DiodeModel(name="DX", IS=2e-14, RS=5.0, CJO=1e-12),
                      area=2.0))
        restored = roundtrip(ckt)
        d = restored.element("D1")
        assert d.model.IS == pytest.approx(2e-14)
        assert d.area == pytest.approx(2.0)

    def test_bjt_with_model(self, hf_model):
        ckt = Circuit("q")
        ckt.add(VoltageSource("VCC", ("vcc", "0"), dc=5.0))
        ckt.add(VoltageSource("VB", ("b", "0"), dc=0.75))
        ckt.add(Resistor("RC", ("vcc", "c"), 1e3))
        ckt.add(BJT("Q1", ("c", "b", "0"), hf_model, area=2.0))
        restored = roundtrip(ckt)
        q = restored.element("Q1")
        assert q.model.IS == pytest.approx(hf_model.IS, rel=1e-5)
        assert q.area == pytest.approx(2.0)
        # the restored circuit solves to the same operating point
        v1 = Simulator(ckt).operating_point().voltage("c")
        v2 = Simulator(restored).operating_point().voltage("c")
        assert v2 == pytest.approx(v1, rel=1e-4)

    def test_conflicting_model_names_rejected(self, hf_model):
        other = hf_model.replace(IS=9e-17)  # same name, different card
        ckt = Circuit("clash")
        ckt.add(VoltageSource("VB", ("b", "0"), dc=0.7))
        ckt.add(BJT("Q1", ("b", "b", "0"), hf_model))
        ckt.add(BJT("Q2", ("b", "b", "0"), other))
        with pytest.raises(NetlistError):
            circuit_to_deck(ckt)

    def test_generated_ring_oscillator_roundtrips(self, generator):
        """The programmatic Fig. 11 circuit survives deck round-trip."""
        from repro.rfsystems import build_ring_oscillator

        model = generator.generate("N1.2-12D")
        follower = generator.generate("N1.2-6D")
        ring = build_ring_oscillator(model, follower)
        restored = roundtrip(ring)
        assert len(restored) == len(ring)
        op1 = Simulator(ring).operating_point()
        op2 = Simulator(restored).operating_point()
        assert op2.voltage("c0p") == pytest.approx(op1.voltage("c0p"),
                                                   rel=1e-4)


class TestPropertyRoundTrip:
    @settings(max_examples=30, deadline=None)
    @given(
        r=st.floats(min_value=1.0, max_value=1e9),
        c=st.floats(min_value=1e-15, max_value=1e-3),
        v=st.floats(min_value=-100.0, max_value=100.0),
    )
    def test_values_preserved(self, r, c, v):
        ckt = Circuit("prop")
        ckt.add(VoltageSource("V1", ("a", "0"), dc=v))
        ckt.add(Resistor("R1", ("a", "b"), r))
        ckt.add(Capacitor("C1", ("b", "0"), c))
        restored = roundtrip(ckt)
        assert restored.element("R1").resistance == pytest.approx(
            r, rel=1e-9
        )
        assert restored.element("C1").capacitance == pytest.approx(
            c, rel=1e-9
        )
        assert restored.element("V1").waveform.level == pytest.approx(
            v, rel=1e-9, abs=1e-12
        )

"""AC small-signal tests against closed-form frequency responses."""

import math

import numpy as np
import pytest

from repro.errors import AnalysisError
from repro.spice import Circuit, Simulator, frequency_grid, solve_ac
from repro.spice.elements import (
    BJT,
    Capacitor,
    CurrentSource,
    Inductor,
    Resistor,
    VCCS,
    VoltageSource,
)


def rc_lowpass(r=1e3, c=100e-9):
    ckt = Circuit("rc")
    ckt.add(VoltageSource("V1", ("in", "0"), dc=0.0, ac_mag=1.0))
    ckt.add(Resistor("R1", ("in", "out"), r))
    ckt.add(Capacitor("C1", ("out", "0"), c))
    return ckt


class TestFrequencyGrid:
    def test_decade_grid(self):
        grid = frequency_grid(1.0, 1000.0, 10, "dec")
        assert grid[0] == pytest.approx(1.0)
        assert grid[-1] == pytest.approx(1000.0)
        assert len(grid) == 31

    def test_linear_grid(self):
        grid = frequency_grid(10.0, 20.0, 11, "lin")
        assert len(grid) == 11
        assert grid[5] == pytest.approx(15.0)

    def test_octave_grid(self):
        grid = frequency_grid(1.0, 8.0, 2, "oct")
        assert len(grid) == 7

    def test_rejects_bad_ranges(self):
        with pytest.raises(AnalysisError):
            frequency_grid(0.0, 10.0, 5)
        with pytest.raises(AnalysisError):
            frequency_grid(10.0, 1.0, 5)
        with pytest.raises(AnalysisError):
            frequency_grid(1.0, 10.0, 5, "weird")


class TestRCLowpass:
    def test_magnitude_at_pole(self):
        ckt = rc_lowpass()
        f_pole = 1.0 / (2 * math.pi * 1e3 * 100e-9)
        result = solve_ac(ckt, [f_pole])
        assert abs(result.voltage("out")[0]) == pytest.approx(
            1 / math.sqrt(2), rel=1e-6
        )

    def test_phase_at_pole(self):
        ckt = rc_lowpass()
        f_pole = 1.0 / (2 * math.pi * 1e3 * 100e-9)
        result = solve_ac(ckt, [f_pole])
        assert result.voltage_phase_deg("out")[0] == pytest.approx(-45.0,
                                                                   abs=0.01)

    def test_full_transfer_function(self):
        ckt = rc_lowpass()
        freqs = np.geomspace(10.0, 1e6, 40)
        result = solve_ac(ckt, freqs)
        rc = 1e3 * 100e-9
        expected = 1.0 / (1.0 + 2j * math.pi * freqs * rc)
        np.testing.assert_allclose(result.voltage("out"), expected, rtol=1e-9)

    def test_rolloff_slope(self):
        ckt = rc_lowpass()
        result = solve_ac(ckt, [1e5, 1e6])
        dbs = result.voltage_db("out")
        assert dbs[0] - dbs[1] == pytest.approx(20.0, abs=0.1)


class TestRCHighpass:
    def test_blocks_dc_passes_hf(self):
        ckt = Circuit("hp")
        ckt.add(VoltageSource("V1", ("in", "0"), ac_mag=1.0))
        ckt.add(Capacitor("C1", ("in", "out"), 100e-9))
        ckt.add(Resistor("R1", ("out", "0"), 1e3))
        result = solve_ac(ckt, [1.0, 1e7])
        mags = np.abs(result.voltage("out"))
        assert mags[0] < 1e-3
        assert mags[1] == pytest.approx(1.0, rel=1e-3)


class TestRLC:
    def test_series_resonance(self):
        l, c, r = 1e-6, 1e-9, 10.0
        ckt = Circuit("rlc")
        ckt.add(VoltageSource("V1", ("in", "0"), ac_mag=1.0))
        ckt.add(Resistor("R1", ("in", "m"), r))
        ckt.add(Inductor("L1", ("m", "out"), l))
        ckt.add(Capacitor("C1", ("out", "0"), c))
        f0 = 1.0 / (2 * math.pi * math.sqrt(l * c))
        q = math.sqrt(l / c) / r
        result = solve_ac(ckt, [f0])
        # capacitor voltage at resonance = Q * input
        assert abs(result.voltage("out")[0]) == pytest.approx(q, rel=1e-6)

    def test_parallel_tank_impedance(self):
        l, c = 1e-6, 1e-9
        ckt = Circuit("tank")
        ckt.add(CurrentSource("I1", ("0", "t"), ac_mag=1e-3))
        ckt.add(Inductor("L1", ("t", "0"), l))
        ckt.add(Capacitor("C1", ("t", "0"), c))
        ckt.add(Resistor("RP", ("t", "0"), 100e3))
        f0 = 1.0 / (2 * math.pi * math.sqrt(l * c))
        result = solve_ac(ckt, [f0 / 10, f0, f0 * 10])
        mags = np.abs(result.voltage("t"))
        assert mags[1] > 10 * mags[0]
        assert mags[1] > 10 * mags[2]
        assert mags[1] == pytest.approx(1e-3 * 100e3, rel=1e-3)


class TestACThroughActiveDevices:
    def test_vccs_transimpedance(self):
        ckt = Circuit("gm")
        ckt.add(VoltageSource("V1", ("in", "0"), ac_mag=1.0))
        ckt.add(VCCS("G1", ("0", "out", "in", "0"), gm=2e-3))
        ckt.add(Resistor("RL", ("out", "0"), 1e3))
        result = solve_ac(ckt, [1e3])
        assert abs(result.voltage("out")[0]) == pytest.approx(2.0, rel=1e-6)

    def test_ce_amplifier_gain_and_pole(self, hf_model):
        """CE stage: low-frequency gain ~ gm*(RC||ro), then rolls off."""
        ckt = Circuit("ce")
        ckt.add(VoltageSource("VCC", ("vcc", "0"), dc=5.0))
        ckt.add(VoltageSource("VB", ("b", "0"), dc=0.77, ac_mag=1.0))
        ckt.add(Resistor("RC", ("vcc", "c"), 1e3))
        ckt.add(BJT("Q1", ("c", "b", "0"), hf_model))
        sim = Simulator(ckt)
        result_op = sim.operating_point()
        dev = result_op.device_operating_point("Q1")
        ac = sim.ac(1e3, 100e9, 10)
        gain_lf = abs(ac.voltage("c")[0])
        # Degenerate expectation: gm*RC reduced by RE degeneration and ro
        gm_eff = dev.gm / (1 + dev.gm * hf_model.RE)
        expected = gm_eff * 1e3
        assert gain_lf == pytest.approx(expected, rel=0.2)
        # and the gain must fall at extreme frequency
        gain_hf = abs(ac.voltage("c")[-1])
        assert gain_hf < gain_lf / 10

    def test_emitter_follower_unity(self, hf_model):
        ckt = Circuit("ef")
        ckt.add(VoltageSource("VCC", ("vcc", "0"), dc=5.0))
        ckt.add(VoltageSource("VB", ("b", "0"), dc=1.5, ac_mag=1.0))
        ckt.add(BJT("Q1", ("vcc", "b", "e"), hf_model))
        ckt.add(CurrentSource("IE", ("e", "0"), dc=1e-3))
        ckt.add(Resistor("RL", ("e", "0"), 100e3))
        sim = Simulator(ckt)
        sim.operating_point()
        ac = sim.ac(1e3, 1e6, 5)
        gain = abs(ac.voltage("e")[0])
        assert gain == pytest.approx(1.0, abs=0.05)


class TestACValidation:
    def test_requires_a_stimulus(self):
        ckt = Circuit("quiet")
        ckt.add(VoltageSource("V1", ("a", "0"), dc=1.0))
        ckt.add(Resistor("R1", ("a", "0"), 1e3))
        with pytest.raises(AnalysisError):
            solve_ac(ckt, [1e3])

    def test_current_source_stimulus(self):
        ckt = Circuit("istim")
        ckt.add(CurrentSource("I1", ("0", "a"), ac_mag=1e-3,
                              ac_phase_deg=90.0))
        ckt.add(Resistor("R1", ("a", "0"), 1e3))
        result = solve_ac(ckt, [1e3])
        v = result.voltage("a")[0]
        assert abs(v) == pytest.approx(1.0, rel=1e-6)
        assert math.degrees(np.angle(v)) == pytest.approx(90.0, abs=1e-6)

"""Tests for the human-readable operating-point reports."""

import pytest

from repro.spice import Circuit, Simulator
from repro.spice.elements import BJT, CurrentSource, Resistor, VoltageSource


@pytest.fixture()
def ce_stage(hf_model):
    ckt = Circuit("ce")
    ckt.add(VoltageSource("VCC", ("vcc", "0"), dc=5.0))
    ckt.add(VoltageSource("VB", ("b", "0"), dc=0.77))
    ckt.add(Resistor("RC", ("vcc", "c"), 1e3))
    ckt.add(BJT("Q1", ("c", "b", "0"), hf_model))
    return ckt


class TestBJTTable:
    def test_columns_present(self, ce_stage):
        op = Simulator(ce_stage).operating_point()
        table = op.bjt_table()
        assert "Q1" in table
        for column in ("ic", "vbe", "beta", "gm", "cpi", "fT"):
            assert column in table

    def test_values_match_device_op(self, ce_stage):
        op = Simulator(ce_stage).operating_point()
        dev = op.device_operating_point("Q1")
        table = op.bjt_table()
        # the table's vbe appears with 4 decimals
        assert f"{dev.vbe:.4f}" in table

    def test_no_bjt_message(self):
        ckt = Circuit("lin")
        ckt.add(VoltageSource("V1", ("a", "0"), dc=1.0))
        ckt.add(Resistor("R1", ("a", "0"), 1e3))
        op = Simulator(ckt).operating_point()
        assert "no BJT" in op.bjt_table()


class TestSummary:
    def test_node_voltages_and_currents(self, ce_stage):
        op = Simulator(ce_stage).operating_point()
        text = op.summary()
        assert "V(c)" in text
        assert "I(VCC)" in text
        assert "Q1" in text  # BJT table appended

    def test_summary_without_devices(self):
        ckt = Circuit("lin")
        ckt.add(VoltageSource("V1", ("a", "0"), dc=2.0))
        ckt.add(Resistor("R1", ("a", "0"), 1e3))
        text = Simulator(ckt).operating_point().summary()
        assert "V(a) = 2" in text
        assert "Q1" not in text

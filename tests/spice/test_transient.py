"""Transient-analysis tests against closed-form time responses."""

import math

import numpy as np
import pytest

from repro.errors import AnalysisError
from repro.spice import Circuit, Simulator, solve_transient
from repro.spice.elements import (
    BJT,
    Capacitor,
    CurrentSource,
    Diode,
    DiodeModel,
    Inductor,
    PWL,
    Pulse,
    Resistor,
    Sine,
    VoltageSource,
)


def step_rc(r=1e3, c=1e-6, v=1.0):
    ckt = Circuit("rc_step")
    ckt.add(VoltageSource("V1", ("in", "0"),
                          dc=Pulse(0.0, v, delay=0.0, rise=1e-9,
                                   width=1.0, period=10.0)))
    ckt.add(Resistor("R1", ("in", "out"), r))
    ckt.add(Capacitor("C1", ("out", "0"), c))
    return ckt


class TestRCStep:
    def test_exponential_charging(self):
        ckt = step_rc()
        tau = 1e-3
        result = solve_transient(ckt, stop_time=5 * tau, max_step=tau / 50)
        for multiple in (0.5, 1.0, 2.0, 3.0):
            expected = 1.0 - math.exp(-multiple)
            assert result.sample("out", multiple * tau) == pytest.approx(
                expected, abs=5e-3
            )

    def test_backward_euler_also_converges(self):
        ckt = step_rc()
        tau = 1e-3
        result = solve_transient(ckt, stop_time=3 * tau, max_step=tau / 100,
                                 method="be")
        assert result.sample("out", tau) == pytest.approx(
            1 - math.exp(-1), abs=1e-2
        )

    def test_final_value(self):
        ckt = step_rc(v=3.3)
        result = solve_transient(ckt, stop_time=10e-3, max_step=1e-4)
        assert result.voltage("out")[-1] == pytest.approx(3.3, rel=1e-3)


class TestLCOscillation:
    def test_lc_ringing_frequency_and_energy(self):
        """An LC tank started from a charged capacitor: period and
        amplitude conservation over several cycles."""
        l, c = 1e-6, 1e-9
        ckt = Circuit("lc")
        ckt.add(Capacitor("C1", ("t", "0"), c))
        ckt.add(Inductor("L1", ("t", "0"), l))
        # weak parallel loss to keep the matrix well-posed
        ckt.add(Resistor("RP", ("t", "0"), 1e9))
        ckt.assign_indices()
        x0 = np.zeros(ckt.num_unknowns)
        x0[ckt.node_index("t")] = 1.0
        f0 = 1 / (2 * math.pi * math.sqrt(l * c))
        period = 1 / f0
        result = solve_transient(ckt, stop_time=6 * period,
                                 max_step=period / 200, x0=x0)
        v = result.voltage("t")
        t = result.times
        # measure frequency by rising zero crossings
        crossings = []
        for i in range(1, len(t)):
            if v[i - 1] < 0 <= v[i]:
                frac = -v[i - 1] / (v[i] - v[i - 1])
                crossings.append(t[i - 1] + frac * (t[i] - t[i - 1]))
        measured = 1 / np.mean(np.diff(crossings))
        assert measured == pytest.approx(f0, rel=2e-3)
        # trapezoidal rule conserves amplitude well
        late = np.abs(v[t > 4 * period])
        assert late.max() == pytest.approx(1.0, abs=0.05)


class TestRLStep:
    def test_inductor_current_rise(self):
        r, l = 100.0, 1e-3
        ckt = Circuit("rl")
        ckt.add(VoltageSource("V1", ("in", "0"),
                              dc=Pulse(0.0, 1.0, rise=1e-9, width=1.0)))
        ckt.add(Resistor("R1", ("in", "a"), r))
        ckt.add(Inductor("L1", ("a", "0"), l))
        tau = l / r
        result = solve_transient(ckt, stop_time=5 * tau, max_step=tau / 50)
        i_final = 1.0 / r
        i_l = result.branch_current("L1")
        t = result.times
        idx = np.searchsorted(t, tau)
        assert i_l[idx] == pytest.approx(i_final * (1 - math.exp(-1)),
                                         rel=0.02)
        assert i_l[-1] == pytest.approx(i_final * (1 - math.exp(-5)),
                                        rel=2e-3)


class TestWaveforms:
    def test_sine_source(self):
        ckt = Circuit("sine")
        ckt.add(VoltageSource("V1", ("a", "0"),
                              dc=Sine(offset=0.5, amplitude=1.0,
                                      frequency=1e3)))
        ckt.add(Resistor("R1", ("a", "0"), 1e3))
        result = solve_transient(ckt, stop_time=2e-3, max_step=5e-6)
        v = result.voltage("a")
        assert v.max() == pytest.approx(1.5, abs=0.01)
        assert v.min() == pytest.approx(-0.5, abs=0.01)
        # value at a quarter period
        assert result.sample("a", 0.25e-3) == pytest.approx(1.5, abs=0.01)

    def test_pwl_source(self):
        ckt = Circuit("pwl")
        ckt.add(VoltageSource("V1", ("a", "0"),
                              dc=PWL([(0.0, 0.0), (1e-3, 1.0),
                                      (2e-3, 1.0), (3e-3, -1.0)])))
        ckt.add(Resistor("R1", ("a", "0"), 1e3))
        result = solve_transient(ckt, stop_time=3e-3, max_step=2e-5)
        assert result.sample("a", 0.5e-3) == pytest.approx(0.5, abs=0.01)
        assert result.sample("a", 1.5e-3) == pytest.approx(1.0, abs=0.01)
        assert result.sample("a", 2.5e-3) == pytest.approx(0.0, abs=0.02)

    def test_pulse_train_period(self):
        ckt = Circuit("pulse")
        ckt.add(VoltageSource("V1", ("a", "0"),
                              dc=Pulse(0.0, 1.0, delay=0.0, rise=1e-6,
                                       fall=1e-6, width=48e-6,
                                       period=100e-6)))
        ckt.add(Resistor("R1", ("a", "0"), 1e3))
        result = solve_transient(ckt, stop_time=250e-6, max_step=2e-6)
        assert result.sample("a", 25e-6) == pytest.approx(1.0, abs=0.01)
        assert result.sample("a", 75e-6) == pytest.approx(0.0, abs=0.01)
        assert result.sample("a", 125e-6) == pytest.approx(1.0, abs=0.01)

    def test_breakpoints_are_hit(self):
        ckt = Circuit("bp")
        ckt.add(VoltageSource("V1", ("a", "0"),
                              dc=Pulse(0.0, 1.0, delay=100e-6, rise=1e-6,
                                       width=1.0)))
        ckt.add(Resistor("R1", ("a", "0"), 1e3))
        result = solve_transient(ckt, stop_time=200e-6, max_step=50e-6)
        # a time point lands exactly on the pulse corner
        assert np.min(np.abs(result.times - 100e-6)) < 1e-12


class TestNonlinearTransient:
    def test_diode_rectifier(self):
        ckt = Circuit("rect")
        ckt.add(VoltageSource("V1", ("in", "0"),
                              dc=Sine(0.0, 5.0, 1e3)))
        ckt.add(Diode("D1", ("in", "out"), DiodeModel(IS=1e-14)))
        ckt.add(Resistor("RL", ("out", "0"), 1e3))
        ckt.add(Capacitor("CL", ("out", "0"), 10e-6))
        result = solve_transient(ckt, stop_time=5e-3, max_step=5e-6)
        v = result.voltage("out")
        t = result.times
        late = v[t > 2e-3]
        # peak-detected close to the peak minus a diode drop, small ripple
        assert 3.5 < late.mean() < 4.6
        assert late.max() - late.min() < 0.8

    def test_bjt_switching(self, hf_model):
        """An inverter driven by a pulse: output swings rail to low."""
        ckt = Circuit("inv")
        ckt.add(VoltageSource("VCC", ("vcc", "0"), dc=5.0))
        ckt.add(VoltageSource("VIN", ("in", "0"),
                              dc=Pulse(0.0, 1.2, delay=2e-9, rise=0.2e-9,
                                       width=10e-9, period=1.0)))
        ckt.add(Resistor("RB", ("in", "b"), 1e3))
        ckt.add(Resistor("RC", ("vcc", "c"), 1e3))
        ckt.add(BJT("Q1", ("c", "b", "0"), hf_model))
        result = solve_transient(ckt, stop_time=10e-9, max_step=20e-12)
        v = result.voltage("c")
        assert v[0] == pytest.approx(5.0, abs=0.01)  # off before the pulse
        assert result.sample("c", 9e-9) < 1.0  # switched on


class TestTransientValidation:
    def test_rejects_nonpositive_stop(self):
        ckt = step_rc()
        with pytest.raises(AnalysisError):
            solve_transient(ckt, stop_time=0.0)

    def test_rejects_unknown_method(self):
        ckt = step_rc()
        with pytest.raises(AnalysisError):
            solve_transient(ckt, stop_time=1e-3, method="gear9")

    def test_result_accessors(self):
        ckt = step_rc()
        result = solve_transient(ckt, stop_time=1e-3, max_step=1e-4)
        assert len(result.times) == len(result.voltage("out"))
        assert result.voltage("0").max() == 0.0
        diff = result.differential("in", "out")
        assert diff.shape == result.times.shape


class TestBreakpointHandling:
    """Steps must land exactly on waveform corners, and the predictor
    history must restart there (no polynomial extrapolation across a
    derivative discontinuity)."""

    def test_pulse_steps_land_on_breakpoints(self):
        ckt = Circuit("pulse_bp")
        pulse = Pulse(0.0, 1.0, delay=2e-6, rise=1e-7, width=3e-6,
                      period=100.0)
        ckt.add(VoltageSource("V1", ("in", "0"), dc=pulse))
        ckt.add(Resistor("R1", ("in", "out"), 1e3))
        ckt.add(Capacitor("C1", ("out", "0"), 1e-9))
        stop = 1e-5
        result = solve_transient(ckt, stop_time=stop, max_step=stop / 20)
        for corner in pulse.breakpoints(stop):
            distances = np.abs(result.times - corner)
            assert distances.min() < 1e-12 * stop, (
                f"no time point lands on breakpoint {corner}"
            )

    def test_pwl_steps_land_on_breakpoints(self):
        ckt = Circuit("pwl_bp")
        pwl = PWL([(0.0, 0.0), (1e-6, 1.0), (2.5e-6, -0.5), (6e-6, 0.75)])
        ckt.add(VoltageSource("V1", ("in", "0"), dc=pwl))
        ckt.add(Resistor("R1", ("in", "out"), 1e3))
        ckt.add(Capacitor("C1", ("out", "0"), 2e-10))
        stop = 8e-6
        result = solve_transient(ckt, stop_time=stop, max_step=stop / 10)
        for corner in pwl.breakpoints(stop):
            distances = np.abs(result.times - corner)
            assert distances.min() < 1e-12 * stop

    def test_pwl_corner_tracked_accurately(self):
        """An RC driven well below its time constant tracks a PWL ramp;
        a predictor extrapolating across the corner would overshoot."""
        ckt = Circuit("pwl_track")
        pwl = PWL([(0.0, 0.0), (5e-3, 1.0), (5.001e-3, 1.0),
                   (10e-3, 0.0)])
        ckt.add(VoltageSource("V1", ("in", "0"), dc=pwl))
        ckt.add(Resistor("R1", ("in", "out"), 100.0))
        ckt.add(Capacitor("C1", ("out", "0"), 1e-9))  # tau = 0.1 us
        result = solve_transient(ckt, stop_time=9e-3, max_step=2e-4)
        v_out = result.voltage("out")
        # The output never overshoots the 0..1 source range by more than
        # the LTE tolerance.
        assert v_out.max() < 1.0 + 1e-3
        assert v_out.min() > -1e-3
        assert result.sample("out", 5.0005e-3) == pytest.approx(1.0,
                                                                abs=2e-3)


class TestVoltageAccessor:
    def test_unknown_node_lists_known_nodes(self):
        ckt = step_rc()
        result = solve_transient(ckt, stop_time=1e-4, max_step=1e-5)
        with pytest.raises(AnalysisError) as excinfo:
            result.voltage("nosuchnode")
        message = str(excinfo.value)
        assert "nosuchnode" in message
        assert "known nodes" in message
        assert "out" in message and "in" in message

    def test_ground_aliases_still_work(self):
        ckt = step_rc()
        result = solve_transient(ckt, stop_time=1e-4, max_step=1e-5)
        assert result.voltage("0").max() == 0.0


class TestBranchCurrentAccessor:
    def test_branchless_element_raises_analysis_error(self):
        # Regression: asking for R1's branch current leaked a raw
        # NetlistError/IndexError from the netlist layer instead of an
        # AnalysisError naming the elements that do carry branches.
        ckt = step_rc()
        result = solve_transient(ckt, stop_time=1e-4, max_step=1e-5)
        with pytest.raises(AnalysisError) as excinfo:
            result.branch_current("R1")
        message = str(excinfo.value)
        assert "R1" in message
        assert "branch" in message
        assert "V1" in message  # the element that does have one

    def test_branch_index_out_of_range(self):
        ckt = step_rc()
        result = solve_transient(ckt, stop_time=1e-4, max_step=1e-5)
        with pytest.raises(AnalysisError):
            result.branch_current("V1", branch=3)

    def test_valid_branch_still_works(self):
        ckt = step_rc()
        result = solve_transient(ckt, stop_time=1e-4, max_step=1e-5)
        current = result.branch_current("V1")
        assert current.shape == result.times.shape

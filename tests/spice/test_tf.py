"""Tests for the .TF (small-signal transfer function) analysis."""

import math

import pytest

from repro.errors import AnalysisError
from repro.spice import Circuit
from repro.spice.analysis import TransferFunction, transfer_function
from repro.spice.elements import (
    BJT,
    CurrentSource,
    Resistor,
    VCVS,
    VoltageSource,
)


class TestLinearTF:
    def test_divider(self):
        ckt = Circuit("div")
        ckt.add(VoltageSource("V1", ("in", "0"), dc=10.0))
        ckt.add(Resistor("R1", ("in", "out"), 3e3))
        ckt.add(Resistor("R2", ("out", "0"), 1e3))
        tf = transfer_function(ckt, "V1", "out")
        assert tf.gain == pytest.approx(0.25, rel=1e-6)
        assert tf.input_resistance == pytest.approx(4e3, rel=1e-6)
        assert tf.output_resistance == pytest.approx(750.0, rel=1e-6)

    def test_current_source_input(self):
        ckt = Circuit("i")
        ckt.add(CurrentSource("I1", ("0", "a"), dc=1e-3))
        ckt.add(Resistor("R1", ("a", "0"), 2e3))
        tf = transfer_function(ckt, "I1", "a")
        # transresistance = 2k; input resistance = what the source sees
        assert tf.gain == pytest.approx(2e3, rel=1e-6)
        assert tf.input_resistance == pytest.approx(2e3, rel=1e-6)

    def test_vcvs_buffer(self):
        ckt = Circuit("buf")
        ckt.add(VoltageSource("V1", ("in", "0"), dc=1.0))
        ckt.add(Resistor("RB", ("in", "0"), 1e6))
        ckt.add(VCVS("E1", ("out", "0", "in", "0"), gain=3.0))
        ckt.add(Resistor("RL", ("out", "0"), 1e3))
        tf = transfer_function(ckt, "V1", "out")
        assert tf.gain == pytest.approx(3.0, rel=1e-6)
        # ideal VCVS output: zero output resistance
        assert tf.output_resistance == pytest.approx(0.0, abs=1e-6)


class TestNonlinearTF:
    def test_ce_amplifier_gain_negative(self, hf_model):
        ckt = Circuit("ce")
        ckt.add(VoltageSource("VCC", ("vcc", "0"), dc=5.0))
        ckt.add(VoltageSource("VB", ("b", "0"), dc=0.77))
        ckt.add(Resistor("RC", ("vcc", "c"), 1e3))
        ckt.add(BJT("Q1", ("c", "b", "0"), hf_model))
        tf = transfer_function(ckt, "VB", "c")
        assert tf.gain < -5.0  # inverting
        # output resistance ~ RC || (ro + ...)
        assert 0.5e3 < tf.output_resistance <= 1.001e3
        # input resistance ~ RB + beta*(re+RE): kilo-ohm range
        assert 1e2 < tf.input_resistance < 1e5

    def test_emitter_follower_output_resistance_low(self, hf_model):
        ckt = Circuit("ef")
        ckt.add(VoltageSource("VCC", ("vcc", "0"), dc=5.0))
        ckt.add(VoltageSource("VB", ("b", "0"), dc=1.5))
        ckt.add(BJT("Q1", ("vcc", "b", "e"), hf_model))
        ckt.add(CurrentSource("IE", ("e", "0"), dc=1e-3))
        tf = transfer_function(ckt, "VB", "e")
        assert tf.gain == pytest.approx(1.0, abs=0.05)
        assert tf.output_resistance < 60.0  # ~1/gm + RE + RB/beta


class TestValidation:
    def test_rejects_non_source_input(self):
        ckt = Circuit("bad")
        ckt.add(VoltageSource("V1", ("a", "0"), dc=1.0))
        ckt.add(Resistor("R1", ("a", "0"), 1e3))
        with pytest.raises(AnalysisError):
            transfer_function(ckt, "R1", "a")

    def test_rejects_ground_output(self):
        ckt = Circuit("bad")
        ckt.add(VoltageSource("V1", ("a", "0"), dc=1.0))
        ckt.add(Resistor("R1", ("a", "0"), 1e3))
        with pytest.raises(AnalysisError):
            transfer_function(ckt, "V1", "0")

    def test_result_type(self):
        ckt = Circuit("t")
        ckt.add(VoltageSource("V1", ("a", "0"), dc=1.0))
        ckt.add(Resistor("R1", ("a", "0"), 1e3))
        tf = transfer_function(ckt, "V1", "a")
        assert isinstance(tf, TransferFunction)
        assert tf.gain == pytest.approx(1.0, rel=1e-6)

"""Transient hot path: device bypass, chord-Newton, integration order.

The hot path must be invisible in the waveforms: bypass and chord are
approximations held below the Newton/LTE tolerances, so on-vs-off runs
agree to millivolts, and with both pinned off the stepping is exactly
the seed path (that stronger bit-level claim is the golden equivalence
test in ``test_engine.py``).
"""

import math

import numpy as np
import pytest

from repro.geometry import ModelParameterGenerator, default_reference
from repro.rfsystems import RingOscillatorSpec, build_ring_oscillator
from repro.spice import Circuit, solve_transient
from repro.spice.elements import (
    BJT,
    Capacitor,
    Pulse,
    Resistor,
    VoltageSource,
)
from repro.spice.engine import GLOBAL_STATS, compile_circuit
from repro.spice.transient import _collect_breakpoints


_RC_TAU = 1e-6  # r * c below


def _rc_decay_error(method, n_steps):
    """Global error at t = 2*tau of an n_steps fixed-step decay run."""
    r, c = 1e3, 1e-9
    stop = 2.0 * _RC_TAU
    h = stop / n_steps
    ckt = Circuit("rc_decay")
    ckt.add(Resistor("R1", ("a", "0"), r))
    ckt.add(Capacitor("C1", ("a", "0"), c))
    result = solve_transient(
        ckt, stop_time=stop, max_step=h, initial_step=h,
        x0=np.array([1.0]), method=method,
        # Huge LTE tolerance pins h at max_step: every accepted step is
        # exactly h, which is what an order measurement needs.
        lte_reltol=1e6, lte_abstol=1e6,
        bypass_tol=0.0, chord=False,
    )
    exact = math.exp(-stop / _RC_TAU)
    return abs(result.voltage("a")[-1] - exact)


class TestIntegrationOrder:
    """Error decay on the analytic RC discharge: trap ~h^2, BE ~h^1."""

    def test_trap_is_second_order(self):
        err_h = _rc_decay_error("trap", 64)
        err_h2 = _rc_decay_error("trap", 128)
        ratio = err_h / err_h2
        # Halving h should shrink the error ~4x for a 2nd-order method.
        assert 3.0 < ratio < 5.5, f"trap error ratio {ratio:.2f}"

    def test_backward_euler_is_first_order(self):
        err_h = _rc_decay_error("be", 64)
        err_h2 = _rc_decay_error("be", 128)
        ratio = err_h / err_h2
        assert 1.6 < ratio < 2.6, f"BE error ratio {ratio:.2f}"

    def test_trap_beats_be_at_equal_step(self):
        assert _rc_decay_error("trap", 64) < (
            0.1 * _rc_decay_error("be", 64)
        )


def _ring(stages=5):
    generator = ModelParameterGenerator(reference=default_reference())
    return build_ring_oscillator(
        generator.generate("N1.2-12D"),
        follower_model=generator.generate("N1.2-6D"),
        spec=RingOscillatorSpec(stages=stages),
    )


def _deviation(a, b, t_end):
    grid = np.linspace(0.0, t_end, 120)
    num_nodes = len(a.circuit.node_map)
    worst = 0.0
    for col in range(num_nodes):
        va = np.interp(grid, a.times, a.states[:, col])
        vb = np.interp(grid, b.times, b.states[:, col])
        worst = max(worst, float(np.max(np.abs(va - vb))))
    return worst


class TestHotPathParity:
    """Bypass/chord on-vs-off waveform agreement on the Fig. 11 ring."""

    STOP = 0.4e-9
    MAX_STEP = 5e-12

    @pytest.mark.parametrize("engine", ["compiled", "legacy"])
    def test_on_vs_off_waveforms_agree(self, engine):
        ref = solve_transient(
            _ring(), stop_time=self.STOP, max_step=self.MAX_STEP,
            engine=engine, bypass_tol=0.0, chord=False,
        )
        hot = solve_transient(
            _ring(), stop_time=self.STOP, max_step=self.MAX_STEP,
            engine=engine,
        )
        assert _deviation(ref, hot, self.STOP) < 0.05

    def test_hot_counters_move_only_when_enabled(self):
        snapshot = GLOBAL_STATS.copy()
        solve_transient(
            _ring(), stop_time=self.STOP, max_step=self.MAX_STEP,
            bypass_tol=0.0, chord=False,
        )
        off = GLOBAL_STATS.since(snapshot)
        assert off.bypassed_evals == 0
        assert off.jacobian_reuses == 0

        snapshot = GLOBAL_STATS.copy()
        solve_transient(
            _ring(), stop_time=self.STOP, max_step=self.MAX_STEP,
        )
        on = GLOBAL_STATS.since(snapshot)
        assert on.bypassed_evals > 0
        assert on.jacobian_reuses > 0
        assert on.factorizations < off.factorizations

    def test_chord_alone_still_converges(self):
        ref = solve_transient(
            _ring(), stop_time=self.STOP, max_step=self.MAX_STEP,
            bypass_tol=0.0, chord=False,
        )
        chord = solve_transient(
            _ring(), stop_time=self.STOP, max_step=self.MAX_STEP,
            bypass_tol=0.0, chord=True,
        )
        assert _deviation(ref, chord, self.STOP) < 0.05

    def test_bypass_alone_matches_tightly(self):
        ref = solve_transient(
            _ring(), stop_time=self.STOP, max_step=self.MAX_STEP,
            bypass_tol=0.0, chord=False,
        )
        bypass = solve_transient(
            _ring(), stop_time=self.STOP, max_step=self.MAX_STEP,
            bypass_tol=None, chord=False,
        )
        # Bypass replays exact linearizations below the tolerance; the
        # waveform error is second order in it.
        assert _deviation(ref, bypass, self.STOP) < 5e-3


def _two_stage_circuit(hf_model):
    """Two independent common-emitter stages sharing only the rails."""
    ckt = Circuit("two_stage")
    ckt.add(VoltageSource("VCC", ("vcc", "0"), dc=5.0))
    for k in (1, 2):
        ckt.add(VoltageSource(f"VB{k}", (f"in{k}", "0"), dc=0.8))
        ckt.add(Resistor(f"RB{k}", (f"in{k}", f"b{k}"), 1e3))
        ckt.add(Resistor(f"RC{k}", ("vcc", f"c{k}"), 1e3))
        ckt.add(BJT(f"Q{k}", (f"c{k}", f"b{k}", "0"), hf_model))
    return ckt


class TestBypassMask:
    """The vectorized mask must bypass exactly the unmoved devices."""

    TOL = 1e-3

    def test_single_device_toggles(self, hf_model):
        ckt = _two_stage_circuit(hf_model)
        size = ckt.assign_indices()
        engine = compile_circuit(ckt)
        limits = {}
        rng = np.random.default_rng(21)
        x0 = 0.3 * rng.standard_normal(size)

        engine.evaluate(x0, limits=limits, bypass_tol=self.TOL)
        before = engine.stats.bypassed_evals

        # Nudge only Q2's base node, well past the tolerance: Q1 must
        # be bypassed (its terminal voltages are untouched), Q2 not.
        x1 = x0.copy()
        x1[ckt.node_index("b2")] += 0.05
        ctx = engine.evaluate(x1, limits=limits, bypass_tol=self.TOL)
        assert engine.stats.bypassed_evals - before == 1

        # The mixed bypassed/evaluated assembly must equal a full
        # evaluation with the same limiting history.
        engine_full = compile_circuit(ckt)
        limits_full = {}
        engine_full.evaluate(x0, limits=limits_full)
        full = engine_full.evaluate(x1, limits=limits_full)
        np.testing.assert_allclose(ctx.i_vec, full.i_vec,
                                   rtol=1e-12, atol=1e-15)
        np.testing.assert_allclose(ctx.q_vec, full.q_vec,
                                   rtol=1e-12, atol=1e-18)
        np.testing.assert_allclose(ctx.g_mat, full.g_mat,
                                   rtol=1e-12, atol=1e-15)
        np.testing.assert_allclose(ctx.c_mat, full.c_mat,
                                   rtol=1e-12, atol=1e-20)

    def test_sub_tolerance_move_bypasses_all(self, hf_model):
        ckt = _two_stage_circuit(hf_model)
        size = ckt.assign_indices()
        engine = compile_circuit(ckt)
        limits = {}
        rng = np.random.default_rng(22)
        x0 = 0.3 * rng.standard_normal(size)
        engine.evaluate(x0, limits=limits, bypass_tol=self.TOL)
        before = engine.stats.bypassed_evals
        engine.evaluate(x0 + 1e-7, limits=limits, bypass_tol=self.TOL)
        assert engine.stats.bypassed_evals - before == 2

    def test_zero_tolerance_never_bypasses(self, hf_model):
        ckt = _two_stage_circuit(hf_model)
        size = ckt.assign_indices()
        engine = compile_circuit(ckt)
        limits = {}
        x0 = np.zeros(size)
        engine.evaluate(x0, limits=limits, bypass_tol=0.0)
        engine.evaluate(x0, limits=limits, bypass_tol=0.0)
        assert engine.stats.bypassed_evals == 0


class TestTransientArgumentValidation:
    """Bad stepping arguments must fail fast, not spin forever."""

    def _rc(self):
        ckt = Circuit("rc")
        ckt.add(VoltageSource("V1", ("in", "0"), dc=1.0))
        ckt.add(Resistor("R1", ("in", "out"), 1e3))
        ckt.add(Capacitor("C1", ("out", "0"), 1e-9))
        return ckt

    @pytest.mark.parametrize("kwargs", [
        {"max_step": 0.0},
        {"max_step": -1e-12},
        {"initial_step": 0.0},
        {"initial_step": -5e-13},
        {"lte_reltol": 0.0},
        {"lte_reltol": -1e-3},
    ])
    def test_nonpositive_stepping_args_rejected(self, kwargs):
        from repro.errors import AnalysisError
        with pytest.raises(AnalysisError, match="must be positive"):
            solve_transient(self._rc(), stop_time=1e-6, **kwargs)


class TestBreakpointMerging:
    """Coincident source corners must not force near-zero steps."""

    def test_close_breakpoints_merge(self):
        ckt = Circuit("two_pulses")
        ckt.add(VoltageSource(
            "V1", ("a", "0"),
            dc=Pulse(0.0, 1.0, delay=1e-9, rise=1e-10, width=5e-9,
                     period=1.0),
        ))
        ckt.add(VoltageSource(
            "V2", ("b", "0"),
            dc=Pulse(0.0, 1.0, delay=1e-9 + 1e-14, rise=1e-10,
                     width=5e-9, period=1.0),
        ))
        ckt.add(Resistor("R1", ("a", "0"), 1e3))
        ckt.add(Resistor("R2", ("b", "0"), 1e3))
        min_sep = 1e-12
        merged = _collect_breakpoints(ckt, 10e-9, min_sep)
        assert merged, "expected breakpoints"
        gaps = np.diff(merged)
        assert np.all(gaps >= min_sep * (1 - 1e-9))

    def test_trailing_sliver_dropped(self):
        ckt = Circuit("edge_at_stop")
        stop = 10e-9
        ckt.add(VoltageSource(
            "V1", ("a", "0"),
            dc=Pulse(0.0, 1.0, delay=stop - 1e-14, rise=1e-10,
                     width=5e-9, period=1.0),
        ))
        ckt.add(Resistor("R1", ("a", "0"), 1e3))
        merged = _collect_breakpoints(ckt, stop, 1e-12)
        assert all(p <= stop - 1e-12 for p in merged)

"""Compiled-engine tests: stamping equivalence against the legacy
per-element path, golden analysis agreement on the example decks, linear
solver units and engine caching/instrumentation."""

from pathlib import Path

import numpy as np
import pytest

from repro.errors import AnalysisError
from repro.spice import (
    ACResult,
    Circuit,
    CompiledCircuit,
    DenseLUSolver,
    EngineStats,
    LegacyEngine,
    NoiseResult,
    OperatingPointResult,
    Simulator,
    SparseLUSolver,
    compile_circuit,
    get_engine,
    make_solver,
    parse_deck,
    resolve_engine,
    run_deck,
    solve_ac,
    solve_dc,
    solve_noise,
    solve_transient,
    transfer_function,
)
from repro.spice.elements import (
    BJT,
    CCCS,
    VCVS,
    Capacitor,
    CurrentSource,
    Diode,
    DiodeModel,
    Inductor,
    Pulse,
    Resistor,
    Sine,
    VoltageSource,
)
from repro.spice.engine import SPARSE_THRESHOLD
from repro.spice.mna import load_circuit

DECK_DIR = Path(__file__).resolve().parents[2] / "examples" / "decks"
DECKS = sorted(DECK_DIR.glob("*.cir"))


def deck_circuit(path: Path) -> Circuit:
    return parse_deck(path.read_text()).circuit


def synthetic_circuits(hf_model):
    """Hand-built circuits covering element classes the decks miss."""
    mixed = Circuit("mixed")
    v1 = VoltageSource("V1", ("in", "0"),
                       dc=Pulse(0.0, 1.0, delay=1e-9, rise=1e-9,
                                width=5e-9, period=20e-9))
    mixed.add(v1)
    mixed.add(Resistor("R1", ("in", "a"), 1e3))
    mixed.add(Diode("D1", ("a", "b"), DiodeModel(RS=10.0, CJO=1e-12,
                                                 TT=1e-10)))
    mixed.add(Resistor("R2", ("b", "0"), 2e3))
    mixed.add(Capacitor("C1", ("a", "0"), 1e-12))
    mixed.add(Inductor("L1", ("b", "c"), 1e-9))
    mixed.add(Resistor("R3", ("c", "0"), 50.0))
    mixed.add(VCVS("E1", ("d", "0", "a", "0"), gain=2.0))
    mixed.add(Resistor("R4", ("d", "0"), 1e3))
    mixed.add(CCCS("F1", ("c", "0"), v1, 0.5))

    amp = Circuit("bjt_amp")
    amp.add(VoltageSource("VCC", ("vcc", "0"), dc=5.0))
    amp.add(VoltageSource("VB", ("b", "0"), dc=0.8, ac_mag=1.0))
    amp.add(Resistor("RL", ("vcc", "c"), 1e3))
    amp.add(BJT("Q1", ("c", "b", "0"), hf_model))
    amp.add(CurrentSource("IB", ("0", "b"), dc=1e-5))
    return [mixed, amp]


def assert_contexts_match(ctx_a, ctx_b, rtol=1e-12, atol=1e-18):
    for attr in ("i_vec", "g_mat", "q_vec", "c_mat"):
        np.testing.assert_allclose(
            getattr(ctx_a, attr), getattr(ctx_b, attr),
            rtol=rtol, atol=atol, err_msg=attr,
        )


class TestStampingEquivalence:
    """engine.evaluate must reproduce load_circuit exactly."""

    @pytest.mark.parametrize("path", DECKS, ids=lambda p: p.stem)
    def test_deck_stamps_match(self, path):
        circuit = deck_circuit(path)
        size = circuit.assign_indices()
        engine = compile_circuit(circuit)
        rng = np.random.default_rng(7)
        for time, scale in ((None, 1.0), (0.0, 1.0), (3.7e-10, 1.0),
                            (None, 0.0), (None, 0.35)):
            x = 0.5 * rng.standard_normal(size)
            limits_a, limits_b = {}, {}
            ctx_a = load_circuit(circuit, x, time=time, limits=limits_a,
                                 source_scale=scale)
            ctx_b = engine.evaluate(x, time=time, limits=limits_b,
                                    source_scale=scale)
            assert_contexts_match(ctx_a, ctx_b)
            assert limits_a.keys() == limits_b.keys()
            for key in limits_a:
                np.testing.assert_allclose(limits_a[key], limits_b[key],
                                           rtol=1e-12, atol=1e-15)

    def test_synthetic_stamps_match(self, hf_model):
        for circuit in synthetic_circuits(hf_model):
            size = circuit.assign_indices()
            engine = compile_circuit(circuit)
            rng = np.random.default_rng(11)
            limits_a, limits_b = {}, {}
            for time in (None, 0.0, 2.5e-9):
                x = 0.4 * rng.standard_normal(size)
                ctx_a = load_circuit(circuit, x, time=time,
                                     limits=limits_a)
                ctx_b = engine.evaluate(x, time=time, limits=limits_b)
                assert_contexts_match(ctx_a, ctx_b)

    def test_pnp_stamps_match(self, hf_model):
        import dataclasses
        pnp_params = dataclasses.replace(hf_model, name="QPNP",
                                         polarity="pnp")
        circuit = Circuit("pnp_stage")
        circuit.add(VoltageSource("VEE", ("vee", "0"), dc=5.0))
        circuit.add(Resistor("RL", ("c", "0"), 1e3))
        circuit.add(BJT("Q1", ("c", "b", "vee"), pnp_params))
        circuit.add(VoltageSource("VB", ("b", "0"), dc=4.2))
        size = circuit.assign_indices()
        engine = compile_circuit(circuit)
        rng = np.random.default_rng(3)
        limits_a, limits_b = {}, {}
        for _ in range(3):
            x = 2.0 + 0.3 * rng.standard_normal(size)
            ctx_a = load_circuit(circuit, x, limits=limits_a)
            ctx_b = engine.evaluate(x, limits=limits_b)
            assert_contexts_match(ctx_a, ctx_b)

    def test_warm_limits_second_evaluation(self, hf_model):
        """Second evaluation reuses pnjlim history identically."""
        circuit = Circuit("warm")
        circuit.add(VoltageSource("VCC", ("vcc", "0"), dc=5.0))
        circuit.add(Resistor("RL", ("vcc", "c"), 1e3))
        circuit.add(BJT("Q1", ("c", "b", "0"), hf_model))
        circuit.add(VoltageSource("VB", ("b", "0"), dc=0.85))
        size = circuit.assign_indices()
        engine = compile_circuit(circuit)
        rng = np.random.default_rng(5)
        limits_a, limits_b = {}, {}
        for _ in range(4):
            x = 0.9 * rng.standard_normal(size)
            ctx_a = load_circuit(circuit, x, limits=limits_a)
            ctx_b = engine.evaluate(x, limits=limits_b)
            assert_contexts_match(ctx_a, ctx_b)


class TestGoldenAnalyses:
    """Legacy and compiled paths must agree on full analyses."""

    @pytest.mark.parametrize("path", DECKS, ids=lambda p: p.stem)
    def test_dc_matches(self, path):
        text = path.read_text()
        x_legacy = solve_dc(parse_deck(text).circuit, engine="legacy")
        x_compiled = solve_dc(parse_deck(text).circuit)
        np.testing.assert_allclose(x_compiled, x_legacy,
                                   rtol=1e-7, atol=1e-9)

    def test_ac_matches(self):
        text = (DECK_DIR / "ce_stage.cir").read_text()
        runs = {
            name: run_deck(parse_deck(text), engine=name)
            for name in ("legacy", "compiled")
        }
        ac_legacy = runs["legacy"].first(ACResult)
        ac_compiled = runs["compiled"].first(ACResult)
        np.testing.assert_allclose(
            ac_compiled.voltage("c"), ac_legacy.voltage("c"),
            rtol=1e-8,
        )

    def test_noise_matches(self):
        text = (DECK_DIR / "noise_bench.cir").read_text()
        n_legacy = run_deck(parse_deck(text), engine="legacy").first(
            NoiseResult)
        n_compiled = run_deck(parse_deck(text)).first(NoiseResult)
        np.testing.assert_allclose(
            n_compiled.output_density, n_legacy.output_density,
            rtol=1e-6,
        )

    def test_transient_matches_on_driven_circuit(self, hf_model):
        def build():
            ckt = Circuit("driven")
            ckt.add(VoltageSource("VCC", ("vcc", "0"), dc=5.0))
            ckt.add(VoltageSource("VIN", ("b", "0"),
                                  dc=Sine(offset=0.8, amplitude=0.01,
                                          frequency=1e9)))
            ckt.add(Resistor("RL", ("vcc", "c"), 1e3))
            ckt.add(BJT("Q1", ("c", "b", "0"), hf_model))
            return ckt

        stop = 2e-9
        r_legacy = solve_transient(build(), stop_time=stop,
                                   max_step=stop / 100, engine="legacy")
        # Exact-parity golden test: hot-path shortcuts pinned off.
        r_compiled = solve_transient(build(), stop_time=stop,
                                     max_step=stop / 100,
                                     bypass_tol=0.0, chord=False)
        grid = np.linspace(0.0, stop, 60)
        v_legacy = np.interp(grid, r_legacy.times, r_legacy.voltage("c"))
        v_compiled = np.interp(grid, r_compiled.times,
                               r_compiled.voltage("c"))
        np.testing.assert_allclose(v_compiled, v_legacy, atol=2e-4)

    def test_transient_ring_oscillator_initial_window(self):
        """The autonomous ring oscillator diverges exponentially from any
        perturbation, so only the initial window is comparable."""
        text = (DECK_DIR / "ring_oscillator.cir").read_text()
        stop = 3e-10
        r_legacy = solve_transient(parse_deck(text).circuit,
                                   stop_time=stop, max_step=5e-12,
                                   engine="legacy")
        # Exact-parity golden test: hot-path shortcuts pinned off.
        r_compiled = solve_transient(parse_deck(text).circuit,
                                     stop_time=stop, max_step=5e-12,
                                     bypass_tol=0.0, chord=False)
        grid = np.linspace(0.0, stop, 40)
        v_legacy = np.interp(grid, r_legacy.times, r_legacy.voltage("c0p"))
        v_compiled = np.interp(grid, r_compiled.times,
                               r_compiled.voltage("c0p"))
        np.testing.assert_allclose(v_compiled, v_legacy, atol=2e-3)

    def test_transfer_function_matches(self):
        text = (DECK_DIR / "ce_stage.cir").read_text()
        tf_legacy = transfer_function(parse_deck(text).circuit, "VB",
                                      "c", engine="legacy")
        tf_compiled = transfer_function(parse_deck(text).circuit, "VB",
                                        "c")
        assert tf_compiled.gain == pytest.approx(tf_legacy.gain, rel=1e-9)
        assert tf_compiled.input_resistance == pytest.approx(
            tf_legacy.input_resistance, rel=1e-9)
        assert tf_compiled.output_resistance == pytest.approx(
            tf_legacy.output_resistance, rel=1e-9)


class TestLinearSolvers:
    def test_dense_solver_solves(self):
        rng = np.random.default_rng(0)
        a = rng.standard_normal((6, 6)) + 6.0 * np.eye(6)
        b = rng.standard_normal(6)
        solver = DenseLUSolver()
        np.testing.assert_allclose(solver.solve(a, b), np.linalg.solve(a, b))

    def test_dense_factorization_reuse(self):
        rng = np.random.default_rng(1)
        a = rng.standard_normal((5, 5)) + 5.0 * np.eye(5)
        solver = DenseLUSolver()
        stats = EngineStats()
        solver.bind(stats)
        solver.solve(a, rng.standard_normal(5), token=("t",))
        solver.solve(a, rng.standard_normal(5), token=("t",))
        solver.solve(a, rng.standard_normal(5), token=("t",))
        assert stats.factorizations == 1
        assert stats.solves == 3
        solver.invalidate()
        solver.solve(a, rng.standard_normal(5), token=("t",))
        assert stats.factorizations == 2

    def test_dense_token_change_refactorizes(self):
        rng = np.random.default_rng(2)
        a = rng.standard_normal((4, 4)) + 4.0 * np.eye(4)
        solver = DenseLUSolver()
        stats = EngineStats()
        solver.bind(stats)
        solver.solve(a, rng.standard_normal(4), token=("a",))
        solver.solve(2.0 * a, rng.standard_normal(4), token=("b",))
        assert stats.factorizations == 2

    def test_singular_matrix_raises(self):
        singular = np.zeros((3, 3))
        for solver in (DenseLUSolver(), SparseLUSolver()):
            with pytest.raises(np.linalg.LinAlgError):
                solver.solve(singular, np.ones(3))

    def test_sparse_solver_matches_dense(self):
        rng = np.random.default_rng(3)
        a = np.diag(rng.uniform(1.0, 2.0, 40))
        a[0, 5] = 0.3
        a[5, 0] = 0.2
        b = rng.standard_normal(40)
        np.testing.assert_allclose(
            SparseLUSolver().solve(a, b), np.linalg.solve(a, b),
        )

    def test_make_solver_size_threshold(self):
        assert isinstance(make_solver(8), DenseLUSolver)
        assert isinstance(make_solver(SPARSE_THRESHOLD + 1), SparseLUSolver)
        assert isinstance(make_solver(SPARSE_THRESHOLD + 1, prefer="dense"),
                          DenseLUSolver)
        assert isinstance(make_solver(8, prefer="sparse"), SparseLUSolver)


class TestEngineLifecycle:
    def test_get_engine_caches(self):
        circuit = deck_circuit(DECK_DIR / "ce_stage.cir")
        assert get_engine(circuit) is get_engine(circuit)

    def test_mutation_invalidates_cache(self):
        circuit = deck_circuit(DECK_DIR / "ce_stage.cir")
        engine = get_engine(circuit)
        circuit.add(Resistor("RX", ("c", "0"), 1e6))
        assert get_engine(circuit) is not engine

    def test_stale_engine_rejected(self):
        circuit = deck_circuit(DECK_DIR / "ce_stage.cir")
        engine = get_engine(circuit)
        circuit.add(Resistor("RX", ("c", "0"), 1e6))
        with pytest.raises(AnalysisError):
            resolve_engine(circuit, engine)

    def test_wrong_circuit_rejected(self):
        a = deck_circuit(DECK_DIR / "ce_stage.cir")
        b = deck_circuit(DECK_DIR / "ce_stage.cir")
        with pytest.raises(AnalysisError):
            resolve_engine(a, get_engine(b))

    def test_resolve_strings(self):
        circuit = deck_circuit(DECK_DIR / "ce_stage.cir")
        assert isinstance(resolve_engine(circuit, None), CompiledCircuit)
        assert isinstance(resolve_engine(circuit, "compiled"),
                          CompiledCircuit)
        assert isinstance(resolve_engine(circuit, "legacy"), LegacyEngine)
        with pytest.raises(AnalysisError):
            resolve_engine(circuit, "turbo")

    def test_invalidate_bumps_generation(self):
        circuit = deck_circuit(DECK_DIR / "ce_stage.cir")
        engine = get_engine(circuit)
        circuit.invalidate()
        assert get_engine(circuit) is not engine


class TestInstrumentation:
    def test_operating_point_carries_stats(self):
        circuit = deck_circuit(DECK_DIR / "ce_stage.cir")
        result = Simulator(circuit).operating_point()
        stats = result.stats
        assert isinstance(stats, EngineStats)
        assert stats.assemblies > 0
        assert stats.solves > 0
        assert stats.factorizations >= 1
        assert stats.wall_seconds > 0.0

    def test_linear_circuit_factorizes_once_per_token(self):
        circuit = Circuit("rc")
        circuit.add(VoltageSource("V1", ("in", "0"), dc=1.0))
        circuit.add(Resistor("R1", ("in", "out"), 1e3))
        circuit.add(Resistor("R2", ("out", "0"), 1e3))
        engine = get_engine(circuit)
        solve_dc(circuit, engine=engine)
        first = engine.stats.factorizations
        solve_dc(circuit, engine=engine)
        # Linear circuit + same ("dc",) token: the LU factors are reused.
        assert engine.stats.factorizations == first

    def test_element_evals_exclude_cached_linear_part(self, hf_model):
        circuit = Circuit("amp")
        circuit.add(VoltageSource("VCC", ("vcc", "0"), dc=5.0))
        circuit.add(VoltageSource("VB", ("b", "0"), dc=0.8))
        circuit.add(Resistor("RL", ("vcc", "c"), 1e3))
        circuit.add(BJT("Q1", ("c", "b", "0"), hf_model))
        engine = get_engine(circuit)
        before = engine.stats.element_evals
        engine.evaluate(np.zeros(engine.size))
        # 2 sources + 1 BJT re-evaluated; the resistor comes from G0.
        assert engine.stats.element_evals - before == 3

    def test_transient_and_ac_carry_stats(self):
        circuit = Circuit("rc")
        circuit.add(VoltageSource("V1", ("in", "0"),
                                  dc=Pulse(0.0, 1.0, rise=1e-9, width=1e-6,
                                           period=1e-3),
                                  ac_mag=1.0))
        circuit.add(Resistor("R1", ("in", "out"), 1e3))
        circuit.add(Capacitor("C1", ("out", "0"), 1e-9))
        tran = solve_transient(circuit, stop_time=5e-6)
        assert tran.stats is not None and tran.stats.solves > 0
        ac = solve_ac(circuit, np.array([1e3, 1e6]))
        assert ac.stats is not None and ac.stats.solves >= 2

    def test_stats_since_and_summary(self):
        stats = EngineStats()
        stats.solves = 5
        stats.wall_seconds = 0.25
        snap = stats.copy()
        stats.solves = 9
        delta = stats.since(snap)
        assert delta.solves == 4
        assert "solves" in stats.summary()
        assert stats.as_dict()["solves"] == 9

    def test_deck_run_profile_report(self):
        text = (DECK_DIR / "ce_stage.cir").read_text()
        run = run_deck(parse_deck(text))
        report = run.profile()
        assert ".OP" in report and ".AC" in report
        assert "total engine wall time" in report

    def test_cli_profile_flag(self, capsys):
        from repro.cli import main
        assert main(["run", str(DECK_DIR / "ce_stage.cir"),
                     "--profile"]) == 0
        out = capsys.readouterr().out
        assert "engine profile:" in out
        assert "solves" in out

    def test_cli_legacy_engine_flag(self, capsys):
        from repro.cli import main
        assert main(["run", str(DECK_DIR / "ce_stage.cir"),
                     "--engine", "legacy", "--profile"]) == 0
        assert "numpy-dense" in capsys.readouterr().out

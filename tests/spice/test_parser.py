"""Tests for the SPICE deck parser."""

import math

import pytest

from repro.devices import GummelPoonParameters
from repro.errors import ParseError
from repro.spice import Simulator, parse_deck
from repro.spice.elements import (
    BJT,
    CCCS,
    Capacitor,
    CurrentSource,
    Diode,
    Inductor,
    Pulse,
    Resistor,
    Sine,
    VCVS,
    VoltageSource,
)

DIVIDER = """simple divider
V1 in 0 DC 10
R1 in out 3k
R2 out 0 1k
.OP
.END
"""


class TestBasicParsing:
    def test_title_and_elements(self):
        deck = parse_deck(DIVIDER)
        assert deck.title == "simple divider"
        assert len(deck.circuit) == 3
        assert isinstance(deck.circuit.element("R1"), Resistor)
        assert deck.circuit.element("R1").resistance == 3000.0

    def test_parsed_deck_simulates(self):
        deck = parse_deck(DIVIDER)
        result = Simulator(deck.circuit).operating_point()
        assert result.voltage("out") == pytest.approx(2.5, rel=1e-6)

    def test_comments_and_continuations(self):
        deck = parse_deck("""title
* a comment line
V1 a 0 DC 1 $ inline comment
R1 a
+ 0
+ 2k
.END
""")
        assert deck.circuit.element("R1").resistance == 2000.0

    def test_case_insensitive(self):
        deck = parse_deck("t\nv1 A 0 dc 1\nr1 A 0 1K\n.end\n")
        assert isinstance(deck.circuit.element("V1"), VoltageSource)

    def test_engineering_values(self):
        deck = parse_deck("t\nV1 a 0 1\nC1 a 0 100n\nL1 a 0 2.2u\n"
                          "R1 a 0 4.7MEG\n.END\n")
        assert deck.circuit.element("C1").capacitance == pytest.approx(100e-9)
        assert deck.circuit.element("L1").inductance == pytest.approx(2.2e-6)
        assert deck.circuit.element("R1").resistance == pytest.approx(4.7e6)

    def test_empty_deck_rejected(self):
        with pytest.raises(ParseError):
            parse_deck("")
        with pytest.raises(ParseError):
            parse_deck("* only a comment\n")


class TestSources:
    def test_dc_and_ac(self):
        deck = parse_deck("t\nV1 a 0 DC 2 AC 1 45\nR1 a 0 1k\n.END\n")
        source = deck.circuit.element("V1")
        assert source.waveform.level == 2.0
        assert source.ac_mag == 1.0
        assert source.ac_phase_deg == 45.0

    def test_bare_value_is_dc(self):
        deck = parse_deck("t\nI1 a 0 3m\nR1 a 0 1k\n.END\n")
        assert deck.circuit.element("I1").waveform.level == pytest.approx(3e-3)

    def test_sin_waveform(self):
        deck = parse_deck("t\nV1 a 0 SIN(0 1 1MEG)\nR1 a 0 1k\n.END\n")
        waveform = deck.circuit.element("V1").waveform
        assert isinstance(waveform, Sine)
        assert waveform.frequency == 1e6

    def test_pulse_waveform(self):
        deck = parse_deck(
            "t\nV1 a 0 PULSE(0 5 1n 2n 2n 10n 30n)\nR1 a 0 1k\n.END\n"
        )
        waveform = deck.circuit.element("V1").waveform
        assert isinstance(waveform, Pulse)
        assert waveform.v2 == 5.0
        assert waveform.period == pytest.approx(30e-9)

    def test_pwl_waveform(self):
        deck = parse_deck(
            "t\nV1 a 0 PWL(0 0 1u 1 2u 0)\nR1 a 0 1k\n.END\n"
        )
        waveform = deck.circuit.element("V1").waveform
        assert waveform.value(1e-6) == pytest.approx(1.0)

    def test_pwl_odd_values_rejected(self):
        with pytest.raises(ParseError):
            parse_deck("t\nV1 a 0 PWL(0 0 1u)\nR1 a 0 1k\n.END\n")


class TestModelsAndDevices:
    def test_npn_model_card(self):
        deck = parse_deck("""t
.MODEL QX NPN(IS=2e-16 BF=80 RB=150 CJE=40f TF=11p)
VCC vcc 0 5
RB1 vcc b 100k
RC1 vcc c 1k
Q1 c b 0 QX
.END
""")
        model = deck.models["QX"]
        assert isinstance(model, GummelPoonParameters)
        assert model.BF == 80.0
        assert model.TF == pytest.approx(11e-12)
        q = deck.circuit.element("Q1")
        assert isinstance(q, BJT)
        result = Simulator(deck.circuit).operating_point()
        assert result.voltage("c") < 5.0  # conducting

    def test_bjt_with_substrate_node(self):
        deck = parse_deck("""t
.MODEL QX NPN(IS=1e-16 CJS=50f)
V1 c 0 3
V2 b 0 0.7
Q1 c b 0 sub QX
RSUB sub 0 1MEG
.END
""")
        q = deck.circuit.element("Q1")
        assert q.nodes == ("c", "b", "0", "sub")

    def test_bjt_area_factor(self):
        deck = parse_deck("""t
.MODEL QX NPN(IS=1e-16 RB=100)
V1 c 0 3
V2 b 0 0.7
Q1 c b 0 QX 4
.END
""")
        q = deck.circuit.element("Q1")
        assert q.params.IS == pytest.approx(4e-16)
        assert q.params.RB == pytest.approx(25.0)

    def test_diode_model(self):
        deck = parse_deck("""t
.MODEL DX D(IS=2e-14 RS=5 CJO=1p)
V1 a 0 1
D1 a 0 DX
.END
""")
        d = deck.circuit.element("D1")
        assert isinstance(d, Diode)
        assert d.model.RS == 5.0

    def test_pnp_model(self):
        deck = parse_deck("""t
.MODEL QP PNP(IS=1e-16)
V1 e 0 5
Q1 0 b e QP
RB1 e b 100k
.END
""")
        assert deck.models["QP"].polarity == "pnp"

    def test_unknown_model_rejected(self):
        with pytest.raises(ParseError):
            parse_deck("t\nV1 a 0 1\nD1 a 0 NOPE\n.END\n")

    def test_wrong_model_type_rejected(self):
        with pytest.raises(ParseError):
            parse_deck("""t
.MODEL DX D(IS=1e-14)
V1 a 0 1
Q1 a a 0 DX
.END
""")


class TestControlledSources:
    def test_e_and_g(self):
        deck = parse_deck("""t
V1 a 0 1
R0 a 0 1k
E1 b 0 a 0 2
RL b 0 1k
G1 0 c a 0 1m
RG c 0 1k
.END
""")
        assert isinstance(deck.circuit.element("E1"), VCVS)
        result = Simulator(deck.circuit).operating_point()
        assert result.voltage("b") == pytest.approx(2.0, rel=1e-6)
        assert result.voltage("c") == pytest.approx(1.0, rel=1e-6)

    def test_f_references_vsource(self):
        deck = parse_deck("""t
V1 a 0 1
R1 a 0 1k
F1 0 b V1 2
RL b 0 1k
.END
""")
        f = deck.circuit.element("F1")
        assert isinstance(f, CCCS)
        assert f.control is deck.circuit.element("V1")

    def test_f_with_missing_control_rejected(self):
        with pytest.raises(ParseError):
            parse_deck("t\nV1 a 0 1\nR1 a 0 1k\nF1 0 b VX 2\nRL b 0 1k\n.END\n")


class TestSubcircuits:
    DECK = """subckt test
.SUBCKT ATTEN in out
R1 in mid 1k
R2 mid out 1k
R3 mid 0 2k
.ENDS
V1 a 0 DC 4
X1 a b ATTEN
X2 b c ATTEN
RL c 0 1MEG
.END
"""

    def test_flattening_names(self):
        deck = parse_deck(self.DECK)
        assert "X1.R1" in deck.circuit
        assert "X2.R3" in deck.circuit
        # internal nodes are prefixed
        assert "X1.mid" in deck.circuit.node_map or deck.circuit.assign_indices()

    def test_flattened_circuit_simulates(self):
        deck = parse_deck(self.DECK)
        result = Simulator(deck.circuit).operating_point()
        assert 0.0 < result.voltage("c") < result.voltage("b") < 4.0

    def test_port_count_mismatch(self):
        with pytest.raises(ParseError):
            parse_deck("""t
.SUBCKT ONE a
R1 a 0 1k
.ENDS
V1 x 0 1
X1 x y ONE
.END
""")

    def test_missing_ends(self):
        with pytest.raises(ParseError):
            parse_deck("t\n.SUBCKT BAD a\nR1 a 0 1\nV9 a 0 1\n.END\n")

    def test_unknown_subckt(self):
        with pytest.raises(ParseError):
            parse_deck("t\nV1 a 0 1\nX1 a NOPE\n.END\n")


class TestAnalysisCards:
    def test_op_dc_ac_tran(self):
        deck = parse_deck("""t
V1 a 0 DC 1 AC 1
R1 a 0 1k
.OP
.DC V1 0 5 0.1
.AC DEC 10 1k 1G
.TRAN 1n 100n
.END
""")
        kinds = [card.kind for card in deck.analyses]
        assert kinds == ["op", "dc", "ac", "tran"]
        ac = deck.analyses[2]
        assert ac.args["points"] == 10
        assert ac.args["stop"] == 1e9
        tran = deck.analyses[3]
        assert tran.args["stop"] == pytest.approx(100e-9)

    def test_unknown_card_rejected(self):
        with pytest.raises(ParseError):
            parse_deck("t\nV1 a 0 1\nR1 a 0 1\n.FOURIER\n.END\n")

    def test_malformed_dc_card(self):
        with pytest.raises(ParseError):
            parse_deck("t\nV1 a 0 1\nR1 a 0 1\n.DC V1 0 5\n.END\n")

    def test_ignored_cards_pass(self):
        deck = parse_deck("t\nV1 a 0 1\nR1 a 0 1\n.OPTIONS RELTOL=1e-4\n"
                          ".PROBE\n.END\n")
        assert deck.analyses == []


class TestErrors:
    def test_line_numbers_in_errors(self):
        try:
            parse_deck("title\nV1 a 0 1\nR1 a 0\n.END\n")
        except ParseError as exc:
            assert "3" in str(exc)
        else:
            pytest.fail("expected ParseError")

    def test_unbalanced_parens(self):
        with pytest.raises(ParseError):
            parse_deck("t\nV1 a 0 SIN(0 1 1MEG\nR1 a 0 1k\n.END\n")

    def test_unknown_element_letter(self):
        with pytest.raises(ParseError):
            parse_deck("t\nV1 a 0 1\nZ1 a 0 1k\n.END\n")


class TestOptionsCard:
    def test_recognized_settings_parsed(self):
        deck = parse_deck(
            "t\nV1 a 0 1\nR1 a 0 1k\n"
            ".OPTIONS RELTOL=1e-4 VNTOL=1u ABSTOL=1p ITL1=50 GMIN=1e-10\n"
            ".END\n"
        )
        assert deck.options["reltol"] == pytest.approx(1e-4)
        assert deck.options["vntol"] == pytest.approx(1e-6)
        assert deck.options["abstol"] == pytest.approx(1e-12)
        assert deck.options["itl1"] == 50
        assert deck.options["gmin"] == pytest.approx(1e-10)

    def test_unknown_and_bare_flags_tolerated(self):
        deck = parse_deck(
            "t\nV1 a 0 1\nR1 a 0 1k\n"
            ".OPTIONS ACCT NOPAGE TEMP=27 RELTOL=1e-5\n.END\n"
        )
        assert deck.options == {"reltol": pytest.approx(1e-5)}

    def test_bad_value_rejected(self):
        with pytest.raises(ParseError):
            parse_deck("t\nV1 a 0 1\nR1 a 0 1k\n"
                       ".OPTIONS RELTOL=bogus\n.END\n")

    def test_no_options_card_leaves_empty_dict(self):
        deck = parse_deck("t\nV1 a 0 1\nR1 a 0 1k\n.END\n")
        assert deck.options == {}

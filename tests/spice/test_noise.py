"""Noise-analysis tests against closed-form noise theory."""

import math

import numpy as np
import pytest

from repro.devices import GummelPoonParameters, thermal_voltage
from repro.errors import AnalysisError
from repro.spice import Circuit, solve_noise
from repro.spice.noise import BOLTZMANN, ELECTRON_CHARGE, NOISE_TEMPERATURE
from repro.spice.elements import (
    BJT,
    Capacitor,
    CurrentSource,
    Diode,
    DiodeModel,
    Resistor,
    VoltageSource,
)

KT4 = 4.0 * BOLTZMANN * NOISE_TEMPERATURE


class TestResistorNoise:
    def test_single_resistor(self):
        """Open-circuit voltage noise of R: 4kTR."""
        ckt = Circuit("r")
        ckt.add(CurrentSource("IBIAS", ("0", "a"), dc=0.0))
        ckt.add(Resistor("R1", ("a", "0"), 10e3))
        result = solve_noise(ckt, "a", [1e3, 1e6])
        expected = KT4 * 10e3
        np.testing.assert_allclose(result.output_density, expected,
                                   rtol=1e-9)

    def test_divider_sees_parallel_resistance(self):
        ckt = Circuit("div")
        ckt.add(VoltageSource("VS", ("in", "0"), dc=0.0))
        ckt.add(Resistor("R1", ("in", "out"), 10e3))
        ckt.add(Resistor("R2", ("out", "0"), 40e3))
        result = solve_noise(ckt, "out", [1e3])
        r_parallel = 10e3 * 40e3 / 50e3
        assert result.output_density[0] == pytest.approx(KT4 * r_parallel,
                                                         rel=1e-9)

    def test_ktc_integral(self):
        """Integrated RC-filtered resistor noise -> kT/C, independent of R."""
        for r in (100.0, 10e3):
            ckt = Circuit("ktc")
            ckt.add(VoltageSource("VS", ("in", "0"), dc=0.0))
            ckt.add(Resistor("R1", ("in", "out"), r))
            ckt.add(Capacitor("C1", ("out", "0"), 1e-9))
            freqs = np.geomspace(1.0, 1e10, 600)
            result = solve_noise(ckt, "out", freqs)
            integral = np.trapezoid(result.output_density, freqs)
            assert integral == pytest.approx(
                BOLTZMANN * NOISE_TEMPERATURE / 1e-9, rel=0.01
            ), f"R={r}"

    def test_contributions_sum_to_total(self):
        ckt = Circuit("sum")
        ckt.add(VoltageSource("VS", ("in", "0"), dc=0.0))
        ckt.add(Resistor("R1", ("in", "out"), 1e3))
        ckt.add(Resistor("R2", ("out", "0"), 2e3))
        ckt.add(Resistor("R3", ("out", "0"), 3e3))
        result = solve_noise(ckt, "out", [1e4])
        total = sum(v[0] for v in result.contributions.values())
        assert total == pytest.approx(result.output_density[0], rel=1e-12)


class TestDiodeShotNoise:
    def test_shot_noise_level(self):
        """Forward-biased diode: S_v = 2qI * rd^2 with rd = nVt/I."""
        ckt = Circuit("shot")
        i_bias = 1e-3
        ckt.add(CurrentSource("IB", ("0", "a"), dc=i_bias))
        ckt.add(Diode("D1", ("a", "0"), DiodeModel(IS=1e-14)))
        result = solve_noise(ckt, "a", [1e3])
        rd = thermal_voltage() / i_bias
        expected = 2.0 * ELECTRON_CHARGE * i_bias * rd * rd
        assert result.output_density[0] == pytest.approx(expected, rel=0.01)


class TestBJTNoise:
    @pytest.fixture()
    def amp(self):
        """A properly biased CE stage with a 50-ohm source."""
        model = GummelPoonParameters(
            name="QN", IS=4e-17, BF=100.0, RB=100.0, RE=2.0, RC=50.0,
            CJE=40e-15, CJC=30e-15, TF=10e-12,
        )
        ckt = Circuit("ce_noise")
        ckt.add(VoltageSource("VCC", ("vcc", "0"), dc=5.0))
        ckt.add(VoltageSource("VS", ("src", "0"), dc=0.0, ac_mag=1.0))
        ckt.add(Resistor("RS", ("src", "blk"), 50.0))
        ckt.add(Capacitor("CBLK", ("blk", "b"), 1e-6))
        ckt.add(CurrentSource("IBIAS", ("0", "b"), dc=1e-5))
        ckt.add(Resistor("RL", ("vcc", "c"), 1e3))
        ckt.add(BJT("Q1", ("c", "b", "0"), model))
        return ckt

    def test_output_noise_exceeds_load_thermal(self, amp):
        result = solve_noise(amp, "c", [10e6])
        assert result.output_density[0] > KT4 * 1e3

    def test_noise_figure_above_unity(self, amp):
        result = solve_noise(amp, "c", [10e6], input_source="VS")
        nf = result.noise_figure_db("RS")
        assert nf[0] > 0.0
        assert nf[0] < 30.0  # a working amplifier, not a dead one

    def test_collector_shot_noise_present(self, amp):
        result = solve_noise(amp, "c", [10e6])
        top = dict(result.dominant_contributors(10e6, count=8))
        assert "Q1:ic" in top
        assert top["Q1:ic"] > 0.0

    def test_flicker_noise_rises_at_low_frequency(self):
        model = GummelPoonParameters(
            name="QF", IS=4e-17, BF=100.0, RB=100.0, RE=2.0, RC=50.0,
            KF=1e-12, AF=1.0,
        )
        ckt = Circuit("flicker")
        ckt.add(VoltageSource("VCC", ("vcc", "0"), dc=5.0))
        ckt.add(CurrentSource("IBIAS", ("0", "b"), dc=1e-5))
        ckt.add(Resistor("RL", ("vcc", "c"), 1e3))
        ckt.add(BJT("Q1", ("c", "b", "0"), model))
        result = solve_noise(ckt, "c", [10.0, 1e6])
        assert result.output_density[0] > 10 * result.output_density[1]

    def test_input_referred_density(self, amp):
        result = solve_noise(amp, "c", [10e6], input_source="VS")
        referred = result.input_referred_density()
        # input-referred is output noise over gain^2 -> smaller
        assert referred[0] < result.output_density[0]

    def test_integrated_output_noise_positive(self, amp):
        freqs = np.geomspace(1e5, 1e9, 60)
        result = solve_noise(amp, "c", freqs)
        assert result.integrated_output_noise() > 0.0
        assert result.output_rms_density(1e7) > 0.0


class TestValidation:
    def test_requires_frequencies(self):
        ckt = Circuit("v")
        ckt.add(VoltageSource("VS", ("a", "0"), dc=1.0))
        ckt.add(Resistor("R1", ("a", "0"), 1e3))
        with pytest.raises(AnalysisError):
            solve_noise(ckt, "a", [])

    def test_ground_output_rejected(self):
        ckt = Circuit("v")
        ckt.add(VoltageSource("VS", ("a", "0"), dc=1.0))
        ckt.add(Resistor("R1", ("a", "0"), 1e3))
        with pytest.raises(AnalysisError):
            solve_noise(ckt, "0", [1e3])

    def test_noiseless_circuit_rejected(self):
        ckt = Circuit("quiet")
        ckt.add(VoltageSource("VS", ("a", "0"), dc=1.0))
        ckt.add(Capacitor("C1", ("a", "0"), 1e-12))
        with pytest.raises(AnalysisError):
            solve_noise(ckt, "a", [1e3])

    def test_noise_figure_needs_named_contribution(self):
        ckt = Circuit("v")
        ckt.add(VoltageSource("VS", ("a", "0"), dc=1.0, ac_mag=1.0))
        ckt.add(Resistor("R1", ("a", "0"), 1e3))
        result = solve_noise(ckt, "a", [1e3], input_source="VS")
        with pytest.raises(AnalysisError):
            result.noise_figure_db("R_MISSING")

    def test_input_referred_needs_source(self):
        ckt = Circuit("v")
        ckt.add(VoltageSource("VS", ("a", "0"), dc=1.0))
        ckt.add(Resistor("R1", ("a", "0"), 1e3))
        result = solve_noise(ckt, "a", [1e3])
        with pytest.raises(AnalysisError):
            result.input_referred_density()

    def test_nonpositive_resistances_carry_no_noise(self):
        # Regression: 4kT/R on a behavioral negative-R element raised
        # ZeroDivisionError / produced a negative PSD.  They are now
        # excluded from the source enumeration entirely.
        ckt = Circuit("negr")
        ckt.add(VoltageSource("VS", ("in", "0"), dc=0.0))
        ckt.add(Resistor("R1", ("in", "out"), 10e3))
        ckt.add(Resistor("RLOAD", ("out", "0"), 40e3))
        # The constructor rejects R <= 0, so emulate a behavioral
        # negative-R element (the way gyrator-based models present one)
        # by mutating a legal resistor.
        negr = Resistor("RNEG", ("out", "0"), 500e3)
        negr.resistance = -500e3
        ckt.add(negr)
        result = solve_noise(ckt, "out", [1e3])
        assert np.all(np.isfinite(result.output_density))
        assert np.all(result.output_density > 0.0)
        assert "RNEG" not in result.contributions
        assert {"R1", "RLOAD"} <= set(result.contributions)

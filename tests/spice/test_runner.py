"""Deck-runner and CLI tests."""

import pytest

from repro.errors import AnalysisError
from repro.spice import (
    ACResult,
    DeckRun,
    OperatingPointResult,
    TransientResult,
    run_deck,
)
from repro.spice.analysis import DCSweepResult

FULL_DECK = """runner exercise
V1 in 0 DC 5 AC 1
R1 in out 1k
C1 out 0 1n
.OP
.DC V1 0 5 1
.AC DEC 5 1k 10MEG
.TRAN 10u 200u
.END
"""


class TestRunDeck:
    def test_runs_all_cards_in_order(self):
        run = run_deck(FULL_DECK)
        kinds = [type(r) for r in run.results]
        assert kinds == [OperatingPointResult, DCSweepResult, ACResult,
                         TransientResult]

    def test_op_result_correct(self):
        run = run_deck(FULL_DECK)
        op = run.first(OperatingPointResult)
        assert op.voltage("out") == pytest.approx(5.0, rel=1e-6)

    def test_dc_sweep_values(self):
        run = run_deck(FULL_DECK)
        sweep = run.first(DCSweepResult)
        assert list(sweep.sweep_values) == [0, 1, 2, 3, 4, 5]
        assert sweep.voltage("out")[-1] == pytest.approx(5.0, rel=1e-6)

    def test_ac_pole(self):
        run = run_deck(FULL_DECK)
        ac = run.first(ACResult)
        import numpy as np

        # pole at 1/(2*pi*1k*1n) ~ 159 kHz: last point well past it
        mags = np.abs(ac.voltage("out"))
        assert mags[0] == pytest.approx(1.0, rel=1e-3)
        assert mags[-1] < 0.05

    def test_missing_result_kind(self):
        run = run_deck("op only\nV1 a 0 1\nR1 a 0 1k\n.OP\n.END\n")
        with pytest.raises(AnalysisError):
            run.first(ACResult)

    def test_deck_without_analyses_rejected(self):
        with pytest.raises(AnalysisError):
            run_deck("no cards\nV1 a 0 1\nR1 a 0 1k\n.END\n")

    def test_summary_text(self):
        run = run_deck(FULL_DECK)
        text = run.summary()
        assert ".OP" in text
        assert ".AC sweep" in text
        assert ".TRAN" in text
        assert "V(out)" in text


class TestCLI:
    def test_run_command(self, tmp_path, capsys):
        from repro.cli import main

        deck = tmp_path / "test.cir"
        deck.write_text("cli deck\nV1 a 0 2\nR1 a 0 1k\n.OP\n.END\n")
        assert main(["run", str(deck)]) == 0
        out = capsys.readouterr().out
        assert "V(a) = 2" in out

    def test_run_missing_file(self, capsys):
        from repro.cli import main

        assert main(["run", "/nonexistent.cir"]) == 1
        assert "error" in capsys.readouterr().err

    def test_run_bad_deck(self, tmp_path, capsys):
        from repro.cli import main

        deck = tmp_path / "bad.cir"
        deck.write_text("bad\nR1 a 0\n.OP\n.END\n")
        assert main(["run", str(deck)]) == 1

    def test_generate_command(self, capsys):
        from repro.cli import main

        assert main(["generate", "N1.2-12D", "N1.2-6S"]) == 0
        out = capsys.readouterr().out
        assert ".MODEL QN1P2_12D NPN(" in out
        assert ".MODEL QN1P2_6S NPN(" in out

    def test_generate_bad_shape(self, capsys):
        from repro.cli import main

        assert main(["generate", "XYZZY"]) == 1

    def test_shapes_command(self, capsys):
        from repro.cli import main

        assert main(["shapes"]) == 0
        out = capsys.readouterr().out
        assert "N1.2-12D" in out
        assert "XCJC" in out


class TestCLISelect:
    def test_select_command(self, capsys):
        from repro.cli import main

        assert main(["select", "4m"]) == 0
        out = capsys.readouterr().out
        assert "shape selection at Ic = 4.00 mA" in out
        assert out.strip().endswith(tuple(
            ["N1.2-" + s for s in ("6S", "6D", "12D", "24D", "48D")]
        )) or "->" in out

    def test_select_bad_current(self, capsys):
        from repro.cli import main

        assert main(["select", "0"]) == 1
        assert "error" in capsys.readouterr().err


class TestExtendedCards:
    def test_tf_card(self):
        run = run_deck("""tf card
V1 in 0 DC 10
R1 in out 3k
R2 out 0 1k
.TF V(out) V1
.END
""")
        from repro.spice.analysis import TransferFunction

        tf = run.first(TransferFunction)
        assert tf.gain == pytest.approx(0.25, rel=1e-6)
        assert "Rin" in run.summary()

    def test_noise_card(self):
        run = run_deck("""noise card
V1 in 0 DC 0 AC 1
R1 in out 10k
R2 out 0 10k
.NOISE V(out) V1 DEC 5 1k 1MEG
.END
""")
        from repro.spice import NoiseResult

        noise = run.first(NoiseResult)
        # 5k parallel resistance thermal noise
        assert noise.output_density[0] == pytest.approx(
            4 * 1.380649e-23 * 300.15 * 5e3, rel=1e-6
        )
        assert ".NOISE" in run.summary()

    def test_four_card_after_tran(self):
        run = run_deck("""four card
V1 in 0 SIN(0 1 1MEG)
R1 in out 1k
R2 out 0 1k
.TRAN 2n 5u
.FOUR 1MEG V(out)
.END
""")
        from repro.spice import FourierResult

        fourier = run.first(FourierResult)
        assert fourier.amplitude(1) == pytest.approx(0.5, rel=0.01)
        assert "THD" in run.summary()

    def test_four_without_tran_rejected(self):
        with pytest.raises(AnalysisError):
            run_deck("""bad four
V1 in 0 SIN(0 1 1MEG)
R1 in 0 1k
.FOUR 1MEG V(in)
.END
""")

    def test_malformed_cards_rejected(self):
        from repro.errors import ParseError
        from repro.spice import parse_deck

        with pytest.raises(ParseError):
            parse_deck("t\nV1 a 0 1\nR1 a 0 1\n.TF out V1\n.END\n")
        with pytest.raises(ParseError):
            parse_deck("t\nV1 a 0 1\nR1 a 0 1\n.NOISE V(a) V1 DEC 5\n.END\n")
        with pytest.raises(ParseError):
            parse_deck("t\nV1 a 0 1\nR1 a 0 1\n.FOUR V(a)\n.END\n")

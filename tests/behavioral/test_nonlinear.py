"""Tests for the weakly nonlinear blocks against distortion theory."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.behavioral import (
    NonlinearAmplifier,
    Spectrum,
    cubic_response,
    iip3_from_two_tone,
    tone,
    two_tone_test,
)
from repro.errors import AnalysisError


class TestCubicResponse:
    def test_single_tone_textbook_amplitudes(self):
        """y = g x + a3 x^3 on A*cos: fundamental gA + (3/4)a3 A^3,
        third harmonic (1/4) a3 A^3."""
        g1, a3, amplitude = 2.0, -0.1, 0.5
        out = cubic_response(tone(1e6, amplitude), g1, a3)
        assert out.amplitude(1e6) == pytest.approx(
            abs(g1 * amplitude + 0.75 * a3 * amplitude ** 3), rel=1e-9
        )
        assert out.amplitude(3e6) == pytest.approx(
            abs(0.25 * a3 * amplitude ** 3), rel=1e-9
        )

    def test_two_tone_products_present(self):
        out = cubic_response(tone(10e6, 0.1) + tone(11e6, 0.1), 1.0, -1.0)
        for frequency in (9e6, 12e6, 10e6, 11e6, 30e6, 33e6, 31e6, 32e6):
            assert out.amplitude(frequency) > 0.0, frequency

    def test_im3_amplitude(self):
        """Two equal tones A: IM3 at 2f1-f2 has amplitude (3/4)|a3|A^3."""
        a3, amplitude = -0.5, 0.2
        out = cubic_response(
            tone(10e6, amplitude) + tone(11e6, amplitude), 1.0, a3
        )
        assert out.amplitude(9e6) == pytest.approx(
            0.75 * abs(a3) * amplitude ** 3, rel=1e-9
        )

    def test_linear_when_a3_zero(self):
        out = cubic_response(tone(1e6, 1.0) + tone(2e6, 0.5), 3.0, 0.0)
        assert out.amplitude(1e6) == pytest.approx(3.0)
        assert out.amplitude(2e6) == pytest.approx(1.5)
        assert out.amplitude(3e6) == 0.0

    def test_energy_moves_not_appears(self):
        """Compression: the fundamental shrinks as a3 < 0 bites."""
        linear = cubic_response(tone(1e6, 1.0), 1.0, 0.0)
        compressed = cubic_response(tone(1e6, 1.0), 1.0, -0.2)
        assert compressed.amplitude(1e6) < linear.amplitude(1e6)

    def test_tone_count_limit(self):
        signal = Spectrum.silence()
        for k in range(13):
            signal = signal + tone(1e6 * (k + 1), 0.1)
        with pytest.raises(AnalysisError):
            cubic_response(signal, 1.0, -1.0)


class TestNonlinearAmplifier:
    def test_small_signal_gain(self):
        amp = NonlinearAmplifier("a", gain_db=12.0, iip3_dbv=10.0)
        out = amp.process({"in": tone(1e6, 1e-4)})["out"]
        assert out.amplitude(1e6) == pytest.approx(
            1e-4 * 10 ** (12 / 20), rel=1e-4
        )

    def test_infinite_iip3_is_linear(self):
        amp = NonlinearAmplifier("a", gain_db=6.0)
        out = amp.process({"in": tone(1e6, 1.0)})["out"]
        assert out.amplitude(3e6) == 0.0

    def test_compression_at_large_drive(self):
        amp = NonlinearAmplifier("a", gain_db=0.0, iip3_dbv=0.0)
        small = amp.process({"in": tone(1e6, 0.01)})["out"]
        large = amp.process({"in": tone(1e6, 0.5)})["out"]
        gain_small = small.amplitude(1e6) / 0.01
        gain_large = large.amplitude(1e6) / 0.5
        assert gain_large < gain_small


class TestTwoToneTest:
    def test_iip3_recovered(self):
        """The two-tone extraction returns the configured intercept."""
        for iip3 in (-10.0, 0.0, 13.0):
            amp = NonlinearAmplifier("a", gain_db=10.0, iip3_dbv=iip3)
            measured = iip3_from_two_tone(amp, 10e6, 11e6, 1e-3)
            assert measured == pytest.approx(iip3, abs=0.05)

    def test_three_to_one_slope(self):
        """IM3 grows 3 dB per 1 dB of input drive."""
        amp = NonlinearAmplifier("a", gain_db=10.0, iip3_dbv=0.0)
        low = two_tone_test(amp, 10e6, 11e6, 0.001)
        high = two_tone_test(amp, 10e6, 11e6, 0.002)
        im3_growth = 20 * math.log10(high["im3_low"] / low["im3_low"])
        assert im3_growth == pytest.approx(18.06, abs=0.1)  # 3 x 6.02 dB

    def test_symmetric_im3_products(self):
        amp = NonlinearAmplifier("a", gain_db=0.0, iip3_dbv=0.0)
        probe = two_tone_test(amp, 10e6, 11e6, 0.01)
        assert probe["im3_low"] == pytest.approx(probe["im3_high"],
                                                 rel=1e-9)

    def test_im3_dbc_sign(self):
        amp = NonlinearAmplifier("a", gain_db=0.0, iip3_dbv=0.0)
        probe = two_tone_test(amp, 10e6, 11e6, 0.01)
        assert probe["im3_dbc"] < -40.0

    def test_argument_validation(self):
        amp = NonlinearAmplifier("a")
        with pytest.raises(AnalysisError):
            two_tone_test(amp, 11e6, 10e6, 0.01)
        with pytest.raises(AnalysisError):
            two_tone_test(amp, 1e6, 3e6, 0.01)  # 2f1-f2 < 0

    @settings(max_examples=25, deadline=None)
    @given(amplitude=st.floats(min_value=1e-4, max_value=1e-2),
           iip3=st.floats(min_value=-20.0, max_value=20.0))
    def test_iip3_extraction_property(self, amplitude, iip3):
        """Extraction is drive-level independent in the weak regime."""
        amp = NonlinearAmplifier("a", gain_db=5.0, iip3_dbv=iip3)
        measured = iip3_from_two_tone(amp, 10e6, 11e6, amplitude)
        assert measured == pytest.approx(iip3, abs=0.2)

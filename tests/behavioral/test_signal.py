"""Tests for the phasor-domain Spectrum type."""

import cmath
import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.behavioral import Spectrum, tone
from repro.errors import AnalysisError

amplitudes = st.floats(min_value=1e-6, max_value=1e3)
phases = st.floats(min_value=-180.0, max_value=180.0)
frequencies = st.sampled_from([1e6, 45e6, 100e6, 1.21e9, 1.255e9, 1.3e9])


class TestConstruction:
    def test_tone(self):
        s = Spectrum.tone(45e6, 2.0, 30.0)
        assert s.amplitude(45e6) == pytest.approx(2.0)
        assert s.phase_deg(45e6) == pytest.approx(30.0)
        assert s.amplitude(46e6) == 0.0

    def test_silence(self):
        s = Spectrum.silence()
        assert not s
        assert len(s) == 0
        assert s.total_power() == 0.0

    def test_rejects_negative_frequency(self):
        with pytest.raises(AnalysisError):
            Spectrum.tone(-1e6)

    def test_module_level_alias(self):
        assert tone(1e6).amplitude(1e6) == 1.0


class TestInspection:
    def test_frequencies_sorted(self):
        s = tone(3e6) + tone(1e6) + tone(2e6)
        assert s.frequencies() == [1e6, 2e6, 3e6]

    def test_dominant(self):
        s = tone(1e6, 0.5) + tone(2e6, 3.0)
        freq, phasor = s.dominant()
        assert freq == 2e6
        assert abs(phasor) == pytest.approx(3.0)

    def test_dominant_of_silence_raises(self):
        with pytest.raises(AnalysisError):
            Spectrum.silence().dominant()

    def test_power(self):
        s = tone(1e6, 2.0)
        assert s.power(1e6) == pytest.approx(2.0)  # A^2/2
        assert s.total_power() == pytest.approx(2.0)


class TestLinearOps:
    def test_addition_merges_tones(self):
        s = tone(1e6, 1.0) + tone(2e6, 2.0)
        assert len(s) == 2

    def test_addition_coherent(self):
        s = tone(1e6, 1.0, 0.0) + tone(1e6, 1.0, 0.0)
        assert s.amplitude(1e6) == pytest.approx(2.0)

    def test_addition_cancels_out_of_phase(self):
        s = tone(1e6, 1.0, 0.0) + tone(1e6, 1.0, 180.0)
        assert s.amplitude(1e6) == pytest.approx(0.0, abs=1e-12)

    def test_subtraction(self):
        s = tone(1e6, 3.0) - tone(1e6, 1.0)
        assert s.amplitude(1e6) == pytest.approx(2.0)

    def test_scalar_multiplication(self):
        s = 2.0 * tone(1e6, 1.0)
        assert s.amplitude(1e6) == pytest.approx(2.0)
        s2 = tone(1e6, 1.0) * 0.5
        assert s2.amplitude(1e6) == pytest.approx(0.5)

    def test_gain_db(self):
        s = tone(1e6, 1.0).gained_db(20.0)
        assert s.amplitude(1e6) == pytest.approx(10.0)

    def test_phase_shift(self):
        s = tone(1e6, 1.0, 10.0).phase_shifted(35.0)
        assert s.phase_deg(1e6) == pytest.approx(45.0)

    @settings(max_examples=50, deadline=None)
    @given(a1=amplitudes, a2=amplitudes, p1=phases, p2=phases,
           f=frequencies, scale=st.floats(min_value=-5, max_value=5))
    def test_linearity_property(self, a1, a2, p1, p2, f, scale):
        """scale*(x+y) == scale*x + scale*y on phasors."""
        x = tone(f, a1, p1)
        y = tone(f, a2, p2)
        lhs = (x + y).scaled(scale)
        rhs = x.scaled(scale) + y.scaled(scale)
        assert lhs.phasor(f) == pytest.approx(rhs.phasor(f), rel=1e-9,
                                              abs=1e-12)


class TestMixing:
    def test_sum_and_difference_tones(self):
        s = tone(100e6, 1.0).mixed(80e6)
        assert set(s.frequencies()) == {20e6, 180e6}
        assert s.amplitude(20e6) == pytest.approx(0.5)
        assert s.amplitude(180e6) == pytest.approx(0.5)

    def test_downconversion_amplitude(self):
        s = tone(1.3e9, 2.0).mixed(1.255e9)
        assert s.amplitude(45e6) == pytest.approx(1.0)

    def test_conversion_gain(self):
        s = tone(100e6, 1.0).mixed(80e6, conversion_gain=2.0)
        assert s.amplitude(20e6) == pytest.approx(1.0)

    def test_lo_phase_transfers_to_sum(self):
        s = tone(100e6, 1.0, 0.0).mixed(80e6, lo_phase_deg=30.0)
        assert s.phase_deg(180e6) == pytest.approx(30.0)

    def test_high_side_signal_keeps_phase_sense(self):
        """f > f_lo: difference tone phase = signal - LO phase."""
        s = tone(100e6, 1.0, 50.0).mixed(80e6, lo_phase_deg=30.0)
        assert s.phase_deg(20e6) == pytest.approx(20.0)

    def test_low_side_signal_conjugates(self):
        """f < f_lo: the fold-over conjugates the signal phase — the
        physics behind image rejection."""
        s = tone(60e6, 1.0, 50.0).mixed(80e6, lo_phase_deg=30.0)
        assert s.phase_deg(20e6) == pytest.approx(-50.0 + 30.0)

    def test_lo_frequency_tone_becomes_dc(self):
        s = tone(80e6, 1.0).mixed(80e6)
        assert 0.0 in s.frequencies()

    def test_quadrature_cancellation_exact(self):
        """A perfect Hartley chain nulls the image completely."""
        image = tone(1.21e9, 1.0)
        i_path = image.mixed(1.255e9)
        q_path = image.mixed(1.255e9, lo_phase_deg=90.0).phase_shifted(90.0)
        combined = i_path + q_path
        assert combined.amplitude(45e6) == pytest.approx(0.0, abs=1e-12)

    def test_quadrature_addition_for_wanted(self):
        wanted = tone(1.3e9, 1.0)
        i_path = wanted.mixed(1.255e9)
        q_path = wanted.mixed(1.255e9, lo_phase_deg=90.0).phase_shifted(90.0)
        combined = i_path + q_path
        assert combined.amplitude(45e6) == pytest.approx(1.0)


class TestFiltering:
    def test_filter_applies_complex_response(self):
        s = (tone(1e6, 1.0) + tone(2e6, 1.0)).filtered(
            lambda f: 0.5j if f == 1e6 else 0.0
        )
        assert s.amplitude(1e6) == pytest.approx(0.5)
        assert s.phase_deg(1e6) == pytest.approx(90.0)
        assert s.amplitude(2e6) == 0.0

    def test_cleanup_drops_negligible(self):
        s = tone(1e6, 1.0).scaled(1e-30)
        assert len(s) == 0

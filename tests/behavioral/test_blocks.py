"""Tests for the behavioral block library."""

import math

import pytest

from repro.behavioral import (
    Adder,
    Amplifier,
    BandpassFilter,
    LowpassFilter,
    Mixer,
    PhaseShifter,
    QuadratureLO,
    Splitter,
    Spectrum,
    butterworth_response,
    lowpass_response,
    tone,
)
from repro.errors import AnalysisError


class TestAmplifier:
    def test_gain_db(self):
        amp = Amplifier("a", gain_db=20.0)
        out = amp.process({"in": tone(1e6, 0.1)})["out"]
        assert out.amplitude(1e6) == pytest.approx(1.0)

    def test_gain_error(self):
        amp = Amplifier("a", gain_db=0.0, gain_error=0.05)
        out = amp.process({"in": tone(1e6, 1.0)})["out"]
        assert out.amplitude(1e6) == pytest.approx(1.05)

    def test_phase(self):
        amp = Amplifier("a", phase_deg=45.0)
        out = amp.process({"in": tone(1e6, 1.0)})["out"]
        assert out.phase_deg(1e6) == pytest.approx(45.0)

    def test_missing_input_is_silence(self):
        amp = Amplifier("a", gain_db=10.0)
        assert not amp.process({})["out"]


class TestPhaseShifter:
    def test_shift_plus_error(self):
        shifter = PhaseShifter("p", shift_deg=90.0, phase_error_deg=2.0)
        out = shifter.process({"in": tone(1e6, 1.0)})["out"]
        assert out.phase_deg(1e6) == pytest.approx(92.0)

    def test_gain_error(self):
        shifter = PhaseShifter("p", gain_error=0.03)
        out = shifter.process({"in": tone(1e6, 1.0)})["out"]
        assert out.amplitude(1e6) == pytest.approx(1.03)


class TestMixer:
    def test_conversion(self):
        mixer = Mixer("m", lo_frequency=80e6, conversion_gain_db=6.0)
        out = mixer.process({"in": tone(100e6, 1.0)})["out"]
        # 6 dB makes up for the 1/2 multiplication loss
        assert out.amplitude(20e6) == pytest.approx(1.0, rel=0.01)

    def test_rejects_bad_lo(self):
        with pytest.raises(AnalysisError):
            Mixer("m", lo_frequency=0.0)


class TestAdderSplitter:
    def test_adder_sums(self):
        adder = Adder("s", 3)
        out = adder.process({
            "in0": tone(1e6, 1.0),
            "in1": tone(1e6, 2.0),
            "in2": tone(2e6, 1.0),
        })["out"]
        assert out.amplitude(1e6) == pytest.approx(3.0)
        assert out.amplitude(2e6) == pytest.approx(1.0)

    def test_adder_needs_two(self):
        with pytest.raises(AnalysisError):
            Adder("s", 1)

    def test_splitter_copies(self):
        splitter = Splitter("sp", 2, loss_db=6.0)
        outs = splitter.process({"in": tone(1e6, 2.0)})
        assert outs["out0"].amplitude(1e6) == pytest.approx(1.0, rel=0.01)
        assert outs["out1"].amplitude(1e6) == pytest.approx(1.0, rel=0.01)


class TestFilters:
    def test_bandpass_passband_unity(self):
        response = butterworth_response(1.3e9, 60e6, 3)
        assert abs(response(1.3e9)) == pytest.approx(1.0)

    def test_bandpass_edges_3db(self):
        response = butterworth_response(1.3e9, 60e6, 3)
        for edge in (1.3e9 - 30e6, 1.3e9 + 30e6):
            assert abs(response(edge)) == pytest.approx(1 / math.sqrt(2),
                                                        rel=0.02)

    def test_bandpass_rejection_scales_with_order(self):
        f_probe = 1.21e9
        weak = abs(butterworth_response(1.3e9, 60e6, 1)(f_probe))
        strong = abs(butterworth_response(1.3e9, 60e6, 5)(f_probe))
        assert strong < weak / 50

    def test_bandpass_blocks_dc(self):
        response = butterworth_response(1.3e9, 60e6, 3)
        assert response(0.0) == 0.0

    def test_lowpass_cutoff(self):
        response = lowpass_response(70e6, 3)
        assert abs(response(0.0)) == pytest.approx(1.0)
        assert abs(response(70e6)) == pytest.approx(1 / math.sqrt(2),
                                                    rel=0.01)
        assert abs(response(700e6)) < 1.1e-3

    def test_filter_blocks(self):
        bpf = BandpassFilter("b", 1.3e9, 60e6)
        out = bpf.process({"in": tone(1.3e9, 1.0) + tone(45e6, 1.0)})["out"]
        assert out.amplitude(1.3e9) == pytest.approx(1.0)
        assert out.amplitude(45e6) < 1e-3

        lpf = LowpassFilter("l", 70e6)
        out = lpf.process({"in": tone(45e6, 1.0) + tone(1.3e9, 1.0)})["out"]
        assert out.amplitude(45e6) == pytest.approx(1.0, rel=0.1)
        assert out.amplitude(1.3e9) < 1e-3

    def test_rejects_bad_parameters(self):
        with pytest.raises(AnalysisError):
            butterworth_response(0.0, 1e6)
        with pytest.raises(AnalysisError):
            lowpass_response(1e6, 0)


class TestQuadratureLO:
    def test_quadrature_outputs(self):
        lo = QuadratureLO("vco", 1.255e9, phase_error_deg=1.5)
        outs = lo.process({})
        assert outs["i"].phase_deg(1.255e9) == pytest.approx(0.0)
        assert outs["q"].phase_deg(1.255e9) == pytest.approx(91.5)

    def test_rejects_bad_frequency(self):
        with pytest.raises(AnalysisError):
            QuadratureLO("vco", -1.0)

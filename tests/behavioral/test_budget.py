"""Tests for the RF cascade budget analysis."""

import math

import pytest

from repro.behavioral import (
    CascadeStage,
    cascade,
    sensitivity_dbm,
    spurious_free_dynamic_range_db,
)
from repro.errors import DesignError


class TestCascade:
    def test_single_stage_passthrough(self):
        report = cascade([CascadeStage("lna", gain_db=15.0, nf_db=2.0,
                                       iip3_dbm=-5.0)])
        assert report.gain_db == pytest.approx(15.0)
        assert report.nf_db == pytest.approx(2.0)
        assert report.iip3_dbm == pytest.approx(-5.0)

    def test_friis_two_stages(self):
        """Classic check: NF = F1 + (F2-1)/G1."""
        report = cascade([
            CascadeStage("lna", gain_db=10.0, nf_db=3.0),
            CascadeStage("mixer", gain_db=0.0, nf_db=10.0),
        ])
        f1 = 10 ** 0.3
        f2 = 10 ** 1.0
        expected = 10 * math.log10(f1 + (f2 - 1) / 10.0)
        assert report.nf_db == pytest.approx(expected, rel=1e-9)

    def test_front_gain_masks_later_noise(self):
        noisy_back = CascadeStage("if", gain_db=20.0, nf_db=15.0)
        low_gain = cascade([CascadeStage("lna", 5.0, 2.0), noisy_back])
        high_gain = cascade([CascadeStage("lna", 20.0, 2.0), noisy_back])
        assert high_gain.nf_db < low_gain.nf_db

    def test_gains_add_in_db(self):
        report = cascade([
            CascadeStage("a", gain_db=12.0),
            CascadeStage("b", gain_db=-6.0),
            CascadeStage("c", gain_db=4.0),
        ])
        assert report.gain_db == pytest.approx(10.0, rel=1e-9)

    def test_iip3_dominated_by_back_end(self):
        """Gain ahead of a nonlinear stage degrades system IIP3."""
        back = CascadeStage("pa", gain_db=0.0, iip3_dbm=10.0)
        report = cascade([CascadeStage("lna", gain_db=20.0,
                                       iip3_dbm=math.inf), back])
        assert report.iip3_dbm == pytest.approx(10.0 - 20.0, rel=1e-6)

    def test_infinite_iip3_everywhere(self):
        report = cascade([CascadeStage("a", 10.0)])
        assert math.isinf(report.iip3_dbm)

    def test_empty_cascade_rejected(self):
        with pytest.raises(DesignError):
            cascade([])

    def test_stage_names_recorded(self):
        report = cascade([CascadeStage("a", 1.0), CascadeStage("b", 2.0)])
        assert report.stage_names == ("a", "b")

    def test_negative_nf_rejected(self):
        with pytest.raises(DesignError):
            CascadeStage("x", 0.0, nf_db=-1.0)


class TestDerivedFigures:
    def test_sensitivity(self):
        # NF 6 dB, 6 MHz channel (analog TV), 15 dB required SNR
        value = sensitivity_dbm(6.0, 6e6, 15.0)
        assert value == pytest.approx(-174 + 6 + 10 * math.log10(6e6) + 15)

    def test_sensitivity_rejects_bad_bandwidth(self):
        with pytest.raises(DesignError):
            sensitivity_dbm(6.0, 0.0)

    def test_sfdr(self):
        assert spurious_free_dynamic_range_db(0.0, -100.0) == pytest.approx(
            2 / 3 * 100.0
        )


class TestChainReport:
    def test_stages_from_annotated_blocks(self):
        from repro.behavioral import Amplifier, Mixer, chain_report

        blocks = [
            Amplifier("lna", gain_db=15.0, nf_db=3.0, iip3_dbm=-5.0),
            Mixer("mix", 1e9, conversion_gain_db=6.0, nf_db=10.0,
                  iip3_dbm=8.0),
            Amplifier("if_amp", gain_db=20.0, nf_db=8.0),
        ]
        report = chain_report(blocks)
        assert report.stage_names == ("lna", "mix", "if_amp")
        # mixer net gain = conversion_gain_db - 6
        assert report.gain_db == pytest.approx(15.0 + 0.0 + 20.0)
        assert report.nf_db > 3.0  # Friis adds the later stages

    def test_stage_from_block_defaults(self):
        from repro.behavioral import PhaseShifter, stage_from_block

        shifter = PhaseShifter("p")
        shifter.gain_db = 0.0  # annotate manually
        stage = stage_from_block(shifter)
        assert stage.nf_db == 0.0
        assert math.isinf(stage.iip3_dbm)

    def test_unannotated_block_rejected(self):
        from repro.behavioral import Adder, stage_from_block
        from repro.errors import DesignError

        with pytest.raises(DesignError):
            stage_from_block(Adder("sum", 2))

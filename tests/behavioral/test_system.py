"""Tests for the block-graph system model."""

import pytest

from repro.behavioral import (
    Adder,
    Amplifier,
    Mixer,
    Splitter,
    Spectrum,
    SystemModel,
    tone,
)
from repro.errors import DesignError


def amp(name, gain_db):
    return Amplifier(name, gain_db=gain_db)


class TestWiring:
    def test_chain(self):
        system = SystemModel("chain")
        system.chain([amp("a1", 10.0), amp("a2", 10.0)], ["in", "mid", "out"])
        nets = system.run({"in": tone(1e6, 0.1)})
        assert nets["out"].amplitude(1e6) == pytest.approx(1.0)

    def test_chain_net_count_mismatch(self):
        system = SystemModel("bad")
        with pytest.raises(DesignError):
            system.chain([amp("a1", 0.0)], ["a", "b", "c"])

    def test_chain_rejects_multi_port_blocks(self):
        # A chain would silently leave an Adder's second input floating;
        # it must be rejected up front instead.
        system = SystemModel("bad")
        with pytest.raises(DesignError, match="single-in/single-out"):
            system.chain([Adder("sum", 2)], ["a", "b"])

    def test_chain_repeated_net_is_a_feedback_loop(self):
        system = SystemModel("bad")
        system.chain([amp("a1", 0.0), amp("a2", 0.0)], ["x", "x", "y"])
        with pytest.raises(DesignError, match="feedback"):
            system.run({})

    def test_port_map_wiring(self):
        system = SystemModel("map")
        system.add(Adder("sum", 2), inputs={"in0": "x", "in1": "y"},
                   outputs={"out": "z"})
        nets = system.run({"x": tone(1e6, 1.0), "y": tone(1e6, 2.0)})
        assert nets["z"].amplitude(1e6) == pytest.approx(3.0)

    def test_duplicate_block_name(self):
        system = SystemModel("dup")
        system.add(amp("a", 0.0), inputs=["x"], outputs=["y"])
        with pytest.raises(DesignError):
            system.add(amp("a", 0.0), inputs=["y"], outputs=["z"])

    def test_unknown_port_rejected(self):
        system = SystemModel("bad_port")
        with pytest.raises(DesignError):
            system.add(amp("a", 0.0), inputs={"nope": "x"}, outputs=["y"])

    def test_too_many_nets_rejected(self):
        system = SystemModel("too_many")
        with pytest.raises(DesignError):
            system.add(amp("a", 0.0), inputs=["x", "y"], outputs=["z"])

    def test_block_lookup(self):
        system = SystemModel("lookup")
        block = system.add(amp("a", 0.0), inputs=["x"], outputs=["y"])
        assert system.block("a") is block
        with pytest.raises(DesignError):
            system.block("b")
        assert system.nets() == {"x", "y"}


class TestEvaluation:
    def test_out_of_order_definition(self):
        """Blocks can be added in any order; evaluation is topological."""
        system = SystemModel("ooo")
        system.add(amp("late", 20.0), inputs=["mid"], outputs=["out"])
        system.add(amp("early", 20.0), inputs=["in"], outputs=["mid"])
        nets = system.run({"in": tone(1e6, 0.01)})
        assert nets["out"].amplitude(1e6) == pytest.approx(1.0)

    def test_fanout_and_recombine(self):
        system = SystemModel("fan")
        system.add(Splitter("split", 2), inputs=["in"], outputs=["a", "b"])
        system.add(amp("ga", 6.0), inputs=["a"], outputs=["a2"])
        system.add(amp("gb", 6.0), inputs=["b"], outputs=["b2"])
        system.add(Adder("sum", 2), inputs={"in0": "a2", "in1": "b2"},
                   outputs=["out"])
        nets = system.run({"in": tone(1e6, 1.0)})
        assert nets["out"].amplitude(1e6) == pytest.approx(
            2 * 10 ** (6 / 20), rel=1e-6
        )

    def test_feedback_rejected(self):
        system = SystemModel("loop")
        system.add(amp("a", 1.0), inputs=["x"], outputs=["y"])
        system.add(amp("b", 1.0), inputs=["y"], outputs=["x"])
        with pytest.raises(DesignError):
            system.run({})

    def test_self_loop_rejected(self):
        system = SystemModel("self")
        system.add(amp("a", 1.0), inputs=["x"], outputs=["x"])
        with pytest.raises(DesignError, match="feedback loop.*'a'"):
            system.run({})

    def test_three_block_cycle_rejected_and_named(self):
        system = SystemModel("ring")
        system.add(amp("a", 1.0), inputs=["x"], outputs=["y"])
        system.add(amp("b", 1.0), inputs=["y"], outputs=["z"])
        system.add(amp("c", 1.0), inputs=["z"], outputs=["x"])
        with pytest.raises(DesignError, match="feedback loop"):
            system.run({})

    def test_cycle_detected_even_with_healthy_blocks_present(self):
        # A disjoint feed-forward pair must not mask the cycle.
        system = SystemModel("mixed")
        system.add(amp("ok1", 0.0), inputs=["in"], outputs=["mid"])
        system.add(amp("ok2", 0.0), inputs=["mid"], outputs=["out"])
        system.add(amp("la", 1.0), inputs=["p"], outputs=["q"])
        system.add(amp("lb", 1.0), inputs=["q"], outputs=["p"])
        with pytest.raises(DesignError, match="feedback"):
            system.run({"in": tone(1e6)})

    def test_double_driver_rejected(self):
        system = SystemModel("dd")
        system.add(amp("a", 0.0), inputs=["in"], outputs=["out"])
        system.add(amp("b", 0.0), inputs=["in"], outputs=["out"])
        with pytest.raises(DesignError):
            system.run({"in": tone(1e6)})

    def test_stimulus_on_driven_net_rejected(self):
        system = SystemModel("sd")
        system.add(amp("a", 0.0), inputs=["in"], outputs=["out"])
        with pytest.raises(DesignError):
            system.run({"in": tone(1e6), "out": tone(1e6)})

    def test_unconnected_input_sees_silence(self):
        system = SystemModel("float")
        system.add(amp("a", 10.0), inputs=["in"], outputs=["out"])
        nets = system.run({})
        assert not nets["out"]

    def test_all_nets_reported(self):
        system = SystemModel("report")
        system.add(Mixer("m", 80e6), inputs=["rf"], outputs=["if"])
        nets = system.run({"rf": tone(100e6, 1.0)})
        assert "rf" in nets and "if" in nets


class TestAsBlock:
    def test_subsystem_composes(self):
        from repro.behavioral import Mixer, PhaseShifter, Adder, Splitter

        inner = SystemModel("ir_core")
        inner.add(Splitter("split", 2), inputs=["in"],
                  outputs=["i", "q"])
        inner.add(Mixer("mi", 1.255e9), inputs=["i"], outputs=["im"])
        inner.add(Mixer("mq", 1.255e9, lo_phase_deg=90.0),
                  inputs=["q"], outputs=["qm"])
        inner.add(PhaseShifter("sh", shift_deg=90.0),
                  inputs=["qm"], outputs=["qs"])
        inner.add(Adder("sum", 2), inputs={"in0": "im", "in1": "qs"},
                  outputs=["out"])
        block = inner.as_block("ir_mixer", inputs={"IF1": "in"},
                               outputs={"IF2": "out"})

        outer = SystemModel("tuner")
        outer.add(amp("pre", 6.0), inputs=["rf"], outputs=["if1"])
        outer.add(block, inputs={"IF1": "if1"}, outputs={"IF2": "if2"})
        nets = outer.run({"rf": tone(1.3e9, 1.0)})
        # wanted signal converts; image rejected by the inner subsystem
        assert nets["if2"].amplitude(45e6) > 0.5
        image = outer.run({"rf": tone(1.21e9, 1.0)})["if2"]
        assert image.amplitude(45e6) < 1e-9

    def test_unknown_output_net_rejected(self):
        from repro.errors import DesignError

        inner = SystemModel("inner")
        inner.add(amp("a", 0.0), inputs=["x"], outputs=["y"])
        with pytest.raises(DesignError):
            inner.as_block("b", inputs={"IN": "x"},
                           outputs={"OUT": "nope"})

    def test_needs_outputs(self):
        from repro.errors import DesignError

        inner = SystemModel("inner")
        inner.add(amp("a", 0.0), inputs=["x"], outputs=["y"])
        with pytest.raises(DesignError):
            inner.as_block("b", inputs={"IN": "x"}, outputs={})

    def test_input_on_driven_net_rejected(self):
        # Mapping a block input onto an internally driven net would
        # clash with the driver on every run; reject at build time.
        inner = SystemModel("inner")
        inner.add(amp("a", 0.0), inputs=["x"], outputs=["y"])
        with pytest.raises(DesignError, match="driven by a block"):
            inner.as_block("b", inputs={"IN": "y"}, outputs={"OUT": "y"})

    def test_unconnected_input_port_is_silence(self):
        inner = SystemModel("inner")
        inner.add(amp("a", 6.0), inputs=["x"], outputs=["y"])
        block = inner.as_block("b", inputs={"IN": "x"},
                               outputs={"OUT": "y"})
        assert not block.process({})["OUT"]

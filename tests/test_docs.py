"""Documentation consistency: DESIGN.md's module map and bench index must
reference things that actually exist."""

import importlib
import re
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent
DESIGN = (ROOT / "DESIGN.md").read_text()
README = (ROOT / "README.md").read_text()
EXPERIMENTS = (ROOT / "EXPERIMENTS.md").read_text()


def _module_references(text: str) -> set[str]:
    return set(re.findall(r"`(repro(?:\.[a-z_0-9]+)+)`", text))


class TestDesignDoc:
    @pytest.mark.parametrize("module_name",
                             sorted(_module_references(DESIGN)))
    def test_referenced_modules_import(self, module_name):
        importlib.import_module(module_name)

    def test_bench_files_exist(self):
        for match in re.findall(r"benchmarks/(bench_\w+\.py)", DESIGN):
            assert (ROOT / "benchmarks" / match).exists(), match

    def test_example_files_exist(self):
        for match in re.findall(r"examples/(\w+\.py)", DESIGN):
            assert (ROOT / "examples" / match).exists(), match

    def test_identity_check_present(self):
        assert "Paper identity check" in DESIGN

    def test_substitution_table_present(self):
        assert "Substitutions" in DESIGN
        # every substituted dependency names what replaced it
        for substitute in ("repro.ahdl", "repro.spice",
                           "repro.measurement", "repro.celldb"):
            assert substitute in DESIGN


class TestReadme:
    def test_example_scripts_exist(self):
        for match in re.findall(r"examples/(\w+\.py)", README):
            assert (ROOT / "examples" / match).exists(), match

    def test_doc_files_exist(self):
        for match in re.findall(r"docs/(\w+\.md)", README):
            assert (ROOT / "docs" / match).exists(), match

    def test_cli_commands_real(self):
        from repro.cli import build_parser

        parser = build_parser()
        commands = set(
            parser._subparsers._group_actions[0].choices  # noqa: SLF001
        )
        for command in re.findall(r"python -m repro\.cli (\w+)", README):
            assert command in commands, command


class TestExperimentsDoc:
    def test_every_bench_file_is_mentioned(self):
        """EXPERIMENTS.md must index every benchmark in the harness."""
        bench_files = sorted(
            p.stem for p in (ROOT / "benchmarks").glob("bench_*.py")
        )
        for stem in bench_files:
            assert stem in EXPERIMENTS or stem.replace("bench_", "") in (
                EXPERIMENTS
            ), f"{stem} missing from EXPERIMENTS.md"

    def test_regeneration_command_present(self):
        assert "--benchmark-only" in EXPERIMENTS

"""Fault tolerance: injected failures must not kill a sweep.

Covers the ``on_error`` policies under every executor, retry semantics
(including the ``attempt=`` escalation protocol and retry exhaustion),
:class:`FailedPoint` picklability, partial-result caching, and the
200-point Monte-Carlo acceptance scenario.
"""

import pickle

import numpy as np
import pytest

from repro.errors import AnalysisError, ConvergenceError, ConvergenceReport
from repro.spice.engine import GLOBAL_STATS
from repro.sweep import (
    FailedPoint,
    MonteCarloSampler,
    ResultCache,
    run_sweep,
)

EXECUTORS = ("serial", "thread", "process")


def _report(stage="newton"):
    return ConvergenceReport(stage=stage, iterations=13, residual=4.2e3,
                             worst_index=1, worst_name="V(out)")


# Module-level evaluation functions (the process executor pickles them).

def _clean(params):
    return params["x"] * 1.5


def _flaky(params):
    # Deterministic injected failure: same points fail on every run,
    # whatever the executor or chunking.
    if params["x"] % 13 == 5:
        raise ConvergenceError(f"injected at x={params['x']}",
                               report=_report())
    return params["x"] * 1.5


def _flaky_type_error(params):
    if params["x"] == 3:
        raise ValueError("not a convergence failure")
    return params["x"]


def _heals_on_attempt(params, attempt=0):
    # The escalation protocol: fails until the sweep engine retries with
    # a high enough ``attempt``, the way solve_dc(attempt=) relaxes its
    # gmin ladder.
    if params["x"] % 4 == 0 and attempt < 2:
        raise ConvergenceError(f"needs attempt>=2, got {attempt}",
                               report=_report())
    return params["x"] + 0.5


def _never_heals(params):
    if params["x"] % 4 == 0:
        raise ConvergenceError("hopeless", report=_report())
    return params["x"] + 0.5


def _mc_clean(params, rng):
    return float(rng.standard_normal())


def _mc_flaky(params, rng):
    # ~5% injected failure rate: the draw is a deterministic function of
    # the point's seed, so the failing subset is fixed per (seed, index).
    value = float(rng.standard_normal())
    if value > 1.9:
        raise ConvergenceError(f"injected at draw {value:.3f}",
                               report=_report())
    return value


POINTS = [{"x": i} for i in range(40)]
FAIL_XS = [x for x in range(40) if x % 13 == 5]


class TestPolicies:
    @pytest.mark.parametrize("executor", EXECUTORS)
    def test_raise_aborts(self, executor):
        with pytest.raises(ConvergenceError):
            run_sweep(_flaky, POINTS, executor=executor, jobs=2)

    @pytest.mark.parametrize("executor", EXECUTORS)
    def test_skip_keeps_the_rest(self, executor):
        clean = run_sweep(_clean, POINTS)  # serial reference
        result = run_sweep(_flaky, POINTS, executor=executor, jobs=2,
                           on_error="skip")
        assert result.failed_indices() == FAIL_XS
        assert not result.ok
        assert result.stats.failures == len(FAIL_XS)
        assert result.stats.on_error == "skip"
        for i, value in enumerate(result.values):
            if i in FAIL_XS:
                assert value is None
            else:
                assert value == clean.values[i]

    def test_bad_policy_rejected(self):
        with pytest.raises(AnalysisError):
            run_sweep(_clean, POINTS, on_error="ignore")
        with pytest.raises(AnalysisError):
            run_sweep(_clean, POINTS, on_error="retry", retries=-1)

    def test_failure_records_carry_forensics(self):
        result = run_sweep(_flaky, POINTS, on_error="skip")
        for failure in result.failures:
            assert failure.error_type == "ConvergenceError"
            assert f"x={failure.params['x']}" in failure.error
            assert failure.report is not None
            assert failure.report.stage == "newton"
            assert failure.report.iterations == 13
            assert failure.report.worst_name == "V(out)"
            assert "V(out)" in failure.summary()
        summary = result.failure_summary()
        assert f"{len(FAIL_XS)} of {len(POINTS)}" in summary

    def test_value_array_refuses_silent_none(self):
        result = run_sweep(_flaky, POINTS, on_error="skip")
        with pytest.raises(AnalysisError):
            result.value_array()
        kept = result.value_array(skip_failed=True)
        assert len(kept) == len(POINTS) - len(FAIL_XS)
        xs = result.param_array("x", skip_failed=True)
        np.testing.assert_array_equal(kept, xs * 1.5)

    def test_non_convergence_errors_skip_without_retry(self):
        result = run_sweep(_flaky_type_error, [{"x": i} for i in range(6)],
                           on_error="retry", retries=3)
        assert result.failed_indices() == [3]
        failure = result.failures[0]
        assert failure.error_type == "ValueError"
        assert failure.attempts == 1  # deterministic errors are not retried
        assert result.stats.retries == 0

    def test_global_stats_mirror(self):
        before = GLOBAL_STATS.sweep_failures
        run_sweep(_flaky, POINTS, on_error="skip")
        assert GLOBAL_STATS.sweep_failures == before + len(FAIL_XS)


class TestRetries:
    @pytest.mark.parametrize("executor", EXECUTORS)
    def test_retry_heals_with_attempt_escalation(self, executor):
        result = run_sweep(_heals_on_attempt, POINTS, executor=executor,
                           jobs=2, on_error="retry", retries=2)
        assert result.ok
        assert result.values == [x + 0.5 for x in range(40)]
        # Every x % 4 == 0 point burned exactly two retries (attempts 1, 2).
        assert result.stats.retries == 2 * len(range(0, 40, 4))

    def test_retry_exhaustion_accounting(self):
        result = run_sweep(_never_heals, POINTS, on_error="retry", retries=2)
        flaky = list(range(0, 40, 4))
        assert result.failed_indices() == flaky
        for failure in result.failures:
            assert failure.attempts == 3  # 1 initial + 2 retries
            assert "3 attempts" in failure.summary()
        assert result.stats.retries == 2 * len(flaky)
        assert result.stats.failures == len(flaky)

    def test_insufficient_retries_still_fail(self):
        result = run_sweep(_heals_on_attempt, POINTS, on_error="retry",
                           retries=1)
        assert result.failed_indices() == list(range(0, 40, 4))
        assert all(f.attempts == 2 for f in result.failures)

    def test_functions_without_attempt_kwarg_still_retry(self):
        # _never_heals declares no ``attempt``: retries re-run it as-is.
        result = run_sweep(_never_heals, [{"x": 4}], on_error="retry",
                           retries=1)
        assert result.failures[0].attempts == 2


class TestPicklability:
    def test_failed_point_roundtrips(self):
        result = run_sweep(_flaky, POINTS, on_error="skip")
        for failure in result.failures:
            clone = pickle.loads(pickle.dumps(failure))
            assert clone == failure
            assert clone.report.summary() == failure.report.summary()

    def test_convergence_error_keeps_report_through_pickle(self):
        error = ConvergenceError("boom", report=_report("gmin_stepping"))
        clone = pickle.loads(pickle.dumps(error))
        assert str(clone) == "boom"
        assert clone.report.stage == "gmin_stepping"
        assert clone.report.worst_name == "V(out)"


class TestMonteCarloAcceptance:
    """The ISSUE acceptance scenario: a 200-point Monte Carlo with ~5%
    injected convergence failures must complete under the process
    executor, match a clean serial run bit for bit on the survivors,
    record full forensics, and cache every successful point."""

    def test_200_point_fault_tolerant_monte_carlo(self):
        # One sampler per run: SeedSequence.spawn advances the parent, so
        # a reused sampler object would hand out different child seeds.
        def sampler():
            return MonteCarloSampler(200, seed=1996)

        clean = run_sweep(_mc_clean, sampler(), executor="serial")
        expected_failures = [i for i, v in enumerate(clean.values)
                             if v > 1.9]
        assert 1 <= len(expected_failures) <= 10  # ~5% of 200

        cache = ResultCache()
        result = run_sweep(_mc_flaky, sampler(), executor="process", jobs=4,
                           on_error="skip", cache=cache)
        assert result.failed_indices() == expected_failures
        survivors = 200 - len(expected_failures)
        assert survivors >= 190

        # Bit-identical survivors vs the clean serial run.
        failed = set(expected_failures)
        for i in range(200):
            if i in failed:
                assert result.values[i] is None
            else:
                assert result.values[i] == clean.values[i]

        # Forensics on every failure.
        for failure in result.failures:
            assert failure.error_type == "ConvergenceError"
            assert failure.report is not None
            assert failure.report.stage == "newton"
            assert failure.report.iterations == 13
            assert failure.report.worst_name == "V(out)"

        # Every successful point was cached despite the failures...
        assert len(cache) == survivors
        # ...and a re-run re-evaluates only the failed points.
        again = run_sweep(_mc_flaky, sampler(), executor="serial",
                          on_error="skip", cache=cache)
        assert again.stats.cache_hits == survivors
        assert again.stats.evaluated == len(expected_failures)
        assert again.values == result.values

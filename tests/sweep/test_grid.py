"""Parameter grids, Monte-Carlo samplers, and per-point seeding."""

import numpy as np
import pytest

from repro.errors import AnalysisError
from repro.sweep import MonteCarloSampler, ParameterGrid, SweepPoint


class TestParameterGrid:
    def test_c_order_last_axis_fastest(self):
        grid = ParameterGrid({"a": [1, 2], "b": [10, 20, 30]})
        params = [p.params for p in grid.points()]
        assert params == [
            {"a": 1, "b": 10}, {"a": 1, "b": 20}, {"a": 1, "b": 30},
            {"a": 2, "b": 10}, {"a": 2, "b": 20}, {"a": 2, "b": 30},
        ]

    def test_len_is_axis_product(self):
        grid = ParameterGrid({"a": [1, 2, 3], "b": [0.0, 1.0]})
        assert len(grid) == 6
        assert len(grid.points()) == 6

    def test_indices_are_sequential(self):
        grid = ParameterGrid({"x": [5, 6, 7]})
        assert [p.index for p in grid.points()] == [0, 1, 2]

    def test_unseeded_points_have_no_rng(self):
        point = ParameterGrid({"x": [1]}).points()[0]
        assert point.seed is None
        assert point.rng() is None

    def test_seeded_points_get_distinct_streams(self):
        points = ParameterGrid({"x": [1, 2, 3]}).points(seed=7)
        draws = [p.rng().standard_normal() for p in points]
        assert len(set(draws)) == 3

    def test_empty_axes_rejected(self):
        with pytest.raises(AnalysisError):
            ParameterGrid({})
        with pytest.raises(AnalysisError):
            ParameterGrid({"x": []})


class TestMonteCarloSampler:
    def test_sample_count(self):
        sampler = MonteCarloSampler(5, seed=1)
        assert len(sampler) == 5
        assert len(sampler.points()) == 5

    def test_streams_depend_only_on_seed_and_index(self):
        first = [p.rng().standard_normal()
                 for p in MonteCarloSampler(4, seed=3).points()]
        second = [p.rng().standard_normal()
                  for p in MonteCarloSampler(4, seed=3).points()]
        assert first == second

    def test_extending_sample_count_preserves_prefix(self):
        # Sample i's stream is a function of (seed, i) alone, so a run
        # with more samples reproduces the shorter run's prefix exactly.
        short = [p.rng().standard_normal()
                 for p in MonteCarloSampler(3, seed=9).points()]
        long = [p.rng().standard_normal()
                for p in MonteCarloSampler(10, seed=9).points()]
        assert long[:3] == short

    def test_different_seeds_differ(self):
        a = [p.rng().standard_normal()
             for p in MonteCarloSampler(3, seed=1).points()]
        b = [p.rng().standard_normal()
             for p in MonteCarloSampler(3, seed=2).points()]
        assert a != b

    def test_seed_sequence_accepted(self):
        root = np.random.SeedSequence(42)
        values = [p.rng().standard_normal()
                  for p in MonteCarloSampler(3, seed=root).points()]
        again = [p.rng().standard_normal()
                 for p in MonteCarloSampler(3, seed=42).points()]
        assert values == again

    def test_shared_params_are_copied_per_point(self):
        sampler = MonteCarloSampler(2, seed=0, params={"x": 1})
        p0, p1 = sampler.points()
        assert p0.params == {"x": 1} and p1.params == {"x": 1}
        assert p0.params is not p1.params

    def test_zero_samples_rejected(self):
        with pytest.raises(AnalysisError):
            MonteCarloSampler(0)


def test_sweep_point_rng_is_fresh_each_call():
    point = SweepPoint(index=0, params={},
                       seed=np.random.SeedSequence(5))
    assert point.rng().standard_normal() == point.rng().standard_normal()

"""Batched-vs-scalar AC parity: the blocked solve must be invisible.

Mirror of ``test_batched_dc.py`` for :class:`BlockedACSweep`: routing a
sweep chunk through ``evaluate_batch`` (one stacked Newton bias solve
plus ``(lanes x freq_block)`` stacked complex solves) instead of
per-point scalar AC analyses changes *nothing* observable — the
``(freqs,)`` measured vectors are bit-identical, failed points produce
identical :class:`~repro.sweep.FailedPoint` records, and the contract
holds under every executor, every ``on_error`` policy, and both the
dense and sparse assembly backends.

The injected non-convergent lane is again a NaN source level: the bias
solve fails deterministically and identically in scalar and batched
runs before any AC work happens.
"""

from pathlib import Path

import numpy as np
import pytest

from repro.errors import AnalysisError, ConvergenceError, SweepError
from repro.spice.parser import parse_deck
from repro.sweep import (
    BlockedACSweep,
    ac_gain_db,
    ac_node_voltage,
    run_sweep,
)

DECKS = Path(__file__).resolve().parents[2] / "examples" / "decks"
DECK_TEXT = (DECKS / "ce_stage.cir").read_text()

#: The CE stage extended with linear passives for override sweeping: a
#: load capacitor, an emitter-leg inductor and a second resistor, all
#: of which BlockedACSweep can re-stamp without recompiling.
PASSIVE_DECK = DECK_TEXT.replace(
    ".OP",
    "CL c 0 0.5p\nLE e2 0 1n\nRE2 c e2 10k\n.OP",
    1,
)

VB_LEVELS = [0.55, 0.62, 0.68, 0.72, 0.75, 0.78, 0.80, 0.82]

EXECUTOR_MATRIX = (
    {"executor": "serial"},
    {"executor": "thread", "jobs": 2},
    {"executor": "process", "jobs": 2},
    {"executor": "auto"},
)

ENGINES = ("dense", "sparse")


def _points(inject_failure=False):
    levels = list(VB_LEVELS)
    if inject_failure:
        levels[3] = float("nan")
    return [{"VB": level} for level in levels]


def _passive_points():
    return [
        {"VB": 0.75, "RC": 1.2e3},
        {"VB": 0.78, "CL": 2e-12},
        {"VB": 0.80, "LE": 3e-9},
        {"VB": 0.72, "RE2": 4.7e3, "CL": 1e-12},
        {"RC": 0.8e3, "LE": 0.5e-9},
    ]


def _failure_records(result):
    return [
        (f.index, repr(f.params), f.error, f.error_type, f.attempts,
         repr(f.report))
        for f in result.failures
    ]


def _assert_values_equal(got, expected):
    assert len(got) == len(expected)
    for a, b in zip(got, expected):
        if a is None or b is None:
            assert a is None and b is None
        else:
            np.testing.assert_array_equal(a, b)


class TestSweepParityMatrix:
    """Every executor x every on_error policy x an injected bad lane,
    on both assembly backends."""

    @pytest.fixture(scope="class", params=ENGINES)
    def evaluator(self, request):
        return BlockedACSweep(DECK_TEXT, measure=ac_node_voltage("c"),
                              engine=request.param)

    @pytest.fixture(scope="class")
    def scalar_reference(self, evaluator):
        return {
            policy: run_sweep(evaluator, _points(inject_failure=True),
                              batch=False, on_error=policy, chunk_size=4)
            for policy in ("skip", "retry")
        }

    @pytest.mark.parametrize("backend", EXECUTOR_MATRIX,
                             ids=lambda kw: kw["executor"])
    @pytest.mark.parametrize("policy", ("skip", "retry"))
    def test_bit_identical_values_and_failures(self, evaluator,
                                               scalar_reference, backend,
                                               policy):
        reference = scalar_reference[policy]
        run = run_sweep(evaluator, _points(inject_failure=True),
                        batch="auto", on_error=policy, chunk_size=4,
                        **backend)
        _assert_values_equal(run.values, reference.values)
        assert _failure_records(run) == _failure_records(reference)
        assert run.stats.failures == 1
        if policy == "retry":
            assert run.stats.retries == reference.stats.retries > 0

    @pytest.mark.parametrize("backend", EXECUTOR_MATRIX,
                             ids=lambda kw: kw["executor"])
    def test_raise_policy_raises_identical_error(self, evaluator, backend):
        with pytest.raises(ConvergenceError) as scalar_exc:
            run_sweep(evaluator, _points(inject_failure=True),
                      batch=False, on_error="raise", chunk_size=4)
        with pytest.raises(ConvergenceError) as batched_exc:
            run_sweep(evaluator, _points(inject_failure=True),
                      batch="auto", on_error="raise", chunk_size=4,
                      **backend)
        assert str(batched_exc.value) == str(scalar_exc.value)
        assert (batched_exc.value.report.stage
                == scalar_exc.value.report.stage)

    @pytest.mark.parametrize("backend", EXECUTOR_MATRIX,
                             ids=lambda kw: kw["executor"])
    def test_clean_sweep_bit_identical(self, evaluator, backend):
        reference = run_sweep(evaluator, _points(), batch=False,
                              chunk_size=3)
        run = run_sweep(evaluator, _points(), batch="auto", chunk_size=3,
                        **backend)
        _assert_values_equal(run.values, reference.values)
        assert run.ok


class TestPassiveOverrides:
    """R/L/C value overrides restamped through the shared pattern."""

    @pytest.mark.parametrize("engine", ENGINES)
    def test_override_parity_scalar_vs_batch(self, engine):
        fn = BlockedACSweep(PASSIVE_DECK, measure=ac_node_voltage("c"),
                            engine=engine)
        points = _passive_points()
        scalar = [fn(p) for p in points]
        batched = fn.evaluate_batch(points)
        assert all(err is None for _, err in batched)
        for got, expected in zip(batched, scalar):
            np.testing.assert_array_equal(got[0], expected)

    def test_dense_and_sparse_agree_closely(self):
        points = _passive_points()
        dense = BlockedACSweep(PASSIVE_DECK, measure=ac_gain_db("c"),
                               engine="dense")
        sparse = BlockedACSweep(PASSIVE_DECK, measure=ac_gain_db("c"),
                                engine="sparse")
        for p in points:
            np.testing.assert_allclose(dense(p), sparse(p),
                                       rtol=1e-8, atol=1e-8)

    def test_override_to_deck_value_is_identity(self):
        fn = BlockedACSweep(PASSIVE_DECK, measure=ac_node_voltage("c"))
        np.testing.assert_array_equal(fn({"RC": 1e3, "CL": 0.5e-12}),
                                      fn({}))

    def test_zero_resistance_is_a_sweep_error(self):
        fn = BlockedACSweep(PASSIVE_DECK)
        with pytest.raises(SweepError, match="must be finite"):
            fn({"RC": 0.0})

    def test_non_finite_passive_is_a_sweep_error(self):
        fn = BlockedACSweep(PASSIVE_DECK)
        with pytest.raises(SweepError, match="must be finite"):
            fn({"CL": float("nan")})

    def test_nonlinear_element_is_a_sweep_error(self):
        fn = BlockedACSweep(DECK_TEXT)
        with pytest.raises(SweepError,
                           match="independent DC source or a linear"):
            fn({"Q1": 1.0})

    def test_bad_passive_lane_fails_alone_in_batch(self):
        fn = BlockedACSweep(PASSIVE_DECK, measure=ac_node_voltage("c"))
        points = [{"VB": 0.75}, {"RC": 0.0}, {"VB": 0.80}]
        results = fn.evaluate_batch(points)
        assert results[0][1] is None and results[2][1] is None
        assert isinstance(results[1][0], type(None))
        assert isinstance(results[1][1], SweepError)
        np.testing.assert_array_equal(results[0][0], fn(points[0]))
        np.testing.assert_array_equal(results[2][0], fn(points[2]))


class TestFrequencyResolution:
    def test_deck_ac_card_is_adopted(self):
        fn = BlockedACSweep(DECK_TEXT)
        freqs = fn.frequencies
        assert freqs.size == 51  # .AC DEC 10 1MEG 100G
        assert freqs[0] == pytest.approx(1e6)
        assert freqs[-1] == pytest.approx(100e9)

    def test_explicit_grid_overrides_the_card(self):
        grid = [1e6, 1e7, 1e8]
        fn = BlockedACSweep(DECK_TEXT, frequencies=grid)
        np.testing.assert_array_equal(fn.frequencies, grid)

    def test_no_grid_anywhere_is_a_sweep_error(self):
        no_card = DECK_TEXT.replace(".AC DEC 10 1MEG 100G\n", "")
        fn = BlockedACSweep(no_card)
        with pytest.raises(SweepError, match="frequency grid"):
            fn({"VB": 0.75})

    @pytest.mark.parametrize("bad", ([], [0.0, 1e6], [-1e3], [float("nan")]))
    def test_invalid_grid_is_rejected_at_construction(self, bad):
        with pytest.raises(SweepError, match="positive"):
            BlockedACSweep(DECK_TEXT, frequencies=bad)

    def test_no_stimulus_is_an_analysis_error_both_paths(self):
        dead = DECK_TEXT.replace("DC 0.8 AC 1", "DC 0.8")
        fn = BlockedACSweep(dead, measure=ac_node_voltage("c"))
        with pytest.raises(AnalysisError) as scalar_exc:
            fn({"VB": 0.75})
        results = fn.evaluate_batch([{"VB": 0.75}, {"VB": 0.80}])
        for value, error in results:
            assert value is None
            assert isinstance(error, AnalysisError)
            assert str(error) == str(scalar_exc.value)


class TestStackedEvaluate:
    """The lane-stacked assembly under the blocked paths is bit-identical
    to per-lane scalar ``evaluate`` — per lane, per array, both
    backends."""

    @pytest.mark.parametrize("mode", ENGINES)
    def test_stacked_matches_scalar_per_lane(self, mode):
        from repro.spice.engine import get_engine
        from repro.spice.dcop import solve_dc

        circuit = parse_deck(DECK_TEXT).circuit
        engine = get_engine(circuit, mode=mode)
        assert engine.supports_stacked_evaluate
        x_op = solve_dc(circuit, engine=engine)
        rng = np.random.default_rng(11)
        x_stack = x_op + rng.normal(0.0, 0.05, (6, x_op.size))
        limits_scalar = [dict() for _ in range(6)]
        limits_stacked = [dict() for _ in range(6)]
        ctx = engine.evaluate_stacked(
            x_stack, gmin=1e-12, limits_list=limits_stacked, with_c=True
        )
        for k in range(6):
            ref = engine.evaluate(x_stack[k], gmin=1e-12,
                                  limits=limits_scalar[k])
            np.testing.assert_array_equal(ctx.i[k], ref.i_vec)
            np.testing.assert_array_equal(ctx.q[k], ref.q_vec)
            if mode == "sparse":
                np.testing.assert_array_equal(ctx.g[k], ref.g_mat.values)
                np.testing.assert_array_equal(ctx.c[k], ref.c_mat.values)
            else:
                np.testing.assert_array_equal(ctx.g[k], ref.g_mat)
                np.testing.assert_array_equal(ctx.c[k], ref.c_mat)
        assert limits_stacked == limits_scalar

    def test_newton_batched_uses_stacked_assembly(self):
        from repro.spice.engine import GLOBAL_STATS, get_engine
        from repro.spice.dcop import Tolerances, newton_solve_batched, solve_dc

        circuit = parse_deck(DECK_TEXT).circuit
        engine = get_engine(circuit, mode="dense")
        x_op = solve_dc(circuit, engine=engine)
        x0 = np.tile(x_op, (8, 1))
        before = GLOBAL_STATS.assemblies
        x, converged = newton_solve_batched(
            circuit, x0, Tolerances(), gmin=1e-12, engine=engine
        )
        assert converged.all()
        # One stacked assembly per iteration covers all lanes: far fewer
        # evaluate dispatches than lanes x iterations.
        assert GLOBAL_STATS.assemblies - before >= 8
        for k in range(8):
            np.testing.assert_array_equal(x[k], x[0])


class TestEvaluatorContract:
    def test_unknown_parameter_is_a_sweep_error(self):
        fn = BlockedACSweep(DECK_TEXT)
        with pytest.raises(SweepError, match="no element named"):
            fn({"VBOGUS": 1.0})

    def test_deck_must_be_text(self):
        with pytest.raises(SweepError, match="deck text"):
            BlockedACSweep(parse_deck(DECK_TEXT))

    def test_cache_tag_distinguishes_grids_and_measures(self):
        a = BlockedACSweep(DECK_TEXT)
        b = BlockedACSweep(DECK_TEXT, frequencies=[1e6, 1e9])
        c = BlockedACSweep(DECK_TEXT, measure=ac_gain_db("c"))
        d = BlockedACSweep(DECK_TEXT + "\n* trailing comment")
        tags = {x.__cache_tag__ for x in (a, b, c, d)}
        assert len(tags) == 4
        assert all(t.startswith("repro.sweep.batched.BlockedACSweep#")
                   for t in tags)

    def test_ac_and_dc_tags_never_collide(self):
        from repro.sweep import BlockedDCSweep

        ac = BlockedACSweep(DECK_TEXT)
        dc = BlockedDCSweep(DECK_TEXT)
        assert ac.__cache_tag__ != dc.__cache_tag__

    def test_pickle_round_trip_preserves_identity(self):
        import pickle

        fn = BlockedACSweep(DECK_TEXT, measure=ac_gain_db("c"),
                            frequencies=[1e6, 1e8, 1e10])
        clone = pickle.loads(pickle.dumps(fn))
        assert clone.__cache_tag__ == fn.__cache_tag__
        np.testing.assert_array_equal(clone({"VB": 0.75}), fn({"VB": 0.75}))

    def test_thread_fraction_hint_matches_cost_model(self):
        from repro.sweep import DEFAULT_COST_MODEL

        fn = BlockedACSweep(DECK_TEXT)
        assert (fn.thread_fraction_hint
                == DEFAULT_COST_MODEL.complex_parallel_fraction)

"""Concurrency stress tests: shared pools, caches and cost models.

The sweep layer's process-pool registry, result caches and EWMA cost
models are process-global, and the service layer (:mod:`repro.service`)
drives all of them from many threads at once.  These tests hammer the
shared state from thread fan-outs and assert the serial contracts
survive: no lost results, no ``BrokenProcessPool`` from a reaped-while-
busy pool, bit-identical values, consistent counters.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.sweep import ResultCache, run_sweep
from repro.sweep.costmodel import DEFAULT_COST_MODEL, CostModel
from repro.sweep.executors import (
    DispatchStats,
    ProcessExecutor,
    _get_pool,
    _POOLS,
    _release_pool,
    pool_is_warm,
    shutdown_pools,
)
from repro.spice.solvercost import DEFAULT_SOLVER_COST_MODEL, SolverCostModel


@pytest.fixture(autouse=True)
def _restore_shared_cost_models():
    """Shield the rest of the suite from this module's calibrations.

    Both singletons self-calibrate from observed timings; tests that
    stress them (or run many solves) would otherwise shift auto-choice
    behavior in later test modules.
    """
    sweep_snapshot = (DEFAULT_COST_MODEL.spinup_seconds,
                      DEFAULT_COST_MODEL.chunk_seconds)
    solver_snapshot = (DEFAULT_SOLVER_COST_MODEL.dense_factor_ns3,
                       DEFAULT_SOLVER_COST_MODEL.sparse_factor_ns,
                       dict(DEFAULT_SOLVER_COST_MODEL.observations))
    yield
    (DEFAULT_COST_MODEL.spinup_seconds,
     DEFAULT_COST_MODEL.chunk_seconds) = sweep_snapshot
    (DEFAULT_SOLVER_COST_MODEL.dense_factor_ns3,
     DEFAULT_SOLVER_COST_MODEL.sparse_factor_ns) = solver_snapshot[:2]
    DEFAULT_SOLVER_COST_MODEL.observations = dict(solver_snapshot[2])


def _poly(params: dict, attempt: int = 0) -> float:
    """Deterministic, cheap, picklable point evaluation."""
    x = params["x"]
    y = params.get("y", 0.0)
    return x * x * 0.5 - 3.0 * x + y * 1.25 + 1.0


def _sleepy_chunk(chunk: list) -> list:
    """Chunk evaluator that outlives a shortened reap window."""
    time.sleep(0.45)
    return [p["x"] * 2.0 for p in chunk]


def _quick_chunk(chunk: list) -> list:
    return [p["x"] + 1.0 for p in chunk]


class TestConcurrentSweeps:
    """N threads running sweeps against shared caches: the ISSUE's
    8-thread x 50-job stress scenario."""

    THREADS = 8
    JOBS_PER_THREAD = 7  # 8 x 7 = 56 sweep jobs > the 50 the issue asks

    def test_shared_cache_sweeps_lose_nothing(self):
        points = [{"x": i * 0.125, "y": (i % 5) * 0.2} for i in range(40)]
        expected = run_sweep(_poly, points).values

        cache = ResultCache()
        failures: list = []

        def worker(tid: int) -> None:
            try:
                for _ in range(self.JOBS_PER_THREAD):
                    result = run_sweep(_poly, points, cache=cache,
                                       cache_tag="stress.poly")
                    assert len(result.values) == len(points)
                    assert result.values == expected
                    assert not result.failures
            except BaseException as exc:  # noqa: BLE001 - collected below
                failures.append((tid, exc))

        threads = [threading.Thread(target=worker, args=(t,))
                   for t in range(self.THREADS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert not failures, failures
        # Every job saw every point: none lost, none corrupted.
        lookups = cache.hits + cache.misses
        assert lookups == self.THREADS * self.JOBS_PER_THREAD * len(points)
        # The cache stayed internally consistent under contention: each
        # point is evaluated at most once per racing first-wave job, and
        # after the first wave everything is served from cache.
        assert cache.misses < lookups
        assert cache.hits > 0

    def test_thread_executor_matches_serial_bitwise(self):
        points = [{"x": i * 0.25} for i in range(64)]
        serial = run_sweep(_poly, points)
        threaded = run_sweep(_poly, points, executor="thread", jobs=4)
        assert threaded.values == serial.values  # bit-identical, not approx


class TestPoolRegistryRaces:
    """The registry's lease/in-flight protocol under adversarial timing."""

    @pytest.fixture(autouse=True)
    def _fresh_pools(self):
        shutdown_pools()
        yield
        shutdown_pools()

    def test_long_chunk_survives_concurrent_reap_pressure(self, monkeypatch):
        """A chunk running longer than the reap window completes while
        another thread spawns and reaps pools of other sizes."""
        monkeypatch.setattr("repro.sweep.executors.POOL_IDLE_REAP_SECONDS",
                            0.2)
        chunks = [[{"x": 1.0}], [{"x": 2.0}], [{"x": 3.0}], [{"x": 4.0}]]
        outcome: dict = {}

        def long_sweep() -> None:
            try:
                executor = ProcessExecutor(2)
                outcome["results"] = executor.map_chunks(_sleepy_chunk,
                                                         chunks)
            except BaseException as exc:  # noqa: BLE001 - asserted below
                outcome["error"] = exc

        sweeper = threading.Thread(target=long_sweep)
        sweeper.start()
        # Meanwhile: registry churn.  Every _get_pool call runs the
        # reaper; before the in-flight guard this could shut down the
        # sweeper's pool mid-dispatch (its last_used was set at fetch
        # time, 0.45 s * 2 waves > the 0.2 s window).
        deadline = time.monotonic() + 1.5
        while sweeper.is_alive() and time.monotonic() < deadline:
            state, _ = _get_pool(3, lease=True)
            _release_pool(state)
            time.sleep(0.05)
        sweeper.join(timeout=30.0)

        assert "error" not in outcome, outcome.get("error")
        assert outcome["results"] == [[2.0], [4.0], [6.0], [8.0]]

    def test_busy_pool_is_never_reaped_but_idle_pool_is(self, monkeypatch):
        monkeypatch.setattr("repro.sweep.executors.POOL_IDLE_REAP_SECONDS",
                            0.2)
        busy, _ = _get_pool(2, lease=True)
        # Make it look ancient; in-flight must still protect it.
        busy.last_used = time.monotonic() - 100.0
        _get_pool(3)  # any registry access runs the reaper
        assert 2 in _POOLS and _POOLS[2] is busy
        assert pool_is_warm(2)  # busy pools are warm regardless of age

        _release_pool(busy)  # completion refreshes last_used
        assert pool_is_warm(2)
        busy.last_used = time.monotonic() - 100.0
        assert not pool_is_warm(2)  # warmth must agree with the reaper
        _get_pool(3)
        assert 2 not in _POOLS  # now idle + stale -> reaped

    def test_concurrent_get_pool_spawns_exactly_one_pool(self):
        states: list = []
        barrier = threading.Barrier(6)

        def fetch() -> None:
            barrier.wait()
            state, _ = _get_pool(2, lease=True)
            states.append(state)

        threads = [threading.Thread(target=fetch) for _ in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(states) == 6
        assert all(state is states[0] for state in states)
        assert states[0].in_flight == 6
        for state in states:
            _release_pool(state)
        assert states[0].in_flight == 0

    def test_default_jobs_prefers_cpu_affinity(self, monkeypatch):
        from repro.sweep import executors

        monkeypatch.setattr("os.sched_getaffinity",
                            lambda pid: {0, 1, 2}, raising=False)
        assert executors._default_jobs() == 3
        monkeypatch.setattr("os.sched_getaffinity",
                            lambda pid: set(), raising=False)
        assert executors._default_jobs() == 1  # floor, never 0


class TestSharedCountersUnderThreads:
    """ResultCache counters and cost-model EWMAs under contention."""

    def test_result_cache_counters_stay_consistent(self):
        cache = ResultCache(maxsize=32)
        per_thread = 500
        threads = 8
        done: list = []

        def worker(tid: int) -> None:
            for i in range(per_thread):
                key = f"k{(tid * per_thread + i) % 64}"
                if cache.get(key) is None:
                    cache.put(key, tid)
            done.append(tid)

        pool = [threading.Thread(target=worker, args=(t,))
                for t in range(threads)]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()

        assert len(done) == threads
        assert cache.hits + cache.misses == threads * per_thread
        assert len(cache) <= 32  # eviction never overshoots under races
        assert 0.0 <= cache.hit_rate() <= 1.0

    def test_dispatch_cost_model_ewma_is_atomic(self):
        model = CostModel(spinup_seconds=0.1, chunk_seconds=1e-3, ewma=0.5)
        stats = DispatchStats(spinup_seconds=0.05, pool_reused=False,
                              chunk_seconds=[5e-4] * 8)

        def observe() -> None:
            for _ in range(200):
                model.observe(stats)

        pool = [threading.Thread(target=observe) for _ in range(8)]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        # The EWMA converges toward the observed values; torn read-
        # modify-write cycles would leave it outside (observed, seed).
        assert 0.05 <= model.spinup_seconds <= 0.1
        assert 5e-4 <= model.chunk_seconds <= 1e-3

    def test_solver_cost_model_observation_counts(self):
        model = SolverCostModel()
        per_thread = 250

        def observe() -> None:
            for _ in range(per_thread):
                model.observe("dense", 100, None, 1e-4)
                model.observe("sparse", 500, 2000, 1e-4)

        pool = [threading.Thread(target=observe) for _ in range(6)]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        assert model.observations["dense"] == 6 * per_thread
        assert model.observations["sparse"] == 6 * per_thread
        assert model.dense_factor_ns3 > 0.0
        assert model.sparse_factor_ns > 0.0

    def test_cost_model_copy_gets_fresh_lock(self):
        copied = DEFAULT_COST_MODEL.copy()
        assert copied._lock is not DEFAULT_COST_MODEL._lock
        solver_copy = SolverCostModel()
        assert solver_copy._lock is not DEFAULT_SOLVER_COST_MODEL._lock

"""Bit-identity of serial, thread and process sweep execution.

The orchestration contract says results are a function of the sweep
definition alone — chunking, per-point seeding and warm chains never
depend on the executor.  These tests pin that contract on the real
rewired hot paths: Monte-Carlo model generation, Monte-Carlo image
rejection, the Fig. 5 grid, and the warm-started fT sweep.
"""

import numpy as np
import pytest

from repro.devices import GummelPoonParameters
from repro.devices.ft import ft_curve
from repro.geometry import (
    MismatchSpec,
    monte_carlo_image_rejection,
    monte_carlo_models,
)
from repro.rfsystems import fig5_sweep
from repro.sweep import MonteCarloSampler, run_sweep

EXECUTORS = ("serial", "thread", "process")


def _draw_pair(params, rng):
    return (float(rng.standard_normal()), float(rng.uniform()))


class TestOrchestratorEquivalence:
    @pytest.mark.parametrize("executor", EXECUTORS)
    def test_seeded_sweep_identical_across_executors(self, executor):
        sampler = MonteCarloSampler(24, seed=11)
        reference = run_sweep(_draw_pair, sampler, executor="serial",
                              chunk_size=4)
        run = run_sweep(_draw_pair, MonteCarloSampler(24, seed=11),
                        executor=executor, jobs=2, chunk_size=4)
        assert run.values == reference.values


class TestMonteCarloModelsEquivalence:
    @pytest.mark.parametrize("executor", ("thread", "process"))
    def test_bit_identical_populations(self, executor):
        serial = monte_carlo_models("N1.2-6D", 12, seed=5)
        parallel = monte_carlo_models("N1.2-6D", 12, seed=5,
                                      executor=executor, jobs=2)
        for name in ("IS", "BF", "RB", "CJE", "TF"):
            np.testing.assert_array_equal(
                serial.parameter_values(name),
                parallel.parameter_values(name),
            )

    def test_jobs_argument_alone_matches_serial(self):
        serial = monte_carlo_models("N1.2-6D", 8, seed=3)
        jobs = monte_carlo_models("N1.2-6D", 8, seed=3, jobs=2)
        np.testing.assert_array_equal(serial.parameter_values("IS"),
                                      jobs.parameter_values("IS"))

    def test_explicit_seed_reproducible(self):
        a = monte_carlo_models("N1.2-6D", 6, seed=17)
        b = monte_carlo_models("N1.2-6D", 6, seed=17)
        np.testing.assert_array_equal(a.parameter_values("BF"),
                                      b.parameter_values("BF"))
        c = monte_carlo_models("N1.2-6D", 6, seed=18)
        assert not np.array_equal(a.parameter_values("BF"),
                                  c.parameter_values("BF"))


class TestMonteCarloImageRejectionEquivalence:
    @pytest.mark.parametrize("executor", ("thread", "process"))
    def test_bit_identical_yield_report(self, executor):
        mismatch = MismatchSpec(1.5, 0.02)
        serial = monte_carlo_image_rejection(40, mismatch, seed=2)
        parallel = monte_carlo_image_rejection(40, mismatch, seed=2,
                                               executor=executor, jobs=2)
        assert parallel.values == serial.values
        assert parallel.passed == serial.passed

    def test_sample_prefix_stable_under_population_growth(self):
        mismatch = MismatchSpec(1.5, 0.02)
        short = monte_carlo_image_rejection(10, mismatch, seed=4)
        long = monte_carlo_image_rejection(30, mismatch, seed=4)
        assert long.values[:10] == short.values


class TestFig5Equivalence:
    PHASES = (0.5, 1.0, 2.0)
    GAINS = (0.01, 0.05)

    @pytest.mark.parametrize("executor", ("thread", "process"))
    def test_simulated_grid_identical(self, executor):
        serial = fig5_sweep(self.PHASES, self.GAINS)
        parallel = fig5_sweep(self.PHASES, self.GAINS,
                              executor=executor, jobs=2)
        assert parallel == serial

    def test_grid_layout(self):
        family = fig5_sweep(self.PHASES, self.GAINS)
        assert set(family) == set(self.GAINS)
        for gain, curve in family.items():
            assert [phase for phase, _ in curve] == list(self.PHASES)


class TestFTCurveEquivalence:
    @pytest.fixture(scope="class")
    def device(self):
        return GummelPoonParameters(
            name="QEQ", IS=2e-17, BF=120.0, IKF=6e-3,
            RB=90.0, RE=2.0, RC=40.0,
            CJE=40e-15, CJC=25e-15, TF=8e-12,
        )

    @pytest.mark.parametrize("executor", ("thread", "process"))
    def test_warm_started_sweep_identical(self, device, executor):
        ics = np.geomspace(1e-5, 1e-2, 12)
        serial = ft_curve(device, ics, chunk_size=4)
        parallel = ft_curve(device, ics, chunk_size=4,
                            executor=executor, jobs=2)
        assert [p.ft for p in parallel] == [p.ft for p in serial]
        assert [p.vbe for p in parallel] == [p.vbe for p in serial]

    def test_chunked_warm_start_matches_cold_bias_solves(self, device):
        from repro.devices.ft import ft_at_ic

        ics = np.geomspace(1e-5, 1e-2, 8)
        warm = ft_curve(device, ics, chunk_size=3)
        cold = [ft_at_ic(device, float(ic)) for ic in ics]
        for w, c in zip(warm, cold):
            # Warm and cold Newton land within solver tolerance of each
            # other (bit-identity is only guaranteed across executors).
            assert w.ft == pytest.approx(c.ft, rel=1e-9)
            assert w.vbe == pytest.approx(c.vbe, rel=1e-9)

"""Content-hash keys and the in-memory result cache."""

import numpy as np
import pytest

from repro.sweep import ResultCache, content_key


class TestContentKey:
    def test_stable_across_calls(self):
        assert (content_key("tag", {"a": 1.5, "b": "x"})
                == content_key("tag", {"a": 1.5, "b": "x"}))

    def test_dict_order_irrelevant(self):
        assert (content_key("tag", {"a": 1, "b": 2})
                == content_key("tag", {"b": 2, "a": 1}))

    def test_tag_params_and_seed_all_matter(self):
        base = content_key("tag", {"a": 1})
        assert content_key("other", {"a": 1}) != base
        assert content_key("tag", {"a": 2}) != base
        assert content_key("tag", {"a": 1},
                           np.random.SeedSequence(0)) != base

    def test_seed_identity_by_entropy_and_spawn_key(self):
        root = np.random.SeedSequence(7)
        child_a = root.spawn(2)[0]
        child_b = np.random.SeedSequence(7).spawn(2)[0]
        assert (content_key("t", {}, child_a)
                == content_key("t", {}, child_b))
        assert (content_key("t", {}, root.spawn(1)[0])
                != content_key("t", {}, root))

    def test_numpy_scalars_match_python_scalars(self):
        assert (content_key("t", {"x": np.float64(2.5)})
                == content_key("t", {"x": 2.5}))
        assert (content_key("t", {"n": np.int64(3)})
                == content_key("t", {"n": 3}))

    def test_arrays_keyed_by_content(self):
        a = np.array([1.0, 2.0])
        assert (content_key("t", {"v": a})
                == content_key("t", {"v": a.copy()}))
        assert (content_key("t", {"v": a})
                != content_key("t", {"v": np.array([1.0, 2.5])}))

    def test_float_precision_round_trips(self):
        x = 0.1 + 0.2  # not representable as the literal 0.3
        assert content_key("t", {"x": x}) != content_key("t", {"x": 0.3})

    def test_unkeyable_types_rejected(self):
        with pytest.raises(TypeError):
            content_key("t", {"f": object()})


class TestResultCache:
    def test_miss_then_hit(self):
        cache = ResultCache()
        key = content_key("t", {"x": 1})
        sentinel = object()
        assert cache.get(key, default=sentinel) is sentinel
        cache.put(key, 42)
        assert cache.get(key) == 42
        assert cache.hits == 1 and cache.misses == 1

    def test_cached_none_distinguishable_via_default(self):
        cache = ResultCache()
        cache.put("k", None)
        marker = object()
        assert cache.get("k", default=marker) is None

    def test_maxsize_evicts_oldest(self):
        cache = ResultCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("c", 3)
        assert len(cache) == 2
        assert "a" not in cache
        assert "b" in cache and "c" in cache

    def test_clear_resets_counters(self):
        cache = ResultCache()
        cache.put("k", 1)
        cache.get("k")
        cache.get("missing")
        cache.clear()
        assert len(cache) == 0
        assert cache.hits == 0 and cache.misses == 0

    def test_zero_maxsize_stores_nothing(self):
        # Regression: the eviction loop used to next() an empty iterator
        # (StopIteration) instead of treating capacity 0 as "disabled".
        cache = ResultCache(maxsize=0)
        cache.put("a", 1)
        cache.put("b", 2)
        assert len(cache) == 0
        assert "a" not in cache
        marker = object()
        assert cache.get("a", default=marker) is marker

    def test_updating_existing_key_does_not_evict(self):
        cache = ResultCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 3)  # overwrite, still 2 entries
        assert len(cache) == 2
        assert "b" in cache
        assert cache.get("a") == 3

"""The sweep orchestrator: chunking, warm chains, caching, stats."""

import numpy as np
import pytest

from repro.errors import AnalysisError
from repro.spice.engine import GLOBAL_STATS
from repro.sweep import (
    MonteCarloSampler,
    ParameterGrid,
    ResultCache,
    SerialExecutor,
    ThreadExecutor,
    resolve_executor,
    run_sweep,
)

# Module-level evaluation functions so the process executor can pickle
# them (the same constraint the library's own callers live under).

_CALLS = []


def _square(params):
    _CALLS.append(params["x"])
    return params["x"] ** 2


def _draw(params, rng):
    return float(rng.standard_normal())


def _chain(params, warm=None):
    total = (warm or 0.0) + params["x"]
    return total, total


def _bad_warm(params, warm=None):
    return params["x"]  # violates the (value, state) protocol


class TestRunSweepBasics:
    def test_values_in_point_order(self):
        result = run_sweep(_square, [{"x": i} for i in range(7)])
        assert result.values == [i ** 2 for i in range(7)]
        assert len(result) == 7

    def test_accepts_grid_and_sampler(self):
        grid = ParameterGrid({"x": [1, 2, 3]})
        assert run_sweep(_square, grid).values == [1, 4, 9]
        sampler = MonteCarloSampler(4, seed=0)
        draws = run_sweep(_draw, sampler).values
        assert len(set(draws)) == 4

    def test_empty_sweep(self):
        result = run_sweep(_square, [])
        assert result.values == []
        assert result.stats.points == 0

    def test_bad_point_type_rejected(self):
        with pytest.raises(AnalysisError):
            run_sweep(_square, [("x", 1)])

    def test_bad_chunk_size_rejected(self):
        with pytest.raises(AnalysisError):
            run_sweep(_square, [{"x": 1}], chunk_size=0)

    def test_value_and_param_arrays(self):
        result = run_sweep(_square, [{"x": i} for i in range(4)])
        np.testing.assert_array_equal(result.value_array(),
                                      [0.0, 1.0, 4.0, 9.0])
        np.testing.assert_array_equal(result.param_array("x"),
                                      [0, 1, 2, 3])

    def test_param_array_unknown_name_names_the_available(self):
        result = run_sweep(_square, [{"x": 1}, {"x": 2}])
        with pytest.raises(AnalysisError, match=r"'y'.*\['x'\]"):
            result.param_array("y")

    def test_param_array_partial_coverage_rejected(self):
        # A parameter only *some* points carry is as unusable as a
        # missing one — the column would have holes.
        result = run_sweep(_square, [{"x": 1}, {"x": 2, "extra": 3}])
        with pytest.raises(AnalysisError, match="extra"):
            result.param_array("extra")


class TestWarmStart:
    def test_chains_restart_at_chunk_boundaries(self):
        points = [{"x": 1.0}] * 6
        result = run_sweep(_chain, points, warm_start=True, chunk_size=3)
        # Two chunks of three: each runs 1, 2, 3 from a cold start.
        assert result.values == [1.0, 2.0, 3.0, 1.0, 2.0, 3.0]

    def test_chunking_ignores_executor(self):
        points = [{"x": 1.0}] * 6
        serial = run_sweep(_chain, points, warm_start=True, chunk_size=2,
                           executor="serial")
        threaded = run_sweep(_chain, points, warm_start=True, chunk_size=2,
                             executor="thread", jobs=3)
        assert serial.values == threaded.values

    def test_protocol_violation_raises(self):
        with pytest.raises(AnalysisError, match="warm_start"):
            run_sweep(_bad_warm, [{"x": 1.0}], warm_start=True)


class TestCaching:
    def test_second_run_served_from_cache(self):
        cache = ResultCache()
        points = [{"x": i} for i in range(5)]
        _CALLS.clear()
        first = run_sweep(_square, points, cache=cache)
        assert first.stats.evaluated == 5
        assert len(_CALLS) == 5
        second = run_sweep(_square, points, cache=cache)
        assert second.values == first.values
        assert second.stats.evaluated == 0
        assert second.stats.cache_hits == 5
        assert len(_CALLS) == 5  # nothing re-evaluated

    def test_partial_overlap_evaluates_only_new_points(self):
        cache = ResultCache()
        run_sweep(_square, [{"x": i} for i in range(3)], cache=cache)
        _CALLS.clear()
        result = run_sweep(_square, [{"x": i} for i in range(5)],
                           cache=cache)
        assert result.values == [i ** 2 for i in range(5)]
        assert sorted(_CALLS) == [3, 4]
        assert result.stats.cache_hits == 3

    def test_cache_tag_separates_evaluations(self):
        cache = ResultCache()
        run_sweep(_square, [{"x": 2}], cache=cache, cache_tag="a")
        result = run_sweep(_square, [{"x": 2}], cache=cache,
                           cache_tag="b")
        assert result.stats.cache_hits == 0

    def test_seeded_points_cache_by_stream(self):
        cache = ResultCache()
        first = run_sweep(_draw, MonteCarloSampler(4, seed=1),
                          cache=cache)
        second = run_sweep(_draw, MonteCarloSampler(4, seed=1),
                           cache=cache)
        assert second.values == first.values
        assert second.stats.cache_hits == 4
        third = run_sweep(_draw, MonteCarloSampler(4, seed=2),
                          cache=cache)
        assert third.stats.cache_hits == 0

    def test_warm_sweeps_cache_whole_chunks(self):
        cache = ResultCache()
        points = [{"x": float(i)} for i in range(6)]
        first = run_sweep(_chain, points, warm_start=True, chunk_size=3,
                          cache=cache)
        second = run_sweep(_chain, points, warm_start=True, chunk_size=3,
                           cache=cache)
        assert second.values == first.values
        assert second.stats.cache_hits == 6
        # A different chunking forms different chains -> no reuse.
        third = run_sweep(_chain, points, warm_start=True, chunk_size=2,
                          cache=cache)
        assert third.stats.cache_hits == 0

    def test_partial_bound_arguments_distinguish_tags(self):
        import functools

        cache = ResultCache()
        run_sweep(functools.partial(_chain, ), [{"x": 1.0}], cache=cache)
        result = run_sweep(functools.partial(_chain, warm=2.0),
                           [{"x": 1.0}], cache=cache)
        assert result.stats.cache_hits == 0

    def test_distinct_lambdas_get_distinct_tags(self):
        # Regression: two lambdas share __qualname__ ("<lambda>"), so a
        # name-only tag made the second sweep silently serve the first's
        # cached results.  The tag now hashes the compiled bytecode.
        cache = ResultCache()
        first = run_sweep(lambda p: p["x"] * 2, [{"x": 3}], cache=cache)
        second = run_sweep(lambda p: p["x"] * 10, [{"x": 3}], cache=cache)
        assert first.values == [6]
        assert second.values == [30]
        assert second.stats.cache_hits == 0

    def test_identical_code_still_shares_cache(self):
        from repro.sweep.orchestrator import _evaluation_tag

        # Same bytecode -> same tag: re-defining the same lambda must
        # not defeat caching.
        assert (_evaluation_tag(lambda p: p["x"] * 2)
                == _evaluation_tag(lambda p: p["x"] * 2))

    def test_codeless_callable_requires_explicit_tag(self):
        cache = ResultCache()
        with pytest.raises(AnalysisError) as excinfo:
            run_sweep(abs, [{"x": 1}], cache=cache)
        assert "cache_tag" in str(excinfo.value)
        # An explicit tag opts back in (the evaluation itself fails on
        # the params dict, so use a trivial wrapper-free callable check
        # at tag level only).
        from repro.sweep.orchestrator import _evaluation_tag

        with pytest.raises(AnalysisError):
            _evaluation_tag(abs, require_code=True)
        assert _evaluation_tag(abs) == "builtins.abs"


class TestStats:
    def test_counts_and_summary(self):
        result = run_sweep(_square, [{"x": i} for i in range(10)],
                           chunk_size=4)
        stats = result.stats
        assert stats.points == 10
        assert stats.evaluated == 10
        assert stats.chunks == 3
        assert stats.executor == "serial"
        assert stats.wall_seconds > 0.0
        assert stats.points_per_second() > 0.0
        assert "10 points" in stats.summary()
        assert set(stats.as_dict()) == {
            "points", "evaluated", "cache_hits", "chunks", "workers",
            "executor", "wall_seconds", "point_seconds",
            "failures", "retries", "executor_faults", "on_error",
            "payload_bytes", "spinup_seconds", "chunk_p50_seconds",
            "chunk_p99_seconds", "plan",
        }

    def test_global_engine_counters_accumulate(self):
        snapshot = GLOBAL_STATS.copy()
        cache = ResultCache()
        run_sweep(_square, [{"x": i} for i in range(4)], cache=cache)
        run_sweep(_square, [{"x": i} for i in range(4)], cache=cache)
        delta = GLOBAL_STATS.since(snapshot)
        assert delta.sweep_points == 8
        assert delta.sweep_cache_hits == 4

    def test_sweep_line_in_engine_summary(self):
        stats = GLOBAL_STATS.copy()
        stats.sweep_points = max(stats.sweep_points, 1)
        assert "sweep points" in stats.summary()


class TestExecutorResolution:
    def test_default_is_serial(self):
        assert resolve_executor(None, None).name == "serial"
        assert resolve_executor(None, 1).name == "serial"

    def test_jobs_selects_process_pool(self):
        backend = resolve_executor(None, 4)
        assert backend.name == "process"
        assert backend.workers == 4

    def test_names_resolve(self):
        assert resolve_executor("serial").name == "serial"
        assert resolve_executor("thread", 2).workers == 2
        assert resolve_executor("process", 3).workers == 3

    def test_instance_passthrough(self):
        backend = SerialExecutor()
        assert resolve_executor(backend) is backend

    def test_unknown_name_rejected(self):
        with pytest.raises(AnalysisError):
            resolve_executor("gpu")

    def test_thread_executor_preserves_submission_order(self):
        backend = ThreadExecutor(jobs=4)
        chunks = [[i] for i in range(12)]
        assert backend.map_chunks(lambda c: c[0] * 2, chunks) == [
            i * 2 for i in range(12)
        ]

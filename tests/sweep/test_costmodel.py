"""Dispatch cost model: small sweeps stay serial, big ones go parallel.

The model's one job is to keep ``--jobs auto`` from ever *losing* to
serial: pool spin-up and per-chunk IPC must be charged against the
predicted parallel win, near-ties must resolve to serial, and observed
dispatch stats must pull the estimates toward the actual machine.
"""

import pytest

from repro.sweep import CostModel, DEFAULT_COST_MODEL, DispatchPlan
from repro.sweep.executors import DispatchStats


class TestPlanning:
    def test_tiny_cheap_sweep_stays_serial(self):
        plan = CostModel().plan(8, 20e-6, workers=4)
        assert plan.backend == "serial"
        assert plan.jobs == 1

    def test_large_expensive_sweep_goes_process(self):
        plan = CostModel().plan(500, 1.5e-3, workers=4)
        assert plan.backend == "process"
        assert plan.jobs == 4
        assert plan.predictions["process"] < plan.predictions["serial"]

    def test_single_worker_never_parallel(self):
        plan = CostModel().plan(10_000, 1e-2, workers=1)
        assert plan.backend == "serial"

    def test_single_point_never_parallel(self):
        plan = CostModel().plan(1, 10.0, workers=8)
        assert plan.backend == "serial"

    def test_warm_pool_tilts_toward_process(self):
        model = CostModel()
        # A workload sized so spin-up is the deciding term.
        count, per_point = 40, 2e-3
        cold = model.plan(count, per_point, workers=4, pool_warm=False)
        warm = model.plan(count, per_point, workers=4, pool_warm=True)
        assert (warm.predictions["process"]
                < cold.predictions["process"])
        assert cold.predictions["process"] - warm.predictions["process"] \
            == pytest.approx(model.spinup_seconds)

    def test_near_tie_resolves_to_serial(self):
        model = CostModel(min_speedup=1.2)
        # Find a size where parallel wins by less than the threshold.
        plan = model.plan(30, 120e-6, workers=2)
        ratio = (plan.predictions["serial"]
                 / min(plan.predictions["thread"],
                       plan.predictions["process"]))
        if ratio < 1.2:
            assert plan.backend == "serial"

    def test_payload_cost_charged_per_point(self):
        model = CostModel()
        small = model.predict("process", 100, 1e-3, 100.0, 1000.0, 4,
                              10, True)
        large = model.predict("process", 100, 1e-3, 1e6, 1000.0, 4,
                              10, True)
        assert large > small

    def test_chunk_size_targets_waves_per_worker(self):
        model = CostModel(chunks_per_worker=4)
        assert model.chunk_size_for(160, 4) == 10
        assert model.chunk_size_for(3, 4) == 1

    def test_unknown_backend_raises(self):
        with pytest.raises(ValueError):
            CostModel().predict("gpu", 10, 1e-3, 1.0, 1.0, 2, 1, False)

    def test_plan_summary_is_informative(self):
        plan = CostModel().plan(500, 1.5e-3, workers=4)
        text = plan.summary()
        assert "process" in text
        assert "serial=" in text


class TestCalibration:
    def test_observe_updates_spinup_from_cold_start(self):
        model = CostModel(spinup_seconds=0.08, ewma=0.5)
        model.observe(DispatchStats(spinup_seconds=0.2, pool_reused=False))
        assert model.spinup_seconds == pytest.approx(0.14)

    def test_observe_ignores_reused_pool_spinup(self):
        model = CostModel(spinup_seconds=0.08)
        model.observe(DispatchStats(spinup_seconds=0.0, pool_reused=True))
        assert model.spinup_seconds == 0.08

    def test_observe_only_shrinks_chunk_overhead(self):
        # Chunk latency includes compute: a busy chunk must not inflate
        # the overhead estimate, a fast one may shrink it.
        model = CostModel(chunk_seconds=2e-3, ewma=0.5)
        model.observe(DispatchStats(chunk_seconds=[0.5, 0.6, 0.7]))
        assert model.chunk_seconds == 2e-3
        model.observe(DispatchStats(chunk_seconds=[1e-3, 1e-3, 1e-3]))
        assert model.chunk_seconds == pytest.approx(1.5e-3)

    def test_observe_none_is_noop(self):
        model = CostModel()
        before = model.spinup_seconds
        model.observe(None)
        assert model.spinup_seconds == before

    def test_default_model_is_shared_and_copyable(self):
        clone = DEFAULT_COST_MODEL.copy()
        assert clone is not DEFAULT_COST_MODEL
        assert isinstance(clone.plan(10, 1e-3), DispatchPlan)

"""Batched-vs-scalar DC parity: the blocked solve must be invisible.

The contract under test: routing a sweep chunk through
``BlockedDCSweep.evaluate_batch`` (one stacked Newton for the whole
chunk) instead of per-point ``solve_dc`` calls changes *nothing*
observable — values are bit-identical, failed points produce identical
:class:`~repro.sweep.FailedPoint` records (same error repr, same
:class:`~repro.errors.ConvergenceReport` forensics, same attempt
counts), under every executor and every ``on_error`` policy.

The injected non-convergent lane is a NaN source level: a non-finite
residual defeats Newton, every gmin rung and source stepping alike, so
the failure is deterministic and identical in scalar and batched runs
(the batched path's failed lanes re-live the scalar ladder exactly).
"""

from pathlib import Path

import numpy as np
import pytest

from repro.errors import ConvergenceError, SweepError
from repro.spice.dcop import (
    Tolerances,
    newton_solve,
    newton_solve_batched,
    solve_dc,
    solve_dc_batched,
)
from repro.spice.engine import DenseLUSolver, SparseLUSolver, resolve_engine
from repro.spice.parser import parse_deck
from repro.sweep import BlockedDCSweep, node_voltage, run_sweep

DECKS = Path(__file__).resolve().parents[2] / "examples" / "decks"
DECK_TEXT = (DECKS / "ce_stage.cir").read_text()

#: Sweep levels for the CE stage's base source; chosen to bias the BJT
#: from near-off through active so lanes converge on different paths.
VB_LEVELS = [0.55, 0.62, 0.68, 0.72, 0.75, 0.78, 0.80, 0.82]

EXECUTOR_MATRIX = (
    {"executor": "serial"},
    {"executor": "thread", "jobs": 2},
    {"executor": "process", "jobs": 2},
    {"executor": "auto"},
)


def _points(inject_failure=False):
    levels = list(VB_LEVELS)
    if inject_failure:
        levels[3] = float("nan")
    return [{"VB": level} for level in levels]


def _failure_records(result):
    # repr() the params/report: the injected level is NaN, and NaN != NaN
    # would make identical records compare unequal.
    return [
        (f.index, repr(f.params), f.error, f.error_type, f.attempts,
         repr(f.report))
        for f in result.failures
    ]


class TestBlockedSolverParity:
    """The engine-layer stack: batched Newton vs scalar Newton."""

    def test_newton_stack_bitwise_equals_scalar_lanes(self):
        deck = parse_deck(DECK_TEXT)
        circuit = deck.circuit
        circuit.assign_indices()
        engine = resolve_engine(circuit, None)
        tolerances = Tolerances()
        size = circuit.num_unknowns

        deltas = []
        base = circuit.element("VB").source_value(None)
        row, coeff = circuit.element("VB").rhs_rows()[0]
        for level in VB_LEVELS:
            delta = np.zeros(size)
            delta[row] = coeff * (level - base)
            deltas.append(delta)

        stack, converged = newton_solve_batched(
            circuit, np.zeros((len(deltas), size)), tolerances, 1e-12,
            rhs_deltas=deltas, engine=engine,
        )
        assert converged.all()
        for delta, lane in zip(deltas, stack):
            scalar = newton_solve(
                circuit, np.zeros(size), tolerances, 1e-12,
                engine=engine, jacobian_token=("dc",), rhs_delta=delta,
            )
            np.testing.assert_array_equal(lane, scalar)

    def test_solve_dc_batched_matches_scalar_ladder(self):
        deck = parse_deck(DECK_TEXT)
        circuit = deck.circuit
        circuit.assign_indices()
        size = circuit.num_unknowns
        row, coeff = circuit.element("VB").rhs_rows()[0]
        base = circuit.element("VB").source_value(None)
        deltas = []
        for level in [0.6, float("nan"), 0.8]:
            delta = np.zeros(size)
            delta[row] = coeff * (level - base)
            deltas.append(delta)

        x, errors = solve_dc_batched(circuit, deltas)
        assert errors[0] is None and errors[2] is None
        assert isinstance(errors[1], ConvergenceError)
        assert np.isnan(x[1]).all()
        for k in (0, 2):
            np.testing.assert_array_equal(
                x[k], solve_dc(circuit, rhs_delta=deltas[k])
            )
        with pytest.raises(ConvergenceError) as excinfo:
            solve_dc(circuit, rhs_delta=deltas[1])
        assert str(excinfo.value) == str(errors[1])
        assert excinfo.value.report.stage == errors[1].report.stage

    @pytest.mark.parametrize("solver_cls", (DenseLUSolver, SparseLUSolver))
    def test_solve_batched_exact_bitwise_per_backend(self, solver_cls):
        rng = np.random.default_rng(7)
        systems = rng.standard_normal((5, 6, 6)) + 3.0 * np.eye(6)
        rhs = rng.standard_normal((5, 6))
        solver = solver_cls()
        batched = solver.solve_batched_exact(systems, rhs)
        for k in range(5):
            np.testing.assert_array_equal(
                batched[k], solver.solve(systems[k], rhs[k])
            )

    @pytest.mark.parametrize("solver_cls", (DenseLUSolver, SparseLUSolver))
    def test_solve_batched_exact_nan_fills_singular_lane(self, solver_cls):
        systems = np.stack([np.eye(3), np.zeros((3, 3)), 2.0 * np.eye(3)])
        rhs = np.ones((3, 3))
        out = solver_cls().solve_batched_exact(systems, rhs)
        np.testing.assert_array_equal(out[0], np.ones(3))
        assert np.isnan(out[1]).all()
        np.testing.assert_array_equal(out[2], 0.5 * np.ones(3))


class TestSweepParityMatrix:
    """Every executor x every on_error policy x an injected bad lane."""

    @pytest.fixture(scope="class")
    def evaluator(self):
        return BlockedDCSweep(DECK_TEXT, measure=node_voltage("c"))

    @pytest.fixture(scope="class")
    def scalar_reference(self, evaluator):
        return {
            policy: run_sweep(evaluator, _points(inject_failure=True),
                              batch=False, on_error=policy, chunk_size=4)
            for policy in ("skip", "retry")
        }

    @pytest.mark.parametrize("backend", EXECUTOR_MATRIX,
                             ids=lambda kw: kw["executor"])
    @pytest.mark.parametrize("policy", ("skip", "retry"))
    def test_bit_identical_values_and_failures(self, evaluator,
                                               scalar_reference, backend,
                                               policy):
        reference = scalar_reference[policy]
        run = run_sweep(evaluator, _points(inject_failure=True),
                        batch="auto", on_error=policy, chunk_size=4,
                        **backend)
        assert run.values == reference.values
        assert _failure_records(run) == _failure_records(reference)
        assert run.stats.failures == 1
        if policy == "retry":
            assert run.stats.retries == reference.stats.retries > 0

    @pytest.mark.parametrize("backend", EXECUTOR_MATRIX,
                             ids=lambda kw: kw["executor"])
    def test_raise_policy_raises_identical_error(self, evaluator, backend):
        with pytest.raises(ConvergenceError) as scalar_exc:
            run_sweep(evaluator, _points(inject_failure=True),
                      batch=False, on_error="raise", chunk_size=4)
        with pytest.raises(ConvergenceError) as batched_exc:
            run_sweep(evaluator, _points(inject_failure=True),
                      batch="auto", on_error="raise", chunk_size=4,
                      **backend)
        assert str(batched_exc.value) == str(scalar_exc.value)
        assert (batched_exc.value.report.stage
                == scalar_exc.value.report.stage)

    @pytest.mark.parametrize("backend", EXECUTOR_MATRIX,
                             ids=lambda kw: kw["executor"])
    def test_clean_sweep_bit_identical(self, evaluator, backend):
        reference = run_sweep(evaluator, _points(), batch=False,
                              chunk_size=3)
        run = run_sweep(evaluator, _points(), batch="auto", chunk_size=3,
                        **backend)
        assert run.values == reference.values
        assert run.ok


class TestBatchOptIn:
    def test_batch_true_requires_capability(self):
        with pytest.raises(SweepError, match="supports_batch"):
            run_sweep(lambda p: p["x"], [{"x": 1}], batch=True)

    def test_batch_false_uses_scalar_path(self):
        calls = []

        class Spy(BlockedDCSweep):
            def evaluate_batch(self, chunk_params):
                calls.append(len(chunk_params))
                return super().evaluate_batch(chunk_params)

        spy = Spy(DECK_TEXT, measure=node_voltage("c"))
        run_sweep(spy, _points(), batch=False, chunk_size=4)
        assert calls == []
        run_sweep(spy, _points(), batch="auto", chunk_size=4)
        assert sum(calls) == len(VB_LEVELS)

    def test_seeded_points_fall_back_to_scalar(self):
        calls = []

        class Spy(BlockedDCSweep):
            def evaluate_batch(self, chunk_params):
                calls.append(len(chunk_params))
                return super().evaluate_batch(chunk_params)

            def __call__(self, params, attempt=0, rng=None):
                return super().__call__(params, attempt=attempt)

        from repro.sweep import SweepPoint

        spy = Spy(DECK_TEXT, measure=node_voltage("c"))
        points = [SweepPoint(index=i, params={"VB": v}, seed=i)
                  for i, v in enumerate(VB_LEVELS)]
        result = run_sweep(spy, points, batch="auto", chunk_size=4)
        assert calls == []
        assert result.ok

    def test_unknown_parameter_is_a_sweep_error(self):
        fn = BlockedDCSweep(DECK_TEXT)
        with pytest.raises(SweepError, match="no element named"):
            fn({"VBOGUS": 1.0})

    def test_non_source_parameter_is_a_sweep_error(self):
        fn = BlockedDCSweep(DECK_TEXT)
        with pytest.raises(SweepError, match="independent DC source"):
            fn({"RC": 2e3})

    def test_deck_must_be_text(self):
        with pytest.raises(SweepError, match="deck text"):
            BlockedDCSweep(parse_deck(DECK_TEXT))


class TestCacheTag:
    def test_cache_tag_distinguishes_decks_and_measures(self):
        a = BlockedDCSweep(DECK_TEXT)
        b = BlockedDCSweep(DECK_TEXT + "\n* trailing comment")
        c = BlockedDCSweep(DECK_TEXT, measure=node_voltage("c"))
        tags = {a.__cache_tag__, b.__cache_tag__, c.__cache_tag__}
        assert len(tags) == 3

    def test_run_sweep_cache_uses_the_tag(self):
        from repro.sweep import ResultCache
        from repro.sweep.orchestrator import _evaluation_tag

        fn = BlockedDCSweep(DECK_TEXT, measure=node_voltage("c"))
        assert _evaluation_tag(fn, require_code=True) == fn.__cache_tag__

        cache = ResultCache()
        first = run_sweep(fn, _points(), cache=cache, chunk_size=4)
        second = run_sweep(fn, _points(), cache=cache, chunk_size=4)
        assert second.values == first.values
        assert second.stats.cache_hits == len(VB_LEVELS)
        assert second.stats.evaluated == 0

    def test_pickle_round_trip_preserves_identity(self):
        import pickle

        fn = BlockedDCSweep(DECK_TEXT, measure=node_voltage("c"))
        clone = pickle.loads(pickle.dumps(fn))
        assert clone.__cache_tag__ == fn.__cache_tag__
        assert clone({"VB": 0.75}) == fn({"VB": 0.75})

"""Executor layer contracts: validation, persistent pools, dispatch stats.

The process backend is *persistent*: pools outlive ``map_chunks`` calls
and workers cache the deserialized evaluation function by content hash.
These tests pin the lifecycle (reuse, discard, fault recovery hook), the
worker count validation introduced with :class:`~repro.errors.SweepError`
(``workers < 1`` used to silently degrade to serial), and the
:class:`~repro.sweep.DispatchStats` observability record the cost model
feeds on.
"""

import pickle

import pytest

from repro.errors import AnalysisError, SweepError
from repro.sweep import (
    AutoExecutor,
    DispatchStats,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    pool_is_warm,
    resolve_executor,
    run_sweep,
    shutdown_pools,
)
from repro.sweep.executors import worker_fn_loads


def _chunk_sum(chunk):
    return sum(chunk)


def _chunk_loads(chunk):
    # Runs worker-side: reports how many function payloads this worker
    # has deserialized so far (the once-per-worker cache contract).
    return worker_fn_loads()


class TestWorkerValidation:
    @pytest.mark.parametrize("backend", (ThreadExecutor, ProcessExecutor))
    @pytest.mark.parametrize("jobs", (0, -1, -8))
    def test_nonpositive_worker_count_raises(self, backend, jobs):
        with pytest.raises(SweepError, match="at least 1 worker"):
            backend(jobs)

    @pytest.mark.parametrize("backend", (ThreadExecutor, ProcessExecutor))
    @pytest.mark.parametrize("jobs", (2.0, "4", True))
    def test_non_integer_worker_count_raises(self, backend, jobs):
        with pytest.raises(SweepError, match="positive integer"):
            backend(jobs)

    def test_default_worker_count_still_allowed(self):
        assert ProcessExecutor().workers >= 1
        assert ThreadExecutor(3).workers == 3

    @pytest.mark.parametrize("jobs", (0, -2))
    def test_resolve_executor_rejects_bad_jobs(self, jobs):
        with pytest.raises(SweepError):
            resolve_executor(None, jobs)
        with pytest.raises(SweepError):
            resolve_executor("thread", jobs)

    def test_run_sweep_surfaces_validation(self):
        with pytest.raises(SweepError):
            run_sweep(_chunk_sum, [{"x": 1}], jobs=0)


class TestResolveExecutor:
    def test_auto_strings_resolve_to_auto_executor(self):
        assert isinstance(resolve_executor("auto", None), AutoExecutor)
        assert isinstance(resolve_executor(None, "auto"), AutoExecutor)
        assert isinstance(resolve_executor("auto", "auto"), AutoExecutor)

    def test_auto_with_explicit_jobs_keeps_the_count(self):
        backend = resolve_executor("auto", 3)
        assert isinstance(backend, AutoExecutor)
        assert backend.workers == 3

    def test_unknown_backend_mentions_auto(self):
        with pytest.raises(AnalysisError, match="auto"):
            resolve_executor("gpu", None)


class TestPersistentPool:
    def test_pool_survives_map_chunks_calls(self):
        shutdown_pools()
        backend = ProcessExecutor(2)
        chunks = [[1, 2], [3, 4], [5, 6], [7, 8]]
        first = backend.map_chunks(_chunk_sum, chunks)
        assert first == [3, 7, 11, 15]
        assert backend.dispatch.pool_reused is False
        assert backend.dispatch.spinup_seconds > 0.0
        assert pool_is_warm(2)

        again = backend.map_chunks(_chunk_sum, chunks)
        assert again == first
        assert backend.dispatch.pool_reused is True
        assert backend.dispatch.spinup_seconds == 0.0

    def test_pool_shared_across_executor_instances(self):
        shutdown_pools()
        chunks = [[1], [2], [3], [4]]
        ProcessExecutor(2).map_chunks(_chunk_sum, chunks)
        other = ProcessExecutor(2)
        other.map_chunks(_chunk_sum, chunks)
        assert other.dispatch.pool_reused is True

    def test_discard_pool_forces_fresh_spawn(self):
        shutdown_pools()
        backend = ProcessExecutor(2)
        chunks = [[1], [2], [3], [4]]
        backend.map_chunks(_chunk_sum, chunks)
        backend.discard_pool()
        assert not pool_is_warm(2)
        backend.map_chunks(_chunk_sum, chunks)
        assert backend.dispatch.pool_reused is False

    def test_worker_function_cache_loads_once_per_worker(self):
        shutdown_pools()
        backend = ProcessExecutor(2)
        # Many chunks across few workers: each worker must deserialize
        # the function at most once, however many chunks it executes.
        chunks = [[i] for i in range(12)]
        backend.map_chunks(_chunk_sum, chunks)
        loads = backend.map_chunks(_chunk_loads, chunks)
        # Each worker has loaded at most the two functions sent so far.
        assert max(loads) <= 2

    def test_serial_fallback_for_single_chunk(self):
        shutdown_pools()
        backend = ProcessExecutor(2)
        assert backend.map_chunks(_chunk_sum, [[1, 2, 3]]) == [6]
        # One chunk can't use two workers: stays in-process, no payload.
        assert backend.dispatch.payload_bytes == 0
        assert not pool_is_warm(2)


class TestDispatchStats:
    def test_process_dispatch_accounts_payload(self):
        shutdown_pools()
        backend = ProcessExecutor(2)
        chunks = [[1, 2], [3, 4], [5, 6], [7, 8]]
        backend.map_chunks(_chunk_sum, chunks)
        stats = backend.dispatch
        blob_bytes = sum(
            len(pickle.dumps(c, protocol=pickle.HIGHEST_PROTOCOL))
            for c in chunks
        )
        assert stats.fn_bytes > 0
        # Payload = chunk blobs + one function payload per warm-up task.
        assert stats.payload_bytes >= blob_bytes + stats.fn_bytes
        assert len(stats.chunk_seconds) == len(chunks)
        assert stats.chunk_percentile(0.5) <= stats.chunk_percentile(0.99)

    def test_serial_and_thread_record_chunk_latencies(self):
        serial = SerialExecutor()
        serial.map_chunks(_chunk_sum, [[1], [2]])
        assert len(serial.dispatch.chunk_seconds) == 2
        assert serial.dispatch.payload_bytes == 0

        thread = ThreadExecutor(2)
        thread.map_chunks(_chunk_sum, [[1], [2], [3]])
        assert len(thread.dispatch.chunk_seconds) == 3

    def test_percentile_of_empty_is_zero(self):
        assert DispatchStats().chunk_percentile(0.5) == 0.0


class TestOrderPreservation:
    @pytest.mark.parametrize("make",
                             (SerialExecutor, lambda: ThreadExecutor(2),
                              lambda: ProcessExecutor(2)))
    def test_results_in_submission_order(self, make):
        shutdown_pools()
        backend = make()
        chunks = [[i] for i in range(10)]
        assert backend.map_chunks(_chunk_sum, chunks) == list(range(10))

"""Multi-deck execution through the sweep engine and the CLI."""

from pathlib import Path

import pytest

from repro.cli import main
from repro.spice.runner import DeckSummary, run_decks

DECKS = Path(__file__).resolve().parents[2] / "examples" / "decks"

OP_DECK = "sweep deck {n}\nV1 a 0 {v}\nR1 a 0 1k\n.OP\n.END\n"


@pytest.fixture()
def two_decks(tmp_path):
    paths = []
    for n, v in ((1, 2.0), (2, 5.0)):
        deck = tmp_path / f"deck{n}.cir"
        deck.write_text(OP_DECK.format(n=n, v=v))
        paths.append(deck)
    return paths


class TestRunDecks:
    def test_results_in_input_order(self, two_decks):
        summaries = run_decks(two_decks)
        assert [s.title for s in summaries] == ["sweep deck 1",
                                                "sweep deck 2"]
        assert all(isinstance(s, DeckSummary) for s in summaries)
        assert "V(a) = 2" in summaries[0].summary
        assert "V(a) = 5" in summaries[1].summary

    def test_parallel_matches_serial(self, two_decks):
        serial = run_decks(two_decks)
        parallel = run_decks(two_decks, jobs=2)
        assert [s.summary for s in parallel] == [s.summary
                                                for s in serial]

    def test_example_decks_run(self):
        summaries = run_decks([DECKS / "ce_stage.cir",
                               DECKS / "noise_bench.cir"])
        assert ".AC sweep" in summaries[0].summary
        assert ".NOISE" in summaries[1].summary

    def test_profile_is_captured(self, two_decks):
        summaries = run_decks(two_decks[:1])
        assert "engine profile:" in summaries[0].profile


class TestCLIJobs:
    def test_multiple_decks(self, two_decks, capsys):
        assert main(["run", str(two_decks[0]), str(two_decks[1])]) == 0
        out = capsys.readouterr().out
        assert "sweep deck 1" in out and "sweep deck 2" in out

    def test_jobs_flag(self, two_decks, capsys):
        assert main(["run", str(two_decks[0]), str(two_decks[1]),
                     "--jobs", "2"]) == 0
        out = capsys.readouterr().out
        assert "V(a) = 2" in out and "V(a) = 5" in out

    def test_single_deck_with_jobs_goes_through_sweep_path(
            self, two_decks, capsys):
        assert main(["run", str(two_decks[0]), "--jobs", "1"]) == 0
        assert "V(a) = 2" in capsys.readouterr().out

    def test_profile_with_multiple_decks(self, two_decks, capsys):
        assert main(["run", str(two_decks[0]), str(two_decks[1]),
                     "--profile"]) == 0
        out = capsys.readouterr().out
        assert out.count("engine profile:") == 2

    def test_missing_deck_among_many(self, two_decks, capsys):
        assert main(["run", str(two_decks[0]),
                     "/nonexistent.cir"]) == 1
        assert "error" in capsys.readouterr().err


BAD_DECK = """non-convergent bench
V1 in 0 5
R1 in out 1k
D1 out 0 DMOD
.MODEL DMOD D(IS=1e-14)
.OPTIONS RELTOL=0 VNTOL=1e-30 ABSTOL=1e-30 ITL1=30
.OP
.END
"""


@pytest.fixture()
def mixed_decks(two_decks, tmp_path):
    bad = tmp_path / "bad.cir"
    bad.write_text(BAD_DECK)
    return [two_decks[0], bad, two_decks[1]]


class TestFaultTolerantDecks:
    def test_raise_policy_aborts(self, mixed_decks):
        from repro.errors import ConvergenceError

        with pytest.raises(ConvergenceError):
            run_decks(mixed_decks)

    def test_skip_policy_reports_and_continues(self, mixed_decks):
        summaries = run_decks(mixed_decks, on_error="skip")
        assert [s.ok for s in summaries] == [True, False, True]
        failed = summaries[1]
        assert failed.error is not None
        assert "ConvergenceError" in failed.error
        assert "convergence report: stage=" in failed.summary
        assert str(mixed_decks[1]) in failed.summary
        # The good decks still produced their results, in input order.
        assert summaries[0].title == "sweep deck 1"
        assert summaries[2].title == "sweep deck 2"

    def test_skip_policy_parallel(self, mixed_decks):
        serial = run_decks(mixed_decks, on_error="skip")
        parallel = run_decks(mixed_decks, jobs=2, on_error="skip")
        assert [s.ok for s in parallel] == [s.ok for s in serial]
        assert [s.summary for s in parallel] == [s.summary for s in serial]

    def test_shipped_nonconvergent_example_deck_fails(self):
        deck = DECKS / "nonconvergent.cir"
        summaries = run_decks([deck], on_error="skip")
        assert not summaries[0].ok

    def test_cli_on_error_skip_exits_zero(self, mixed_decks, capsys):
        code = main(["run"] + [str(p) for p in mixed_decks]
                    + ["--jobs", "2", "--on-error", "skip"])
        assert code == 0
        captured = capsys.readouterr()
        assert "1 of 3 deck(s) failed (on_error=skip)" in captured.err
        assert "FAILED (ConvergenceError)" in captured.out
        assert "sweep deck 1" in captured.out

    def test_cli_on_error_raise_propagates(self, mixed_decks, capsys):
        code = main(["run"] + [str(p) for p in mixed_decks])
        assert code == 1
        assert "error" in capsys.readouterr().err

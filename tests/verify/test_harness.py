"""Qualification harness: corner fan-out, reports, specs, caching."""

import math
import pickle

import pytest

from repro.optimize.spec import BoundKind, Spec, SpecSet
from repro.sweep import ResultCache
from repro.verify import (
    CornerEvaluator,
    Measurement,
    QualificationReport,
    StressRule,
    VerificationError,
    ac_bandwidth,
    ac_gain,
    corners_from_tolerances,
    dc_differential,
    dc_voltage,
    default_corners,
    default_measurements,
    qualify_cell,
    qualify_deck,
)

DECK = """* qualification fixture: single-balanced mixer core
.MODEL QGEN NPN(IS=4e-17 BF=90 VAF=45 IKF=3m RB=200 RE=3 RC=90
+ CJE=35f CJC=30f TF=10p)
V1 vcc 0 DC 5
RC1 vcc outp 500
RC2 vcc outn 500
Q1 outp lop com QGEN
Q2 outn lon com QGEN
Q3 com rf 0 QGEN
VLO lop 0 DC 2.5
VLOB lon 0 DC 2.5
VRF rf 0 DC 0.85 AC 1
.AC DEC 5 1MEG 10G
.END
"""

MEASUREMENTS = (
    dc_voltage("v_outp", "outp"),
    dc_differential("v_diff", "outp", "outn"),
    ac_gain("gain_db", "outp"),
    ac_bandwidth("bw_hz", "outp"),
)


def _corners():
    return corners_from_tolerances({"V1": (5.0, 0.1)},
                                   passive_tols={"R": 0.1})


@pytest.fixture(scope="module")
def report():
    return qualify_deck(DECK, _corners(), MEASUREMENTS, name="mixer",
                        executor="serial")


class TestMeasurement:
    def test_kinds_map_to_analyses(self):
        assert dc_voltage("v", "outp").analysis == "dc"
        assert ac_gain("g", "outp").analysis == "ac"
        assert ac_bandwidth("b", "outp").analysis == "ac"

    @pytest.mark.parametrize("bad", (
        dict(name="", kind="dc_voltage", node="outp"),
        dict(name="x", kind="bogus", node="outp"),
        dict(name="x", kind="dc_voltage", node=""),
        dict(name="x", kind="dc_differential", node="outp"),
    ))
    def test_rejects_malformed(self, bad):
        with pytest.raises(VerificationError):
            Measurement(**bad)

    def test_round_trip(self):
        m = Measurement("g", "ac_gain_db", "outp", frequency=1e8)
        assert Measurement.from_dict(m.to_dict()) == m


class TestQualifyDeck:
    def test_one_outcome_per_corner_in_order(self, report):
        corners = _corners()
        assert len(report) == 27
        assert [o.corner for o in report.outcomes] == \
            [c.name for c in corners]
        assert all(o.solved for o in report.outcomes)

    def test_measurements_and_quantities_recorded(self, report):
        outcome = report.outcomes[0]
        assert set(outcome.measurements) == {"v_outp", "v_diff",
                                             "gain_db", "bw_hz"}
        assert set(outcome.quantities) >= {"Q1", "Q2", "Q3", "RC1", "V1"}
        assert outcome.quantities["Q3"]["ic_a"] > 0.0

    def test_envelope_and_nominal(self, report):
        env = report.envelope()
        assert env["v_outp"]["min"] < env["v_outp"]["max"]
        # Low resistors + high supply give the highest DC output level.
        assert env["v_outp"]["max_corner"] == "temp=-20C/R=lo/V1=max"
        nominal = report.nominal_measurements()
        assert report.stats["nominal_corner"] == "temp=27C/R=nom/V1=nom"
        assert env["v_outp"]["min"] <= nominal["v_outp"] \
            <= env["v_outp"]["max"]

    def test_default_rules_pass(self, report):
        assert report.passed()
        assert report.violations() == []
        assert report.stats["failures"] == 0
        assert report.stats["points"] == 27

    def test_tightened_stress_rule_fails_with_named_device(self):
        rules = (StressRule("tight", "bjt", "ic_a", limit=2e-3),)
        flagged = qualify_deck(DECK, _corners(), MEASUREMENTS,
                               rules=rules, executor="serial")
        assert not flagged.passed()
        assert flagged.error_violation_count() > 0
        corner, violation = flagged.violations()[0]
        assert violation.device == "Q3"  # the tail device carries 2x Ic
        assert corner in {c.name for c in _corners()}
        assert "Q3" in flagged.table()

    def test_warn_severity_does_not_fail(self):
        rules = (StressRule("warn-ic", "bjt", "ic_a", limit=2e-3,
                            severity="warn"),)
        flagged = qualify_deck(DECK, _corners(), MEASUREMENTS,
                               rules=rules, executor="serial")
        assert flagged.passed()
        assert len(flagged.violations()) > 0
        assert flagged.error_violation_count() == 0

    def test_spec_headroom_judges_worst_corner(self, report):
        env = report.envelope()
        specs = SpecSet("mixer", [
            Spec("gain_db", env["gain_db"]["min"] - 1.0,
                 kind=BoundKind.LOWER),
            Spec("v_outp", env["v_outp"]["max"] - 0.1,
                 kind=BoundKind.UPPER),
        ])
        rows = {h.spec: h for h in report.headroom(specs)}
        assert rows["gain_db"].satisfied
        assert rows["gain_db"].corner == env["gain_db"]["min_corner"]
        assert not rows["v_outp"].satisfied
        assert rows["v_outp"].measured == env["v_outp"]["max"]
        assert not report.passed(specs)

    def test_spec_without_data_never_passes(self, report):
        specs = SpecSet("mixer", [Spec("unmeasured", 1.0,
                                       kind=BoundKind.LOWER)])
        (row,) = report.headroom(specs)
        assert math.isnan(row.measured)
        assert not row.satisfied
        assert not report.passed(specs)

    def test_json_round_trip(self, report):
        rebuilt = QualificationReport.from_json(report.to_json())
        assert rebuilt.envelope() == report.envelope()
        assert rebuilt.passed() == report.passed()
        assert [o.to_dict() for o in rebuilt.outcomes] == \
            [o.to_dict() for o in report.outcomes]

    def test_measurement_error_becomes_failed_corners(self):
        bad = (dc_voltage("v_missing", "no_such_node"),)
        report = qualify_deck(DECK, _corners(), bad, executor="serial",
                              on_error="skip")
        assert len(report.failed_corners()) == 27
        assert not report.passed()
        failure = report.outcomes[0].failure
        assert "no_such_node" in failure["error"]
        assert "FAILED" in report.table()


class TestCornerEvaluator:
    def test_needs_deck_text_and_corner_set(self):
        with pytest.raises(VerificationError, match="deck text"):
            CornerEvaluator(object(), _corners(), MEASUREMENTS)
        with pytest.raises(VerificationError, match="CornerSet"):
            CornerEvaluator(DECK, [1, 2], MEASUREMENTS)
        with pytest.raises(VerificationError, match="measurement"):
            CornerEvaluator(DECK, _corners(), ())

    def test_prime_compiles_one_deck_per_group(self):
        evaluator = CornerEvaluator(DECK, _corners(), MEASUREMENTS)
        assert evaluator.prime() == 9  # 3 temps x 3 R scales
        compiled = evaluator.compilations()
        assert compiled > 0
        # Evaluating after prime never recompiles: the service's
        # recompile guard watches exactly this invariant.
        qualify_deck(DECK, _corners(), MEASUREMENTS,
                     executor="serial", evaluator=evaluator)
        assert evaluator.compilations() == compiled

    def test_cache_tag_distinguishes_configs(self):
        base = CornerEvaluator(DECK, _corners(), MEASUREMENTS)
        other_deck = CornerEvaluator(DECK + "\n* note", _corners(),
                                     MEASUREMENTS)
        other_meas = CornerEvaluator(DECK, _corners(),
                                     (dc_voltage("v", "outn"),))
        other_rules = CornerEvaluator(
            DECK, _corners(), MEASUREMENTS,
            rules=(StressRule("x", "bjt", "ic_a", limit=1.0),))
        tags = {base.__cache_tag__, other_deck.__cache_tag__,
                other_meas.__cache_tag__, other_rules.__cache_tag__}
        assert len(tags) == 4

    def test_pickle_round_trip(self):
        evaluator = CornerEvaluator(DECK, _corners(), MEASUREMENTS)
        clone = pickle.loads(pickle.dumps(evaluator))
        assert clone.__cache_tag__ == evaluator.__cache_tag__
        point = _corners().nominal().values
        assert clone(dict(point)) == evaluator(dict(point))

    def test_result_cache_spans_runs(self):
        cache = ResultCache()
        first = qualify_deck(DECK, _corners(), MEASUREMENTS,
                             executor="serial", cache=cache)
        second = qualify_deck(DECK, _corners(), MEASUREMENTS,
                              executor="serial", cache=cache)
        assert second.stats["cache_hits"] == 27
        assert second.stats["evaluated"] == 0
        assert second.envelope() == first.envelope()

    def test_missing_axis_value_is_an_error(self):
        evaluator = CornerEvaluator(DECK, _corners(), MEASUREMENTS)
        with pytest.raises(VerificationError, match="axis"):
            evaluator({"V1": 5.0})


class TestDefaults:
    def test_default_corners_pick_the_supply(self):
        corners = default_corners(DECK)
        assert len(corners) == 27
        supply = corners.axis("V1")
        assert supply.target == "V1"
        assert supply.value_of("nom") == 5.0

    def test_default_measurements_cover_outputs_and_ac(self):
        names = {m.name for m in default_measurements(DECK)}
        assert {"v_outp", "v_outn", "gain_db_outp",
                "bw_hz_outp"} <= names

    def test_qualify_cell_uses_the_schematic(self):
        from repro.celldb.seed import seed_database

        cells = {c.name: c for c in seed_database().cells()}
        report = qualify_cell(cells["PHASE90-IF"], executor="serial")
        assert report.name == "PHASE90-IF"
        assert len(report) == 27
        assert report.passed()

    def test_qualify_cell_without_schematic_is_an_error(self):
        from repro.celldb.seed import seed_database

        cells = {c.name: c for c in seed_database().cells()}
        with pytest.raises(VerificationError, match="schematic"):
            qualify_cell(cells["IF-BPF-1300"])

"""Bit-identity of qualification across every sweep executor.

Mirrors ``tests/sweep/test_batched_dc.py``: the serial *scalar* path
(``batch=False``) is the reference; serial/thread/process/auto blocked
runs must reproduce its corner outcomes, stress verdicts, and failure
records exactly.
"""

import pytest

from repro.verify import (
    StressRule,
    ac_bandwidth,
    ac_gain,
    corners_from_tolerances,
    dc_differential,
    dc_voltage,
    qualify_deck,
)

DECK = """* parity fixture: single-balanced mixer core
.MODEL QGEN NPN(IS=4e-17 BF=90 VAF=45 IKF=3m RB=200 RE=3 RC=90
+ CJE=35f CJC=30f TF=10p)
V1 vcc 0 DC 5
RC1 vcc outp 500
RC2 vcc outn 500
Q1 outp lop com QGEN
Q2 outn lon com QGEN
Q3 com rf 0 QGEN
VLO lop 0 DC 2.5
VLOB lon 0 DC 2.5
VRF rf 0 DC 0.85 AC 1
.AC DEC 5 1MEG 10G
.END
"""

MEASUREMENTS = (
    dc_voltage("v_outp", "outp"),
    dc_differential("v_diff", "outp", "outn"),
    ac_gain("gain_db", "outp"),
    ac_bandwidth("bw_hz", "outp"),
)

# A rule tight enough to fire at some corners keeps stress verdicts in
# the comparison, not just measurements.
RULES = (
    StressRule("ic", "bjt", "ic_a", limit=20e-3),
    StressRule("edge", "resistor", "power_w", limit=35e-6),
)

BAD_MEASUREMENTS = (dc_voltage("v_missing", "no_such_node"),)

EXECUTOR_MATRIX = (
    {"executor": "serial"},
    {"executor": "thread", "jobs": 2},
    {"executor": "process", "jobs": 2},
    {"executor": "auto"},
)


def _corners():
    return corners_from_tolerances({"V1": (5.0, 0.1)},
                                   passive_tols={"R": 0.1})


def _outcome_records(report):
    return [outcome.to_dict() for outcome in report.outcomes]


@pytest.fixture(scope="module")
def scalar_reference():
    return qualify_deck(DECK, _corners(), MEASUREMENTS, rules=RULES,
                        executor="serial", batch=False)


@pytest.fixture(scope="module")
def scalar_failure_reference():
    return qualify_deck(DECK, _corners(), BAD_MEASUREMENTS,
                        executor="serial", batch=False,
                        on_error="skip")


class TestCleanParity:
    def test_scalar_reference_is_clean(self, scalar_reference):
        assert scalar_reference.stats["failures"] == 0
        assert len(scalar_reference.violations()) > 0

    @pytest.mark.parametrize(
        "config", EXECUTOR_MATRIX,
        ids=lambda c: c["executor"])
    def test_blocked_outcomes_match_scalar(self, config,
                                           scalar_reference):
        report = qualify_deck(DECK, _corners(), MEASUREMENTS,
                              rules=RULES, batch="auto", **config)
        assert _outcome_records(report) == \
            _outcome_records(scalar_reference)
        assert report.envelope() == scalar_reference.envelope()
        assert [(c, v.to_dict()) for c, v in report.violations()] == \
            [(c, v.to_dict())
             for c, v in scalar_reference.violations()]
        assert report.passed() == scalar_reference.passed()


class TestFailureParity:
    def test_scalar_reference_fails_every_corner(
            self, scalar_failure_reference):
        assert len(scalar_failure_reference.failed_corners()) == 27

    @pytest.mark.parametrize(
        "config", EXECUTOR_MATRIX,
        ids=lambda c: c["executor"])
    def test_blocked_failure_records_match_scalar(
            self, config, scalar_failure_reference):
        report = qualify_deck(DECK, _corners(), BAD_MEASUREMENTS,
                              batch="auto", on_error="skip", **config)
        assert _outcome_records(report) == \
            _outcome_records(scalar_failure_reference)

    def test_retry_policy_attempts_match(self):
        # Netlist errors are not retryable (only ConvergenceError is),
        # so both paths must record exactly one attempt per corner.
        scalar = qualify_deck(DECK, _corners(), BAD_MEASUREMENTS,
                              executor="serial", batch=False,
                              on_error="retry", retries=1)
        blocked = qualify_deck(DECK, _corners(), BAD_MEASUREMENTS,
                               executor="auto", batch="auto",
                               on_error="retry", retries=1)
        assert _outcome_records(blocked) == _outcome_records(scalar)
        assert {o.failure["attempts"] for o in blocked.outcomes} == {1}
        assert blocked.stats["retries"] == scalar.stats["retries"] == 0

"""Corner expansion: deterministic ordering, validation, round-trips."""

import pickle

import pytest

from repro.errors import ReproError
from repro.verify import (
    CornerAxis,
    CornerSet,
    VerificationError,
    corners_from_tolerances,
    scale_axis,
    source_axis,
    temperature_axis,
)


class TestCornerAxis:
    def test_source_axis_min_nom_max(self):
        axis = source_axis("V1", 5.0, 0.1)
        assert axis.kind == "source"
        assert axis.target == "V1"
        assert axis.levels == (("min", 4.5), ("nom", 5.0), ("max", 5.5))
        assert axis.nominal_label == "nom"
        assert not axis.deck_level

    def test_temperature_axis_labels(self):
        axis = temperature_axis((-20, 27, 85))
        assert [label for label, _ in axis.levels] == ["-20C", "27C", "85C"]
        assert axis.deck_level
        assert axis.nominal_label == "27C"

    def test_scale_axis_levels(self):
        axis = scale_axis("r", 0.2)
        assert axis.target == "R"
        assert axis.levels == (("lo", 0.8), ("nom", 1.0), ("hi", 1.2))
        assert axis.deck_level

    def test_nominal_defaults_to_middle_level(self):
        axis = CornerAxis("x", "source",
                          (("a", 1.0), ("b", 2.0), ("c", 3.0)))
        assert axis.nominal_label == "b"

    @pytest.mark.parametrize("bad", (
        dict(name="", kind="source", levels=(("a", 1.0),)),
        dict(name="x", kind="bogus", levels=(("a", 1.0),)),
        dict(name="x", kind="source", levels=()),
        dict(name="x", kind="source", levels=(("a", 1.0), ("a", 2.0))),
        dict(name="x", kind="source", levels=(("a", 1.0), ("b", 1.0))),
        dict(name="x", kind="source", levels=(("a", float("nan")),)),
        dict(name="x", kind="temperature", levels=(("a", -300.0),)),
        dict(name="x", kind="scale", levels=(("a", -0.5),)),
        dict(name="x", kind="scale", levels=(("a", 1.0),), target="Z"),
        dict(name="x", kind="source", levels=(("a", 1.0),),
             nominal_label="zzz"),
    ))
    def test_rejects_malformed_axes(self, bad):
        with pytest.raises(VerificationError):
            CornerAxis(**bad)

    @pytest.mark.parametrize("tol", (0.0, 1.0, -0.1))
    def test_rejects_out_of_range_tolerance(self, tol):
        with pytest.raises(VerificationError):
            source_axis("V1", 5.0, tol)
        with pytest.raises(VerificationError):
            scale_axis("R", tol)

    def test_value_of(self):
        axis = source_axis("V1", 5.0, 0.1)
        assert axis.value_of("min") == 4.5
        with pytest.raises(VerificationError):
            axis.value_of("bogus")

    def test_round_trip(self):
        axis = scale_axis("C", 0.05, name="cap")
        assert CornerAxis.from_dict(axis.to_dict()) == axis

    def test_verification_error_is_repro_error(self):
        assert issubclass(VerificationError, ReproError)


class TestCornerSet:
    def test_full_factorial_odometer_order(self):
        corners = CornerSet([
            CornerAxis("a", "source", (("x", 1.0), ("y", 2.0))),
            CornerAxis("b", "source", (("p", 10.0), ("q", 20.0))),
        ])
        assert [c.labels for c in corners] == [
            ("x", "p"), ("x", "q"), ("y", "p"), ("y", "q"),
        ]
        assert [c.index for c in corners] == [0, 1, 2, 3]
        assert corners[1].name == "a=x/b=q"
        assert corners[1].values == {"a": 1.0, "b": 20.0}

    def test_expansion_is_deterministic(self):
        make = lambda: corners_from_tolerances(  # noqa: E731
            {"V1": (5.0, 0.1)}, passive_tols={"R": 0.1})
        a, b = make(), make()
        assert [c.name for c in a] == [c.name for c in b]
        assert [c.values for c in a] == [c.values for c in b]

    def test_unique_axis_names_required(self):
        axis = source_axis("V1", 5.0, 0.1)
        with pytest.raises(VerificationError, match="unique"):
            CornerSet([axis, axis])

    def test_needs_an_axis(self):
        with pytest.raises(VerificationError):
            CornerSet([])

    def test_nominal_corner(self):
        corners = corners_from_tolerances({"V1": (5.0, 0.1)},
                                          passive_tols={"R": 0.1})
        nominal = corners.nominal()
        assert nominal.name == "temp=27C/R=nom/V1=nom"
        assert nominal.values["V1"] == 5.0
        assert corners.corner_named(nominal.name) is nominal

    def test_axis_split_and_lookup(self):
        corners = corners_from_tolerances({"V1": (5.0, 0.1)},
                                          passive_tols={"R": 0.1})
        assert [a.name for a in corners.deck_axes()] == ["temp", "R"]
        assert [a.name for a in corners.source_axes()] == ["V1"]
        assert corners.axis("temp").kind == "temperature"
        with pytest.raises(VerificationError):
            corners.axis("bogus")

    def test_corners_from_tolerances_default_is_27(self):
        corners = corners_from_tolerances({"V1": (5.0, 0.1)},
                                          passive_tols={"R": 0.1})
        assert len(corners) == 27
        # Deck-level axes lead: corners sharing a derived deck stay
        # adjacent (the harness compiles one deck per 3-corner group).
        first_three = [c.values for c in list(corners)[:3]]
        assert len({(v["temp"], v["R"]) for v in first_three}) == 1

    def test_round_trip_and_pickle(self):
        corners = corners_from_tolerances({"V1": (5.0, 0.1)},
                                          passive_tols={"R": 0.1})
        rebuilt = CornerSet.from_dict(corners.to_dict())
        assert [c.name for c in rebuilt] == [c.name for c in corners]
        cloned = pickle.loads(pickle.dumps(corners))
        assert [c.values for c in cloned] == [c.values for c in corners]

"""CLI coverage: ``repro verify`` and the ``repro run`` cache line."""

import json
from pathlib import Path

import pytest

from repro.cli import main

DECKS = Path(__file__).resolve().parents[2] / "examples" / "decks"


@pytest.fixture()
def deck_path(tmp_path):
    path = tmp_path / "stage.cir"
    path.write_text((DECKS / "ce_stage.cir").read_text())
    return path


class TestVerifyCommand:
    def test_deck_path_prints_the_datasheet_table(self, deck_path,
                                                  capsys):
        assert main(["verify", str(deck_path)]) == 0
        out = capsys.readouterr().out
        assert "corner" in out.lower()
        assert "v_c" in out

    def test_seeded_cell_by_name(self, capsys):
        assert main(["verify", "PHASE90-IF"]) == 0
        out = capsys.readouterr().out
        assert "v_out" in out

    def test_cell_name_is_case_insensitive(self, capsys):
        assert main(["verify", "phase90-if"]) == 0

    def test_json_output(self, deck_path, tmp_path, capsys):
        report_path = tmp_path / "report.json"
        assert main(["verify", str(deck_path),
                     "--json", str(report_path)]) == 0
        record = json.loads(report_path.read_text())
        assert record["schema"] == "repro-qualification-v1"
        assert record["corners"] == 27
        assert record["passed"] is True
        # "-" streams the record to stdout instead of the table.
        capsys.readouterr()
        assert main(["verify", str(deck_path), "--json", "-"]) == 0
        out = capsys.readouterr().out
        assert json.loads(out)["corners"] == 27

    def test_failing_rules_exit_nonzero(self, deck_path, tmp_path,
                                        capsys):
        rules = tmp_path / "rules.json"
        rules.write_text(json.dumps([{
            "name": "impossible", "device": "bjt",
            "quantity": "ic_a", "limit": 1e-12,
        }]))
        assert main(["verify", str(deck_path),
                     "--rules", str(rules)]) == 1
        assert "impossible" in capsys.readouterr().out

    def test_profile_prints_dispatch_and_cache(self, deck_path, capsys):
        assert main(["verify", str(deck_path), "--profile"]) == 0
        out = capsys.readouterr().out
        assert "corners/s" in out
        assert "cache:" in out

    def test_unknown_target_is_an_error(self, capsys):
        assert main(["verify", "NO-SUCH-CELL"]) == 1
        assert "error" in capsys.readouterr().err


class TestRunProfileCacheLine:
    def test_multi_deck_profile_reports_hit_rate(self, capsys):
        assert main(["run", str(DECKS / "ce_stage.cir"),
                     str(DECKS / "noise_bench.cir"), "--profile"]) == 0
        out = capsys.readouterr().out
        assert "cache: hits=" in out
        assert "hit_rate=" in out

"""Stress rules: device quantities, rule matching, table loading."""

import json

import pytest

from repro.spice.dcop import solve_dc
from repro.spice.parser import parse_deck
from repro.verify import (
    DEFAULT_STRESS_RULES,
    StressRule,
    StressViolation,
    VerificationError,
    check_stress,
    device_quantities,
    load_stress_rules,
)

DECK = """* stress fixture: resistively loaded CE stage
.MODEL QX NPN(IS=1e-16 BF=100 RB=100 RE=2 RC=20)
VCC vcc 0 DC 5
VB b 0 DC 0.8
RL vcc c 1k
Q1 c b 0 QX
IBLEED vcc 0 DC 2m
.END
"""


@pytest.fixture(scope="module")
def solved():
    circuit = parse_deck(DECK).circuit
    circuit.assign_indices()
    return circuit, solve_dc(circuit)


class TestDeviceQuantities:
    def test_covers_every_rated_device_in_netlist_order(self, solved):
        circuit, x = solved
        table = device_quantities(circuit, x)
        assert list(table) == ["VCC", "VB", "RL", "Q1", "IBLEED"]
        assert set(table["Q1"]) == {"power_w", "ic_a", "vce_v"}
        assert set(table["RL"]) == {"power_w"}
        assert set(table["VCC"]) == {"current_a"}

    def test_values_are_physical(self, solved):
        circuit, x = solved
        table = device_quantities(circuit, x)
        ic = table["Q1"]["ic_a"]
        vce = table["Q1"]["vce_v"]
        assert 0.0 < ic < 10e-3
        assert 0.0 < vce < 5.0
        # BJT power is dominated by ic*vce; resistor power matches the
        # collector current through the 1k load.
        assert table["Q1"]["power_w"] == pytest.approx(ic * vce, rel=0.05)
        assert table["RL"]["power_w"] == pytest.approx(ic * ic * 1e3,
                                                       rel=1e-6)
        assert table["IBLEED"]["current_a"] == pytest.approx(2e-3)

    def test_quantities_are_magnitudes(self, solved):
        circuit, x = solved
        table = device_quantities(circuit, x)
        for measured in table.values():
            for value in measured.values():
                assert value >= 0.0


class TestCheckStress:
    def test_default_rules_pass_the_fixture(self, solved):
        circuit, x = solved
        assert check_stress(circuit, x) == []

    def test_tightened_rule_names_the_device(self, solved):
        circuit, x = solved
        rules = (StressRule("tight-ic", "bjt", "ic_a", limit=1e-6),)
        violations = check_stress(circuit, x, rules)
        assert len(violations) == 1
        v = violations[0]
        assert (v.rule, v.device, v.quantity) == ("tight-ic", "Q1", "ic_a")
        assert v.value > v.limit
        assert "Q1" in v.describe()

    def test_match_glob_scopes_the_rule(self, solved):
        circuit, x = solved
        rules = (
            StressRule("r-only", "resistor", "power_w", limit=1e-12,
                       match="RL"),
            StressRule("r-none", "resistor", "power_w", limit=1e-12,
                       match="RX*"),
        )
        violations = check_stress(circuit, x, rules)
        assert [v.rule for v in violations] == ["r-only"]

    def test_derate_tightens_the_limit(self, solved):
        circuit, x = solved
        table = device_quantities(circuit, x)
        power = table["Q1"]["power_w"]
        loose = StressRule("p", "bjt", "power_w", limit=power * 1.5)
        derated = StressRule("p", "bjt", "power_w", limit=power * 1.5,
                             derate=0.5)
        assert check_stress(circuit, x, (loose,)) == []
        assert len(check_stress(circuit, x, (derated,))) == 1
        assert derated.effective_limit == pytest.approx(power * 0.75)

    def test_order_is_device_then_rule(self, solved):
        circuit, x = solved
        rules = (
            StressRule("b", "source", "current_a", limit=1e-12),
            StressRule("a", "source", "current_a", limit=1e-12,
                       severity="warn"),
        )
        violations = check_stress(circuit, x, rules)
        assert [(v.device, v.rule) for v in violations] == [
            ("VCC", "b"), ("VCC", "a"), ("VB", "b"), ("VB", "a"),
            ("IBLEED", "b"), ("IBLEED", "a"),
        ]

    def test_precomputed_quantities_short_circuit(self, solved):
        circuit, x = solved
        quantities = {"Q1": {"ic_a": 99.0, "power_w": 0.0, "vce_v": 0.0}}
        violations = check_stress(circuit, x, DEFAULT_STRESS_RULES,
                                  quantities=quantities)
        assert [v.device for v in violations] == ["Q1"]


class TestRuleValidation:
    @pytest.mark.parametrize("bad", (
        dict(name="", device="bjt", quantity="ic_a", limit=1.0),
        dict(name="x", device="mosfet", quantity="ic_a", limit=1.0),
        dict(name="x", device="bjt", quantity="power_w", limit=0.0),
        dict(name="x", device="resistor", quantity="ic_a", limit=1.0),
        dict(name="x", device="bjt", quantity="ic_a", limit=1.0,
             severity="fatal"),
        dict(name="x", device="bjt", quantity="ic_a", limit=1.0,
             derate=0.0),
        dict(name="x", device="bjt", quantity="ic_a", limit=1.0,
             derate=1.5),
    ))
    def test_rejects_malformed_rules(self, bad):
        with pytest.raises(VerificationError):
            StressRule(**bad)

    def test_rule_round_trip(self):
        rule = StressRule("x", "bjt", "ic_a", limit=1e-3,
                          severity="warn", match="Q*", derate=0.8)
        assert StressRule.from_dict(rule.to_dict()) == rule

    def test_violation_round_trip(self):
        violation = StressViolation("x", "Q1", "ic_a", 2e-3, 1e-3)
        assert StressViolation.from_dict(violation.to_dict()) == violation


class TestLoadStressRules:
    RECORDS = [
        {"name": "p", "device": "bjt", "quantity": "power_w",
         "limit": 0.05},
        {"name": "i", "device": "source", "quantity": "current_a",
         "limit": 0.1, "severity": "warn"},
    ]

    def test_loads_list_dict_and_json(self):
        for source in (self.RECORDS,
                       {"rules": self.RECORDS},
                       json.dumps(self.RECORDS),
                       json.dumps({"rules": self.RECORDS})):
            rules = load_stress_rules(source)
            assert [r.name for r in rules] == ["p", "i"]
            assert rules[1].severity == "warn"

    def test_loads_from_path(self, tmp_path):
        path = tmp_path / "rules.json"
        path.write_text(json.dumps({"rules": self.RECORDS}))
        assert len(load_stress_rules(path)) == 2
        assert len(load_stress_rules(str(path))) == 2

    def test_passes_through_rule_objects(self):
        rules = load_stress_rules(list(DEFAULT_STRESS_RULES))
        assert rules == DEFAULT_STRESS_RULES

    @pytest.mark.parametrize("bad", ("not json {", [], 42,
                                     [{"name": "x"}]))
    def test_rejects_bad_tables(self, bad):
        with pytest.raises(VerificationError):
            load_stress_rules(bad)

"""Tests of the charge-pump PLL model against control theory."""

import math

import numpy as np
import pytest

from repro.errors import DesignError
from repro.rfsystems import ChargePumpPLL, FrequencyPlan, synthesizer_for_channel


@pytest.fixture(scope="module")
def pll():
    return ChargePumpPLL()


class TestLoopDynamics:
    def test_natural_frequency_formula(self, pll):
        kd = pll.charge_pump_current / (2 * math.pi)
        kv = 2 * math.pi * pll.kvco
        expected = math.sqrt(kd * kv / (pll.divider * pll.loop_c))
        assert pll.natural_frequency == pytest.approx(expected, rel=1e-12)

    def test_damping_formula(self, pll):
        expected = pll.loop_r * pll.loop_c * pll.natural_frequency / 2
        assert pll.damping == pytest.approx(expected, rel=1e-12)

    def test_crossover_has_unity_gain(self, pll):
        crossover = pll.crossover_frequency()
        assert abs(pll.open_loop_gain(crossover)) == pytest.approx(1.0,
                                                                   rel=1e-3)

    def test_phase_margin_positive_and_sane(self, pll):
        margin = pll.phase_margin_deg()
        assert 20.0 < margin < 90.0

    def test_more_resistance_more_damping(self, pll):
        from dataclasses import replace

        damped = replace(pll, loop_r=pll.loop_r * 4)
        assert damped.damping > pll.damping
        assert damped.phase_margin_deg() > pll.phase_margin_deg()

    def test_bandwidth_above_natural_frequency(self, pll):
        assert (pll.loop_bandwidth * 2 * math.pi
                > pll.natural_frequency)

    def test_gain_rolls_off_40db_per_decade_below_zero(self, pll):
        """Below the filter zero the loop gain is a double integrator."""
        zero = 1 / (2 * math.pi * pll.loop_r * pll.loop_c)
        f1, f2 = zero / 100, zero / 10
        ratio_db = 20 * math.log10(
            abs(pll.open_loop_gain(f1)) / abs(pll.open_loop_gain(f2))
        )
        assert ratio_db == pytest.approx(40.0, abs=1.5)


class TestStepResponse:
    def test_starts_at_unity_settles_to_zero(self, pll):
        assert pll.phase_step_response(0.0) == pytest.approx(1.0)
        settle = pll.lock_time(1e-4)
        assert abs(pll.phase_step_response(3 * settle)) < 1e-3

    def test_lock_time_scales_with_tolerance(self, pll):
        assert pll.lock_time(1e-6) > pll.lock_time(1e-2)

    def test_response_decays_within_envelope(self, pll):
        zeta, wn = pll.damping, pll.natural_frequency
        for t in np.linspace(0, 10 / wn, 25):
            response = pll.phase_step_response(float(t))
            envelope = math.exp(-zeta * wn * t) / min(
                math.sqrt(max(1 - zeta ** 2, 1e-12)), 1.0
            ) if zeta < 1 else 2 * math.exp(
                -wn * (zeta - math.sqrt(zeta**2 - 1)) * t)
            assert abs(response) <= envelope * 1.01

    def test_negative_time_rejected(self, pll):
        with pytest.raises(DesignError):
            pll.phase_step_response(-1.0)


class TestNoiseTransfer:
    def test_reference_noise_lowpass_with_n_gain(self, pll):
        in_band = pll.reference_noise_transfer(pll.loop_bandwidth / 100)
        out_band = pll.reference_noise_transfer(pll.loop_bandwidth * 100)
        assert in_band == pytest.approx(pll.divider, rel=0.01)
        assert out_band < in_band / 100

    def test_vco_noise_highpass(self, pll):
        in_band = pll.vco_noise_transfer(pll.loop_bandwidth / 100)
        out_band = pll.vco_noise_transfer(pll.loop_bandwidth * 100)
        assert in_band < 0.05
        assert out_band == pytest.approx(1.0, rel=0.01)

    def test_transfers_complementary_at_extremes(self, pll):
        """Far out of band the VCO dominates; far in band the reference."""
        f_low = pll.loop_bandwidth / 1000
        assert pll.vco_noise_transfer(f_low) < 1e-2


class TestSynthesizer:
    def test_output_frequency(self, pll):
        assert pll.output_frequency == pll.divider * 62.5e3

    def test_channel_programming(self):
        plan = FrequencyPlan()
        rf = 400e6  # Fup = 1.7 GHz, on the 62.5 kHz raster
        synth = synthesizer_for_channel(rf, plan)
        assert synth.output_frequency == pytest.approx(plan.up_lo(rf))
        assert synth.divider == 27200

    def test_off_raster_rejected(self):
        with pytest.raises(DesignError):
            synthesizer_for_channel(400.0001e6)

    def test_validation(self):
        with pytest.raises(DesignError):
            ChargePumpPLL(charge_pump_current=0.0)
        with pytest.raises(DesignError):
            ChargePumpPLL(divider=0)
        with pytest.raises(DesignError):
            ChargePumpPLL().open_loop_gain(0.0)

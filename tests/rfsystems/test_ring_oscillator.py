"""Tests for the Fig. 11 ring oscillator (structure + one slow transient)."""

import numpy as np
import pytest

from repro.errors import AnalysisError
from repro.rfsystems import (
    RingOscillatorSpec,
    build_ring_oscillator,
    differential_pair_names,
    estimate_frequency_from_delay,
    measure_frequency,
    run_ring_oscillator,
)
from repro.spice import Simulator
from repro.spice.elements import BJT


class TestSpec:
    def test_defaults(self):
        spec = RingOscillatorSpec()
        assert spec.stages == 5
        assert spec.logic_swing == pytest.approx(
            spec.load_resistance * spec.tail_current
        )

    def test_rejects_even_or_short_rings(self):
        with pytest.raises(AnalysisError):
            RingOscillatorSpec(stages=4)
        with pytest.raises(AnalysisError):
            RingOscillatorSpec(stages=1)

    def test_rejects_nonpositive_values(self):
        with pytest.raises(AnalysisError):
            RingOscillatorSpec(tail_current=0.0)


class TestCircuitStructure:
    def test_device_count(self, hf_model):
        circuit = build_ring_oscillator(hf_model)
        bjts = [e for e in circuit if isinstance(e, BJT)]
        # 5 stages x (2 diff pair + 2 followers) = 20, as in Fig. 11
        assert len(bjts) == 20

    def test_differential_pair_names(self, hf_model):
        circuit = build_ring_oscillator(hf_model)
        for name in differential_pair_names(5):
            assert name in circuit

    def test_follower_model_override(self, hf_model, generator):
        follower = generator.generate("N1.2-6D")
        circuit = build_ring_oscillator(hf_model, follower_model=follower)
        assert circuit.element("QS0A").model is hf_model
        assert circuit.element("QF0P").model is follower

    def test_dc_operating_point_is_balanced(self, hf_model):
        """Without the kick, the symmetric DC state has equal sides."""
        circuit = build_ring_oscillator(hf_model, kick=False)
        result = Simulator(circuit).operating_point()
        assert result.voltage("c0p") == pytest.approx(
            result.voltage("c0n"), abs=1e-4
        )
        # collectors sit roughly half a swing below VCC
        spec = RingOscillatorSpec()
        assert result.voltage("c0p") == pytest.approx(
            spec.vcc - spec.logic_swing / 2, abs=0.2
        )

    def test_delay_estimate_in_range(self, generator):
        model = generator.generate("N1.2-12D")
        estimate = estimate_frequency_from_delay(model)
        assert 0.2e9 < estimate < 20e9


class TestMeasurement:
    def test_measure_frequency_on_synthetic_wave(self, hf_model):
        """measure_frequency on a synthetic record gives the frequency."""
        from repro.spice.transient import TransientResult
        from repro.spice import Circuit
        from repro.spice.elements import Resistor, VoltageSource

        circuit = Circuit("synthetic")
        circuit.add(VoltageSource("V1", ("s0p", "0"), dc=0.0))
        circuit.add(Resistor("R1", ("s0p", "s0n"), 1.0))
        circuit.add(Resistor("R2", ("s0n", "0"), 1.0))
        circuit.assign_indices()
        times = np.linspace(0, 10e-9, 2001)
        states = np.zeros((len(times), circuit.num_unknowns))
        f0 = 1.5e9
        states[:, circuit.node_index("s0p")] = np.sin(
            2 * np.pi * f0 * times
        )
        result = TransientResult(circuit, times, states)
        measurement = measure_frequency(result)
        assert measurement.oscillating
        assert measurement.frequency == pytest.approx(f0, rel=1e-3)

    def test_flat_record_reports_no_oscillation(self):
        from repro.spice.transient import TransientResult
        from repro.spice import Circuit
        from repro.spice.elements import Resistor, VoltageSource

        circuit = Circuit("flat")
        circuit.add(VoltageSource("V1", ("s0p", "0"), dc=1.0))
        circuit.add(Resistor("R1", ("s0p", "s0n"), 1.0))
        circuit.add(Resistor("R2", ("s0n", "0"), 1.0))
        circuit.assign_indices()
        times = np.linspace(0, 10e-9, 101)
        states = np.ones((len(times), circuit.num_unknowns))
        measurement = measure_frequency(
            TransientResult(circuit, times, states)
        )
        assert not measurement.oscillating


@pytest.mark.slow
class TestFreeRunning:
    def test_oscillates_at_ghz(self, generator):
        """One full transient: the generated N1.2-12D ring free-runs in
        the paper's GHz range."""
        model = generator.generate("N1.2-12D")
        follower = generator.generate("N1.2-6D")
        measurement = run_ring_oscillator(model, follower_model=follower,
                                          stop_time=8e-9)
        assert measurement.oscillating
        assert 0.5e9 < measurement.frequency < 5e9
        assert measurement.amplitude > 0.2


class TestFollowerResistorVariant:
    def test_resistive_pulldown_followers(self, hf_model):
        """The spec's follower_resistance option replaces the pulldown
        current sources with resistors (as drawn in the paper's R3/R4)."""
        from repro.spice.elements import Resistor

        spec = RingOscillatorSpec(follower_resistance=2e3)
        circuit = build_ring_oscillator(hf_model, spec=spec)
        assert "RF0P" in circuit and "RF4N" in circuit
        resistors = [e for e in circuit if isinstance(e, Resistor)]
        # 10 loads + 10 follower pulldowns
        assert len(resistors) == 20
        result = Simulator(circuit).operating_point()
        # followers still sit a Vbe below the collectors
        assert result.voltage("s0p") < result.voltage("c0p")

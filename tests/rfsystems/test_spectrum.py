"""Tests for the double-super frequency plan (paper Figs. 2/3)."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import DesignError
from repro.rfsystems import FrequencyPlan


@pytest.fixture(scope="module")
def plan():
    return FrequencyPlan()


class TestPaperNumbers:
    """The exact numbers named in the paper's text."""

    def test_catv_band(self, plan):
        assert plan.rf_min == 90e6
        assert plan.rf_max == 770e6

    def test_first_if(self, plan):
        assert plan.first_if == 1.3e9

    def test_second_if(self, plan):
        assert plan.second_if == 45e6

    def test_image_offset_is_45mhz_from_fdown(self, plan):
        """'the frequency of rf2-Fdown is 45 MHz'."""
        assert abs(plan.first_if_image - plan.down_lo) == pytest.approx(45e6)

    def test_image_relation(self, plan):
        """The paper's defining relation: rf2 - Fdown = Fdown - rf1
        (the wanted and image 1st-IF tones mirror around Fdown)."""
        assert plan.first_if_image - plan.down_lo == pytest.approx(
            plan.down_lo - plan.first_if_wanted
        )

    def test_image_spacing_is_twice_second_if(self, plan):
        assert plan.image_spacing == pytest.approx(2 * plan.second_if)

    def test_up_lo_above_band(self, plan):
        assert plan.up_lo(90e6) == pytest.approx(1.39e9)
        assert plan.up_lo(770e6) == pytest.approx(2.07e9)

    def test_rf_image_is_adjacent_in_band(self, plan):
        """The image referred to the antenna is an in-band channel only
        90 MHz away — the reason the paper needs the IR mixer."""
        assert plan.rf_image(400e6) == pytest.approx(490e6)
        assert plan.image_offset(400e6) == pytest.approx(90e6)


class TestConsistency:
    @given(rf=st.floats(min_value=90e6, max_value=770e6))
    def test_image_distinct_from_wanted(self, plan, rf):
        assert plan.rf_image(rf) != pytest.approx(rf, rel=1e-6)

    @given(rf=st.floats(min_value=90e6, max_value=770e6))
    def test_both_convert_to_second_if(self, plan, rf):
        """Wanted and image both land on |...| = 45 MHz after the two
        conversions (that is what makes rf_image an image)."""
        up = plan.up_lo(rf)
        if1_wanted = up - rf
        if1_image = up - plan.rf_image(rf)
        assert abs(if1_wanted - plan.down_lo) == pytest.approx(
            plan.second_if, rel=1e-9
        )
        assert abs(if1_image - plan.down_lo) == pytest.approx(
            plan.second_if, rel=1e-9
        )

    def test_describe(self, plan):
        info = plan.describe(500e6)
        assert info["up_lo"] == pytest.approx(1.8e9)
        assert info["down_lo"] == pytest.approx(1.255e9)
        assert info["first_if_image"] == pytest.approx(1.21e9)


class TestValidation:
    def test_rf_out_of_band_rejected(self, plan):
        with pytest.raises(DesignError):
            plan.up_lo(50e6)
        with pytest.raises(DesignError):
            plan.describe(900e6)

    def test_bad_plans_rejected(self):
        with pytest.raises(DesignError):
            FrequencyPlan(rf_min=0.0)
        with pytest.raises(DesignError):
            FrequencyPlan(first_if=500e6)  # below rf_max
        with pytest.raises(DesignError):
            FrequencyPlan(second_if=2e9)  # above first_if

"""Tests for the image-rejection analysis (the paper's Fig. 5)."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.rfsystems import (
    ImbalanceSpec,
    fig5_sweep,
    image_rejection_ratio_db,
    required_matching,
    simulate_image_rejection_db,
)


class TestClosedForm:
    def test_perfect_matching_is_infinite(self):
        assert math.isinf(image_rejection_ratio_db(0.0, 0.0))

    def test_textbook_values(self):
        # 1% gain error alone: 20*log10(2.01/0.01) ~ 46.1 dB
        assert image_rejection_ratio_db(0.0, 0.01) == pytest.approx(46.06,
                                                                    abs=0.05)
        # 9% gain error alone ~ 27.3 dB
        assert image_rejection_ratio_db(0.0, 0.09) == pytest.approx(27.3,
                                                                    abs=0.1)

    def test_phase_only(self):
        # IRR = (1+cos)/(1-cos) = cot^2(theta/2)
        theta = 3.0
        expected = 10 * math.log10(
            (1 + math.cos(math.radians(theta)))
            / (1 - math.cos(math.radians(theta)))
        )
        assert image_rejection_ratio_db(theta, 0.0) == pytest.approx(
            expected, abs=1e-9
        )

    @given(phase=st.floats(min_value=0.1, max_value=20.0),
           gain=st.floats(min_value=0.0, max_value=0.2))
    def test_monotone_in_phase_error(self, phase, gain):
        better = image_rejection_ratio_db(phase, gain)
        worse = image_rejection_ratio_db(phase * 1.5, gain)
        assert worse < better

    @given(gain=st.floats(min_value=0.001, max_value=0.2))
    def test_monotone_in_gain_error(self, gain):
        assert image_rejection_ratio_db(2.0, gain * 1.5) < (
            image_rejection_ratio_db(2.0, gain)
        )


class TestSimulationAgreesWithTheory:
    """The headline property: the AHDL-style behavioral simulation of the
    Fig. 4 mixer reproduces the closed-form IRR exactly."""

    @settings(max_examples=40, deadline=None)
    @given(phase=st.floats(min_value=0.0, max_value=15.0),
           gain=st.floats(min_value=0.0, max_value=0.15))
    def test_agreement(self, phase, gain):
        theory = image_rejection_ratio_db(phase, gain)
        simulated = simulate_image_rejection_db(
            ImbalanceSpec(if_phase_error_deg=phase, gain_error=gain)
        )
        if math.isinf(theory) or theory > 100.0:
            # cancellation residue floors the simulation near ~150 dB
            assert simulated > 90.0
        else:
            assert simulated == pytest.approx(theory, abs=0.01)

    def test_lo_and_if_phase_errors_add(self):
        split = simulate_image_rejection_db(
            ImbalanceSpec(lo_phase_error_deg=2.5, if_phase_error_deg=2.5,
                          gain_error=0.02)
        )
        lumped = simulate_image_rejection_db(
            ImbalanceSpec(if_phase_error_deg=5.0, gain_error=0.02)
        )
        # not exactly equal: the gain error creates a small second-order
        # cross-term between the two error locations
        assert split == pytest.approx(lumped, abs=0.05)


class TestFig5Sweep:
    def test_sweep_structure(self):
        curves = fig5_sweep([0.0, 2.0, 4.0], gain_errors=(0.01, 0.09))
        assert set(curves) == {0.01, 0.09}
        assert len(curves[0.01]) == 3

    def test_small_gain_error_curve_lies_above(self):
        """Fig. 5's visual: the 1% curve is above the 9% curve."""
        curves = fig5_sweep([0.0, 2.0, 5.0, 8.0],
                            gain_errors=(0.01, 0.09))
        for (_, irr_1), (_, irr_9) in zip(curves[0.01], curves[0.09]):
            assert irr_1 > irr_9

    def test_curves_converge_at_large_phase_error(self):
        """At large phase error, phase dominates and the gain curves
        bundle together — the fan shape of Fig. 5."""
        curves = fig5_sweep([0.5, 20.0], gain_errors=(0.01, 0.09))
        gap_small = curves[0.01][0][1] - curves[0.09][0][1]
        gap_large = curves[0.01][1][1] - curves[0.09][1][1]
        assert gap_large < gap_small / 3

    def test_closed_form_mode(self):
        sim = fig5_sweep([3.0], gain_errors=(0.05,), simulated=True)
        theory = fig5_sweep([3.0], gain_errors=(0.05,), simulated=False)
        assert sim[0.05][0][1] == pytest.approx(theory[0.05][0][1], abs=1e-6)


class TestSpecDerivation:
    """The paper's designer workflow: 30 dB system spec -> matching spec."""

    def test_30db_at_1_percent(self):
        phase_budget = required_matching(30.0, 0.01)
        assert phase_budget is not None
        assert image_rejection_ratio_db(phase_budget, 0.01) == pytest.approx(
            30.0, abs=0.01
        )
        # sanity: mid-single-digit degrees
        assert 3.0 < phase_budget < 4.5

    def test_gain_error_too_large_returns_none(self):
        # 9% gain offset caps IRR at ~27.3 dB < 30 dB target
        assert required_matching(30.0, 0.09) is None

    def test_budget_shrinks_with_gain_error(self):
        loose = required_matching(30.0, 0.005)
        tight = required_matching(30.0, 0.04)
        assert tight < loose


class TestWeaverArchitecture:
    """The Weaver alternative obeys the same quadrature-imbalance law."""

    def test_perfect_matching_deep_null(self):
        from repro.rfsystems import simulate_weaver_image_rejection_db

        irr = simulate_weaver_image_rejection_db(ImbalanceSpec())
        assert irr > 200.0

    @pytest.mark.parametrize("phase,gain", [
        (0.0, 0.01), (3.0, 0.01), (5.0, 0.05), (8.0, 0.09),
    ])
    def test_same_sensitivity_as_hartley(self, phase, gain):
        from repro.rfsystems import simulate_weaver_image_rejection_db

        weaver = simulate_weaver_image_rejection_db(
            ImbalanceSpec(if_phase_error_deg=phase, gain_error=gain)
        )
        hartley = image_rejection_ratio_db(phase, gain)
        assert weaver == pytest.approx(hartley, abs=0.05)

    def test_lo1_error_also_counts(self):
        from repro.rfsystems import simulate_weaver_image_rejection_db

        irr = simulate_weaver_image_rejection_db(
            ImbalanceSpec(lo_phase_error_deg=4.0)
        )
        assert irr == pytest.approx(image_rejection_ratio_db(4.0, 0.0),
                                    abs=0.1)

    def test_wanted_lands_at_second_if(self):
        from repro.behavioral import Spectrum
        from repro.rfsystems import FrequencyPlan, build_weaver_mixer

        plan = FrequencyPlan()
        second_if = 10.7e6
        system = build_weaver_mixer(plan.down_lo,
                                    plan.second_if - second_if,
                                    lowpass_cutoff=90e6)
        out = system.run(
            {"if1": Spectrum.tone(plan.first_if_wanted, 1.0)}
        )["if2"]
        assert out.amplitude(second_if) > 0.05

    def test_bad_second_if_rejected(self):
        from repro.errors import DesignError
        from repro.rfsystems import simulate_weaver_image_rejection_db

        with pytest.raises(DesignError):
            simulate_weaver_image_rejection_db(ImbalanceSpec(),
                                               second_if=60e6)

"""Tests for the 1st-IF filter feasibility arithmetic."""

import math

import pytest

from repro.behavioral import butterworth_response
from repro.errors import DesignError
from repro.rfsystems import (
    FrequencyPlan,
    bandwidth_for_rejection,
    butterworth_rejection_db,
    filter_only_feasibility,
    order_for_rejection,
)


class TestRejectionFormula:
    def test_center_has_no_rejection(self):
        assert butterworth_rejection_db(1.3e9, 60e6, 3,
                                        1.3e9) == pytest.approx(0.0)

    def test_band_edge_is_3db(self):
        # the geometric band edge: f/f0 - f0/f = B/f0
        f0, bw = 1.3e9, 60e6
        edge = f0 * (bw / (2 * f0) + math.sqrt((bw / (2 * f0)) ** 2 + 1))
        assert butterworth_rejection_db(f0, bw, 4, edge) == pytest.approx(
            10 * math.log10(2), abs=1e-6
        )

    def test_matches_complex_response_magnitude(self):
        """The dB formula agrees with the actual filter block used in
        the tuner simulations."""
        f0, bw, order = 1.3e9, 60e6, 3
        response = butterworth_response(f0, bw, order)
        for f in (1.21e9, 1.25e9, 1.35e9, 1.5e9):
            expected = -20 * math.log10(abs(response(f)))
            assert butterworth_rejection_db(f0, bw, order,
                                            f) == pytest.approx(
                expected, abs=0.01
            ), f

    def test_validation(self):
        with pytest.raises(DesignError):
            butterworth_rejection_db(0.0, 60e6, 3, 1e9)


class TestInverses:
    def test_order_for_rejection_roundtrip(self):
        order = order_for_rejection(1.3e9, 60e6, 1.21e9, 40.0)
        assert order is not None
        assert butterworth_rejection_db(1.3e9, 60e6, order, 1.21e9) >= 40.0
        if order > 1:
            assert butterworth_rejection_db(1.3e9, 60e6, order - 1,
                                            1.21e9) < 40.0

    def test_order_unreachable_returns_none(self):
        # rejection demanded *inside* the passband can never be met
        assert order_for_rejection(1.3e9, 200e6, 1.31e9, 60.0) is None

    def test_bandwidth_for_rejection_roundtrip(self):
        bw = bandwidth_for_rejection(1.3e9, 3, 1.21e9, 45.0)
        assert butterworth_rejection_db(1.3e9, bw, 3,
                                        1.21e9) == pytest.approx(45.0,
                                                                 abs=0.01)

    def test_more_rejection_needs_narrower_filter(self):
        loose = bandwidth_for_rejection(1.3e9, 3, 1.21e9, 30.0)
        tight = bandwidth_for_rejection(1.3e9, 3, 1.21e9, 60.0)
        assert tight < loose

    def test_bandwidth_validation(self):
        with pytest.raises(DesignError):
            bandwidth_for_rejection(1.3e9, 3, 1.21e9, 0.0)


class TestPaperSentence:
    """Quantify: the image at the 1st IF 'requires a very narrow band
    pass filter'."""

    def test_60db_filter_only_is_infeasible(self):
        """A 60 dB filter-only IRR at 90 MHz offset demands a 1.4 %
        fractional bandwidth — a Q of ~70 at 1.3 GHz, beyond any
        practical filter of the era.  Hence Fig. 4."""
        verdict = filter_only_feasibility(60.0, order=3)
        assert not verdict["feasible"]
        assert not verdict["realizable_q"]
        assert verdict["required_q"] > 50.0
        assert verdict["fractional_bandwidth"] < 0.02

    def test_modest_target_is_feasible(self):
        verdict = filter_only_feasibility(25.0, order=3)
        assert verdict["feasible"]
        assert verdict["passes_channel"]

    def test_image_offset_is_90mhz(self):
        verdict = filter_only_feasibility(30.0)
        assert verdict["image_offset_hz"] == pytest.approx(90e6)

    def test_higher_order_helps(self):
        low = filter_only_feasibility(45.0, order=2)
        high = filter_only_feasibility(45.0, order=6)
        assert (high["required_bandwidth_hz"]
                > low["required_bandwidth_hz"])

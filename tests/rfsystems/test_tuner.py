"""Tests for the double-super tuner systems (paper Figs. 2 and 4)."""

import math

import pytest

from repro.behavioral import Spectrum, tone
from repro.errors import DesignError
from repro.rfsystems import (
    FrequencyPlan,
    ImbalanceSpec,
    TunerConfig,
    build_conventional_tuner,
    build_image_rejection_tuner,
    image_rejection_ratio_db,
    measure_tuner,
)

RF = 400e6


@pytest.fixture(scope="module")
def plan():
    return FrequencyPlan()


class TestConventionalTuner:
    def test_wanted_channel_converts(self, plan):
        tuner = build_conventional_tuner(RF)
        nets = tuner.run({"rf": tone(RF, 1e-3)})
        assert nets["if2"].amplitude(plan.second_if) > 1e-4

    def test_first_if_is_1_3ghz(self, plan):
        tuner = build_conventional_tuner(RF)
        nets = tuner.run({"rf": tone(RF, 1e-3)})
        assert nets["if1"].amplitude(plan.first_if) > 1e-4

    def test_image_rejection_comes_from_filter_only(self, plan):
        perf = measure_tuner(build_conventional_tuner(RF), RF)
        # 3rd-order 60 MHz BPF at 90 MHz offset: tens of dB, not hundreds
        assert 15.0 < perf.image_rejection_db < 60.0

    def test_narrower_filter_rejects_more(self, plan):
        wide = measure_tuner(
            build_conventional_tuner(RF, TunerConfig(
                if1_filter_bandwidth=120e6)), RF,
        )
        narrow = measure_tuner(
            build_conventional_tuner(RF, TunerConfig(
                if1_filter_bandwidth=30e6)), RF,
        )
        assert narrow.image_rejection_db > wide.image_rejection_db + 10

    def test_out_of_plan_rf_rejected(self):
        with pytest.raises(DesignError):
            build_conventional_tuner(50e6)


class TestImageRejectionTuner:
    def test_ir_tuner_beats_conventional(self, plan):
        conventional = measure_tuner(build_conventional_tuner(RF), RF)
        ir = measure_tuner(
            build_image_rejection_tuner(
                RF, ImbalanceSpec(if_phase_error_deg=2.0, gain_error=0.02)
            ),
            RF,
        )
        assert ir.image_rejection_db > conventional.image_rejection_db + 15

    def test_total_rejection_is_filter_plus_quadrature(self, plan):
        """IRR(total) ~ IRR(filter) + IRR(quadrature) in dB."""
        imbalance = ImbalanceSpec(if_phase_error_deg=3.0, gain_error=0.03)
        conventional = measure_tuner(build_conventional_tuner(RF), RF)
        ir = measure_tuner(build_image_rejection_tuner(RF, imbalance), RF)
        quadrature = image_rejection_ratio_db(3.0, 0.03)
        assert ir.image_rejection_db == pytest.approx(
            conventional.image_rejection_db + quadrature, abs=1.5
        )

    def test_wanted_gain_not_degraded(self, plan):
        conventional = measure_tuner(build_conventional_tuner(RF), RF)
        ir = measure_tuner(build_image_rejection_tuner(RF), RF)
        assert ir.wanted_gain_db == pytest.approx(
            conventional.wanted_gain_db + 6.0, abs=1.0
        )  # two coherent paths add 6 dB over the single path

    def test_perfect_matching_huge_rejection(self, plan):
        perf = measure_tuner(build_image_rejection_tuner(RF), RF)
        assert perf.image_rejection_db > 100.0

    def test_works_across_band(self, plan):
        for rf in (plan.rf_min, 300e6, plan.rf_max):
            perf = measure_tuner(
                build_image_rejection_tuner(
                    rf, ImbalanceSpec(if_phase_error_deg=2.0,
                                      gain_error=0.02)
                ),
                rf,
            )
            assert perf.image_rejection_db > 40.0


class TestMeasurement:
    def test_measure_requires_wanted_output(self, plan):
        from repro.behavioral import SystemModel, Amplifier

        broken = SystemModel("broken")
        broken.add(Amplifier("a", gain_db=-300.0), inputs=["rf"],
                   outputs=["if2"])
        with pytest.raises(DesignError):
            measure_tuner(broken, RF)

    def test_performance_fields(self, plan):
        perf = measure_tuner(build_conventional_tuner(RF), RF)
        assert perf.rf == RF
        assert perf.conversion_output > 0

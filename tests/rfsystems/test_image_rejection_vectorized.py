"""Vectorized closed-form IRR: arrays, broadcasting, scalar round-trip."""

import numpy as np
import pytest

from repro.errors import DesignError
from repro.rfsystems import fig5_sweep, image_rejection_ratio_db


class TestVectorizedIRR:
    def test_scalar_inputs_return_float(self):
        value = image_rejection_ratio_db(1.0, 0.02)
        assert isinstance(value, float)

    def test_array_matches_elementwise_scalars(self):
        phases = np.array([0.5, 1.0, 2.0, 5.0])
        vectorized = image_rejection_ratio_db(phases, 0.03)
        assert isinstance(vectorized, np.ndarray)
        scalars = [image_rejection_ratio_db(float(p), 0.03)
                   for p in phases]
        np.testing.assert_allclose(vectorized, scalars, rtol=0.0)

    def test_broadcasting_builds_the_fig5_grid(self):
        phases = np.array([0.5, 1.0, 2.0])
        gains = np.array([0.01, 0.05])
        grid = image_rejection_ratio_db(phases[None, :], gains[:, None])
        assert grid.shape == (2, 3)
        for i, gain in enumerate(gains):
            for j, phase in enumerate(phases):
                assert grid[i, j] == image_rejection_ratio_db(
                    float(phase), float(gain))

    def test_perfect_matching_is_infinite(self):
        assert image_rejection_ratio_db(0.0, 0.0) == np.inf
        mixed = image_rejection_ratio_db(np.array([0.0, 1.0]), 0.0)
        assert mixed[0] == np.inf and np.isfinite(mixed[1])

    def test_irr_decreases_with_error(self):
        phases = np.linspace(0.1, 10.0, 25)
        curve = image_rejection_ratio_db(phases, 0.0)
        assert np.all(np.diff(curve) < 0)

    def test_nonpositive_path_gain_rejected(self):
        with pytest.raises(DesignError):
            image_rejection_ratio_db(1.0, -1.0)
        with pytest.raises(DesignError):
            image_rejection_ratio_db(np.array([1.0]),
                                     np.array([0.01, -1.5]))


class TestClosedFormFig5:
    def test_closed_form_family_matches_direct_evaluation(self):
        phases = (0.5, 1.0, 3.0)
        gains = (0.01, 0.09)
        family = fig5_sweep(phases, gains, simulated=False)
        assert set(family) == set(gains)
        for gain, curve in family.items():
            for phase, irr in curve:
                assert irr == pytest.approx(
                    image_rejection_ratio_db(phase, gain), rel=0.0)

    def test_closed_form_tracks_simulation(self):
        phases = (1.0, 2.0)
        closed = fig5_sweep(phases, (0.03,), simulated=False)
        simulated = fig5_sweep(phases, (0.03,), simulated=True)
        for (_, irr_c), (_, irr_s) in zip(closed[0.03], simulated[0.03]):
            assert irr_c == pytest.approx(irr_s, abs=0.5)

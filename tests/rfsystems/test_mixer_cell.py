"""Tests for the transistor-level Gilbert mixer cell."""

import pytest

from repro.errors import AnalysisError
from repro.rfsystems import (
    GilbertMixerSpec,
    build_gilbert_mixer,
    ideal_conversion_gain,
    measure_conversion_gain,
)
from repro.spice import Simulator
from repro.spice.elements import BJT


class TestConstruction:
    def test_six_transistors(self, hf_model):
        circuit = build_gilbert_mixer(hf_model, 210e6, 200e6)
        bjts = [e for e in circuit if isinstance(e, BJT)]
        assert len(bjts) == 6

    def test_degeneration_option(self, hf_model):
        spec = GilbertMixerSpec(emitter_degeneration=20.0)
        circuit = build_gilbert_mixer(hf_model, 210e6, 200e6, spec)
        assert "REA" in circuit and "REB" in circuit

    def test_dc_operating_point_balanced(self, hf_model):
        circuit = build_gilbert_mixer(hf_model, 210e6, 200e6)
        result = Simulator(circuit).operating_point()
        # perfect symmetry at t=0: both IF nodes equal
        assert result.voltage("ifp") == pytest.approx(
            result.voltage("ifn"), abs=1e-6
        )
        # the tail current splits through the loads
        spec = GilbertMixerSpec()
        drop = spec.vcc - result.voltage("ifp")
        assert drop == pytest.approx(
            spec.load_resistance * spec.tail_current / 2, rel=0.1
        )

    def test_spec_validation(self):
        with pytest.raises(AnalysisError):
            GilbertMixerSpec(tail_current=0.0)


class TestIdealGain:
    def test_two_over_pi_gm_rl(self, hf_model):
        gain = ideal_conversion_gain(hf_model)
        spec = GilbertMixerSpec()
        # gm ~ Ic/vt at the half-tail bias
        from repro.devices import thermal_voltage

        rough = (2 / 3.14159) * (spec.tail_current / 2
                                 / thermal_voltage()) * spec.load_resistance
        assert gain == pytest.approx(rough, rel=0.3)

    def test_degeneration_reduces_gain(self, hf_model):
        plain = ideal_conversion_gain(hf_model)
        degenerated = ideal_conversion_gain(
            hf_model, GilbertMixerSpec(emitter_degeneration=50.0)
        )
        assert degenerated < plain / 2


@pytest.mark.slow
class TestMeasuredGain:
    def test_conversion_gain_near_textbook(self, generator):
        """Full transient measurement lands near (2/pi)*gm*RL and the
        double-balanced topology suppresses RF/LO feedthrough."""
        model = generator.generate("N1.2-12D")
        measurement = measure_conversion_gain(model)
        anchor = ideal_conversion_gain(model)
        assert measurement.conversion_gain == pytest.approx(anchor,
                                                            rel=0.35)
        assert measurement.if_frequency == pytest.approx(10e6)
        # balance: feedthrough well below the IF product (the short
        # measurement window leaves some spectral leakage in the probe)
        assert measurement.feedthrough_rf < 0.15 * measurement.if_amplitude
        assert measurement.feedthrough_lo < 0.15 * measurement.if_amplitude

    def test_equal_frequencies_rejected(self, generator):
        model = generator.generate("N1.2-6D")
        with pytest.raises(AnalysisError):
            measure_conversion_gain(model, 200e6, 200e6)

"""Getreu-style model parameter extraction from measured curves.

Recovers a Gummel-Poon parameter set from a
:class:`~repro.measurement.synthetic.MeasurementSet` using the classic
regional methods (Getreu, *Modeling the Bipolar Transistor*):

* **IS, NF** — slope/intercept of ``log Ic`` vs ``Vbe`` in the ideal
  mid-current region of the Gummel plot,
* **BF** — plateau of ``Ic/Ib``,
* **ISE, NE** — the low-current excess of ``Ib`` over ``Ic/BF``,
* **IKF** — half-power point of the high-current beta roll-off,
* **CJx, VJx, MJx** — least-squares fit of the reverse C-V law
  ``C = CJ0 * (1 + Vr/VJ)^-M``,
* **TF** — intercept of ``1/(2*pi*fT)`` against ``1/Ic`` (the depletion
  term vanishes at infinite current),
* **XTF, ITF** — fit of the high-current fT roll-off,
* **RE, RB, RC** — taken from the ohmic (impedance) measurements.

No golden values are consulted: only the curves.  The tests compare the
extraction against the hidden golden set to bound the pipeline's error.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from scipy.optimize import curve_fit

from ..devices.gummel_poon import thermal_voltage
from ..devices.parameters import GummelPoonParameters
from ..errors import ExtractionError
from .synthetic import CVCurve, FTSweep, GummelPlot, MeasurementSet


@dataclass(frozen=True)
class ExtractionReport:
    """The extracted model plus per-parameter provenance notes."""

    parameters: GummelPoonParameters
    notes: dict[str, str]

    def compare(self, golden: GummelPoonParameters,
                names=("IS", "NF", "BF", "ISE", "NE", "IKF",
                       "CJE", "VJE", "MJE", "CJC", "VJC", "MJC",
                       "TF", "RE", "RB", "RC")) -> dict[str, float]:
        """Relative error per parameter against a golden set."""
        errors = {}
        for name in names:
            truth = getattr(golden, name)
            got = getattr(self.parameters, name)
            if truth == 0:
                errors[name] = abs(got)
            else:
                errors[name] = abs(got - truth) / abs(truth)
        return errors


# -- regional extractors -----------------------------------------------------------


def extract_is_nf(gummel: GummelPlot, vt: float,
                  window: tuple[float, float] = (1e-9, 1e-6)
                  ) -> tuple[float, float]:
    """IS and NF from the ideal region of log(Ic) vs Vbe."""
    mask = (gummel.ic >= window[0]) & (gummel.ic <= window[1])
    if mask.sum() < 5:
        raise ExtractionError("too few Gummel points in the ideal region")
    slope, intercept = np.polyfit(gummel.vbe[mask], np.log(gummel.ic[mask]), 1)
    nf = 1.0 / (slope * vt)
    i_s = math.exp(intercept)
    if not 0.5 < nf < 2.0:
        raise ExtractionError(f"extracted NF={nf:.3f} is not physical")
    return i_s, nf


def extract_bf(gummel: GummelPlot,
               window: tuple[float, float] = (3e-6, 3e-4)) -> float:
    """BF from the beta plateau (above the leakage, below the knee)."""
    mask = (gummel.ic >= window[0]) & (gummel.ic <= window[1])
    if mask.sum() < 3:
        raise ExtractionError("too few points for BF extraction")
    return float(np.max(gummel.ic[mask] / gummel.ib[mask]))


def extract_ise_ne(gummel: GummelPlot, i_s: float, nf: float, bf: float,
                   vt: float) -> tuple[float, float]:
    """ISE and NE from the low-current non-ideal base current.

    Subtracts the ideal component Ic/BF from the measured Ib and fits
    the residual's exponential slope.
    """
    ideal_ib = gummel.ic / bf
    excess = gummel.ib - ideal_ib
    # Only the low-current corner: at high currents beta droop (not
    # leakage) creates a spurious excess with the wrong slope.
    mask = (excess > 0.2 * gummel.ib) & (gummel.ib > 1e-14) & (gummel.ic < 1e-8)
    if mask.sum() < 5:
        # Leakage never dominates in the measured window: report zero.
        return 0.0, 2.0
    vbe = gummel.vbe[mask]
    slope, intercept = np.polyfit(vbe, np.log(excess[mask]), 1)
    ne = 1.0 / (slope * vt)
    ise = math.exp(intercept)
    if not 1.0 <= ne <= 4.0:
        raise ExtractionError(f"extracted NE={ne:.3f} is not physical")
    return ise, ne


def extract_ikf(gummel: GummelPlot, i_s: float, nf: float, vt: float) -> float:
    """IKF from the high-injection roll-off of the Gummel plot.

    In high injection Ic -> sqrt(IS*IKF)*exp(Vbe/(2*NF*vt)); IKF is read
    from where the measured Ic falls to half the ideal-law projection.
    """
    ideal = i_s * np.exp(gummel.vbe / (nf * vt))
    ratio = gummel.ic / ideal
    below = np.nonzero(ratio < 0.5)[0]
    if len(below) == 0:
        return math.inf
    knee_index = below[0]
    # At the half-point, qb = 2 => q2 ~ 2 => Ic_ideal ~ 2*IKF.
    return float(ideal[knee_index] / 2.0)


def fit_junction_cv(curve: CVCurve) -> tuple[float, float, float]:
    """(CJ0, VJ, M) least-squares fit of C = CJ0*(1+Vr/VJ)^-M."""

    c0_guess = float(curve.capacitance[0])
    if c0_guess <= 0:
        raise ExtractionError("C-V curve has non-positive zero-bias point")
    normalized = curve.capacitance / c0_guess

    def law(vr, scale, vj, m):
        return scale * (1.0 + vr / vj) ** (-m)

    try:
        popt, _ = curve_fit(
            law, curve.reverse_voltage, normalized,
            p0=(1.0, 0.7, 0.35),
            bounds=([0.2, 0.2, 0.05], [5.0, 1.5, 0.95]),
            maxfev=20000,
        )
    except Exception as exc:
        raise ExtractionError(f"C-V fit failed: {exc}") from exc
    scale, vj, m = (float(x) for x in popt)
    return scale * c0_guess, vj, m


def extract_tf(ft_sweep: FTSweep, low_fraction: float = 0.35) -> float:
    """TF from the 1/(2*pi*fT) vs 1/Ic intercept (mid-current region).

    Uses the points *before* the high-current roll-off: the minimum of
    the total delay marks where roll-off begins.
    """
    tau = 1.0 / (2.0 * math.pi * ft_sweep.ft)
    inv_ic = 1.0 / ft_sweep.ic
    best = int(np.argmin(tau))
    if best < 3:
        raise ExtractionError("fT sweep does not cover the rising region")
    # Fit well below the roll-off onset: only currents under a third of
    # the optimum, where the excess-TF term is negligible.
    mask = ft_sweep.ic <= ft_sweep.ic[best] / 3.0
    if mask.sum() < 4:
        mask = np.zeros_like(mask)
        mask[max(0, best - 4):best] = True
    slope, intercept = np.polyfit(inv_ic[mask], tau[mask], 1)
    if intercept <= 0:
        # Roll-off started inside the window; fall back on the minimum.
        intercept = float(tau[best]) * 0.9
    return float(intercept)


def extract_xtf_itf(ft_sweep: FTSweep, tf: float,
                    vtf: float = math.inf) -> tuple[float, float]:
    """XTF and ITF from the high-current excess delay.

    Past the fT peak the excess transit time follows
    ``TF*XTF*(Ic/(Ic+ITF))^2`` (the VTF factor is ~constant at fixed
    Vce); fit the two knobs to the measured excess.
    """
    tau = 1.0 / (2.0 * math.pi * ft_sweep.ft)
    best = int(np.argmin(tau))
    if best >= len(tau) - 3:
        return 0.0, 0.0  # no visible roll-off in the window
    ic_high = ft_sweep.ic[best:]
    excess = tau[best:] - tau[best]

    def law(ic, xtf, itf):
        w = ic / (ic + itf)
        return tf * xtf * w * w

    try:
        popt, _ = curve_fit(
            law, ic_high, excess, p0=(1.0, float(ft_sweep.ic[best])),
            bounds=([0.0, 1e-6], [100.0, 1.0]), maxfev=20000,
        )
    except Exception as exc:
        raise ExtractionError(f"fT roll-off fit failed: {exc}") from exc
    return float(popt[0]), float(popt[1])


# -- pipeline ------------------------------------------------------------------------


def extract_parameters(measurements: MeasurementSet,
                       name: str = "QEXTRACTED") -> ExtractionReport:
    """Full extraction pipeline: curves in, model card out."""
    vt = thermal_voltage()
    notes: dict[str, str] = {}

    i_s, nf = extract_is_nf(measurements.gummel, vt)
    notes["IS"] = notes["NF"] = "Gummel plot ideal-region fit"
    bf = extract_bf(measurements.gummel)
    notes["BF"] = "beta plateau"
    ise, ne = extract_ise_ne(measurements.gummel, i_s, nf, bf, vt)
    notes["ISE"] = notes["NE"] = "low-current Ib excess fit"
    ikf = extract_ikf(measurements.gummel, i_s, nf, vt)
    notes["IKF"] = "high-injection half-point"

    cje, vje, mje = fit_junction_cv(measurements.cv_be)
    notes["CJE"] = notes["VJE"] = notes["MJE"] = "B-E C-V fit"
    cjc, vjc, mjc = fit_junction_cv(measurements.cv_bc)
    notes["CJC"] = notes["VJC"] = notes["MJC"] = "B-C C-V fit"

    tf = extract_tf(measurements.ft_sweep)
    notes["TF"] = "1/(2*pi*fT) vs 1/Ic intercept"
    xtf, itf = extract_xtf_itf(measurements.ft_sweep, tf)
    notes["XTF"] = notes["ITF"] = "fT roll-off fit"

    parameters = GummelPoonParameters(
        name=name,
        IS=i_s, NF=nf, BF=bf, ISE=ise, NE=ne, IKF=ikf,
        CJE=cje, VJE=vje, MJE=mje,
        CJC=cjc, VJC=vjc, MJC=mjc,
        TF=tf, XTF=xtf, ITF=itf,
        VTF=math.inf if xtf == 0.0 else 2.5,
        RE=measurements.re_ohmic,
        RB=measurements.rb_ohmic,
        RC=measurements.rc_ohmic,
    )
    notes["RE"] = notes["RB"] = notes["RC"] = "impedance measurement"
    return ExtractionReport(parameters=parameters, notes=notes)

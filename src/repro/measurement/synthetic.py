"""Synthetic device measurements (the "virtual fab").

The paper's generator needs "reference transistor model parameters which
are based on actual measurements" (Getreu-style characterization).  We
have no fab, so this module *simulates the measurements*: given a hidden
golden parameter set (the silicon), it produces the classic
characterization curves with realistic instrument noise:

* Gummel plot: Ic(Vbe), Ib(Vbe) at fixed Vce,
* junction C-V: C(V) for B-E and B-C in reverse bias,
* fT versus Ic at fixed Vce,
* ohmic resistances (RE/RB/RC from impedance methods, reported directly
  with noise).

The extraction pipeline (:mod:`repro.measurement.extraction`) recovers a
parameter set from these curves alone — the same code path a real lab
would run — so the generate-for-shape flow is exercised end to end.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..devices.gummel_poon import depletion_charge, evaluate, solve_vbe_for_ic
from ..devices.ft import ft_at_ic
from ..devices.parameters import GummelPoonParameters
from ..errors import ExtractionError


@dataclass(frozen=True)
class GummelPlot:
    """Forward Gummel measurement at fixed Vce."""

    vce: float
    vbe: np.ndarray
    ic: np.ndarray
    ib: np.ndarray


@dataclass(frozen=True)
class CVCurve:
    """Reverse-bias junction capacitance measurement."""

    junction: str  #: "be" or "bc"
    reverse_voltage: np.ndarray  #: positive values = reverse bias
    capacitance: np.ndarray


@dataclass(frozen=True)
class FTSweep:
    """fT versus collector current at fixed Vce."""

    vce: float
    ic: np.ndarray
    ft: np.ndarray


@dataclass(frozen=True)
class MeasurementSet:
    """Everything the extraction pipeline gets to see."""

    gummel: GummelPlot
    cv_be: CVCurve
    cv_bc: CVCurve
    ft_sweep: FTSweep
    re_ohmic: float
    rb_ohmic: float
    rc_ohmic: float


def measure_device(
    golden: GummelPoonParameters,
    noise: float = 0.01,
    seed: int = 1996,
    vce_gummel: float = 2.0,
    vbe_range: tuple[float, float] = (0.30, 0.95),
    gummel_points: int = 131,
    cv_max_reverse: float = 5.0,
    cv_points: int = 41,
    ft_ic_range: tuple[float, float] = (5e-5, 2e-2),
    ft_points: int = 41,
    ft_vce: float = 3.0,
) -> MeasurementSet:
    """Run the virtual characterization bench on a golden device.

    ``noise`` is the 1-sigma relative instrument error (multiplicative
    lognormal); ``seed`` makes runs reproducible.
    """
    if noise < 0:
        raise ExtractionError("noise must be non-negative")
    rng = np.random.default_rng(seed)

    def noisy(values: np.ndarray) -> np.ndarray:
        if noise == 0:
            return values
        return values * rng.lognormal(mean=0.0, sigma=noise,
                                      size=np.shape(values))

    # Gummel plot: junction voltages are the *internal* ones; the bench
    # applies terminal voltages, so the ohmic drops are part of the data
    # (and the extraction must stay below the currents where they bite).
    vbe = np.linspace(*vbe_range, gummel_points)
    ic = np.empty_like(vbe)
    ib = np.empty_like(vbe)
    for i, v in enumerate(vbe):
        # terminal Vbe -> internal via a fixed-point on the ohmic drops
        v_int = v
        for _ in range(30):
            op = evaluate(golden, v_int, v_int - vce_gummel)
            drop = op.ib * golden.rbm_effective + (op.ib + op.ic) * golden.RE
            v_new = v - drop
            if abs(v_new - v_int) < 1e-9:
                break
            v_int = 0.5 * v_int + 0.5 * v_new
        op = evaluate(golden, v_int, v_int - vce_gummel)
        ic[i] = max(op.ic, 1e-18)
        ib[i] = max(op.ib, 1e-18)
    gummel = GummelPlot(vce_gummel, vbe, noisy(ic), noisy(ib))

    # Junction C-V in reverse bias (forward voltage = -reverse voltage).
    vr = np.linspace(0.0, cv_max_reverse, cv_points)
    c_be = np.array([
        depletion_charge(-v, golden.CJE, golden.VJE, golden.MJE, golden.FC)[1]
        for v in vr
    ])
    c_bc = np.array([
        depletion_charge(-v, golden.CJC, golden.VJC, golden.MJC, golden.FC)[1]
        for v in vr
    ])
    cv_be = CVCurve("be", vr, noisy(c_be))
    cv_bc = CVCurve("bc", vr, noisy(c_bc))

    # fT sweep.
    ics = np.geomspace(*ft_ic_range, ft_points)
    fts = np.array([ft_at_ic(golden, float(i), ft_vce).ft for i in ics])
    ft_sweep = FTSweep(ft_vce, ics, noisy(fts))

    def noisy_scalar(value: float) -> float:
        if noise == 0:
            return value
        return float(value * rng.lognormal(0.0, noise))

    return MeasurementSet(
        gummel=gummel,
        cv_be=cv_be,
        cv_bc=cv_bc,
        ft_sweep=ft_sweep,
        re_ohmic=noisy_scalar(golden.RE),
        rb_ohmic=noisy_scalar(golden.RB),
        rc_ohmic=noisy_scalar(golden.RC),
    )

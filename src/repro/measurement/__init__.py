"""Synthetic device measurement and model parameter extraction."""

from .synthetic import (
    CVCurve,
    FTSweep,
    GummelPlot,
    MeasurementSet,
    measure_device,
)
from .extraction import (
    ExtractionReport,
    extract_bf,
    extract_ikf,
    extract_is_nf,
    extract_ise_ne,
    extract_parameters,
    extract_tf,
    extract_xtf_itf,
    fit_junction_cv,
)

__all__ = [
    "GummelPlot",
    "CVCurve",
    "FTSweep",
    "MeasurementSet",
    "measure_device",
    "ExtractionReport",
    "extract_parameters",
    "extract_is_nf",
    "extract_bf",
    "extract_ise_ne",
    "extract_ikf",
    "fit_junction_cv",
    "extract_tf",
    "extract_xtf_itf",
]

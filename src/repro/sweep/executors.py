"""Pluggable sweep executors: serial, thread pool, persistent process pool.

An executor's only job is ``map_chunks(fn, chunks)``: apply ``fn`` to
every chunk and return the results *in submission order*.  All sweep
semantics — chunk formation, per-point seeding, warm-start chains,
caching — live in the orchestrator and are identical across executors,
which is what makes the backends interchangeable and their results
bit-identical.

Process pools are **persistent**: the first ``map_chunks`` call for a
given worker count spins a pool up (and pays the fork/exec tax once),
every later call — from any sweep in the process — reuses it.  Workers
cache the deserialized evaluation function by content hash, so a sweep
function that carries an expensive payload (a circuit that must be
parsed and compiled, say) crosses the pipe and is rebuilt **once per
worker**; after that only the point chunks travel.  Pools idle-reap
after :data:`POOL_IDLE_REAP_SECONDS` — but never while a dispatch is in
flight, and idleness is measured from dispatch *completion* — and are
torn down at interpreter exit; a pool broken by a dying worker is
discarded and respawned by :func:`map_chunks_with_retries`'s backoff
loop.  The registry is lock-guarded: concurrent sweeps (thread fan-out,
the :mod:`repro.service` job workers) may fetch, spawn and reap pools
from many threads at once.

The process executor requires ``fn`` (a partial over the module-level
chunk evaluator) and every point's parameters to be picklable; the
rewired callers in :mod:`repro.geometry.variation`,
:mod:`repro.rfsystems.image_rejection` and :mod:`repro.devices.ft` use
module-level evaluation functions for exactly this reason.

Every ``map_chunks`` call records a :class:`DispatchStats` on the
executor (``backend.dispatch``): serialized payload bytes, pool spin-up
seconds, and per-chunk submit-to-result latencies.  The orchestrator
copies these into :class:`~repro.sweep.orchestrator.SweepStats` so the
cost model's inputs are observable (``repro run --profile``).
"""

from __future__ import annotations

import atexit
import hashlib
import os
import pickle
import threading
import time
from concurrent.futures import (
    BrokenExecutor,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from dataclasses import dataclass, field

from ..errors import AnalysisError, SweepError

#: Pool faults that a retry on a fresh pool can plausibly cure: a worker
#: killed by the OS (OOM, signal) surfaces as ``BrokenProcessPool``, a
#: subclass of ``BrokenExecutor``.  Exceptions raised *by the evaluation
#: function* are not in this family — they propagate (or are captured
#: per point by the orchestrator's on_error policy).
TRANSIENT_EXECUTOR_FAULTS = (BrokenExecutor,)

#: A persistent pool untouched for this long is shut down on the next
#: pool-registry access (workers holding compiled circuits are not free).
POOL_IDLE_REAP_SECONDS = 300.0


def _default_jobs() -> int:
    """Usable CPUs for worker pools.

    ``os.cpu_count()`` reports the *machine's* cores, which oversubscribes
    cgroup-limited containers and CI runners pinned to a CPU subset;
    ``sched_getaffinity`` reports the CPUs this process may actually run
    on, so prefer it where the platform provides it.
    """
    affinity = getattr(os, "sched_getaffinity", None)
    if affinity is not None:
        try:
            return max(len(affinity(0)), 1)
        except OSError:  # pragma: no cover - platform quirk
            pass
    return max(os.cpu_count() or 1, 1)


def _validate_workers(name: str, jobs) -> int | None:
    """Normalize a ``jobs`` argument; reject silently-unusable counts.

    ``None`` means "pick the default" and passes through; anything else
    must be a positive integer.  The historical behaviour — ``jobs=0``
    falling back to the default and negative counts degrading to serial
    — hid configuration mistakes, so both now raise.
    """
    if jobs is None:
        return None
    if isinstance(jobs, bool) or not isinstance(jobs, int):
        raise SweepError(
            f"{name} executor worker count must be a positive integer, "
            f"got {jobs!r}"
        )
    if jobs < 1:
        raise SweepError(
            f"{name} executor needs at least 1 worker, got {jobs}"
        )
    return jobs


@dataclass
class DispatchStats:
    """What one ``map_chunks`` call cost beyond the evaluations themselves."""

    #: bytes serialized toward workers (function payload + point chunks);
    #: 0 for in-process backends, which serialize nothing.
    payload_bytes: int = 0
    #: serialized size of the evaluation function alone (sent once per
    #: worker that has not cached it yet).
    fn_bytes: int = 0
    #: pool spin-up time paid by *this* call (0.0 when a persistent pool
    #: was reused).
    spinup_seconds: float = 0.0
    #: True when the call reused an already-running persistent pool.
    pool_reused: bool = False
    #: per-chunk submit-to-result wall times, submission order.
    chunk_seconds: list[float] = field(default_factory=list)

    def chunk_percentile(self, q: float) -> float:
        """Nearest-rank percentile of the per-chunk latencies (seconds)."""
        if not self.chunk_seconds:
            return 0.0
        ordered = sorted(self.chunk_seconds)
        rank = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
        return ordered[rank]


# ---------------------------------------------------------------------------
# persistent process pools
# ---------------------------------------------------------------------------


class _PoolState:
    """One live persistent pool plus its bookkeeping."""

    __slots__ = ("pool", "workers", "spinup_seconds", "last_used",
                 "in_flight")

    def __init__(self, workers: int):
        t0 = time.perf_counter()
        self.pool = ProcessPoolExecutor(max_workers=workers)
        # Submitting one no-op per worker forces the executor to spawn
        # its full complement now, so the spin-up cost lands here — once
        # — instead of smearing into the first real chunk's latency.
        for future in [self.pool.submit(_noop) for _ in range(workers)]:
            future.result()
        self.spinup_seconds = time.perf_counter() - t0
        self.workers = workers
        self.last_used = time.monotonic()
        #: ``map_chunks`` calls currently dispatching through this pool.
        #: A pool with in-flight work is never idle-reaped, however long
        #: its chunks run.
        self.in_flight = 0


#: Live pools keyed by worker count.  Process-global: every sweep in the
#: interpreter shares them, which is the whole point.  Every access goes
#: through :data:`_POOLS_LOCK`: concurrent sweeps (thread executors over
#: sweeps, the service layer's worker threads) fetch, spawn, reap and
#: discard pools from many threads at once.
_POOLS: dict[int, _PoolState] = {}
_POOLS_LOCK = threading.Lock()
_ATEXIT_REGISTERED = False


def _noop():
    return None


def _reap_idle_locked(now: float, keep: int | None = None) -> list[_PoolState]:
    """Pop every reapable pool; caller holds the lock and shuts them down.

    A pool is reapable when it is not the ``keep`` size, has **no
    in-flight dispatches**, and has sat untouched past
    :data:`POOL_IDLE_REAP_SECONDS`.  ``last_used`` is refreshed on
    dispatch *completion* (see :func:`_release_pool`), so a chunk running
    longer than the reap window never marks its own pool idle.
    """
    victims = []
    for size in list(_POOLS):
        state = _POOLS[size]
        if (size != keep and state.in_flight == 0
                and now - state.last_used > POOL_IDLE_REAP_SECONDS):
            victims.append(_POOLS.pop(size))
    return victims


def _get_pool(workers: int, lease: bool = False) -> tuple[_PoolState, bool]:
    """Fetch-or-spawn the persistent pool for ``workers``.

    Returns ``(state, reused)``.  Also reaps pools (any size) that have
    sat idle past :data:`POOL_IDLE_REAP_SECONDS` — but never a pool with
    in-flight dispatches.  With ``lease=True`` the returned pool's
    in-flight count is incremented; the caller must pair it with
    :func:`_release_pool` (the :class:`ProcessExecutor` does so in a
    ``finally``), which is what protects the pool from being reaped or
    double-spawned while its chunks run.
    """
    global _ATEXIT_REGISTERED
    with _POOLS_LOCK:
        now = time.monotonic()
        victims = _reap_idle_locked(now, keep=workers)
        state = _POOLS.get(workers)
        if state is not None:
            state.last_used = now
            if lease:
                state.in_flight += 1
            reused = True
        else:
            if not _ATEXIT_REGISTERED:
                atexit.register(shutdown_pools)
                _ATEXIT_REGISTERED = True
            # Spawning under the lock serializes concurrent cold starts:
            # two sweeps racing for the same worker count get one pool,
            # not two (the loser reuses the winner's).
            state = _POOLS[workers] = _PoolState(workers)
            if lease:
                state.in_flight += 1
            reused = False
    for victim in victims:
        victim.pool.shutdown(wait=False, cancel_futures=True)
    return state, reused


def _release_pool(state: _PoolState) -> None:
    """End one leased dispatch: refresh idleness *at completion time*."""
    with _POOLS_LOCK:
        state.in_flight = max(0, state.in_flight - 1)
        state.last_used = time.monotonic()


def _discard_pool(workers: int, state: _PoolState | None = None) -> None:
    """Drop the pool registered under ``workers`` (fault recovery).

    ``state``, when given, guards against discarding an innocent
    replacement: if another thread already respawned a fresh pool under
    the same key, that pool is left alone.
    """
    with _POOLS_LOCK:
        current = _POOLS.get(workers)
        if current is None or (state is not None and current is not state):
            return
        _POOLS.pop(workers)
    current.pool.shutdown(wait=False, cancel_futures=True)


def pool_is_warm(workers: int) -> bool:
    """Whether a persistent pool with ``workers`` workers is usefully warm.

    The dispatch cost model uses this to decide whether a process plan
    pays spin-up or rides an already-warm pool — so it must apply the
    *same* idle criterion as the reaper: a pool the next
    :func:`_get_pool` call will reap is not warm, it is a spin-up about
    to happen.  Busy pools (in-flight dispatches) are warm regardless of
    their age.
    """
    with _POOLS_LOCK:
        state = _POOLS.get(workers)
        if state is None:
            return False
        if state.in_flight > 0:
            return True
        return time.monotonic() - state.last_used <= POOL_IDLE_REAP_SECONDS


def shutdown_pools() -> None:
    """Shut down every persistent worker pool (also runs at exit)."""
    with _POOLS_LOCK:
        states = list(_POOLS.values())
        _POOLS.clear()
    for state in states:
        state.pool.shutdown(wait=False, cancel_futures=True)


#: Worker-side cache: content hash -> deserialized evaluation function.
#: Lives in the worker process; keeps the expensive part of the payload
#: (e.g. a parsed + compiled circuit) alive across chunks.
_WORKER_FN_CACHE: dict[str, object] = {}
#: How many function payloads this worker actually deserialized —
#: observable from tasks, so tests can assert the once-per-worker
#: contract.
_WORKER_FN_LOADS = 0
_WORKER_FN_CACHE_MAX = 4

#: Sentinel result meaning "this worker has no cached function under
#: that key; resend the payload".
_NEED_FN = "__need_fn__"


def _pool_task(key: str, fn_bytes: bytes | None, chunk_bytes: bytes):
    """Worker-side task: run one chunk through the (cached) function.

    ``fn_bytes`` is ``None`` for keep-warm tasks that bet on the worker
    already holding ``key``; a miss returns :data:`_NEED_FN` and the
    parent resubmits with the payload attached.  Bounded FIFO eviction
    keeps a worker from accumulating every function it ever saw.
    """
    global _WORKER_FN_LOADS
    fn = _WORKER_FN_CACHE.get(key)
    if fn is None:
        if fn_bytes is None:
            return (_NEED_FN, None)
        fn = pickle.loads(fn_bytes)
        _WORKER_FN_LOADS += 1
        while len(_WORKER_FN_CACHE) >= _WORKER_FN_CACHE_MAX:
            _WORKER_FN_CACHE.pop(next(iter(_WORKER_FN_CACHE)))
        _WORKER_FN_CACHE[key] = fn
    return ("ok", fn(pickle.loads(chunk_bytes)))


def worker_fn_loads() -> int:
    """Function payloads deserialized by *this* process's cache.

    Meaningful when called from inside a pool task (via an evaluation
    function) — the once-per-worker warm-cache contract's test hook.
    """
    return _WORKER_FN_LOADS


def map_chunks_with_retries(
    backend: "Executor",
    fn,
    chunks: list,
    retries: int = 2,
    backoff: float = 0.25,
) -> tuple[list, int]:
    """``backend.map_chunks`` with exponential backoff on pool faults.

    A ``BrokenProcessPool`` poisons the persistent pool, so the backend's
    :meth:`Executor.discard_pool` hook is invoked before each retry —
    the next ``map_chunks`` call then genuinely starts on a fresh pool.
    Waits ``backoff * 2**k`` seconds before retry ``k``; re-raises once
    ``retries`` attempts are exhausted.  Returns ``(results, faults)``
    where ``faults`` counts the recovered failures.
    """
    faults = 0
    while True:
        try:
            return backend.map_chunks(fn, chunks), faults
        except TRANSIENT_EXECUTOR_FAULTS:
            backend.discard_pool()
            if faults >= retries:
                raise
            time.sleep(backoff * (2.0 ** faults))
            faults += 1


class Executor:
    """Executor interface; subclasses set ``name`` and ``workers``.

    Construction validates the worker count: ``jobs=None`` picks the
    backend default, anything else must be a positive integer — a
    ``workers < 1`` request raises :class:`~repro.errors.SweepError`
    instead of silently degrading to serial execution.
    """

    name = "executor"
    workers = 1

    def __init__(self, jobs: int | None = None):
        jobs = _validate_workers(self.name, jobs)
        self.workers = jobs if jobs is not None else self.default_workers()
        #: :class:`DispatchStats` of the most recent ``map_chunks`` call.
        self.dispatch: DispatchStats | None = None

    def default_workers(self) -> int:
        return _default_jobs()

    def map_chunks(self, fn, chunks: list) -> list:
        raise NotImplementedError

    def discard_pool(self) -> None:
        """Drop any persistent pool this backend dispatches to (fault
        recovery hook; a no-op for in-process backends)."""

    def _serial_fallback(self, fn, chunks: list) -> list:
        """Run in-process, still recording per-chunk latencies."""
        stats = DispatchStats()
        results = []
        for chunk in chunks:
            t0 = time.perf_counter()
            results.append(fn(chunk))
            stats.chunk_seconds.append(time.perf_counter() - t0)
        self.dispatch = stats
        return results


class SerialExecutor(Executor):
    """In-process, one chunk after the other — the reference backend."""

    name = "serial"

    def __init__(self, jobs: int | None = None):
        super().__init__(jobs)
        self.workers = 1

    def default_workers(self) -> int:
        return 1

    def map_chunks(self, fn, chunks: list) -> list:
        return self._serial_fallback(fn, chunks)


class ThreadExecutor(Executor):
    """Thread pool: wins when the evaluation releases the GIL (numpy/
    LAPACK-heavy points) or waits on I/O; otherwise GIL-bound."""

    name = "thread"

    def map_chunks(self, fn, chunks: list) -> list:
        if len(chunks) <= 1 or self.workers <= 1:
            return self._serial_fallback(fn, chunks)
        stats = DispatchStats()
        t0 = time.perf_counter()
        with ThreadPoolExecutor(max_workers=self.workers) as pool:
            stats.spinup_seconds = time.perf_counter() - t0
            submitted = []
            for chunk in chunks:
                submitted.append((time.perf_counter(), pool.submit(fn, chunk)))
            results = []
            for started, future in submitted:
                results.append(future.result())
                stats.chunk_seconds.append(time.perf_counter() - started)
        self.dispatch = stats
        return results


class ProcessExecutor(Executor):
    """Chunked dispatch to a persistent process pool — the throughput
    backend.

    Each submitted unit is a whole chunk, so per-task IPC overhead is
    amortized over ``chunk_size`` points.  The pool is shared across
    ``map_chunks`` calls (and across :class:`ProcessExecutor` instances
    with the same worker count): spin-up is paid once per process
    lifetime, not once per sweep.  The evaluation function is pickled
    once parent-side and cached by content hash worker-side, so repeat
    chunks ship only their points.  Worker processes cannot see the
    parent's caches or engine counters; the orchestrator accounts for
    both on the parent side.
    """

    name = "process"

    def map_chunks(self, fn, chunks: list) -> list:
        if len(chunks) <= 1 or self.workers <= 1:
            return self._serial_fallback(fn, chunks)
        workers = min(self.workers, len(chunks))
        state, reused = _get_pool(workers, lease=True)
        self._last_pool_size = workers
        self._last_pool_state = state
        stats = DispatchStats(
            spinup_seconds=0.0 if reused else state.spinup_seconds,
            pool_reused=reused,
        )
        fn_bytes = pickle.dumps(fn, protocol=pickle.HIGHEST_PROTOCOL)
        key = hashlib.sha256(fn_bytes).hexdigest()
        stats.fn_bytes = len(fn_bytes)
        chunk_blobs = [
            pickle.dumps(chunk, protocol=pickle.HIGHEST_PROTOCOL)
            for chunk in chunks
        ]
        stats.payload_bytes = sum(len(blob) for blob in chunk_blobs)
        submitted = []
        for i, blob in enumerate(chunk_blobs):
            # The first task per worker must carry the function payload;
            # later tasks bet on the worker-side cache and only fall back
            # to a resend when they land on a worker that missed out.
            payload = fn_bytes if i < workers else None
            if payload is not None:
                stats.payload_bytes += len(fn_bytes)
            submitted.append((
                time.perf_counter(),
                state.pool.submit(_pool_task, key, payload, blob),
            ))
        results = []
        try:
            for i, (started, future) in enumerate(submitted):
                status, value = future.result()
                if status == _NEED_FN:
                    stats.payload_bytes += len(fn_bytes)
                    retry = state.pool.submit(
                        _pool_task, key, fn_bytes, chunk_blobs[i]
                    )
                    status, value = retry.result()
                results.append(value)
                stats.chunk_seconds.append(time.perf_counter() - started)
        except TRANSIENT_EXECUTOR_FAULTS:
            self.discard_pool()
            raise
        except BaseException:
            # A chunk raised (on_error="raise" semantics): don't leave
            # the rest of the sweep burning cores on the shared pool.
            for _, future in submitted[len(results) + 1:]:
                future.cancel()
            raise
        finally:
            _release_pool(state)
            self.dispatch = stats
        return results

    _last_pool_size: int | None = None
    _last_pool_state: _PoolState | None = None

    def discard_pool(self) -> None:
        if self._last_pool_size is not None:
            _discard_pool(self._last_pool_size, self._last_pool_state)


class AutoExecutor(Executor):
    """Placeholder backend for ``executor="auto"`` / ``jobs="auto"``.

    The orchestrator intercepts it: a probe chunk is timed in-process,
    the :mod:`repro.sweep.costmodel` picks serial/thread/process and the
    chunk size, and dispatch proceeds on the chosen real backend.  Used
    directly (``map_chunks``), it degrades to serial execution.
    """

    name = "auto"

    def map_chunks(self, fn, chunks: list) -> list:
        return self._serial_fallback(fn, chunks)


def resolve_executor(executor=None, jobs=None) -> Executor:
    """Resolve an ``executor=``/``jobs=`` argument pair.

    ``None`` picks serial unless ``jobs`` asks for more than one worker,
    in which case the persistent process pool is used (the only backend
    that speeds up pure-python evaluation).  ``"auto"`` — as either
    argument — defers the choice to the dispatch cost model (see
    :func:`~repro.sweep.run_sweep`).  Strings name a backend explicitly;
    an :class:`Executor` instance passes through.
    """
    if isinstance(executor, Executor):
        return executor
    if executor == "auto" or (executor is None and jobs == "auto"):
        return AutoExecutor(None if jobs in (None, "auto") else jobs)
    if jobs == "auto":
        jobs = None
    if jobs is not None:
        _validate_workers(executor if isinstance(executor, str) else "the",
                          jobs)
    if executor is None:
        if jobs is None or jobs <= 1:
            return SerialExecutor()
        return ProcessExecutor(jobs)
    if executor == "serial":
        return SerialExecutor()
    if executor == "thread":
        return ThreadExecutor(jobs)
    if executor == "process":
        return ProcessExecutor(jobs)
    raise AnalysisError(
        f"unknown executor {executor!r}; expected 'serial', 'thread', "
        "'process', 'auto' or an Executor instance"
    )

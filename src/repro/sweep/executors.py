"""Pluggable sweep executors: serial, thread pool, process pool.

An executor's only job is ``map_chunks(fn, chunks)``: apply ``fn`` to
every chunk and return the results *in submission order*.  All sweep
semantics — chunk formation, per-point seeding, warm-start chains,
caching — live in the orchestrator and are identical across executors,
which is what makes the backends interchangeable and their results
bit-identical.

The process executor requires ``fn`` (a partial over the module-level
chunk evaluator) and every point's parameters to be picklable; the
rewired callers in :mod:`repro.geometry.variation`,
:mod:`repro.rfsystems.image_rejection` and :mod:`repro.devices.ft` use
module-level evaluation functions for exactly this reason.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import (
    BrokenExecutor,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)

from ..errors import AnalysisError

#: Pool faults that a retry on a fresh pool can plausibly cure: a worker
#: killed by the OS (OOM, signal) surfaces as ``BrokenProcessPool``, a
#: subclass of ``BrokenExecutor``.  Exceptions raised *by the evaluation
#: function* are not in this family — they propagate (or are captured
#: per point by the orchestrator's on_error policy).
TRANSIENT_EXECUTOR_FAULTS = (BrokenExecutor,)


def _default_jobs() -> int:
    return max(os.cpu_count() or 1, 1)


def map_chunks_with_retries(
    backend: "Executor",
    fn,
    chunks: list,
    retries: int = 2,
    backoff: float = 0.25,
) -> tuple[list, int]:
    """``backend.map_chunks`` with exponential backoff on pool faults.

    Every executor builds a fresh pool per ``map_chunks`` call, so a
    retry after ``BrokenProcessPool`` genuinely starts clean.  Waits
    ``backoff * 2**k`` seconds before retry ``k``; re-raises once
    ``retries`` attempts are exhausted.  Returns ``(results, faults)``
    where ``faults`` counts the recovered failures.
    """
    faults = 0
    while True:
        try:
            return backend.map_chunks(fn, chunks), faults
        except TRANSIENT_EXECUTOR_FAULTS:
            if faults >= retries:
                raise
            time.sleep(backoff * (2.0 ** faults))
            faults += 1


class Executor:
    """Executor interface; subclasses set ``name`` and ``workers``."""

    name = "executor"
    workers = 1

    def map_chunks(self, fn, chunks: list) -> list:
        raise NotImplementedError


class SerialExecutor(Executor):
    """In-process, one chunk after the other — the reference backend."""

    name = "serial"
    workers = 1

    def map_chunks(self, fn, chunks: list) -> list:
        return [fn(chunk) for chunk in chunks]


class ThreadExecutor(Executor):
    """Thread pool: wins when the evaluation releases the GIL (numpy/
    LAPACK-heavy points) or waits on I/O; otherwise GIL-bound."""

    name = "thread"

    def __init__(self, jobs: int | None = None):
        self.workers = jobs or _default_jobs()

    def map_chunks(self, fn, chunks: list) -> list:
        if len(chunks) <= 1 or self.workers <= 1:
            return [fn(chunk) for chunk in chunks]
        with ThreadPoolExecutor(max_workers=self.workers) as pool:
            return list(pool.map(fn, chunks))


class ProcessExecutor(Executor):
    """Process pool with chunked dispatch — the throughput backend.

    Each submitted unit is a whole chunk, so per-task IPC overhead is
    amortized over ``chunk_size`` points.  Worker processes cannot see
    the parent's caches or engine counters; the orchestrator accounts
    for both on the parent side.
    """

    name = "process"

    def __init__(self, jobs: int | None = None):
        self.workers = jobs or _default_jobs()

    def map_chunks(self, fn, chunks: list) -> list:
        if len(chunks) <= 1 or self.workers <= 1:
            return [fn(chunk) for chunk in chunks]
        workers = min(self.workers, len(chunks))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(fn, chunks))


def resolve_executor(executor=None, jobs: int | None = None) -> Executor:
    """Resolve an ``executor=``/``jobs=`` argument pair.

    ``None`` picks serial unless ``jobs`` asks for more than one worker,
    in which case the process pool is used (the only backend that speeds
    up pure-python evaluation).  Strings name a backend explicitly; an
    :class:`Executor` instance passes through.
    """
    if isinstance(executor, Executor):
        return executor
    if executor is None:
        if jobs is None or jobs <= 1:
            return SerialExecutor()
        return ProcessExecutor(jobs)
    if executor == "serial":
        return SerialExecutor()
    if executor == "thread":
        return ThreadExecutor(jobs)
    if executor == "process":
        return ProcessExecutor(jobs)
    raise AnalysisError(
        f"unknown executor {executor!r}; expected 'serial', 'thread', "
        "'process' or an Executor instance"
    )

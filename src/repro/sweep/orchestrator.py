"""The sweep engine: chunked, cached, executor-agnostic point evaluation.

Execution model (see ``docs/sweeps.md`` for the full contract):

1. The point list is split into **chunks** of ``chunk_size`` consecutive
   points.  Chunking depends only on the point count and ``chunk_size``
   — never on the executor or worker count — so any two runs of the same
   sweep form identical chunks.
2. Chunks are dispatched through the executor.  A chunk is the dispatch
   unit (amortizing process-pool IPC) *and* the warm-start unit: with
   ``warm_start=True`` each chunk evaluates its points in order,
   threading the previous point's returned state into the next call,
   and every chunk starts cold.  Serial and parallel runs therefore
   execute bit-identical warm chains.
3. Stochastic points carry their own :class:`~numpy.random.SeedSequence`
   child (see :mod:`repro.sweep.grid`); the evaluator receives a fresh
   generator per point, so the sample stream is a function of the point
   index alone.
4. With a :class:`~repro.sweep.cache.ResultCache`, points (chunks, in
   warm mode) whose content key is already present are never
   re-evaluated.

Fault tolerance — the ``on_error`` policy:

* ``"raise"`` (default): the first evaluation exception aborts the
  sweep, exactly as a plain loop would.
* ``"skip"``: failing points are recorded as picklable
  :class:`FailedPoint` records (exception repr, parameters, and the
  solver's :class:`~repro.errors.ConvergenceReport` when one is
  attached) on :attr:`SweepResult.failures`; every other point's value
  — and cache entry — survives.
* ``"retry"``: like ``"skip"``, but a point failing with
  :class:`~repro.errors.ConvergenceError` is re-evaluated up to
  ``retries`` times first.  If the evaluation function accepts an
  ``attempt`` keyword, retries pass ``attempt=1, 2, ...`` so it can
  escalate (e.g. :func:`repro.spice.dcop.solve_dc` perturbs its initial
  guess and walks a heavier gmin ladder).

Transient executor faults (a worker killed by the OS —
``BrokenProcessPool`` and friends) are retried with exponential backoff
on a fresh pool regardless of ``on_error``; see
:func:`repro.sweep.executors.map_chunks_with_retries`.

Evaluation-function convention — ``fn(params)`` plus, when applicable:

* ``fn(params, rng=generator)`` for seeded points,
* ``fn(params, warm=state) -> (value, state)`` with ``warm_start=True``
  (``warm`` is ``None`` at the start of each chunk), and both keywords
  together when both features are active,
* ``fn(params, attempt=k)`` on the ``k``-th retry when the function
  opts in by declaring the keyword.
"""

from __future__ import annotations

import functools
import hashlib
import inspect
import math
import pickle
import time as _time
from dataclasses import dataclass, field

import numpy as np

from ..errors import AnalysisError, ConvergenceError, ConvergenceReport, \
    SweepError
from ..spice.engine import GLOBAL_STATS
from .cache import ResultCache, content_key
from .costmodel import DEFAULT_COST_MODEL
from .executors import (
    AutoExecutor,
    Executor,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    map_chunks_with_retries,
    pool_is_warm,
    resolve_executor,
)
from .grid import SweepPoint

#: Valid ``on_error`` policies for :func:`run_sweep`.
ON_ERROR_POLICIES = ("raise", "skip", "retry")


@dataclass
class FailedPoint:
    """Picklable record of one sweep point that could not be evaluated.

    Captured inside the (possibly remote) chunk evaluator, so it carries
    only plain data: the exception's repr and type name, the point's
    parameters, the attempt count, and — when the failure was a
    :class:`~repro.errors.ConvergenceError` — the solver's structured
    :class:`~repro.errors.ConvergenceReport`.
    """

    index: int  #: the point's position in the sweep
    params: dict  #: the point's parameter dict
    error: str  #: ``repr()`` of the exception
    error_type: str  #: exception class name (e.g. ``"ConvergenceError"``)
    report: ConvergenceReport | None = None  #: solver forensics, if any
    attempts: int = 1  #: total evaluation attempts, retries included

    @classmethod
    def from_exception(cls, point: SweepPoint, exc: BaseException,
                       attempts: int) -> "FailedPoint":
        return cls(
            index=point.index,
            params=dict(point.params),
            error=repr(exc),
            error_type=type(exc).__name__,
            report=getattr(exc, "report", None),
            attempts=attempts,
        )

    def summary(self) -> str:
        text = f"{self.label()}: {self.error}"
        if self.attempts > 1:
            text += f" (after {self.attempts} attempts)"
        if self.report is not None:
            text += f" [{self.report.summary()}]"
        return text

    def label(self) -> str:
        return SweepPoint(index=self.index, params=self.params).label()


@dataclass
class SweepStats:
    """Counters for one sweep run (mirrored into engine GLOBAL_STATS)."""

    points: int = 0  #: total points in the sweep
    evaluated: int = 0  #: points actually evaluated (not cache-served)
    cache_hits: int = 0  #: points served from the result cache
    chunks: int = 0  #: chunks dispatched to the executor
    workers: int = 1  #: executor worker count
    executor: str = "serial"  #: executor backend name
    wall_seconds: float = 0.0  #: whole-sweep wall time (parent side)
    point_seconds: float = 0.0  #: summed per-point evaluation time
    failures: int = 0  #: points that failed (skip/retry policies)
    retries: int = 0  #: extra evaluation attempts spent on retries
    executor_faults: int = 0  #: transient pool faults recovered from
    on_error: str = "raise"  #: failure policy the sweep ran under
    payload_bytes: int = 0  #: bytes serialized toward workers (0 in-process)
    spinup_seconds: float = 0.0  #: pool spin-up paid by this sweep
    chunk_p50_seconds: float = 0.0  #: median chunk submit-to-result latency
    chunk_p99_seconds: float = 0.0  #: tail chunk submit-to-result latency
    plan: str = ""  #: dispatch cost-model decision (``--jobs auto`` only)

    def points_per_second(self) -> float:
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.points / self.wall_seconds

    def as_dict(self) -> dict:
        return {
            "points": self.points,
            "evaluated": self.evaluated,
            "cache_hits": self.cache_hits,
            "chunks": self.chunks,
            "workers": self.workers,
            "executor": self.executor,
            "wall_seconds": self.wall_seconds,
            "point_seconds": self.point_seconds,
            "failures": self.failures,
            "retries": self.retries,
            "executor_faults": self.executor_faults,
            "on_error": self.on_error,
            "payload_bytes": self.payload_bytes,
            "spinup_seconds": self.spinup_seconds,
            "chunk_p50_seconds": self.chunk_p50_seconds,
            "chunk_p99_seconds": self.chunk_p99_seconds,
            "plan": self.plan,
        }

    def summary(self) -> str:
        text = (
            f"{self.points} points ({self.evaluated} evaluated, "
            f"{self.cache_hits} cached) in {self.chunks} chunks on "
            f"{self.workers} {self.executor} worker(s), "
            f"{self.wall_seconds * 1e3:.2f} ms wall "
            f"({self.points_per_second():.0f} pts/s)"
        )
        if self.failures or self.retries or self.executor_faults:
            text += (
                f"; {self.failures} failed point(s), "
                f"{self.retries} retry attempt(s), "
                f"{self.executor_faults} executor fault(s) "
                f"[on_error={self.on_error}]"
            )
        if self.payload_bytes or self.spinup_seconds:
            text += (
                f"; dispatch: {self.payload_bytes} payload bytes, "
                f"{self.spinup_seconds * 1e3:.1f} ms spin-up, "
                f"chunk p50/p99 {self.chunk_p50_seconds * 1e3:.2f}/"
                f"{self.chunk_p99_seconds * 1e3:.2f} ms"
            )
        if self.plan:
            text += f"; plan: {self.plan}"
        return text


@dataclass
class SweepResult:
    """Ordered sweep output: one value per point, plus run statistics.

    Under ``on_error="skip"``/``"retry"``, failed points hold ``None``
    in :attr:`values` and are described in :attr:`failures`.
    """

    points: list[SweepPoint]
    values: list
    stats: SweepStats
    #: per-point evaluation seconds (0.0 for cache-served points)
    point_seconds: list[float] = field(default_factory=list)
    #: one record per point that could not be evaluated
    failures: list[FailedPoint] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.values)

    @property
    def ok(self) -> bool:
        """True when every point produced a value."""
        return not self.failures

    def failed_indices(self) -> list[int]:
        return [failure.index for failure in self.failures]

    def value_array(self, dtype=float, skip_failed: bool = False) -> np.ndarray:
        """Values as an array; ``skip_failed=True`` drops failed points.

        With failures present and ``skip_failed=False`` this raises —
        silently coercing the ``None`` placeholders would poison the
        array.
        """
        if self.failures and not skip_failed:
            raise AnalysisError(
                f"sweep has {len(self.failures)} failed point(s) at "
                f"indices {self.failed_indices()}; pass "
                "skip_failed=True or inspect result.failures"
            )
        if skip_failed:
            failed = set(self.failed_indices())
            kept = [v for i, v in enumerate(self.values) if i not in failed]
            return np.asarray(kept, dtype=dtype)
        return np.asarray(self.values, dtype=dtype)

    def param_array(self, name: str, skip_failed: bool = False) -> np.ndarray:
        """One parameter across the points (aligned with ``value_array``
        called with the same ``skip_failed``)."""
        if any(name not in p.params for p in self.points):
            available = sorted({k for p in self.points for k in p.params})
            raise AnalysisError(
                f"sweep has no parameter {name!r}; available parameters: "
                f"{available}"
            )
        if skip_failed:
            failed = set(self.failed_indices())
            return np.asarray([
                p.params[name] for i, p in enumerate(self.points)
                if i not in failed
            ])
        return np.asarray([p.params[name] for p in self.points])

    def failure_summary(self) -> str:
        """One line per failure, or a clean-run message."""
        if not self.failures:
            return "no failed points"
        lines = [f"{len(self.failures)} of {len(self.points)} "
                 "point(s) failed:"]
        lines.extend(f"  {failure.summary()}" for failure in self.failures)
        return "\n".join(lines)


def _default_chunk_size(count: int) -> int:
    """Deterministic default: ~32 chunks, at least 1 point each.

    Depends only on the point count — never on the executor — so serial
    and parallel runs of one sweep always form the same chunks.
    """
    return max(1, math.ceil(count / 32))


def _code_object(fn):
    """The code object behind a callable, or None (builtins, C funcs)."""
    code = getattr(fn, "__code__", None)
    if code is not None:
        return code
    call = getattr(fn, "__call__", None)
    return getattr(call, "__code__", None)


def _evaluation_tag(fn, require_code: bool = False) -> str:
    """A content tag identifying the evaluation, partial args included.

    The tag mixes a hash of the function's compiled bytecode into its
    module-qualified name, so two different lambdas sharing one
    ``__qualname__`` (both ``<lambda>`` in the same scope) get distinct
    cache keys instead of silently serving each other's results.
    ``require_code=True`` (set when a cache is in play) refuses
    callables with no reachable code object — their tag could collide
    undetectably — directing the caller to pass an explicit
    ``cache_tag``.

    A callable may take charge of its own identity by exposing a
    ``__cache_tag__`` string (see
    :class:`~repro.sweep.batched.BlockedDCSweep`, whose behaviour lives
    in instance state — deck text — that bytecode hashing cannot see).
    """
    own_tag = getattr(fn, "__cache_tag__", None)
    if isinstance(own_tag, str) and own_tag:
        return own_tag
    if isinstance(fn, functools.partial):
        from .cache import _canonical

        inner = _evaluation_tag(fn.func, require_code=require_code)
        return (f"partial({inner},{_canonical(list(fn.args))},"
                f"{_canonical(dict(fn.keywords))})")
    module = getattr(fn, "__module__", "?")
    qualname = getattr(fn, "__qualname__", repr(fn))
    code = _code_object(fn)
    if code is None:
        if require_code:
            raise AnalysisError(
                f"cannot derive a collision-safe cache tag for "
                f"{module}.{qualname} (no code object); pass an "
                "explicit cache_tag= to run_sweep"
            )
        return f"{module}.{qualname}"
    # co_code alone is not enough: ``lambda p: p["x"] * 2`` and
    # ``lambda p: p["x"] * 10`` share bytecode (the constant lives in
    # co_consts), as do closures over different captured values.
    hasher = hashlib.sha256(code.co_code)
    hasher.update(repr(code.co_consts).encode())
    hasher.update(repr(code.co_names).encode())
    closure = getattr(fn, "__closure__", None)
    if closure:
        for cell in closure:
            try:
                hasher.update(repr(cell.cell_contents).encode())
            except ValueError:  # empty cell
                hasher.update(b"<empty>")
    digest = hasher.hexdigest()[:12]
    return f"{module}.{qualname}#{digest}"


def _accepts_keyword(fn, name: str) -> bool:
    """Whether calling ``fn(..., name=...)`` can succeed (best effort)."""
    try:
        signature = inspect.signature(fn)
    except (TypeError, ValueError):
        return False
    for parameter in signature.parameters.values():
        if parameter.kind is parameter.VAR_KEYWORD:
            return True
        if parameter.name == name and parameter.kind in (
            parameter.POSITIONAL_OR_KEYWORD, parameter.KEYWORD_ONLY
        ):
            return True
    return False


def _evaluate_chunk_batched(
    fn,
    on_error: str,
    retries: int,
    pass_attempt: bool,
    chunk: list[SweepPoint],
):
    """Evaluate one chunk through ``fn.evaluate_batch`` (blocked solve).

    Lane semantics mirror the scalar path exactly: ``evaluate_batch``
    returns ``[(value, error_or_None), ...]`` where each lane's error —
    produced by the batched solver's scalar fallback — is the *same*
    exception the scalar path would have raised.  Under ``raise`` the
    first failed lane (chunk order) re-raises it; under ``retry``,
    failed convergence lanes are re-run through the scalar ``fn(params,
    attempt=k)`` escalation, identical to a scalar chunk's retry chain.

    Per-point timings are the batch wall time spread evenly across the
    lanes (a blocked solve has no per-lane clock), plus any scalar retry
    time a lane actually spent.
    """
    t0 = _time.perf_counter()
    outcomes = fn.evaluate_batch([point.params for point in chunk])
    per_lane = (_time.perf_counter() - t0) / max(1, len(chunk))
    values = []
    seconds = []
    failures: list[FailedPoint] = []
    retries_used = 0
    max_attempts = retries + 1 if on_error == "retry" else 1
    for point, (value, error) in zip(chunk, outcomes):
        spent = per_lane
        attempts = 1
        if error is not None and on_error == "raise":
            raise error
        while (error is not None and isinstance(error, ConvergenceError)
               and attempts < max_attempts):
            retries_used += 1
            kwargs = {"attempt": attempts} if pass_attempt else {}
            t1 = _time.perf_counter()
            try:
                value = fn(point.params, **kwargs)
                error = None
            except Exception as exc:
                error = exc
            spent += _time.perf_counter() - t1
            attempts += 1
        if error is not None:
            failures.append(
                FailedPoint.from_exception(point, error, attempts)
            )
            value = None
        values.append(value)
        seconds.append(spent)
    return values, seconds, failures, retries_used


def _evaluate_chunk(
    fn,
    warm_start: bool,
    on_error: str,
    retries: int,
    pass_attempt: bool,
    use_batch: bool,
    chunk: list[SweepPoint],
):
    """Evaluate one chunk in order; the process-pool work function.

    Returns ``(values, seconds, failures, retries_used)`` aligned with
    the chunk's points (``values[i]`` is None for failed points).
    Module-level (not a closure) so it pickles for the process executor.

    ``use_batch`` routes the chunk through ``fn.evaluate_batch`` — one
    blocked solve for the whole chunk — when the chunk qualifies: no
    warm chain and no seeded points (a batched solver cannot thread
    per-point generators).

    Failure semantics: under ``skip``/``retry`` an exception is captured
    as a :class:`FailedPoint` and the chunk continues; a warm chain
    carries the last *successful* state past a failed point.  Retries
    apply to :class:`~repro.errors.ConvergenceError` only — other
    exceptions are deterministic and re-running them is wasted work.
    """
    if (use_batch and not warm_start
            and all(point.seed is None for point in chunk)):
        return _evaluate_chunk_batched(
            fn, on_error, retries, pass_attempt, chunk
        )
    values = []
    seconds = []
    failures: list[FailedPoint] = []
    retries_used = 0
    warm = None
    max_attempts = retries + 1 if on_error == "retry" else 1
    for point in chunk:
        base_kwargs = {}
        rng = point.rng()
        if rng is not None:
            base_kwargs["rng"] = rng
        if warm_start:
            base_kwargs["warm"] = warm
        spent = 0.0
        value = None
        for attempt in range(max_attempts):
            kwargs = dict(base_kwargs)
            if attempt > 0:
                if pass_attempt:
                    kwargs["attempt"] = attempt
                if rng is not None:
                    # A fresh generator per attempt: the first draw of a
                    # retried point must match a clean run's, not resume
                    # mid-stream where the failed attempt stopped.
                    kwargs["rng"] = point.rng()
            t0 = _time.perf_counter()
            try:
                result = fn(point.params, **kwargs)
            except Exception as exc:
                spent += _time.perf_counter() - t0
                if on_error == "raise":
                    raise
                if (isinstance(exc, ConvergenceError)
                        and attempt + 1 < max_attempts):
                    retries_used += 1
                    continue
                failures.append(
                    FailedPoint.from_exception(point, exc, attempt + 1)
                )
                break
            spent += _time.perf_counter() - t0
            if warm_start:
                try:
                    value, warm = result
                except (TypeError, ValueError):
                    raise AnalysisError(
                        "warm_start evaluation functions must return "
                        "(value, warm_state) tuples"
                    ) from None
            else:
                value = result
            break
        values.append(value)
        seconds.append(spent)
    return values, seconds, failures, retries_used


def _materialize_points(points) -> list[SweepPoint]:
    """Accept grids/samplers, SweepPoint lists, or bare param dicts."""
    if hasattr(points, "points"):
        points = points.points()
    materialized = []
    for i, point in enumerate(points):
        if isinstance(point, SweepPoint):
            materialized.append(point)
        elif isinstance(point, dict):
            materialized.append(SweepPoint(index=i, params=point))
        else:
            raise AnalysisError(
                f"sweep point {i} is {type(point).__name__}; expected "
                "SweepPoint or a parameter dict"
            )
    return materialized


def _plan_auto_dispatch(
    auto: AutoExecutor,
    work,
    pending_chunks: list,
    pending_keys: list,
    warm_start: bool,
    thread_fraction: float | None = None,
):
    """Probe-then-plan for the ``auto`` executor.

    Evaluates the first pending chunk in-process — those points must be
    evaluated regardless, so the probe is free — and feeds the measured
    per-point cost plus pickled payload sizes to the dispatch cost
    model, which picks the real backend and chunk size for the rest.

    Returns ``(backend, plan_text, probe_results, chunks, keys)`` where
    ``chunks``/``keys`` are the *remaining* work, re-chunked to the
    plan's size when that is safe (never in warm mode: warm chunks are
    semantic units, and regrouping them would change results).
    Re-chunking only regroups whole points, so evaluation order within
    the sweep — and therefore every value — is unchanged.
    """
    t0 = _time.perf_counter()
    probe_results = [work(pending_chunks[0])]
    probe_seconds = _time.perf_counter() - t0
    point_seconds = probe_seconds / max(1, len(pending_chunks[0]))
    chunks = pending_chunks[1:]
    keys = pending_keys[1:]
    remaining = sum(len(chunk) for chunk in chunks)
    if remaining == 0:
        return (SerialExecutor(), "serial x1: probe consumed the sweep",
                probe_results, chunks, keys)
    try:
        fn_bytes = len(pickle.dumps(work, protocol=pickle.HIGHEST_PROTOCOL))
        point_bytes = (
            len(pickle.dumps(pending_chunks[0],
                             protocol=pickle.HIGHEST_PROTOCOL))
            / max(1, len(pending_chunks[0]))
        )
    except Exception:
        # Unpicklable evaluation: the process pool is off the table, and
        # for pure-python workloads threads rarely beat serial.
        return (SerialExecutor(), "serial x1: evaluation is not picklable",
                probe_results, chunks, keys)
    workers = auto.workers
    plan = DEFAULT_COST_MODEL.plan(
        remaining, point_seconds, point_bytes=point_bytes,
        fn_bytes=fn_bytes, workers=workers,
        pool_warm=pool_is_warm(workers),
        thread_fraction=thread_fraction,
    )
    if plan.backend == "thread":
        backend = ThreadExecutor(plan.jobs)
    elif plan.backend == "process":
        backend = ProcessExecutor(plan.jobs)
    else:
        backend = SerialExecutor()
    if plan.backend != "serial" and not warm_start:
        flat_points = [point for chunk in chunks for point in chunk]
        size = max(1, plan.chunk_size)
        rechunked = [flat_points[i:i + size]
                     for i in range(0, len(flat_points), size)]
        if all(key is None for key in keys):
            keys = [None] * len(rechunked)
        else:
            flat_keys = [key for chunk_keys in keys for key in chunk_keys]
            keys = [flat_keys[i:i + size]
                    for i in range(0, len(flat_keys), size)]
        chunks = rechunked
    return backend, plan.summary(), probe_results, chunks, keys


def run_sweep(
    fn,
    points,
    *,
    executor=None,
    jobs: int | None = None,
    chunk_size: int | None = None,
    warm_start: bool = False,
    cache: ResultCache | None = None,
    cache_tag: str | None = None,
    on_error: str = "raise",
    retries: int = 2,
    executor_retries: int = 2,
    retry_backoff: float = 0.25,
    batch: bool | str = "auto",
) -> SweepResult:
    """Evaluate ``fn`` over ``points`` with the configured executor.

    ``points`` is a :class:`ParameterGrid`, :class:`MonteCarloSampler`,
    or iterable of :class:`SweepPoint`/parameter dicts.  ``executor`` /
    ``jobs`` select the backend (see
    :func:`~repro.sweep.executors.resolve_executor`); ``cache`` enables
    content-hash result reuse; ``warm_start`` switches to the
    ``(value, state)`` continuation protocol.

    ``on_error`` selects the failure policy (``"raise"``, ``"skip"`` or
    ``"retry"`` — see the module docstring); ``retries`` bounds
    per-point re-evaluations under ``"retry"``; ``executor_retries`` and
    ``retry_backoff`` govern recovery from transient pool faults
    (``BrokenProcessPool``), which applies under every policy.

    ``batch`` controls the blocked-evaluation fast path for functions
    exposing ``supports_batch``/``evaluate_batch`` (e.g.
    :class:`~repro.sweep.batched.BlockedDCSweep`): ``"auto"`` (default)
    uses it whenever a chunk qualifies — no warm chain, no seeded
    points; ``False`` forces scalar calls; ``True`` insists the
    function is batch-capable and raises otherwise.  Batched and scalar
    chunks produce bit-identical values and identical failure records.

    With ``executor="auto"`` (or ``jobs="auto"``), the first pending
    chunk is timed in-process and the dispatch cost model picks the
    backend and chunk size for the rest — small sweeps never pay the
    process-pool tax; see :mod:`repro.sweep.costmodel`.  The chosen
    plan is recorded on ``result.stats.plan``.

    Results are returned in point order and are identical — bit for bit
    — for every executor, because chunking, seeding and warm chains are
    all independent of how chunks are scheduled.  Failed points hold
    ``None`` in ``result.values`` and are described by
    ``result.failures``; successful points are cached even when others
    in the same sweep fail.
    """
    if on_error not in ON_ERROR_POLICIES:
        raise AnalysisError(
            f"unknown on_error policy {on_error!r}; expected one of "
            f"{ON_ERROR_POLICIES}"
        )
    if retries < 0:
        raise AnalysisError("retries must be >= 0")
    if batch not in ("auto", True, False):
        raise AnalysisError(
            f"batch must be 'auto', True or False, got {batch!r}"
        )
    batch_capable = bool(getattr(fn, "supports_batch", False)) \
        and callable(getattr(fn, "evaluate_batch", None))
    if batch is True and not batch_capable:
        raise SweepError(
            "batch=True requires an evaluation function with "
            "supports_batch=True and an evaluate_batch method "
            "(see repro.sweep.batched.BlockedDCSweep)"
        )
    use_batch = batch is not False and batch_capable
    backend = resolve_executor(executor, jobs)
    points = _materialize_points(points)
    count = len(points)
    if count == 0:
        return SweepResult(points=[], values=[], stats=SweepStats(
            executor=backend.name, workers=backend.workers,
            on_error=on_error))
    if chunk_size is None:
        # Batch-capable evaluators amortize per-chunk setup (stacked
        # Newton, stacked frequency solves) and want far fewer, larger
        # chunks than the scalar default targets.  Values stay
        # bit-identical under any chunking, so this only moves overhead.
        preferred = (getattr(fn, "preferred_chunk_size", None)
                     if use_batch else None)
        size = (int(preferred(count)) if callable(preferred)
                else _default_chunk_size(count))
    else:
        size = chunk_size
    if size < 1:
        raise AnalysisError("chunk_size must be at least 1")
    chunks = [points[i:i + size] for i in range(0, count, size)]

    tag = cache_tag
    if cache is not None and tag is None:
        tag = _evaluation_tag(fn, require_code=True)
    t0 = _time.perf_counter()
    values: list = [None] * count
    seconds = [0.0] * count
    failures: list[FailedPoint] = []
    cache_hits = 0
    evaluated = 0
    retries_used = 0

    # Cache pass: per-point granularity for independent points, whole
    # chunks in warm mode (a chunk's values depend on every point in it).
    pending_chunks: list[list[SweepPoint]] = []
    pending_keys: list = []  # chunk key (warm) or per-point keys
    for chunk in chunks:
        if cache is None:
            pending_chunks.append(chunk)
            pending_keys.append(None)
            continue
        if warm_start:
            key = content_key(
                tag, {"chain": [(p.params, p.seed) for p in chunk]}
            )
            hit = cache.get(key, default=_MISS)
            if hit is not _MISS:
                for point, value in zip(chunk, hit):
                    values[point.index] = value
                cache_hits += len(chunk)
            else:
                pending_chunks.append(chunk)
                pending_keys.append(key)
        else:
            misses = []
            miss_keys = []
            for point in chunk:
                key = content_key(tag, point.params, point.seed)
                hit = cache.get(key, default=_MISS)
                if hit is not _MISS:
                    values[point.index] = hit
                    cache_hits += 1
                else:
                    misses.append(point)
                    miss_keys.append(key)
            if misses:
                pending_chunks.append(misses)
                pending_keys.append(miss_keys)

    executor_faults = 0
    plan_text = ""
    dispatched_chunks = 0
    if pending_chunks:
        pass_attempt = on_error == "retry" and _accepts_keyword(fn, "attempt")
        work = functools.partial(
            _evaluate_chunk, fn, warm_start, on_error, retries, pass_attempt,
            use_batch,
        )
        probe_results: list = []
        if isinstance(backend, AutoExecutor):
            probe_chunks = pending_chunks[:1]
            probe_keys = pending_keys[:1]
            (backend, plan_text, probe_results, rest_chunks,
             rest_keys) = _plan_auto_dispatch(
                backend, work, pending_chunks, pending_keys, warm_start,
                thread_fraction=(
                    getattr(fn, "thread_fraction_hint", None)
                    if use_batch else None
                ),
            )
            pending_chunks = probe_chunks + rest_chunks
            pending_keys = probe_keys + rest_keys
            to_dispatch = rest_chunks
        else:
            to_dispatch = pending_chunks
        if to_dispatch:
            results, executor_faults = map_chunks_with_retries(
                backend, work, to_dispatch,
                retries=executor_retries, backoff=retry_backoff,
            )
        else:
            results = []
        results = probe_results + results
        dispatched_chunks = len(to_dispatch)
        for chunk, keys, (chunk_values, chunk_seconds, chunk_failures,
                          chunk_retries) in zip(
            pending_chunks, pending_keys, results
        ):
            evaluated += len(chunk)
            retries_used += chunk_retries
            failures.extend(chunk_failures)
            failed_in_chunk = {f.index for f in chunk_failures}
            for point, value, spent in zip(
                chunk, chunk_values, chunk_seconds
            ):
                values[point.index] = value
                seconds[point.index] = spent
            if cache is not None:
                if warm_start:
                    # A broken chain is not reusable: caching it would
                    # replay the failure's None values as real results.
                    if not failed_in_chunk:
                        cache.put(keys, list(chunk_values))
                else:
                    for point, key, value in zip(chunk, keys, chunk_values):
                        if point.index not in failed_in_chunk:
                            cache.put(key, value)

    failures.sort(key=lambda failure: failure.index)
    stats = SweepStats(
        points=count,
        evaluated=evaluated,
        cache_hits=cache_hits,
        chunks=len(pending_chunks),
        workers=backend.workers,
        executor=backend.name,
        wall_seconds=_time.perf_counter() - t0,
        point_seconds=float(sum(seconds)),
        failures=len(failures),
        retries=retries_used,
        executor_faults=executor_faults,
        on_error=on_error,
        plan=plan_text,
    )
    dispatch = backend.dispatch if dispatched_chunks else None
    if dispatch is not None:
        stats.payload_bytes = dispatch.payload_bytes
        stats.spinup_seconds = dispatch.spinup_seconds
        stats.chunk_p50_seconds = dispatch.chunk_percentile(0.5)
        stats.chunk_p99_seconds = dispatch.chunk_percentile(0.99)
        if backend.name == "process":
            # Calibrate the cost model from what dispatch actually cost
            # on this machine (spin-up, warm-chunk overhead).
            DEFAULT_COST_MODEL.observe(dispatch)
    GLOBAL_STATS.sweep_points += stats.points
    GLOBAL_STATS.sweep_cache_hits += stats.cache_hits
    GLOBAL_STATS.sweep_point_seconds += stats.point_seconds
    GLOBAL_STATS.sweep_failures += stats.failures
    GLOBAL_STATS.sweep_workers = max(
        GLOBAL_STATS.sweep_workers, stats.workers
    )
    return SweepResult(
        points=points, values=values, stats=stats, point_seconds=seconds,
        failures=failures,
    )


class _Miss:
    """Sentinel distinguishing cached-None from absent."""

    __slots__ = ()


_MISS = _Miss()

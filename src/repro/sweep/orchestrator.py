"""The sweep engine: chunked, cached, executor-agnostic point evaluation.

Execution model (see ``docs/sweeps.md`` for the full contract):

1. The point list is split into **chunks** of ``chunk_size`` consecutive
   points.  Chunking depends only on the point count and ``chunk_size``
   — never on the executor or worker count — so any two runs of the same
   sweep form identical chunks.
2. Chunks are dispatched through the executor.  A chunk is the dispatch
   unit (amortizing process-pool IPC) *and* the warm-start unit: with
   ``warm_start=True`` each chunk evaluates its points in order,
   threading the previous point's returned state into the next call,
   and every chunk starts cold.  Serial and parallel runs therefore
   execute bit-identical warm chains.
3. Stochastic points carry their own :class:`~numpy.random.SeedSequence`
   child (see :mod:`repro.sweep.grid`); the evaluator receives a fresh
   generator per point, so the sample stream is a function of the point
   index alone.
4. With a :class:`~repro.sweep.cache.ResultCache`, points (chunks, in
   warm mode) whose content key is already present are never
   re-evaluated.

Evaluation-function convention — ``fn(params)`` plus, when applicable:

* ``fn(params, rng=generator)`` for seeded points,
* ``fn(params, warm=state) -> (value, state)`` with ``warm_start=True``
  (``warm`` is ``None`` at the start of each chunk), and both keywords
  together when both features are active.
"""

from __future__ import annotations

import functools
import math
import time as _time
from dataclasses import dataclass, field

import numpy as np

from ..errors import AnalysisError
from ..spice.engine import GLOBAL_STATS
from .cache import ResultCache, content_key
from .executors import Executor, resolve_executor
from .grid import SweepPoint


@dataclass
class SweepStats:
    """Counters for one sweep run (mirrored into engine GLOBAL_STATS)."""

    points: int = 0  #: total points in the sweep
    evaluated: int = 0  #: points actually evaluated (not cache-served)
    cache_hits: int = 0  #: points served from the result cache
    chunks: int = 0  #: chunks dispatched to the executor
    workers: int = 1  #: executor worker count
    executor: str = "serial"  #: executor backend name
    wall_seconds: float = 0.0  #: whole-sweep wall time (parent side)
    point_seconds: float = 0.0  #: summed per-point evaluation time

    def points_per_second(self) -> float:
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.points / self.wall_seconds

    def as_dict(self) -> dict:
        return {
            "points": self.points,
            "evaluated": self.evaluated,
            "cache_hits": self.cache_hits,
            "chunks": self.chunks,
            "workers": self.workers,
            "executor": self.executor,
            "wall_seconds": self.wall_seconds,
            "point_seconds": self.point_seconds,
        }

    def summary(self) -> str:
        return (
            f"{self.points} points ({self.evaluated} evaluated, "
            f"{self.cache_hits} cached) in {self.chunks} chunks on "
            f"{self.workers} {self.executor} worker(s), "
            f"{self.wall_seconds * 1e3:.2f} ms wall "
            f"({self.points_per_second():.0f} pts/s)"
        )


@dataclass
class SweepResult:
    """Ordered sweep output: one value per point, plus run statistics."""

    points: list[SweepPoint]
    values: list
    stats: SweepStats
    #: per-point evaluation seconds (0.0 for cache-served points)
    point_seconds: list[float] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.values)

    def value_array(self, dtype=float) -> np.ndarray:
        return np.asarray(self.values, dtype=dtype)

    def param_array(self, name: str) -> np.ndarray:
        return np.asarray([p.params[name] for p in self.points])


def _default_chunk_size(count: int) -> int:
    """Deterministic default: ~32 chunks, at least 1 point each.

    Depends only on the point count — never on the executor — so serial
    and parallel runs of one sweep always form the same chunks.
    """
    return max(1, math.ceil(count / 32))


def _evaluation_tag(fn) -> str:
    """A content tag identifying the evaluation, partial args included."""
    if isinstance(fn, functools.partial):
        from .cache import _canonical

        inner = _evaluation_tag(fn.func)
        return (f"partial({inner},{_canonical(list(fn.args))},"
                f"{_canonical(dict(fn.keywords))})")
    module = getattr(fn, "__module__", "?")
    qualname = getattr(fn, "__qualname__", repr(fn))
    return f"{module}.{qualname}"


def _evaluate_chunk(fn, warm_start: bool, chunk: list[SweepPoint]):
    """Evaluate one chunk in order; the process-pool work function.

    Returns ``(values, seconds)`` aligned with the chunk's points.
    Module-level (not a closure) so it pickles for the process executor.
    """
    values = []
    seconds = []
    warm = None
    for point in chunk:
        kwargs = {}
        rng = point.rng()
        if rng is not None:
            kwargs["rng"] = rng
        if warm_start:
            kwargs["warm"] = warm
        t0 = _time.perf_counter()
        result = fn(point.params, **kwargs)
        seconds.append(_time.perf_counter() - t0)
        if warm_start:
            try:
                value, warm = result
            except (TypeError, ValueError):
                raise AnalysisError(
                    "warm_start evaluation functions must return "
                    "(value, warm_state) tuples"
                ) from None
        else:
            value = result
        values.append(value)
    return values, seconds


def _materialize_points(points) -> list[SweepPoint]:
    """Accept grids/samplers, SweepPoint lists, or bare param dicts."""
    if hasattr(points, "points"):
        points = points.points()
    materialized = []
    for i, point in enumerate(points):
        if isinstance(point, SweepPoint):
            materialized.append(point)
        elif isinstance(point, dict):
            materialized.append(SweepPoint(index=i, params=point))
        else:
            raise AnalysisError(
                f"sweep point {i} is {type(point).__name__}; expected "
                "SweepPoint or a parameter dict"
            )
    return materialized


def run_sweep(
    fn,
    points,
    *,
    executor=None,
    jobs: int | None = None,
    chunk_size: int | None = None,
    warm_start: bool = False,
    cache: ResultCache | None = None,
    cache_tag: str | None = None,
) -> SweepResult:
    """Evaluate ``fn`` over ``points`` with the configured executor.

    ``points`` is a :class:`ParameterGrid`, :class:`MonteCarloSampler`,
    or iterable of :class:`SweepPoint`/parameter dicts.  ``executor`` /
    ``jobs`` select the backend (see
    :func:`~repro.sweep.executors.resolve_executor`); ``cache`` enables
    content-hash result reuse; ``warm_start`` switches to the
    ``(value, state)`` continuation protocol.

    Results are returned in point order and are identical — bit for bit
    — for every executor, because chunking, seeding and warm chains are
    all independent of how chunks are scheduled.
    """
    backend = resolve_executor(executor, jobs)
    points = _materialize_points(points)
    count = len(points)
    if count == 0:
        return SweepResult(points=[], values=[], stats=SweepStats(
            executor=backend.name, workers=backend.workers))
    size = _default_chunk_size(count) if chunk_size is None else chunk_size
    if size < 1:
        raise AnalysisError("chunk_size must be at least 1")
    chunks = [points[i:i + size] for i in range(0, count, size)]

    tag = cache_tag or _evaluation_tag(fn)
    t0 = _time.perf_counter()
    values: list = [None] * count
    seconds = [0.0] * count
    cache_hits = 0
    evaluated = 0

    # Cache pass: per-point granularity for independent points, whole
    # chunks in warm mode (a chunk's values depend on every point in it).
    pending_chunks: list[list[SweepPoint]] = []
    pending_keys: list = []  # chunk key (warm) or per-point keys
    for chunk in chunks:
        if cache is None:
            pending_chunks.append(chunk)
            pending_keys.append(None)
            continue
        if warm_start:
            key = content_key(
                tag, {"chain": [(p.params, p.seed) for p in chunk]}
            )
            hit = cache.get(key, default=_MISS)
            if hit is not _MISS:
                for point, value in zip(chunk, hit):
                    values[point.index] = value
                cache_hits += len(chunk)
            else:
                pending_chunks.append(chunk)
                pending_keys.append(key)
        else:
            misses = []
            miss_keys = []
            for point in chunk:
                key = content_key(tag, point.params, point.seed)
                hit = cache.get(key, default=_MISS)
                if hit is not _MISS:
                    values[point.index] = hit
                    cache_hits += 1
                else:
                    misses.append(point)
                    miss_keys.append(key)
            if misses:
                pending_chunks.append(misses)
                pending_keys.append(miss_keys)

    if pending_chunks:
        work = functools.partial(_evaluate_chunk, fn, warm_start)
        results = backend.map_chunks(work, pending_chunks)
        for chunk, keys, (chunk_values, chunk_seconds) in zip(
            pending_chunks, pending_keys, results
        ):
            evaluated += len(chunk)
            for point, value, spent in zip(
                chunk, chunk_values, chunk_seconds
            ):
                values[point.index] = value
                seconds[point.index] = spent
            if cache is not None:
                if warm_start:
                    cache.put(keys, list(chunk_values))
                else:
                    for key, value in zip(keys, chunk_values):
                        cache.put(key, value)

    stats = SweepStats(
        points=count,
        evaluated=evaluated,
        cache_hits=cache_hits,
        chunks=len(pending_chunks),
        workers=backend.workers,
        executor=backend.name,
        wall_seconds=_time.perf_counter() - t0,
        point_seconds=float(sum(seconds)),
    )
    GLOBAL_STATS.sweep_points += stats.points
    GLOBAL_STATS.sweep_cache_hits += stats.cache_hits
    GLOBAL_STATS.sweep_point_seconds += stats.point_seconds
    GLOBAL_STATS.sweep_workers = max(
        GLOBAL_STATS.sweep_workers, stats.workers
    )
    return SweepResult(
        points=points, values=values, stats=stats, point_seconds=seconds
    )


class _Miss:
    """Sentinel distinguishing cached-None from absent."""

    __slots__ = ()


_MISS = _Miss()

"""Parallel sweep & Monte-Carlo orchestration (the repo's batch layer).

Every quantitative result of the paper is a sweep — Fig. 5's phase-error
x gain-balance grid, Fig. 9's fT-vs-Ic curves, Section 2.2's
process-variation Monte Carlo.  This package provides the one engine all
of them (and every future yield/corner/optimization workload) run
through:

* :class:`ParameterGrid` / :class:`MonteCarloSampler` — describe *what*
  to evaluate: a cartesian grid of named axes, or ``n`` random samples
  with a deterministic per-point random stream
  (:class:`numpy.random.SeedSequence` spawning, so parallel and serial
  runs consume bit-identical streams),
* :func:`run_sweep` — execute an evaluation function over the points
  with a pluggable executor (serial, thread pool, process pool with
  chunked dispatch), optional warm-start continuation between adjacent
  points, and a content-hash :class:`ResultCache` so repeated points are
  never re-simulated,
* :class:`SweepStats` — per-sweep counters (points evaluated, cache
  hits, failures, retries, workers used, per-point wall time), also
  mirrored into :data:`repro.spice.engine.GLOBAL_STATS` for the
  benchmark harness,
* fault tolerance — :func:`run_sweep`'s ``on_error="raise"|"skip"|
  "retry"`` policy captures failing points as picklable
  :class:`FailedPoint` records (with the solver's
  :class:`~repro.errors.ConvergenceReport` forensics attached) instead
  of aborting the batch, retries ``ConvergenceError`` points with an
  escalating ``attempt=`` hint, and recovers from transient pool faults
  (``BrokenProcessPool``) with exponential backoff.

See ``docs/sweeps.md`` for the execution model, the determinism
guarantees and the failure-handling contract.
"""

from .cache import ResultCache, content_key
from .executors import (
    Executor,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    map_chunks_with_retries,
    resolve_executor,
)
from .grid import MonteCarloSampler, ParameterGrid, SweepPoint
from .orchestrator import (
    ON_ERROR_POLICIES,
    FailedPoint,
    SweepResult,
    SweepStats,
    run_sweep,
)

__all__ = [
    "SweepPoint",
    "ParameterGrid",
    "MonteCarloSampler",
    "ResultCache",
    "content_key",
    "Executor",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "resolve_executor",
    "map_chunks_with_retries",
    "run_sweep",
    "SweepResult",
    "SweepStats",
    "FailedPoint",
    "ON_ERROR_POLICIES",
]

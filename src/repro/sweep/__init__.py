"""Parallel sweep & Monte-Carlo orchestration (the repo's batch layer).

Every quantitative result of the paper is a sweep — Fig. 5's phase-error
x gain-balance grid, Fig. 9's fT-vs-Ic curves, Section 2.2's
process-variation Monte Carlo.  This package provides the one engine all
of them (and every future yield/corner/optimization workload) run
through:

* :class:`ParameterGrid` / :class:`MonteCarloSampler` — describe *what*
  to evaluate: a cartesian grid of named axes, or ``n`` random samples
  with a deterministic per-point random stream
  (:class:`numpy.random.SeedSequence` spawning, so parallel and serial
  runs consume bit-identical streams),
* :func:`run_sweep` — execute an evaluation function over the points
  with a pluggable executor (serial, thread pool, process pool with
  chunked dispatch), optional warm-start continuation between adjacent
  points, and a content-hash :class:`ResultCache` so repeated points are
  never re-simulated,
* :class:`SweepStats` — per-sweep counters (points evaluated, cache
  hits, failures, retries, workers used, per-point wall time), also
  mirrored into :data:`repro.spice.engine.GLOBAL_STATS` for the
  benchmark harness,
* fault tolerance — :func:`run_sweep`'s ``on_error="raise"|"skip"|
  "retry"`` policy captures failing points as picklable
  :class:`FailedPoint` records (with the solver's
  :class:`~repro.errors.ConvergenceReport` forensics attached) instead
  of aborting the batch, retries ``ConvergenceError`` points with an
  escalating ``attempt=`` hint, and recovers from transient pool faults
  (``BrokenProcessPool``) with exponential backoff.

Execution is structured for *positive* parallel scaling:

* :class:`ProcessExecutor` dispatches to a **persistent** worker pool —
  spin-up is paid once per process lifetime, workers cache the
  deserialized evaluation function by content hash, and only point
  chunks cross the pipe after warm-up,
* :class:`BlockedDCSweep` (:mod:`repro.sweep.batched`) solves a whole
  chunk of DC operating points in one stacked Newton iteration while
  preserving per-point convergence semantics bit-for-bit,
* :class:`BlockedACSweep` does the same for AC sweeps: one stacked
  Newton bias solve for the chunk, then every ``lane x frequency``
  system solved through a handful of batched complex solves — with
  per-lane source re-bias and linear R/L/C small-signal overrides,
* ``executor="auto"`` / ``jobs="auto"`` consults the dispatch
  :class:`CostModel` (:mod:`repro.sweep.costmodel`): a probe chunk is
  timed in-process and serial/thread/process plus the chunk size are
  chosen so small sweeps never pay the pool tax,
* every dispatch records :class:`DispatchStats` (payload bytes, pool
  spin-up, per-chunk latency percentiles), surfaced on
  :class:`SweepStats` and via ``repro run --profile``.

See ``docs/sweeps.md`` for the execution model, the determinism
guarantees and the failure-handling contract.
"""

from ..errors import SweepError
from .batched import (
    BlockedACSweep,
    BlockedDCSweep,
    ac_gain_db,
    ac_node_voltage,
    node_voltage,
)
from .cache import ResultCache, content_key
from .costmodel import DEFAULT_COST_MODEL, CostModel, DispatchPlan
from .executors import (
    AutoExecutor,
    DispatchStats,
    Executor,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    map_chunks_with_retries,
    pool_is_warm,
    resolve_executor,
    shutdown_pools,
)
from .grid import MonteCarloSampler, ParameterGrid, SweepPoint
from .orchestrator import (
    ON_ERROR_POLICIES,
    FailedPoint,
    SweepResult,
    SweepStats,
    run_sweep,
)

__all__ = [
    "SweepPoint",
    "ParameterGrid",
    "MonteCarloSampler",
    "ResultCache",
    "content_key",
    "Executor",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "AutoExecutor",
    "DispatchStats",
    "CostModel",
    "DispatchPlan",
    "DEFAULT_COST_MODEL",
    "BlockedDCSweep",
    "BlockedACSweep",
    "node_voltage",
    "ac_node_voltage",
    "ac_gain_db",
    "SweepError",
    "resolve_executor",
    "map_chunks_with_retries",
    "pool_is_warm",
    "shutdown_pools",
    "run_sweep",
    "SweepResult",
    "SweepStats",
    "FailedPoint",
    "ON_ERROR_POLICIES",
]

"""Content-hash result cache for sweep points.

A sweep point is identified by *what it computes*: an evaluation tag
(normally the evaluation function's module-qualified name), its
parameter dict, and — for stochastic points — the identity of its random
stream.  The key is a SHA-256 over a canonical serialization of those,
so two sweeps that revisit the same point (a refined grid sharing nodes
with a coarse one, a re-run with more samples, a bisection retracing its
steps) never re-simulate it.
"""

from __future__ import annotations

import hashlib
import threading
from dataclasses import fields, is_dataclass

import numpy as np


def _canonical(obj) -> str:
    """A stable, content-based repr for hashable-by-value sweep inputs."""
    if obj is None or isinstance(obj, (bool, int, str, bytes)):
        return repr(obj)
    if isinstance(obj, float):
        # repr round-trips doubles exactly; the float() strips numpy's
        # float64 subclass so np.float64(x) and x share one key.
        return repr(float(obj))
    if isinstance(obj, np.floating):
        return repr(float(obj))
    if isinstance(obj, np.integer):
        return repr(int(obj))
    if isinstance(obj, np.random.SeedSequence):
        return f"seed({obj.entropy!r},{obj.spawn_key!r})"
    if isinstance(obj, np.ndarray):
        return (f"array({obj.dtype.str},{obj.shape},"
                f"{obj.tobytes().hex()})")
    if isinstance(obj, dict):
        items = sorted(obj.items(), key=lambda kv: repr(kv[0]))
        body = ",".join(f"{_canonical(k)}:{_canonical(v)}"
                        for k, v in items)
        return "{" + body + "}"
    if isinstance(obj, (list, tuple)):
        body = ",".join(_canonical(item) for item in obj)
        return ("[" if isinstance(obj, list) else "(") + body + ")"
    if is_dataclass(obj) and not isinstance(obj, type):
        body = ",".join(
            f"{f.name}={_canonical(getattr(obj, f.name))}"
            for f in fields(obj)
        )
        return f"{type(obj).__qualname__}({body})"
    raise TypeError(
        f"cannot build a content key from {type(obj).__name__!r}; "
        "sweep parameters must be scalars, strings, arrays, containers "
        "or dataclasses of those"
    )


def content_key(tag: str, params: dict,
                seed: np.random.SeedSequence | None = None) -> str:
    """The cache key of one evaluation: tag + params + random stream."""
    payload = f"{tag}|{_canonical(params)}|{_canonical(seed)}"
    return hashlib.sha256(payload.encode()).hexdigest()


class ResultCache:
    """In-memory point-result cache with hit/miss counters.

    Lives for as long as the caller keeps it — hand the same instance to
    successive :func:`repro.sweep.run_sweep` calls to share results
    across sweeps.  ``maxsize`` bounds the entry count (oldest-inserted
    evicted first); ``None`` means unbounded.

    Thread-safe: one instance may back concurrent sweeps (thread
    executors, the :mod:`repro.service` job workers).  The hit/miss
    counters and the eviction loop mutate shared state, so every
    operation holds a lock — an uncontended acquire is tens of
    nanoseconds against a cache key that already cost a SHA-256, so the
    serial path does not measurably slow down.
    """

    def __init__(self, maxsize: int | None = None):
        self._data: dict[str, object] = {}
        self._lock = threading.Lock()
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._data

    def get(self, key: str, default=None):
        with self._lock:
            if key in self._data:
                self.hits += 1
                return self._data[key]
            self.misses += 1
            return default

    def put(self, key: str, value) -> None:
        with self._lock:
            if self.maxsize is not None:
                if self.maxsize <= 0:
                    # A zero-capacity cache stores nothing (the eviction
                    # loop below would otherwise pop from an empty dict).
                    return
                if key not in self._data:
                    while len(self._data) >= self.maxsize:
                        self._data.pop(next(iter(self._data)))
            self._data[key] = value

    def hit_rate(self) -> float:
        """Hits over lookups so far (0.0 before the first lookup)."""
        with self._lock:
            lookups = self.hits + self.misses
            return self.hits / lookups if lookups else 0.0

    def clear(self) -> None:
        with self._lock:
            self._data.clear()
            self.hits = 0
            self.misses = 0

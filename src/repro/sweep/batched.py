"""Blocked sweep evaluation: one deck, many operating points per call.

:class:`BlockedDCSweep` and :class:`BlockedACSweep` are sweep
evaluation functions (``fn(params)``) with a second, faster
personality: ``evaluate_batch(chunk)`` solves a whole chunk of points
through stacked linear algebra instead of one scalar analysis per
point.  :func:`repro.sweep.run_sweep` detects the ``supports_batch``
attribute and routes chunks through the batch path automatically
(under every executor), falling back to scalar calls for warm-start
sweeps, seeded points, and per-lane retries.

Both evaluators share :class:`_BlockedDeckSweep`: built from **deck
text**, not a live circuit, parsing/compiling lazily — pickled to a
persistent pool worker it ships as a couple of kilobytes of netlist,
and the expensive parse + engine compile happens once per worker (the
executor caches the deserialized function by content hash) — after
that only point chunks cross the pipe.

Sweep parameters name independent sources in the deck
(``{"VB": 0.8}``); each level is applied as a residual-row delta
``coeff * (level - base)`` (see :func:`repro.spice.dcop.newton_solve`'s
``rhs_delta``) rather than by mutating and recompiling the circuit.
:class:`BlockedACSweep` additionally accepts linear R/L/C names: their
value overrides are scattered as small-signal G/C deltas through the
precomputed sparse-pattern positions, so the symbolic CSC pattern is
shared across every lane.  Scalar and batched paths apply the
identical delta arithmetic at the identical point of the solve, which
is what makes batched-vs-scalar results bit-identical.
"""

from __future__ import annotations

import functools
import hashlib
import math
import threading

import numpy as np

from ..errors import AnalysisError, SweepError
from ..spice.dcop import Tolerances, solve_dc, solve_dc_batched
from .costmodel import DEFAULT_COST_MODEL

__all__ = [
    "BlockedDCSweep",
    "BlockedACSweep",
    "node_voltage",
    "solution_vector",
    "ac_node_voltage",
    "ac_gain_db",
    "ac_solution_matrix",
]

_NO_STIMULUS = "AC analysis: no source has an AC stimulus"


def _measure_node(node: str, circuit, x: np.ndarray) -> float:
    index = circuit.node_index(node)
    return 0.0 if index < 0 else float(x[index])


def node_voltage(node: str):
    """A picklable measure extracting one node voltage from the solve."""
    return functools.partial(_measure_node, node)


def solution_vector(circuit, x: np.ndarray) -> np.ndarray:
    """The default DC measure: the full solution vector (copied)."""
    return np.array(x)


def _measure_ac_node(node: str, circuit, solutions: np.ndarray) -> np.ndarray:
    index = circuit.node_index(node)
    if index < 0:
        return np.zeros(solutions.shape[0], dtype=complex)
    return np.array(solutions[:, index])


def ac_node_voltage(node: str):
    """A picklable AC measure: complex node voltage per frequency."""
    return functools.partial(_measure_ac_node, node)


def _measure_ac_gain_db(node: str, circuit, solutions: np.ndarray) -> np.ndarray:
    magnitude = np.abs(_measure_ac_node(node, circuit, solutions))
    return 20.0 * np.log10(np.maximum(magnitude, 1e-300))


def ac_gain_db(node: str):
    """A picklable AC measure: node gain magnitude in dB per frequency."""
    return functools.partial(_measure_ac_gain_db, node)


def ac_solution_matrix(circuit, solutions: np.ndarray) -> np.ndarray:
    """The default AC measure: the full ``(freqs, unknowns)`` complex
    solution matrix (copied)."""
    return np.array(solutions)


class _BlockedDeckSweep:
    """Shared compile-once / content-hashed / picklable deck evaluator.

    Subclasses implement the analysis (``__call__`` and
    ``evaluate_batch``); this base owns deck-text pickling, the lazy
    parse + engine compile, the per-instance solve lock, source
    re-biasing via ``rhs_delta``, and the content-hash cache tag.
    """

    #: run_sweep's opt-in marker for the ``evaluate_batch`` fast path.
    supports_batch = True

    @staticmethod
    def preferred_chunk_size(count: int) -> int:
        """Chunking hint consulted by :func:`~repro.sweep.run_sweep`.

        Blocked evaluation pays its fixed costs (stacked Newton
        iterations, stacked frequency solves) once per chunk, so it
        wants ~8 large chunks where the scalar default targets ~32
        small ones.  Depends only on the point count — chunking stays
        identical across executors, and values are bit-identical under
        any chunking regardless.
        """
        return max(1, math.ceil(count / 8))

    def __init__(self, deck: str, measure=None,
                 tolerances: Tolerances | None = None,
                 gmin: float | None = None,
                 engine: str | None = None):
        if not isinstance(deck, str):
            raise SweepError(
                f"{type(self).__name__} takes deck text (str), got "
                f"{type(deck).__name__}; pass the netlist source so the "
                "evaluator stays picklable"
            )
        self._deck_text = deck
        self._measure = measure
        self._tolerances_arg = tolerances
        self._gmin_arg = gmin
        self._engine_arg = engine
        self._circuit = None
        self._engine = None
        self._tolerances = None
        self._gmin = None
        self._sources: dict[str, tuple[list, float]] = {}
        # The compiled circuit's evaluation buffers are shared state: a
        # thread executor running two chunks through one evaluator would
        # race on them.  Solves are serialized per evaluator instance
        # (process workers each hold their own instance, so this only
        # bites — and only costs — the thread backend).
        self._lock = threading.Lock()

    # -- pickling: ship the text, rebuild the circuit lazily -----------------

    def __getstate__(self):
        return {
            "deck": self._deck_text,
            "measure": self._measure,
            "tolerances": self._tolerances_arg,
            "gmin": self._gmin_arg,
            "engine": self._engine_arg,
        }

    def __setstate__(self, state):
        self.__init__(state["deck"], measure=state["measure"],
                      tolerances=state["tolerances"], gmin=state["gmin"],
                      engine=state.get("engine"))

    def _tag_extra(self) -> tuple:
        """Subclass hook: extra values folded into the cache tag."""
        return ()

    @property
    def __cache_tag__(self) -> str:
        """Content-hash cache tag: two evaluators over different decks
        (or measures/tolerances/engines/grids) must never share cache
        entries."""
        hasher = hashlib.sha256(self._deck_text.encode())
        hasher.update(repr(self._measure).encode())
        hasher.update(repr(self._tolerances_arg).encode())
        hasher.update(repr(self._gmin_arg).encode())
        hasher.update(repr(self._engine_arg).encode())
        for item in self._tag_extra():
            hasher.update(repr(item).encode())
        return (f"repro.sweep.batched.{type(self).__name__}"
                f"#{hasher.hexdigest()[:16]}")

    # -- lazy compile --------------------------------------------------------

    def _ensure(self):
        if self._circuit is not None:
            return
        from ..spice.engine import resolve_engine
        from ..spice.parser import parse_deck
        from ..spice.runner import _deck_tolerances

        deck = parse_deck(self._deck_text)
        tolerances, gmin = _deck_tolerances(deck)
        self._circuit = deck.circuit
        self._circuit.assign_indices()
        self._engine = resolve_engine(self._circuit, self._engine_arg)
        self._tolerances = (
            self._tolerances_arg
            if self._tolerances_arg is not None
            else (tolerances or Tolerances())
        )
        self._gmin = self._gmin_arg if self._gmin_arg is not None else gmin
        self._compiled(deck)

    def _compiled(self, deck) -> None:
        """Subclass hook: runs once at the end of :meth:`_ensure`."""

    def _find_element(self, name: str):
        for candidate in self._circuit:
            if candidate.name.upper() == name.upper():
                return candidate
        raise SweepError(
            f"deck has no element named {name!r} to sweep; "
            "parameters must name independent V/I sources"
        )

    def _source_info(self, name: str) -> tuple[list, float]:
        info = self._sources.get(name)
        if info is not None:
            return info
        from ..spice.elements.sources import DC

        element = self._find_element(name)
        rows = getattr(element, "rhs_rows", None)
        if rows is None or type(getattr(element, "waveform", None)) is not DC:
            raise SweepError(
                f"element {name!r} is not an independent DC source; "
                f"{type(self).__name__} can only re-bias V/I sources with "
                "DC waveforms"
            )
        info = (list(element.rhs_rows()), float(element.source_value(None)))
        self._sources[name] = info
        return info

    def _delta(self, params: dict) -> np.ndarray | None:
        """The rhs_delta vector biasing the deck's sources to ``params``."""
        if not params:
            return None
        delta = np.zeros(self._circuit.num_unknowns)
        for name, level in params.items():
            rows, base = self._source_info(name)
            shift = float(level) - base
            for row, coeff in rows:
                delta[row] += coeff * shift
        return delta


class BlockedDCSweep(_BlockedDeckSweep):
    """Batch-capable DC operating-point evaluator over one deck.

    ``deck`` is SPICE deck text; analysis cards are ignored — only the
    circuit and ``.OPTIONS`` (RELTOL/VNTOL/ABSTOL/ITL1/GMIN) matter.
    ``measure(circuit, x) -> value`` reduces each solved operating point
    (default: the full solution vector); it must be picklable for the
    process executor, e.g. :func:`node_voltage`.

    Point parameters name independent V/I sources and give the DC level
    to solve at; unnamed sources keep their deck values.  The instance
    is picklable and cheap on the wire — workers rebuild the circuit
    lazily, once, and reuse it for every later chunk.

    ``evaluate_batch(chunk)`` solves a whole chunk of operating points
    through :func:`repro.spice.dcop.solve_dc_batched` — a stacked
    Newton iteration with per-lane convergence masking — instead of one
    :func:`solve_dc` per point.
    """

    def __call__(self, params: dict, attempt: int = 0):
        """Scalar path: one operating point through the full
        :func:`~repro.spice.dcop.solve_dc` homotopy ladder."""
        with self._lock:
            self._ensure()
            x = solve_dc(
                self._circuit, tolerances=self._tolerances, gmin=self._gmin,
                engine=self._engine, attempt=attempt,
                rhs_delta=self._delta(params),
            )
            measure = self._measure or solution_vector
            return measure(self._circuit, x)

    def evaluate_batch(self, chunk_params: list) -> list:
        """Blocked path: solve every point of the chunk in one stacked
        Newton run.  Returns ``[(value, error), ...]`` aligned with the
        chunk — ``error`` is ``None`` on success, else the lane's
        :class:`~repro.errors.ConvergenceError` (value ``None``)."""
        with self._lock:
            self._ensure()
            deltas = [self._delta(params) for params in chunk_params]
            x, errors = solve_dc_batched(
                self._circuit, deltas, tolerances=self._tolerances,
                gmin=self._gmin, engine=self._engine,
            )
            measure = self._measure or solution_vector
            return [
                (None, error) if error is not None
                else (measure(self._circuit, x[k]), None)
                for k, error in enumerate(errors)
            ]


class BlockedACSweep(_BlockedDeckSweep):
    """Batch-capable AC small-signal evaluator over one deck.

    Every point is an AC sweep over one frequency grid: bias the deck's
    sources to the point's levels, linearize, then solve
    ``(G + j*omega*C) dx = b`` per frequency.
    ``measure(circuit, solutions) -> value`` reduces the point's
    ``(freqs, unknowns)`` complex solution matrix (default: the full
    matrix); it must be picklable, e.g. :func:`ac_node_voltage` or
    :func:`ac_gain_db`.

    Point parameters may name independent DC V/I sources (re-biased via
    ``rhs_delta``, exactly as :class:`BlockedDCSweep`) **or** linear
    R/L/C elements: a passive override is applied as a small-signal
    G/C stamp delta at the element's precomputed matrix positions —
    ``1/R`` into G, ``C`` into C, ``-L`` into the inductor's branch row
    — without touching the DC bias or the compiled pattern.

    ``frequencies`` is the grid in Hz; ``None`` adopts the deck's
    ``.AC`` card.  ``evaluate_batch(chunk)`` bias-solves all lanes
    through :func:`~repro.spice.dcop.solve_dc_batched`, restamps
    per-lane G/C deltas, and solves the whole chunk as
    ``(lanes x freq_block)`` stacked complex systems through the
    engine's batched entry points — a handful of batched solves instead
    of ``lanes * freqs`` scalar ones, bit-identical to the scalar path.
    """

    def __init__(self, deck: str, measure=None, frequencies=None,
                 tolerances: Tolerances | None = None,
                 gmin: float | None = None,
                 engine: str | None = None):
        super().__init__(deck, measure=measure, tolerances=tolerances,
                         gmin=gmin, engine=engine)
        if frequencies is not None:
            freqs = np.asarray(list(frequencies), dtype=float)
            if freqs.size == 0 or not np.all(np.isfinite(freqs)) \
                    or np.any(freqs <= 0.0):
                raise SweepError(
                    "BlockedACSweep frequencies must be a non-empty grid "
                    "of positive values (Hz)"
                )
            self._frequencies_arg = tuple(float(f) for f in freqs)
        else:
            self._frequencies_arg = None
        self._frequencies = None
        self._omegas = None
        self._rhs = None
        self._sparse = False
        self._params: dict[str, tuple] = {}
        #: Planner hint: blocked complex solves run mostly in
        #: LAPACK/SuperLU with the GIL released, so the thread backend
        #: overlaps far more of the evaluation than scalar python work.
        self.thread_fraction_hint = DEFAULT_COST_MODEL.complex_parallel_fraction

    def __getstate__(self):
        state = super().__getstate__()
        state["frequencies"] = self._frequencies_arg
        return state

    def __setstate__(self, state):
        self.__init__(state["deck"], measure=state["measure"],
                      frequencies=state.get("frequencies"),
                      tolerances=state["tolerances"], gmin=state["gmin"],
                      engine=state.get("engine"))

    def _tag_extra(self) -> tuple:
        return ("ac", self._frequencies_arg)

    @property
    def frequencies(self) -> np.ndarray:
        """The resolved frequency grid (compiles the deck if needed)."""
        with self._lock:
            self._ensure()
            return np.array(self._frequencies)

    # -- compile hooks -------------------------------------------------------

    def _compiled(self, deck) -> None:
        from ..spice.ac import ac_stimulus_rhs, frequency_grid

        if self._frequencies_arg is not None:
            self._frequencies = np.asarray(self._frequencies_arg, dtype=float)
        else:
            card = next(
                (a for a in deck.analyses if a.kind == "ac"), None
            )
            if card is None:
                raise SweepError(
                    "BlockedACSweep needs a frequency grid: pass "
                    "frequencies=... (Hz) or give the deck an .AC card"
                )
            self._frequencies = frequency_grid(
                card.args["start"], card.args["stop"],
                card.args["points"], card.args["sweep"],
            )
        self._omegas = 2.0 * np.pi * self._frequencies
        self._rhs = ac_stimulus_rhs(self._circuit, self._circuit.num_unknowns)
        self._sparse = getattr(self._engine, "assembly", "dense") == "sparse"

    # -- parameter classification -------------------------------------------

    def _param_info(self, name: str) -> tuple:
        """Classify one parameter name: ``("source", info)`` or a
        passive override ``(kind, (stamp, base))`` with kind in
        ``"R"/"C"/"L"``.  Cached — classification walks the netlist and
        (sparse) resolves pattern positions once per name."""
        info = self._params.get(name)
        if info is not None:
            return info
        from ..spice.elements.capacitor import Capacitor
        from ..spice.elements.inductor import Inductor
        from ..spice.elements.resistor import Resistor
        from ..spice.elements.sources import DC

        element = self._find_element(name)
        rows = getattr(element, "rhs_rows", None)
        if rows is not None and \
                type(getattr(element, "waveform", None)) is DC:
            info = ("source", self._source_info(name))
        elif isinstance(element, Resistor):
            p, n = element.node_index
            info = ("R", (self._conductance_stamp(p, n),
                          1.0 / float(element.resistance)))
        elif isinstance(element, Capacitor):
            p, n = element.node_index
            info = ("C", (self._conductance_stamp(p, n),
                          float(element.capacitance)))
        elif isinstance(element, Inductor):
            branch = element.branch_index[0]
            info = ("L", (self._conductance_stamp(branch, -1),
                          float(element.inductance)))
        else:
            raise SweepError(
                f"element {name!r} is not an independent DC source or a "
                "linear R/L/C; BlockedACSweep can only re-bias sources "
                "and override passive values"
            )
        self._params[name] = info
        return info

    def _conductance_stamp(self, p: int, n: int) -> tuple:
        """The two-terminal stamp footprint between nodes ``p``/``n``
        (``n < 0``: a single diagonal slot, also used for the inductor's
        branch row): ground-filtered rows/cols/signs plus, under sparse
        assembly, the scatter positions into the shared pattern."""
        if n < 0 and p < 0:
            raise SweepError("cannot override an element with both "
                             "terminals grounded")
        if n < 0 or p < 0:
            node = p if p >= 0 else n
            rows = np.array([node], dtype=np.intp)
            cols = np.array([node], dtype=np.intp)
            signs = np.array([1.0])
        else:
            rows = np.array([p, n, p, n], dtype=np.intp)
            cols = np.array([p, n, n, p], dtype=np.intp)
            signs = np.array([1.0, 1.0, -1.0, -1.0])
        positions = None
        if self._sparse:
            positions, keep = self._engine.pattern.stamp_positions(rows, cols)
            rows, cols, signs = rows[keep], cols[keep], signs[keep]
        return rows, cols, signs, positions

    def _override_deltas(self, params: dict) -> list:
        """Per-point passive overrides as ``(matrix, stamp, delta)``
        triples (``matrix`` is ``"g"`` or ``"c"``); source parameters
        are skipped (they travel through ``rhs_delta``).  Validated
        here so the scalar and batched paths raise identical
        :class:`~repro.errors.SweepError`\\ s per point."""
        out = []
        for name, level in params.items():
            kind, payload = self._param_info(name)
            if kind == "source":
                continue
            stamp, base = payload
            level = float(level)
            if not np.isfinite(level) or (kind == "R" and level == 0.0):
                raise SweepError(
                    f"cannot override {name!r} to {level!r}; passive "
                    "values must be finite (and resistance nonzero)"
                )
            if kind == "R":
                out.append(("g", stamp, 1.0 / level - base))
            elif kind == "C":
                out.append(("c", stamp, level - base))
            else:  # inductor: the branch equation stamps -L into C
                out.append(("c", stamp, -(level - base)))
        return out

    def _delta(self, params: dict) -> np.ndarray | None:
        """Source-only rhs_delta; passive parameters ride separately
        through :meth:`_override_deltas`."""
        if not params:
            return None
        delta = None
        for name, level in params.items():
            kind, payload = self._param_info(name)
            if kind != "source":
                continue
            rows, base = payload
            if delta is None:
                delta = np.zeros(self._circuit.num_unknowns)
            shift = float(level) - base
            for row, coeff in rows:
                delta[row] += coeff * shift
        return delta

    # -- evaluation ----------------------------------------------------------

    def _small_signal(self, x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Fresh G/C copies linearized at the solved operating point."""
        ctx = self._engine.evaluate(x, gmin=self._gmin, limits={})
        if self._sparse:
            return np.array(ctx.g_mat.values), np.array(ctx.c_mat.values)
        return np.array(ctx.g_mat), np.array(ctx.c_mat)

    @staticmethod
    def _apply_overrides(g_arr, c_arr, overrides) -> None:
        for matrix, stamp, delta in overrides:
            rows, cols, signs, positions = stamp
            target = g_arr if matrix == "g" else c_arr
            if positions is not None:
                np.add.at(target, positions, signs * delta)
            else:
                np.add.at(target, (rows, cols), signs * delta)

    def _solve_lanes(self, g_stack, c_stack) -> np.ndarray:
        from ..spice.ac import solve_ac_lanes

        return solve_ac_lanes(
            self._engine, g_stack, c_stack, self._omegas, self._rhs
        )

    def __call__(self, params: dict, attempt: int = 0):
        """Scalar path: one full :func:`~repro.spice.dcop.solve_dc`
        homotopy bias solve, then the point's AC sweep as a single
        lane through the blocked frequency solver."""
        with self._lock:
            self._ensure()
            delta = self._delta(params)
            overrides = self._override_deltas(params)
            x = solve_dc(
                self._circuit, tolerances=self._tolerances, gmin=self._gmin,
                engine=self._engine, attempt=attempt, rhs_delta=delta,
            )
            if not np.any(self._rhs):
                raise AnalysisError(_NO_STIMULUS)
            g_arr, c_arr = self._small_signal(x)
            self._apply_overrides(g_arr, c_arr, overrides)
            solutions = self._solve_lanes(g_arr[None], c_arr[None])[0]
            measure = self._measure or ac_solution_matrix
            return measure(self._circuit, solutions)

    def evaluate_batch(self, chunk_params: list) -> list:
        """Blocked path: one stacked Newton bias solve for the chunk,
        then one run of ``(lanes x freq_block)`` stacked complex solves.
        Returns ``[(value, error), ...]`` aligned with the chunk; a
        failed lane carries the identical error the scalar path would
        raise for that point, and never disturbs its neighbours."""
        with self._lock:
            self._ensure()
            results: list = [None] * len(chunk_params)
            lanes: list[int] = []
            lane_deltas: list = []
            lane_overrides: list = []
            for k, params in enumerate(chunk_params):
                try:
                    delta = self._delta(params)
                    overrides = self._override_deltas(params)
                except SweepError as error:
                    results[k] = (None, error)
                else:
                    lanes.append(k)
                    lane_deltas.append(delta)
                    lane_overrides.append(overrides)
            if not lanes:
                return results
            x, errors = solve_dc_batched(
                self._circuit, lane_deltas, tolerances=self._tolerances,
                gmin=self._gmin, engine=self._engine,
            )
            solved: list[int] = []
            for i, error in enumerate(errors):
                if error is not None:
                    results[lanes[i]] = (None, error)
                else:
                    solved.append(i)
            if not solved:
                return results
            if not np.any(self._rhs):
                for i in solved:
                    results[lanes[i]] = (None, AnalysisError(_NO_STIMULUS))
                return results
            if getattr(self._engine, "supports_stacked_evaluate", False):
                # One lane-stacked linearization for every solved bias
                # point; each lane's G/C is bit-identical to the scalar
                # _small_signal at that point.
                sctx = self._engine.evaluate_stacked(
                    x[np.array(solved)], gmin=self._gmin,
                    limits_list=[dict() for _ in solved], with_c=True,
                )
                g_list = [np.array(g) for g in sctx.g]
                c_list = [np.array(c) for c in sctx.c]
                for j, i in enumerate(solved):
                    self._apply_overrides(
                        g_list[j], c_list[j], lane_overrides[i]
                    )
            else:
                g_list, c_list = [], []
                for i in solved:
                    g_arr, c_arr = self._small_signal(x[i])
                    self._apply_overrides(g_arr, c_arr, lane_overrides[i])
                    g_list.append(g_arr)
                    c_list.append(c_arr)
            solutions = self._solve_lanes(np.stack(g_list), np.stack(c_list))
            measure = self._measure or ac_solution_matrix
            for j, i in enumerate(solved):
                results[lanes[i]] = (measure(self._circuit, solutions[j]),
                                     None)
            return results

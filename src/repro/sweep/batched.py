"""Blocked DC sweep evaluation: one deck, many operating points per call.

:class:`BlockedDCSweep` is a sweep evaluation function (``fn(params)``)
with a second, faster personality: ``evaluate_batch(chunk)`` solves a
whole chunk of operating points through
:func:`repro.spice.dcop.solve_dc_batched` — a stacked Newton iteration
with per-lane convergence masking — instead of one :func:`solve_dc` per
point.  :func:`repro.sweep.run_sweep` detects the
``supports_batch`` attribute and routes chunks through the batch path
automatically (under every executor), falling back to scalar calls for
warm-start sweeps, seeded points, and per-lane retries.

The evaluator is built from **deck text**, not a live circuit, and
parses/compiles lazily: pickled to a persistent pool worker it ships as
a couple of kilobytes of netlist, and the expensive parse + engine
compile happens once per worker (the executor caches the deserialized
function by content hash) — after that only point chunks cross the pipe.

Sweep parameters name independent sources in the deck
(``{"VB": 0.8}``); each level is applied as a residual-row delta
``coeff * (level - base)`` (see :func:`repro.spice.dcop.newton_solve`'s
``rhs_delta``) rather than by mutating and recompiling the circuit.
Scalar and batched paths apply the identical delta arithmetic at the
identical point of the Newton iteration, which is what makes
batched-vs-scalar results bit-identical.
"""

from __future__ import annotations

import functools
import hashlib
import threading

import numpy as np

from ..errors import SweepError
from ..spice.dcop import Tolerances, solve_dc, solve_dc_batched

__all__ = ["BlockedDCSweep", "node_voltage", "solution_vector"]


def _measure_node(node: str, circuit, x: np.ndarray) -> float:
    index = circuit.node_index(node)
    return 0.0 if index < 0 else float(x[index])


def node_voltage(node: str):
    """A picklable measure extracting one node voltage from the solve."""
    return functools.partial(_measure_node, node)


def solution_vector(circuit, x: np.ndarray) -> np.ndarray:
    """The default measure: the full solution vector (copied)."""
    return np.array(x)


class BlockedDCSweep:
    """Batch-capable DC operating-point evaluator over one deck.

    ``deck`` is SPICE deck text; analysis cards are ignored — only the
    circuit and ``.OPTIONS`` (RELTOL/VNTOL/ABSTOL/ITL1/GMIN) matter.
    ``measure(circuit, x) -> value`` reduces each solved operating point
    (default: the full solution vector); it must be picklable for the
    process executor, e.g. :func:`node_voltage`.

    Point parameters name independent V/I sources and give the DC level
    to solve at; unnamed sources keep their deck values.  The instance
    is picklable and cheap on the wire — workers rebuild the circuit
    lazily, once, and reuse it for every later chunk.
    """

    #: run_sweep's opt-in marker for the ``evaluate_batch`` fast path.
    supports_batch = True

    def __init__(self, deck: str, measure=None,
                 tolerances: Tolerances | None = None,
                 gmin: float | None = None):
        if not isinstance(deck, str):
            raise SweepError(
                "BlockedDCSweep takes deck text (str), got "
                f"{type(deck).__name__}; pass the netlist source so the "
                "evaluator stays picklable"
            )
        self._deck_text = deck
        self._measure = measure
        self._tolerances_arg = tolerances
        self._gmin_arg = gmin
        self._circuit = None
        self._engine = None
        self._tolerances = None
        self._gmin = None
        self._sources: dict[str, tuple[list, float]] = {}
        # The compiled circuit's evaluation buffers are shared state: a
        # thread executor running two chunks through one evaluator would
        # race on them.  Solves are serialized per evaluator instance
        # (process workers each hold their own instance, so this only
        # bites — and only costs — the thread backend).
        self._lock = threading.Lock()

    # -- pickling: ship the text, rebuild the circuit lazily -----------------

    def __getstate__(self):
        return {
            "deck": self._deck_text,
            "measure": self._measure,
            "tolerances": self._tolerances_arg,
            "gmin": self._gmin_arg,
        }

    def __setstate__(self, state):
        self.__init__(state["deck"], measure=state["measure"],
                      tolerances=state["tolerances"], gmin=state["gmin"])

    @property
    def __cache_tag__(self) -> str:
        """Content-hash cache tag: two evaluators over different decks
        (or measures/tolerances) must never share cache entries."""
        hasher = hashlib.sha256(self._deck_text.encode())
        hasher.update(repr(self._measure).encode())
        hasher.update(repr(self._tolerances_arg).encode())
        hasher.update(repr(self._gmin_arg).encode())
        return f"repro.sweep.batched.BlockedDCSweep#{hasher.hexdigest()[:16]}"

    # -- lazy compile --------------------------------------------------------

    def _ensure(self):
        if self._circuit is not None:
            return
        from ..spice.engine import resolve_engine
        from ..spice.parser import parse_deck
        from ..spice.runner import _deck_tolerances

        deck = parse_deck(self._deck_text)
        tolerances, gmin = _deck_tolerances(deck)
        self._circuit = deck.circuit
        self._circuit.assign_indices()
        self._engine = resolve_engine(self._circuit, None)
        self._tolerances = (
            self._tolerances_arg
            if self._tolerances_arg is not None
            else (tolerances or Tolerances())
        )
        self._gmin = self._gmin_arg if self._gmin_arg is not None else gmin

    def _source_info(self, name: str) -> tuple[list, float]:
        info = self._sources.get(name)
        if info is not None:
            return info
        from ..spice.elements.sources import DC

        element = None
        for candidate in self._circuit:
            if candidate.name.upper() == name.upper():
                element = candidate
                break
        if element is None:
            raise SweepError(
                f"deck has no element named {name!r} to sweep; "
                "parameters must name independent V/I sources"
            )
        rows = getattr(element, "rhs_rows", None)
        if rows is None or type(getattr(element, "waveform", None)) is not DC:
            raise SweepError(
                f"element {name!r} is not an independent DC source; "
                "BlockedDCSweep can only re-bias V/I sources with DC "
                "waveforms"
            )
        info = (list(element.rhs_rows()), float(element.source_value(None)))
        self._sources[name] = info
        return info

    def _delta(self, params: dict) -> np.ndarray | None:
        """The rhs_delta vector biasing the deck's sources to ``params``."""
        if not params:
            return None
        delta = np.zeros(self._circuit.num_unknowns)
        for name, level in params.items():
            rows, base = self._source_info(name)
            shift = float(level) - base
            for row, coeff in rows:
                delta[row] += coeff * shift
        return delta

    # -- evaluation ----------------------------------------------------------

    def __call__(self, params: dict, attempt: int = 0):
        """Scalar path: one operating point through the full
        :func:`~repro.spice.dcop.solve_dc` homotopy ladder."""
        with self._lock:
            self._ensure()
            x = solve_dc(
                self._circuit, tolerances=self._tolerances, gmin=self._gmin,
                engine=self._engine, attempt=attempt,
                rhs_delta=self._delta(params),
            )
            measure = self._measure or solution_vector
            return measure(self._circuit, x)

    def evaluate_batch(self, chunk_params: list) -> list:
        """Blocked path: solve every point of the chunk in one stacked
        Newton run.  Returns ``[(value, error), ...]`` aligned with the
        chunk — ``error`` is ``None`` on success, else the lane's
        :class:`~repro.errors.ConvergenceError` (value ``None``)."""
        with self._lock:
            self._ensure()
            deltas = [self._delta(params) for params in chunk_params]
            x, errors = solve_dc_batched(
                self._circuit, deltas, tolerances=self._tolerances,
                gmin=self._gmin, engine=self._engine,
            )
            measure = self._measure or solution_vector
            return [
                (None, error) if error is not None
                else (measure(self._circuit, x[k]), None)
                for k, error in enumerate(errors)
            ]

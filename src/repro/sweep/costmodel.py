"""Dispatch cost model: when does parallel actually win?

Process pools are not free — spawning workers costs tens of
milliseconds, every chunk pays a pickle + pipe round-trip, and threads
only help while the evaluation releases the GIL.  Historically
``--jobs N`` paid those taxes unconditionally, which made small sweeps
*slower* in parallel.  :class:`CostModel` makes the trade explicit: it
predicts wall-clock for the serial, thread, and process backends from a
measured per-point cost and picks the cheapest, with a safety margin so
a near-tie resolves to serial (the predictable choice).

:func:`repro.sweep.run_sweep` consults the model when given the ``auto``
executor (``--jobs auto``): it times the first chunk in-process — those
points must be evaluated anyway — then plans the remaining dispatch.
Observed :class:`~repro.sweep.executors.DispatchStats` feed back through
:meth:`CostModel.observe`, so spin-up and per-chunk overhead estimates
track the machine the sweep is actually running on.

The model only re-routes *where* and in *what grouping* points are
evaluated — never the arithmetic — so every plan yields bit-identical
results to the serial backend.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass, field, replace

__all__ = ["CostModel", "DispatchPlan", "DEFAULT_COST_MODEL"]


@dataclass(frozen=True)
class DispatchPlan:
    """The cost model's decision for one sweep dispatch."""

    #: Chosen backend: ``"serial"``, ``"thread"`` or ``"process"``.
    backend: str
    #: Worker count for the chosen backend (1 for serial).
    jobs: int
    #: Chunk size the remaining points should be grouped into.
    chunk_size: int
    #: One-line human explanation of the choice.
    reason: str
    #: Predicted wall seconds per candidate backend.
    predictions: dict = field(default_factory=dict)

    def summary(self) -> str:
        predicted = ", ".join(
            f"{name}={seconds * 1e3:.1f}ms"
            for name, seconds in sorted(self.predictions.items())
        )
        return (f"{self.backend} x{self.jobs} (chunk={self.chunk_size}): "
                f"{self.reason} [{predicted}]")


@dataclass
class CostModel:
    """Tunable dispatch cost estimates (seconds / bytes / ratios).

    Defaults were measured on a small container; :meth:`observe` adapts
    the dominant terms (pool spin-up, per-chunk overhead) to the host
    via an exponential moving average.
    """

    #: One-time process-pool creation + worker warm-up cost.
    spinup_seconds: float = 0.08
    #: Per-chunk overhead on a *warm* process pool (submit, pickle
    #: bookkeeping, result round-trip).
    chunk_seconds: float = 2e-3
    #: Per-byte cost of shipping payloads through the pipe.
    byte_seconds: float = 1e-8
    #: Per-chunk overhead of the thread backend.
    thread_chunk_seconds: float = 2e-4
    #: Fraction of the evaluation that runs GIL-free (numpy/LAPACK);
    #: bounds how much the thread backend can overlap.
    thread_parallel_fraction: float = 0.25
    #: GIL-free fraction for *blocked complex solves* (batched AC):
    #: the work is dominated by stacked LAPACK/SuperLU calls, so
    #: threads overlap far more of it than scalar python evaluation.
    #: Batch-capable evaluators advertise this via their
    #: ``thread_fraction_hint`` attribute and the auto planner threads
    #: it through :meth:`plan`.
    complex_parallel_fraction: float = 0.6
    #: Required predicted speedup before leaving serial (near-ties stay
    #: serial: it is the predictable, zero-overhead choice).
    min_speedup: float = 1.2
    #: Target chunks per worker — enough slack for load balancing
    #: without drowning in per-chunk overhead.
    chunks_per_worker: int = 4
    #: EWMA weight for :meth:`observe` updates.
    ewma: float = 0.5
    #: Guards the EWMA terms: :data:`DEFAULT_COST_MODEL` is process-wide
    #: and concurrent sweeps observe into it from many threads (init=False
    #: so :func:`dataclasses.replace`-based copies get a fresh lock).
    _lock: threading.Lock = field(default_factory=threading.Lock,
                                  init=False, repr=False, compare=False)

    def predict(self, backend: str, count: int, point_seconds: float,
                point_bytes: float, fn_bytes: float, workers: int,
                chunk_size: int, pool_warm: bool,
                thread_fraction: float | None = None) -> float:
        """Predicted wall seconds to evaluate ``count`` points.

        ``thread_fraction`` overrides the GIL-free overlap estimate for
        the thread backend (e.g. an evaluator's
        ``thread_fraction_hint``); ``None`` keeps the scalar default.
        """
        compute = count * point_seconds
        chunks = math.ceil(count / max(1, chunk_size))
        if backend == "serial" or workers <= 1:
            return compute
        if backend == "thread":
            overlap = (self.thread_parallel_fraction
                       if thread_fraction is None
                       else min(max(float(thread_fraction), 0.0), 1.0))
            parallel = compute * overlap / workers
            return compute * (1.0 - overlap) + parallel \
                + chunks * self.thread_chunk_seconds
        if backend == "process":
            wall = 0.0 if pool_warm else self.spinup_seconds
            wall += workers * fn_bytes * self.byte_seconds
            wall += chunks * self.chunk_seconds
            wall += count * point_bytes * self.byte_seconds
            wall += compute / workers
            return wall
        raise ValueError(f"unknown backend {backend!r}")

    def plan(self, count: int, point_seconds: float, *,
             point_bytes: float = 512.0, fn_bytes: float = 4096.0,
             workers: int = 2, pool_warm: bool = False,
             thread_fraction: float | None = None) -> DispatchPlan:
        """Pick the cheapest backend + chunking for ``count`` points."""
        workers = max(1, int(workers))
        chunk_size = self.chunk_size_for(count, workers)
        predictions = {
            name: self.predict(name, count, point_seconds, point_bytes,
                               fn_bytes, workers, chunk_size, pool_warm,
                               thread_fraction=thread_fraction)
            for name in ("serial", "thread", "process")
        }
        serial = predictions["serial"]
        best = min(("process", "thread"), key=predictions.__getitem__)
        if workers <= 1 or count <= 1:
            return DispatchPlan("serial", 1, max(1, count),
                                "single worker or point", predictions)
        if predictions[best] * self.min_speedup >= serial:
            reason = (f"predicted {best} speedup "
                      f"{serial / max(predictions[best], 1e-12):.2f}x "
                      f"< {self.min_speedup:.2f}x threshold")
            return DispatchPlan("serial", 1, max(1, count), reason,
                                predictions)
        reason = (f"predicted {serial / predictions[best]:.2f}x over serial"
                  + ("" if pool_warm or best != "process"
                     else " despite pool spin-up"))
        return DispatchPlan(best, workers, chunk_size, reason, predictions)

    def chunk_size_for(self, count: int, workers: int) -> int:
        """Chunks sized for ``chunks_per_worker`` waves per worker."""
        waves = max(1, workers) * max(1, self.chunks_per_worker)
        return max(1, math.ceil(count / waves))

    def observe(self, stats) -> None:
        """Fold an observed :class:`DispatchStats` back into the model.

        Thread-safe: the read-modify-write EWMA updates are atomic under
        the model's lock, so concurrent sweeps calibrating the shared
        :data:`DEFAULT_COST_MODEL` never lose or double-apply an update.
        """
        if stats is None:
            return
        with self._lock:
            w = self.ewma
            if stats.spinup_seconds > 0.0 and not stats.pool_reused:
                self.spinup_seconds += w * (stats.spinup_seconds
                                            - self.spinup_seconds)
            if stats.chunk_seconds:
                observed = stats.chunk_percentile(0.5)
                if observed is not None and observed > 0.0:
                    # The p50 chunk latency includes compute; only
                    # shrink the overhead estimate, never inflate it
                    # from busy chunks.
                    if observed < self.chunk_seconds:
                        self.chunk_seconds += w * (observed
                                                   - self.chunk_seconds)

    def copy(self) -> "CostModel":
        return replace(self)


#: Process-wide model that ``--jobs auto`` sweeps calibrate and share.
DEFAULT_COST_MODEL = CostModel()

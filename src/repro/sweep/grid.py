"""Sweep-point descriptions: parameter grids and Monte-Carlo samplers.

Both produce ordered lists of :class:`SweepPoint` — the unit of work of
:func:`repro.sweep.run_sweep`.  A point carries its parameter dict and,
for stochastic sweeps, its own :class:`numpy.random.SeedSequence` child,
spawned deterministically from the sweep's root seed.  Because each
point owns an independent stream, the samples drawn are a function of
the point *index* alone — executors and chunking cannot change them,
which is what makes parallel Monte Carlo bit-identical to serial.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

import numpy as np

from ..errors import AnalysisError


@dataclass(frozen=True)
class SweepPoint:
    """One evaluation point: an index, parameters, optional random seed."""

    index: int
    params: dict
    seed: np.random.SeedSequence | None = None

    def rng(self) -> np.random.Generator | None:
        """A fresh generator over this point's stream (None if unseeded)."""
        if self.seed is None:
            return None
        return np.random.default_rng(self.seed)

    def label(self) -> str:
        """Short human identification used in failure summaries."""
        body = ", ".join(f"{k}={v!r}" for k, v in self.params.items())
        if body:
            return f"point {self.index} ({body})"
        return f"point {self.index}"


def _root_seed(seed) -> np.random.SeedSequence:
    """Normalize an ``int`` / ``SeedSequence`` seed argument."""
    if isinstance(seed, np.random.SeedSequence):
        return seed
    return np.random.SeedSequence(seed)


class ParameterGrid:
    """Cartesian product of named axes, in C order (last axis fastest).

    >>> grid = ParameterGrid({"phase": [0.0, 1.0], "gain": [0.01, 0.09]})
    >>> [p.params for p in grid.points()][:2]
    [{'phase': 0.0, 'gain': 0.01}, {'phase': 0.0, 'gain': 0.09}]
    """

    def __init__(self, axes: dict):
        if not axes:
            raise AnalysisError("parameter grid needs at least one axis")
        self.axes = {name: list(values) for name, values in axes.items()}
        for name, values in self.axes.items():
            if not values:
                raise AnalysisError(f"grid axis {name!r} is empty")

    def __len__(self) -> int:
        count = 1
        for values in self.axes.values():
            count *= len(values)
        return count

    def points(self, seed=None) -> list[SweepPoint]:
        """Materialize the grid; ``seed`` adds per-point random streams."""
        names = list(self.axes)
        combos = itertools.product(*self.axes.values())
        seeds = (
            _root_seed(seed).spawn(len(self))
            if seed is not None
            else [None] * len(self)
        )
        return [
            SweepPoint(index=i, params=dict(zip(names, combo)), seed=s)
            for i, (combo, s) in enumerate(zip(combos, seeds))
        ]


class MonteCarloSampler:
    """``samples`` stochastic points sharing one parameter dict.

    Each point receives its own child of the root
    :class:`~numpy.random.SeedSequence` — sample ``i`` always sees the
    same stream, whatever executor or chunking runs it.
    """

    def __init__(self, samples: int, seed=0, params: dict | None = None):
        if samples < 1:
            raise AnalysisError("need at least one Monte-Carlo sample")
        self.samples = samples
        self.seed = _root_seed(seed)
        self.params = dict(params or {})

    def __len__(self) -> int:
        return self.samples

    def points(self) -> list[SweepPoint]:
        seeds = self.seed.spawn(self.samples)
        return [
            SweepPoint(index=i, params=dict(self.params), seed=s)
            for i, s in enumerate(seeds)
        ]

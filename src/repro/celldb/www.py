"""Static-HTML export of the cell library (the paper's WWW server).

Section 3: "The authors also offer a library of circuits by a WWW server
in TOSHIBA ... for a quick inspection of circuit diagrams and documents
on circuit operation which are classified in many categories."  This
module renders the same browse view: an index page per library with the
category tree, and one page per cell showing the document, symbol,
schematic listing and archived simulation summaries.
"""

from __future__ import annotations

import html
from pathlib import Path

from .database import AnalogCellDatabase
from .model import Cell

_PAGE = """<!DOCTYPE html>
<html><head><meta charset="utf-8"><title>{title}</title>
<style>
body {{ font-family: sans-serif; margin: 2em; }}
pre  {{ background: #f4f4f4; padding: 1em; overflow-x: auto; }}
table {{ border-collapse: collapse; }}
td, th {{ border: 1px solid #999; padding: 0.3em 0.8em; }}
</style></head>
<body>
{body}
</body></html>
"""


def _cell_filename(cell: Cell) -> str:
    return f"cell_{cell.name.lower().replace(' ', '_')}.html"


def render_index(db: AnalogCellDatabase) -> str:
    """The library index page (category tree with cell links)."""
    parts = [f"<h1>Analog cell library: {html.escape(db.name)}</h1>"]
    for library in db.libraries():
        parts.append(f"<h2>Library {html.escape(library)}</h2>")
        for cat1, cat2s in db.categories(library).items():
            parts.append(f"<h3>{html.escape(cat1)}</h3><ul>")
            for cat2 in cat2s:
                parts.append(f"<li>{html.escape(cat2)}<ul>")
                for cell in db.in_category(f"{library}/{cat1}/{cat2}"):
                    link = _cell_filename(cell)
                    parts.append(
                        f'<li><a href="{link}">{html.escape(cell.name)}</a>'
                        f" — re-used {cell.reuse_count}×</li>"
                    )
                parts.append("</ul></li>")
            parts.append("</ul>")
    body = "\n".join(parts)
    return _PAGE.format(title=html.escape(db.name), body=body)


def render_cell(cell: Cell) -> str:
    """One cell's inspection page (Fig. 7's four facets)."""
    parts = [
        f"<h1>{html.escape(cell.name)}</h1>",
        f"<p><b>Category:</b> {html.escape(str(cell.category))}</p>",
    ]
    if cell.designer:
        parts.append(f"<p><b>Designer:</b> {html.escape(cell.designer)}</p>")
    if cell.origin_ic:
        parts.append(f"<p><b>First used in:</b> {html.escape(cell.origin_ic)}</p>")
    parts.append("<h2>Document</h2>")
    parts.append(f"<p>{html.escape(cell.document)}</p>")
    parts.append("<h2>Symbol</h2>")
    parts.append(
        "<p>glyph <i>" + html.escape(cell.symbol.glyph) + "</i>, ports: "
        + ", ".join(html.escape(p) for p in cell.symbol.ports) + "</p>"
    )
    if cell.behavior.strip():
        parts.append("<h2>Behavioral description (AHDL)</h2>")
        parts.append(f"<pre>{html.escape(cell.behavior.strip())}</pre>")
    if cell.schematic.strip():
        parts.append("<h2>Schematic (SPICE deck)</h2>")
        parts.append(f"<pre>{html.escape(cell.schematic.strip())}</pre>")
    if cell.simulations:
        parts.append("<h2>Simulation data</h2><table>")
        parts.append("<tr><th>name</th><th>analysis</th><th>summary</th></tr>")
        for record in cell.simulations:
            summary = ", ".join(
                f"{k}={v:g}" for k, v in sorted(record.summary.items())
            )
            parts.append(
                f"<tr><td>{html.escape(record.name)}</td>"
                f"<td>{html.escape(record.analysis)}</td>"
                f"<td>{html.escape(summary)}</td></tr>"
            )
        parts.append("</table>")
    parts.append('<p><a href="index.html">back to index</a></p>')
    return _PAGE.format(title=html.escape(cell.name), body="\n".join(parts))


def export_site(db: AnalogCellDatabase, directory) -> list[Path]:
    """Write the whole browse site; returns the created paths."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written = []
    index_path = directory / "index.html"
    index_path.write_text(render_index(db))
    written.append(index_path)
    for cell in db.cells():
        path = directory / _cell_filename(cell)
        path.write_text(render_cell(cell))
        written.append(path)
    return written

"""Analog cell-based design supporting system (paper Section 3)."""

from .model import Cell, CategoryPath, SimulationRecord, Symbol
from .database import AnalogCellDatabase, AuditEvent, ReuseStatistics
from .www import export_site, render_cell, render_index
from .seed import seed_database
from .capture import cell_from_ahdl, cell_from_circuit

__all__ = [
    "Cell",
    "CategoryPath",
    "Symbol",
    "SimulationRecord",
    "AnalogCellDatabase",
    "AuditEvent",
    "ReuseStatistics",
    "export_site",
    "render_cell",
    "render_index",
    "seed_database",
    "cell_from_circuit",
    "cell_from_ahdl",
]

"""A seeded cell library mirroring the paper's Fig. 6 classification.

Provides a realistic starting database: the TV-chroma cells the figure
names (ACC1, ACC2, color control...) plus the tuner building blocks the
Section 2 example re-uses.  Every cell carries all four facets of
Fig. 7 — document, symbol, behavioral (AHDL) view and a transistor-level
schematic — and the schematics/behaviors are real enough to pass the
registration validators.
"""

from __future__ import annotations

from .database import AnalogCellDatabase
from .model import Cell, CategoryPath, SimulationRecord, Symbol

_GENERIC_NPN = (
    ".MODEL QGEN NPN(IS=4e-17 BF=90 VAF=45 IKF=3m RB=200 RE=3 RC=90\n"
    "+ CJE=35f CJC=30f TF=10p)"
)


def _diff_amp_deck(name: str) -> str:
    return f"""* {name}: resistively loaded differential pair
V1 vcc 0 DC 5
RC1 vcc outp 1k
RC2 vcc outn 1k
Q1 outp inp tail QGEN
Q2 outn inn tail QGEN
I1 tail 0 DC 1m
VB1 inp 0 DC 2.5 AC 1
VB2 inn 0 DC 2.5
{_GENERIC_NPN}
.AC DEC 5 1MEG 10G
.END
"""


def _mixer_deck(name: str) -> str:
    return f"""* {name}: single-balanced mixer core
V1 vcc 0 DC 5
RC1 vcc outp 500
RC2 vcc outn 500
Q1 outp lop com QGEN
Q2 outn lon com QGEN
Q3 com rf 0 QGEN
VLO lop 0 DC 2.5
VLOB lon 0 DC 2.5
VRF rf 0 DC 0.85 AC 1
{_GENERIC_NPN}
.AC DEC 5 1MEG 10G
.END
"""


def _follower_deck(name: str) -> str:
    return f"""* {name}: emitter follower output buffer
V1 vcc 0 DC 5
Q1 vcc in out QGEN
I1 out 0 DC 1m
VB in 0 DC 2.5 AC 1
{_GENERIC_NPN}
.AC DEC 5 1MEG 10G
.END
"""


_AMP_AHDL = """
module gca (IN, OUT) (gain)
node [V, I] IN, OUT;
parameter real gain = 4;
{
  analog {
    V(OUT) <- gain * V(IN);
  }
}
"""

_MIXER_AHDL = """
module mixer (RF, IF) (lo_freq, conv_gain)
node [V, I] RF, IF;
parameter real lo_freq = 1255MEG;
parameter real conv_gain = 1;
{
  analog {
    V(IF) <- mix(V(RF), lo_freq, 0) * conv_gain;
  }
}
"""

_SHIFTER_AHDL = """
module phase90 (IN, OUT) (err)
node [V, I] IN, OUT;
parameter real err = 0;
{
  analog {
    V(OUT) <- phase_shift(V(IN), 90 + err);
  }
}
"""

_BPF_AHDL = """
module if_bpf (IN, OUT) (center, bw)
node [V, I] IN, OUT;
parameter real center = 1300MEG;
parameter real bw = 60MEG;
{
  analog {
    V(OUT) <- bandpass(V(IN), center, bw, 3);
  }
}
"""


def _cell(name, path, document, ports, schematic="", behavior="",
          keywords=(), origin="", sims=()):
    return Cell(
        name=name,
        category=CategoryPath.parse(path),
        document=document,
        symbol=Symbol(tuple(ports)),
        schematic=schematic,
        behavior=behavior,
        keywords=tuple(keywords),
        designer="miyahara",
        origin_ic=origin,
        simulations=list(sims),
    )


def seed_database() -> AnalogCellDatabase:
    """Build the seeded library (every cell passes validation)."""
    db = AnalogCellDatabase("toshiba-mmel-analog-cells")

    # --- the Fig. 6 TV / chroma corner ------------------------------------------
    db.register(_cell(
        "ACC1", "TV/Croma/ACC",
        "Automatic chroma control amplifier. Input signal is IN1; the "
        "control loop holds the burst amplitude constant. DC voltage is "
        "5 to 8 V. Output impedance is very low, input impedance 50 ohm. "
        "This circuit operates like a gain controlled amp.",
        ("IN1", "IN2", "OUT1"),
        schematic=_diff_amp_deck("ACC1"), behavior=_AMP_AHDL,
        keywords=("chroma", "agc", "gain control"), origin="TA8867",
        sims=(SimulationRecord("out1", "ac", {"gain_db": 12.0,
                                              "bw_mhz": 8.0}),),
    ))
    db.register(_cell(
        "ACC2", "TV/Croma/ACC",
        "Second-generation automatic chroma control with wider AGC range "
        "and improved temperature stability.",
        ("IN", "OUT", "VAGC"),
        schematic=_diff_amp_deck("ACC2"), behavior=_AMP_AHDL,
        keywords=("chroma", "agc"), origin="TA8880",
    ))
    db.register(_cell(
        "COLOR-LIMITTER", "TV/Croma/Color limitter",
        "Chroma color limiter clamping over-saturated color difference "
        "signals; soft knee around 0.7 Vpp.",
        ("IN", "OUT"),
        schematic=_diff_amp_deck("COLORLIM"),
        keywords=("chroma", "limiter"), origin="TA8867",
    ))
    db.register(_cell(
        "VIDEO-DRV", "TV/Video/Output",
        "Video output driver, 6 dB gain, drives 75 ohm double-terminated "
        "line from a 5 V rail.",
        ("IN", "OUT"),
        schematic=_follower_deck("VIDEODRV"), behavior=_AMP_AHDL,
        keywords=("video", "driver"), origin="TA8859",
    ))
    db.register(_cell(
        "DEFLECT-RAMP", "TV/Deflection/Ramp",
        "Vertical deflection ramp generator with retrace clamp.",
        ("SYNC", "RAMP"),
        schematic=_diff_amp_deck("DEFLRAMP"),
        keywords=("deflection", "ramp"), origin="TA8859",
    ))

    # --- tuner building blocks (the Section 2 example's re-use pool) -----------------
    db.register(_cell(
        "RF-AGC-AMP", "TVR/Tuner/RF front end",
        "Broadband RF AGC amplifier for 90-770 MHz CATV input; 15 dB "
        "maximum gain, gain controlled amp with 40 dB range.",
        ("RF", "OUT", "VAGC"),
        schematic=_diff_amp_deck("RFAGC"), behavior=_AMP_AHDL,
        keywords=("tuner", "rf", "agc", "amplifier"), origin="TA8804",
        sims=(SimulationRecord("gain", "behavioral", {"gain_db": 15.0}),),
    ))
    db.register(_cell(
        "UPMIX-1300", "TVR/Tuner/Mixer",
        "Up-conversion double-balanced mixer translating the CATV band "
        "to the 1.3 GHz first IF. Gilbert core with on-chip LO buffer.",
        ("RF", "LO", "IF"),
        schematic=_mixer_deck("UPMIX"), behavior=_MIXER_AHDL,
        keywords=("tuner", "mixer", "upconversion", "1st IF"),
        origin="TA8804",
        sims=(SimulationRecord("conversion", "tran",
                               {"conversion_gain_db": 3.5,
                                "tail_current_ma": 2.0,
                                "gain_error": 0.02}),),
    ))
    db.register(_cell(
        "DNMIX-45", "TVR/Tuner/Mixer",
        "Down-conversion mixer from the 1.3 GHz first IF to the 45 MHz "
        "second IF. Used in pairs for the image rejection configuration.",
        ("IF1", "LO", "IF2"),
        schematic=_mixer_deck("DNMIX"), behavior=_MIXER_AHDL,
        keywords=("tuner", "mixer", "downconversion", "2nd IF", "image"),
        origin="TA8822",
        sims=(SimulationRecord("conversion", "tran",
                               {"conversion_gain_db": 4.5,
                                "gain_error": 0.008,
                                "tail_current_ma": 2.0}),),
    ))
    db.register(_cell(
        "PHASE90-VCO", "TVR/Tuner/Phase shifter",
        "90 degree phase splitter for the second local oscillator; RC-CR "
        "network with buffer, quadrature error below 2 degrees over the "
        "band.",
        ("LO", "LOI", "LOQ"),
        schematic=_follower_deck("PH90VCO"), behavior=_SHIFTER_AHDL,
        keywords=("tuner", "phase shifter", "quadrature", "vco", "90"),
        origin="TA8822",
        sims=(SimulationRecord("quadrature", "behavioral",
                               {"phase_error_deg": 1.8,
                                "gain_error": 0.006}),),
    ))
    db.register(_cell(
        "PHASE90-IF", "TVR/Tuner/Phase shifter",
        "90 degree phase shifter in the 45 MHz second IF path of the "
        "image rejection mixer; polyphase implementation.",
        ("IN", "OUT"),
        schematic=_follower_deck("PH90IF"), behavior=_SHIFTER_AHDL,
        keywords=("tuner", "phase shifter", "image rejection", "90"),
        origin="TA8822",
        sims=(SimulationRecord("quadrature", "behavioral",
                               {"phase_error_deg": 1.5,
                                "gain_error": 0.005}),),
    ))
    db.register(_cell(
        "IF-ADDER", "TVR/Tuner/Combiner",
        "Two-input summing amplifier combining the quadrature second IF "
        "paths; the image signal phases reverse and cancel.",
        ("IN1", "IN2", "OUT"),
        schematic=_diff_amp_deck("IFADD"),
        keywords=("tuner", "adder", "combiner", "image rejection"),
        origin="TA8822",
    ))
    db.register(_cell(
        "VCO-2ND", "TVR/Tuner/Oscillator",
        "Second local oscillator at 1255 MHz with two outputs whose "
        "phases differ by 90 degrees (feeds the image rejection mixer).",
        ("LOI", "LOQ", "VTUNE"),
        schematic=_follower_deck("VCO2"),
        keywords=("tuner", "vco", "oscillator", "quadrature"),
        origin="TA8822",
    ))
    db.register(_cell(
        "IF-BPF-1300", "TVR/Tuner/Filter",
        "First IF band-pass pre-filter centred at 1.3 GHz, 60 MHz "
        "bandwidth, third order.",
        ("IN", "OUT"),
        behavior=_BPF_AHDL,
        keywords=("tuner", "filter", "bpf", "1st IF"), origin="TA8804",
    ))
    db.register(_cell(
        "PLL-SYNTH", "TVR/Tuner/PLL",
        "Frequency synthesiser PLL generating the first local oscillator "
        "Fup = RF + 1.3 GHz with 62.5 kHz channel raster.",
        ("REF", "LO", "VTUNE"),
        schematic=_follower_deck("PLL1"),
        keywords=("tuner", "pll", "synthesizer", "local oscillator"),
        origin="TA8804",
    ))
    db.register(_cell(
        "RING-OSC-5", "TVR/Clock/Oscillator",
        "Five stage fully differential ECL ring oscillator used as a "
        "free-running clock source; frequency set by transistor shape "
        "and tail current (see Table 1 study).",
        ("OUTP", "OUTN"),
        schematic=_follower_deck("RING5"),
        keywords=("ring oscillator", "ecl", "clock"), origin="TC9090",
    ))
    return db

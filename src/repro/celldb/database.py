"""The analog cell database: registration, search, re-use, persistence.

The paper's system has two faces: one for the circuit designer who
*registers* circuits (validated here: the schematic must parse as a
SPICE deck, the behavioral view must compile as AHDL), and one for
designers who *search* and *copy* circuits for re-use.  Copying
increments a per-cell counter so the design-group reuse rate (the
paper's "above 70 %") can be audited with :meth:`reuse_statistics`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from ..ahdl import compile_source
from ..errors import CellDatabaseError, ParseError
from ..spice.parser import parse_deck
from .model import Cell, CategoryPath


@dataclass(frozen=True)
class ReuseStatistics:
    """Aggregate reuse audit of a design against the database."""

    total_blocks: int
    reused_blocks: int

    @property
    def reuse_fraction(self) -> float:
        if self.total_blocks == 0:
            return 0.0
        return self.reused_blocks / self.total_blocks


@dataclass(frozen=True)
class AuditEvent:
    """One entry of the database's audit trail."""

    sequence: int
    action: str  #: "register" | "update" | "reuse" | "unregister"
    cell: str
    detail: str = ""


def _same(value: str, wanted: str) -> bool:
    """Case-insensitive category component comparison."""
    return value.lower() == wanted.lower()


def _meets_ranges(cell: Cell, spec_ranges: dict) -> bool:
    """Whether a cell's recorded simulation data satisfies every range."""
    summary = cell.simulation_summary()
    for name, (low, high) in spec_ranges.items():
        if name not in summary:
            return False
        value = summary[name]
        if low is not None and value < low:
            return False
        if high is not None and value > high:
            return False
    return True


class AnalogCellDatabase:
    """In-memory cell store with JSON persistence and an audit trail."""

    def __init__(self, name: str = "analog-cells"):
        self.name = name
        self._cells: dict[str, Cell] = {}
        self._audit: list[AuditEvent] = []

    def _record(self, action: str, cell: str, detail: str = "") -> None:
        self._audit.append(AuditEvent(len(self._audit) + 1, action, cell,
                                      detail))

    def history(self, cell_name: str | None = None) -> list[AuditEvent]:
        """The audit trail, optionally filtered to one cell."""
        if cell_name is None:
            return list(self._audit)
        key = cell_name.upper()
        return [e for e in self._audit if e.cell.upper() == key]

    # -- registration (the designer-facing half) ---------------------------------------

    def register(self, cell: Cell, validate: bool = True) -> Cell:
        """Register a cell; validates its machine-readable facets.

        Raises :class:`CellDatabaseError` on duplicates, unparseable
        schematics, or uncompilable behavioral views.
        """
        key = cell.name.upper()
        if key in self._cells:
            raise CellDatabaseError(f"cell {cell.name!r} already registered")
        if validate:
            self._validate(cell)
        self._cells[key] = cell
        self._record("register", cell.name)
        return cell

    def update_cell(self, cell: Cell, validate: bool = True) -> Cell:
        """Replace a registered cell with a revised version.

        The stored revision number is bumped (whatever the incoming
        record claims) and the change is audited.
        """
        key = cell.name.upper()
        if key not in self._cells:
            raise CellDatabaseError(
                f"cell {cell.name!r} is not registered; use register()"
            )
        if validate:
            self._validate(cell)
        previous = self._cells[key]
        cell.revision = previous.revision + 1
        cell.reuse_count = max(cell.reuse_count, previous.reuse_count)
        self._cells[key] = cell
        self._record("update", cell.name,
                     f"revision {previous.revision} -> {cell.revision}")
        return cell

    def _validate(self, cell: Cell) -> None:
        if cell.schematic.strip():
            try:
                parse_deck(cell.schematic)
            except ParseError as exc:
                raise CellDatabaseError(
                    f"cell {cell.name!r}: schematic does not parse: {exc}"
                ) from exc
        if cell.behavior.strip():
            try:
                compile_source(cell.behavior)
            except ParseError as exc:
                raise CellDatabaseError(
                    f"cell {cell.name!r}: behavioral view does not "
                    f"compile: {exc}"
                ) from exc

    def unregister(self, name: str) -> Cell:
        """Remove and return a cell (audited)."""
        try:
            cell = self._cells.pop(name.upper())
        except KeyError:
            raise CellDatabaseError(f"no cell named {name!r}") from None
        self._record("unregister", cell.name)
        return cell

    # -- lookup and search (the re-use half) ---------------------------------------------

    def __len__(self) -> int:
        return len(self._cells)

    def __contains__(self, name: str) -> bool:
        return name.upper() in self._cells

    def get(self, name: str) -> Cell:
        """Look up a cell by (case-insensitive) name."""
        try:
            return self._cells[name.upper()]
        except KeyError:
            raise CellDatabaseError(f"no cell named {name!r}") from None

    def cells(self) -> list[Cell]:
        """All cells, sorted by name."""
        return sorted(self._cells.values(), key=lambda c: c.name)

    def libraries(self) -> list[str]:
        """Distinct library names present in the database."""
        return sorted({c.category.library for c in self._cells.values()})

    def categories(self, library: str) -> dict[str, list[str]]:
        """category1 -> [category2...] within one library."""
        tree: dict[str, set[str]] = {}
        for cell in self._cells.values():
            if cell.category.library != library:
                continue
            tree.setdefault(cell.category.category1, set()).add(
                cell.category.category2
            )
        return {k: sorted(v) for k, v in sorted(tree.items())}

    def in_category(self, path: CategoryPath | str) -> list[Cell]:
        """Cells filed under one library/cat1/cat2 path."""
        if isinstance(path, str):
            path = CategoryPath.parse(path)
        return [c for c in self.cells() if c.category == path]

    def search(self, keyword: str | None = None,
               library: str | None = None,
               category1: str | None = None,
               category2: str | None = None,
               spec_ranges: dict | None = None) -> list[Cell]:
        """Keyword/category search, ANDed; all filters optional.

        Category filters are case-insensitive (``library="tvr"`` matches
        the ``TVR`` library).  ``spec_ranges`` filters on the cells'
        recorded simulation data: ``{"gain_db": (10.0, None)}`` keeps
        cells whose merged :meth:`~repro.celldb.model.Cell.simulation_summary`
        records ``gain_db`` of at least 10 (``(None, hi)`` bounds from
        above, ``(lo, hi)`` both ways).  A cell with *no* recorded value
        for a constrained quantity is excluded — unknown performance
        cannot satisfy a requirement.
        """
        if spec_ranges:
            for name, bounds in spec_ranges.items():
                try:
                    low, high = bounds
                except (TypeError, ValueError):
                    raise CellDatabaseError(
                        f"spec range {name!r} must be a (low, high) pair, "
                        f"got {bounds!r}"
                    ) from None
        hits = []
        for cell in self.cells():
            if library and not _same(cell.category.library, library):
                continue
            if category1 and not _same(cell.category.category1, category1):
                continue
            if category2 and not _same(cell.category.category2, category2):
                continue
            if keyword and not cell.matches_keyword(keyword):
                continue
            if spec_ranges and not _meets_ranges(cell, spec_ranges):
                continue
            hits.append(cell)
        return hits

    def meeting_specs(self, spec_ranges: dict, **filters) -> list[Cell]:
        """Cells whose recorded simulation data falls inside every range.

        Sugar over :meth:`search` with ``spec_ranges`` — the entry point
        of the paper's "re-use before you design" lookup
        (:mod:`repro.optimize.reuse` builds its ranges from a
        :class:`~repro.optimize.spec.SpecSet`).
        """
        return self.search(spec_ranges=spec_ranges, **filters)

    def copy_for_reuse(self, name: str) -> Cell:
        """Check a cell out for re-use in a new design.

        Returns the cell and bumps its reuse counter (the audit trail
        behind the paper's 70 % figure).
        """
        cell = self.get(name)
        cell.reuse_count += 1
        self._record("reuse", cell.name,
                     f"reuse count now {cell.reuse_count}")
        return cell

    # -- audit ------------------------------------------------------------------------

    def reuse_statistics(self, design_blocks: dict[str, str | None]
                         ) -> ReuseStatistics:
        """Audit a design: ``{block_name: source_cell_or_None}``.

        Blocks mapped to a registered cell name count as re-used; blocks
        mapped to None (or an unknown cell) count as newly designed.
        """
        reused = sum(
            1 for source in design_blocks.values()
            if source is not None and source in self
        )
        return ReuseStatistics(total_blocks=len(design_blocks),
                               reused_blocks=reused)

    # -- persistence --------------------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-serializable form of the whole database."""
        return {
            "name": self.name,
            "format": 1,
            "cells": [cell.to_dict() for cell in self.cells()],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "AnalogCellDatabase":
        if data.get("format") != 1:
            raise CellDatabaseError(
                f"unsupported database format {data.get('format')!r}"
            )
        db = cls(data.get("name", "analog-cells"))
        for record in data.get("cells", []):
            db.register(Cell.from_dict(record), validate=False)
        return db

    def save(self, path) -> None:
        """Persist the database as JSON."""
        Path(path).write_text(json.dumps(self.to_dict(), indent=2))

    @classmethod
    def load(cls, path) -> "AnalogCellDatabase":
        try:
            data = json.loads(Path(path).read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise CellDatabaseError(f"cannot load database: {exc}") from exc
        return cls.from_dict(data)

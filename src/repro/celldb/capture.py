"""Capture live design objects into cell records.

Glue between the design tools and the reuse database: a programmatic
circuit (a ring oscillator, a generated mixer test bench) or a compiled
AHDL module becomes a registrable :class:`~repro.celldb.model.Cell`
without hand-writing deck text — the "circuit designer who registers
circuits" path of the paper's system, automated.
"""

from __future__ import annotations

from ..errors import CellDatabaseError
from .model import Cell, CategoryPath, SimulationRecord, Symbol


def cell_from_circuit(
    name: str,
    category: CategoryPath | str,
    document: str,
    circuit,
    ports: tuple[str, ...],
    behavior: str = "",
    keywords: tuple[str, ...] = (),
    designer: str = "",
    origin_ic: str = "",
    simulations: list[SimulationRecord] | None = None,
) -> Cell:
    """Build a cell record from a live :class:`~repro.spice.Circuit`.

    The schematic facet is produced by the deck serializer, so the
    stored cell re-parses and re-simulates identically.  ``ports`` name
    the circuit nodes that form the block symbol.
    """
    from ..spice.serialize import circuit_to_deck

    if isinstance(category, str):
        category = CategoryPath.parse(category)
    node_names = set(circuit.nodes()) | {"0"}
    missing = [p for p in ports if p not in node_names]
    if missing:
        raise CellDatabaseError(
            f"cell {name!r}: symbol ports {missing} are not nodes of the "
            "circuit"
        )
    return Cell(
        name=name,
        category=category,
        document=document,
        symbol=Symbol(tuple(ports)),
        schematic=circuit_to_deck(circuit, title=f"{name} (captured)"),
        behavior=behavior,
        keywords=tuple(keywords),
        designer=designer,
        origin_ic=origin_ic,
        simulations=list(simulations or []),
    )


def cell_from_ahdl(
    name: str,
    category: CategoryPath | str,
    document: str,
    source: str,
    keywords: tuple[str, ...] = (),
    designer: str = "",
) -> Cell:
    """Build a behavioral-only cell from AHDL source.

    The source is compiled up front so a broken module cannot enter the
    library; the symbol is derived from the module's ports.
    """
    from ..ahdl import compile_source

    modules = compile_source(source)  # raises AHDLError on bad source
    if len(modules) != 1:
        raise CellDatabaseError(
            f"cell {name!r}: expected exactly one AHDL module, "
            f"found {sorted(modules)}"
        )
    module = next(iter(modules.values()))
    if isinstance(category, str):
        category = CategoryPath.parse(category)
    return Cell(
        name=name,
        category=category,
        document=document,
        symbol=Symbol(tuple(module.inputs) + tuple(module.outputs)),
        behavior=source,
        keywords=tuple(keywords),
        designer=designer,
    )

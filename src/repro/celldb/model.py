"""Data model of the Analog Cell-based Design Supporting System (Section 3).

The paper's database stores, per re-usable circuit: documents describing
the operation, the behavioral description, the primitive-element
(transistor-level) implementation, and the block symbol for top-down
design — organised as library -> category -> category -> cell (Fig. 6),
e.g. ``TV / Croma / ACC / ACC1``.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field

from ..errors import CellDatabaseError


@dataclass(frozen=True)
class CategoryPath:
    """Library / category-1 / category-2 classification (paper Fig. 6)."""

    library: str
    category1: str
    category2: str

    def __post_init__(self):
        for part in (self.library, self.category1, self.category2):
            if not part or "/" in part:
                raise CellDatabaseError(
                    f"bad category component {part!r} (non-empty, no '/')"
                )

    def __str__(self) -> str:
        return f"{self.library}/{self.category1}/{self.category2}"

    @classmethod
    def parse(cls, text: str) -> "CategoryPath":
        parts = text.split("/")
        if len(parts) != 3:
            raise CellDatabaseError(
                f"category path needs library/cat1/cat2, got {text!r}"
            )
        return cls(*parts)


@dataclass(frozen=True)
class Symbol:
    """Block symbol for schematic re-use: port names and a glyph label."""

    ports: tuple[str, ...]
    glyph: str = "box"

    def __post_init__(self):
        if not self.ports:
            raise CellDatabaseError("symbol needs at least one port")
        if len(set(self.ports)) != len(self.ports):
            raise CellDatabaseError("symbol ports must be unique")


@dataclass(frozen=True)
class SimulationRecord:
    """One archived simulation result attached to a cell."""

    name: str  #: e.g. "gain_sweep", "out1"
    analysis: str  #: "op" | "ac" | "tran" | "behavioral"
    summary: dict[str, float] = field(default_factory=dict)

    def __post_init__(self):
        if self.analysis not in ("op", "dc", "ac", "tran", "behavioral"):
            raise CellDatabaseError(
                f"unknown analysis kind {self.analysis!r}"
            )


@dataclass
class Cell:
    """A re-usable analog circuit with all four data facets of Fig. 7."""

    name: str
    category: CategoryPath
    document: str  #: prose description of the circuit operation
    symbol: Symbol
    schematic: str = ""  #: transistor-level SPICE deck text
    behavior: str = ""  #: AHDL source of the behavioral view
    simulations: list[SimulationRecord] = field(default_factory=list)
    keywords: tuple[str, ...] = ()
    designer: str = ""
    origin_ic: str = ""  #: the IC this circuit was first designed in
    reuse_count: int = 0
    revision: int = 1  #: bumped by AnalogCellDatabase.update_cell
    #: qualification report record (repro.verify schema), or None while
    #: the cell has only nominal simulation data
    qualification: dict | None = None

    def __post_init__(self):
        if not self.name:
            raise CellDatabaseError("cell needs a name")
        if not self.document.strip():
            raise CellDatabaseError(
                f"cell {self.name!r}: the document (operation description) "
                "is mandatory — undocumented circuits cannot be re-used"
            )

    # -- (de)serialisation ----------------------------------------------------------

    def to_dict(self) -> dict:
        data = asdict(self)
        data["category"] = str(self.category)
        data["symbol"] = {"ports": list(self.symbol.ports),
                          "glyph": self.symbol.glyph}
        data["keywords"] = list(self.keywords)
        data["simulations"] = [asdict(s) for s in self.simulations]
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "Cell":
        try:
            return cls(
                name=data["name"],
                category=CategoryPath.parse(data["category"]),
                document=data["document"],
                symbol=Symbol(tuple(data["symbol"]["ports"]),
                              data["symbol"].get("glyph", "box")),
                schematic=data.get("schematic", ""),
                behavior=data.get("behavior", ""),
                simulations=[
                    SimulationRecord(s["name"], s["analysis"],
                                     dict(s.get("summary", {})))
                    for s in data.get("simulations", [])
                ],
                keywords=tuple(data.get("keywords", ())),
                designer=data.get("designer", ""),
                origin_ic=data.get("origin_ic", ""),
                reuse_count=int(data.get("reuse_count", 0)),
                revision=int(data.get("revision", 1)),
                qualification=data.get("qualification"),
            )
        except KeyError as exc:
            raise CellDatabaseError(f"cell record missing field {exc}") from exc

    def matches_keyword(self, term: str) -> bool:
        """Case-insensitive match against name, keywords and document."""
        needle = term.lower()
        if needle in self.name.lower():
            return True
        if any(needle in k.lower() for k in self.keywords):
            return True
        return needle in self.document.lower()

    def simulation_summary(self) -> dict[str, float]:
        """All recorded simulation figures, merged into one dict.

        Later records win on duplicate keys (a re-characterisation
        supersedes the original numbers).  This is the machine-readable
        face the re-use search filters on.
        """
        merged: dict[str, float] = {}
        for record in self.simulations:
            merged.update(record.summary)
        return merged

    def record_qualification(self, report) -> None:
        """Attach a qualification result (a ``repro.verify``
        ``QualificationReport`` or its ``to_dict()`` record).

        Stores the full per-corner record on :attr:`qualification` and
        folds the nominal-corner measurements into :attr:`simulations`
        as a record named ``"qualification"`` (replacing any previous
        one) so :meth:`simulation_summary` reflects measured behavior.
        """
        data = report.to_dict() if hasattr(report, "to_dict") else dict(report)
        self.qualification = data
        nominal = _nominal_measurements(data)
        self.simulations = [
            s for s in self.simulations if s.name != "qualification"
        ]
        if nominal:
            self.simulations.append(SimulationRecord(
                "qualification", "dc",
                {k: v for k, v in nominal.items() if v is not None},
            ))


def _nominal_measurements(qualification: dict) -> dict:
    """Nominal-corner measurements out of a qualification record
    (falling back to the first solved corner)."""
    outcomes = qualification.get("outcomes", ())
    nominal = (qualification.get("stats") or {}).get("nominal_corner")
    if nominal is not None:
        for outcome in outcomes:
            if outcome.get("corner") == nominal \
                    and outcome.get("failure") is None:
                return dict(outcome.get("measurements") or {})
    for outcome in outcomes:
        if outcome.get("failure") is None:
            return dict(outcome.get("measurements") or {})
    return {}

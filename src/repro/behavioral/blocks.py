"""Behavioral block library: the building blocks AHDL modules compile to.

Each block consumes/produces :class:`~repro.behavioral.signal.Spectrum`
values on named ports.  The library covers what the paper's tuner
experiments need: amplifiers, mixers, phase shifters, adders, filters and
imbalance models.
"""

from __future__ import annotations

import cmath
import math
from typing import Callable, Sequence

from ..errors import AnalysisError
from .signal import Spectrum


class Block:
    """Base class: named ports, pure ``process`` function."""

    def __init__(self, name: str, inputs: Sequence[str], outputs: Sequence[str]):
        self.name = name
        self.inputs = tuple(inputs)
        self.outputs = tuple(outputs)
        if not self.outputs:
            raise AnalysisError(f"block {name} needs at least one output")

    def process(self, inputs: dict[str, Spectrum]) -> dict[str, Spectrum]:
        raise NotImplementedError

    def _input(self, inputs: dict[str, Spectrum], port: str) -> Spectrum:
        value = inputs.get(port)
        if value is None:
            return Spectrum.silence()
        return value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name}>"


class Amplifier(Block):
    """Gain stage with optional phase rotation and gain error.

    ``gain_error`` is fractional (0.01 = +1 %) — the "gain balance"
    parameter the paper's Fig. 5 sweeps.
    """

    def __init__(self, name: str, gain_db: float = 0.0, phase_deg: float = 0.0,
                 gain_error: float = 0.0, nf_db: float = 0.0,
                 iip3_dbm: float = math.inf):
        super().__init__(name, ["in"], ["out"])
        self.gain_db = gain_db
        self.phase_deg = phase_deg
        self.gain_error = gain_error
        #: noise figure and intercept, consumed by the budget tools
        self.nf_db = nf_db
        self.iip3_dbm = iip3_dbm

    @property
    def complex_gain(self) -> complex:
        linear = 10.0 ** (self.gain_db / 20.0) * (1.0 + self.gain_error)
        return linear * cmath.exp(1j * math.radians(self.phase_deg))

    def process(self, inputs):
        return {"out": self._input(inputs, "in").scaled(self.complex_gain)}


class PhaseShifter(Block):
    """Broadband phase shifter with an error term.

    The paper's image-rejection tuner uses two 90-degree shifters (in the
    VCO and the 2nd-IF path); their ``phase_error_deg`` is the x-axis of
    Fig. 5.
    """

    def __init__(self, name: str, shift_deg: float = -90.0,
                 phase_error_deg: float = 0.0, gain_error: float = 0.0):
        super().__init__(name, ["in"], ["out"])
        self.shift_deg = shift_deg
        self.phase_error_deg = phase_error_deg
        self.gain_error = gain_error

    def process(self, inputs):
        total = self.shift_deg + self.phase_error_deg
        factor = (1.0 + self.gain_error) * cmath.exp(1j * math.radians(total))
        return {"out": self._input(inputs, "in").scaled(factor)}


class Mixer(Block):
    """Multiplying mixer against an internal LO.

    ``lo_phase_deg`` carries quadrature offsets (90-degree LO branches)
    and their errors.  ``conversion_gain_db`` is the voltage conversion
    gain to *each* sideband relative to the ideal 1/2 multiplication
    factor.
    """

    def __init__(self, name: str, lo_frequency: float,
                 lo_phase_deg: float = 0.0, conversion_gain_db: float = 6.0,
                 nf_db: float = 0.0, iip3_dbm: float = math.inf):
        super().__init__(name, ["in"], ["out"])
        if lo_frequency <= 0:
            raise AnalysisError(f"mixer {name}: LO frequency must be positive")
        self.lo_frequency = lo_frequency
        self.lo_phase_deg = lo_phase_deg
        self.conversion_gain_db = conversion_gain_db
        self.nf_db = nf_db
        self.iip3_dbm = iip3_dbm

    def process(self, inputs):
        gain = 10.0 ** (self.conversion_gain_db / 20.0)
        return {"out": self._input(inputs, "in").mixed(
            self.lo_frequency, self.lo_phase_deg, conversion_gain=gain)}


class Adder(Block):
    """N-input summer (the image-rejection combiner)."""

    def __init__(self, name: str, num_inputs: int = 2):
        if num_inputs < 2:
            raise AnalysisError(f"adder {name} needs >= 2 inputs")
        super().__init__(name, [f"in{i}" for i in range(num_inputs)], ["out"])

    def process(self, inputs):
        total = Spectrum.silence()
        for port in self.inputs:
            total = total + self._input(inputs, port)
        return {"out": total}


class Splitter(Block):
    """1-to-N signal splitter (unity gain to each branch)."""

    def __init__(self, name: str, num_outputs: int = 2, loss_db: float = 0.0):
        if num_outputs < 2:
            raise AnalysisError(f"splitter {name} needs >= 2 outputs")
        super().__init__(name, ["in"], [f"out{i}" for i in range(num_outputs)])
        self.loss_db = loss_db

    def process(self, inputs):
        branch = self._input(inputs, "in").gained_db(-self.loss_db)
        return {port: branch for port in self.outputs}


def butterworth_response(
    center: float, bandwidth: float, order: int = 3
) -> Callable[[float], complex]:
    """Complex Butterworth bandpass response ``H(f)``.

    Lowpass prototype poles mapped through the narrowband transform
    ``x = Q*(f/f0 - f0/f)``; unity gain and zero phase at ``center``.
    """
    if center <= 0 or bandwidth <= 0 or order < 1:
        raise AnalysisError("bad bandpass filter parameters")
    q = center / bandwidth
    poles = [
        cmath.exp(1j * math.pi * (2 * k + order + 1) / (2 * order))
        for k in range(order)
    ]
    # Prototype H(s) = 1 / prod(s - p_k); |H(0)| = 1 for Butterworth.
    denominator_dc = 1.0
    for p in poles:
        denominator_dc *= -p

    def response(frequency: float) -> complex:
        if frequency <= 0:
            return 0.0
        x = q * (frequency / center - center / frequency)
        s = 1j * x
        denominator = 1.0 + 0.0j
        for p in poles:
            denominator *= (s - p)
        return denominator_dc / denominator

    return response


def lowpass_response(cutoff: float, order: int = 3) -> Callable[[float], complex]:
    """Complex Butterworth lowpass response ``H(f)``."""
    if cutoff <= 0 or order < 1:
        raise AnalysisError("bad lowpass filter parameters")
    poles = [
        cmath.exp(1j * math.pi * (2 * k + order + 1) / (2 * order))
        for k in range(order)
    ]
    denominator_dc = 1.0
    for p in poles:
        denominator_dc *= -p

    def response(frequency: float) -> complex:
        s = 1j * frequency / cutoff
        denominator = 1.0 + 0.0j
        for p in poles:
            denominator *= (s - p)
        return denominator_dc / denominator

    return response


class BandpassFilter(Block):
    """Butterworth bandpass (e.g. the 1st-IF BPF of the tuner)."""

    def __init__(self, name: str, center: float, bandwidth: float,
                 order: int = 3):
        super().__init__(name, ["in"], ["out"])
        self.center = center
        self.bandwidth = bandwidth
        self.order = order
        self._response = butterworth_response(center, bandwidth, order)

    def process(self, inputs):
        return {"out": self._input(inputs, "in").filtered(self._response)}


class LowpassFilter(Block):
    """Butterworth lowpass (2nd-IF selection)."""

    def __init__(self, name: str, cutoff: float, order: int = 3):
        super().__init__(name, ["in"], ["out"])
        self.cutoff = cutoff
        self.order = order
        self._response = lowpass_response(cutoff, order)

    def process(self, inputs):
        return {"out": self._input(inputs, "in").filtered(self._response)}


class QuadratureLO(Block):
    """A local oscillator exposed as two quadrature mixers' worth of drive.

    This block does not process signal; it exists so system descriptions
    can name the VCO of Fig. 4 explicitly.  ``phase_error_deg`` is the
    quadrature error of its 90-degree splitter — one of the two error
    sources Fig. 5 studies.
    """

    def __init__(self, name: str, frequency: float,
                 phase_error_deg: float = 0.0):
        super().__init__(name, [], ["i", "q"])
        if frequency <= 0:
            raise AnalysisError(f"LO {name}: frequency must be positive")
        self.frequency = frequency
        self.phase_error_deg = phase_error_deg

    @property
    def i_phase_deg(self) -> float:
        return 0.0

    @property
    def q_phase_deg(self) -> float:
        return 90.0 + self.phase_error_deg

    def process(self, inputs):
        marker = Spectrum.tone(self.frequency, 1.0, 0.0)
        return {"i": marker, "q": marker.phase_shifted(self.q_phase_deg)}


class FunctionBlock(Block):
    """A block wrapping an arbitrary spectra-to-spectra function.

    The AHDL compiler emits these: ``function(inputs) -> outputs`` where
    both are dicts keyed by port name.
    """

    def __init__(self, name: str, inputs: Sequence[str],
                 outputs: Sequence[str],
                 function: Callable[[dict[str, Spectrum]], dict[str, Spectrum]]):
        super().__init__(name, inputs, outputs)
        self._function = function

    def process(self, inputs):
        result = self._function(inputs)
        missing = set(self.outputs) - set(result)
        if missing:
            raise AnalysisError(
                f"block {self.name} did not produce outputs {sorted(missing)}"
            )
        return result

"""Behavioral (phasor-domain) system simulation — the AHDL runtime."""

from .signal import Spectrum, tone
from .blocks import (
    Adder,
    Amplifier,
    BandpassFilter,
    Block,
    FunctionBlock,
    LowpassFilter,
    Mixer,
    PhaseShifter,
    QuadratureLO,
    Splitter,
    butterworth_response,
    lowpass_response,
)
from .system import SystemModel
from .nonlinear import (
    NonlinearAmplifier,
    cubic_response,
    iip3_from_two_tone,
    two_tone_test,
)
from .budget import (
    CascadeReport,
    CascadeStage,
    cascade,
    chain_report,
    sensitivity_dbm,
    spurious_free_dynamic_range_db,
    stage_from_block,
)

__all__ = [
    "Spectrum",
    "tone",
    "Block",
    "Amplifier",
    "PhaseShifter",
    "Mixer",
    "Adder",
    "Splitter",
    "BandpassFilter",
    "LowpassFilter",
    "QuadratureLO",
    "FunctionBlock",
    "butterworth_response",
    "lowpass_response",
    "SystemModel",
    "NonlinearAmplifier",
    "cubic_response",
    "two_tone_test",
    "iip3_from_two_tone",
    "CascadeStage",
    "CascadeReport",
    "cascade",
    "chain_report",
    "stage_from_block",
    "sensitivity_dbm",
    "spurious_free_dynamic_range_db",
]

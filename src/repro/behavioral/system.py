"""Block-graph system model and its evaluation engine.

A :class:`SystemModel` wires block ports to named nets and evaluates the
whole graph in topological order — the "analyze the whole system" step
of the paper's top-down flow.  Feedback loops are rejected (the phasor
engine is feed-forward; the paper's Fig. 5 experiment needs none).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from ..errors import AnalysisError, DesignError
from .blocks import Block
from .signal import Spectrum


@dataclass
class _Instance:
    block: Block
    input_nets: dict[str, str]  # port -> net
    output_nets: dict[str, str]


class SystemModel:
    """A named collection of interconnected behavioral blocks."""

    def __init__(self, name: str = "system"):
        self.name = name
        self._instances: dict[str, _Instance] = {}

    def add(self, block: Block, *, inputs: dict[str, str] | Iterable[str] = (),
            outputs: dict[str, str] | Iterable[str] = ()) -> Block:
        """Add a block, wiring its ports to nets.

        ``inputs``/``outputs`` map port names to net names; a plain
        sequence is zipped against the block's declared port order.
        """
        if block.name in self._instances:
            raise DesignError(f"duplicate block name {block.name!r}")
        input_nets = _as_port_map(block.inputs, inputs, block.name, "input")
        output_nets = _as_port_map(block.outputs, outputs, block.name, "output")
        self._instances[block.name] = _Instance(block, input_nets, output_nets)
        return block

    def chain(self, blocks: Iterable[Block], nets: Iterable[str]) -> None:
        """Wire single-in/single-out blocks in cascade along ``nets``.

        ``nets`` must have one more entry than there are blocks.
        """
        blocks = list(blocks)
        nets = list(nets)
        if len(nets) != len(blocks) + 1:
            raise DesignError(
                f"chain of {len(blocks)} blocks needs {len(blocks) + 1} nets"
            )
        for block in blocks:
            if len(block.inputs) != 1 or len(block.outputs) != 1:
                raise DesignError(
                    f"chain needs single-in/single-out blocks; "
                    f"{block.name!r} has {len(block.inputs)} input(s) and "
                    f"{len(block.outputs)} output(s)"
                )
        for i, block in enumerate(blocks):
            self.add(block, inputs=[nets[i]], outputs=[nets[i + 1]])

    def blocks(self) -> list[Block]:
        """All blocks, in insertion order."""
        return [inst.block for inst in self._instances.values()]

    def block(self, name: str) -> Block:
        """Look up a block by name."""
        try:
            return self._instances[name].block
        except KeyError:
            raise DesignError(f"no block named {name!r}") from None

    def nets(self) -> set[str]:
        """Every net name referenced by any port."""
        nets: set[str] = set()
        for inst in self._instances.values():
            nets.update(inst.input_nets.values())
            nets.update(inst.output_nets.values())
        return nets

    # -- evaluation -----------------------------------------------------------------

    def _evaluation_order(self) -> list[_Instance]:
        """Topological order of instances by net dependencies."""
        producers: dict[str, str] = {}
        for name, inst in self._instances.items():
            for net in inst.output_nets.values():
                if net in producers:
                    raise DesignError(
                        f"net {net!r} driven by both {producers[net]!r} "
                        f"and {name!r}"
                    )
                producers[net] = name

        order: list[_Instance] = []
        state: dict[str, int] = {}  # 0 unvisited, 1 visiting, 2 done

        def visit(name: str) -> None:
            mark = state.get(name, 0)
            if mark == 2:
                return
            if mark == 1:
                raise DesignError(
                    f"feedback loop through block {name!r}; the phasor "
                    "engine evaluates feed-forward graphs only"
                )
            state[name] = 1
            inst = self._instances[name]
            for net in inst.input_nets.values():
                producer = producers.get(net)
                if producer is not None:
                    visit(producer)
            state[name] = 2
            order.append(inst)

        for name in self._instances:
            visit(name)
        return order

    def as_block(self, name: str, inputs: dict[str, str],
                 outputs: dict[str, str]) -> Block:
        """Package this whole system as a single reusable block.

        ``inputs`` maps new block-port names to this system's stimulus
        nets; ``outputs`` maps block-port names to internal nets.  The
        returned block runs the system on each process() call, enabling
        hierarchical composition (a tuner built from an ir_mixer
        subsystem, etc.).
        """
        if not outputs:
            raise DesignError("as_block needs at least one output")
        internal_nets = self.nets()
        driven = {
            net for inst in self._instances.values()
            for net in inst.output_nets.values()
        }
        for port, net in inputs.items():
            if net in driven:
                raise DesignError(
                    f"input {port!r}: net {net!r} is driven by a block "
                    f"inside system {self.name!r}; map inputs to "
                    "stimulus nets"
                )
        for port, net in outputs.items():
            if net not in internal_nets:
                raise DesignError(
                    f"output {port!r}: net {net!r} does not exist in "
                    f"system {self.name!r}"
                )
        system = self

        from .blocks import FunctionBlock

        def process(block_inputs: dict[str, Spectrum]) -> dict[str, Spectrum]:
            stimuli = {
                net: block_inputs.get(port, Spectrum.silence())
                for port, net in inputs.items()
            }
            nets = system.run(stimuli)
            return {port: nets.get(net, Spectrum.silence())
                    for port, net in outputs.items()}

        return FunctionBlock(name, list(inputs), list(outputs), process)

    def run(self, stimuli: dict[str, Spectrum]) -> dict[str, Spectrum]:
        """Evaluate the system; returns every net's spectrum.

        ``stimuli`` seeds input nets.  Driving a net that a block also
        drives is an error.
        """
        values: dict[str, Spectrum] = dict(stimuli)
        order = self._evaluation_order()
        driven = {
            net for inst in self._instances.values()
            for net in inst.output_nets.values()
        }
        clash = driven & set(stimuli)
        if clash:
            raise DesignError(
                f"stimulus nets {sorted(clash)} are also driven by blocks"
            )
        for inst in order:
            block_inputs = {
                port: values.get(net, Spectrum.silence())
                for port, net in inst.input_nets.items()
            }
            outputs = inst.block.process(block_inputs)
            for port, net in inst.output_nets.items():
                values[net] = outputs[port]
        return values


def _as_port_map(ports, wiring, block_name: str, kind: str) -> dict[str, str]:
    if isinstance(wiring, dict):
        port_map = dict(wiring)
    else:
        nets = list(wiring)
        if len(nets) > len(ports):
            raise DesignError(
                f"block {block_name!r} has {len(ports)} {kind} port(s), "
                f"{len(nets)} nets given"
            )
        port_map = dict(zip(ports, nets))
    unknown = set(port_map) - set(ports)
    if unknown:
        raise DesignError(
            f"block {block_name!r} has no {kind} port(s) {sorted(unknown)}"
        )
    return port_map

"""Cascade budget analysis: gain, noise figure and intercept point.

Section 2 of the paper is about deriving *block specifications* from the
system specification.  For receiver chains the classical tools are the
Friis noise-figure cascade and the IIP3 cascade; this module implements
both so the top-down flow (:mod:`repro.core.flow`) can budget specs over
a chain and verify a candidate partition.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

from ..errors import DesignError
from ..units import db, from_db


@dataclass(frozen=True)
class CascadeStage:
    """One RF chain stage: gain, noise figure, input-referred IP3."""

    name: str
    gain_db: float
    nf_db: float = 0.0
    iip3_dbm: float = math.inf

    def __post_init__(self):
        if self.nf_db < 0:
            raise DesignError(f"stage {self.name}: NF cannot be negative")

    @property
    def gain(self) -> float:
        return from_db(self.gain_db)

    @property
    def noise_factor(self) -> float:
        return from_db(self.nf_db)

    @property
    def iip3_mw(self) -> float:
        return 10.0 ** (self.iip3_dbm / 10.0)


@dataclass(frozen=True)
class CascadeReport:
    """Cascade totals."""

    gain_db: float
    nf_db: float
    iip3_dbm: float
    stage_names: tuple[str, ...]


def cascade(stages: Sequence[CascadeStage] | Iterable[CascadeStage]) -> CascadeReport:
    """Friis NF cascade + IIP3 cascade over the chain.

    NF:    F = F1 + (F2-1)/G1 + (F3-1)/(G1 G2) + ...
    IIP3:  1/P = 1/P1 + G1/P2 + G1 G2 / P3 + ...   (powers in mW)
    """
    stages = list(stages)
    if not stages:
        raise DesignError("cascade needs at least one stage")
    total_gain = 1.0
    noise_factor = 0.0
    inverse_ip3 = 0.0
    for i, stage in enumerate(stages):
        if i == 0:
            noise_factor = stage.noise_factor
        else:
            noise_factor += (stage.noise_factor - 1.0) / total_gain
        if math.isfinite(stage.iip3_dbm):
            inverse_ip3 += total_gain / stage.iip3_mw
        total_gain *= stage.gain
    iip3_dbm = math.inf if inverse_ip3 == 0 else 10.0 * math.log10(1.0 / inverse_ip3)
    return CascadeReport(
        gain_db=db(total_gain),
        nf_db=db(noise_factor),
        iip3_dbm=iip3_dbm,
        stage_names=tuple(s.name for s in stages),
    )


def stage_from_block(block) -> CascadeStage:
    """Build a CascadeStage from a behavioral block's attributes.

    Reads ``gain_db`` (amplifiers/shifters) or ``conversion_gain_db``
    (mixers, which also pay the 6 dB mixing loss relative to it... the
    attribute *is* the net conversion gain), plus the optional ``nf_db``
    and ``iip3_dbm`` annotations.
    """
    if hasattr(block, "gain_db"):
        gain_db = block.gain_db
    elif hasattr(block, "conversion_gain_db"):
        gain_db = block.conversion_gain_db - 6.0  # net of the 1/2 factor
    else:
        raise DesignError(
            f"block {getattr(block, 'name', block)!r} carries no gain "
            "annotation"
        )
    return CascadeStage(
        name=block.name,
        gain_db=gain_db,
        nf_db=getattr(block, "nf_db", 0.0),
        iip3_dbm=getattr(block, "iip3_dbm", math.inf),
    )


def chain_report(blocks) -> CascadeReport:
    """Cascade budget of a sequence of annotated behavioral blocks.

    The system-level NF/IIP3 the top-down flow checks against the
    receiver spec, computed directly from the block graph's annotations.
    """
    return cascade([stage_from_block(block) for block in blocks])


def sensitivity_dbm(nf_db: float, bandwidth_hz: float,
                    snr_required_db: float = 10.0) -> float:
    """Receiver sensitivity: -174 dBm/Hz + NF + 10log10(B) + SNR."""
    if bandwidth_hz <= 0:
        raise DesignError("bandwidth must be positive")
    return -174.0 + nf_db + 10.0 * math.log10(bandwidth_hz) + snr_required_db


def spurious_free_dynamic_range_db(iip3_dbm: float, noise_floor_dbm: float) -> float:
    """SFDR = (2/3) * (IIP3 - noise floor)."""
    return 2.0 / 3.0 * (iip3_dbm - noise_floor_dbm)

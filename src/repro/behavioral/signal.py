"""Phasor-domain multi-tone signals for behavioral RF simulation.

The AHDL experiments in the paper (Section 2) evaluate narrowband RF
systems — mixers, phase shifters, filters, adders — where every signal
is a sum of sinusoidal tones.  A :class:`Spectrum` stores those tones as
``frequency -> complex phasor``; the real signal is

    s(t) = sum_f  Re{ A_f * exp(j*2*pi*f*t) }

so ``abs(A_f)`` is the tone's amplitude and ``angle(A_f)`` its phase.
Mixing translates tones in frequency; a tone landing below 0 Hz is
folded back with a *conjugated* phasor — the physics that makes image
rejection (and its sensitivity to gain/phase imbalance) come out of the
simulation rather than being hand-coded.

Frequencies are keyed on integer millihertz so tones generated through
different arithmetic paths coincide exactly.
"""

from __future__ import annotations

import cmath
import math
from typing import Iterable, Iterator

from ..errors import AnalysisError

#: Tones weaker than this (in amplitude) are dropped during cleanup.
AMPLITUDE_FLOOR = 1e-18

_KEY_SCALE = 1000.0  # millihertz resolution


def _key(frequency: float) -> int:
    if frequency < 0:
        raise AnalysisError(f"tone frequency must be >= 0, got {frequency}")
    return int(round(frequency * _KEY_SCALE))


class Spectrum:
    """An immutable-by-convention bag of tones (frequency -> phasor)."""

    __slots__ = ("_tones",)

    def __init__(self, tones: dict[int, complex] | None = None):
        self._tones: dict[int, complex] = tones or {}

    # -- constructors -----------------------------------------------------------

    @classmethod
    def tone(cls, frequency: float, amplitude: float = 1.0,
             phase_deg: float = 0.0) -> "Spectrum":
        """A single sinusoid ``amplitude*cos(2*pi*f*t + phase)``."""
        phasor = amplitude * cmath.exp(1j * math.radians(phase_deg))
        return cls({_key(frequency): phasor})

    @classmethod
    def silence(cls) -> "Spectrum":
        return cls({})

    # -- inspection ---------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._tones)

    def __bool__(self) -> bool:
        return bool(self._tones)

    def frequencies(self) -> list[float]:
        """Tone frequencies in Hz, ascending."""
        return sorted(k / _KEY_SCALE for k in self._tones)

    def tones(self) -> Iterator[tuple[float, complex]]:
        """(frequency, phasor) pairs, ascending in frequency."""
        for k in sorted(self._tones):
            yield k / _KEY_SCALE, self._tones[k]

    def phasor(self, frequency: float) -> complex:
        """Complex phasor at a frequency (0 when absent)."""
        return self._tones.get(_key(frequency), 0.0 + 0.0j)

    def amplitude(self, frequency: float) -> float:
        """Tone amplitude at a frequency (0 when absent)."""
        return abs(self.phasor(frequency))

    def phase_deg(self, frequency: float) -> float:
        """Tone phase in degrees."""
        return math.degrees(cmath.phase(self.phasor(frequency)))

    def power(self, frequency: float) -> float:
        """Tone power into 1 ohm (A^2/2)."""
        return self.amplitude(frequency) ** 2 / 2.0

    def total_power(self) -> float:
        """Sum of tone powers into 1 ohm."""
        return sum(abs(a) ** 2 for a in self._tones.values()) / 2.0

    def dominant(self) -> tuple[float, complex]:
        """The strongest tone; raises on silence."""
        if not self._tones:
            raise AnalysisError("spectrum is empty")
        k = max(self._tones, key=lambda k: abs(self._tones[k]))
        return k / _KEY_SCALE, self._tones[k]

    # -- linear operations ----------------------------------------------------------

    def __add__(self, other: "Spectrum") -> "Spectrum":
        if not isinstance(other, Spectrum):
            return NotImplemented
        merged = dict(self._tones)
        for k, a in other._tones.items():
            merged[k] = merged.get(k, 0.0) + a
        return Spectrum(merged)._cleaned()

    def __sub__(self, other: "Spectrum") -> "Spectrum":
        if not isinstance(other, Spectrum):
            return NotImplemented
        return self + other.scaled(-1.0)

    def __mul__(self, factor) -> "Spectrum":
        if isinstance(factor, (int, float, complex)):
            return self.scaled(factor)
        return NotImplemented

    __rmul__ = __mul__

    def scaled(self, factor: complex) -> "Spectrum":
        """Multiply every phasor by a (possibly complex) factor."""
        return Spectrum({k: a * factor for k, a in self._tones.items()})._cleaned()

    def gained_db(self, gain_db: float) -> "Spectrum":
        """Amplitude gain in decibels (20*log10 convention)."""
        return self.scaled(10.0 ** (gain_db / 20.0))

    def phase_shifted(self, degrees: float) -> "Spectrum":
        """Constant phase shift of every tone (ideal broadband shifter)."""
        return self.scaled(cmath.exp(1j * math.radians(degrees)))

    # -- frequency translation ---------------------------------------------------------

    def mixed(self, lo_frequency: float, lo_phase_deg: float = 0.0,
              conversion_gain: float = 1.0) -> "Spectrum":
        """Multiply the signal by ``cos(2*pi*f_lo*t + phase)``.

        Each input tone (f, A) produces:

        * sum tone  f+f_lo with phasor ``A*exp(+j*phi)/2``
        * difference tone |f-f_lo|:
            - ``A*exp(-j*phi)/2``            when f > f_lo
            - ``conj(A)*exp(+j*phi)/2``      when f < f_lo (spectral fold)
            - a DC term (dropped)            when f = f_lo... kept at 0 Hz
              as ``Re`` would make it; we keep it as a 0 Hz phasor.

        The conjugation on fold-over is what differentiates signal and
        image paths in a quadrature downconverter.
        """
        lo = cmath.exp(1j * math.radians(lo_phase_deg))
        out: dict[int, complex] = {}

        def accumulate(frequency: float, phasor: complex) -> None:
            k = _key(frequency)
            out[k] = out.get(k, 0.0) + phasor

        for k, a in self._tones.items():
            f = k / _KEY_SCALE
            half = 0.5 * a * conversion_gain
            accumulate(f + lo_frequency, half * lo)
            if f > lo_frequency:
                accumulate(f - lo_frequency, half / lo)
            elif f < lo_frequency:
                accumulate(lo_frequency - f, half.conjugate() * lo)
            else:
                # f == f_lo: the difference term is a DC level
                accumulate(0.0, (half / lo).real)
        return Spectrum(out)._cleaned()

    # -- filtering ------------------------------------------------------------------

    def filtered(self, response) -> "Spectrum":
        """Apply ``response(frequency) -> complex`` to every tone."""
        return Spectrum(
            {k: a * response(k / _KEY_SCALE) for k, a in self._tones.items()}
        )._cleaned()

    # -- misc ------------------------------------------------------------------------

    def _cleaned(self) -> "Spectrum":
        self._tones = {
            k: a for k, a in self._tones.items() if abs(a) > AMPLITUDE_FLOOR
        }
        return self

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = [
            f"{f / 1e6:.6g}MHz@{abs(a):.3g}/{math.degrees(cmath.phase(a)):.1f}d"
            for f, a in self.tones()
        ]
        return f"Spectrum({', '.join(parts)})"


def tone(frequency: float, amplitude: float = 1.0,
         phase_deg: float = 0.0) -> Spectrum:
    """Module-level alias for :meth:`Spectrum.tone`."""
    return Spectrum.tone(frequency, amplitude, phase_deg)

"""Weakly nonlinear behavioral blocks: compression and intermodulation.

"Distortion, noise and image signal are main concerns" — this module
adds the distortion leg to the behavioral engine.  A
:class:`NonlinearAmplifier` applies a memoryless cubic

    y = g1*x + a3*x^3,        a3 = -4*g1 / (3*A_ip3^2)

to the multi-tone signal *exactly*: the cubic of a sum of sinusoids is
expanded over all ordered frequency triples, producing the harmonic and
intermodulation tones with their textbook amplitudes (IM3 of a two-tone
test at 2f1-f2 with amplitude (3/4)|a3|A^2, the 3:1 slope, the 1 dB
compression point at ~IIP3 - 9.6 dB, and so on).

The expansion is O((2N)^3) over N input tones, so it is limited to
modest tone counts — which is what two-tone and blocker tests use.
"""

from __future__ import annotations

import math
from typing import Iterable

from ..errors import AnalysisError
from ..units import from_db_voltage
from .blocks import Block
from .signal import Spectrum

#: Largest tone count the cubic expansion accepts.
MAX_TONES = 12


def cubic_response(signal: Spectrum, g1: float, a3: float) -> Spectrum:
    """Apply ``y = g1*x + a3*x^3`` to a multi-tone phasor signal.

    Writing x(t) = (1/2) sum_k B_k exp(j w_k t) over signed tones
    (B at +f and conj(B) at -f), the cubic contributes
    (a3/8) sum_{u,v,w} B_u B_v B_w exp(j(w_u+w_v+w_w) t); collecting
    positive-frequency terms gives the output phasors.
    """
    tones = list(signal.tones())
    if len(tones) > MAX_TONES:
        raise AnalysisError(
            f"cubic expansion limited to {MAX_TONES} tones, "
            f"got {len(tones)}"
        )
    # Linear part.
    output: dict[float, complex] = {}

    def accumulate(frequency: float, phasor: complex) -> None:
        frequency = round(frequency, 3)
        output[frequency] = output.get(frequency, 0.0) + phasor

    for frequency, phasor in tones:
        accumulate(frequency, g1 * phasor)

    if a3 != 0.0 and tones:
        signed: list[tuple[float, complex]] = []
        for frequency, phasor in tones:
            signed.append((frequency, phasor))
            signed.append((-frequency, phasor.conjugate()))
        scale = a3 / 8.0
        for fu, bu in signed:
            for fv, bv in signed:
                for fw, bw in signed:
                    frequency = fu + fv + fw
                    if frequency < -1e-9:
                        continue  # the conjugate term covers it
                    product = scale * bu * bv * bw
                    if abs(frequency) <= 1e-9:
                        # DC: the Omega=0 triple sum is already the
                        # (real) DC level of s^3
                        accumulate(0.0, product)
                    else:
                        # phasor convention Re{C exp(jwt)}: C is twice
                        # the positive-frequency exponential coefficient
                        accumulate(frequency, 2.0 * product)
    result = Spectrum.silence()
    for frequency, phasor in output.items():
        if abs(phasor) > 0.0:
            result = result + Spectrum({_key(frequency): phasor})
    return result


def _key(frequency: float) -> int:
    from .signal import _KEY_SCALE

    return int(round(max(frequency, 0.0) * _KEY_SCALE))


class NonlinearAmplifier(Block):
    """An amplifier with finite IIP3 (memoryless cubic nonlinearity).

    ``iip3_dbv`` is the input third-order intercept expressed as a tone
    *amplitude* in dBV (0 dBV = 1 V amplitude).  The implementation uses
    the standard relation ``a3 = -4 g1 / (3 A_ip3^2)``.
    """

    def __init__(self, name: str, gain_db: float = 0.0,
                 iip3_dbv: float = math.inf):
        super().__init__(name, ["in"], ["out"])
        self.gain_db = gain_db
        self.iip3_dbv = iip3_dbv
        self.g1 = from_db_voltage(gain_db)
        if math.isinf(iip3_dbv):
            self.a3 = 0.0
        else:
            a_ip3 = from_db_voltage(iip3_dbv)
            self.a3 = -4.0 * self.g1 / (3.0 * a_ip3 ** 2)

    def process(self, inputs):
        return {"out": cubic_response(self._input(inputs, "in"),
                                      self.g1, self.a3)}


def two_tone_test(
    amplifier: NonlinearAmplifier,
    f1: float,
    f2: float,
    amplitude: float,
) -> dict[str, float]:
    """Run the classic two-tone IM3 test; returns amplitudes of interest.

    Keys: ``fundamental`` (at f1), ``im3_low`` (2f1-f2), ``im3_high``
    (2f2-f1), and the derived ``im3_dbc`` (IM3 relative to carrier, dB).
    """
    if not 0 < f1 < f2:
        raise AnalysisError("need 0 < f1 < f2")
    if 2 * f1 - f2 <= 0:
        raise AnalysisError("2*f1-f2 must stay positive for this probe")
    stimulus = (Spectrum.tone(f1, amplitude)
                + Spectrum.tone(f2, amplitude))
    output = amplifier.process({"in": stimulus})["out"]
    fundamental = output.amplitude(f1)
    im3_low = output.amplitude(2 * f1 - f2)
    im3_high = output.amplitude(2 * f2 - f1)
    im3_dbc = (-math.inf if im3_low == 0.0
               else 20.0 * math.log10(im3_low / fundamental))
    return {
        "fundamental": fundamental,
        "im3_low": im3_low,
        "im3_high": im3_high,
        "im3_dbc": im3_dbc,
    }


def iip3_from_two_tone(
    amplifier: NonlinearAmplifier,
    f1: float,
    f2: float,
    amplitude: float,
) -> float:
    """Extract IIP3 (dBV) from one two-tone measurement.

    IIP3[dBV] = P_in[dBV] + (P_fund - P_im3)[dB] / 2 — the geometric
    construction on the 1:1 and 3:1 lines.
    """
    probe = two_tone_test(amplifier, f1, f2, amplitude)
    if probe["im3_low"] == 0.0:
        return math.inf
    input_dbv = 20.0 * math.log10(amplitude)
    delta_db = 20.0 * math.log10(probe["fundamental"] / probe["im3_low"])
    return input_dbv + delta_db / 2.0

"""Transition-frequency (fT) analysis of a Gummel-Poon device.

fT is the frequency where the common-emitter short-circuit current gain
|h21| extrapolates to unity.  Two routes are provided:

* :func:`ft_at_ic` — the hybrid-pi formula ``gm / (2*pi*(Cpi + Cmu))``
  evaluated at the bias point, the standard definition and what the
  paper's Fig. 9 plots;
* :func:`ft_from_h21` — |h21(f)| computed from the full small-signal
  two-port (including rbb and the Cmu feedforward zero) with a
  single-pole extrapolation ``fT = f * |h21(f)|``, used as an independent
  cross-check in the tests.

Both operate at a requested collector current, mirroring the Ic sweep of
Fig. 9.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from .gummel_poon import (
    BJTOperatingPoint,
    evaluate,
    solve_vbe_for_ic,
    thermal_voltage,
)
from .parameters import GummelPoonParameters


@dataclass(frozen=True)
class FTPoint:
    """One point of an fT-versus-Ic characteristic."""

    ic: float
    vbe: float
    ft: float
    gm: float
    cpi: float
    cmu: float


def bias_at_ic(
    params: GummelPoonParameters,
    ic: float,
    vce: float = 3.0,
    vbe0: float | None = None,
) -> BJTOperatingPoint:
    """Operating point of the device biased at collector current ``ic``.

    ``vbe0`` warm-starts the bias solve (see
    :func:`~repro.devices.gummel_poon.solve_vbe_for_ic`).
    """
    vbe = solve_vbe_for_ic(params, ic, vce, vbe0=vbe0)
    return evaluate(params, vbe, vbe - vce)


def ft_at_ic(
    params: GummelPoonParameters,
    ic: float,
    vce: float = 3.0,
    vbe0: float | None = None,
) -> FTPoint:
    """fT at one collector current, via the hybrid-pi formula."""
    op = bias_at_ic(params, ic, vce, vbe0=vbe0)
    return FTPoint(
        ic=ic, vbe=op.vbe, ft=op.transition_frequency(),
        gm=op.gm, cpi=op.cpi, cmu=op.cmu,
    )


def _ft_sweep_point(
    point_params: dict,
    warm=None,
    attempt: int = 0,
    *,
    device: GummelPoonParameters,
    vce: float,
) -> tuple[FTPoint, tuple[float, float]]:
    """One fT point under the sweep engine's warm-start protocol.

    ``warm`` is the previous point's ``(ic, vbe)``; the new bias solve
    starts from that Vbe shifted by the ideal-diode increment
    ``NF*vt*ln(ic/ic_prev)`` — on the usual monotone Ic grid that lands
    within a fraction of kT/q of the solution, so Newton converges in a
    step or two.  ``attempt`` is the sweep engine's retry hint: a retry
    discards the warm start (the most likely culprit when the bias solve
    diverges) and solves cold.  Module-level so it pickles for the
    process executor.
    """
    ic = float(point_params["ic"])
    vbe0 = None
    if warm is not None and attempt == 0:
        ic_prev, vbe_prev = warm
        if ic_prev > 0.0 and ic > 0.0:
            n_vt = device.NF * thermal_voltage(device.TNOM)
            vbe0 = vbe_prev + n_vt * math.log(ic / ic_prev)
    point = ft_at_ic(device, ic, vce, vbe0=vbe0)
    return point, (ic, point.vbe)


def ft_curve(
    params: GummelPoonParameters,
    ic_values,
    vce: float = 3.0,
    executor=None,
    jobs: int | None = None,
    cache=None,
    chunk_size: int = 32,
    on_error: str = "raise",
    retries: int = 2,
) -> list[FTPoint]:
    """fT over a sweep of collector currents (the paper's Fig. 9 sweep).

    Runs through :func:`repro.sweep.run_sweep` with warm-start
    continuation: within each chunk of ``chunk_size`` consecutive
    currents the bias solve is seeded from the previous point's Vbe
    (see :func:`_ft_sweep_point`).  Chunks start cold and are the unit
    of parallel dispatch, so serial and parallel sweeps are
    bit-identical.

    ``on_error="skip"``/``"retry"`` degrades gracefully: a bias point
    that cannot be solved leaves ``None`` in the returned list (retries
    re-solve it cold, without the warm-start seed) instead of killing
    the whole curve.
    """
    import functools

    from ..sweep import run_sweep

    result = run_sweep(
        functools.partial(_ft_sweep_point, device=params, vce=vce),
        [{"ic": float(ic)} for ic in ic_values],
        executor=executor,
        jobs=jobs,
        cache=cache,
        chunk_size=chunk_size,
        warm_start=True,
        on_error=on_error,
        retries=retries,
    )
    return list(result.values)


def peak_ft(
    params: GummelPoonParameters,
    ic_min: float = 1e-5,
    ic_max: float = 0.1,
    points: int = 121,
    vce: float = 3.0,
) -> FTPoint:
    """Locate the fT peak over a log-spaced Ic sweep.

    The collector current at the peak is the shape-dependent quantity the
    paper uses to match transistor geometry to operating current.
    """
    ics = np.geomspace(ic_min, ic_max, points)
    curve = ft_curve(params, ics, vce=vce)
    return max(curve, key=lambda point: point.ft)


def h21_magnitude(
    params: GummelPoonParameters, ic: float, frequency: float, vce: float = 3.0
) -> float:
    """|h21| at one frequency from the full small-signal two-port.

    Solves the two-node (internal base, internal collector... collector is
    AC-shorted, so only the internal base node remains) hybrid-pi network
    including rbb:

        ib -> rbb -> b' ; b' loaded by gpi + jw(cpi) and gmu + jw cmu to
        the shorted collector; ic = gm*vb'e - (gmu + jw cmu)*vb'c ...

    With the collector AC-shorted to the emitter, vb'c = vb'e = vb'.
    """
    op = bias_at_ic(params, ic, vce)
    w = 2.0 * math.pi * frequency
    y_in = (op.gpi + op.gmu) + 1j * w * (op.cpi + op.cmu)
    # Drive a unit AC current into the external base; rbb only adds series
    # resistance and does not change the *current* h21 at the internal node.
    v_b = 1.0 / y_in
    i_c = (op.gm - op.gmu - 1j * w * op.cmu) * v_b
    return abs(i_c)


def ft_from_h21(
    params: GummelPoonParameters,
    ic: float,
    vce: float = 3.0,
    measure_fraction: float = 0.1,
) -> float:
    """fT by single-pole extrapolation of |h21| (measurement emulation).

    Measures |h21| at ``measure_fraction`` of the hybrid-pi fT estimate —
    well into the -20 dB/dec region but below fT, as a network analyzer
    measurement would — and extrapolates ``fT = f * |h21(f)|``.
    """
    estimate = ft_at_ic(params, ic, vce).ft
    if estimate <= 0.0:
        return 0.0
    f_measure = max(estimate * measure_fraction, 1.0)
    return f_measure * h21_magnitude(params, ic, f_measure, vce)

"""Gummel-Poon model equations: DC currents, charges and derivatives.

The evaluation is written for an *npn* orientation; pnp devices are
handled by the circuit element flipping terminal voltage and current
signs.  All junction voltages here are internal (after RB/RE/RC drops).

The implementation follows SPICE 2G6 / SPICE3 ``bjtload``:

* transport current ``It = (Ibe1 - Ibc1)/qb`` with base-charge ``qb``
  combining Early (q1) and high-injection (q2) effects,
* leakage diodes ``Ibe2`` (ISE, NE) and ``Ibc2`` (ISC, NC),
* bias-modulated base resistance ``rbb = RBM + (RB - RBM)/qb``,
* depletion charges with the FC linearization above ``FC*VJ``,
* bias-dependent forward transit time (XTF, VTF, ITF) giving the fT
  roll-off at high current (quasi-saturation/Kirk-effect fit).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .parameters import GummelPoonParameters

#: Boltzmann constant over electron charge at 1 K (V/K).
K_OVER_Q = 1.380649e-23 / 1.602176634e-19

#: Largest exponent argument before the exponential is linearized.
EXP_LIMIT = 80.0


def thermal_voltage(temp_kelvin: float = 300.15) -> float:
    """kT/q in volts."""
    return K_OVER_Q * temp_kelvin


def limited_exp(arg: float) -> tuple[float, float]:
    """exp(arg) and its derivative, linearized above EXP_LIMIT.

    Prevents overflow during Newton iterations far from the solution;
    identical in spirit to SPICE's junction-exponential guard.
    """
    if arg > EXP_LIMIT:
        anchor = math.exp(EXP_LIMIT)
        return anchor * (1.0 + (arg - EXP_LIMIT)), anchor
    value = math.exp(arg)
    return value, value


def diode_current(i_sat: float, v: float, n_vt: float) -> tuple[float, float]:
    """Ideal-diode current ``i_sat*(exp(v/n_vt)-1)`` and its conductance."""
    if i_sat == 0.0:
        return 0.0, 0.0
    exp_value, exp_deriv = limited_exp(v / n_vt)
    return i_sat * (exp_value - 1.0), i_sat * exp_deriv / n_vt


def depletion_charge(
    v: float, cj: float, vj: float, m: float, fc: float
) -> tuple[float, float]:
    """Depletion charge Q(v) and capacitance C(v)=dQ/dv.

    Uses the SPICE piecewise form: the physical ``(1-v/vj)^-m`` law below
    ``fc*vj`` and its linear extrapolation above, which keeps C finite as
    the junction forward-biases.
    """
    if cj == 0.0:
        return 0.0, 0.0
    threshold = fc * vj
    if v < threshold:
        arg = 1.0 - v / vj
        charge = cj * vj / (1.0 - m) * (1.0 - arg ** (1.0 - m))
        cap = cj * arg ** (-m)
        return charge, cap
    f1 = vj / (1.0 - m) * (1.0 - (1.0 - fc) ** (1.0 - m))
    f2 = (1.0 - fc) ** (1.0 + m)
    f3 = 1.0 - fc * (1.0 + m)
    dv = v - threshold
    charge = cj * (f1 + (f3 * dv + m / (2.0 * vj) * (v * v - threshold * threshold)) / f2)
    cap = cj * (f3 + m * v / vj) / f2
    return charge, cap


def pnjlim(v_new: float, v_old: float, vt: float, v_crit: float) -> float:
    """SPICE junction-voltage limiting.

    Caps the per-iteration change of a forward-biased junction voltage to
    keep the exponential in a numerically sane region; returns the limited
    voltage.
    """
    if v_new > v_crit and abs(v_new - v_old) > 2.0 * vt:
        if v_old > 0.0:
            arg = 1.0 + (v_new - v_old) / vt
            if arg > 0.0:
                v_new = v_old + vt * math.log(arg)
            else:
                v_new = v_crit
        else:
            v_new = vt * math.log(v_new / vt)
    return v_new


def critical_voltage(i_sat: float, vt: float) -> float:
    """Voltage where the junction conductance reaches 1/(sqrt(2)*vt)."""
    if i_sat <= 0.0:
        return math.inf
    return vt * math.log(vt / (math.sqrt(2.0) * i_sat))


@dataclass
class BJTOperatingPoint:
    """Currents, charges and small-signal quantities at one bias point.

    All values are npn-oriented: ``ic`` flows into the collector, ``ib``
    into the base.  Derivatives are with respect to the *internal*
    junction voltages vbe, vbc.
    """

    vbe: float
    vbc: float
    ic: float
    ib: float
    dic_dvbe: float
    dic_dvbc: float
    dib_dvbe: float
    dib_dvbc: float
    qbe: float  #: total B-E charge (diffusion + depletion)
    qbc: float  #: internal B-C charge (diffusion + XCJC depletion)
    qbx: float  #: external B-C depletion charge ((1-XCJC) fraction)
    dqbe_dvbe: float
    dqbe_dvbc: float
    dqbc_dvbc: float
    dqbx_dvbc: float
    qb: float  #: normalized base charge
    rbb: float  #: bias-modulated base resistance

    # -- hybrid-pi view --------------------------------------------------------

    @property
    def gm(self) -> float:
        """Transconductance dIc/dVbe at fixed Vbc."""
        return self.dic_dvbe

    @property
    def gpi(self) -> float:
        """Input conductance dIb/dVbe."""
        return self.dib_dvbe

    @property
    def gmu(self) -> float:
        """Feedback conductance dIb/dVbc."""
        return self.dib_dvbc

    @property
    def go(self) -> float:
        """Output conductance dIc/dVce = -dIc/dVbc at fixed Vbe."""
        return -self.dic_dvbc

    @property
    def cpi(self) -> float:
        """B-E capacitance (diffusion + depletion)."""
        return self.dqbe_dvbe

    @property
    def cmu(self) -> float:
        """Total B-C capacitance (internal + external fractions)."""
        return self.dqbc_dvbc + self.dqbx_dvbc

    @property
    def beta_dc(self) -> float:
        return self.ic / self.ib if self.ib != 0 else math.inf

    def transition_frequency(self) -> float:
        """Hybrid-pi fT = gm / (2*pi*(Cpi + Cmu)).

        This is the frequency where |h21| extrapolates to unity assuming a
        single dominant pole — the quantity plotted in the paper's Fig. 9.
        """
        c_total = self.cpi + self.cmu
        if c_total <= 0.0 or self.gm <= 0.0:
            return 0.0
        return self.gm / (2.0 * math.pi * c_total)


def _dc_core(p, vbe: float, vbc: float, vt: float, gmin: float):
    """DC currents, derivatives and base charge (the charge-free kernel).

    Returns a plain tuple so the scalar bias solver can iterate on it
    without building a :class:`BJTOperatingPoint` per Newton step.
    """
    ibe1, gbe1 = diode_current(p.IS, vbe, p.NF * vt)
    ibe2, gbe2 = diode_current(p.ISE, vbe, p.NE * vt)
    ibc1, gbc1 = diode_current(p.IS, vbc, p.NR * vt)
    ibc2, gbc2 = diode_current(p.ISC, vbc, p.NC * vt)

    # gmin across junctions (kept inside the "diode" currents so the
    # reported ib/ic are consistent with the stamped Jacobian).
    ibe1 += gmin * vbe
    gbe1 += gmin
    ibc1 += gmin * vbc
    gbc1 += gmin

    # Base charge qb: Early effect (q1) and high injection (q2).
    inv_early = 1.0 - vbc / p.VAF - vbe / p.VAR
    # Guard against the (unphysical) pole of the 1/(...) Early form.
    inv_early = max(inv_early, 1e-4)
    q1 = 1.0 / inv_early
    q2 = ibe1 / p.IKF + ibc1 / p.IKR
    sqarg = math.sqrt(1.0 + 4.0 * max(q2, -0.2499))
    qb = q1 * (1.0 + sqarg) / 2.0

    dq1_dvbe = q1 * q1 / p.VAR if math.isfinite(p.VAR) else 0.0
    dq1_dvbc = q1 * q1 / p.VAF if math.isfinite(p.VAF) else 0.0
    dq2_dvbe = gbe1 / p.IKF if math.isfinite(p.IKF) else 0.0
    dq2_dvbc = gbc1 / p.IKR if math.isfinite(p.IKR) else 0.0
    dqb_dvbe = dq1_dvbe * (1.0 + sqarg) / 2.0 + q1 * dq2_dvbe / sqarg
    dqb_dvbc = dq1_dvbc * (1.0 + sqarg) / 2.0 + q1 * dq2_dvbc / sqarg

    # Transport current and terminal currents.
    it = (ibe1 - ibc1) / qb
    dit_dvbe = (gbe1 - it * dqb_dvbe) / qb
    dit_dvbc = (-gbc1 - it * dqb_dvbc) / qb

    ic = it - ibc1 / p.BR - ibc2
    ib = ibe1 / p.BF + ibe2 + ibc1 / p.BR + ibc2
    dic_dvbe = dit_dvbe
    dic_dvbc = dit_dvbc - gbc1 / p.BR - gbc2
    dib_dvbe = gbe1 / p.BF + gbe2
    dib_dvbc = gbc1 / p.BR + gbc2

    # Bias-modulated base resistance (simple qb form; the IRB formulation
    # reduces to this when IRB is left at infinity).
    rbm = p.rbm_effective
    rbb = rbm + (p.RB - rbm) / qb

    return (
        ic, ib, dic_dvbe, dic_dvbc, dib_dvbe, dib_dvbc,
        ibe1, gbe1, ibc1, gbc1, qb, dqb_dvbe, dqb_dvbc, rbb,
    )


def evaluate(
    params: GummelPoonParameters,
    vbe: float,
    vbc: float,
    temp: float | None = None,
    gmin: float = 0.0,
    charges: bool = True,
) -> BJTOperatingPoint:
    """Evaluate the Gummel-Poon equations at internal (vbe, vbc).

    ``gmin`` adds a small linear conductance across each junction (as the
    simulator does during Newton iterations).  ``charges=False`` skips the
    depletion/diffusion charge terms (they come back as zeros) — the DC
    bias solvers only need currents and their derivatives, and the charge
    branch is more than half the cost of a full evaluation.
    """
    p = params
    vt = thermal_voltage(p.TNOM if temp is None else temp)

    (
        ic, ib, dic_dvbe, dic_dvbc, dib_dvbe, dib_dvbc,
        ibe1, gbe1, ibc1, gbc1, qb, dqb_dvbe, dqb_dvbc, rbb,
    ) = _dc_core(p, vbe, vbc, vt, gmin)

    if not charges:
        return BJTOperatingPoint(
            vbe=vbe,
            vbc=vbc,
            ic=ic,
            ib=ib,
            dic_dvbe=dic_dvbe,
            dic_dvbc=dic_dvbc,
            dib_dvbe=dib_dvbe,
            dib_dvbc=dib_dvbc,
            qbe=0.0,
            qbc=0.0,
            qbx=0.0,
            dqbe_dvbe=0.0,
            dqbe_dvbc=0.0,
            dqbc_dvbc=0.0,
            dqbx_dvbc=0.0,
            qb=qb,
            rbb=rbb,
        )

    # Bias-dependent forward transit time (fT roll-off).
    tf_eff = p.TF
    dtf_dvbe = 0.0
    dtf_dvbc = 0.0
    if p.TF > 0.0 and p.XTF > 0.0:
        ibe_pos = max(ibe1, 0.0)
        if p.ITF > 0.0:
            w = ibe_pos / (ibe_pos + p.ITF)
            dw_dvbe = (
                gbe1 * p.ITF / (ibe_pos + p.ITF) ** 2 if ibe1 > 0.0 else 0.0
            )
        else:
            w, dw_dvbe = 1.0, 0.0
        if math.isfinite(p.VTF):
            exp_vbc = math.exp(min(vbc / (1.44 * p.VTF), EXP_LIMIT))
            dexp_dvbc = exp_vbc / (1.44 * p.VTF)
        else:
            exp_vbc, dexp_dvbc = 1.0, 0.0
        tf_eff = p.TF * (1.0 + p.XTF * w * w * exp_vbc)
        dtf_dvbe = p.TF * p.XTF * 2.0 * w * dw_dvbe * exp_vbc
        dtf_dvbc = p.TF * p.XTF * w * w * dexp_dvbc

    # Charges.
    qde = tf_eff * ibe1 / qb
    dqde_dvbe = (dtf_dvbe * ibe1 + tf_eff * gbe1 - qde * dqb_dvbe) / qb
    dqde_dvbc = (dtf_dvbc * ibe1 - qde * dqb_dvbc) / qb

    qje, cje = depletion_charge(vbe, p.CJE, p.VJE, p.MJE, p.FC)
    qjc, cjc = depletion_charge(vbc, p.CJC * p.XCJC, p.VJC, p.MJC, p.FC)
    qjx, cjx = depletion_charge(vbc, p.CJC * (1.0 - p.XCJC), p.VJC, p.MJC, p.FC)
    qdc = p.TR * ibc1

    qbe = qde + qje
    qbc = qdc + qjc
    qbx = qjx

    return BJTOperatingPoint(
        vbe=vbe,
        vbc=vbc,
        ic=ic,
        ib=ib,
        dic_dvbe=dic_dvbe,
        dic_dvbc=dic_dvbc,
        dib_dvbe=dib_dvbe,
        dib_dvbc=dib_dvbc,
        qbe=qbe,
        qbc=qbc,
        qbx=qbx,
        dqbe_dvbe=dqde_dvbe + cje,
        dqbe_dvbc=dqde_dvbc,
        dqbc_dvbc=p.TR * gbc1 + cjc,
        dqbx_dvbc=cjx,
        qb=qb,
        rbb=rbb,
    )


def solve_vbe_for_ic(
    params: GummelPoonParameters,
    ic_target: float,
    vce: float,
    temp: float | None = None,
    tol: float = 1e-9,
    max_iter: int = 200,
    vbe0: float | None = None,
) -> float:
    """Find the internal Vbe giving collector current ``ic_target`` at Vce.

    Newton on the scalar function Ic(vbe, vbe - vce) - ic_target, with
    bisection fallback.  Vce is the *internal* collector-emitter voltage.
    Used by the fT analysis to bias a device at a requested Ic, mirroring
    how the paper's Fig. 9 sweeps collector current.

    ``vbe0`` warm-starts the iteration (e.g. with the solution at a nearby
    Ic during a sweep); when omitted the ideal diode law provides the
    initial guess.
    """
    if ic_target <= 0:
        raise ValueError(f"ic_target must be positive, got {ic_target}")
    vt = thermal_voltage(params.TNOM if temp is None else temp)
    if vbe0 is not None and 0.0 < vbe0 < 2.0:
        vbe = vbe0
    else:
        # Initial guess from the ideal diode law.
        vbe = params.NF * vt * math.log(ic_target / params.IS + 1.0)
    lo, hi = 0.0, 2.0
    for _ in range(max_iter):
        core = _dc_core(params, vbe, vbe - vce, vt, 0.0)
        ic, dic_dvbe, dic_dvbc = core[0], core[2], core[3]
        error = ic - ic_target
        if abs(error) <= tol * ic_target:
            return vbe
        if error > 0:
            hi = min(hi, vbe)
        else:
            lo = max(lo, vbe)
        slope = dic_dvbe + dic_dvbc
        if slope > 0:
            step = -error / slope
            vbe_new = vbe + step
            # Newton converges quadratically: once the relative error is
            # down to ~tol^(2/3), the post-step error is far below tol, so
            # skip the confirming evaluation and accept the stepped value.
            if abs(error) <= 1e-6 * ic_target and abs(step) < vt:
                return vbe_new
        else:
            vbe_new = (lo + hi) / 2.0
        if not lo < vbe_new < hi:
            vbe_new = (lo + hi) / 2.0
        vbe = vbe_new
    raise ValueError(
        f"bias solve did not converge for Ic={ic_target} (last vbe={vbe})"
    )

"""Gummel-Poon model parameter set with SPICE 2G6 defaults.

The parameter names follow the SPICE ``.MODEL ... NPN(...)`` card, so a
parameter set can be read from and written to deck syntax losslessly.
``scaled_by_area`` implements SPICE's emitter-area-factor scaling — the
crude baseline the paper's geometry-aware generator replaces (RB, RE, RC,
CJE, CJC and CJS are scaled by area only, ignoring perimeter and layout).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, fields, replace

from ..errors import ModelError

INFINITY = math.inf


@dataclass(frozen=True)
class GummelPoonParameters:
    """SPICE Gummel-Poon BJT model parameters (NPN or PNP).

    All voltages in volts, currents in amperes, resistances in ohms,
    capacitances in farads, times in seconds.
    """

    name: str = "NPN"
    polarity: str = "npn"

    # Forward/reverse DC
    IS: float = 1e-16  #: transport saturation current
    BF: float = 100.0  #: ideal maximum forward beta
    NF: float = 1.0  #: forward emission coefficient
    VAF: float = INFINITY  #: forward Early voltage
    IKF: float = INFINITY  #: forward beta high-current roll-off knee
    ISE: float = 0.0  #: B-E leakage saturation current
    NE: float = 1.5  #: B-E leakage emission coefficient
    BR: float = 1.0  #: ideal maximum reverse beta
    NR: float = 1.0  #: reverse emission coefficient
    VAR: float = INFINITY  #: reverse Early voltage
    IKR: float = INFINITY  #: reverse beta high-current roll-off knee
    ISC: float = 0.0  #: B-C leakage saturation current
    NC: float = 2.0  #: B-C leakage emission coefficient

    # Ohmic parasitics
    RB: float = 0.0  #: zero-bias base resistance
    IRB: float = INFINITY  #: current where RB falls halfway to RBM
    RBM: float | None = None  #: minimum base resistance (defaults to RB)
    RE: float = 0.0  #: emitter resistance
    RC: float = 0.0  #: collector resistance

    # Junction capacitances
    CJE: float = 0.0  #: B-E zero-bias depletion capacitance
    VJE: float = 0.75  #: B-E built-in potential
    MJE: float = 0.33  #: B-E grading coefficient
    CJC: float = 0.0  #: B-C zero-bias depletion capacitance
    VJC: float = 0.75  #: B-C built-in potential
    MJC: float = 0.33  #: B-C grading coefficient
    XCJC: float = 1.0  #: fraction of CJC at the internal base node
    CJS: float = 0.0  #: collector-substrate zero-bias capacitance
    VJS: float = 0.75  #: substrate built-in potential
    MJS: float = 0.0  #: substrate grading coefficient
    FC: float = 0.5  #: forward-bias depletion-capacitance coefficient

    # Transit times
    TF: float = 0.0  #: ideal forward transit time
    XTF: float = 0.0  #: TF bias-dependence coefficient
    VTF: float = INFINITY  #: TF dependence on VBC
    ITF: float = 0.0  #: TF dependence on IC
    PTF: float = 0.0  #: excess phase at 1/(2*pi*TF) Hz (degrees)
    TR: float = 0.0  #: ideal reverse transit time

    # Noise
    KF: float = 0.0  #: flicker-noise coefficient
    AF: float = 1.0  #: flicker-noise exponent

    # Temperature (kept for deck round-trip; evaluation is at TNOM)
    EG: float = 1.11  #: bandgap energy (eV)
    XTI: float = 3.0  #: IS temperature exponent
    XTB: float = 0.0  #: beta temperature exponent
    TNOM: float = 300.15  #: nominal temperature (K)

    def __post_init__(self):
        if self.polarity not in ("npn", "pnp"):
            raise ModelError(f"polarity must be 'npn' or 'pnp', got {self.polarity!r}")
        for attr in ("IS", "BF", "NF", "NR", "BR", "NE", "NC"):
            if getattr(self, attr) <= 0:
                raise ModelError(f"{self.name}: {attr} must be positive")
        for attr in ("ISE", "ISC", "RB", "RE", "RC", "CJE", "CJC", "CJS",
                     "TF", "TR", "XTF", "ITF", "KF"):
            if getattr(self, attr) < 0:
                raise ModelError(f"{self.name}: {attr} must be non-negative")
        for attr in ("VAF", "VAR", "IKF", "IKR", "VTF", "IRB"):
            if getattr(self, attr) <= 0:
                raise ModelError(f"{self.name}: {attr} must be positive")
        if not 0.0 < self.FC < 1.0:
            raise ModelError(f"{self.name}: FC must be in (0, 1)")
        if not 0.0 <= self.XCJC <= 1.0:
            raise ModelError(f"{self.name}: XCJC must be in [0, 1]")
        for attr in ("MJE", "MJC", "MJS"):
            if not 0.0 <= getattr(self, attr) < 1.0:
                raise ModelError(f"{self.name}: {attr} must be in [0, 1)")

    @property
    def rbm_effective(self) -> float:
        """RBM with its SPICE default (RB) applied."""
        return self.RB if self.RBM is None else self.RBM

    @property
    def sign(self) -> float:
        """+1 for npn, -1 for pnp (applied to terminal voltages/currents)."""
        return 1.0 if self.polarity == "npn" else -1.0

    def replace(self, **changes) -> "GummelPoonParameters":
        """Return a copy with the given parameters changed."""
        return replace(self, **changes)

    def scaled_by_area(self, area: float) -> "GummelPoonParameters":
        """SPICE emitter-area-factor scaling (the paper's baseline).

        Currents and capacitances multiply by ``area``; resistances divide
        by it.  This ignores perimeter effects and layout topology, which
        is exactly the inaccuracy Section 4 of the paper addresses.
        """
        if area <= 0:
            raise ModelError(f"area factor must be positive, got {area}")
        return self.replace(
            IS=self.IS * area,
            ISE=self.ISE * area,
            ISC=self.ISC * area,
            IKF=self.IKF * area,
            IKR=self.IKR * area,
            ITF=self.ITF * area,
            IRB=self.IRB * area,
            CJE=self.CJE * area,
            CJC=self.CJC * area,
            CJS=self.CJS * area,
            RB=self.RB / area,
            RBM=None if self.RBM is None else self.RBM / area,
            RE=self.RE / area,
            RC=self.RC / area,
        )

    # -- deck round-trip -------------------------------------------------------

    _SKIP_IN_CARD = ("name", "polarity")

    def to_model_card(self) -> str:
        """Render as a SPICE ``.MODEL`` card (one logical line)."""
        parts = []
        defaults = GummelPoonParameters()
        for f in fields(self):
            if f.name in self._SKIP_IN_CARD:
                continue
            value = getattr(self, f.name)
            if f.name == "RBM":
                if value is None:
                    continue
            elif value == getattr(defaults, f.name):
                continue
            if value == INFINITY:
                continue
            parts.append(f"{f.name}={value:.6g}")
        kind = self.polarity.upper()
        return f".MODEL {self.name} {kind}({' '.join(parts)})"

    @classmethod
    def from_card_params(
        cls, name: str, polarity: str, params: dict[str, float]
    ) -> "GummelPoonParameters":
        """Build from a parsed ``.MODEL`` parameter dictionary."""
        known = {f.name.upper(): f.name for f in fields(cls)}
        kwargs: dict[str, float] = {}
        for key, value in params.items():
            attr = known.get(key.upper())
            if attr is None or attr in cls._SKIP_IN_CARD:
                raise ModelError(f"unknown BJT model parameter {key!r}")
            kwargs[attr] = value
        return cls(name=name, polarity=polarity.lower(), **kwargs)

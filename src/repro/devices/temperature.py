"""Temperature adjustment of Gummel-Poon parameters.

The paper's operating currents are "decided considering the radiation
from the IC packages" — i.e. junction temperature is a first-class design
input.  This module implements the SPICE temperature update: given a
model extracted at TNOM, produce the equivalent parameter set at another
junction temperature so every analysis (DC, AC, fT, transient) can run
hot or cold.

SPICE formulas (ratio t = T/TNOM, vt = kT/q):

    IS(T)  = IS * t^XTI * exp( EG*(t-1) / (t*vt(TNOM)) )
    BF(T)  = BF * t^XTB          BR(T) = BR * t^XTB
    ISE(T) = ISE / t^XTB * [IS(T)/IS]^(1/NE)   (and ISC with NC)
    VJ(T)  = VJ*t - 3*vt(T)*ln(t) - EG(TNOM)*t + EG(T)
    CJ(T)  = CJ * (1 + MJ*(4e-4*(T-TNOM) - (VJ(T)-VJ)/VJ))

with the Varshni bandgap EG(T) = 1.16 - 7.02e-4*T^2/(T+1108).
"""

from __future__ import annotations

import math

from ..errors import ModelError
from .gummel_poon import thermal_voltage
from .parameters import GummelPoonParameters

CELSIUS_OFFSET = 273.15


def celsius(temp_c: float) -> float:
    """Convert a Celsius temperature to Kelvin."""
    return temp_c + CELSIUS_OFFSET


def bandgap_ev(temp: float) -> float:
    """Silicon bandgap vs temperature (Varshni fit used by SPICE)."""
    return 1.16 - 7.02e-4 * temp * temp / (temp + 1108.0)


def _junction_potential(vj: float, temp: float, tnom: float) -> float:
    ratio = temp / tnom
    vt = thermal_voltage(temp)
    return (vj * ratio
            - 3.0 * vt * math.log(ratio)
            - bandgap_ev(tnom) * ratio
            + bandgap_ev(temp))


def _junction_capacitance(cj: float, mj: float, vj_old: float,
                          vj_new: float, temp: float, tnom: float) -> float:
    if cj == 0.0:
        return 0.0
    return cj * (1.0 + mj * (4e-4 * (temp - tnom)
                             - (vj_new - vj_old) / vj_old))


def at_temperature(params: GummelPoonParameters,
                   temp: float) -> GummelPoonParameters:
    """Return the parameter set adjusted from TNOM to ``temp`` (K).

    The result carries ``TNOM = temp`` so the (temperature-naive)
    evaluation routines produce the hot/cold behaviour directly.
    """
    if temp <= 0:
        raise ModelError(f"temperature must be positive (K), got {temp}")
    tnom = params.TNOM
    if temp == tnom:
        return params
    ratio = temp / tnom
    vt_nom = thermal_voltage(tnom)

    is_factor = (ratio ** params.XTI
                 * math.exp(params.EG * (ratio - 1.0) / (ratio * vt_nom)))
    is_new = params.IS * is_factor
    beta_factor = ratio ** params.XTB

    def leakage(i_leak: float, n: float) -> float:
        if i_leak == 0.0:
            return 0.0
        return i_leak / beta_factor * is_factor ** (1.0 / n)

    vje_new = _junction_potential(params.VJE, temp, tnom)
    vjc_new = _junction_potential(params.VJC, temp, tnom)
    vjs_new = _junction_potential(params.VJS, temp, tnom)
    for name, value in (("VJE", vje_new), ("VJC", vjc_new),
                        ("VJS", vjs_new)):
        if value <= 0:
            raise ModelError(
                f"{name} collapses to {value:.3f} V at {temp:.0f} K — "
                "outside the model's validity range"
            )

    return params.replace(
        IS=is_new,
        BF=params.BF * beta_factor,
        BR=params.BR * beta_factor,
        ISE=leakage(params.ISE, params.NE),
        ISC=leakage(params.ISC, params.NC),
        VJE=vje_new,
        VJC=vjc_new,
        VJS=vjs_new,
        CJE=_junction_capacitance(params.CJE, params.MJE, params.VJE,
                                  vje_new, temp, tnom),
        CJC=_junction_capacitance(params.CJC, params.MJC, params.VJC,
                                  vjc_new, temp, tnom),
        CJS=_junction_capacitance(params.CJS, params.MJS, params.VJS,
                                  vjs_new, temp, tnom),
        TNOM=temp,
    )


def vbe_temperature_coefficient(params: GummelPoonParameters,
                                ic: float, vce: float = 3.0,
                                delta: float = 5.0) -> float:
    """dVbe/dT (V/K) at constant collector current — the classic
    ~-2 mV/K of a silicon junction, computed from the model."""
    from .gummel_poon import solve_vbe_for_ic

    tnom = params.TNOM
    hot = at_temperature(params, tnom + delta)
    cold = at_temperature(params, tnom - delta)
    vbe_hot = solve_vbe_for_ic(hot, ic, vce, temp=tnom + delta)
    vbe_cold = solve_vbe_for_ic(cold, ic, vce, temp=tnom - delta)
    return (vbe_hot - vbe_cold) / (2.0 * delta)

"""Bipolar device models: Gummel-Poon equations and fT analysis."""

from .parameters import GummelPoonParameters
from .gummel_poon import (
    BJTOperatingPoint,
    critical_voltage,
    depletion_charge,
    diode_current,
    evaluate,
    limited_exp,
    pnjlim,
    solve_vbe_for_ic,
    thermal_voltage,
)
from .ft import FTPoint, bias_at_ic, ft_at_ic, ft_curve, ft_from_h21, peak_ft

__all__ = [
    "GummelPoonParameters",
    "BJTOperatingPoint",
    "critical_voltage",
    "depletion_charge",
    "diode_current",
    "evaluate",
    "limited_exp",
    "pnjlim",
    "solve_vbe_for_ic",
    "thermal_voltage",
    "FTPoint",
    "bias_at_ic",
    "ft_at_ic",
    "ft_curve",
    "ft_from_h21",
    "peak_ft",
]

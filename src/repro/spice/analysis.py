"""Analysis orchestration: .OP, .DC sweeps, .AC, .TF, .TRAN behind one
facade."""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..errors import AnalysisError, NetlistError
from .ac import ACResult, frequency_grid, solve_ac
from .dcop import Tolerances, solve_dc
from .elements.sources import CurrentSource, VoltageSource, DC
from .engine import EngineStats, resolve_engine
from .netlist import Circuit
from .transient import TransientResult, solve_transient


@dataclass
class OperatingPointResult:
    """Converged DC solution with name-based accessors."""

    circuit: Circuit
    x: np.ndarray
    #: Engine work performed by the solve.
    stats: EngineStats | None = None

    def voltage(self, node: str) -> float:
        index = self.circuit.node_index(node)
        return 0.0 if index < 0 else float(self.x[index])

    def branch_current(self, element_name: str) -> float:
        return float(self.x[self.circuit.branch_index(element_name)])

    def device_operating_point(self, element_name: str):
        """Internal operating point of a BJT (or compatible) device."""
        element = self.circuit.element(element_name)
        getter = getattr(element, "operating_point", None)
        if getter is None:
            raise NetlistError(
                f"element {element_name!r} does not expose an operating point"
            )
        return getter(self.x)

    def node_voltages(self) -> dict[str, float]:
        return {node: self.voltage(node) for node in self.circuit.nodes()}

    def bjt_table(self) -> str:
        """SPICE-style operating-point table for every BJT.

        Columns: IC, IB, VBE, VBC, beta, gm, Cpi, Cmu, fT — the numbers
        a designer reads after every .OP.
        """
        from .elements.bjt import BJT

        rows = [
            "device       ic [A]      ib [A]     vbe [V]  vbc [V]   "
            "beta      gm [S]   cpi [fF]  cmu [fF]   fT [GHz]"
        ]
        for element in self.circuit:
            if not isinstance(element, BJT):
                continue
            op = element.operating_point(self.x)
            rows.append(
                f"{element.name:10s} {op.ic:11.4g} {op.ib:11.4g} "
                f"{op.vbe:8.4f} {op.vbc:8.4f} {op.beta_dc:7.1f} "
                f"{op.gm:11.4g} {op.cpi * 1e15:9.2f} "
                f"{op.cmu * 1e15:9.2f} "
                f"{op.transition_frequency() / 1e9:9.3f}"
            )
        if len(rows) == 1:
            return "no BJT devices in the circuit"
        return "\n".join(rows)

    def summary(self) -> str:
        """Node voltages, source branch currents and the BJT table."""
        lines = ["operating point:"]
        for node, value in sorted(self.node_voltages().items()):
            lines.append(f"  V({node}) = {value:.6g}")
        for element in self.circuit:
            if element.branch_index and isinstance(
                element, (VoltageSource,)
            ):
                current = self.x[element.branch_index[0]]
                lines.append(f"  I({element.name}) = {current:.6g}")
        table = self.bjt_table()
        if "no BJT" not in table:
            lines.append("")
            lines.append(table)
        return "\n".join(lines)


@dataclass
class DCSweepResult:
    """Result of sweeping one source's DC value."""

    circuit: Circuit
    sweep_values: np.ndarray
    states: np.ndarray
    #: Engine work performed by the sweep.
    stats: EngineStats | None = None

    def voltage(self, node: str) -> np.ndarray:
        index = self.circuit.node_index(node)
        if index < 0:
            return np.zeros(len(self.sweep_values))
        return self.states[:, index]

    def branch_current(self, element_name: str) -> np.ndarray:
        return self.states[:, self.circuit.branch_index(element_name)]


@dataclass(frozen=True)
class TransferFunction:
    """SPICE ``.TF``-style small-signal transfer quantities."""

    gain: float  #: d(output)/d(input) at the operating point
    input_resistance: float  #: ohms seen by the input source
    output_resistance: float  #: ohms seen at the output node
    #: Engine work performed by the analysis.
    stats: EngineStats | None = None


def transfer_function(
    circuit: Circuit,
    input_source: str,
    output_node: str,
    gmin: float = 1e-12,
    engine=None,
) -> TransferFunction:
    """Small-signal DC transfer function (SPICE ``.TF``).

    Linearizes at the operating point and computes the gain from
    ``input_source`` (V or I) to ``output_node``, the resistance the
    source sees, and the output resistance at the node.
    """
    element = circuit.element(input_source)
    if not isinstance(element, (VoltageSource, CurrentSource)):
        raise AnalysisError(
            f"{input_source!r} is not an independent source"
        )
    out_index = circuit.node_index(output_node)
    if out_index < 0:
        raise AnalysisError("output node cannot be ground")

    engine = resolve_engine(circuit, engine)
    snapshot = engine.stats.copy()
    with engine.timed():
        limits: dict = {}
        x_op = solve_dc(circuit, gmin=gmin, limits=limits, engine=engine)
        ctx = engine.evaluate(x_op, gmin=gmin, limits=limits)
        g_mat = ctx.g_mat.copy()
        size = circuit.num_unknowns

        # Unit input excitation.  Both solves share one factorization of
        # the small-signal conductance matrix.
        rhs = np.zeros(size)
        if isinstance(element, VoltageSource):
            rhs[element.branch_index[0]] = 1.0
        else:
            p, n = element.node_index
            if p >= 0:
                rhs[p] -= 1.0
            if n >= 0:
                rhs[n] += 1.0
        token = ("tf", id(g_mat))
        try:
            response = engine.solver.solve(g_mat, rhs, token=token)
        except np.linalg.LinAlgError as exc:
            raise AnalysisError(
                f"singular small-signal system: {exc}"
            ) from exc
        gain = float(response[out_index])

        if isinstance(element, VoltageSource):
            input_current = -float(response[element.branch_index[0]])
            input_resistance = (math.inf if input_current == 0.0
                                else 1.0 / input_current)
        else:
            p, n = element.node_index
            v_p = float(response[p]) if p >= 0 else 0.0
            v_n = float(response[n]) if n >= 0 else 0.0
            input_resistance = v_n - v_p

        # Output resistance: quiet the input, push a unit current into the
        # output node.  A V-source input stays in the system (its branch
        # keeps the node pinned), exactly as SPICE computes .TF.
        rhs_out = np.zeros(size)
        rhs_out[out_index] = 1.0
        response_out = engine.solver.solve(g_mat, rhs_out, token=token)
        output_resistance = float(response_out[out_index])
        engine.solver.invalidate()

    return TransferFunction(
        gain=gain,
        input_resistance=input_resistance,
        output_resistance=output_resistance,
        stats=engine.stats.since(snapshot),
    )



class Simulator:
    """Facade running analyses on one circuit.

    >>> sim = Simulator(circuit)
    >>> op = sim.operating_point()
    >>> ac = sim.ac(1e3, 1e9, points_per_decade=10)
    >>> tran = sim.transient(stop_time=1e-6)
    """

    def __init__(self, circuit: Circuit, tolerances: Tolerances | None = None,
                 gmin: float = 1e-12, engine=None):
        self.circuit = circuit
        self.tolerances = tolerances or Tolerances()
        self.gmin = gmin
        #: Engine selector threaded to every analysis: ``None`` (the
        #: circuit's cached compiled engine), ``"compiled"``, ``"legacy"``
        #: or an engine object (see :func:`repro.spice.engine.resolve_engine`).
        self.engine = engine
        self._last_op: OperatingPointResult | None = None

    def _engine(self):
        return resolve_engine(self.circuit, self.engine)

    def operating_point(self) -> OperatingPointResult:
        """Solve the DC operating point (Newton with homotopies)."""
        engine = self._engine()
        snapshot = engine.stats.copy()
        with engine.timed():
            x = solve_dc(
                self.circuit, tolerances=self.tolerances, gmin=self.gmin,
                engine=engine,
            )
        self._last_op = OperatingPointResult(
            self.circuit, x, stats=engine.stats.since(snapshot)
        )
        return self._last_op

    def dc_sweep(self, source_name: str, values) -> DCSweepResult:
        """Sweep the DC level of a V or I source, warm-starting each point."""
        element = self.circuit.element(source_name)
        if not isinstance(element, (VoltageSource, CurrentSource)):
            raise AnalysisError(
                f"dc_sweep target {source_name!r} is not an independent source"
            )
        values = np.asarray(list(values), dtype=float)
        original = element.waveform
        states = []
        x = None
        limits: dict = {}
        engine = self._engine()
        snapshot = engine.stats.copy()
        try:
            with engine.timed():
                for value in values:
                    # Swapping the waveform only changes the source RHS,
                    # which engines re-read per evaluation — no recompile.
                    element.waveform = DC(value)
                    x = solve_dc(
                        self.circuit, x0=x, tolerances=self.tolerances,
                        gmin=self.gmin, limits=limits, engine=engine,
                    )
                    states.append(x.copy())
        finally:
            element.waveform = original
        return DCSweepResult(
            self.circuit, values, np.array(states),
            stats=engine.stats.since(snapshot),
        )

    def ac(
        self,
        start: float,
        stop: float,
        points_per_decade: int = 10,
        sweep: str = "dec",
    ) -> ACResult:
        """AC sweep from start to stop Hz, reusing the last .OP if any."""
        grid = frequency_grid(start, stop, points_per_decade, sweep)
        dc = self._last_op.x if self._last_op is not None else None
        return solve_ac(
            self.circuit, grid, dc_solution=dc, gmin=self.gmin,
            engine=self._engine(),
        )

    def transient(
        self,
        stop_time: float,
        max_step: float | None = None,
        initial_step: float | None = None,
        method: str = "trap",
        x0: np.ndarray | None = None,
        **kwargs,
    ) -> TransientResult:
        """Integrate 0..stop_time (see :func:`solve_transient`)."""
        kwargs.setdefault("engine", self._engine())
        return solve_transient(
            self.circuit,
            stop_time,
            max_step=max_step,
            initial_step=initial_step,
            method=method,
            x0=x0,
            tolerances=self.tolerances,
            gmin=self.gmin,
            **kwargs,
        )

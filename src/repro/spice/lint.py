"""Pre-simulation connectivity lint.

A deck that is structurally broken — a dangling node, a capacitor-only
subnet with no DC path to ground, an island of components never touching
ground — produces a singular or near-singular MNA system.  The solver
*can* limp through many of these thanks to the ``DIAG_GSHUNT``
regularization, but the answer is physically meaningless (the dangling
node floats to whatever the 1e-12 S shunt dictates) and the failure
surfaces as a baffling convergence report deep inside Newton.

This module diagnoses those topologies *before* any matrix is built and
raises a structured :class:`~repro.errors.ConnectivityError` naming the
offending nodes, so ``repro run`` fails fast with an actionable message.

Checks (each yields :class:`LintIssue` records):

``floating-node``
    A non-ground node touched by exactly one element.  No KCL balance is
    possible at such a node unless the element itself pins the voltage
    (voltage-defined branches are exempt: V sources, E/H controlled
    sources, inductors).
``no-dc-path``
    A node with no DC-conducting path to ground.  Capacitors are open at
    DC and current sources have infinite output impedance, so a node
    reachable only through them has an undefined DC voltage — the
    classic "capacitor-only node" SPICE topology error.
``ungrounded-island``
    A connected component of the circuit graph that never touches
    ground.  Every voltage in the island is defined only relative to the
    island itself; the MNA system is singular there.

The lint is topological only — it never evaluates a device, so it runs
in O(elements) and cannot produce convergence-dependent false positives.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConnectivityError
from .elements.capacitor import Capacitor
from .elements.inductor import Inductor
from .elements.sources import CurrentSource, VoltageSource
from .elements.controlled import CCVS, VCVS
from .netlist import Circuit

__all__ = ["LintIssue", "check_circuit", "lint_circuit"]

#: Elements whose branch equation pins the voltage across their
#: terminals; a node touched only by one of these is still well-defined.
_VOLTAGE_DEFINED = (VoltageSource, VCVS, CCVS, Inductor)

#: Elements that conduct no DC current between their terminals and so do
#: not contribute to the "DC path to ground" connectivity graph.
_DC_OPEN = (Capacitor, CurrentSource)


@dataclass(frozen=True)
class LintIssue:
    """One connectivity defect found by :func:`check_circuit`."""

    #: ``"floating-node"``, ``"no-dc-path"`` or ``"ungrounded-island"``.
    code: str
    #: Offending node names (canonical spelling, sorted).
    nodes: tuple[str, ...]
    #: Human-readable diagnosis.
    message: str

    def __str__(self) -> str:  # pragma: no cover - repr convenience
        return f"[{self.code}] {self.message}"


class _UnionFind:
    """Path-halving union-find over node names (ground is ``"0"``)."""

    def __init__(self):
        self._parent: dict[str, str] = {}

    def find(self, node: str) -> str:
        parent = self._parent
        root = parent.setdefault(node, node)
        while parent[root] != root:
            parent[root] = parent[parent[root]]
            root = parent[root]
        parent[node] = root
        return root

    def union(self, a: str, b: str) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self._parent[ra] = rb


def _element_nodes(element) -> list[str]:
    """Distinct node names an element touches (self-loops collapse)."""
    return list(dict.fromkeys(element.nodes))


def check_circuit(circuit: Circuit) -> list[LintIssue]:
    """Run every connectivity check; return the issues found (may be [])."""
    issues: list[LintIssue] = []
    elements = list(circuit)
    if not elements:
        return issues

    # --- floating nodes: exactly one connecting element -----------------------
    touching: dict[str, list] = {}
    for element in elements:
        for node in _element_nodes(element):
            if node != "0":
                touching.setdefault(node, []).append(element)
    floating = sorted(
        node for node, elems in touching.items()
        if len(elems) == 1 and not isinstance(elems[0], _VOLTAGE_DEFINED)
    )
    for node in floating:
        element = touching[node][0]
        issues.append(LintIssue(
            code="floating-node",
            nodes=(node,),
            message=(
                f"node {node!r} is connected only to {element.name} — "
                "no current balance is possible at a single-terminal node"
            ),
        ))

    # --- DC path to ground: union-find excluding DC-open elements -------------
    dc = _UnionFind()
    dc.find("0")
    for element in elements:
        if isinstance(element, _DC_OPEN):
            continue
        nodes = _element_nodes(element)
        for other in nodes[1:]:
            dc.union(nodes[0], other)
    ground = dc.find("0")
    dc_floating = sorted(
        node for node in touching if dc.find(node) != ground
    )

    # --- ungrounded islands: union-find over every element --------------------
    full = _UnionFind()
    full.find("0")
    for element in elements:
        nodes = _element_nodes(element)
        for other in nodes[1:]:
            full.union(nodes[0], other)
    ground = full.find("0")
    islands: dict[str, list[str]] = {}
    for node in touching:
        root = full.find(node)
        if root != ground:
            islands.setdefault(root, []).append(node)
    island_nodes = {n for group in islands.values() for n in group}
    for group in sorted(islands.values()):
        group = tuple(sorted(group))
        names = ", ".join(group)
        issues.append(LintIssue(
            code="ungrounded-island",
            nodes=group,
            message=(
                f"nodes {{{names}}} form an island with no connection to "
                "ground — every voltage in it is undefined"
            ),
        ))

    # Report no-dc-path only for nodes that are otherwise grounded: a
    # fully isolated island is the stronger diagnosis and already covers
    # its members.
    for node in dc_floating:
        if node in island_nodes:
            continue
        issues.append(LintIssue(
            code="no-dc-path",
            nodes=(node,),
            message=(
                f"node {node!r} has no DC path to ground (capacitors are "
                "open and current sources are infinite-impedance at DC), "
                "so its operating-point voltage is undefined"
            ),
        ))

    return issues


def lint_circuit(circuit: Circuit) -> None:
    """Raise :class:`~repro.errors.ConnectivityError` if any check fails."""
    issues = check_circuit(circuit)
    if issues:
        lines = [f"circuit {circuit.title!r} failed connectivity lint "
                 f"({len(issues)} issue(s)):"]
        lines += [f"  {issue}" for issue in issues]
        raise ConnectivityError("\n".join(lines), issues=issues)

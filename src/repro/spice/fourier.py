"""Fourier analysis of transient waveforms (SPICE ``.FOUR``-style).

Computes the harmonic decomposition of a steady-state periodic waveform
from a :class:`~repro.spice.transient.TransientResult` and derives total
harmonic distortion — the "distortion" leg of the tuner concerns the
paper names.

The transient solver produces non-uniform time steps, so the waveform is
resampled onto a uniform grid over an integer number of periods before
the DFT.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..errors import AnalysisError
from .transient import TransientResult


@dataclass(frozen=True)
class FourierComponent:
    """One harmonic of the decomposition."""

    harmonic: int
    frequency: float
    amplitude: float
    phase_deg: float


@dataclass(frozen=True)
class FourierResult:
    """Harmonic decomposition of one node's waveform."""

    fundamental: float
    dc: float
    components: tuple[FourierComponent, ...]

    def amplitude(self, harmonic: int) -> float:
        for component in self.components:
            if component.harmonic == harmonic:
                return component.amplitude
        raise AnalysisError(f"harmonic {harmonic} not computed")

    def thd(self) -> float:
        """Total harmonic distortion (ratio, not dB): sqrt(sum(h>=2)^2)/h1."""
        fundamental = self.amplitude(1)
        if fundamental == 0.0:
            raise AnalysisError("no fundamental component")
        harmonics = math.fsum(
            c.amplitude ** 2 for c in self.components if c.harmonic >= 2
        )
        return math.sqrt(harmonics) / fundamental

    def thd_db(self) -> float:
        thd = self.thd()
        if thd <= 0.0:
            return -math.inf
        return 20.0 * math.log10(thd)

    def describe(self) -> str:
        lines = [f"  fundamental {self.fundamental:.6g} Hz, "
                 f"DC {self.dc:.6g}"]
        for component in self.components:
            lines.append(
                f"  h{component.harmonic}: {component.amplitude:.6g} "
                f"@ {component.phase_deg:7.2f} deg"
            )
        lines.append(f"  THD = {self.thd() * 100:.4f} %")
        return "\n".join(lines)


def fourier_analysis(
    result: TransientResult,
    node: str,
    fundamental: float,
    harmonics: int = 9,
    periods: int = 4,
    samples_per_period: int = 256,
) -> FourierResult:
    """Harmonic decomposition of the last ``periods`` of a waveform.

    Uses the end of the record (steady state); raises when the record is
    shorter than the requested window.
    """
    return fourier_of_waveform(
        result.times, result.voltage(node), fundamental,
        harmonics=harmonics, periods=periods,
        samples_per_period=samples_per_period,
    )


def fourier_of_waveform(
    times,
    values,
    fundamental: float,
    harmonics: int = 9,
    periods: int = 4,
    samples_per_period: int = 256,
) -> FourierResult:
    """Harmonic decomposition of a raw (possibly non-uniform) waveform.

    The array form of :func:`fourier_analysis`, used for derived signals
    such as differential outputs.
    """
    times = np.asarray(times, dtype=float)
    values = np.asarray(values, dtype=float)
    if fundamental <= 0:
        raise AnalysisError("fundamental frequency must be positive")
    if harmonics < 1:
        raise AnalysisError("need at least the fundamental")
    period = 1.0 / fundamental
    window = periods * period
    t_end = float(times[-1])
    if window > t_end * (1 + 1e-12):
        raise AnalysisError(
            f"record ({t_end:.3g}s) shorter than {periods} periods "
            f"({window:.3g}s)"
        )
    t_start = t_end - window
    grid = np.linspace(t_start, t_end, periods * samples_per_period,
                       endpoint=False)
    waveform = np.interp(grid, times, values)

    spectrum = np.fft.rfft(waveform) / len(waveform)
    dc = float(spectrum[0].real)
    components = []
    for h in range(1, harmonics + 1):
        bin_index = h * periods
        if bin_index >= len(spectrum):
            break
        phasor = 2.0 * spectrum[bin_index]
        components.append(FourierComponent(
            harmonic=h,
            frequency=h * fundamental,
            amplitude=float(abs(phasor)),
            phase_deg=float(np.degrees(np.angle(phasor))),
        ))
    return FourierResult(fundamental=fundamental, dc=dc,
                         components=tuple(components))


def total_harmonic_distortion(
    result: TransientResult, node: str, fundamental: float,
    harmonics: int = 9,
) -> float:
    """Convenience: THD ratio of a waveform."""
    return fourier_analysis(result, node, fundamental,
                            harmonics=harmonics).thd()

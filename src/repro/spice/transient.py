"""Transient analysis: trapezoidal/backward-Euler integration with
predictor-corrector step control.

The charge-oriented system ``I(x) + dQ(x)/dt = 0`` is discretized with

* backward Euler for the first step (and after discontinuities), and
* the trapezoidal rule otherwise:

    trap:  dQ/dt |n+1  =  (2/h) (Q(x_{n+1}) - Q_n) - Qdot_n
    BE:    dQ/dt |n+1  =  (Q(x_{n+1}) - Q_n) / h

Local error is estimated from the difference between a quadratic
predictor through the last accepted points and the Newton corrector;
steps shrink/grow by a cubic-root rule and land exactly on source
breakpoints (pulse edges, PWL corners).  At each breakpoint the
integration restarts: backward Euler for the next step *and* a cleared
predictor history, so the polynomial predictor never extrapolates across
a waveform corner.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace

import numpy as np

from ..errors import (
    AnalysisError,
    ConvergenceError,
    ConvergenceReport,
    NetlistError,
)
from .dcop import Tolerances, newton_solve, solve_dc, weighted_max_error
from .engine import EngineStats, resolve_engine
from .netlist import Circuit


@dataclass
class TransientResult:
    """Time sweep result."""

    circuit: Circuit
    times: np.ndarray
    states: np.ndarray  #: shape (num_points, num_unknowns)
    rejected_steps: int = 0
    newton_failures: int = 0
    #: Engine work performed by this analysis (None for results built
    #: outside solve_transient, e.g. in tests).
    stats: EngineStats | None = None

    def voltage(self, node: str) -> np.ndarray:
        try:
            index = self.circuit.node_index(node)
        except NetlistError as exc:
            known = ", ".join(self.circuit.nodes())
            raise AnalysisError(
                f"transient result has no node {node!r}; "
                f"known nodes: {known}"
            ) from exc
        if index < 0:  # ground is identically 0 V
            return np.zeros(len(self.times))
        return self.states[:, index]

    def differential(self, node_p: str, node_n: str) -> np.ndarray:
        return self.voltage(node_p) - self.voltage(node_n)

    def branch_current(self, element_name: str, branch: int = 0) -> np.ndarray:
        try:
            index = self.circuit.branch_index(element_name, branch)
        except NetlistError as exc:
            known = ", ".join(self.circuit.branch_elements()) or "none"
            raise AnalysisError(
                f"transient result has no branch current for "
                f"{element_name!r} (branch {branch}); elements with "
                f"branch unknowns: {known}"
            ) from exc
        return self.states[:, index]

    def sample(self, node: str, time: float) -> float:
        """Linearly interpolated node voltage at one time."""
        return float(np.interp(time, self.times, self.voltage(node)))


def _collect_breakpoints(
    circuit: Circuit, stop_time: float, min_separation: float = 0.0
) -> list[float]:
    """Sorted source breakpoints, merged to at least ``min_separation``.

    Two sources can contribute breakpoints closer than the minimum step
    (e.g. coincident pulse edges); keeping both would force a near-zero
    ``h = next_bp - t`` step, so later points within ``min_separation``
    of an earlier one are dropped.
    """
    points: set[float] = set()
    for element in circuit:
        getter = getattr(element, "breakpoints", None)
        if getter is not None:
            points.update(getter(stop_time))
    ordered = sorted(points)
    if min_separation <= 0.0:
        return ordered
    merged: list[float] = []
    for point in ordered:
        if merged and point - merged[-1] < min_separation:
            continue
        merged.append(point)
    # A trailing breakpoint just short of stop_time would likewise leave
    # a sliver of a final step once stop_time is appended by the caller.
    while merged and merged[-1] > stop_time - min_separation:
        merged.pop()
    return merged


#: Default device-bypass voltage tolerance for the transient hot path.
#: Devices whose terminal voltages all moved less than this between
#: Newton evaluations replay their cached stamps, extrapolated to the
#: current solution with the cached Jacobians (see
#: :meth:`repro.spice.engine.CompiledCircuit.evaluate`); the replay
#: error is second order in this tolerance.
DEFAULT_BYPASS_TOL = 1e-3

#: Maximum relative drift of ``alpha = 1/h`` (or ``2/h``) tolerated
#: before a chord-Newton jacobian token is re-anchored.  Within the
#: window, steps share one factorization even though the continuous step
#: controller varies h slightly; the frozen Jacobian is then wrong by up
#: to ~10% in its capacitive part, which slows the chord contraction a
#: little but stays inside what the contraction watch tolerates before
#: forcing a refactorization.
_ALPHA_DRIFT = 0.1

#: Step-controller deadband (chord mode only): hold the step size when
#: the proposed change factor falls inside [lo, hi].  The band only
#: covers factors whose LTE is at or below target, so holding never
#: runs above the error budget; a steady h keeps the chord token fixed
#: so factorizations survive across steps.
_DEADBAND_LO = 0.9
_DEADBAND_HI = 1.25


def solve_transient(
    circuit: Circuit,
    stop_time: float,
    max_step: float | None = None,
    initial_step: float | None = None,
    x0: np.ndarray | None = None,
    method: str = "trap",
    tolerances: Tolerances | None = None,
    gmin: float = 1e-12,
    lte_reltol: float = 1e-3,
    lte_abstol: float = 1e-6,
    max_points: int = 2_000_000,
    engine=None,
    bypass_tol: float | None = None,
    chord: bool | None = None,
) -> TransientResult:
    """Integrate the circuit from t=0 to ``stop_time``.

    ``x0`` provides initial conditions; when omitted the DC operating
    point at t=0 is used.  ``method`` is ``"trap"`` (default) or ``"be"``.

    ``bypass_tol`` and ``chord`` control the transient hot path: device
    bypass (skip re-evaluating devices whose voltages barely moved) and
    chord-Newton (reuse the factorized Jacobian across iterations and
    steps sharing a token).  Both default on (``bypass_tol=None`` means
    :data:`DEFAULT_BYPASS_TOL`); pass ``bypass_tol=0`` and
    ``chord=False`` to force the exact reference stepping path.
    """
    if stop_time <= 0:
        raise AnalysisError("transient stop_time must be positive")
    if max_step is not None and max_step <= 0:
        raise AnalysisError(
            f"transient max_step must be positive, got {max_step!r}"
        )
    if initial_step is not None and initial_step <= 0:
        raise AnalysisError(
            f"transient initial_step must be positive, got {initial_step!r}"
        )
    if lte_reltol <= 0:
        raise AnalysisError(
            f"transient lte_reltol must be positive, got {lte_reltol!r}"
        )
    if method not in ("trap", "be"):
        raise AnalysisError(f"unknown integration method {method!r}")
    if bypass_tol is None:
        bypass_tol = DEFAULT_BYPASS_TOL
    elif bypass_tol < 0:
        raise AnalysisError(
            f"transient bypass_tol must be non-negative, got {bypass_tol!r}"
        )
    if chord is None:
        chord = True
    circuit.assign_indices()
    engine = resolve_engine(circuit, engine)
    snapshot = engine.stats.copy()
    with engine.timed():
        result = _solve_transient(
            circuit, engine, stop_time, max_step, initial_step, x0,
            method, tolerances, gmin, lte_reltol, lte_abstol, max_points,
            bypass_tol, chord,
        )
    result.stats = engine.stats.since(snapshot)
    return result


def _solve_transient(
    circuit, engine, stop_time, max_step, initial_step, x0,
    method, tolerances, gmin, lte_reltol, lte_abstol, max_points,
    bypass_tol, chord,
) -> TransientResult:
    if tolerances is None:
        tolerances = Tolerances()
    if max_step is None:
        max_step = stop_time / 50.0
    if initial_step is None:
        initial_step = max_step / 10.0
    num_nodes = engine.num_nodes

    chord_active = chord and getattr(engine, "supports_chord", False)
    # Hot-path mode keeps one canonical limits dict for the whole run
    # (saved/restored around rejected steps) so the device-bypass cache,
    # which is keyed on dict identity, survives from step to step.  The
    # reference mode copies the dict per step exactly like the seed code.
    hot = chord_active or bypass_tol > 0.0
    # Fused assembly builds G + alpha*C in one dense pass inside the
    # engine; the integrator callback then touches only the residual.
    fused = hot and getattr(engine, "supports_fused_jacobian", False)

    limits: dict = {}
    if x0 is None:
        x = solve_dc(circuit, gmin=gmin, limits=limits, engine=engine)
    else:
        x = np.array(x0, dtype=float)

    ctx0 = engine.evaluate(x, time=0.0, gmin=gmin, limits=dict(limits))
    q_prev = ctx0.q_vec.copy()
    qdot_prev = np.zeros_like(q_prev)
    # Accept-path scratch (hot mode): charges are copied out of the
    # engine-owned context buffers into these, then ping-ponged into
    # q_prev/qdot_prev, so the accept path allocates nothing per step.
    q_scratch = np.empty_like(q_prev)
    qdot_scratch = np.empty_like(q_prev)

    min_step = stop_time * 1e-15
    breakpoints = _collect_breakpoints(circuit, stop_time, min_step)
    breakpoints.append(stop_time)
    bp_iter = iter(breakpoints)
    next_bp = next(bp_iter)

    # Amortized-doubling storage for the accepted trajectory; the
    # predictor reads its (up to 3-point) window straight out of these
    # buffers via ``hist_start`` instead of shuffling a Python list.
    size = len(x)
    capacity = 256
    times = np.empty(capacity)
    states = np.empty((capacity, size))
    times[0] = 0.0
    states[0] = x
    count = 1
    hist_start = 0

    t = 0.0
    h = min(initial_step, max_step)
    use_be_next = True  # first step (no qdot history yet)
    rejected = 0
    newton_failures = 0
    token_anchor = None  # log(alpha) the chord token is anchored at
    token_use_be = None

    while t < stop_time * (1.0 - 1e-12):
        h = min(h, max_step, stop_time - t)
        hit_breakpoint = False
        while next_bp is not None and next_bp <= t * (1 + 1e-12):
            next_bp = next(bp_iter, None)
        if next_bp is not None and t + h >= next_bp - min_step:
            h = next_bp - t
            hit_breakpoint = True
        t_new = t + h

        # Predictor: quadratic extrapolation through the last 3 points.
        x_pred = _predict(times, states, hist_start, count, t_new)

        use_be = use_be_next or method == "be"
        alpha = (1.0 / h) if use_be else (2.0 / h)

        if fused:
            # The engine already assembled jacobian = G + alpha*C.
            def dynamic(ctx, residual, jacobian):
                qdot = alpha * (ctx.q_vec - q_prev)
                if not use_be:
                    qdot -= qdot_prev
                residual += qdot
        else:
            def dynamic(ctx, residual, jacobian):
                qdot = alpha * (ctx.q_vec - q_prev)
                if not use_be:
                    qdot -= qdot_prev
                residual += qdot
                jacobian += alpha * ctx.c_mat

        if hot:
            step_limits = limits
            saved_limits = dict(limits)
        else:
            step_limits = dict(limits)
        try:
            if chord_active:
                # Hysteresis: keep the token anchored at the alpha the
                # jacobian was last factorized for until the controller
                # drifts the step size too far from it.
                log_alpha = math.log(alpha)
                if (
                    token_anchor is None
                    or token_use_be != use_be
                    or abs(log_alpha - token_anchor) > _ALPHA_DRIFT
                ):
                    token_anchor = log_alpha
                    token_use_be = use_be
                token = ("tran", use_be, token_anchor)
            else:
                token = ("tran", use_be, alpha)
            x_new, ctx = newton_solve(
                circuit, x_pred, tolerances, gmin,
                time=t_new, limits=step_limits, dynamic=dynamic,
                engine=engine, jacobian_token=token,
                chord=chord_active, bypass_tol=bypass_tol,
                jac_alpha=alpha if fused else None,
                return_context=True,
            )
        except ConvergenceError as exc:
            newton_failures += 1
            h /= 8.0
            use_be_next = True
            if hot:
                limits.clear()
                limits.update(saved_limits)
            if h < min_step:
                report = replace(
                    exc.report or ConvergenceReport(),
                    stage="transient",
                    time=t_new,
                )
                raise ConvergenceError(
                    f"transient stalled at t={t:.6g}s (step underflow; "
                    f"{newton_failures} Newton failures; "
                    f"{report.summary()})",
                    report=report,
                ) from exc
            continue

        # Local truncation error: corrector vs predictor.
        if count - hist_start >= 3:
            error = weighted_max_error(
                x_new - x_pred, x_new, x, num_nodes,
                lte_reltol, lte_abstol, lte_abstol,
            )
        else:
            error = 0.5  # no history yet: accept and grow slowly
        if error > 10.0 and h > min_step * 8:
            rejected += 1
            if hot:
                limits.clear()
                limits.update(saved_limits)
            h = max(h * (1.0 / error) ** (1.0 / 3.0) * 0.9, h / 8.0)
            continue

        # Accept the step.  ``ctx`` already holds the charges at (or,
        # with bypass/chord on, within Newton tolerance of) x_new — the
        # seed's separate post-accept re-evaluation is gone.
        np.copyto(q_scratch, ctx.q_vec)
        np.subtract(q_scratch, q_prev, out=qdot_scratch)
        qdot_scratch *= alpha
        if not use_be:
            qdot_scratch -= qdot_prev
        q_prev, q_scratch = q_scratch, q_prev
        qdot_prev, qdot_scratch = qdot_scratch, qdot_prev

        t = t_new
        x = x_new
        if not hot:
            limits = step_limits
        if count == capacity:
            capacity *= 2
            new_times = np.empty(capacity)
            new_times[:count] = times
            times = new_times
            new_states = np.empty((capacity, size))
            new_states[:count] = states
            states = new_states
        times[count] = t
        states[count] = x
        count += 1
        if hit_breakpoint:
            # Waveform corner: the solution has a derivative discontinuity
            # here, so restart the predictor from scratch instead of
            # extrapolating a polynomial across it.
            hist_start = count - 1
        if count > max_points:
            raise AnalysisError(
                f"transient produced more than {max_points} points; "
                "increase max_step or loosen tolerances"
            )

        use_be_next = hit_breakpoint  # restart integration after corners
        # Continuous step control (identical to the reference path).
        # Chord-Newton still reuses factorizations across steps because
        # well-resolved transients spend most accepted steps pinned at
        # ``max_step``, where the jacobian token (which embeds 1/h)
        # repeats naturally.
        growth = (1.0 / max(error, 1e-6)) ** (1.0 / 3.0)
        factor = min(max(growth * 0.9, 0.2), 2.0)
        if (chord_active and _DEADBAND_LO <= factor <= _DEADBAND_HI):
            # Deadband: hold the step when the controller asks for less
            # than a ~25% nudge (error is at or below target in this
            # whole band).  A steady h keeps alpha — and with it the
            # chord token — fixed, so the factorization survives across
            # steps instead of being invalidated by step-size jitter.
            factor = 1.0
        h *= factor

    return TransientResult(
        circuit=circuit,
        times=times[:count].copy(),
        states=states[:count].copy(),
        rejected_steps=rejected,
        newton_failures=newton_failures,
    )


def _predict(
    times: np.ndarray,
    states: np.ndarray,
    start: int,
    count: int,
    t_new: float,
) -> np.ndarray:
    """Polynomial extrapolation of the solution to ``t_new``.

    Reads up to the last three accepted points (quadratic Lagrange form)
    from the trajectory buffers, beginning no earlier than ``start`` (the
    predictor restart marker); falls back to lower order early in a
    window.
    """
    avail = count - start
    if avail == 1:
        return states[count - 1].copy()
    if avail == 2:
        t0, t1 = times[count - 2], times[count - 1]
        x0, x1 = states[count - 2], states[count - 1]
        if t1 == t0:
            return x1.copy()
        frac = (t_new - t1) / (t1 - t0)
        return x1 + frac * (x1 - x0)
    t0, t1, t2 = times[count - 3], times[count - 2], times[count - 1]
    x0, x1, x2 = states[count - 3], states[count - 2], states[count - 1]
    l0 = (t_new - t1) * (t_new - t2) / ((t0 - t1) * (t0 - t2))
    l1 = (t_new - t0) * (t_new - t2) / ((t1 - t0) * (t1 - t2))
    l2 = (t_new - t0) * (t_new - t1) / ((t2 - t0) * (t2 - t1))
    return l0 * x0 + l1 * x1 + l2 * x2

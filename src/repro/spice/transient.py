"""Transient analysis: trapezoidal/backward-Euler integration with
predictor-corrector step control.

The charge-oriented system ``I(x) + dQ(x)/dt = 0`` is discretized with

* backward Euler for the first step (and after discontinuities), and
* the trapezoidal rule otherwise:

    trap:  dQ/dt |n+1  =  (2/h) (Q(x_{n+1}) - Q_n) - Qdot_n
    BE:    dQ/dt |n+1  =  (Q(x_{n+1}) - Q_n) / h

Local error is estimated from the difference between a quadratic
predictor through the last accepted points and the Newton corrector;
steps shrink/grow by a cubic-root rule and land exactly on source
breakpoints (pulse edges, PWL corners).  At each breakpoint the
integration restarts: backward Euler for the next step *and* a cleared
predictor history, so the polynomial predictor never extrapolates across
a waveform corner.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace

import numpy as np

from ..errors import (
    AnalysisError,
    ConvergenceError,
    ConvergenceReport,
    NetlistError,
)
from .dcop import Tolerances, newton_solve, solve_dc, weighted_max_error
from .engine import EngineStats, resolve_engine
from .netlist import Circuit


@dataclass
class TransientResult:
    """Time sweep result."""

    circuit: Circuit
    times: np.ndarray
    states: np.ndarray  #: shape (num_points, num_unknowns)
    rejected_steps: int = 0
    newton_failures: int = 0
    #: Engine work performed by this analysis (None for results built
    #: outside solve_transient, e.g. in tests).
    stats: EngineStats | None = None

    def voltage(self, node: str) -> np.ndarray:
        try:
            index = self.circuit.node_index(node)
        except NetlistError as exc:
            known = ", ".join(self.circuit.nodes())
            raise AnalysisError(
                f"transient result has no node {node!r}; "
                f"known nodes: {known}"
            ) from exc
        if index < 0:  # ground is identically 0 V
            return np.zeros(len(self.times))
        return self.states[:, index]

    def differential(self, node_p: str, node_n: str) -> np.ndarray:
        return self.voltage(node_p) - self.voltage(node_n)

    def branch_current(self, element_name: str, branch: int = 0) -> np.ndarray:
        try:
            index = self.circuit.branch_index(element_name, branch)
        except NetlistError as exc:
            known = ", ".join(self.circuit.branch_elements()) or "none"
            raise AnalysisError(
                f"transient result has no branch current for "
                f"{element_name!r} (branch {branch}); elements with "
                f"branch unknowns: {known}"
            ) from exc
        return self.states[:, index]

    def sample(self, node: str, time: float) -> float:
        """Linearly interpolated node voltage at one time."""
        return float(np.interp(time, self.times, self.voltage(node)))


def _collect_breakpoints(circuit: Circuit, stop_time: float) -> list[float]:
    points: set[float] = set()
    for element in circuit:
        getter = getattr(element, "breakpoints", None)
        if getter is not None:
            points.update(getter(stop_time))
    return sorted(points)


def solve_transient(
    circuit: Circuit,
    stop_time: float,
    max_step: float | None = None,
    initial_step: float | None = None,
    x0: np.ndarray | None = None,
    method: str = "trap",
    tolerances: Tolerances | None = None,
    gmin: float = 1e-12,
    lte_reltol: float = 1e-3,
    lte_abstol: float = 1e-6,
    max_points: int = 2_000_000,
    engine=None,
) -> TransientResult:
    """Integrate the circuit from t=0 to ``stop_time``.

    ``x0`` provides initial conditions; when omitted the DC operating
    point at t=0 is used.  ``method`` is ``"trap"`` (default) or ``"be"``.
    """
    if stop_time <= 0:
        raise AnalysisError("transient stop_time must be positive")
    if method not in ("trap", "be"):
        raise AnalysisError(f"unknown integration method {method!r}")
    circuit.assign_indices()
    engine = resolve_engine(circuit, engine)
    snapshot = engine.stats.copy()
    with engine.timed():
        result = _solve_transient(
            circuit, engine, stop_time, max_step, initial_step, x0,
            method, tolerances, gmin, lte_reltol, lte_abstol, max_points,
        )
    result.stats = engine.stats.since(snapshot)
    return result


def _solve_transient(
    circuit, engine, stop_time, max_step, initial_step, x0,
    method, tolerances, gmin, lte_reltol, lte_abstol, max_points,
) -> TransientResult:
    if tolerances is None:
        tolerances = Tolerances()
    if max_step is None:
        max_step = stop_time / 50.0
    if initial_step is None:
        initial_step = max_step / 10.0
    num_nodes = engine.num_nodes

    limits: dict = {}
    if x0 is None:
        x = solve_dc(circuit, gmin=gmin, limits=limits, engine=engine)
    else:
        x = np.array(x0, dtype=float)

    ctx0 = engine.evaluate(x, time=0.0, gmin=gmin, limits=dict(limits))
    q_prev = ctx0.q_vec.copy()
    qdot_prev = np.zeros_like(q_prev)

    breakpoints = _collect_breakpoints(circuit, stop_time)
    breakpoints.append(stop_time)
    bp_iter = iter(breakpoints)
    next_bp = next(bp_iter)

    times = [0.0]
    states = [x.copy()]
    history: list[tuple[float, np.ndarray]] = [(0.0, x.copy())]

    t = 0.0
    h = min(initial_step, max_step)
    use_be_next = True  # first step (no qdot history yet)
    rejected = 0
    newton_failures = 0
    min_step = stop_time * 1e-15

    while t < stop_time * (1.0 - 1e-12):
        h = min(h, max_step, stop_time - t)
        hit_breakpoint = False
        while next_bp is not None and next_bp <= t * (1 + 1e-12):
            next_bp = next(bp_iter, None)
        if next_bp is not None and t + h >= next_bp - min_step:
            h = next_bp - t
            hit_breakpoint = True
        t_new = t + h

        # Predictor: quadratic extrapolation through the last 3 points.
        x_pred = _predict(history, t_new)

        use_be = use_be_next or method == "be"
        alpha = (1.0 / h) if use_be else (2.0 / h)

        def dynamic(ctx, residual, jacobian):
            qdot = alpha * (ctx.q_vec - q_prev)
            if not use_be:
                qdot -= qdot_prev
            residual += qdot
            jacobian += alpha * ctx.c_mat

        step_limits = dict(limits)
        try:
            x_new = newton_solve(
                circuit, x_pred, tolerances, gmin,
                time=t_new, limits=step_limits, dynamic=dynamic,
                engine=engine, jacobian_token=("tran", use_be, alpha),
            )
        except ConvergenceError as exc:
            newton_failures += 1
            h /= 8.0
            use_be_next = True
            if h < min_step:
                report = replace(
                    exc.report or ConvergenceReport(),
                    stage="transient",
                    time=t_new,
                )
                raise ConvergenceError(
                    f"transient stalled at t={t:.6g}s (step underflow; "
                    f"{newton_failures} Newton failures; "
                    f"{report.summary()})",
                    report=report,
                ) from exc
            continue

        # Local truncation error: corrector vs predictor.
        if len(history) >= 3:
            error = weighted_max_error(
                x_new - x_pred, x_new, x, num_nodes,
                lte_reltol, lte_abstol, lte_abstol,
            )
        else:
            error = 0.5  # no history yet: accept and grow slowly
        if error > 10.0 and h > min_step * 8:
            rejected += 1
            h = max(h * (1.0 / error) ** (1.0 / 3.0) * 0.9, h / 8.0)
            continue

        # Accept the step.
        ctx = engine.evaluate(
            x_new, time=t_new, gmin=gmin, limits=step_limits
        )
        q_new = ctx.q_vec.copy()
        qdot_new = alpha * (q_new - q_prev)
        if not use_be:
            qdot_new -= qdot_prev

        t = t_new
        x = x_new
        q_prev = q_new
        qdot_prev = qdot_new
        limits = step_limits
        times.append(t)
        states.append(x.copy())
        if hit_breakpoint:
            # Waveform corner: the solution has a derivative discontinuity
            # here, so restart the predictor from scratch instead of
            # extrapolating a polynomial across it.
            history = [(t, x.copy())]
        else:
            history.append((t, x.copy()))
            if len(history) > 3:
                history.pop(0)
        if len(times) > max_points:
            raise AnalysisError(
                f"transient produced more than {max_points} points; "
                "increase max_step or loosen tolerances"
            )

        use_be_next = hit_breakpoint  # restart integration after corners
        growth = (1.0 / max(error, 1e-6)) ** (1.0 / 3.0)
        h *= min(max(growth * 0.9, 0.2), 2.0)

    return TransientResult(
        circuit=circuit,
        times=np.array(times),
        states=np.array(states),
        rejected_steps=rejected,
        newton_failures=newton_failures,
    )


def _predict(history: list[tuple[float, np.ndarray]], t_new: float) -> np.ndarray:
    """Polynomial extrapolation of the solution to ``t_new``.

    Uses up to the last three accepted points (quadratic Lagrange form);
    falls back to lower order early in the run.
    """
    if len(history) == 1:
        return history[0][1].copy()
    if len(history) == 2:
        (t0, x0), (t1, x1) = history
        if t1 == t0:
            return x1.copy()
        frac = (t_new - t1) / (t1 - t0)
        return x1 + frac * (x1 - x0)
    (t0, x0), (t1, x1), (t2, x2) = history[-3:]
    l0 = (t_new - t1) * (t_new - t2) / ((t0 - t1) * (t0 - t2))
    l1 = (t_new - t0) * (t_new - t2) / ((t1 - t0) * (t1 - t2))
    l2 = (t_new - t0) * (t_new - t1) / ((t2 - t0) * (t2 - t1))
    return l0 * x0 + l1 * x1 + l2 * x2

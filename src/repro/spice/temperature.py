"""Circuit-level temperature analysis.

The paper fixes operating currents "considering the radiation from the
IC packages" — the junction temperature is part of the design.  This
module re-targets a whole circuit to another temperature by rebuilding
every temperature-dependent device (BJTs, diodes) with adjusted model
parameters, so any analysis can be run hot or cold:

>>> hot = circuit_at_temperature(circuit, celsius(85.0))
>>> Simulator(hot).operating_point()
"""

from __future__ import annotations

import math

from ..devices.temperature import at_temperature, celsius
from ..devices.gummel_poon import thermal_voltage
from ..errors import AnalysisError
from .elements.bjt import BJT
from .elements.diode import Diode, DiodeModel
from .netlist import Circuit


def _diode_model_at(model: DiodeModel, temp: float) -> DiodeModel:
    """Diode temperature update (IS and VJ, SPICE-style)."""
    from ..devices.temperature import bandgap_ev
    from dataclasses import replace

    tnom = model.TNOM
    if temp == tnom:
        return model
    ratio = temp / tnom
    vt_nom = thermal_voltage(tnom)
    # XTI = 3 for junction diodes (SPICE default).
    is_factor = ratio ** 3.0 * math.exp(
        1.11 * (ratio - 1.0) / (ratio * vt_nom)
    )
    vt = thermal_voltage(temp)
    vj_new = (model.VJ * ratio - 3.0 * vt * math.log(ratio)
              - bandgap_ev(tnom) * ratio + bandgap_ev(temp))
    if vj_new <= 0:
        raise AnalysisError(
            f"diode {model.name}: VJ collapses at {temp:.0f} K"
        )
    cjo_new = model.CJO * (1.0 + model.M * (
        4e-4 * (temp - tnom) - (vj_new - model.VJ) / model.VJ
    ))
    return replace(model, IS=model.IS * is_factor, VJ=vj_new,
                   CJO=cjo_new, TNOM=temp)


def circuit_at_temperature(circuit: Circuit, temp: float) -> Circuit:
    """A copy of ``circuit`` with every device re-modelled at ``temp`` (K).

    Linear elements (R, C, L, sources) are shared — their temperature
    coefficients are not modelled; semiconductor junctions carry the
    dominant temperature behaviour in bipolar ICs.
    """
    if temp <= 0:
        raise AnalysisError(f"temperature must be positive (K), got {temp}")
    retargeted = Circuit(f"{circuit.title} @ {temp - 273.15:.0f}C")
    for element in circuit:
        if isinstance(element, BJT):
            retargeted.add(BJT(
                element.name, element.nodes,
                at_temperature(element.model, temp),
                area=element.area,
            ))
        elif isinstance(element, Diode):
            retargeted.add(Diode(
                element.name, element.nodes,
                _diode_model_at(element.model, temp),
                area=element.area,
            ))
        else:
            retargeted.add(element)
    return retargeted


def temperature_sweep(
    circuit: Circuit,
    temperatures,
    measure,
) -> list[tuple[float, object]]:
    """Run ``measure(circuit_at_T)`` across a list of temperatures (K).

    Returns ``[(temperature, measurement), ...]``; the measurement
    callable receives the re-targeted circuit and may run any analysis.
    """
    results = []
    for temp in temperatures:
        results.append((float(temp),
                        measure(circuit_at_temperature(circuit, temp))))
    if not results:
        raise AnalysisError("temperature sweep needs at least one point")
    return results

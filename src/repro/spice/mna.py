"""Modified-nodal-analysis equation assembly.

The simulator solves the charge-oriented MNA system

    F(x, t) = I(x, t) + dQ(x)/dt = 0

by Newton's method.  :class:`LoadContext` is the accumulator handed to each
element's ``load``: elements add resistive/source currents to ``I`` and its
Jacobian ``G = dI/dx``, and charges/fluxes to ``Q`` and its Jacobian
``C = dQ/dx``.  The analyses in :mod:`repro.spice.dcop`,
:mod:`repro.spice.ac` and :mod:`repro.spice.transient` combine these into
the per-iteration linear systems.

The matrix buffers are dense numpy arrays here (the legacy path and
small circuits), but the accumulation protocol is backend-agnostic: the
compiled engine's sparse assembly substitutes
:class:`repro.spice.sparse.PatternMatrix` value arrays for ``g_mat`` /
``c_mat`` and the same ``add_g`` / ``add_c`` calls scatter into the flat
CSC data instead.  :mod:`repro.spice.solvercost` decides which backend a
given circuit gets.
"""

from __future__ import annotations

import numpy as np

from .netlist import Circuit


class LoadContext:
    """Accumulator for one evaluation of the circuit equations.

    Attributes
    ----------
    x:
        Candidate solution vector (node voltages, then branch currents).
    time:
        Simulation time in seconds (``None`` during DC analyses: sources
        then contribute their DC value).
    gmin:
        Minimum junction conductance, stamped by nonlinear devices across
        their junctions for convergence robustness.
    i_vec, g_mat:
        Resistive current residual and its Jacobian.
    q_vec, c_mat:
        Charge/flux vector and its Jacobian.
    """

    def __init__(
        self,
        size: int,
        x: np.ndarray,
        time: float | None,
        gmin: float,
        source_scale: float = 1.0,
        buffers: tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray] | None = None,
    ):
        self.size = size
        self.x = x
        self.time = time
        self.gmin = gmin
        #: Homotopy factor applied by independent sources (source stepping).
        self.source_scale = source_scale
        if buffers is None:
            self.i_vec = np.zeros(size)
            self.g_mat = np.zeros((size, size))
            self.q_vec = np.zeros(size)
            self.c_mat = np.zeros((size, size))
        else:
            # Preallocated accumulators owned by a compiled engine; they
            # arrive pre-filled with the cached linear contributions and
            # are overwritten on the engine's next evaluation.
            self.i_vec, self.g_mat, self.q_vec, self.c_mat = buffers
        #: Solution of the previous Newton iterate, used by devices for
        #: junction-voltage limiting.  ``None`` on the first iteration.
        self.x_prev: np.ndarray | None = None
        #: Per-device limited-voltage memory (device name -> tuple).
        self.limits: dict[str, tuple] = {}
        #: Fused-Jacobian mode (transient hot path): when set, capacitive
        #: stamps are folded directly into ``g_mat`` scaled by this
        #: integration coefficient (``g_mat`` then holds ``G + alpha*C``)
        #: and ``c_mat`` is not maintained.
        self.jac_alpha: float | None = None

    # -- reading the candidate solution ---------------------------------------

    def voltage(self, index: int) -> float:
        """Voltage of equation ``index`` (ground, index -1, is 0 V)."""
        if index < 0:
            return 0.0
        return self.x[index]

    # -- accumulating contributions -------------------------------------------

    def add_i(self, row: int, value: float) -> None:
        """Add a current (or branch residual) to ``I[row]``."""
        if row >= 0:
            self.i_vec[row] += value

    def add_g(self, row: int, col: int, value: float) -> None:
        """Add ``dI[row]/dx[col]``."""
        if row >= 0 and col >= 0:
            self.g_mat[row, col] += value

    def add_q(self, row: int, value: float) -> None:
        """Add a charge (node row) or flux (branch row) to ``Q[row]``."""
        if row >= 0:
            self.q_vec[row] += value

    def add_c(self, row: int, col: int, value: float) -> None:
        """Add ``dQ[row]/dx[col]``."""
        if row >= 0 and col >= 0:
            if self.jac_alpha is not None:
                self.g_mat[row, col] += value * self.jac_alpha
            else:
                self.c_mat[row, col] += value

    # -- common stamp patterns -------------------------------------------------

    def stamp_conductance(self, p: int, n: int, g: float) -> None:
        """Stamp a linear conductance ``g`` between rows/cols ``p`` and ``n``.

        Adds both the Jacobian entries and the current ``g*(vp-vn)`` so the
        residual is consistent for any candidate ``x``.
        """
        vp = self.voltage(p)
        vn = self.voltage(n)
        current = g * (vp - vn)
        self.add_i(p, current)
        self.add_i(n, -current)
        self.add_g(p, p, g)
        self.add_g(p, n, -g)
        self.add_g(n, p, -g)
        self.add_g(n, n, g)

    def stamp_capacitance(self, p: int, n: int, c: float) -> None:
        """Stamp a linear capacitance ``c`` between nodes ``p`` and ``n``."""
        vp = self.voltage(p)
        vn = self.voltage(n)
        charge = c * (vp - vn)
        self.add_q(p, charge)
        self.add_q(n, -charge)
        self.add_c(p, p, c)
        self.add_c(p, n, -c)
        self.add_c(n, p, -c)
        self.add_c(n, n, c)

    def stamp_current_source(self, p: int, n: int, current: float) -> None:
        """Stamp an independent current ``current`` flowing from p to n.

        Source currents *leave* the F-residual, i.e. a source pushing
        current into node ``n`` appears with sign conventions such that
        F = 0 at the solution.
        """
        self.add_i(p, current)
        self.add_i(n, -current)


def load_circuit(
    circuit: Circuit,
    x: np.ndarray,
    time: float | None = None,
    gmin: float = 1e-12,
    x_prev: np.ndarray | None = None,
    limits: dict | None = None,
    source_scale: float = 1.0,
) -> LoadContext:
    """Evaluate every element at candidate solution ``x``.

    Returns the filled :class:`LoadContext`.
    """
    size = circuit.assign_indices()
    ctx = LoadContext(size, x, time, gmin, source_scale)
    ctx.x_prev = x_prev
    if limits is not None:
        ctx.limits = limits
    for element in circuit:
        element.load(ctx)
    return ctx
